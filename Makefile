# Build/verify entry points. `make check` is the CI tier that keeps the
# concurrent metrics/runner code race-clean, smokes the fuzz targets, and
# proves the artifact cache round-trips byte-identically on every change.

GO ?= go

.PHONY: build test vet race fuzz-smoke cache-roundtrip check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race tier: the packages with new concurrent code (metrics registry,
# Runner worker pool, artifact cache) must stay race-clean.
race:
	$(GO) test -race ./internal/metrics ./internal/core ./internal/artifact

# Fuzz smoke: a few seconds per target on top of the committed seed
# corpora (go accepts one -fuzz target per invocation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseBBV -fuzztime 5s ./internal/bbv
	$(GO) test -run '^$$' -fuzz FuzzParseSimPoints -fuzztime 5s ./internal/simpoint
	$(GO) test -run '^$$' -fuzz FuzzArtifactKey -fuzztime 5s ./internal/artifact

# Cache round-trip: cold run populates the cache, warm run must reproduce
# the report byte for byte (cmp) straight from the artifacts.
cache-roundtrip:
	rm -rf .cache-check
	mkdir -p .cache-check
	$(GO) run ./cmd/tables -scale tiny -q -cache .cache-check > .cache-check/cold.txt
	$(GO) run ./cmd/tables -scale tiny -q -cache .cache-check > .cache-check/warm.txt
	cmp .cache-check/cold.txt .cache-check/warm.txt
	rm -rf .cache-check

check: vet race fuzz-smoke cache-roundtrip
