# Build/verify entry points. `make check` is the CI tier that keeps the
# concurrent metrics/runner code race-clean on every change.

GO ?= go

.PHONY: build test vet race check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race tier: the packages with new concurrent code (metrics registry,
# Runner worker pool) must stay race-clean.
race:
	$(GO) test -race ./internal/metrics ./internal/core

check: vet race
