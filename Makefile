# Build/verify entry points. `make check` is the CI tier that keeps the
# concurrent metrics/runner code race-clean, smokes the fuzz targets,
# proves the artifact cache round-trips byte-identically on every change,
# drills the supervised sweep engine (chaos injection, crash-resume), and
# smokes the boomd HTTP job service end to end.

GO ?= go

.PHONY: build test vet race fuzz-smoke cache-roundtrip chaos resume-roundtrip serve-smoke dse-smoke fabric-smoke fabric-chaos bench bench-smoke bench-measure fidelity check

build:
	$(GO) build ./...

# -shuffle=on randomizes test order within each package so tests that
# secretly depend on a predecessor (easy to introduce around the measure
# worker pool's package-level state) fail loudly instead of by luck.
test: build
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# Race tier: the packages with new concurrent code (metrics registry,
# Runner worker pool, artifact cache, fault injector, HTTP job service,
# sweep fabric) must stay race-clean. The fabric package runs -short:
# its full 11×3 conformance matrices are covered race-free by `make
# test`, while the journal, lease, resume, and store-economy tests all
# still run under the race detector.
race:
	$(GO) test -race ./internal/metrics ./internal/core ./internal/artifact ./internal/faultinject ./internal/serve
	$(GO) test -race -short ./internal/fabric

# Fuzz smoke: a few seconds per target on top of the committed seed
# corpora (go accepts one -fuzz target per invocation).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseBBV -fuzztime 5s ./internal/bbv
	$(GO) test -run '^$$' -fuzz FuzzParseSimPoints -fuzztime 5s ./internal/simpoint
	$(GO) test -run '^$$' -fuzz FuzzArtifactKey -fuzztime 5s ./internal/artifact

# Cache round-trip: cold run populates the cache, warm run must reproduce
# the report byte for byte (cmp) straight from the artifacts.
cache-roundtrip:
	rm -rf .cache-check
	mkdir -p .cache-check
	$(GO) run ./cmd/tables -scale tiny -q -cache .cache-check > .cache-check/cold.txt
	$(GO) run ./cmd/tables -scale tiny -q -cache .cache-check > .cache-check/warm.txt
	cmp .cache-check/cold.txt .cache-check/warm.txt
	rm -rf .cache-check

# Chaos drill: a keep-going sweep with a seeded fault plan (a panic, a
# transient error, artifact corruption) must render tables with FAILED
# cells and exit non-zero — never crash. The in-tree acceptance test
# (TestChaosSweepAcceptance) additionally proves non-faulted pairs stay
# bit-identical; this target proves the CLI wiring end to end.
chaos:
	rm -rf .chaos-check && mkdir -p .chaos-check
	$(GO) run ./cmd/tables -scale tiny -q -keep-going -retries 2 \
		-chaos '42:core.measure/sha/MediumBOOM=panic,core.measure/qsort/*=error' \
		> .chaos-check/out.txt 2> .chaos-check/err.txt; \
		test $$? -ne 0 || { echo "chaos: expected non-zero exit"; exit 1; }
	grep -q FAILED .chaos-check/out.txt
	grep -q 'task(s) failed' .chaos-check/err.txt
	rm -rf .chaos-check

# Resume round-trip: kill a cached sweep after 5 tasks (exit 3), resume
# it — rerunning only the unfinished tasks — and require the resumed
# report to be byte-identical to a warm rerun of the completed campaign
# (wall-clock figures travel with the artifacts, so the compare is exact).
resume-roundtrip:
	rm -rf .resume-check && mkdir -p .resume-check
	$(GO) build -o .resume-check/tables ./cmd/tables
	./.resume-check/tables -scale tiny -q -cache .resume-check/cache \
		-die-after 5 > /dev/null 2>&1; \
		test $$? -eq 3 || { echo "resume: expected die-after exit 3"; exit 1; }
	./.resume-check/tables -scale tiny -q -cache .resume-check/cache -resume \
		> .resume-check/resumed.txt
	./.resume-check/tables -scale tiny -q -cache .resume-check/cache \
		> .resume-check/warm.txt
	cmp .resume-check/resumed.txt .resume-check/warm.txt
	rm -rf .resume-check

# Serve smoke: boot boomd on an ephemeral port, run a tiny campaign
# through boomctl (submit → long-poll result), scrape /metrics, then
# SIGTERM and require a clean drain (exit 0).
serve-smoke:
	rm -rf .serve-check && mkdir -p .serve-check
	$(GO) build -o .serve-check/boomd ./cmd/boomd
	$(GO) build -o .serve-check/boomctl ./cmd/boomctl
	set -e; \
	./.serve-check/boomd -addr 127.0.0.1:0 -q -cache .serve-check/cache \
		> .serve-check/out.txt 2> .serve-check/log.txt & pid=$$!; \
	for i in $$(seq 1 50); do \
		grep -q 'listening on' .serve-check/out.txt 2>/dev/null && break; sleep 0.1; \
	done; \
	addr=$$(sed -n 's/^boomd: listening on //p' .serve-check/out.txt | head -1); \
	test -n "$$addr" || { echo "serve-smoke: boomd never bound"; kill $$pid; exit 1; }; \
	./.serve-check/boomctl -addr $$addr submit -workloads sha -configs medium \
		-scale tiny -wait > .serve-check/result.json; \
	grep -q '"rows":' .serve-check/result.json; \
	./.serve-check/boomctl -addr $$addr metrics | grep -q 'serve_sweeps_done 1'; \
	kill -TERM $$pid; wait $$pid
	rm -rf .serve-check
	@echo "serve-smoke: OK"

# DSE smoke: boot boomd, drive a 2-axis parametric campaign (4 design
# points) through cmd/dse, and require the shared-stage economy on the
# cold run: one bbv/select/checkpoint chain for the workload next to 4
# detailed measurements. Then restart boomd over the same cache and
# require the warm rerun to be all measurement cache hits with a
# byte-identical frontier (cmp).
dse-smoke:
	rm -rf .dse-check && mkdir -p .dse-check
	$(GO) build -o .dse-check/boomd ./cmd/boomd
	$(GO) build -o .dse-check/boomctl ./cmd/boomctl
	$(GO) build -o .dse-check/dse ./cmd/dse
	set -e; \
	./.dse-check/boomd -addr 127.0.0.1:0 -q -cache .dse-check/cache \
		> .dse-check/out.txt 2> .dse-check/log.txt & pid=$$!; \
	for i in $$(seq 1 50); do \
		grep -q 'listening on' .dse-check/out.txt 2>/dev/null && break; sleep 0.1; \
	done; \
	addr=$$(sed -n 's/^boomd: listening on //p' .dse-check/out.txt | head -1); \
	test -n "$$addr" || { echo "dse-smoke: boomd never bound"; kill $$pid; exit 1; }; \
	./.dse-check/dse -addr $$addr -workloads sha -base medium \
		-axes 'rob=48,64;predictor=tage,gshare' -scale tiny -json \
		> .dse-check/cold.json; \
	./.dse-check/boomctl -addr $$addr metrics > .dse-check/cold.metrics; \
	grep -q '^artifact_bbv_miss 1$$' .dse-check/cold.metrics; \
	grep -q '^artifact_select_miss 1$$' .dse-check/cold.metrics; \
	grep -q '^artifact_checkpoint_miss 1$$' .dse-check/cold.metrics; \
	grep -q '^artifact_measure_miss 4$$' .dse-check/cold.metrics; \
	kill -TERM $$pid; wait $$pid; \
	./.dse-check/boomd -addr 127.0.0.1:0 -q -cache .dse-check/cache \
		> .dse-check/out2.txt 2> .dse-check/log2.txt & pid=$$!; \
	for i in $$(seq 1 50); do \
		grep -q 'listening on' .dse-check/out2.txt 2>/dev/null && break; sleep 0.1; \
	done; \
	addr=$$(sed -n 's/^boomd: listening on //p' .dse-check/out2.txt | head -1); \
	test -n "$$addr" || { echo "dse-smoke: second boomd never bound"; kill $$pid; exit 1; }; \
	./.dse-check/dse -addr $$addr -workloads sha -base medium \
		-axes 'rob=48,64;predictor=tage,gshare' -scale tiny -json \
		> .dse-check/warm.json; \
	./.dse-check/boomctl -addr $$addr metrics > .dse-check/warm.metrics; \
	grep -q '^artifact_measure_hit 4$$' .dse-check/warm.metrics; \
	! grep -q '^artifact_measure_miss [1-9]' .dse-check/warm.metrics; \
	kill -TERM $$pid; wait $$pid
	cmp .dse-check/cold.json .dse-check/warm.json
	rm -rf .dse-check
	@echo "dse-smoke: OK"

# Fabric smoke: boot a coordinator boomd and a worker boomd on ephemeral
# ports, run a campaign through the fabric (worker registered, cells
# leased and reported — no local fallback), then rerun the same campaign
# on a standalone boomd and require the two result bodies to be
# byte-identical (cmp). This is the CLI-level proof of the in-tree
# cross-node conformance suite.
fabric-smoke:
	rm -rf .fabric-check && mkdir -p .fabric-check
	$(GO) build -o .fabric-check/boomd ./cmd/boomd
	$(GO) build -o .fabric-check/boomctl ./cmd/boomctl
	set -e; \
	./.fabric-check/boomd -addr 127.0.0.1:0 -q -cache .fabric-check/store \
		> .fabric-check/coord.txt 2> .fabric-check/coord.log & cpid=$$!; \
	for i in $$(seq 1 50); do \
		grep -q 'listening on' .fabric-check/coord.txt 2>/dev/null && break; sleep 0.1; \
	done; \
	addr=$$(sed -n 's/^boomd: listening on //p' .fabric-check/coord.txt | head -1); \
	test -n "$$addr" || { echo "fabric-smoke: coordinator never bound"; kill $$cpid; exit 1; }; \
	./.fabric-check/boomd -worker -coordinator http://$$addr -worker-id smoke-w1 \
		-cache .fabric-check/wcache \
		> .fabric-check/worker.txt 2> .fabric-check/worker.log & wpid=$$!; \
	for i in $$(seq 1 50); do \
		./.fabric-check/boomctl -addr $$addr metrics 2>/dev/null \
			| grep -q '^fabric_workers 1$$' && break; sleep 0.1; \
	done; \
	./.fabric-check/boomctl -addr $$addr metrics | grep -q '^fabric_workers 1$$' \
		|| { echo "fabric-smoke: worker never registered"; kill $$cpid $$wpid; exit 1; }; \
	./.fabric-check/boomctl -addr $$addr submit -workloads sha,qsort -configs medium \
		-scale tiny -wait > .fabric-check/fabric.json; \
	./.fabric-check/boomctl -addr $$addr status > .fabric-check/status.json; \
	grep -q 'smoke-w1' .fabric-check/status.json; \
	./.fabric-check/boomctl -addr $$addr metrics > .fabric-check/metrics.txt; \
	grep -q '^fabric_cells_done 4$$' .fabric-check/metrics.txt; \
	! grep -q '^fabric_local_fallback [1-9]' .fabric-check/metrics.txt; \
	kill -TERM $$wpid; wait $$wpid; \
	kill -TERM $$cpid; wait $$cpid
	set -e; \
	./.fabric-check/boomd -addr 127.0.0.1:0 -q \
		> .fabric-check/solo.txt 2> .fabric-check/solo.log & pid=$$!; \
	for i in $$(seq 1 50); do \
		grep -q 'listening on' .fabric-check/solo.txt 2>/dev/null && break; sleep 0.1; \
	done; \
	addr=$$(sed -n 's/^boomd: listening on //p' .fabric-check/solo.txt | head -1); \
	test -n "$$addr" || { echo "fabric-smoke: solo boomd never bound"; kill $$pid; exit 1; }; \
	./.fabric-check/boomctl -addr $$addr submit -workloads sha,qsort -configs medium \
		-scale tiny -wait > .fabric-check/solo.json; \
	kill -TERM $$pid; wait $$pid
	cmp .fabric-check/fabric.json .fabric-check/solo.json
	rm -rf .fabric-check
	@echo "fabric-smoke: OK"

# Fabric chaos drill: the full 11×3 conformance matrix on a 3-worker
# in-process cluster where worker-0 corrupts every measure payload it
# reports and every worker's network layer injects stalled polls, 5xx
# report/heartbeat failures, and corrupted/truncated store bodies. The
# final report must stay golden-digest-identical, worker-0 must end the
# run quarantined by the result audit, and no cell may fail.
fabric-chaos:
	$(GO) test -run TestConformanceNetworkChaos -count=1 ./internal/fabric

# Kernel benchmarks: measure the hot-path kernels (BOOM tick, decode,
# stats/power accumulate, functional step) and record cycles/sec, ns/op,
# and allocs/op per BOOM config in BENCH_kernel.json. See README
# "Performance" for the methodology.
bench:
	$(GO) run ./cmd/kernelbench -benchtime 2s -count 3

# Bench smoke: every kernel benchmark runs once (-benchtime 1x) and the
# JSON emitter must see all five kernels — catches perf-harness rot
# without paying for real measurements.
bench-smoke:
	rm -rf .bench-check && mkdir -p .bench-check
	$(GO) run ./cmd/kernelbench -benchtime 1x -out .bench-check/BENCH_kernel.json 2> /dev/null
	for k in tick decode stats_accumulate power_accumulate func_step measure_j1 measure_j4; do \
		grep -q "\"kernel\": \"$$k\"" .bench-check/BENCH_kernel.json \
			|| { echo "bench-smoke: kernel $$k missing"; exit 1; }; \
	done
	rm -rf .bench-check
	@echo "bench-smoke: OK"

# Measure-stage gate (DESIGN §17): one MegaBOOM cell at -j1 vs -j4 must
# produce byte-identical canonical bytes, and -j4 must win the wall clock
# wherever the machine has >= 4 CPUs (single-core CI boxes verify the
# digest half and skip the timing half).
bench-measure:
	BOOM_MEASURE_SPEEDUP=1 $(GO) test -run TestMeasurePointSpeedup -count=1 -v ./internal/core

# Sampling-fidelity gate (DESIGN §18): per-workload sampled-vs-full CPI
# error at MediumBOOM under the BBV-only baseline spec and the recommended
# bbv+mav spec. The recommended spec's mean error must not regress, and
# dijkstra — the memory-bound workload BBV-only sampling mis-clusters —
# must strictly improve. Prints the per-workload delta table.
fidelity:
	BOOM_FIDELITY=1 $(GO) test -run TestFidelityGate -count=1 -v ./internal/core

check: vet race fuzz-smoke bench-smoke bench-measure fidelity cache-roundtrip chaos resume-roundtrip serve-smoke dse-smoke fabric-smoke fabric-chaos
