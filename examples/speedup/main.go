// Speedup: validate the SimPoint methodology itself, the paper's §IV-A
// claim — a large reduction in detailed-simulation work (45× in the paper)
// at high accuracy (≥90 % coverage). The example profiles one workload,
// runs both the SimPoint flow and a full detailed simulation, and compares
// cost and IPC.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	const name = "bitcount"
	scale := workloads.ScaleDefault
	fc := core.FlowConfigFor(scale)
	cfg := boom.LargeBOOM()

	w, err := workloads.Build(name, scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiling %s (%s scale)...\n", name, scale)
	p, err := core.New(fc).Profile(context.Background(), w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d instructions in %d intervals of %d\n",
		p.TotalInsts, len(p.Vectors), w.IntervalSize)
	fmt.Printf("  k=%d clusters, %d simulation points, %.1f%% coverage\n\n",
		p.Selection.K, p.NumSimPoints(), 100*p.Selection.Coverage)

	sp, err := core.New(fc).Run(context.Background(), p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	w2, err := workloads.Build(name, scale)
	if err != nil {
		log.Fatal(err)
	}
	full, err := core.New(fc).RunFull(context.Background(), w2, cfg)
	if err != nil {
		log.Fatal(err)
	}

	speedup := float64(full.DetailedInsts) / float64(sp.DetailedInsts)
	errPct := 100 * math.Abs(sp.IPC()-full.IPC()) / full.IPC()
	fmt.Printf("detailed-model instructions: full %d vs simpoints %d  →  %.1f× less work\n",
		full.DetailedInsts, sp.DetailedInsts, speedup)
	fmt.Printf("IPC: full %.3f vs simpoints %.3f  →  %.2f%% error\n", full.IPC(), sp.IPC(), errPct)
	fmt.Printf("power: full %.2f mW vs simpoints %.2f mW\n", full.TotalPowerMW(), sp.TotalPowerMW())
	fmt.Println("\n(the paper reports 45× at its 1:300 interval-to-program ratio;")
	fmt.Println(" the reduction grows with workload size — try -scale paper workloads)")
}
