// Energy: reproduce the paper's headline energy-efficiency result (Figs. 10
// and 11): the biggest core wins on IPC, but the smallest core wins on
// performance per watt on most workloads.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	names := []string{"sha", "qsort", "stringsearch", "tarfind"}
	configs := boom.Configs()
	fc := core.FlowConfigFor(workloads.ScaleTiny)

	sw, err := core.New(fc, core.WithScale(workloads.ScaleTiny)).Sweep(context.Background(),
		core.NewCampaign(names, configs, workloads.ScaleTiny))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s", "IPC")
	for _, c := range configs {
		fmt.Printf(" %12s", c.Name)
	}
	fmt.Println()
	for _, n := range names {
		fmt.Printf("%-14s", n)
		for _, c := range configs {
			fmt.Printf(" %12.2f", sw.Results[c.Name][n].IPC())
		}
		fmt.Println()
	}

	fmt.Printf("\n%-14s", "IPC/W")
	for _, c := range configs {
		fmt.Printf(" %12s", c.Name)
	}
	fmt.Println()
	wins := map[string]int{}
	for _, n := range names {
		fmt.Printf("%-14s", n)
		best, bestV := "", 0.0
		for _, c := range configs {
			v := sw.Results[c.Name][n].PerfPerWatt()
			fmt.Printf(" %12.0f", v)
			if v > bestV {
				best, bestV = c.Name, v
			}
		}
		wins[best]++
		fmt.Printf("   ← %s\n", best)
	}

	fmt.Println()
	for _, c := range configs {
		if wins[c.Name] > 0 {
			fmt.Printf("%s wins perf/W on %d of %d workloads\n", c.Name, wins[c.Name], len(names))
		}
	}
	fmt.Println("\npaper's conclusion: the smallest OoO core, while slowest, prevails in energy efficiency")
}
