// Quickstart: evaluate one workload on one BOOM design point with the
// SimPoint-based flow and print IPC, energy efficiency and the top power
// hotspots — the whole pipeline of the paper in a few lines.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	// 1. Build a workload (MiBench sha at test scale).
	w, err := workloads.Build("sha", workloads.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Profile: BBVs → SimPoint clustering → checkpoints.
	fc := core.FlowConfigFor(workloads.ScaleTiny)
	profile, err := core.New(fc).Profile(context.Background(), w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d instructions, %d simulation points (%.0f%% coverage)\n",
		w.Name, profile.TotalInsts, profile.NumSimPoints(),
		100*profile.Selection.Coverage)

	// 3. Measure the simulation points on MediumBOOM and estimate power.
	res, err := core.New(fc).Run(context.Background(), profile, boom.MediumBOOM())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IPC %.2f, tile power %.2f mW, %.0f IPC/W\n\n",
		res.IPC(), res.TotalPowerMW(), res.PerfPerWatt())

	// 4. Rank the power hotspots (the paper's Figs. 5–7 view).
	comps := boom.AnalyzedComponents()
	sort.Slice(comps, func(i, j int) bool {
		return res.Power.Comp[comps[i]].TotalMW() > res.Power.Comp[comps[j]].TotalMW()
	})
	fmt.Println("top-5 power hotspots:")
	for _, c := range comps[:5] {
		fmt.Printf("  %-16s %5.2f mW\n", c, res.Power.Comp[c].TotalMW())
	}
}
