// Hotspots: reproduce the paper's per-component hotspot analysis (the view
// behind Figs. 5–7 and Key Takeaways #1–#8) on a few workloads, then run
// the Takeaway-#7 ablation: how much of the branch-predictor power is TAGE
// itself, measured by swapping in a GShare predictor.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/asap7"
	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workloads"
)

var names = []string{"bitcount", "dijkstra", "fft"}

func main() {
	cfg := boom.LargeBOOM()
	fc := core.FlowConfigFor(workloads.ScaleTiny)

	fmt.Printf("per-component power (mW) on %s:\n\n%-16s", cfg.Name, "component")
	for _, n := range names {
		fmt.Printf(" %12s", n)
	}
	fmt.Println()

	results := map[string]*core.Result{}
	for _, n := range names {
		w, err := workloads.Build(n, workloads.ScaleTiny)
		if err != nil {
			log.Fatal(err)
		}
		p, err := core.New(fc).Profile(context.Background(), w)
		if err != nil {
			log.Fatal(err)
		}
		r, err := core.New(fc).Run(context.Background(), p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		results[n] = r
	}
	for _, c := range boom.AnalyzedComponents() {
		fmt.Printf("%-16s", c)
		for _, n := range names {
			fmt.Printf(" %12.2f", results[n].Power.Comp[c].TotalMW())
		}
		fmt.Println()
	}

	// Ablation (Key Takeaway #7): TAGE vs GShare branch-predictor power.
	fmt.Println("\nTAGE vs GShare branch-predictor power (dijkstra):")
	tage := bpPower(cfg, "dijkstra")
	gcfg := cfg
	gcfg.Predictor = boom.PredictorGShare
	gshare := bpPower(gcfg, "dijkstra")
	fmt.Printf("  TAGE   %5.2f mW\n  GShare %5.2f mW\n  ratio  %.1f× (paper: ≈2.5×)\n",
		tage, gshare, tage/gshare)
}

func bpPower(cfg boom.Config, name string) float64 {
	w, err := workloads.Build(name, workloads.ScaleTiny)
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := w.NewCPU()
	if err != nil {
		log.Fatal(err)
	}
	c, err := boom.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.Run(func(r *sim.Retired) bool {
		if cpu.Halted {
			return false
		}
		if err := cpu.Step(r); err != nil {
			log.Fatal(err)
		}
		return true
	}, math.MaxUint64); err != nil {
		log.Fatal(err)
	}
	rep, err := power.NewEstimator(cfg, asap7.Default()).Estimate(c.Stats())
	if err != nil {
		log.Fatal(err)
	}
	return rep.Comp[boom.CompBranchPredictor].TotalMW()
}
