// Equivalence suite: pins the detailed-model results at counter-level
// bit-identity. The golden digests in testdata/equivalence_golden.txt were
// generated from the pre-optimization cycle model; any hot-path rewrite
// (decode cache, µop arena, batched accumulators) must keep every digest
// byte-identical or this test names the exact (config, workload) cell that
// drifted.
//
// Two layers of digest per sweep cell:
//   - the canonical boom.EncodeStats bytes of the weighted-aggregate Stats
//     (every activity counter, not just headline IPC), and
//   - the canonical serve.EncodeSweep JSON of the whole sweep (what boomd
//     clients and the report tables consume).
//
// Full-detail runs (no SimPoint sampling) are pinned for a subset so the
// non-sampled path is covered too.
//
// Regenerate with: go test -run TestEquivalenceGolden -update-equiv .
package repro_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/workloads"
)

var updateEquiv = flag.Bool("update-equiv", false, "rewrite testdata/equivalence_golden.txt from the current model")

func statsDigest(t *testing.T, s *boom.Stats) string {
	t.Helper()
	var buf bytes.Buffer
	if err := boom.EncodeStats(&buf, s); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
}

// equivalenceDigests runs the tiny-scale sweep over every workload × config
// plus full-detail runs for a subset, and returns one "key digest" line per
// pinned artifact, sorted by key.
func equivalenceDigests(t *testing.T) []string {
	t.Helper()
	scale := workloads.ScaleTiny
	r := core.New(core.FlowConfigFor(scale), core.WithScale(scale))
	names := workloads.Names()
	configs := boom.Configs()
	sw, err := r.Sweep(context.Background(), core.NewCampaign(names, configs, scale))
	if err != nil {
		t.Fatal(err)
	}

	var lines []string
	for _, cfg := range configs {
		for _, name := range names {
			res := sw.Results[cfg.Name][name]
			if res == nil || res.Stats == nil {
				t.Fatalf("sweep missing result for %s/%s", cfg.Name, name)
			}
			lines = append(lines, fmt.Sprintf("simpoint/%s/%s %s", cfg.Name, name, statsDigest(t, res.Stats)))
		}
	}

	enc, err := serve.EncodeSweep("equiv", scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	lines = append(lines, fmt.Sprintf("sweepjson %x", sha256.Sum256(enc)))

	// Full-detail coverage: the non-sampled path, one cell per config on
	// workloads with distinct branch/memory character.
	for _, fc := range []struct{ cfg, name string }{
		{"MediumBOOM", "sha"},
		{"LargeBOOM", "matmult"},
		{"MegaBOOM", "qsort"},
	} {
		cfg, err := boom.ConfigByName(fc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		w, err := workloads.Build(fc.name, scale)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunFull(context.Background(), w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, fmt.Sprintf("full/%s/%s %s", fc.cfg, fc.name, statsDigest(t, res.Stats)))
	}

	sort.Strings(lines)
	return lines
}

func TestEquivalenceGolden(t *testing.T) {
	golden := filepath.Join("testdata", "equivalence_golden.txt")
	got := strings.Join(equivalenceDigests(t), "\n") + "\n"

	if *updateEquiv {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-equiv): %v", err)
	}
	if string(want) == got {
		return
	}
	// Diff by key so a drift names the exact cell, not just "mismatch".
	wantBy := map[string]string{}
	for _, ln := range strings.Split(strings.TrimSpace(string(want)), "\n") {
		if k, v, ok := strings.Cut(ln, " "); ok {
			wantBy[k] = v
		}
	}
	for _, ln := range strings.Split(strings.TrimSpace(got), "\n") {
		k, v, _ := strings.Cut(ln, " ")
		switch wv, ok := wantBy[k]; {
		case !ok:
			t.Errorf("%s: not in golden", k)
		case wv != v:
			t.Errorf("%s: digest drifted\n  golden %s\n  got    %s", k, wv, v)
		}
		delete(wantBy, k)
	}
	for k := range wantBy {
		t.Errorf("%s: missing from current run", k)
	}
	if !t.Failed() {
		t.Error("golden mismatch (ordering/format)")
	}
}
