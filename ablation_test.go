// Ablation benchmarks for the design choices the paper's Key Takeaways call
// out: collapsing-queue energy (#5), ROB sizing (#6), and MSHR/memory-unit
// scaling (#8). Each bench sweeps the knob on MegaBOOM and reports the
// performance/power trade-off rows the takeaway discusses.
package repro_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/asap7"
	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/prertl"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ablate runs one workload on a modified MegaBOOM and returns IPC plus the
// power of one component and the whole tile.
func ablate(b *testing.B, name string, mod func(*boom.Config), comp boom.Component) (ipc, compMW, tileMW float64) {
	b.Helper()
	cfg := boom.MegaBOOM()
	mod(&cfg)
	w, err := workloads.Build(name, workloads.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := w.NewCPU()
	if err != nil {
		b.Fatal(err)
	}
	c, err := boom.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.Run(func(r *sim.Retired) bool {
		if cpu.Halted {
			return false
		}
		if err := cpu.Step(r); err != nil {
			panic(err)
		}
		return true
	}, math.MaxUint64); err != nil {
		b.Fatal(err)
	}
	rep, err := power.NewEstimator(cfg, asap7.Default()).Estimate(c.Stats())
	if err != nil {
		b.Fatal(err)
	}
	return c.Stats().IPC(), rep.Comp[comp].TotalMW(), rep.TotalMW()
}

var ablOnce sync.Map

func ablShow(key, s string) {
	if _, loaded := ablOnce.LoadOrStore(key, true); !loaded {
		fmt.Print(s)
	}
}

// BenchmarkAblationROBSize sweeps the reorder buffer (Key Takeaway #6:
// adaptive ROB sizing trades stalls against power).
func BenchmarkAblationROBSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := "ablation: ROB size on MegaBOOM (sha)\nROB   IPC    ROB-mW  tile-mW\n"
		for _, entries := range []int{32, 64, 96, 128, 192} {
			entries := entries
			ipc, rob, tile := ablate(b, "sha", func(c *boom.Config) {
				c.RobEntries = entries
			}, boom.CompRob)
			out += fmt.Sprintf("%-5d %-6.2f %-7.2f %.2f\n", entries, ipc, rob, tile)
		}
		ablShow("rob", out+"\n")
	}
}

// BenchmarkAblationMSHR sweeps miss-handling registers on the miss-bound
// dijkstra workload (Key Takeaway #8: more MSHRs buy performance for power).
func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := "ablation: L1D MSHRs on MegaBOOM (dijkstra)\nMSHRs IPC    L1D-mW  tile-mW\n"
		for _, m := range []int{1, 2, 4, 8, 16} {
			m := m
			ipc, dc, tile := ablate(b, "dijkstra", func(c *boom.Config) {
				c.DCacheMSHRs = m
			}, boom.CompDCache)
			out += fmt.Sprintf("%-5d %-6.2f %-7.2f %.2f\n", m, ipc, dc, tile)
		}
		ablShow("mshr", out+"\n")
	}
}

// BenchmarkAblationMemUnits toggles MegaBOOM's second memory execution unit
// (the other half of Key Takeaway #8).
func BenchmarkAblationMemUnits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := "ablation: memory execution units on MegaBOOM (matmult)\nunits IPC    L1D-mW  tile-mW\n"
		for _, u := range []int{1, 2} {
			u := u
			ipc, dc, tile := ablate(b, "matmult", func(c *boom.Config) {
				c.MemIssueWidth = u
			}, boom.CompDCache)
			out += fmt.Sprintf("%-5d %-6.2f %-7.2f %.2f\n", u, ipc, dc, tile)
		}
		ablShow("memu", out+"\n")
	}
}

// BenchmarkAblationIssueSlots sweeps the integer issue queue depth (Key
// Takeaway #5 territory: deeper collapsing queues cost energy per entry).
func BenchmarkAblationIssueSlots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := "ablation: integer issue slots on MegaBOOM (dijkstra)\nslots IPC    IQ-mW   tile-mW\n"
		for _, s := range []int{12, 20, 28, 40, 64} {
			s := s
			ipc, iq, tile := ablate(b, "dijkstra", func(c *boom.Config) {
				c.IntIssueSlots = s
			}, boom.CompIntIssue)
			out += fmt.Sprintf("%-5d %-6.2f %-7.2f %.2f\n", s, ipc, iq, tile)
		}
		ablShow("slots", out+"\n")
	}
}

// BenchmarkBaselinePreRTL quantifies the accuracy gap between the McPAT-
// style pre-RTL baseline (internal/prertl) and the calibrated RTL-style
// flow — the paper's §II motivation for working at RTL.
func BenchmarkBaselinePreRTL(b *testing.B) {
	cfg := boom.LargeBOOM()
	est := power.NewEstimator(cfg, asap7.Default())
	var avgErr float64
	for i := 0; i < b.N; i++ {
		var sumErr float64
		var n int
		for _, name := range []string{"sha", "dijkstra", "fft"} {
			st := runTiming(b, name, cfg)
			rtl, err := est.Estimate(st)
			if err != nil {
				b.Fatal(err)
			}
			pre, err := prertl.Estimate(cfg, st)
			if err != nil {
				b.Fatal(err)
			}
			for _, comp := range boom.AnalyzedComponents() {
				ref := rtl.Comp[comp].TotalMW()
				if ref < 0.05 {
					continue
				}
				sumErr += math.Abs(pre.MW[comp]-ref) / ref
				n++
			}
		}
		avgErr = sumErr / float64(n)
	}
	b.ReportMetric(100*avgErr, "preRTL-error-%")
}

// BenchmarkAblationL2 sweeps the shared L2 size against a dijkstra instance
// whose adjacency matrix is ~400 KiB: IPC jumps once the matrix becomes
// L2-resident.
func BenchmarkAblationL2(b *testing.B) {
	w, err := workloads.BuildDijkstraCustom(320, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		out := "ablation: L2 capacity on MegaBOOM (dijkstra V=320, 410 KiB matrix)\nL2-KiB IPC    cycles\n"
		for _, kib := range []int{128, 256, 512, 1024} {
			cfg := boom.MegaBOOM()
			cfg.L2KiB = kib
			cpu, err := w.NewCPU()
			if err != nil {
				b.Fatal(err)
			}
			c, err := boom.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := c.Run(func(r *sim.Retired) bool {
				if cpu.Halted {
					return false
				}
				if err := cpu.Step(r); err != nil {
					panic(err)
				}
				return true
			}, math.MaxUint64); err != nil {
				b.Fatal(err)
			}
			out += fmt.Sprintf("%-6d %-6.2f %d\n", kib, c.Stats().IPC(), c.Stats().Cycles)
		}
		ablShow("l2", out+"\n")
	}
}

// BenchmarkAblationWarmup quantifies the §IV-A warm-up requirement: the
// SimPoint IPC error against a full detailed run shrinks as the pre-
// measurement warm-up window grows (cold caches/predictor otherwise bias
// every interval).
func BenchmarkAblationWarmup(b *testing.B) {
	cfg := boom.LargeBOOM()
	w, err := workloads.Build("stringsearch", workloads.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	full, err := core.New(core.DefaultFlowConfig()).RunFull(context.Background(), w, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var last float64
	for i := 0; i < b.N; i++ {
		out := "ablation: SimPoint warm-up window (stringsearch, LargeBOOM)\nwarmup  simpoint-IPC  full-IPC  error%\n"
		for _, warm := range []int64{0, 2000, 10000, 20000} {
			fc := core.DefaultFlowConfig()
			fc.WarmupInsts = warm
			w2, err := workloads.Build("stringsearch", workloads.ScaleTiny)
			if err != nil {
				b.Fatal(err)
			}
			p, err := core.New(fc).Profile(context.Background(), w2)
			if err != nil {
				b.Fatal(err)
			}
			r, err := core.New(fc).Run(context.Background(), p, cfg)
			if err != nil {
				b.Fatal(err)
			}
			errPct := 100 * (r.IPC() - full.IPC()) / full.IPC()
			out += fmt.Sprintf("%-7d %-13.3f %-9.3f %+.2f\n", warm, r.IPC(), full.IPC(), errPct)
			last = math.Abs(errPct)
		}
		ablShow("warmup", out+"\n")
	}
	b.ReportMetric(last, "final-IPC-error-%")
}
