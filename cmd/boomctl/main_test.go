package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// startServer stands up a serve.Server and returns its host:port.
func startServer(t *testing.T, cfg serve.Config) string {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestSubmitWait: the submit -wait round trip prints the result JSON.
func TestSubmitWait(t *testing.T) {
	addr := startServer(t, serve.Config{})
	var out bytes.Buffer
	err := run([]string{"-addr", addr, "submit",
		"-workloads", "sha", "-configs", "medium", "-scale", "tiny", "-wait"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var res serve.SweepResult
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("output %q is not a SweepResult: %v", out.String(), err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Workload != "sha" || res.Rows[0].IPC <= 0 {
		t.Errorf("unexpected result rows: %+v", res.Rows)
	}

	// submit without -wait prints the job id; status and result then work.
	out.Reset()
	if err := run([]string{"-addr", addr, "submit", "-workloads", "sha",
		"-configs", "medium", "-scale", "tiny"}, &out); err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(out.String())
	if id != res.ID {
		t.Errorf("resubmission id %q, want collapsed onto %q", id, res.ID)
	}
	out.Reset()
	if err := run([]string{"-addr", addr, "status", id}, &out); err != nil {
		t.Fatal(err)
	}
	var st serve.Status
	if err := json.Unmarshal(out.Bytes(), &st); err != nil || st.ID != id {
		t.Errorf("status output %q (err %v)", out.String(), err)
	}
	out.Reset()
	if err := run([]string{"-addr", addr, "result", id, "-wait"}, &out); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(out.Bytes()) {
		t.Errorf("result output is not JSON: %q", out.String())
	}
}

// TestSubmitParametricBodyGolden pins the exact request bytes the
// parametric flags produce: -base/-axes/-override must marshal into the
// documented v2 POST /v1/sweeps shape (axis values as canonical strings,
// map keys sorted by encoding/json), so any drift in the wire format —
// which boomd-side request fingerprinting depends on — fails here before
// it can strand a client.
func TestSubmitParametricBodyGolden(t *testing.T) {
	var gotBody []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var err error
		if gotBody, err = io.ReadAll(r.Body); err != nil {
			t.Error(err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"job-golden","state":"queued"}`))
	}))
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{"-addr", strings.TrimPrefix(ts.URL, "http://"), "submit",
		"-workloads", "sha,qsort", "-base", "medium",
		"-axes", "rob=64,96;predictor=tage,gshare",
		"-override", "l2-kib=1024", "-scale", "tiny"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"workloads":["sha","qsort"],"scale":"tiny","base":"medium",` +
		`"config_overrides":{"l2-kib":"1024"},` +
		`"axes":{"predictor":["tage","gshare"],"rob":["64","96"]}}`
	if string(gotBody) != want {
		t.Errorf("parametric request body drifted:\n got %s\nwant %s", gotBody, want)
	}
	if got := strings.TrimSpace(out.String()); got != "job-golden" {
		t.Errorf("submit printed %q, want the job id", got)
	}

	// The same flags must round-trip through a real server into a valid
	// expansion: 2x2 points around the pinned L2.
	addr := startServer(t, serve.Config{})
	out.Reset()
	if err := run([]string{"-addr", addr, "submit", "-workloads", "sha",
		"-base", "medium", "-axes", "rob=64,96;predictor=tage,gshare",
		"-override", "l2-kib=1024", "-scale", "tiny", "-wait"}, &out); err != nil {
		t.Fatal(err)
	}
	var res serve.SweepResult
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("output %q is not a SweepResult: %v", out.String(), err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("expected 4 rows (2x2 axes, 1 workload), got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !strings.Contains(row.Config, "l2-kib=1024") {
			t.Errorf("design point %q lost the override", row.Config)
		}
	}
}

// TestClientErrors: server-side rejections surface as errors carrying the
// server's message, and usage mistakes never hit the network.
func TestClientErrors(t *testing.T) {
	addr := startServer(t, serve.Config{})
	var out bytes.Buffer
	err := run([]string{"-addr", addr, "submit", "-workloads", "linpack"}, &out)
	if err == nil || !strings.Contains(err.Error(), "linpack") {
		t.Errorf("unknown workload error %v must carry the server message", err)
	}
	if err := run([]string{"-addr", addr, "status", "nope"}, &out); err == nil {
		t.Error("status of unknown id must fail")
	}
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"-addr"},
		{"submit", "-bogus"},
		{"status", "id", "extra"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %q must fail usage", args)
		}
	}
}

// TestStatusFabric: bare `boomctl status` reads the coordinator's fabric
// status endpoint.
func TestStatusFabric(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/fabric/status" {
			t.Errorf("bare status hit %s, want /v1/fabric/status", r.URL.Path)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"draining":false,"workers":[],"campaigns":[]}`))
	}))
	defer ts.Close()
	var out bytes.Buffer
	if err := run([]string{"-addr", strings.TrimPrefix(ts.URL, "http://"), "status"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"draining":false`) {
		t.Errorf("status output %q", out.String())
	}
}

// TestStatusDraining: a node that never stops draining is retried the
// bounded number of times (honoring its Retry-After hint) and then
// surfaces as a typed error carrying both the server's message and the
// hint — the regressions this pins are bare-TCP-error-looking output for
// a node that is merely shutting down, and unbounded retry loops.
func TestStatusDraining(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		w.Header().Set("Retry-After", "0") // "ask again immediately", forever
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"coordinator is draining; retry later"}`))
	}))
	defer ts.Close()
	var out bytes.Buffer
	err := run([]string{"-addr", strings.TrimPrefix(ts.URL, "http://"), "status"}, &out)
	if err == nil {
		t.Fatal("draining status must fail")
	}
	for _, want := range []string{"503", "draining", "retry after 0s"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("draining error %q missing %q", err, want)
		}
	}
	if got := atomic.LoadInt32(&calls); got != drainRetries+1 {
		t.Errorf("client made %d requests, want %d (initial + %d capped retries)",
			got, drainRetries+1, drainRetries)
	}
}

// TestStatusDrainRecovery: against a coordinator that finishes draining
// after a couple of rejections, boomctl's Retry-After backoff rides the
// drain out and the read succeeds with no error surfaced at all.
func TestStatusDrainRecovery(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"coordinator is draining; retry later"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"draining":false,"workers":[{"id":"w1","live":true,"cells_done":3,"last_seen_ms":10,"quarantined":true}],"campaigns":[]}`))
	}))
	defer ts.Close()
	var out bytes.Buffer
	if err := run([]string{"-addr", strings.TrimPrefix(ts.URL, "http://"), "status"}, &out); err != nil {
		t.Fatalf("status through a finishing drain: %v", err)
	}
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Errorf("client made %d requests, want 3 (two rejections, one success)", got)
	}
	// The quarantine flag travels through to the operator unmangled.
	if !strings.Contains(out.String(), `"quarantined":true`) {
		t.Errorf("status output %q lost the quarantined marker", out.String())
	}
}

// TestRetryDelay pins the backoff arithmetic: server hints win but are
// capped, and without a parseable hint the fallback doubles from 500ms up
// to the same ceiling.
func TestRetryDelay(t *testing.T) {
	cases := []struct {
		attempt    int
		retryAfter string
		want       time.Duration
	}{
		{0, "5", 5 * time.Second},
		{3, "0", 0},
		{0, "86400", 15 * time.Second}, // confused server: capped
		{0, "soon", 500 * time.Millisecond},
		{1, "", time.Second},
		{2, "", 2 * time.Second},
		{10, "", 15 * time.Second},
		{0, "-1", 500 * time.Millisecond},
	}
	for _, c := range cases {
		if got := retryDelay(c.attempt, c.retryAfter); got != c.want {
			t.Errorf("retryDelay(%d, %q) = %s, want %s", c.attempt, c.retryAfter, got, c.want)
		}
	}
}

// TestMetricsAndHealth: the introspection subcommands print the raw
// endpoint bodies.
func TestMetricsAndHealth(t *testing.T) {
	addr := startServer(t, serve.Config{})
	var out bytes.Buffer
	if err := run([]string{"-addr", addr, "health"}, &out); err != nil {
		t.Fatal(err)
	}
	if s := out.String(); !strings.Contains(s, "ok") || !strings.Contains(s, "ready") {
		t.Errorf("health output %q", s)
	}
	out.Reset()
	if err := run([]string{"-addr", addr, "metrics"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "serve_http_requests") {
		t.Errorf("metrics output missing serving series:\n%s", out.String())
	}
}
