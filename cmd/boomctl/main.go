// Command boomctl is the boomd client the tests and Makefile drive:
//
//	boomctl [-addr HOST:PORT] submit [-workloads sha,qsort] [-configs medium] [-scale tiny] [-wait]
//	boomctl [-addr HOST:PORT] submit -base MediumBOOM -axes 'rob=64,96;predictor=tage,gshare' [-override 'l2-kib=1024']
//	boomctl [-addr HOST:PORT] submit -workloads dijkstra -features bbv+mav -warmup 5x [-interval N] [-sp-dims N] [-sp-maxk N]
//	boomctl [-addr HOST:PORT] status [ID]
//	boomctl [-addr HOST:PORT] result ID [-wait]
//	boomctl [-addr HOST:PORT] metrics
//	boomctl [-addr HOST:PORT] health
//
// submit prints the job ID (the campaign fingerprint) on stdout; with
// -wait it blocks until the sweep is terminal and prints the result JSON
// instead. status with an ID reports that job; with no ID it reports the
// fabric (registered workers — including any quarantined by result
// auditing — and in-flight campaigns' cell accounting). A draining
// coordinator answers reads with 503 + Retry-After; boomctl honors the
// hint with a capped backoff and retries, surfacing the typed "retry
// after Ns" error only if the node is still draining after that. Exit
// status is non-zero on any HTTP error, including a failed sweep.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dse"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "boomctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	// Global flags come before the subcommand; sub-flags after it.
	addr := "127.0.0.1:8080"
	timeout := 10 * time.Minute
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch {
		case args[0] == "-addr" && len(args) > 1:
			addr = args[1]
			args = args[2:]
		case args[0] == "-timeout" && len(args) > 1:
			d, err := time.ParseDuration(args[1])
			if err != nil {
				return fmt.Errorf("-timeout: %w", err)
			}
			timeout = d
			args = args[2:]
		default:
			return usage()
		}
	}
	if len(args) == 0 {
		return usage()
	}
	c := &client{
		base: "http://" + addr,
		http: &http.Client{Timeout: timeout},
		out:  out,
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		return c.submit(rest)
	case "status":
		switch len(rest) {
		case 0:
			return c.get("/v1/fabric/status")
		case 1:
			return c.get("/v1/sweeps/" + rest[0])
		default:
			return usage()
		}
	case "result":
		wait := len(rest) == 2 && rest[1] == "-wait"
		if len(rest) != 1 && !wait {
			return usage()
		}
		return c.result(rest[0], wait)
	case "metrics":
		return c.get("/metrics")
	case "health":
		if err := c.get("/healthz"); err != nil {
			return err
		}
		return c.get("/readyz")
	}
	return usage()
}

func usage() error {
	return fmt.Errorf("usage: boomctl [-addr HOST:PORT] [-timeout D] " +
		"submit [-workloads a,b] [-configs x,y | -base CFG -axes 'p=v1,v2;…' -override 'p=v;…'] [-scale S] " +
		"[-interval N] [-features bbv|bbv+mav] [-sp-dims N] [-sp-maxk N] [-warmup none|N|Nx] [-wait] | " +
		"status [ID] | result ID [-wait] | metrics | health")
}

type client struct {
	base string
	http *http.Client
	out  io.Writer
}

// sampl lazily allocates the request's sampling block, so the block is
// emitted only when a sampling flag was actually given and flagless
// submissions stay byte-identical to pre-sampling boomctl.
func sampl(req *serve.SweepRequest) *serve.SamplingRequest {
	if req.Sampling == nil {
		req.Sampling = &serve.SamplingRequest{}
	}
	return req.Sampling
}

func (c *client) submit(args []string) error {
	var req serve.SweepRequest
	wait := false
	for i := 0; i < len(args); i++ {
		switch {
		case args[i] == "-workloads" && i+1 < len(args):
			i++
			req.Workloads = splitList(args[i])
		case args[i] == "-configs" && i+1 < len(args):
			i++
			req.Configs = splitList(args[i])
		case args[i] == "-scale" && i+1 < len(args):
			i++
			req.Scale = args[i]
		case args[i] == "-base" && i+1 < len(args):
			i++
			req.Base = args[i]
		case args[i] == "-axes" && i+1 < len(args):
			i++
			axes, err := dse.ParseAxes(args[i])
			if err != nil {
				return fmt.Errorf("-axes: %w", err)
			}
			req.Axes = map[string][]serve.AxisValue{}
			for _, ax := range axes {
				vals := make([]serve.AxisValue, len(ax.Values))
				for j, v := range ax.Values {
					vals[j] = serve.AxisValue(v)
				}
				req.Axes[ax.Param] = vals
			}
		case args[i] == "-override" && i+1 < len(args):
			i++
			ovs, err := dse.ParseOverrides(args[i])
			if err != nil {
				return fmt.Errorf("-override: %w", err)
			}
			req.ConfigOverrides = map[string]serve.AxisValue{}
			for _, ov := range ovs {
				req.ConfigOverrides[ov.Param] = serve.AxisValue(ov.Value)
			}
		case args[i] == "-interval" && i+1 < len(args):
			i++
			n, err := strconv.ParseInt(args[i], 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf("-interval %q: want a non-negative instruction count", args[i])
			}
			sampl(&req).Interval = n
		case args[i] == "-features" && i+1 < len(args):
			i++
			sampl(&req).Features = args[i]
		case args[i] == "-sp-dims" && i+1 < len(args):
			i++
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 0 {
				return fmt.Errorf("-sp-dims %q: want a non-negative integer", args[i])
			}
			sampl(&req).Dims = n
		case args[i] == "-sp-maxk" && i+1 < len(args):
			i++
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 0 {
				return fmt.Errorf("-sp-maxk %q: want a non-negative integer", args[i])
			}
			sampl(&req).MaxK = n
		case args[i] == "-warmup" && i+1 < len(args):
			i++
			sampl(&req).Warmup = args[i]
		case args[i] == "-wait":
			wait = true
		default:
			return usage()
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	b, err := readBody(resp)
	if err != nil {
		return err
	}
	var st serve.Status
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("decoding submit response: %w", err)
	}
	if !wait {
		fmt.Fprintln(c.out, st.ID)
		return nil
	}
	return c.result(st.ID, true)
}

// result fetches the canonical result JSON; with wait it long-polls until
// the job is terminal (re-polling if a proxy cuts the long poll short).
func (c *client) result(id string, wait bool) error {
	for {
		url := c.base + "/v1/sweeps/" + id + "/result"
		if wait {
			url += "?wait=1"
		}
		resp, err := c.http.Get(url)
		if err != nil {
			return err
		}
		b, err := readBody(resp)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusAccepted {
			if !wait {
				return fmt.Errorf("sweep %s not finished (use -wait)", id)
			}
			time.Sleep(200 * time.Millisecond)
			continue
		}
		_, werr := c.out.Write(b)
		return werr
	}
}

// drainRetries bounds how many 503 drain rejections a read is retried
// through before the typed error is surfaced to the caller.
const drainRetries = 5

// retryDelay is how long to wait before re-asking a draining node: the
// server's Retry-After hint when it sent a parseable one, otherwise a
// doubling backoff from 500ms — either way capped, so a confused server
// advertising "Retry-After: 86400" cannot park the client for a day.
func retryDelay(attempt int, retryAfter string) time.Duration {
	const ceiling = 15 * time.Second
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		if d := time.Duration(secs) * time.Second; d < ceiling {
			return d
		}
		return ceiling
	}
	d := 500 * time.Millisecond
	for i := 0; i < attempt && d < ceiling; i++ {
		d *= 2
	}
	if d > ceiling {
		return ceiling
	}
	return d
}

func (c *client) get(path string) error {
	for attempt := 0; ; attempt++ {
		resp, err := c.http.Get(c.base + path)
		if err != nil {
			return err
		}
		// A draining node answers 503 + Retry-After ("ask again shortly"),
		// which is a wait instruction, not a failure — honor it with a
		// capped backoff before giving up.
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < drainRetries {
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				time.Sleep(retryDelay(attempt, ra))
				continue
			}
		}
		b, err := readBody(resp)
		if err != nil {
			return err
		}
		_, werr := c.out.Write(b)
		return werr
	}
}

// readBody drains the response and turns non-2xx (other than 202, which
// callers branch on) into an error carrying the server's message — plus
// the Retry-After hint when the server sent one, so a draining node reads
// as "retry after Ns", not a bare failure.
func readBody(resp *http.Response) ([]byte, error) {
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return nil, fmt.Errorf("%s: %s (retry after %ss)", resp.Status, bytes.TrimSpace(b), ra)
		}
		return nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	}
	return b, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
