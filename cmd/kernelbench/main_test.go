package main

import "testing"

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/boom
cpu: AMD EPYC 7B13
BenchmarkKernelTickMediumBOOM-8   	      66	  17072339 ns/op	   5366232 cycles/s	     108.3 ns/inst	  700816 B/op	    1593 allocs/op
BenchmarkKernelTickMediumBOOM-8   	      70	  16900000 ns/op	   5400000 cycles/s	     107.0 ns/inst	  700000 B/op	    1593 allocs/op
BenchmarkKernelDecode-8           	52000000	      22.65 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernelStatsAccumulate-8  	 4900000	     241.4 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/boom	5.1s
pkg: repro/internal/power
BenchmarkKernelPowerAccumulateMegaBOOM-8	 3300000	     357.7 ns/op	     672 B/op	       2 allocs/op
PASS
ok  	repro/internal/power	1.2s
`

func TestParseBenchOutput(t *testing.T) {
	rep := parseBenchOutput(sampleOutput)
	if rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("parsed %d results, want 4 (duplicate runs must merge)", len(rep.Results))
	}

	tick := rep.Results[0]
	if tick.Name != "KernelTickMediumBOOM" || tick.Kernel != "tick" || tick.Config != "MediumBOOM" {
		t.Errorf("tick identity: %+v", tick)
	}
	if tick.Package != "repro/internal/boom" {
		t.Errorf("tick package = %q", tick.Package)
	}
	// -count merging keeps the faster run.
	if tick.NsPerOp != 16900000 || tick.CyclesPerSec != 5400000 || tick.Iterations != 70 {
		t.Errorf("best-run merge failed: %+v", tick)
	}
	if tick.AllocsPerOp != 1593 {
		t.Errorf("allocs = %d", tick.AllocsPerOp)
	}

	dec := rep.Results[1]
	if dec.Kernel != "decode" || dec.Config != "" || dec.NsPerOp != 22.65 || dec.AllocsPerOp != 0 {
		t.Errorf("decode: %+v", dec)
	}
	if rep.Results[2].Kernel != "stats_accumulate" {
		t.Errorf("kernel name: %+v", rep.Results[2])
	}

	pw := rep.Results[3]
	if pw.Kernel != "power_accumulate" || pw.Config != "MegaBOOM" || pw.Package != "repro/internal/power" {
		t.Errorf("power: %+v", pw)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkKernelTick-8",             // no fields
		"BenchmarkKernelTick-8 abc 1 ns/op", // bad iteration count
		"Benchmark",                         // truncated
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
}
