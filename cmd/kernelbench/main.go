// Command kernelbench runs the hot-path kernel benchmarks (BOOM tick,
// decode, stats accumulate, power accumulate, functional step) and emits
// a machine-readable BENCH_kernel.json with cycles/sec, ns/op, and
// allocs/op per BOOM configuration:
//
//	go run ./cmd/kernelbench                      # writes BENCH_kernel.json
//	go run ./cmd/kernelbench -benchtime 5s -out - # longer runs, to stdout
//	go run ./cmd/kernelbench -benchtime 1x        # smoke: one iteration each
//
// It drives the same `go test -bench BenchmarkKernel` harness a developer
// runs by hand — the benchmarks stay the single source of truth and this
// command only adds the reproducible JSON envelope (Go version, GOOS/
// GOARCH, CPU, benchtime) so numbers from different checkouts are
// comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// kernelPackages are the packages holding BenchmarkKernel* functions.
var kernelPackages = []string{
	"./internal/boom",
	"./internal/core",
	"./internal/power",
	"./internal/sim",
}

// Result is one benchmark line of BENCH_kernel.json.
type Result struct {
	Name         string  `json:"name"`   // e.g. KernelTickMediumBOOM
	Kernel       string  `json:"kernel"` // tick, decode, stats_accumulate, power_accumulate, func_step, measure_j1, measure_j4
	Config       string  `json:"config,omitempty"`
	Package      string  `json:"package"`
	Iterations   int64   `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	NsPerInst    float64 `json:"ns_per_inst,omitempty"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
}

// Report is the full BENCH_kernel.json document.
type Report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPU       string   `json:"cpu,omitempty"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kernelbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("kernelbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	benchtime := fs.String("benchtime", "2s", "per-benchmark time or iteration count (go test -benchtime)")
	out := fs.String("out", "BENCH_kernel.json", "output path (- = stdout)")
	count := fs.Int("count", 1, "runs per benchmark (go test -count); the best ns/op run is kept")
	if err := fs.Parse(args); err != nil {
		return err
	}

	goArgs := []string{
		"test", "-run", "^$", "-bench", "^BenchmarkKernel",
		"-benchmem", "-benchtime", *benchtime, "-count", strconv.Itoa(*count),
	}
	goArgs = append(goArgs, kernelPackages...)
	cmd := exec.Command("go", goArgs...)
	cmd.Stderr = stderr
	raw, err := cmd.Output()
	// go test prints its benchmark lines before a test-failure exit, so
	// surface what ran even when the harness errors afterwards.
	fmt.Fprintf(stderr, "%s", raw)
	if err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}

	rep := parseBenchOutput(string(raw))
	rep.GoVersion = runtime.Version()
	rep.GOOS = runtime.GOOS
	rep.GOARCH = runtime.GOARCH
	rep.Benchtime = *benchtime

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = stdout.Write(enc)
		return err
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d kernels)\n", *out, len(rep.Results))
	return nil
}

// parseBenchOutput converts `go test -bench -benchmem` text into a Report.
// With -count > 1 the fastest (lowest ns/op) run of each benchmark wins.
func parseBenchOutput(text string) *Report {
	rep := &Report{}
	best := map[string]int{} // name → index into rep.Results
	pkg := ""
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		r, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		r.Package = pkg
		if i, seen := best[r.Name]; seen {
			if r.NsPerOp < rep.Results[i].NsPerOp {
				rep.Results[i] = r
			}
			continue
		}
		best[r.Name] = len(rep.Results)
		rep.Results = append(rep.Results, r)
	}
	return rep
}

// parseBenchLine parses one benchmark result line, e.g.
//
//	BenchmarkKernelTickMediumBOOM-8  66  17072339 ns/op  5366232 cycles/s  108.3 ns/inst  700816 B/op  1593 allocs/op
//
// Fields after the iteration count come in (value, unit) pairs; unknown
// units are ignored so new ReportMetric additions don't break the parser.
func parseBenchLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 { // strip -GOMAXPROCS
		name = name[:i]
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	r.Kernel, r.Config = splitKernelName(name)
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "cycles/s":
			r.CyclesPerSec = v
		case "ns/inst":
			r.NsPerInst = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, true
}

// splitKernelName maps KernelTickMediumBOOM → (tick, MediumBOOM),
// KernelDecode → (decode, "").
func splitKernelName(name string) (kernel, config string) {
	name = strings.TrimPrefix(name, "Kernel")
	for _, cfg := range []string{"MediumBOOM", "LargeBOOM", "MegaBOOM"} {
		if strings.HasSuffix(name, cfg) {
			config = cfg
			name = strings.TrimSuffix(name, cfg)
			break
		}
	}
	// CamelCase → snake_case: TickMedium stripped above leaves e.g.
	// "StatsAccumulate" → stats_accumulate.
	var b strings.Builder
	for i, c := range name {
		if c >= 'A' && c <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			c += 'a' - 'A'
		}
		b.WriteRune(c)
	}
	return b.String(), config
}
