// Command validate runs a fast end-to-end acceptance pass — the "does my
// checkout work" tool: every workload's checksum against its Go reference,
// a SimPoint accuracy probe, and the headline paper shapes. It exits
// non-zero on any failure. (~30 s; the full evidence lives in `go test`.)
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/asap7"
	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workloads"
)

var failed bool

func check(name string, ok bool, detail string) {
	status := "ok  "
	if !ok {
		status = "FAIL"
		failed = true
	}
	fmt.Printf("[%s] %-42s %s\n", status, name, detail)
}

func main() {
	cacheDir := flag.String("cache", "", "artifact cache directory (empty = no caching)")
	cacheVerify := flag.Bool("cache-verify", false, "recompute every cache hit and fail on divergence")
	flag.Parse()
	if *cacheVerify && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "validate: -cache-verify requires -cache DIR")
		os.Exit(1)
	}

	// 1. Workload checksums: assembler + functional simulator + kernels.
	for _, name := range workloads.Names() {
		w, err := workloads.Build(name, workloads.ScaleTiny)
		if err != nil {
			check("build "+name, false, err.Error())
			continue
		}
		cpu, err := w.NewCPU()
		if err != nil {
			check("load "+name, false, err.Error())
			continue
		}
		if _, err := cpu.Run(-1); err != nil {
			check("run "+name, false, err.Error())
			continue
		}
		got := uint64(cpu.Exit)
		check("checksum "+name, cpu.Halted && got == w.Checksum,
			fmt.Sprintf("%d insts", cpu.InstRet))
	}

	// 2. SimPoint flow accuracy on one workload.
	fc := core.DefaultFlowConfig()
	opts := []core.Option{core.WithScale(workloads.ScaleTiny)}
	if *cacheDir != "" {
		opts = append(opts, core.WithCache(*cacheDir), core.WithCacheVerify(*cacheVerify))
	}
	runner := core.New(fc, opts...)
	ctx := context.Background()
	acc, err := runner.Validate(ctx, "bitcount", boom.LargeBOOM())
	if err != nil {
		check("simpoint accuracy", false, err.Error())
	} else {
		e := math.Abs(acc.ErrorPct())
		check("simpoint accuracy", e < 20,
			fmt.Sprintf("IPC %.3f vs full %.3f (%.1f%% err)", acc.SimPointIPC, acc.FullIPC, e))
	}

	// 3. Headline shapes on a small sweep.
	sw, err := runner.Sweep(ctx, core.NewCampaign([]string{"sha", "tarfind"},
		[]boom.Config{boom.MediumBOOM(), boom.MegaBOOM()}, workloads.ScaleTiny))
	if err != nil {
		check("sweep", false, err.Error())
	} else {
		med, mega := sw.Results["MediumBOOM"], sw.Results["MegaBOOM"]
		check("IPC scales with width (sha)",
			mega["sha"].IPC() > med["sha"].IPC(),
			fmt.Sprintf("%.2f vs %.2f", mega["sha"].IPC(), med["sha"].IPC()))
		check("tarfind slowest", mega["tarfind"].IPC() < mega["sha"].IPC(),
			fmt.Sprintf("%.2f vs %.2f", mega["tarfind"].IPC(), mega["sha"].IPC()))
		check("Medium wins perf/W (sha)",
			med["sha"].PerfPerWatt() > mega["sha"].PerfPerWatt(),
			fmt.Sprintf("%.0f vs %.0f IPC/W", med["sha"].PerfPerWatt(), mega["sha"].PerfPerWatt()))
		for _, cfg := range []string{"MediumBOOM", "MegaBOOM"} {
			r := sw.Results[cfg]["sha"]
			bp := r.Power.Comp[boom.CompBranchPredictor].TotalMW()
			top := true
			for _, c := range boom.AnalyzedComponents() {
				if c != boom.CompBranchPredictor && r.Power.Comp[c].TotalMW() > bp {
					top = false
				}
			}
			check("branch predictor is #1 ("+cfg+")", top, fmt.Sprintf("%.2f mW", bp))
		}
	}

	// 4. TAGE vs GShare ablation direction.
	tage := bpPower(boom.MediumBOOM())
	gcfg := boom.MediumBOOM()
	gcfg.Predictor = boom.PredictorGShare
	gshare := bpPower(gcfg)
	check("TAGE > GShare power", tage > 1.5*gshare,
		fmt.Sprintf("%.2f vs %.2f mW (%.1f×)", tage, gshare, tage/gshare))

	if failed {
		fmt.Println("\nvalidation FAILED")
		os.Exit(1)
	}
	fmt.Println("\nall checks passed")
}

func bpPower(cfg boom.Config) float64 {
	w, err := workloads.Build("dijkstra", workloads.ScaleTiny)
	if err != nil {
		return math.NaN()
	}
	cpu, err := w.NewCPU()
	if err != nil {
		return math.NaN()
	}
	c, err := boom.New(cfg)
	if err != nil {
		return math.NaN()
	}
	if _, err := c.Run(func(r *sim.Retired) bool {
		if cpu.Halted {
			return false
		}
		if err := cpu.Step(r); err != nil {
			panic(err)
		}
		return true
	}, math.MaxUint64); err != nil {
		return math.NaN()
	}
	rep, err := power.NewEstimator(cfg, asap7.Default()).Estimate(c.Stats())
	if err != nil {
		return math.NaN()
	}
	return rep.Comp[boom.CompBranchPredictor].TotalMW()
}
