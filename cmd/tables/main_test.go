package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

var spaceRun = regexp.MustCompile(" {2,}")

// normalize canonicalizes the one nondeterministic region of the report.
// The speedup table times the real sweep, so its "TOTAL wall-clock" row —
// and the column widths every row of that table inherits from it — vary
// run to run. Within that block only, space runs are squashed, dash rules
// shortened, and the wall-clock row replaced by a placeholder. Everything
// else must match byte for byte.
func normalize(s string) string {
	lines := strings.Split(s, "\n")
	in := false
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "SimPoint speedup"):
			in = true
			continue
		case in && strings.TrimSpace(line) == "":
			in = false
			continue
		case !in:
			continue
		}
		if strings.HasPrefix(line, "TOTAL wall-clock") {
			lines[i] = "TOTAL wall-clock <varies>"
			continue
		}
		if t := strings.TrimRight(line, "-"); t == "" && line != "" {
			lines[i] = "---"
			continue
		}
		lines[i] = strings.TrimRight(spaceRun.ReplaceAllString(line, " "), " ")
	}
	return strings.Join(lines, "\n")
}

// firstDiff reports the first line where two outputs diverge.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  got  %q\n  want %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(la), len(lb))
}

// TestGoldenTinyOutput pins the full tiny-scale report against a golden
// file. Regenerate with: go test ./cmd/tables -run TestGoldenTinyOutput -update
func TestGoldenTinyOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "tiny", "-q"}, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	got := normalize(buf.String())
	golden := filepath.Join("testdata", "tiny_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("tiny report drifted from golden file (regenerate with -update if intended)\n%s",
			firstDiff(got, string(want)))
	}
}

// TestCacheRoundTrip is the command-level byte-identity claim: a warm-cache
// rerun must reproduce the cold run's stdout exactly — including the
// wall-clock speedup row, whose costs are restored from the cache.
func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-scale", "tiny", "-q", "-cache", dir}
	var cold, warm bytes.Buffer
	if err := run(args, &cold, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &warm, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("warm-cache output is not byte-identical to cold\n%s",
			firstDiff(warm.String(), cold.String()))
	}
}

// TestCacheVerifyRequiresDir: -cache-verify alone is a usage error, not a
// silent no-op.
func TestCacheVerifyRequiresDir(t *testing.T) {
	err := run([]string{"-cache-verify"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-cache") {
		t.Fatalf("want a usage error mentioning -cache, got %v", err)
	}
}
