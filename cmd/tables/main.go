// Command tables regenerates every table and figure of the paper's
// evaluation section from a fresh experiment sweep:
//
//	go run ./cmd/tables                 # full sweep at default scale
//	go run ./cmd/tables -scale tiny     # quick look
//	go run ./cmd/tables -only fig10     # one artifact
//	go run ./cmd/tables -csv -out data  # write CSV files for plotting
//	go run ./cmd/tables -cache .cache   # reuse artifacts across runs
//
// With -cache DIR, every pipeline stage (BBV profile, SimPoint selection,
// checkpoints, measurements) is served from a content-addressed artifact
// cache; a warm-cache rerun skips straight to report generation and its
// output is byte-identical to the cold run. -cache-verify recomputes each
// hit and fails on divergence.
//
// Fault tolerance: -keep-going collects task failures instead of aborting
// (failed pairs render as FAILED cells and the command exits non-zero);
// -retries N and -stage-timeout D add bounded retry and per-stage
// watchdogs; -resume replays the sweep journal under -cache after a crash
// and reruns only unfinished tasks; -chaos SEED:SPEC injects deterministic
// faults (panics, errors, delays, artifact corruption) for drills:
//
//	go run ./cmd/tables -scale tiny -keep-going -chaos '7:core.measure/sha/*=panic'
//	go run ./cmd/tables -scale tiny -cache .cache -die-after 5 ; \
//	go run ./cmd/tables -scale tiny -cache .cache -resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/engineflags"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

// run is main minus the process boundary, so tests can drive the full
// command (golden output, cache round-trips) in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scaleFlag := fs.String("scale", "default", "workload scale: tiny|default|paper")
	only := fs.String("only", "", "render only one artifact: table1,table2,fig5..fig11,speedup,phases,sources,takeaways")
	csv := fs.Bool("csv", false, "write CSV files instead of text tables")
	out := fs.String("out", ".", "output directory for -csv")
	quiet := fs.Bool("q", false, "suppress progress output")
	ef := engineflags.Register(fs)
	ef.RegisterMetrics(fs)
	dieAfter := fs.Int("die-after", 0, "crash drill: exit(3) after N completed sweep tasks (tests -resume)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := workloads.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}

	var progress func(string)
	if !*quiet {
		progress = func(s string) { fmt.Fprintln(stderr, s) }
	}

	configs := boom.Configs()
	fc := core.FlowConfigFor(scale)
	opts := []core.Option{core.WithScale(scale), core.WithProgress(progress)}
	engineOpts, err := ef.Options()
	if err != nil {
		return err
	}
	opts = append(opts, engineOpts...)
	if *dieAfter > 0 {
		n := *dieAfter
		opts = append(opts, core.WithTaskHook(func(completed int) {
			if completed >= n {
				fmt.Fprintf(stderr, "die-after: exiting after %d completed tasks\n", completed)
				os.Exit(3)
			}
		}))
	}
	reg := ef.MetricsRegistry()
	if reg != nil {
		opts = append(opts, core.WithMetrics(reg))
	}
	camp := core.NewCampaign(workloads.Names(), configs, scale)
	camp.Sampling = ef.Sampling()
	sw, err := core.New(fc, opts...).Sweep(context.Background(), camp)
	var failedTasks int
	if err != nil {
		var se *core.SweepErrors
		if sw != nil && errors.As(err, &se) {
			// Keep-going: render what succeeded, report what did not, and
			// exit non-zero after the tables are out.
			failedTasks = len(se.Errs)
			fmt.Fprintf(stderr, "sweep: %d task(s) failed:\n", failedTasks)
			for _, e := range se.Errs {
				fmt.Fprintf(stderr, "  %v\n", e)
			}
		} else {
			return err
		}
	}

	artifacts := []struct {
		key string
		t   *report.Table
	}{
		{"table1", report.TableI(configs)},
		{"table2", report.TableII(sw)},
		{"fig5", report.FigComponentPower(sw, "MediumBOOM")},
		{"fig6", report.FigComponentPower(sw, "LargeBOOM")},
		{"fig7", report.FigComponentPower(sw, "MegaBOOM")},
		{"fig8", report.FigSlotPower(sw, "MegaBOOM", "dijkstra", "sha")},
		{"fig9", report.FigContribution(sw)},
		{"fig10", report.FigIPC(sw)},
		{"fig11", report.FigPerfPerWatt(sw)},
		{"speedup", report.SpeedupTable(sw)},
		{"phases", report.PhaseProfile(sw, "MegaBOOM", "sha")},
		{"sources", report.PowerSources(sw)},
	}
	if *only == "" || strings.EqualFold(*only, "takeaways") {
		if !*csv {
			fmt.Fprintln(stdout, report.Takeaways(sw))
		}
	}
	for _, a := range artifacts {
		if *only != "" && !strings.EqualFold(*only, a.key) {
			continue
		}
		if *csv {
			path := filepath.Join(*out, a.key+".csv")
			if err := os.WriteFile(path, []byte(a.t.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
		} else {
			fmt.Fprintln(stdout, a.t.Render())
		}
	}

	if err := ef.EmitMetrics(reg, stdout); err != nil {
		return err
	}
	if failedTasks > 0 {
		return fmt.Errorf("sweep completed with %d failed task(s); tables above mark them FAILED", failedTasks)
	}
	return nil
}
