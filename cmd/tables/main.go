// Command tables regenerates every table and figure of the paper's
// evaluation section from a fresh experiment sweep:
//
//	go run ./cmd/tables                 # full sweep at default scale
//	go run ./cmd/tables -scale tiny     # quick look
//	go run ./cmd/tables -only fig10     # one artifact
//	go run ./cmd/tables -csv -out data  # write CSV files for plotting
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	scaleFlag := flag.String("scale", "default", "workload scale: tiny|default|paper")
	only := flag.String("only", "", "render only one artifact: table1,table2,fig5..fig11,speedup,phases,sources,takeaways")
	csv := flag.Bool("csv", false, "write CSV files instead of text tables")
	out := flag.String("out", ".", "output directory for -csv")
	quiet := flag.Bool("q", false, "suppress progress output")
	jobs := flag.Int("j", 0, "sweep parallelism (0 = all cores); results are bit-identical at any level")
	metricsMode := flag.String("metrics", "", "emit sweep metrics after the tables: text|json")
	metricsOut := flag.String("metrics-out", "-", "metrics destination (- = stdout)")
	flag.Parse()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}

	var progress func(string)
	if !*quiet {
		progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	configs := boom.Configs()
	fc := core.FlowConfigFor(scale)
	opts := []core.Option{core.WithScale(scale), core.WithProgress(progress)}
	if *jobs > 0 {
		opts = append(opts, core.WithParallelism(*jobs))
	}
	var reg *metrics.Registry
	switch *metricsMode {
	case "":
	case "text", "json":
		reg = metrics.NewRegistry()
		opts = append(opts, core.WithMetrics(reg))
	default:
		fatal(fmt.Errorf("unknown -metrics mode %q (text|json)", *metricsMode))
	}
	sw, err := core.New(fc, opts...).Sweep(context.Background(), workloads.Names(), configs)
	if err != nil {
		fatal(err)
	}

	artifacts := []struct {
		key string
		t   *report.Table
	}{
		{"table1", report.TableI(configs)},
		{"table2", report.TableII(sw)},
		{"fig5", report.FigComponentPower(sw, "MediumBOOM")},
		{"fig6", report.FigComponentPower(sw, "LargeBOOM")},
		{"fig7", report.FigComponentPower(sw, "MegaBOOM")},
		{"fig8", report.FigSlotPower(sw, "MegaBOOM", "dijkstra", "sha")},
		{"fig9", report.FigContribution(sw)},
		{"fig10", report.FigIPC(sw)},
		{"fig11", report.FigPerfPerWatt(sw)},
		{"speedup", report.SpeedupTable(sw)},
		{"phases", report.PhaseProfile(sw, "MegaBOOM", "sha")},
		{"sources", report.PowerSources(sw)},
	}
	if *only == "" || strings.EqualFold(*only, "takeaways") {
		if !*csv {
			fmt.Println(report.Takeaways(sw))
		}
	}
	for _, a := range artifacts {
		if *only != "" && !strings.EqualFold(*only, a.key) {
			continue
		}
		if *csv {
			path := filepath.Join(*out, a.key+".csv")
			if err := os.WriteFile(path, []byte(a.t.CSV()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		} else {
			fmt.Println(a.t.Render())
		}
	}

	if reg != nil {
		dst := os.Stdout
		if *metricsOut != "-" && *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			dst = f
		}
		if *metricsMode == "json" {
			err = reg.WriteJSON(dst)
		} else {
			err = reg.WriteText(dst)
		}
		if err != nil {
			fatal(err)
		}
	}
}

func parseScale(s string) (workloads.Scale, error) {
	switch s {
	case "tiny":
		return workloads.ScaleTiny, nil
	case "default":
		return workloads.ScaleDefault, nil
	case "paper":
		return workloads.ScalePaper, nil
	}
	return 0, fmt.Errorf("unknown scale %q (tiny|default|paper)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
