// Command tables regenerates every table and figure of the paper's
// evaluation section from a fresh experiment sweep:
//
//	go run ./cmd/tables                 # full sweep at default scale
//	go run ./cmd/tables -scale tiny     # quick look
//	go run ./cmd/tables -only fig10     # one artifact
//	go run ./cmd/tables -csv -out data  # write CSV files for plotting
//	go run ./cmd/tables -cache .cache   # reuse artifacts across runs
//
// With -cache DIR, every pipeline stage (BBV profile, SimPoint selection,
// checkpoints, measurements) is served from a content-addressed artifact
// cache; a warm-cache rerun skips straight to report generation and its
// output is byte-identical to the cold run. -cache-verify recomputes each
// hit and fails on divergence.
//
// Fault tolerance: -keep-going collects task failures instead of aborting
// (failed pairs render as FAILED cells and the command exits non-zero);
// -retries N and -stage-timeout D add bounded retry and per-stage
// watchdogs; -resume replays the sweep journal under -cache after a crash
// and reruns only unfinished tasks; -chaos SEED:SPEC injects deterministic
// faults (panics, errors, delays, artifact corruption) for drills:
//
//	go run ./cmd/tables -scale tiny -keep-going -chaos '7:core.measure/sha/*=panic'
//	go run ./cmd/tables -scale tiny -cache .cache -die-after 5 ; \
//	go run ./cmd/tables -scale tiny -cache .cache -resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

// run is main minus the process boundary, so tests can drive the full
// command (golden output, cache round-trips) in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scaleFlag := fs.String("scale", "default", "workload scale: tiny|default|paper")
	only := fs.String("only", "", "render only one artifact: table1,table2,fig5..fig11,speedup,phases,sources,takeaways")
	csv := fs.Bool("csv", false, "write CSV files instead of text tables")
	out := fs.String("out", ".", "output directory for -csv")
	quiet := fs.Bool("q", false, "suppress progress output")
	jobs := fs.Int("j", 0, "sweep parallelism (0 = all cores); results are bit-identical at any level")
	metricsMode := fs.String("metrics", "", "emit sweep metrics after the tables: text|json")
	metricsOut := fs.String("metrics-out", "-", "metrics destination (- = stdout)")
	cacheDir := fs.String("cache", "", "artifact cache directory (empty = no caching)")
	cacheVerify := fs.Bool("cache-verify", false, "recompute every cache hit and fail on divergence")
	keepGoing := fs.Bool("keep-going", false, "run every (workload, config) pair despite failures; failed pairs render as FAILED cells")
	resume := fs.Bool("resume", false, "replay the sweep journal under -cache and rerun only unfinished tasks")
	retries := fs.Int("retries", 0, "retries per sweep task on transient faults")
	stageTimeout := fs.Duration("stage-timeout", 0, "watchdog deadline per pipeline stage (0 = none)")
	chaos := fs.String("chaos", "", "deterministic fault-injection plan SEED:SPEC, e.g. 7:core.measure/sha/*=error (see internal/faultinject)")
	dieAfter := fs.Int("die-after", 0, "crash drill: exit(3) after N completed sweep tasks (tests -resume)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := workloads.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}

	var progress func(string)
	if !*quiet {
		progress = func(s string) { fmt.Fprintln(stderr, s) }
	}

	configs := boom.Configs()
	fc := core.FlowConfigFor(scale)
	opts := []core.Option{core.WithScale(scale), core.WithProgress(progress)}
	if *jobs > 0 {
		opts = append(opts, core.WithParallelism(*jobs))
	}
	if *cacheDir != "" {
		opts = append(opts, core.WithCache(*cacheDir), core.WithCacheVerify(*cacheVerify))
	} else if *cacheVerify {
		return fmt.Errorf("-cache-verify requires -cache DIR")
	} else if *resume {
		return fmt.Errorf("-resume requires -cache DIR (the journal lives there)")
	}
	if *keepGoing {
		opts = append(opts, core.WithKeepGoing(true))
	}
	if *resume {
		opts = append(opts, core.WithResume(true))
	}
	if *retries > 0 {
		opts = append(opts, core.WithRetry(*retries, 10*time.Millisecond))
	}
	if *stageTimeout > 0 {
		opts = append(opts, core.WithStageTimeout(*stageTimeout))
	}
	if *chaos != "" {
		inj, err := faultinject.Parse(*chaos)
		if err != nil {
			return err
		}
		opts = append(opts, core.WithFaultInjector(inj))
	}
	if *dieAfter > 0 {
		n := *dieAfter
		opts = append(opts, core.WithTaskHook(func(completed int) {
			if completed >= n {
				fmt.Fprintf(stderr, "die-after: exiting after %d completed tasks\n", completed)
				os.Exit(3)
			}
		}))
	}
	var reg *metrics.Registry
	switch *metricsMode {
	case "":
	case "text", "json":
		reg = metrics.NewRegistry()
		opts = append(opts, core.WithMetrics(reg))
	default:
		return fmt.Errorf("unknown -metrics mode %q (text|json)", *metricsMode)
	}
	sw, err := core.New(fc, opts...).Sweep(context.Background(), workloads.Names(), configs)
	var failedTasks int
	if err != nil {
		var se *core.SweepErrors
		if sw != nil && errors.As(err, &se) {
			// Keep-going: render what succeeded, report what did not, and
			// exit non-zero after the tables are out.
			failedTasks = len(se.Errs)
			fmt.Fprintf(stderr, "sweep: %d task(s) failed:\n", failedTasks)
			for _, e := range se.Errs {
				fmt.Fprintf(stderr, "  %v\n", e)
			}
		} else {
			return err
		}
	}

	artifacts := []struct {
		key string
		t   *report.Table
	}{
		{"table1", report.TableI(configs)},
		{"table2", report.TableII(sw)},
		{"fig5", report.FigComponentPower(sw, "MediumBOOM")},
		{"fig6", report.FigComponentPower(sw, "LargeBOOM")},
		{"fig7", report.FigComponentPower(sw, "MegaBOOM")},
		{"fig8", report.FigSlotPower(sw, "MegaBOOM", "dijkstra", "sha")},
		{"fig9", report.FigContribution(sw)},
		{"fig10", report.FigIPC(sw)},
		{"fig11", report.FigPerfPerWatt(sw)},
		{"speedup", report.SpeedupTable(sw)},
		{"phases", report.PhaseProfile(sw, "MegaBOOM", "sha")},
		{"sources", report.PowerSources(sw)},
	}
	if *only == "" || strings.EqualFold(*only, "takeaways") {
		if !*csv {
			fmt.Fprintln(stdout, report.Takeaways(sw))
		}
	}
	for _, a := range artifacts {
		if *only != "" && !strings.EqualFold(*only, a.key) {
			continue
		}
		if *csv {
			path := filepath.Join(*out, a.key+".csv")
			if err := os.WriteFile(path, []byte(a.t.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
		} else {
			fmt.Fprintln(stdout, a.t.Render())
		}
	}

	if reg != nil {
		dst := stdout
		if *metricsOut != "-" && *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				return err
			}
			defer f.Close()
			dst = f
		}
		if *metricsMode == "json" {
			err = reg.WriteJSON(dst)
		} else {
			err = reg.WriteText(dst)
		}
		if err != nil {
			return err
		}
	}
	if failedTasks > 0 {
		return fmt.Errorf("sweep completed with %d failed task(s); tables above mark them FAILED", failedTasks)
	}
	return nil
}
