// Command tables regenerates every table and figure of the paper's
// evaluation section from a fresh experiment sweep:
//
//	go run ./cmd/tables                 # full sweep at default scale
//	go run ./cmd/tables -scale tiny     # quick look
//	go run ./cmd/tables -only fig10     # one artifact
//	go run ./cmd/tables -csv -out data  # write CSV files for plotting
//	go run ./cmd/tables -cache .cache   # reuse artifacts across runs
//
// With -cache DIR, every pipeline stage (BBV profile, SimPoint selection,
// checkpoints, measurements) is served from a content-addressed artifact
// cache; a warm-cache rerun skips straight to report generation and its
// output is byte-identical to the cold run. -cache-verify recomputes each
// hit and fails on divergence.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

// run is main minus the process boundary, so tests can drive the full
// command (golden output, cache round-trips) in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scaleFlag := fs.String("scale", "default", "workload scale: tiny|default|paper")
	only := fs.String("only", "", "render only one artifact: table1,table2,fig5..fig11,speedup,phases,sources,takeaways")
	csv := fs.Bool("csv", false, "write CSV files instead of text tables")
	out := fs.String("out", ".", "output directory for -csv")
	quiet := fs.Bool("q", false, "suppress progress output")
	jobs := fs.Int("j", 0, "sweep parallelism (0 = all cores); results are bit-identical at any level")
	metricsMode := fs.String("metrics", "", "emit sweep metrics after the tables: text|json")
	metricsOut := fs.String("metrics-out", "-", "metrics destination (- = stdout)")
	cacheDir := fs.String("cache", "", "artifact cache directory (empty = no caching)")
	cacheVerify := fs.Bool("cache-verify", false, "recompute every cache hit and fail on divergence")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}

	var progress func(string)
	if !*quiet {
		progress = func(s string) { fmt.Fprintln(stderr, s) }
	}

	configs := boom.Configs()
	fc := core.FlowConfigFor(scale)
	opts := []core.Option{core.WithScale(scale), core.WithProgress(progress)}
	if *jobs > 0 {
		opts = append(opts, core.WithParallelism(*jobs))
	}
	if *cacheDir != "" {
		opts = append(opts, core.WithCache(*cacheDir), core.WithCacheVerify(*cacheVerify))
	} else if *cacheVerify {
		return fmt.Errorf("-cache-verify requires -cache DIR")
	}
	var reg *metrics.Registry
	switch *metricsMode {
	case "":
	case "text", "json":
		reg = metrics.NewRegistry()
		opts = append(opts, core.WithMetrics(reg))
	default:
		return fmt.Errorf("unknown -metrics mode %q (text|json)", *metricsMode)
	}
	sw, err := core.New(fc, opts...).Sweep(context.Background(), workloads.Names(), configs)
	if err != nil {
		return err
	}

	artifacts := []struct {
		key string
		t   *report.Table
	}{
		{"table1", report.TableI(configs)},
		{"table2", report.TableII(sw)},
		{"fig5", report.FigComponentPower(sw, "MediumBOOM")},
		{"fig6", report.FigComponentPower(sw, "LargeBOOM")},
		{"fig7", report.FigComponentPower(sw, "MegaBOOM")},
		{"fig8", report.FigSlotPower(sw, "MegaBOOM", "dijkstra", "sha")},
		{"fig9", report.FigContribution(sw)},
		{"fig10", report.FigIPC(sw)},
		{"fig11", report.FigPerfPerWatt(sw)},
		{"speedup", report.SpeedupTable(sw)},
		{"phases", report.PhaseProfile(sw, "MegaBOOM", "sha")},
		{"sources", report.PowerSources(sw)},
	}
	if *only == "" || strings.EqualFold(*only, "takeaways") {
		if !*csv {
			fmt.Fprintln(stdout, report.Takeaways(sw))
		}
	}
	for _, a := range artifacts {
		if *only != "" && !strings.EqualFold(*only, a.key) {
			continue
		}
		if *csv {
			path := filepath.Join(*out, a.key+".csv")
			if err := os.WriteFile(path, []byte(a.t.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
		} else {
			fmt.Fprintln(stdout, a.t.Render())
		}
	}

	if reg != nil {
		dst := stdout
		if *metricsOut != "-" && *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				return err
			}
			defer f.Close()
			dst = f
		}
		if *metricsMode == "json" {
			err = reg.WriteJSON(dst)
		} else {
			err = reg.WriteText(dst)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func parseScale(s string) (workloads.Scale, error) {
	switch s {
	case "tiny":
		return workloads.ScaleTiny, nil
	case "default":
		return workloads.ScaleDefault, nil
	case "paper":
		return workloads.ScalePaper, nil
	}
	return 0, fmt.Errorf("unknown scale %q (tiny|default|paper)", s)
}
