// Command boomflow evaluates one workload on one BOOM configuration and
// prints performance counters and the per-component power breakdown:
//
//	go run ./cmd/boomflow -bench sha -config mega
//	go run ./cmd/boomflow -bench dijkstra -config medium -mode full -scale tiny
//	go run ./cmd/boomflow -bench dijkstra -config mega -predictor gshare
//
// Observability: -metrics text|json renders the flow's metrics registry
// (per-stage spans, simulator throughput, k-means stats) after the report;
// -metrics-out redirects it to a file. -cpuprofile and -exectrace write
// pprof / runtime-trace artifacts for deeper digging:
//
//	go run ./cmd/boomflow -bench sha -metrics json -metrics-out sha.json
//	go run ./cmd/boomflow -bench sha -cpuprofile cpu.pprof
//
// -cache DIR serves every pipeline stage from a content-addressed
// artifact cache (bit-identical results, cold or warm); -cache-verify
// recomputes each hit and fails on divergence.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	rttrace "runtime/trace"
	"sort"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/engineflags"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "sha", "workload name (see -list)")
	configName := flag.String("config", "medium", "medium|large|mega")
	scaleFlag := flag.String("scale", "default", "tiny|default|paper")
	mode := flag.String("mode", "simpoint", "simpoint|full")
	predictor := flag.String("predictor", "tage", "tage|gshare (Takeaway #7 ablation)")
	list := flag.Bool("list", false, "list workloads and exit")
	trace := flag.Uint64("trace", 0, "emit a pipeline lifecycle trace for the first N instructions (full mode)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	exectrace := flag.String("exectrace", "", "write a runtime execution trace to this file")
	ef := engineflags.Register(flag.CommandLine)
	ef.RegisterMetrics(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *exectrace != "" {
		f, err := os.Create(*exectrace)
		if err != nil {
			fatal(err)
		}
		if err := rttrace.Start(f); err != nil {
			fatal(err)
		}
		defer func() {
			rttrace.Stop()
			f.Close()
		}()
	}

	cfg, err := boom.ConfigByName(*configName)
	if err != nil {
		fatal(err)
	}
	switch *predictor {
	case "tage":
	case "gshare":
		cfg.Predictor = boom.PredictorGShare
	default:
		fatal(fmt.Errorf("unknown predictor %q", *predictor))
	}
	scale, err := workloads.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	w, err := workloads.Build(*bench, scale)
	if err != nil {
		fatal(err)
	}
	fc := core.FlowConfigFor(scale)

	opts := []core.Option{core.WithScale(scale)}
	engineOpts, err := ef.Options()
	if err != nil {
		fatal(err)
	}
	opts = append(opts, engineOpts...)
	reg := ef.MetricsRegistry()
	if reg != nil {
		opts = append(opts, core.WithMetrics(reg))
	}
	runner := core.New(fc, opts...)
	ctx := context.Background()

	var r *core.Result
	switch *mode {
	case "simpoint":
		fmt.Fprintf(os.Stderr, "profiling %s (%s scale)...\n", w.Name, scale)
		p, err := runner.Profile(ctx, w)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%d insts, %d intervals, k=%d, %d simpoints (%.0f%% coverage)\n",
			p.TotalInsts, len(p.Vectors), p.Selection.K, p.NumSimPoints(),
			100*p.Selection.Coverage)
		r, err = runner.Run(ctx, p, cfg)
		if err != nil {
			fatal(err)
		}
	case "full":
		if *trace > 0 {
			cpu, err := w.NewCPU()
			if err != nil {
				fatal(err)
			}
			c, err := boom.New(cfg)
			if err != nil {
				fatal(err)
			}
			c.SetPipeTrace(os.Stdout, *trace)
			if _, err := c.Run(func(rr *sim.Retired) bool {
				if cpu.Halted {
					return false
				}
				if err := cpu.Step(rr); err != nil {
					fatal(err)
				}
				return true
			}, *trace+1000); err != nil {
				fatal(err)
			}
			return
		}
		r, err = runner.RunFull(ctx, w, cfg)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	st := r.Stats
	fmt.Printf("workload      %s (%s)\n", r.Workload, r.Suite)
	fmt.Printf("config        %s (predictor %s)\n", cfg.Name, cfg.Predictor)
	fmt.Printf("mode          %s\n", r.Mode)
	fmt.Printf("instructions  %d (detailed-simulated %d)\n", r.TotalInsts, r.DetailedInsts)
	fmt.Printf("IPC           %.3f\n", r.IPC())
	fmt.Printf("mispredict    %.2f%% of %d branches\n", 100*st.MispredictRate(), st.Branches)
	dcTotal := st.DCacheHits + st.DCacheMisses
	if dcTotal > 0 {
		fmt.Printf("L1D miss      %.2f%% of %d accesses\n",
			100*float64(st.DCacheMisses)/float64(dcTotal), dcTotal)
	}
	fmt.Printf("tile power    %.2f mW  →  %.0f IPC/W\n\n", r.TotalPowerMW(), r.PerfPerWatt())

	type entry struct {
		comp boom.Component
		mw   float64
	}
	var entries []entry
	for _, c := range boom.AnalyzedComponents() {
		entries = append(entries, entry{c, r.Power.Comp[c].TotalMW()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mw > entries[j].mw })
	fmt.Println("component power (mW, leakage/internal/switching):")
	for _, e := range entries {
		b := r.Power.Comp[e.comp]
		fmt.Printf("  %-16s %6.2f   (%5.2f / %5.2f / %5.2f)  %4.1f%%\n",
			e.comp, e.mw, b.LeakageMW, b.InternalMW, b.SwitchingMW,
			100*e.mw/r.TotalPowerMW())
	}
	other := r.Power.Comp[boom.CompOther]
	fmt.Printf("  %-16s %6.2f   (%5.2f / %5.2f / %5.2f)  %4.1f%%\n",
		"Other", other.TotalMW(), other.LeakageMW, other.InternalMW, other.SwitchingMW,
		100*other.TotalMW()/r.TotalPowerMW())

	if reg != nil {
		if ef.MetricsMode == "text" && (ef.MetricsOut == "-" || ef.MetricsOut == "") {
			fmt.Println() // separate the report from the metrics dump
		}
		if err := ef.EmitMetrics(reg, os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "boomflow:", err)
	os.Exit(1)
}
