// Command simpoints runs the profiling half of the flow for one workload —
// BBV generation, clustering, simulation-point selection and checkpoint
// creation — and optionally writes the checkpoints to disk in the format of
// internal/ckpt:
//
//	go run ./cmd/simpoints -bench fft
//	go run ./cmd/simpoints -bench fft -out /tmp/fft-ckpts
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bbv"
	"repro/internal/core"
	"repro/internal/simpoint"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "sha", "workload name")
	scaleFlag := flag.String("scale", "default", "tiny|default|paper")
	out := flag.String("out", "", "directory to write serialized checkpoints")
	cacheDir := flag.String("cache", "", "artifact cache directory (empty = no caching)")
	cacheVerify := flag.Bool("cache-verify", false, "recompute every cache hit and fail on divergence")
	flag.Parse()

	var scale workloads.Scale
	switch *scaleFlag {
	case "tiny":
		scale = workloads.ScaleTiny
	case "default":
		scale = workloads.ScaleDefault
	case "paper":
		scale = workloads.ScalePaper
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
	}

	w, err := workloads.Build(*bench, scale)
	if err != nil {
		fatal(err)
	}
	fc := core.FlowConfigFor(scale)
	opts := []core.Option{core.WithScale(scale)}
	if *cacheDir != "" {
		opts = append(opts, core.WithCache(*cacheDir), core.WithCacheVerify(*cacheVerify))
	} else if *cacheVerify {
		fatal(fmt.Errorf("-cache-verify requires -cache DIR"))
	}
	runner := core.New(fc, opts...)
	p, err := runner.Profile(context.Background(), w)
	if err != nil {
		fatal(err)
	}

	cs := p.Selection.Stats
	fmt.Printf("workload        %s (%s), %s scale\n", w.Name, w.Suite, scale)
	fmt.Printf("instructions    %d\n", p.TotalInsts)
	fmt.Printf("interval size   %d\n", w.IntervalSize)
	fmt.Printf("intervals       %d\n", len(p.Vectors))
	fmt.Printf("basic blocks    %d\n", p.NumBlocks)
	fmt.Printf("clusters (k)    %d\n", p.Selection.K)
	fmt.Printf("k-means         %d runs over k=1..%d, %d iterations, converged=%v\n",
		cs.Runs, cs.KTried, cs.Iterations, cs.Converged)
	fmt.Printf("simpoints       %d (%.0f%% coverage)\n\n",
		p.NumSimPoints(), 100*p.Selection.Coverage)

	fmt.Println("rank  interval  start-inst  weight   warm-up")
	for i, pt := range p.Selection.Selected {
		fmt.Printf("%4d  %8d  %10d  %6.3f  %8d\n",
			i+1, pt.Interval, int64(pt.Interval)*w.IntervalSize, pt.Weight, p.WarmupInsts[i])
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		// SimPoint 3.0-compatible artifacts (.bb / .simpoints / .weights).
		writeFile := func(name string, write func(f *os.File) error) {
			path := filepath.Join(*out, name)
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := write(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		writeFile(w.Name+".bb", func(f *os.File) error { return bbv.WriteBB(f, p.Vectors) })
		writeFile(w.Name+".simpoints", func(f *os.File) error { return simpoint.WriteSimPoints(f, p.Selection) })
		writeFile(w.Name+".weights", func(f *os.File) error { return simpoint.WriteWeights(f, p.Selection) })
		for i, k := range p.Checkpoints {
			path := filepath.Join(*out, fmt.Sprintf("%s-sp%02d.ckpt", w.Name, i+1))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := k.Serialize(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			info, _ := os.Stat(path)
			fmt.Printf("wrote %s (%d bytes)\n", path, info.Size())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simpoints:", err)
	os.Exit(1)
}
