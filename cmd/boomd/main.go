// Command boomd serves the experiment sweep engine over HTTP: submit a
// campaign (workloads × BOOM configs at a scale), poll or long-poll for
// the canonical result JSON, scrape /metrics for engine and serving
// state. Campaign fingerprints — the same identities the crash-resume
// journal and the artifact cache key on — double as job IDs, so duplicate
// in-flight submissions collapse onto one sweep.
//
//	boomd -addr :8080 -cache .cache -resume -retries 2 &
//	boomctl submit -scale tiny -wait
//
// The queue is bounded (-queue); submissions beyond it get 429 with a
// Retry-After hint. SIGTERM/SIGINT drains gracefully: admission stops
// (/readyz flips to 503), in-flight and queued sweeps run to completion
// within -grace, then the process exits. If the grace expires first the
// sweeps are canceled — every completed task is already journaled under
// -cache, so restarting boomd with -resume and resubmitting the campaign
// recomputes nothing that finished.
//
// boomd is also both halves of the distributed sweep fabric
// (internal/fabric). Every daemon embeds a coordinator: campaigns
// submitted to /v1/sweeps are sharded across any workers registered at
// /v1/fabric/, and run locally when none are (so a solo boomd behaves
// exactly as before). With -cache the coordinator also serves the
// cluster's remote artifact store at /v1/artifacts/. A worker node runs
//
//	boomd -worker -coordinator http://head:8080
//
// which registers with the head daemon, leases (workload × config) cells,
// executes them through the ordinary pipeline (local cache over the
// cluster store), and reports canonical result bytes back. Determinism
// makes the distributed result byte-identical to the single-node one.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/engineflags"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "boomd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("boomd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	ef := engineflags.Register(fs)
	queueDepth := fs.Int("queue", 8, "job queue depth; excess submissions get 429")
	workers := fs.Int("workers", 1, "concurrent sweeps (keep 1 with -cache: the journal is per cache dir)")
	grace := fs.Duration("grace", 30*time.Second, "drain grace on SIGTERM before canceling in-flight sweeps")
	quiet := fs.Bool("q", false, "log lifecycle events only, not per-stage progress")
	workerMode := fs.Bool("worker", false, "run as a fabric worker instead of a daemon (requires -coordinator)")
	coordinator := fs.String("coordinator", "", "coordinator base URL a -worker registers with")
	workerID := fs.String("worker-id", "", "fabric worker identity (default worker-<pid>)")
	lease := fs.Duration("lease", 15*time.Second, "fabric cell lease; a worker silent this long has its cells stolen")
	audit := fs.Float64("audit", 0, "fraction of completed measure cells re-executed on another worker for fingerprint verification (0 = off, 1 = every cell); divergent workers are quarantined")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := ef.Validate(); err != nil {
		return err
	}
	if *audit < 0 || *audit > 1 {
		return fmt.Errorf("-audit %v: must be in [0, 1]", *audit)
	}

	logf := func(format string, a ...interface{}) {
		fmt.Fprintf(os.Stderr, "boomd: "+format+"\n", a...)
	}
	if *workerMode {
		return runWorker(*coordinator, *workerID, ef, logf)
	}

	// Every daemon embeds a fabric coordinator; with no registered workers
	// RunCampaign falls back to the job's local runner, so a solo boomd is
	// byte-identical to the pre-fabric service.
	reg := metrics.NewRegistry()
	var store *artifact.Cache
	if ef.CacheDir != "" {
		store = artifact.Open(ef.CacheDir)
	}
	coord := fabric.NewCoordinator(fabric.Config{
		Store:      store,
		Registry:   reg,
		Lease:      *lease,
		KeepGoing:  ef.KeepGoing,
		Resume:     ef.Resume,
		JournalDir: ef.CacheDir,
		AuditFrac:  *audit,
		Injector:   ef.Injector(),
		Log:        logf,
	})
	srv, err := serve.New(serve.Config{
		CacheDir:         ef.CacheDir,
		CacheVerify:      ef.CacheVerify,
		Resume:           ef.Resume,
		Retries:          ef.Retries,
		StageTimeout:     ef.StageTimeout,
		KeepGoing:        ef.KeepGoing,
		Chaos:            ef.Chaos,
		Parallelism:      ef.Jobs,
		PointParallelism: ef.PointJobs,
		Sampling:         ef.Sampling(),
		QueueDepth:       *queueDepth,
		SweepWorkers:     *workers,
		Log:              logf,
		Progress:         !*quiet,
		Registry:         reg,
		RemoteStore:      ef.RemoteStore,
		Distribute:       coord.RunCampaign,
	})
	if err != nil {
		return err
	}
	coord.SetDrainCheck(srv.Draining)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Stdout so scripts can scrape the bound address (port 0 support).
	fmt.Printf("boomd: listening on %s\n", ln.Addr())

	mux := http.NewServeMux()
	mux.Handle("/v1/fabric/", coord.Handler())
	mux.Handle("/v1/artifacts/", coord.Handler())
	mux.Handle("/", srv.Handler())
	hs := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logf("signal received; draining (grace %s)", *grace)
	dctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logf("grace expired; in-flight sweeps canceled (journaled tasks replay with -resume): %v", err)
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	_ = hs.Shutdown(hctx)
	logf("bye")
	return nil
}

// runWorker is -worker mode: one fabric worker polling a coordinator
// until SIGTERM/SIGINT. The worker's cache directory (-cache, or a temp
// dir) is its local artifact tier over the coordinator's store. RPCs use
// the split -remote-connect-timeout/-remote-timeout client; with -chaos,
// the same plan arms both the pipeline sites and — via the transport
// wrapper — the network-boundary sites, scoped to this worker's ID.
func runWorker(coordinator, id string, ef *engineflags.Flags, logf func(string, ...interface{})) error {
	if coordinator == "" {
		return fmt.Errorf("-worker requires -coordinator URL")
	}
	if id == "" {
		id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	var hc *http.Client
	if ef.Injector() != nil {
		hc = ef.RemoteClient(id)
	}
	w, err := fabric.NewWorker(fabric.WorkerConfig{
		Coordinator:      coordinator,
		ID:               id,
		CacheDir:         ef.CacheDir,
		Registry:         metrics.NewRegistry(),
		Injector:         ef.Injector(),
		HTTPClient:       hc,
		ConnectTimeout:   ef.RemoteConnect,
		RPCTimeout:       ef.RemoteTimeout,
		Parallelism:      ef.Jobs,
		PointParallelism: ef.PointJobs,
		Log:              logf,
	})
	if err != nil {
		return err
	}
	fmt.Printf("boomd: worker %s polling %s\n", w.ID(), coordinator)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		return err
	}
	logf("worker %s: bye", w.ID())
	return nil
}
