// Command boomd serves the experiment sweep engine over HTTP: submit a
// campaign (workloads × BOOM configs at a scale), poll or long-poll for
// the canonical result JSON, scrape /metrics for engine and serving
// state. Campaign fingerprints — the same identities the crash-resume
// journal and the artifact cache key on — double as job IDs, so duplicate
// in-flight submissions collapse onto one sweep.
//
//	boomd -addr :8080 -cache .cache -resume -retries 2 &
//	boomctl submit -scale tiny -wait
//
// The queue is bounded (-queue); submissions beyond it get 429 with a
// Retry-After hint. SIGTERM/SIGINT drains gracefully: admission stops
// (/readyz flips to 503), in-flight and queued sweeps run to completion
// within -grace, then the process exits. If the grace expires first the
// sweeps are canceled — every completed task is already journaled under
// -cache, so restarting boomd with -resume and resubmitting the campaign
// recomputes nothing that finished.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engineflags"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "boomd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("boomd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	ef := engineflags.Register(fs)
	queueDepth := fs.Int("queue", 8, "job queue depth; excess submissions get 429")
	workers := fs.Int("workers", 1, "concurrent sweeps (keep 1 with -cache: the journal is per cache dir)")
	grace := fs.Duration("grace", 30*time.Second, "drain grace on SIGTERM before canceling in-flight sweeps")
	quiet := fs.Bool("q", false, "log lifecycle events only, not per-stage progress")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := ef.Validate(); err != nil {
		return err
	}

	logf := func(format string, a ...interface{}) {
		fmt.Fprintf(os.Stderr, "boomd: "+format+"\n", a...)
	}
	srv, err := serve.New(serve.Config{
		CacheDir:     ef.CacheDir,
		CacheVerify:  ef.CacheVerify,
		Resume:       ef.Resume,
		Retries:      ef.Retries,
		StageTimeout: ef.StageTimeout,
		KeepGoing:    ef.KeepGoing,
		Chaos:        ef.Chaos,
		Parallelism:  ef.Jobs,
		QueueDepth:   *queueDepth,
		SweepWorkers: *workers,
		Log:          logf,
		Progress:     !*quiet,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Stdout so scripts can scrape the bound address (port 0 support).
	fmt.Printf("boomd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logf("signal received; draining (grace %s)", *grace)
	dctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logf("grace expired; in-flight sweeps canceled (journaled tasks replay with -resume): %v", err)
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	_ = hs.Shutdown(hctx)
	logf("bye")
	return nil
}
