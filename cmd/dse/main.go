// Command dse runs a parametric design-space exploration and reports the
// Pareto frontier of IPC vs performance-per-watt per workload, plus the
// efficiency-optimal design point each workload should pick:
//
//	dse -axes 'rob=48,64,96,128;predictor=tage,gshare'
//	dse -workloads sha,qsort -base mega -override 'l2-kib=1024' -axes 'int-iq=16,24,32'
//	dse -addr 127.0.0.1:8080 -axes 'rob=64,96' -json
//	dse -params
//
// The base config plus the cross product of the axes expands into named,
// validated design points (internal/dse); the campaign then runs either
// in-process through core.Runner or, with -addr, through a boomd daemon
// (POST /v1/sweeps with the parametric v2 body). Both paths produce the
// same canonical result bytes, so the frontier is bit-identical however
// the campaign executed. -json emits the canonical frontier encoding; the
// default is a human-readable table. With -cache DIR the profile stages
// are shared across runs and design points through the artifact cache.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wl := fs.String("workloads", "", "comma-separated workload names (empty = all)")
	base := fs.String("base", "", "base design point (default MediumBOOM)")
	axesFlag := fs.String("axes", "", "sweep axes: 'param=v1,v2;param2=v3,v4'")
	ovFlag := fs.String("override", "", "fixed overrides: 'param=v;param2=v2'")
	scaleFlag := fs.String("scale", "tiny", "workload scale: tiny|default|paper")
	addr := fs.String("addr", "", "run through a boomd daemon at HOST:PORT instead of in-process")
	jsonOut := fs.Bool("json", false, "emit the canonical frontier JSON instead of the text table")
	cacheDir := fs.String("cache", "", "artifact cache directory for the in-process path")
	params := fs.Bool("params", false, "list the sweepable parameters and exit")
	quiet := fs.Bool("q", false, "suppress progress output")
	timeout := fs.Duration("timeout", 10*time.Minute, "HTTP client timeout for -addr")
	interval := fs.Int64("interval", 0, "sampling interval in instructions (0 = per-workload default)")
	features := fs.String("features", "", "SimPoint clustering features: bbv|bbv+mav (empty = bbv)")
	spDims := fs.Int("sp-dims", 0, "SimPoint projection dimensions (0 = flow default)")
	spMaxK := fs.Int("sp-maxk", 0, "SimPoint cluster-count ceiling (0 = flow default)")
	warmup := fs.String("warmup", "", "warm-up before each measured SimPoint: none, an instruction count, or a factor like 5x")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *params {
		for _, line := range dse.Params() {
			fmt.Fprintln(stdout, line)
		}
		return nil
	}
	if *axesFlag == "" && *ovFlag == "" && *base == "" {
		return fmt.Errorf("nothing to explore: give -axes (and optionally -base, -override), or -params for the surface")
	}

	scale, err := workloads.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	spec := dse.Spec{Base: *base}
	if *axesFlag != "" {
		if spec.Axes, err = dse.ParseAxes(*axesFlag); err != nil {
			return err
		}
	}
	if *ovFlag != "" {
		if spec.Overrides, err = dse.ParseOverrides(*ovFlag); err != nil {
			return err
		}
	}
	names := splitList(*wl)
	if len(names) == 0 {
		names = workloads.Names()
	}
	policy, insts, factor, err := sampling.ParseWarmup(*warmup)
	if err != nil {
		return fmt.Errorf("-warmup: %w", err)
	}
	sspec := sampling.Spec{
		Interval:     *interval,
		Features:     *features,
		Dims:         *spDims,
		MaxK:         *spMaxK,
		WarmupPolicy: policy,
		WarmupInsts:  insts,
		WarmupFactor: factor,
	}
	if err := sspec.Validate(); err != nil {
		return err
	}

	var result serve.SweepResult
	var raw []byte
	if *addr != "" {
		raw, err = runRemote(*addr, *timeout, names, spec, *scaleFlag, sspec, *warmup)
	} else {
		raw, err = runLocal(names, spec, sspec, scale, *cacheDir, *quiet, stderr)
	}
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, &result); err != nil {
		return fmt.Errorf("decoding sweep result: %w", err)
	}

	cells := make([]dse.Cell, 0, len(result.Rows))
	for _, row := range result.Rows {
		cells = append(cells, dse.Cell{
			Workload: row.Workload, Config: row.Config,
			IPC: row.IPC, PowerMW: row.PowerMW, PerfPerWatt: row.PerfPerWatt,
		})
	}
	rep := &dse.Report{
		Campaign:     result.ID,
		DesignPoints: len(result.Configs),
		Workloads:    dse.Frontiers(cells),
	}
	if *jsonOut {
		b, err := dse.EncodeReport(rep)
		if err != nil {
			return err
		}
		_, werr := stdout.Write(b)
		return werr
	}
	fmt.Fprint(stdout, dse.FormatReport(rep))
	return nil
}

// runLocal expands the spec and drives the campaign through core.Runner,
// then encodes with the serving encoder so the bytes match a boomd run of
// the same campaign.
func runLocal(names []string, spec dse.Spec, sspec sampling.Spec, scale workloads.Scale, cacheDir string, quiet bool, stderr io.Writer) ([]byte, error) {
	cfgs, err := dse.Expand(spec)
	if err != nil {
		return nil, err
	}
	camp := core.NewCampaign(names, cfgs, scale)
	camp.Sampling = sspec
	if err := camp.Validate(); err != nil {
		return nil, err
	}
	opts := []core.Option{core.WithScale(scale)}
	if !quiet {
		fmt.Fprintf(stderr, "exploring %d design point(s) × %d workload(s) at %s scale\n",
			len(cfgs), len(names), scale)
		opts = append(opts, core.WithProgress(func(s string) { fmt.Fprintln(stderr, s) }))
	}
	if cacheDir != "" {
		opts = append(opts, core.WithCache(cacheDir))
	}
	r := core.New(core.FlowConfigFor(scale), opts...)
	sw, err := r.Sweep(context.Background(), camp)
	if err != nil {
		return nil, err
	}
	return serve.EncodeSweep(r.CampaignID(camp), scale, sw)
}

// runRemote submits the parametric v2 body to a boomd daemon and
// long-polls the canonical result.
func runRemote(addr string, timeout time.Duration, names []string, spec dse.Spec, scale string, sspec sampling.Spec, warmup string) ([]byte, error) {
	req := serve.SweepRequest{Workloads: names, Scale: scale, Base: spec.Base}
	if !sspec.IsZero() {
		// Mirror runLocal's campaign exactly: same spec fields, warm-up in
		// its CLI spelling, so both paths fingerprint identically.
		req.Sampling = &serve.SamplingRequest{
			Interval: sspec.Interval,
			Features: sspec.Features,
			Dims:     sspec.Dims,
			MaxK:     sspec.MaxK,
			Warmup:   warmup,
		}
	}
	if len(spec.Overrides) > 0 {
		req.ConfigOverrides = map[string]serve.AxisValue{}
		for _, s := range spec.Overrides {
			req.ConfigOverrides[s.Param] = serve.AxisValue(s.Value)
		}
	}
	if len(spec.Axes) > 0 {
		req.Axes = map[string][]serve.AxisValue{}
		for _, a := range spec.Axes {
			vals := make([]serve.AxisValue, len(a.Values))
			for i, v := range a.Values {
				vals[i] = serve.AxisValue(v)
			}
			req.Axes[a.Param] = vals
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: timeout}
	base := "http://" + addr
	resp, err := client.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	b, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	var st serve.Status
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("decoding submit response: %w", err)
	}
	for {
		rr, err := client.Get(base + "/v1/sweeps/" + st.ID + "/result?wait=1")
		if err != nil {
			return nil, err
		}
		rb, err := readBody(rr)
		if err != nil {
			return nil, err
		}
		if rr.StatusCode == http.StatusAccepted {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		return rb, nil
	}
}

func readBody(resp *http.Response) ([]byte, error) {
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	}
	return b, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
