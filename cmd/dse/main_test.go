package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dse"
	"repro/internal/serve"
)

func runDSE(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(args, &out, &errb); err != nil {
		t.Fatalf("dse %v: %v\nstderr: %s", args, err, errb.String())
	}
	return out.String(), errb.String()
}

func TestParamsSurface(t *testing.T) {
	out, _ := runDSE(t, "-params")
	for _, want := range []string{"rob", "predictor", "int-issue-width", "dcache-kib"} {
		if !strings.Contains(out, want) {
			t.Errorf("-params output missing %q", want)
		}
	}
}

func TestNoAxesRejected(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err == nil {
		t.Fatal("dse with no axes must refuse to run")
	}
}

// TestLocalFrontier: a small local exploration produces a deterministic
// frontier whose JSON form is bit-identical across runs, and whose text
// form names a recommendation per workload.
func TestLocalFrontier(t *testing.T) {
	args := []string{"-q", "-workloads", "sha", "-axes", "rob=48,64", "-json"}
	a, _ := runDSE(t, args...)
	b, _ := runDSE(t, args...)
	if a != b {
		t.Fatal("frontier JSON differs between identical runs")
	}
	var rep dse.Report
	if err := json.Unmarshal([]byte(a), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.DesignPoints != 2 || len(rep.Workloads) != 1 || rep.Workloads[0].Workload != "sha" {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	if rep.Campaign == "" {
		t.Error("report missing the campaign fingerprint")
	}

	text, _ := runDSE(t, "-q", "-workloads", "sha", "-axes", "rob=48,64")
	if !strings.Contains(text, "efficiency-optimal:") || !strings.Contains(text, "design points: 2") {
		t.Errorf("text report missing recommendation or point count:\n%s", text)
	}
}

// TestRemoteMatchesLocal: the same campaign through a boomd handler and
// through the in-process runner must emit identical frontier bytes.
func TestRemoteMatchesLocal(t *testing.T) {
	s, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	addr := strings.TrimPrefix(ts.URL, "http://")

	campaign := []string{"-workloads", "sha", "-axes", "rob=48,64", "-json"}
	local, _ := runDSE(t, append([]string{"-q"}, campaign...)...)
	remote, _ := runDSE(t, append([]string{"-addr", addr}, campaign...)...)
	if local != remote {
		t.Fatalf("frontier bytes differ between local and boomd paths:\nlocal  %s\nremote %s", local, remote)
	}
}
