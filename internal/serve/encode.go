package serve

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/workloads"
)

// Campaign is the POST /v1/sweeps request body: the cross product of
// workloads × configs evaluated at one scale under the daemon's flow
// parameters. Empty lists mean "everything" — all registered workloads,
// the paper's three design points — so the zero Campaign is the full
// paper experiment at tiny scale.
type Campaign struct {
	// Workloads lists benchmark names (see internal/workloads.Names).
	// Empty = all of them, in Table II order.
	Workloads []string `json:"workloads"`
	// Configs lists BOOM design points ("MediumBOOM"/"medium", ...).
	// Empty = the paper's three design points in Table I order.
	Configs []string `json:"configs"`
	// Scale is "tiny", "default" or "paper"; empty = "tiny".
	Scale string `json:"scale"`
}

// campaign is a validated, resolved Campaign.
type campaign struct {
	names []string
	cfgs  []boom.Config
	scale workloads.Scale
}

// resolveCampaign validates a request against the same identities the
// sweep engine uses: workload names must be registered, config names must
// resolve through boom.ConfigByName (which also canonicalizes shorthand
// like "medium"), and duplicates are rejected because the journal keys
// tasks by (kind, workload, config) labels. Everything that passes here
// is exactly what feeds the campaign fingerprint.
func resolveCampaign(req Campaign) (campaign, error) {
	var c campaign
	c.scale = workloads.ScaleTiny
	if req.Scale != "" {
		s, err := workloads.ParseScale(req.Scale)
		if err != nil {
			return c, err
		}
		c.scale = s
	}
	if len(req.Workloads) == 0 {
		c.names = workloads.Names()
	} else {
		known := map[string]bool{}
		for _, n := range workloads.Names() {
			known[n] = true
		}
		seen := map[string]bool{}
		for _, n := range req.Workloads {
			if !known[n] {
				return c, fmt.Errorf("unknown workload %q", n)
			}
			if seen[n] {
				return c, fmt.Errorf("duplicate workload %q", n)
			}
			seen[n] = true
		}
		c.names = append([]string(nil), req.Workloads...)
	}
	if len(req.Configs) == 0 {
		c.cfgs = boom.Configs()
	} else {
		seen := map[string]bool{}
		for _, n := range req.Configs {
			cfg, err := boom.ConfigByName(n)
			if err != nil {
				return c, err
			}
			if seen[cfg.Name] {
				return c, fmt.Errorf("duplicate config %q", cfg.Name)
			}
			seen[cfg.Name] = true
			c.cfgs = append(c.cfgs, cfg)
		}
	}
	return c, nil
}

// SweepResult is the canonical JSON served by GET /v1/sweeps/{id}/result.
// It contains only values that are bit-reproducible across runs — IPC,
// power, coverage, instruction counts — and deliberately no wall-clock
// figures, so encoding a direct Runner.Sweep of the same campaign yields
// byte-identical output whether the sweep was cold, warm-cached, resumed,
// or served over HTTP.
type SweepResult struct {
	ID        string      `json:"id"`
	Scale     string      `json:"scale"`
	Workloads []string    `json:"workloads"`
	Configs   []string    `json:"configs"`
	Rows      []ResultRow `json:"rows"`
	// Failed lists "config/workload" pairs with no result (keep-going
	// sweeps render partial campaigns instead of hiding losses).
	Failed []string `json:"failed,omitempty"`
	// SpeedupX is detailed-instruction reduction of the SimPoint flow
	// over full simulation (the paper's headline ratio), computed from
	// instruction counts only.
	SpeedupX float64 `json:"speedup_x"`
}

// ResultRow is one (workload, config) cell of a campaign.
type ResultRow struct {
	Workload      string  `json:"workload"`
	Config        string  `json:"config"`
	IPC           float64 `json:"ipc"`
	PowerMW       float64 `json:"power_mw"`
	PerfPerWatt   float64 `json:"perf_per_watt"`
	Coverage      float64 `json:"coverage"`
	K             int     `json:"k"`
	NumPoints     int     `json:"num_points"`
	TotalInsts    uint64  `json:"total_insts"`
	DetailedInsts uint64  `json:"detailed_insts"`
}

// EncodeSweep renders a sweep as canonical JSON bytes: rows in request
// order (configs outer, workloads inner — the order Names/ConfigNames
// record), struct-field key order, one trailing newline. Non-finite
// derived ratios are clamped to 0 so the encoding can never fail on a
// degenerate measurement.
func EncodeSweep(id string, scale workloads.Scale, sw *core.Sweep) ([]byte, error) {
	out := SweepResult{
		ID:        id,
		Scale:     scale.String(),
		Workloads: append([]string{}, sw.Names...),
		Configs:   append([]string{}, sw.ConfigNames...),
		Rows:      []ResultRow{},
	}
	for _, cfg := range sw.ConfigNames {
		for _, name := range sw.Names {
			res := sw.Results[cfg][name]
			if res == nil {
				out.Failed = append(out.Failed, cfg+"/"+name)
				continue
			}
			out.Rows = append(out.Rows, ResultRow{
				Workload:      name,
				Config:        cfg,
				IPC:           finite(res.IPC()),
				PowerMW:       finite(res.TotalPowerMW()),
				PerfPerWatt:   perfPerWatt(res),
				Coverage:      finite(res.Coverage),
				K:             res.K,
				NumPoints:     res.NumPoints,
				TotalInsts:    res.TotalInsts,
				DetailedInsts: res.DetailedInsts,
			})
		}
	}
	out.SpeedupX = finite(sw.SpeedupOf().Speedup())
	b, err := json.Marshal(out)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// perfPerWatt guards Result.PerfPerWatt's division: a zero-power cell
// yields 0, not +Inf.
func perfPerWatt(res *core.Result) float64 {
	mw := res.TotalPowerMW()
	if !(mw > 0) {
		return 0
	}
	return finite(res.IPC() / (mw / 1000.0))
}

func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
