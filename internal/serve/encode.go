package serve

import (
	"encoding/json"
	"math"

	"repro/internal/core"
	"repro/internal/workloads"
)

// SweepResult is the canonical JSON served by GET /v1/sweeps/{id}/result.
// It contains only values that are bit-reproducible across runs — IPC,
// power, coverage, instruction counts — and deliberately no wall-clock
// figures, so encoding a direct Runner.Sweep of the same campaign yields
// byte-identical output whether the sweep was cold, warm-cached, resumed,
// or served over HTTP.
type SweepResult struct {
	ID    string `json:"id"`
	Scale string `json:"scale"`
	// Sampling is the campaign's effective sampling spec rendered
	// compactly; absent for the legacy zero spec, so pre-sampling result
	// bytes are reproduced unchanged.
	Sampling  string      `json:"sampling,omitempty"`
	Workloads []string    `json:"workloads"`
	Configs   []string    `json:"configs"`
	Rows      []ResultRow `json:"rows"`
	// Failed lists "config/workload" pairs with no result (keep-going
	// sweeps render partial campaigns instead of hiding losses).
	Failed []string `json:"failed,omitempty"`
	// SpeedupX is detailed-instruction reduction of the SimPoint flow
	// over full simulation (the paper's headline ratio), computed from
	// instruction counts only.
	SpeedupX float64 `json:"speedup_x"`
}

// ResultRow is one (workload, config) cell of a campaign.
type ResultRow struct {
	Workload      string  `json:"workload"`
	Config        string  `json:"config"`
	IPC           float64 `json:"ipc"`
	PowerMW       float64 `json:"power_mw"`
	PerfPerWatt   float64 `json:"perf_per_watt"`
	Coverage      float64 `json:"coverage"`
	K             int     `json:"k"`
	NumPoints     int     `json:"num_points"`
	TotalInsts    uint64  `json:"total_insts"`
	DetailedInsts uint64  `json:"detailed_insts"`
}

// EncodeSweep renders a sweep as canonical JSON bytes: rows in request
// order (configs outer, workloads inner — the order Names/ConfigNames
// record), struct-field key order, one trailing newline. Non-finite
// derived ratios are clamped to 0 so the encoding can never fail on a
// degenerate measurement.
func EncodeSweep(id string, scale workloads.Scale, sw *core.Sweep) ([]byte, error) {
	out := SweepResult{
		ID:        id,
		Scale:     scale.String(),
		Sampling:  sw.Sampling.String(),
		Workloads: append([]string{}, sw.Names...),
		Configs:   append([]string{}, sw.ConfigNames...),
		Rows:      []ResultRow{},
	}
	for _, cfg := range sw.ConfigNames {
		for _, name := range sw.Names {
			res := sw.Results[cfg][name]
			if res == nil {
				out.Failed = append(out.Failed, cfg+"/"+name)
				continue
			}
			out.Rows = append(out.Rows, ResultRow{
				Workload:      name,
				Config:        cfg,
				IPC:           finite(res.IPC()),
				PowerMW:       finite(res.TotalPowerMW()),
				PerfPerWatt:   perfPerWatt(res),
				Coverage:      finite(res.Coverage),
				K:             res.K,
				NumPoints:     res.NumPoints,
				TotalInsts:    res.TotalInsts,
				DetailedInsts: res.DetailedInsts,
			})
		}
	}
	out.SpeedupX = finite(sw.SpeedupOf().Speedup())
	b, err := json.Marshal(out)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// perfPerWatt guards Result.PerfPerWatt's division: a zero-power cell
// yields 0, not +Inf.
func perfPerWatt(res *core.Result) float64 {
	mw := res.TotalPowerMW()
	if !(mw > 0) {
		return 0
	}
	return finite(res.IPC() / (mw / 1000.0))
}

func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
