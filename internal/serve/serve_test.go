package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/workloads"
)

// newTestServer builds a Server plus an httptest front end and registers
// cleanup. Tests that drain explicitly pass their own teardown.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postCampaign(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// directSweepBytes runs the same campaign straight through core.Runner and
// encodes it with the serving encoder — the byte-identity reference.
func directSweepBytes(t *testing.T, names []string, cfgs []boom.Config, scale workloads.Scale) (string, []byte) {
	t.Helper()
	r := core.New(core.FlowConfigFor(scale), core.WithScale(scale))
	camp := core.NewCampaign(names, cfgs, scale)
	id := r.CampaignID(camp)
	sw, err := r.Sweep(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSweep(id, scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	return id, b
}

// TestSingleFlightLoad is the acceptance load test: 32 concurrent
// submissions of one campaign must trigger exactly one underlying sweep,
// and every response body must be byte-identical to a direct Runner.Sweep
// of the same campaign.
func TestSingleFlightLoad(t *testing.T) {
	names := []string{"sha"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	wantID, want := directSweepBytes(t, names, cfgs, workloads.ScaleTiny)

	s, ts := newTestServer(t, Config{})
	const clients = 32
	body := `{"workloads":["sha"],"configs":["medium"],"scale":"tiny"}`

	var wg sync.WaitGroup
	statuses := make([]int, clients)
	ids := make([]string, clients)
	results := make([][]byte, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			statuses[i] = resp.StatusCode
			var st Status
			if err := json.Unmarshal(b, &st); err != nil {
				errs[i] = fmt.Errorf("submit response %q: %w", b, err)
				return
			}
			ids[i] = st.ID
			rr, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/result?wait=1")
			if err != nil {
				errs[i] = err
				return
			}
			rb, err := io.ReadAll(rr.Body)
			rr.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			if rr.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("result status %d: %s", rr.StatusCode, rb)
				return
			}
			results[i] = rb
		}(i)
	}
	wg.Wait()

	var accepted, collapsed int
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		switch statuses[i] {
		case http.StatusAccepted:
			accepted++
		case http.StatusOK:
			collapsed++
		default:
			t.Errorf("client %d: submit status %d", i, statuses[i])
		}
		if ids[i] != wantID {
			t.Errorf("client %d: job id %q, want campaign fingerprint %q", i, ids[i], wantID)
		}
		if !bytes.Equal(results[i], want) {
			t.Errorf("client %d: result differs from direct Runner.Sweep:\ngot  %s\nwant %s",
				i, results[i], want)
		}
	}
	if accepted != 1 || collapsed != clients-1 {
		t.Errorf("accepted=%d collapsed=%d, want 1 and %d", accepted, collapsed, clients-1)
	}
	reg := s.Metrics()
	if got := reg.Counter("serve.sweeps_started").Value(); got != 1 {
		t.Errorf("serve.sweeps_started = %d, want exactly 1 (single flight)", got)
	}
	if got := reg.Counter("serve.jobs_collapsed").Value(); got != int64(clients-1) {
		t.Errorf("serve.jobs_collapsed = %d, want %d", got, clients-1)
	}
	// Exactly one engine run: 1 profile + 1 measure task.
	if got := reg.Counter("core.sweep.tasks").Value(); got != 2 {
		t.Errorf("core.sweep.tasks = %d, want 2 (one underlying sweep)", got)
	}
}

// TestGracefulDrainResume is the acceptance drain test: SIGTERM
// (Shutdown) during a sweep cancels it with completed tasks journaled; a
// fresh server over the same cache dir with Resume replays the journal
// and completes the campaign without recomputing the journaled tasks.
func TestGracefulDrainResume(t *testing.T) {
	dir := t.TempDir()
	names := []string{"sha", "qsort"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	body := `{"workloads":["sha","qsort"],"configs":["medium"],"scale":"tiny"}`
	_, want := directSweepBytes(t, names, cfgs, workloads.ScaleTiny)

	// Phase 1: a server whose sweep blocks after 2 completed tasks (both
	// profiles, journaled "done"), standing in for a long campaign.
	release := make(chan struct{})
	hookHit := make(chan struct{})
	var once sync.Once
	srvA, err := New(Config{
		CacheDir:    dir,
		Parallelism: 1,
		TaskHook: func(completed int) {
			if completed == 2 {
				once.Do(func() { close(hookHit) })
				<-release
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	resp, b := postCampaign(t, tsA, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	<-hookHit // two tasks journaled, worker parked mid-sweep

	// SIGTERM path: drain with a grace the parked sweep cannot meet.
	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srvA.Shutdown(dctx) }()
	<-srvA.baseCtx.Done() // grace expired, sweeps canceled
	close(release)
	if err := <-errc; err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if rr, rb := get(t, tsA.URL+"/v1/sweeps/"+st.ID+"/result"); rr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("canceled sweep served %d %s, want 500", rr.StatusCode, rb)
	}
	if rr, _ := get(t, tsA.URL+"/readyz"); rr.StatusCode != http.StatusServiceUnavailable {
		t.Error("draining server must fail readiness")
	}
	if rr, _ := postCampaign(t, tsA, body); rr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server admitted a submission (%d)", rr.StatusCode)
	}

	// Phase 2: restart over the same cache dir with -resume; resubmitting
	// the campaign replays the journal.
	srvB, tsB := newTestServer(t, Config{CacheDir: dir, Resume: true, Parallelism: 1})
	resp, b = postCampaign(t, tsB, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, b)
	}
	rr, rb := get(t, tsB.URL+"/v1/sweeps/"+st.ID+"/result?wait=1")
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("resumed sweep: %d %s", rr.StatusCode, rb)
	}
	if !bytes.Equal(rb, want) {
		t.Errorf("resumed result differs from direct run:\ngot  %s\nwant %s", rb, want)
	}
	if got := srvB.Metrics().Counter("core.sweep.tasks_resumed").Value(); got != 2 {
		t.Errorf("core.sweep.tasks_resumed = %d, want 2 (the journaled tasks)", got)
	}
}

// TestChaosDrillOverHTTP: a daemon armed with a transient chaos fault and
// a retry budget must absorb the fault and still serve bytes identical to
// a fault-free direct run.
func TestChaosDrillOverHTTP(t *testing.T) {
	names := []string{"sha"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	_, want := directSweepBytes(t, names, cfgs, workloads.ScaleTiny)

	s, ts := newTestServer(t, Config{
		Chaos:   "1:core.measure/sha/MediumBOOM=error",
		Retries: 2,
	})
	resp, b := postCampaign(t, ts, `{"workloads":["sha"],"configs":["medium"],"scale":"tiny"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	rr, rb := get(t, ts.URL+"/v1/sweeps/"+st.ID+"/result?wait=1")
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("chaos sweep: %d %s", rr.StatusCode, rb)
	}
	if !bytes.Equal(rb, want) {
		t.Errorf("retried result not bit-identical to fault-free run:\ngot  %s\nwant %s", rb, want)
	}
	if got := s.Metrics().Counter("core.sweep.retries").Value(); got == 0 {
		t.Error("injected transient fault consumed no retry — chaos not armed?")
	}
}

// TestBackpressure: with a one-deep queue and the only worker parked, a
// third campaign must be rejected with 429 and a Retry-After hint.
func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s, ts := newTestServer(t, Config{
		QueueDepth: 1,
		TaskHook: func(completed int) {
			once.Do(func() { close(started) })
			<-block
		},
	})
	defer close(block)

	submit := func(wl string) (*http.Response, []byte) {
		return postCampaign(t, ts,
			`{"workloads":["`+wl+`"],"configs":["medium"],"scale":"tiny"}`)
	}
	if resp, b := submit("sha"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", resp.StatusCode, b)
	}
	<-started // worker is busy with sha, queue is empty
	if resp, b := submit("qsort"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", resp.StatusCode, b)
	}
	resp, b := submit("bitcount")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d %s, want 429", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After hint")
	}
	if got := s.Metrics().Counter("serve.jobs_rejected_full").Value(); got != 1 {
		t.Errorf("serve.jobs_rejected_full = %d, want 1", got)
	}
}

// TestValidation: malformed and unknown campaigns are 400s; unknown job
// IDs are 404s; the error payload is JSON.
func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
	}{
		{"malformed JSON", `{"workloads": [`},
		{"unknown field", `{"workload": ["sha"]}`},
		{"unknown workload", `{"workloads":["linpack"]}`},
		{"duplicate workload", `{"workloads":["sha","sha"]}`},
		{"unknown config", `{"configs":["GigaBOOM"]}`},
		{"duplicate config", `{"configs":["medium","MediumBOOM"]}`},
		{"unknown scale", `{"scale":"huge"}`},
	} {
		resp, b := postCampaign(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d %s, want 400", tc.name, resp.StatusCode, b)
		}
		var je jsonError
		if err := json.Unmarshal(b, &je); err != nil || je.Error == "" {
			t.Errorf("%s: error payload %q is not {\"error\":...}", tc.name, b)
		}
	}
	for _, path := range []string{"/v1/sweeps/nope", "/v1/sweeps/nope/result"} {
		if resp, b := get(t, ts.URL+path); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d %s, want 404", path, resp.StatusCode, b)
		}
	}
}

// TestHealthAndMetrics: liveness always passes, readiness flips on drain,
// and /metrics speaks Prometheus text with both serving and engine series.
func TestHealthAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if resp, b := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, b)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz before drain: %d", resp.StatusCode)
	}

	resp, b := postCampaign(t, ts, `{"workloads":["sha"],"configs":["medium"],"scale":"tiny"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if rr, rb := get(t, ts.URL+"/v1/sweeps/"+st.ID+"/result?wait=1"); rr.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", rr.StatusCode, rb)
	}

	mr, mb := get(t, ts.URL+"/metrics")
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", mr.StatusCode)
	}
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type %q", ct)
	}
	for _, series := range []string{
		"# TYPE serve_sweeps_done counter",
		"serve_sweeps_done 1",
		"serve_http_requests",
		"core_sweep_tasks 2",
	} {
		if !strings.Contains(string(mb), series) {
			t.Errorf("/metrics missing %q", series)
		}
	}

	s.BeginDrain()
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: %d, want 200 (still alive)", resp.StatusCode)
	}
}

// TestFailedJobResubmission: a failed campaign is not sticky — the next
// submission of the same fingerprint re-runs it instead of collapsing
// onto the failure.
func TestFailedJobResubmission(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Chaos: "1:core.measure/sha/MediumBOOM=error-perm",
	})
	body := `{"workloads":["sha"],"configs":["medium"],"scale":"tiny"}`
	resp, b := postCampaign(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	rr, rb := get(t, ts.URL+"/v1/sweeps/"+st.ID+"/result?wait=1")
	if rr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned sweep served %d %s, want 500", rr.StatusCode, rb)
	}
	// Fingerprinting ignores the injector, so the resubmission reuses the
	// id; it must be re-admitted as a fresh job (202), not collapsed onto
	// the failure (200). Each admission arms the chaos plan anew, so the
	// re-run fails the same way — what matters here is that it *ran*.
	resp, b = postCampaign(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit after failure: %d %s, want 202", resp.StatusCode, b)
	}
	if rr, rb := get(t, ts.URL+"/v1/sweeps/"+st.ID+"/result?wait=1"); rr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("re-run sweep: %d %s, want the same injected failure", rr.StatusCode, rb)
	}
	if got := s.Metrics().Counter("serve.sweeps_started").Value(); got != 2 {
		t.Errorf("serve.sweeps_started = %d, want 2 (failure is retriable)", got)
	}
}

// TestConfigValidation: New must reject incoherent configs up front.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Resume: true}); err == nil {
		t.Error("Resume without CacheDir must be rejected")
	}
	if _, err := New(Config{CacheVerify: true}); err == nil {
		t.Error("CacheVerify without CacheDir must be rejected")
	}
	if _, err := New(Config{Chaos: "not-a-spec"}); err == nil {
		t.Error("malformed chaos spec must be rejected at startup")
	}
	if _, err := New(Config{RemoteStore: "http://store:9000"}); err == nil {
		t.Error("RemoteStore without CacheDir must be rejected")
	}
}

// TestDistributeHook: when Config.Distribute is set, every admitted job
// runs through it instead of the local runner, and the hook's sweep is
// what gets encoded and served. This is the seam boomd uses to hand
// campaigns to the fabric coordinator without serve importing it.
func TestDistributeHook(t *testing.T) {
	names := []string{"sha"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	_, want := directSweepBytes(t, names, cfgs, workloads.ScaleTiny)

	var calls int32
	var gotID string
	var gotCamp core.Campaign
	_, ts := newTestServer(t, Config{
		Distribute: func(ctx context.Context, id string, camp core.Campaign, local *core.Runner) (*core.Sweep, error) {
			calls++
			gotID, gotCamp = id, camp
			if local == nil {
				t.Error("Distribute must receive the job's local runner for fallback")
			}
			return local.Sweep(ctx, camp)
		},
	})
	body := `{"workloads":["sha"],"configs":["medium"],"scale":"tiny"}`
	resp, b := postCampaign(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	rr, rb := get(t, ts.URL+"/v1/sweeps/"+st.ID+"/result?wait=1")
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", rr.StatusCode, rb)
	}
	if calls != 1 {
		t.Errorf("Distribute called %d times, want 1", calls)
	}
	if gotID != st.ID {
		t.Errorf("Distribute saw id %q, job id is %q", gotID, st.ID)
	}
	if len(gotCamp.Workloads) != 1 || gotCamp.Workloads[0] != "sha" {
		t.Errorf("Distribute saw campaign %+v", gotCamp)
	}
	if !bytes.Equal(rb, want) {
		t.Error("distributed job bytes differ from direct sweep")
	}

	// A Distribute failure fails the job like any sweep error.
	_, ts2 := newTestServer(t, Config{
		Distribute: func(ctx context.Context, id string, camp core.Campaign, local *core.Runner) (*core.Sweep, error) {
			return nil, fmt.Errorf("fabric unreachable")
		},
	})
	resp, b = postCampaign(t, ts2, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if rr, rb := get(t, ts2.URL+"/v1/sweeps/"+st.ID+"/result?wait=1"); rr.StatusCode != http.StatusInternalServerError || !bytes.Contains(rb, []byte("fabric unreachable")) {
		t.Fatalf("failed distribution served %d %s, want 500 with the cause", rr.StatusCode, rb)
	}
}
