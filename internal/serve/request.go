package serve

import (
	"fmt"
	"strconv"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/sampling"
	"repro/internal/workloads"
)

// SweepRequest is the POST /v1/sweeps body. Two request shapes share the
// endpoint:
//
// v1 (named configs) — the original body, still accepted unchanged, and
// producing byte-identical campaign fingerprints to the pre-parametric
// service (journals and cache entries written by older builds keep
// resuming):
//
//	{"workloads": ["sha"], "configs": ["medium", "mega"], "scale": "tiny"}
//
// v2 (parametric) — a base design point plus config_overrides and sweep
// axes, expanded server-side through internal/dse into the cross product
// of validated design points:
//
//	{"workloads": ["sha", "qsort"],
//	 "base": "medium",
//	 "config_overrides": {"predictor": "gshare"},
//	 "axes": {"rob": [64, 96, 128], "int-issue-width": [2, 3]},
//	 "scale": "tiny"}
//
// "configs" is mutually exclusive with base/config_overrides/axes. Axis
// values may be JSON numbers or strings; expansions beyond dse.MaxPoints
// are rejected at admission. Empty lists keep their v1 meaning: all
// workloads, the paper's three design points.
type SweepRequest struct {
	// Workloads lists benchmark names (see internal/workloads.Names).
	// Empty = all of them, in Table II order.
	Workloads []string `json:"workloads,omitempty"`
	// Configs lists named BOOM design points ("MediumBOOM"/"medium", …).
	// Empty (with no parametric fields) = the paper's three design points
	// in Table I order.
	Configs []string `json:"configs,omitempty"`
	// Scale is "tiny", "default" or "paper"; empty = "tiny".
	Scale string `json:"scale,omitempty"`

	// Base names the design point parametric expansion starts from
	// (default MediumBOOM). Setting any parametric field switches the
	// request to the v2 shape.
	Base string `json:"base,omitempty"`
	// ConfigOverrides pin parameters on the base before the axes apply.
	ConfigOverrides map[string]AxisValue `json:"config_overrides,omitempty"`
	// Axes maps parameter names to the values each sweeps over; the
	// campaign is the cross product. Expansion order is deterministic
	// (parameters sorted by name, values in request order).
	Axes map[string][]AxisValue `json:"axes,omitempty"`

	// Sampling is the optional v2 sampling block. Absent, the campaign
	// runs under the server's default spec (zero unless the daemon sets
	// one), which for a zero spec reproduces the pre-sampling campaign
	// fingerprints byte-for-byte:
	//
	//	{"workloads": ["dijkstra"], "configs": ["medium"],
	//	 "sampling": {"features": "bbv+mav", "warmup": "5x", "interval": 20000}}
	Sampling *SamplingRequest `json:"sampling,omitempty"`
}

// SamplingRequest is the wire form of sampling.Spec. Warmup is the CLI
// spelling ("none", "<n>" fixed instructions, "<n>x" proportional) rather
// than the three policy fields, so a request can never submit an
// inconsistent policy triple.
type SamplingRequest struct {
	// Interval is the profiling interval in instructions (0 = the
	// workload's Table II fallback).
	Interval int64 `json:"interval,omitempty"`
	// Features is "bbv" or "bbv+mav" ("" = "bbv").
	Features string `json:"features,omitempty"`
	// Dims overrides SimPoint projection dimensionality (0 = flow default).
	Dims int `json:"dims,omitempty"`
	// MaxK overrides the SimPoint k ceiling (0 = flow default).
	MaxK int `json:"max_k,omitempty"`
	// Warmup is "", "none", "<n>", or "<n>x".
	Warmup string `json:"warmup,omitempty"`
}

// spec resolves the request block into the campaign's sampling.Spec.
func (sr *SamplingRequest) spec() (sampling.Spec, error) {
	if sr == nil {
		return sampling.Spec{}, nil
	}
	policy, insts, factor, err := sampling.ParseWarmup(sr.Warmup)
	if err != nil {
		return sampling.Spec{}, err
	}
	spec := sampling.Spec{
		Interval:     sr.Interval,
		Features:     sr.Features,
		Dims:         sr.Dims,
		MaxK:         sr.MaxK,
		WarmupPolicy: policy,
		WarmupInsts:  insts,
		WarmupFactor: factor,
	}
	return spec, spec.Validate()
}

// AxisValue is one axis value, accepted as a JSON string or number —
// {"rob": [64, "96"]} both work — and carried canonically as a string.
type AxisValue string

// UnmarshalJSON accepts a JSON string or number.
func (v *AxisValue) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		s, err := strconv.Unquote(string(b))
		if err != nil {
			return err
		}
		*v = AxisValue(s)
		return nil
	}
	// A number: keep its literal form (dse canonicalizes it).
	if _, err := strconv.ParseFloat(string(b), 64); err != nil {
		return fmt.Errorf("axis value %s is neither a string nor a number", b)
	}
	*v = AxisValue(b)
	return nil
}

// MarshalJSON always emits the string form (the canonical request shape
// boomctl sends).
func (v AxisValue) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(string(v))), nil
}

// resolveRequest validates a request against the same identities the
// sweep engine uses — workload names must be registered, named configs
// resolve through boom.ConfigByName, parametric fields expand through
// internal/dse — and returns the core.Campaign that feeds the campaign
// fingerprint. Everything that passes here is exactly what the journal
// and artifact cache key on.
func resolveRequest(req SweepRequest) (core.Campaign, error) {
	var camp core.Campaign
	camp.Scale = workloads.ScaleTiny
	if req.Scale != "" {
		s, err := workloads.ParseScale(req.Scale)
		if err != nil {
			return camp, err
		}
		camp.Scale = s
	}

	if len(req.Workloads) == 0 {
		camp.Workloads = workloads.Names()
	} else {
		camp.Workloads = append([]string(nil), req.Workloads...)
	}

	sspec, err := req.Sampling.spec()
	if err != nil {
		return camp, err
	}
	camp.Sampling = sspec

	parametric := req.Base != "" || len(req.Axes) > 0 || len(req.ConfigOverrides) > 0
	switch {
	case parametric && len(req.Configs) > 0:
		return camp, fmt.Errorf("configs is mutually exclusive with base/config_overrides/axes")
	case parametric:
		spec := dse.Spec{Base: req.Base}
		for k, v := range req.ConfigOverrides {
			spec.Overrides = append(spec.Overrides, dse.Setting{Param: k, Value: string(v)})
		}
		for k, vs := range req.Axes {
			ax := dse.Axis{Param: k}
			for _, v := range vs {
				ax.Values = append(ax.Values, string(v))
			}
			spec.Axes = append(spec.Axes, ax)
		}
		cfgs, err := dse.Expand(spec)
		if err != nil {
			return camp, err
		}
		camp.Configs = cfgs
	case len(req.Configs) == 0:
		camp.Configs = boom.Configs()
	default:
		for _, n := range req.Configs {
			cfg, err := boom.ConfigByName(n)
			if err != nil {
				return camp, err
			}
			camp.Configs = append(camp.Configs, cfg)
		}
	}
	if err := camp.Validate(); err != nil {
		return camp, err
	}
	return camp, nil
}
