package serve

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
)

// jobState is a job's position in its lifecycle. Transitions are
// queued → running → done|failed, all under Server.mu.
type jobState string

const (
	jobQueued  jobState = "queued"
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
)

// job is one admitted campaign. The id is the campaign fingerprint, so a
// job is also the single-flight slot for its campaign: duplicates find it
// in Server.jobs and collapse onto it instead of enqueueing.
type job struct {
	id     string
	camp   core.Campaign
	runner *core.Runner

	// Mutable state, guarded by Server.mu.
	state     jobState
	collapsed int
	err       string
	result    []byte // canonical EncodeSweep bytes, written once

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// worker drains the queue until BeginDrain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one sweep under the server's base context. The journal
// makes cancellation lossless: tasks record "done" before the sweep
// returns, so a drain that cancels mid-campaign leaves a journal that
// -resume replays without recomputation.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	j.state = jobRunning
	s.mu.Unlock()
	s.reg.Gauge("serve.queue_depth").Set(float64(len(s.queue)))
	s.reg.Counter("serve.sweeps_started").Inc()
	s.logf("sweep %s: %d workload(s) × %d design point(s) at %s scale",
		shortID(j.id), len(j.camp.Workloads), len(j.camp.Configs), j.camp.Scale)

	start := time.Now()
	var sw *core.Sweep
	var err error
	if s.cfg.Distribute != nil {
		// Distributed plane: the fabric coordinator shards the campaign
		// across live workers (or runs it on j.runner when none are),
		// returning the same canonical Sweep either way.
		sw, err = s.cfg.Distribute(s.baseCtx, j.id, j.camp, j.runner)
	} else {
		sw, err = j.runner.Sweep(s.baseCtx, j.camp)
	}
	var payload []byte
	var encErr error
	if sw != nil {
		payload, encErr = EncodeSweep(j.id, j.camp.Scale, sw)
	}

	s.mu.Lock()
	switch {
	case sw == nil || encErr != nil:
		j.state = jobFailed
		switch {
		case encErr != nil:
			j.err = "encoding result: " + encErr.Error()
		case err != nil:
			j.err = err.Error()
		default:
			j.err = "sweep returned no result"
		}
	default:
		// Keep-going sweeps reach here with err != nil and a partial
		// Sweep; the result carries the Failed list and the status
		// carries the error text.
		j.state = jobDone
		j.result = payload
		if err != nil {
			j.err = err.Error()
		}
	}
	failed := j.state == jobFailed
	s.mu.Unlock()

	if failed {
		s.reg.Counter("serve.sweeps_failed").Inc()
		if errors.Is(err, context.Canceled) {
			s.logf("sweep %s: canceled during drain after %s (journaled tasks resume with -resume)",
				shortID(j.id), time.Since(start).Round(time.Millisecond))
		} else {
			s.logf("sweep %s: failed: %v", shortID(j.id), err)
		}
	} else {
		s.reg.Counter("serve.sweeps_done").Inc()
		s.logf("sweep %s: done in %s", shortID(j.id), time.Since(start).Round(time.Millisecond))
	}
	close(j.done)
}

// BeginDrain stops admission: new submissions get 503, queued jobs still
// run. Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	close(s.queue)
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains gracefully: stop admitting, let in-flight and queued
// sweeps finish. If ctx expires first, the sweeps' contexts are canceled
// — they stop at the next task boundary with everything completed so far
// already journaled — and Shutdown returns ctx.Err.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		return nil
	case <-ctx.Done():
	}
	s.cancel()
	<-done
	return ctx.Err()
}

// Close force-stops: cancel all sweeps now and wait for workers to exit.
// For tests; production shutdown is Shutdown.
func (s *Server) Close() {
	s.BeginDrain()
	s.cancel()
	s.wg.Wait()
}

// shortID abbreviates a campaign fingerprint for log lines.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
