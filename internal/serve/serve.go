// Package serve puts the sweep engine behind an HTTP job service. It is
// the thin layer cmd/boomd is built from: a bounded job queue with
// admission control in front of core.Runner, with campaign fingerprints
// (core.Runner.CampaignID — the same identity the crash-resume journal
// and artifact cache key on) doubling as job IDs, so duplicate in-flight
// submissions of one campaign collapse onto a single sweep.
//
// Endpoints:
//
//	POST /v1/sweeps             submit a campaign; 202 queued, 200 collapsed,
//	                            400 invalid, 429 queue full (+Retry-After),
//	                            503 draining
//
// The POST body (see SweepRequest) names workloads and a scale, plus
// either of two config spellings. The original named form lists
// registered design points:
//
//	{"workloads":["sha","qsort"], "configs":["medium","mega"], "scale":"tiny"}
//
// and keeps producing byte-identical campaign fingerprints to the
// pre-parametric service, so existing journals and caches stay valid.
// The parametric form gives a base point plus per-parameter sweep axes
// (expanded by internal/dse into the validated cross product) and
// optional fixed overrides:
//
//	{"workloads":["sha"], "base":"medium",
//	 "axes":{"rob":[64,96], "predictor":["tage","gshare"]},
//	 "config_overrides":{"l2-kib":1024}, "scale":"tiny"}
//
// Axis and override values may be JSON numbers or strings; "configs" is
// mutually exclusive with "base"/"axes"/"config_overrides".
//
//	GET  /v1/sweeps/{id}        job status
//	GET  /v1/sweeps/{id}/result canonical result JSON; ?wait=1 blocks until
//	                            the job reaches a terminal state
//	GET  /metrics               Prometheus text exposition of the shared
//	                            registry (engine + serving counters)
//	GET  /healthz               liveness (always 200 while the process runs)
//	GET  /readyz                readiness (503 once draining)
//
// The server owns one metrics.Registry shared by every sweep it runs and
// by its own serving counters, so /metrics shows engine internals
// (scheduler utilization, cache hits, retry taxonomy) next to serving
// state (queue depth, collapsed/rejected submissions).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/sampling"
)

// Config carries the daemon's flags into the server. The zero value is a
// usable in-memory server: no cache, no retries, queue depth 8, one sweep
// at a time.
type Config struct {
	// CacheDir enables the content-addressed artifact cache and the
	// crash-resume journal for every sweep ("" = neither).
	CacheDir string
	// CacheVerify recomputes every cache hit and fails on divergence.
	CacheVerify bool
	// Resume replays a matching sweep journal under CacheDir on the next
	// submission of that campaign and reruns only unfinished tasks.
	Resume bool
	// Retries bounds per-task retry on transient faults; RetryBase is the
	// backoff base (default 10ms when Retries > 0).
	Retries   int
	RetryBase time.Duration
	// StageTimeout arms a watchdog per pipeline stage (0 = none).
	StageTimeout time.Duration
	// KeepGoing runs every (workload, config) pair despite failures and
	// serves the partial campaign with a Failed list.
	KeepGoing bool
	// Chaos is a deterministic fault-injection plan SEED:SPEC (see
	// internal/faultinject), validated at construction.
	Chaos string
	// Parallelism is per-sweep worker count (0 = all cores).
	Parallelism int
	// PointParallelism caps simulation points measured concurrently within
	// one cell (0 = share the Parallelism budget, 1 = serial; see
	// core.WithPointParallelism).
	PointParallelism int
	// Sampling is the default sampling spec applied to campaigns whose
	// request carries no "sampling" block. The zero value keeps the
	// legacy flow (and its fingerprints) untouched; a request-level block
	// always wins over this default.
	Sampling sampling.Spec

	// QueueDepth bounds the job queue; submissions beyond it get 429
	// (default 8).
	QueueDepth int
	// SweepWorkers is the number of sweeps run concurrently (default 1;
	// keep it at 1 when CacheDir is set — the journal is one file per
	// cache dir, so concurrent sweeps would contend for it).
	SweepWorkers int
	// RetryAfter is the hint returned with 429/503 (default 2s).
	RetryAfter time.Duration

	// TaskHook mirrors core.WithTaskHook (crash drills in tests).
	TaskHook func(completed int)
	// Log receives one line per lifecycle event (nil = silent).
	Log func(format string, args ...interface{})
	// Progress forwards per-stage engine progress lines to Log (noisy).
	Progress bool

	// Registry, when set, replaces the server's private metrics registry —
	// cmd/boomd shares one registry between the server and the fabric
	// coordinator so /metrics shows both planes.
	Registry *metrics.Registry
	// RemoteStore is the base URL of a remote artifact store attached as a
	// read-through tier over CacheDir (which it requires).
	RemoteStore string
	// Distribute, when set, replaces the direct Runner.Sweep call for each
	// job: the fabric coordinator's RunCampaign hooks in here, sharding the
	// campaign across registered workers (and falling back to the local
	// runner when none are live). serve deliberately knows nothing about
	// the fabric beyond this signature — the dependency points the other
	// way, fabric_test imports serve to prove byte-identity.
	Distribute func(ctx context.Context, id string, camp core.Campaign, local *core.Runner) (*core.Sweep, error)
}

// Server is the HTTP job service. Create with New, serve via Handler,
// stop with Shutdown (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	reg     *metrics.Registry
	mux     *http.ServeMux
	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	queue    chan *job
	draining bool

	wg sync.WaitGroup
}

// New validates cfg (chaos spec grammar, cache-dependent flags) and
// starts the sweep workers.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.SweepWorkers <= 0 {
		cfg.SweepWorkers = 1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.Retries > 0 && cfg.RetryBase <= 0 {
		cfg.RetryBase = 10 * time.Millisecond
	}
	if cfg.CacheDir == "" {
		if cfg.CacheVerify {
			return nil, fmt.Errorf("serve: CacheVerify requires CacheDir")
		}
		if cfg.Resume {
			return nil, fmt.Errorf("serve: Resume requires CacheDir (the journal lives there)")
		}
	}
	if cfg.Chaos != "" {
		if _, err := faultinject.Parse(cfg.Chaos); err != nil {
			return nil, err
		}
	}
	if err := cfg.Sampling.Validate(); err != nil {
		return nil, fmt.Errorf("serve: default sampling spec: %w", err)
	}
	if cfg.RemoteStore != "" && cfg.CacheDir == "" {
		return nil, fmt.Errorf("serve: RemoteStore requires CacheDir (the local read-through tier)")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		jobs:  map[string]*job{},
		queue: make(chan *job, cfg.QueueDepth),
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	for i := 0; i < cfg.SweepWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the server's HTTP handler with request accounting.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("serve.http.requests").Inc()
		stop := s.reg.Time("serve.http.request_ns")
		s.mux.ServeHTTP(w, r)
		stop()
	})
}

// Metrics exposes the shared registry (tests assert on serving counters).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Status is the job-state JSON for submit/status responses.
type Status struct {
	ID        string   `json:"id"`
	State     string   `json:"state"`
	Workloads []string `json:"workloads"`
	Configs   []string `json:"configs"`
	Scale     string   `json:"scale"`
	// Sampling is the campaign's effective sampling spec, rendered
	// compactly (absent for the legacy zero spec).
	Sampling string `json:"sampling,omitempty"`
	// Collapsed counts duplicate submissions absorbed by this job.
	Collapsed int    `json:"collapsed,omitempty"`
	Error     string `json:"error,omitempty"`
}

// handleSubmit admits a campaign: resolve → fingerprint → single-flight →
// bounded enqueue. The fingerprint is computed by the same Runner that
// will execute the sweep, so "same campaign" here means exactly what the
// journal and cache mean by it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	camp, err := resolveRequest(req)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if camp.Sampling.IsZero() {
		// Daemon-level default; the request's own block (even an explicit
		// empty one, which resolves to the zero spec) was already applied.
		camp.Sampling = s.cfg.Sampling
	}
	runner, err := s.newRunner(camp)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	id := runner.CampaignID(camp)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reg.Counter("serve.jobs_rejected_draining").Inc()
		w.Header().Set("Retry-After", retryAfterSecs(s.cfg.RetryAfter))
		s.httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if j := s.jobs[id]; j != nil && j.state != jobFailed {
		// Single-flight: this campaign is already queued, running or done.
		j.collapsed++
		st := s.statusLocked(j)
		s.mu.Unlock()
		s.reg.Counter("serve.jobs_collapsed").Inc()
		s.writeJSON(w, http.StatusOK, st)
		return
	}
	j := &job{
		id:     id,
		camp:   camp,
		runner: runner,
		state:  jobQueued,
		done:   make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.reg.Counter("serve.jobs_rejected_full").Inc()
		w.Header().Set("Retry-After", retryAfterSecs(s.cfg.RetryAfter))
		s.httpError(w, http.StatusTooManyRequests,
			fmt.Sprintf("job queue full (%d queued)", s.cfg.QueueDepth))
		return
	}
	s.jobs[id] = j // a failed prior job is replaced: resubmission retries it
	st := s.statusLocked(j)
	depth := len(s.queue)
	s.mu.Unlock()
	s.reg.Counter("serve.jobs_accepted").Inc()
	s.reg.Gauge("serve.queue_depth").Set(float64(depth))
	s.writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	var st Status
	if j != nil {
		st = s.statusLocked(j)
	}
	s.mu.Unlock()
	if j == nil {
		s.httpError(w, http.StatusNotFound, "unknown sweep "+id)
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// handleResult serves the canonical result bytes exactly as the worker
// stored them — no re-encoding per request, so every client of one job
// reads identical bytes. ?wait=1 long-polls until the job is terminal.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		s.httpError(w, http.StatusNotFound, "unknown sweep "+id)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
	s.mu.Lock()
	state, errMsg, result := j.state, j.err, j.result
	st := s.statusLocked(j)
	s.mu.Unlock()
	switch state {
	case jobDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case jobFailed:
		s.httpError(w, http.StatusInternalServerError, "sweep failed: "+errMsg)
	default:
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// newRunner builds the engine for one campaign from the daemon's config.
// All sweeps share the server's registry and cache directory.
func (s *Server) newRunner(c core.Campaign) (*core.Runner, error) {
	opts := []core.Option{
		core.WithScale(c.Scale),
		core.WithMetrics(s.reg),
	}
	if s.cfg.Parallelism > 0 {
		opts = append(opts, core.WithParallelism(s.cfg.Parallelism))
	}
	if s.cfg.PointParallelism > 0 {
		opts = append(opts, core.WithPointParallelism(s.cfg.PointParallelism))
	}
	if s.cfg.CacheDir != "" {
		opts = append(opts, core.WithCache(s.cfg.CacheDir), core.WithCacheVerify(s.cfg.CacheVerify))
	}
	if s.cfg.RemoteStore != "" {
		opts = append(opts, core.WithRemoteStore(artifact.NewRemote(s.cfg.RemoteStore, nil)))
	}
	if s.cfg.Resume {
		opts = append(opts, core.WithResume(true))
	}
	if s.cfg.KeepGoing {
		opts = append(opts, core.WithKeepGoing(true))
	}
	if s.cfg.Retries > 0 {
		opts = append(opts, core.WithRetry(s.cfg.Retries, s.cfg.RetryBase))
	}
	if s.cfg.StageTimeout > 0 {
		opts = append(opts, core.WithStageTimeout(s.cfg.StageTimeout))
	}
	if s.cfg.Chaos != "" {
		inj, err := faultinject.Parse(s.cfg.Chaos)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.WithFaultInjector(inj))
	}
	if s.cfg.TaskHook != nil {
		opts = append(opts, core.WithTaskHook(s.cfg.TaskHook))
	}
	if s.cfg.Progress && s.cfg.Log != nil {
		log := s.cfg.Log
		opts = append(opts, core.WithProgress(func(m string) { log("%s", m) }))
	}
	return core.New(core.FlowConfigFor(c.Scale), opts...), nil
}

func (s *Server) statusLocked(j *job) Status {
	return Status{
		ID:        j.id,
		State:     string(j.state),
		Workloads: append([]string(nil), j.camp.Workloads...),
		Configs:   j.camp.ConfigNames(),
		Scale:     j.camp.Scale.String(),
		Sampling:  j.camp.Sampling.String(),
		Collapsed: j.collapsed,
		Error:     j.err,
	}
}

type jsonError struct {
	Error string `json:"error"`
}

func (s *Server) httpError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, jsonError{Error: msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

func retryAfterSecs(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
