package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/sampling"
	"repro/internal/workloads"
)

// fpShaQsortMediumMAV pins the fingerprint of the sha/qsort/medium
// campaign under {features: bbv+mav, warmup: 5x, interval: 20000}. Like
// the legacy constants above it, this hex is load-bearing: a drift means
// spec-bearing journals and cache chains written today would stop
// resuming. Restore the encoding; never update the constant.
const fpShaQsortMediumMAV = "adaecf29c8f3ae6ad1f2811a17d392aa94ff832c689581bfe0c0677bd6f9b49a"

// samplingWireGolden is the canonical v2 body with a sampling block, byte
// for byte as boomctl emits it (struct field order, no spaces).
const samplingWireGolden = `{"workloads":["sha","qsort"],"configs":["medium"],"scale":"tiny",` +
	`"sampling":{"interval":20000,"features":"bbv+mav","warmup":"5x"}}`

// TestSamplingWireGolden pins the v2 sampling request block in both
// directions: the decoded body resolves to the expected spec and the
// pinned fingerprint, and re-encoding the request reproduces the golden
// bytes exactly (so client and server can never drift on field names).
func TestSamplingWireGolden(t *testing.T) {
	var req SweepRequest
	if err := json.Unmarshal([]byte(samplingWireGolden), &req); err != nil {
		t.Fatal(err)
	}
	camp, err := resolveRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	want := sampling.Spec{
		Interval:     20_000,
		Features:     sampling.FeaturesBBVMAV,
		WarmupPolicy: sampling.WarmupProportional,
		WarmupFactor: 5,
	}
	if camp.Sampling != want {
		t.Fatalf("resolved spec %+v, want %+v", camp.Sampling, want)
	}

	if got := requestID(t, samplingWireGolden); got != fpShaQsortMediumMAV {
		t.Fatalf("spec-bearing fingerprint drifted: got %s, want pinned %s", got, fpShaQsortMediumMAV)
	}

	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != samplingWireGolden {
		t.Fatalf("re-encoded request drifted from golden wire bytes:\n got %s\nwant %s", b, samplingWireGolden)
	}
}

// TestEmptySamplingBlockKeepsLegacyFingerprint: an explicit empty block
// resolves to the zero spec, which must be indistinguishable from no
// block at all.
func TestEmptySamplingBlockKeepsLegacyFingerprint(t *testing.T) {
	got := requestID(t, `{"workloads":["sha","qsort"],"configs":["medium"],"scale":"tiny","sampling":{}}`)
	if got != fpShaQsortMedium {
		t.Fatalf("empty sampling block drifted the fingerprint: got %s, want %s", got, fpShaQsortMedium)
	}
	if fpShaQsortMediumMAV == fpShaQsortMedium {
		t.Fatal("spec-bearing fingerprint collides with the legacy one")
	}
}

// TestSamplingRoundTripThroughServer: a spec-bearing campaign submitted
// over HTTP must produce result bytes identical to a direct Runner.Sweep
// of the same campaign — the sampling spec changes what is computed, not
// the serving layer's byte-identity contract. The status body surfaces
// the spec; the result body carries the "sampling" field.
func TestSamplingRoundTripThroughServer(t *testing.T) {
	spec := sampling.Spec{
		Features:     sampling.FeaturesBBVMAV,
		WarmupPolicy: sampling.WarmupProportional,
		WarmupFactor: 5,
	}
	camp := core.NewCampaign([]string{"sha"}, []boom.Config{boom.MediumBOOM()}, workloads.ScaleTiny)
	camp.Sampling = spec
	r := core.New(core.FlowConfigFor(camp.Scale), core.WithScale(camp.Scale))
	wantID := r.CampaignID(camp)
	sw, err := r.Sweep(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeSweep(wantID, camp.Scale, sw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(want, []byte(`"sampling":"features=bbv+mav warmup=5x"`)) {
		t.Fatalf("canonical encoding is missing the sampling field: %s", want)
	}

	_, ts := newTestServer(t, Config{})
	body := `{"workloads":["sha"],"configs":["medium"],"scale":"tiny",` +
		`"sampling":{"features":"bbv+mav","warmup":"5x"}}`
	resp, b := postCampaign(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != wantID {
		t.Fatalf("served fingerprint %s, want %s", st.ID, wantID)
	}
	if st.Sampling != spec.String() {
		t.Fatalf("status sampling %q, want %q", st.Sampling, spec.String())
	}
	resp, got := get(t, ts.URL+"/v1/sweeps/"+st.ID+"/result?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served bytes differ from direct sweep:\n got %s\nwant %s", got, want)
	}
}

func TestSamplingRequestErrors(t *testing.T) {
	for _, tc := range []struct {
		name, body, want string
	}{
		{"unknown features", `{"sampling":{"features":"mav"}}`, "features"},
		{"malformed warmup", `{"sampling":{"warmup":"fast"}}`, "warmup"},
		{"negative interval", `{"sampling":{"interval":-1}}`, "interval"},
	} {
		var req SweepRequest
		if err := json.Unmarshal([]byte(tc.body), &req); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if _, err := resolveRequest(req); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
