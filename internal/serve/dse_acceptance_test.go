package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/dse"
)

// TestParametricCampaignDedupeAndFrontier is the parametric acceptance
// test: a 3-workload × 32-design-point campaign through the serving layer
// must profile/select/checkpoint each workload exactly once (the
// content-addressed cache counters prove the dedupe), and both the result
// bytes and the derived Pareto frontier must be bit-identical on a
// warm-cache rerun from a fresh server.
func TestParametricCampaignDedupeAndFrontier(t *testing.T) {
	dir := t.TempDir()
	// 4 ROB sizes × 4 integer IQ depths × 2 predictors = 32 design points.
	body := `{"workloads":["sha","qsort","bitcount"],"base":"medium",
		"axes":{"rob":[48,64,96,128],"int-iq":[16,20,24,32],"predictor":["tage","gshare"]},
		"scale":"tiny"}`

	run := func(cacheDir string) (*int64Counters, []byte) {
		s, ts := newTestServer(t, Config{CacheDir: cacheDir})
		resp, b := postCampaign(t, ts, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, b)
		}
		var st Status
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		rr, rb := get(t, ts.URL+"/v1/sweeps/"+st.ID+"/result?wait=1")
		if rr.StatusCode != http.StatusOK {
			t.Fatalf("result: %d %s", rr.StatusCode, rb)
		}
		reg := s.Metrics()
		c := &int64Counters{
			bbvMiss:     reg.Counter("artifact.bbv.miss").Value(),
			selMiss:     reg.Counter("artifact.select.miss").Value(),
			ckptMiss:    reg.Counter("artifact.checkpoint.miss").Value(),
			measureMiss: reg.Counter("artifact.measure.miss").Value(),
			measureHit:  reg.Counter("artifact.measure.hit").Value(),
		}
		return c, rb
	}

	cold, coldBytes := run(dir)
	// One profile chain per workload, not per design point: 32 configs
	// share 3 profiles, 3 selections, 3 checkpoint sets.
	if cold.bbvMiss != 3 || cold.selMiss != 3 || cold.ckptMiss != 3 {
		t.Errorf("cold profile-chain misses = %d/%d/%d (bbv/select/checkpoint), want 3/3/3 — "+
			"design points must share one profile per workload", cold.bbvMiss, cold.selMiss, cold.ckptMiss)
	}
	if cold.measureMiss != 96 {
		t.Errorf("cold measure misses = %d, want 96 (3 workloads × 32 points)", cold.measureMiss)
	}

	var res SweepResult
	if err := json.Unmarshal(coldBytes, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) != 32 || len(res.Rows) != 96 {
		t.Fatalf("result has %d configs, %d rows; want 32 and 96", len(res.Configs), len(res.Rows))
	}

	// Warm rerun from a fresh server over the same cache: everything hits.
	warm, warmBytes := run(dir)
	if !bytes.Equal(coldBytes, warmBytes) {
		t.Error("warm-cache result is not bit-identical to the cold run")
	}
	if warm.measureMiss != 0 || warm.bbvMiss != 0 {
		t.Errorf("warm run recomputed: measure.miss=%d bbv.miss=%d, want 0/0", warm.measureMiss, warm.bbvMiss)
	}
	if warm.measureHit != 96 {
		t.Errorf("warm measure hits = %d, want 96", warm.measureHit)
	}

	// The derived Pareto frontier is as deterministic as the result bytes.
	frontier := func(raw []byte) []byte {
		var r SweepResult
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		cells := make([]dse.Cell, 0, len(r.Rows))
		for _, row := range r.Rows {
			cells = append(cells, dse.Cell{
				Workload: row.Workload, Config: row.Config,
				IPC: row.IPC, PowerMW: row.PowerMW, PerfPerWatt: row.PerfPerWatt,
			})
		}
		rep := &dse.Report{Campaign: r.ID, DesignPoints: len(r.Configs), Workloads: dse.Frontiers(cells)}
		b, err := dse.EncodeReport(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	fCold, fWarm := frontier(coldBytes), frontier(warmBytes)
	if !bytes.Equal(fCold, fWarm) {
		t.Error("Pareto frontier differs between cold and warm runs")
	}
	var rep dse.Report
	if err := json.Unmarshal(fCold, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != 3 {
		t.Fatalf("frontier covers %d workloads, want 3", len(rep.Workloads))
	}
	for _, wf := range rep.Workloads {
		if len(wf.Points) == 0 || wf.Best.Config == "" {
			t.Errorf("%s: empty frontier or recommendation", wf.Workload)
		}
	}
}

type int64Counters struct {
	bbvMiss, selMiss, ckptMiss, measureMiss, measureHit int64
}
