package serve

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/workloads"
)

// Pre-redesign campaign fingerprints, pinned before the Campaign API and
// the parametric v2 body existed. A v1 (named-config) request body must
// keep resolving to these exact IDs: they key journals, cache dedupe and
// job single-flight, so drift would orphan every existing artifact.
const (
	fpTrioTinyAll    = "7ca397f61868bc0960a03e5b548fc38298df2a7d186269a7b0b4c6eb20f5de40"
	fpShaQsortMedium = "19b9181fede44501869b1c4d01e5c4e0e48474bbc1391f8d9eaca5e9b3b5743f"
	fpTrioDefaultAll = "1e5403d4ad2c0f3a40822d1f221269c6a014afada5d92abd80f6e927869c9d26"
)

func requestID(t *testing.T, body string) string {
	t.Helper()
	var req SweepRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	camp, err := resolveRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	r := core.New(core.FlowConfigFor(camp.Scale), core.WithScale(camp.Scale))
	return r.CampaignID(camp)
}

func TestLegacyBodyFingerprintsUnchanged(t *testing.T) {
	for _, tc := range []struct {
		name, body, want string
	}{
		{"empty body = full trio campaign", `{}`, fpTrioTinyAll},
		{"named workloads and config", `{"workloads":["sha","qsort"],"configs":["medium"],"scale":"tiny"}`, fpShaQsortMedium},
		{"default scale", `{"scale":"default"}`, fpTrioDefaultAll},
	} {
		if got := requestID(t, tc.body); got != tc.want {
			t.Errorf("%s: fingerprint %s, want pinned %s", tc.name, got, tc.want)
		}
	}
}

func TestResolveRequestParametric(t *testing.T) {
	var req SweepRequest
	body := `{"workloads":["sha"],"base":"medium",
		"config_overrides":{"l2-kib":1024},
		"axes":{"rob":[64,"96"],"predictor":["tage","gshare"]},"scale":"tiny"}`
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	camp, err := resolveRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Configs) != 4 {
		t.Fatalf("expanded %d design points, want 4", len(camp.Configs))
	}
	// Expansion is deterministic despite the map-typed request fields:
	// parameters sort by name, values keep request order.
	want := []string{
		"MediumBOOM+l2-kib=1024+predictor=tage+rob=64",
		"MediumBOOM+l2-kib=1024+predictor=tage+rob=96",
		"MediumBOOM+l2-kib=1024+predictor=gshare+rob=64",
		"MediumBOOM+l2-kib=1024+predictor=gshare+rob=96",
	}
	if got := camp.ConfigNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("design points:\n got %q\nwant %q", got, want)
	}
	for _, c := range camp.Configs {
		if c.L2KiB != 1024 {
			t.Fatalf("%s: override not applied", c.Name)
		}
	}
}

func TestResolveRequestErrors(t *testing.T) {
	for _, tc := range []struct {
		name, body, want string
	}{
		{"configs with axes", `{"configs":["medium"],"axes":{"rob":[64]}}`, "mutually exclusive"},
		{"configs with base", `{"configs":["medium"],"base":"mega"}`, "mutually exclusive"},
		{"unknown parameter", `{"axes":{"l3-kib":[1]}}`, "unknown parameter"},
		{"invalid corner", `{"axes":{"rob":[2]}}`, "MediumBOOM+rob=2"},
		{"unknown base", `{"base":"TinyBOOM"}`, "TinyBOOM"},
	} {
		var req SweepRequest
		if err := json.Unmarshal([]byte(tc.body), &req); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		_, err := resolveRequest(req)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestAxisValueJSON(t *testing.T) {
	var vs []AxisValue
	if err := json.Unmarshal([]byte(`[64, "96", 1.5]`), &vs); err != nil {
		t.Fatal(err)
	}
	if want := []AxisValue{"64", "96", "1.5"}; !reflect.DeepEqual(vs, want) {
		t.Fatalf("decoded %q, want %q", vs, want)
	}
	if err := json.Unmarshal([]byte(`[true]`), &vs); err == nil {
		t.Error("bool axis value accepted")
	}
	b, err := json.Marshal(AxisValue("64"))
	if err != nil || string(b) != `"64"` {
		t.Errorf("marshal = %s, %v; want \"64\"", b, err)
	}
}

// TestParametricScaleMatchesNamedTrio: a v2 body that parametrically
// reconstructs a registry config is a different campaign (different
// config names) — the fingerprint must differ from the named-trio one, so
// journals can never cross-replay.
func TestParametricScaleMatchesNamedTrio(t *testing.T) {
	id := requestID(t, `{"workloads":["sha","qsort"],"base":"medium","axes":{"rob":[64]},"scale":"tiny"}`)
	if id == fpShaQsortMedium {
		t.Fatal("parametric campaign collided with the named-config fingerprint")
	}
}

func TestCampaignValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		camp core.Campaign
		want string
	}{
		{"no workloads", core.NewCampaign(nil, boom.Configs(), workloads.ScaleTiny), "workload"},
		{"unknown workload", core.NewCampaign([]string{"linpack"}, boom.Configs(), workloads.ScaleTiny), "linpack"},
		{"duplicate config", core.NewCampaign([]string{"sha"},
			[]boom.Config{boom.MediumBOOM(), boom.MediumBOOM()}, workloads.ScaleTiny), "duplicate"},
	}
	for _, tc := range cases {
		if err := tc.camp.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
