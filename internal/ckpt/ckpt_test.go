package ckpt

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/sim"
)

// countdown is a program whose final a0 depends on every iteration, so
// divergence after a restore is detectable.
const countdown = `
	.data
buf:
	.space 8
	.text
	li   a0, 0
	li   t0, 1000
	la   t1, buf
loop:
	add  a0, a0, t0
	sd   a0, 0(t1)       # memory state matters too
	ld   t2, 0(t1)
	add  a0, a0, t2
	srai a0, a0, 1
	addi t0, t0, -1
	bnez t0, loop
	li   a7, 93
	ecall
`

func prep(t *testing.T) *sim.CPU {
	t.Helper()
	p, err := asm.Assemble(countdown)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.New()
	c.Load(p)
	return c
}

func finish(t *testing.T, c *sim.CPU) int64 {
	t.Helper()
	if _, err := c.Run(-1); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("did not halt")
	}
	return c.Exit
}

func TestCaptureRestoreDeterminism(t *testing.T) {
	// Reference: run to completion without checkpointing.
	ref := prep(t)
	want := finish(t, ref)

	// Run half way, capture, finish, then restore and finish again.
	c := prep(t)
	if _, err := c.Run(2500); err != nil {
		t.Fatal(err)
	}
	k := Capture(c)
	if got := finish(t, c); got != want {
		t.Fatalf("first continuation: %d, want %d", got, want)
	}

	c2 := sim.New()
	p, _ := asm.Assemble(countdown)
	c2.Load(p) // establish the decode window
	k.Restore(c2)
	if c2.InstRet != 2500 {
		t.Fatalf("restored InstRet = %d", c2.InstRet)
	}
	if got := finish(t, c2); got != want {
		t.Fatalf("restored continuation: %d, want %d", got, want)
	}
}

func TestRestoreIsolatesMemory(t *testing.T) {
	c := prep(t)
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	k := Capture(c)
	// Mutate the live CPU's memory after capture.
	c.Mem.Write64(0x100_0000, 0xDEAD)
	c2 := sim.New()
	k.Restore(c2)
	if c2.Mem.Read64(0x100_0000) == 0xDEAD {
		t.Fatal("checkpoint shared memory with live CPU")
	}
	// Mutating one restore must not affect another.
	c3 := sim.New()
	k.Restore(c3)
	c2.Mem.Write64(0x200, 7)
	if c3.Mem.Read64(0x200) == 7 {
		t.Fatal("two restores share memory")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	c := prep(t)
	if _, err := c.Run(1234); err != nil {
		t.Fatal(err)
	}
	k := Capture(c)
	k.Interval = 42
	k.Weight = 0.375

	var buf bytes.Buffer
	if err := k.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	k2, err := Deserialize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k2.PC != k.PC || k2.InstRet != k.InstRet || k2.X != k.X || k2.F != k.F {
		t.Fatal("architectural state mismatch after round trip")
	}
	if k2.Interval != 42 || k2.Weight != 0.375 {
		t.Fatalf("metadata mismatch: %d %v", k2.Interval, k2.Weight)
	}

	// The deserialized checkpoint must continue to the same result.
	ref := prep(t)
	want := finish(t, ref)
	c2 := sim.New()
	p, _ := asm.Assemble(countdown)
	c2.Load(p)
	k2.Restore(c2)
	if got := finish(t, c2); got != want {
		t.Fatalf("deserialized continuation: %d, want %d", got, want)
	}
}

func TestDeserializeRejectsBadMagic(t *testing.T) {
	if _, err := Deserialize(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestDeserializeTruncatedStreams(t *testing.T) {
	c := prep(t)
	if _, err := c.Run(500); err != nil {
		t.Fatal(err)
	}
	k := Capture(c)
	var buf bytes.Buffer
	if err := k.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for _, n := range []int{0, 4, 8, 64, 300, 600, len(full) - 1} {
		if n >= len(full) {
			continue
		}
		if _, err := Deserialize(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("prefix of %d bytes deserialized without error", n)
		}
	}
}

func TestCheckpointMetadataDefaults(t *testing.T) {
	c := prep(t)
	k := Capture(c)
	if k.Interval != 0 || k.Weight != 0 {
		t.Errorf("fresh checkpoint carries metadata: %d %v", k.Interval, k.Weight)
	}
	if k.InstRet != c.InstRet || k.PC != c.PC {
		t.Error("capture did not copy architectural position")
	}
}
