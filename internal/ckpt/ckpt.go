// Package ckpt implements architectural checkpoints: a serializable snapshot
// of the CPU's architectural state (PC, integer/FP registers, retired
// instruction count) plus the touched memory pages. It plays the role of the
// Spike-generated checkpoints that Chipyard's checkpointing infrastructure
// loads into the RTL simulator in the paper's flow (Fig. 4).
package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/mem"
	"repro/internal/sim"
)

// magic identifies the serialized format (and its version).
const magic = 0x52565043_4B505431 // "RVPCKPT1"

// Checkpoint is one architectural checkpoint. Weight and interval metadata
// from the SimPoint selection ride along so a checkpoint is self-describing.
type Checkpoint struct {
	PC      uint64
	X       [32]uint64
	F       [32]uint64
	InstRet uint64 // instructions retired before this point
	Mem     *mem.Memory

	// SimPoint metadata
	Interval int64   // interval index this checkpoint starts
	Weight   float64 // fraction of program execution it represents
}

// Capture snapshots the CPU. The memory image is deep-copied so the CPU can
// keep running.
func Capture(c *sim.CPU) *Checkpoint {
	return &Checkpoint{
		PC:      c.PC,
		X:       c.X,
		F:       c.F,
		InstRet: c.InstRet,
		Mem:     c.Mem.Clone(),
	}
}

// Restore loads the checkpoint into the CPU. The checkpoint's memory is
// cloned, so one checkpoint can seed many runs.
func (k *Checkpoint) Restore(c *sim.CPU) {
	c.PC = k.PC
	c.X = k.X
	c.F = k.F
	c.InstRet = k.InstRet
	c.Halted = false
	c.Mem = k.Mem.Clone()
}

// Serialize writes the checkpoint to w.
func (k *Checkpoint) Serialize(w io.Writer) error {
	var buf bytes.Buffer
	le := binary.LittleEndian
	var b8 [8]byte
	put := func(v uint64) {
		le.PutUint64(b8[:], v)
		buf.Write(b8[:])
	}
	put(magic)
	put(k.PC)
	for _, v := range k.X {
		put(v)
	}
	for _, v := range k.F {
		put(v)
	}
	put(k.InstRet)
	put(uint64(k.Interval))
	put(math.Float64bits(k.Weight))
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	return k.Mem.Serialize(w)
}

// SerializeAll writes a slice of checkpoints (a count, then each
// checkpoint in Serialize's format) — the on-disk shape of a profile's
// checkpoint set in the artifact cache.
func SerializeAll(w io.Writer, ks []*Checkpoint) error {
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(len(ks)))
	if _, err := w.Write(b8[:]); err != nil {
		return err
	}
	for _, k := range ks {
		if err := k.Serialize(w); err != nil {
			return err
		}
	}
	return nil
}

// DeserializeAll reads a checkpoint slice in SerializeAll's format.
func DeserializeAll(r io.Reader) ([]*Checkpoint, error) {
	var b8 [8]byte
	if _, err := io.ReadFull(r, b8[:]); err != nil {
		return nil, fmt.Errorf("ckpt: reading checkpoint count: %w", err)
	}
	n := binary.LittleEndian.Uint64(b8[:])
	if n > 1<<20 {
		return nil, fmt.Errorf("ckpt: unreasonable checkpoint count %d", n)
	}
	ks := make([]*Checkpoint, n)
	for i := range ks {
		k, err := Deserialize(r)
		if err != nil {
			return nil, fmt.Errorf("ckpt: checkpoint %d: %w", i, err)
		}
		ks[i] = k
	}
	return ks, nil
}

// Deserialize reads a checkpoint in the format produced by Serialize.
func Deserialize(r io.Reader) (*Checkpoint, error) {
	var b8 [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(r, b8[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b8[:]), nil
	}
	m, err := get()
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("ckpt: bad magic %#x", m)
	}
	k := &Checkpoint{Mem: mem.New()}
	if k.PC, err = get(); err != nil {
		return nil, err
	}
	for i := range k.X {
		if k.X[i], err = get(); err != nil {
			return nil, err
		}
	}
	for i := range k.F {
		if k.F[i], err = get(); err != nil {
			return nil, err
		}
	}
	if k.InstRet, err = get(); err != nil {
		return nil, err
	}
	iv, err := get()
	if err != nil {
		return nil, err
	}
	k.Interval = int64(iv)
	wBits, err := get()
	if err != nil {
		return nil, err
	}
	k.Weight = math.Float64frombits(wBits)
	if err := k.Mem.Deserialize(r); err != nil {
		return nil, err
	}
	return k, nil
}
