package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"math"
	"reflect"
	"sort"
)

// This file implements the canonical encoding behind artifact keys. Two
// values of the same Go type produce the same byte stream iff they are
// deeply equal, so a SHA-256 over the stream is an injective (modulo hash
// collisions) fingerprint of a stage's inputs. The encoding is
// self-delimiting and type-tagged: every value is prefixed with its
// reflect.Kind, aggregates carry a length, struct fields carry their names,
// and map entries are emitted in sorted-key order so iteration order never
// leaks into the key.

// kind tags. Distinct from reflect.Kind values on purpose: the encoding is
// part of the cache schema and must not shift if reflect ever renumbers.
const (
	tagBool   = 1
	tagInt    = 2
	tagUint   = 3
	tagFloat  = 4
	tagString = 5
	tagSlice  = 6
	tagMap    = 7
	tagStruct = 8
	tagNil    = 9
)

// hashWriter accumulates the canonical stream into a hash.
type hashWriter struct {
	h hash.Hash
	b [8]byte
}

func (w *hashWriter) byte(b byte) { w.h.Write([]byte{b}) }

func (w *hashWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.b[:], v)
	w.h.Write(w.b[:])
}

func (w *hashWriter) str(s string) {
	w.u64(uint64(len(s)))
	io.WriteString(w.h, s)
}

// writeCanon encodes v canonically into w. Unsupported kinds (funcs,
// channels, unsafe pointers) panic: keys are built from plain config
// structs, so hitting one is a programming error, not an input error.
func (w *hashWriter) writeCanon(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		w.byte(tagBool)
		if v.Bool() {
			w.byte(1)
		} else {
			w.byte(0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		w.byte(tagInt)
		w.u64(uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		w.byte(tagUint)
		w.u64(v.Uint())
	case reflect.Float32, reflect.Float64:
		w.byte(tagFloat)
		w.u64(math.Float64bits(v.Float()))
	case reflect.String:
		w.byte(tagString)
		w.str(v.String())
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			w.byte(tagNil)
			return
		}
		w.byte(tagSlice)
		n := v.Len()
		w.u64(uint64(n))
		// Byte slices are the common bulk case (workload segments); hash
		// them directly instead of element-by-element.
		if v.Kind() == reflect.Slice && v.Type().Elem().Kind() == reflect.Uint8 {
			w.h.Write(v.Bytes())
			return
		}
		for i := 0; i < n; i++ {
			w.writeCanon(v.Index(i))
		}
	case reflect.Map:
		if v.IsNil() {
			w.byte(tagNil)
			return
		}
		w.byte(tagMap)
		w.u64(uint64(v.Len()))
		// Sort entries by the canonical encoding of their keys.
		type entry struct {
			enc string
			key reflect.Value
		}
		entries := make([]entry, 0, v.Len())
		for it := v.MapRange(); it.Next(); {
			sub := &hashWriter{h: sha256.New()}
			sub.writeCanon(it.Key())
			entries = append(entries, entry{string(sub.h.Sum(nil)), it.Key()})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].enc < entries[j].enc })
		for _, e := range entries {
			w.writeCanon(e.key)
			w.writeCanon(v.MapIndex(e.key))
		}
	case reflect.Struct:
		w.byte(tagStruct)
		t := v.Type()
		w.str(t.Name())
		w.u64(uint64(t.NumField()))
		for i := 0; i < t.NumField(); i++ {
			w.str(t.Field(i).Name)
			w.writeCanon(v.Field(i))
		}
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			w.byte(tagNil)
			return
		}
		w.writeCanon(v.Elem())
	default:
		panic(fmt.Sprintf("artifact: cannot canonically encode kind %s", v.Kind()))
	}
}

// Key identifies one cached artifact: the stage that produced it, the
// stage's payload schema version, and a SHA-256 over the canonical encoding
// of every input that determines the artifact's content.
type Key struct {
	Stage   string
	Version int
	Sum     [sha256.Size]byte
}

// NewKey fingerprints inputs for one stage. inputs is typically a flat
// struct naming every parameter the stage's output depends on (workload
// identity, config, library, upstream artifact keys). The stage name and
// schema version are mixed into the hash, so bumping a stage's version
// invalidates every prior entry of that stage.
func NewKey(stage string, version int, inputs interface{}) Key {
	w := &hashWriter{h: sha256.New()}
	w.str(stage)
	w.u64(uint64(version))
	w.writeCanon(reflect.ValueOf(inputs))
	k := Key{Stage: stage, Version: version}
	copy(k.Sum[:], w.h.Sum(nil))
	return k
}

// Hex returns the full lowercase hex fingerprint.
func (k Key) Hex() string { return fmt.Sprintf("%x", k.Sum) }

// String renders the key for logs: stage/version/short-hash.
func (k Key) String() string {
	return fmt.Sprintf("%s/v%d/%x", k.Stage, k.Version, k.Sum[:8])
}
