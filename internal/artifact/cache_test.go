package artifact

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
)

func testKey(t *testing.T, version int, payloadSeed string) Key {
	t.Helper()
	return NewKey("stage", version, struct {
		Workload string
		Width    int
	}{payloadSeed, 4})
}

func TestCacheRoundTrip(t *testing.T) {
	c := Open(t.TempDir())
	k := testKey(t, 1, "sha")
	payload := []byte("the artifact payload")

	if _, _, ok := c.Get(k); ok {
		t.Fatal("hit on an empty cache")
	}
	if err := c.Put(k, payload, 12345); err != nil {
		t.Fatal(err)
	}
	got, cost, ok := c.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload changed: %q", got)
	}
	if cost != 12345 {
		t.Fatalf("costNS %d, want 12345", cost)
	}
	n, size, err := c.Entries()
	if err != nil || n != 1 || size <= int64(len(payload)) {
		t.Fatalf("Entries() = %d, %d, %v", n, size, err)
	}
}

func TestCacheEmptyPayload(t *testing.T) {
	c := Open(t.TempDir())
	k := testKey(t, 1, "empty")
	if err := c.Put(k, nil, 1); err != nil {
		t.Fatal(err)
	}
	got, _, ok := c.Get(k)
	if !ok || len(got) != 0 {
		t.Fatalf("empty payload round-trip: %q, %v", got, ok)
	}
}

func TestCacheOverwriteConverges(t *testing.T) {
	c := Open(t.TempDir())
	k := testKey(t, 1, "sha")
	if err := c.Put(k, []byte("first"), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, []byte("first"), 99); err != nil {
		t.Fatal(err)
	}
	got, cost, ok := c.Get(k)
	if !ok || string(got) != "first" || cost != 99 {
		t.Fatalf("after overwrite: %q, %d, %v", got, cost, ok)
	}
	if n, _, _ := c.Entries(); n != 1 {
		t.Fatalf("overwrite left %d entries", n)
	}
}

// corrupt flips one byte at off (negative = from the end) in k's file.
func corrupt(t *testing.T, c *Cache, k Key, off int) {
	t.Helper()
	path := c.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += len(data)
	}
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCacheCorruptionIsMissAndEvicts(t *testing.T) {
	for _, tc := range []struct {
		name string
		off  int // byte to flip
	}{
		{"magic", 0},
		{"cost", 16},
		{"length", 24},
		{"checksum", 32},
		{"payload", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := metrics.NewRegistry()
			c := Open(t.TempDir())
			c.SetMetrics(reg)
			k := testKey(t, 1, "sha")
			if err := c.Put(k, []byte("payload bytes"), 7); err != nil {
				t.Fatal(err)
			}
			corrupt(t, c, k, tc.off)
			if _, _, ok := c.Get(k); ok {
				t.Fatal("corrupted entry returned as a hit")
			}
			if _, err := os.Stat(c.path(k)); !os.IsNotExist(err) {
				t.Fatalf("corrupted entry not evicted: %v", err)
			}
			if n := reg.Counter("artifact.evict").Value(); n != 1 {
				t.Fatalf("evict counter = %d, want 1", n)
			}
			// A well-formed rewrite heals the slot.
			if err := c.Put(k, []byte("payload bytes"), 7); err != nil {
				t.Fatal(err)
			}
			if _, _, ok := c.Get(k); !ok {
				t.Fatal("miss after healing rewrite")
			}
		})
	}
}

func TestCacheTruncatedEntryIsMiss(t *testing.T) {
	c := Open(t.TempDir())
	k := testKey(t, 1, "sha")
	if err := c.Put(k, []byte("0123456789"), 7); err != nil {
		t.Fatal(err)
	}
	path := c.path(k)
	data, _ := os.ReadFile(path)
	for _, n := range []int{0, headerSize - 1, len(data) - 1} {
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := c.Get(k); ok {
			t.Fatalf("truncated entry (%d bytes) returned as a hit", n)
		}
	}
}

func TestCacheSchemaVersionMismatchIsMiss(t *testing.T) {
	c := Open(t.TempDir())
	k1 := testKey(t, 1, "sha")
	k2 := testKey(t, 2, "sha")
	if err := c.Put(k1, []byte("v1 artifact"), 7); err != nil {
		t.Fatal(err)
	}
	// A bumped schema version must never read the old entry — different
	// key, different file.
	if _, _, ok := c.Get(k2); ok {
		t.Fatal("v2 key hit a v1 entry")
	}
	// And an on-disk entry whose header version disagrees with its file
	// name (e.g. hand-edited) is rejected by the self-check too.
	bad := encodeEntry([]byte("payload"), 99, 1)
	if err := os.WriteFile(c.path(k1), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(k1); ok {
		t.Fatal("entry with mismatched header version returned as a hit")
	}
}

func TestCacheMetricsCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	c := Open(t.TempDir())
	c.SetMetrics(reg)
	k := testKey(t, 1, "sha")
	c.Get(k)
	if err := c.Put(k, []byte("p"), 50); err != nil {
		t.Fatal(err)
	}
	c.Get(k)
	c.Get(k)
	for name, want := range map[string]int64{
		"artifact.miss":       1,
		"artifact.stage.miss": 1,
		"artifact.hit":        2,
		"artifact.stage.hit":  2,
		"artifact.put":        1,
		"artifact.put_bytes":  1,
		"artifact.saved_ns":   100,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestCachePutIsAtomic(t *testing.T) {
	dir := t.TempDir()
	c := Open(dir)
	k := testKey(t, 1, "sha")
	if err := c.Put(k, []byte("payload"), 1); err != nil {
		t.Fatal(err)
	}
	// No temp droppings survive a completed Put.
	matches, err := filepath.Glob(filepath.Join(filepath.Dir(c.path(k)), ".tmp-*"))
	if err != nil || len(matches) != 0 {
		t.Fatalf("leftover temp files: %v (%v)", matches, err)
	}
}

func TestCacheConcurrentSameKey(t *testing.T) {
	c := Open(t.TempDir())
	k := testKey(t, 1, "sha")
	payload := bytes.Repeat([]byte("deterministic"), 1000)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- c.Put(k, payload, 5) }()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	got, _, ok := c.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("concurrent writers corrupted the entry")
	}
}
