package artifact

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/metrics"
)

// testBreaker returns a breaker on a hand-cranked clock plus the counter
// map its transitions record into.
func testBreaker(threshold int, cooldown time.Duration) (*breaker, *time.Time, map[string]int) {
	now := time.Unix(1000, 0)
	counts := map[string]int{}
	b := newBreaker(threshold, cooldown, func(name string) { counts[name]++ })
	b.now = func() time.Time { return now }
	return b, &now, counts
}

func TestBreakerLifecycle(t *testing.T) {
	b, now, counts := testBreaker(3, 10*time.Second)

	// Closed: failures below the threshold change nothing.
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused operation %d", i)
		}
		b.failure()
	}
	if counts["artifact.breaker_open"] != 0 {
		t.Fatal("breaker tripped below its threshold")
	}
	// A success resets the consecutive count: two more failures still
	// don't reach 3-in-a-row.
	b.allow()
	b.success()
	for i := 0; i < 2; i++ {
		b.allow()
		b.failure()
	}
	if counts["artifact.breaker_open"] != 0 {
		t.Fatal("breaker counted non-consecutive failures")
	}

	// The third consecutive failure trips it.
	b.allow()
	b.failure()
	if counts["artifact.breaker_open"] != 1 {
		t.Fatalf("breaker_open = %d, want 1", counts["artifact.breaker_open"])
	}
	if b.allow() {
		t.Fatal("open breaker allowed an operation inside the cooldown")
	}
	if counts["artifact.breaker_short_circuit"] != 1 {
		t.Fatalf("short_circuit = %d, want 1", counts["artifact.breaker_short_circuit"])
	}

	// Cooldown lapses: exactly one probe goes through; a failed probe
	// re-opens for a fresh cooldown.
	*now = now.Add(11 * time.Second)
	if !b.allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	if counts["artifact.breaker_probe"] != 1 {
		t.Fatalf("probe = %d, want 1", counts["artifact.breaker_probe"])
	}
	b.failure()
	if counts["artifact.breaker_open"] != 2 {
		t.Fatalf("failed probe must re-open (breaker_open = %d)", counts["artifact.breaker_open"])
	}
	if b.allow() {
		t.Fatal("re-opened breaker allowed an operation")
	}

	// Second probe succeeds: breaker closes and stays closed.
	*now = now.Add(11 * time.Second)
	if !b.allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.success()
	if counts["artifact.breaker_close"] != 1 {
		t.Fatalf("breaker_close = %d, want 1", counts["artifact.breaker_close"])
	}
	for i := 0; i < 5; i++ {
		if !b.allow() {
			t.Fatal("closed breaker refused after recovery")
		}
		b.success()
	}
}

// TestBreakerProbeDedupe: N goroutines arriving at the half-open instant
// get exactly one probe between them — the rest short-circuit.
func TestBreakerProbeDedupe(t *testing.T) {
	b, now, counts := testBreaker(1, time.Second)
	b.allow()
	b.failure() // threshold 1: open
	*now = now.Add(2 * time.Second)

	var allowed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.allow() {
				allowed.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := allowed.Load(); n != 1 {
		t.Fatalf("%d concurrent probes allowed, want exactly 1", n)
	}
	if counts["artifact.breaker_probe"] != 1 {
		t.Fatalf("probe count %d, want 1", counts["artifact.breaker_probe"])
	}
}

// TestRemoteBreakerEndToEnd: a dead store trips the breaker after the
// threshold, operations short-circuit with ErrBreakerOpen (the caller
// degrades to recompute), and a recovered store closes it again via the
// half-open probe.
func TestRemoteBreakerEndToEnd(t *testing.T) {
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "store down", http.StatusInternalServerError)
			return
		}
		if r.Method == http.MethodPut {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		http.NotFound(w, r)
	}))
	defer ts.Close()

	remote := NewRemote(ts.URL, ts.Client())
	remote.SetRetry(backoff.Policy{Attempts: 1, Jitter: -1})
	remote.SetBreaker(2, 50*time.Millisecond)
	reg := metrics.NewRegistry()
	remote.SetMetrics(reg)
	k := NewKey("measure", 1, struct{ W string }{"sha"})

	// Healthy store answering 404: breaker-neutral, stays closed.
	if _, err := remote.Fetch(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Fetch = %v, want ErrNotFound", err)
	}

	down.Store(true)
	for i := 0; i < 2; i++ {
		if _, err := remote.Fetch(k); err == nil || errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("fetch %d: err = %v, want a plain 5xx failure", i, err)
		}
	}
	if n := reg.Counter("artifact.breaker_open").Value(); n != 1 {
		t.Fatalf("breaker_open = %d, want 1", n)
	}
	if _, err := remote.Fetch(k); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker Fetch = %v, want ErrBreakerOpen", err)
	}
	if err := remote.Push(k, []byte("x")); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker Push = %v, want ErrBreakerOpen", err)
	}
	if n := reg.Counter("artifact.breaker_short_circuit").Value(); n < 2 {
		t.Fatalf("short_circuit = %d, want ≥ 2", n)
	}

	// With the breaker open, a Cache.Put skips the push instead of failing
	// the sweep.
	c := Open(t.TempDir())
	c.SetRemote(remote)
	c.SetMetrics(reg)
	if err := c.Put(k, []byte("payload"), 1); err != nil {
		t.Fatalf("Put under an open breaker must degrade, got %v", err)
	}
	if n := reg.Counter("artifact.remote.push_skipped").Value(); n != 1 {
		t.Fatalf("push_skipped = %d, want 1", n)
	}

	// Store recovers; after the cooldown one probe closes the breaker.
	down.Store(false)
	time.Sleep(60 * time.Millisecond)
	if _, err := remote.Fetch(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("probe Fetch = %v, want ErrNotFound (reachable again)", err)
	}
	if n := reg.Counter("artifact.breaker_close").Value(); n != 1 {
		t.Fatalf("breaker_close = %d, want 1", n)
	}
	if err := c.Put(k, []byte("payload"), 1); err != nil {
		t.Fatalf("post-recovery Put: %v", err)
	}
	if n := reg.Counter("artifact.remote.push").Value(); n != 1 {
		t.Fatalf("push = %d, want 1 after recovery", n)
	}
}
