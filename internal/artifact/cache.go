// Package artifact implements the content-addressed, on-disk artifact
// cache behind the SimPoint pipeline. Every pipeline stage (BBV profiling,
// SimPoint selection, checkpoint creation, detailed measurement) keys its
// output by a SHA-256 over a canonical encoding of the stage's inputs —
// workload identity and generator parameters, BOOM configuration, interval
// size, warm-up length, technology library, and a per-stage schema version
// — so bit-identical inputs hit a prior run's artifact instead of
// recomputing it. The paper's whole argument is avoiding redundant
// simulation; this cache extends that economy across process boundaries.
//
// Entries are written atomically (temp file + rename) and self-verify on
// read: a corrupted, truncated, or schema-version-mismatched entry is
// evicted and reported as a miss, never returned. Hit/miss/evict/write
// counters register in an optional internal/metrics registry.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
	"repro/internal/metrics"
)

// entryMagic identifies an artifact file ("RVARTFC1").
const entryMagic = 0x52564152_54464331

// headerSize is the fixed prefix before the payload: magic, version,
// costNS, payload length, then a SHA-256 over (version, costNS, length,
// payload) so corruption anywhere in the entry — metadata included — is
// detected.
const headerSize = 8 + 8 + 8 + 8 + sha256.Size

// maxPayload bounds a single artifact (defense against corrupt headers).
const maxPayload = 1 << 32

// Cache is a content-addressed artifact store rooted at one directory.
// The zero value is not usable; call Open. A Cache is safe for concurrent
// use: entries are immutable once renamed into place, and concurrent
// writers of the same key converge on identical content.
type Cache struct {
	dir string
	reg *metrics.Registry     // optional; nil disables instrumentation
	inj *faultinject.Injector // optional; nil disables fault sites
}

// Open returns a cache rooted at dir. The directory is created lazily on
// first write, so Open itself never touches the filesystem and never
// fails; a missing or empty directory simply misses every lookup.
func Open(dir string) *Cache { return &Cache{dir: dir} }

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// SetMetrics attaches a metrics registry. Counters: "artifact.hit",
// "artifact.miss", "artifact.evict", "artifact.put", "artifact.put_bytes",
// "artifact.saved_ns" (compute time short-circuited by hits), plus
// per-stage "artifact.<stage>.hit" / "artifact.<stage>.miss". A nil
// registry (the default) disables instrumentation.
func (c *Cache) SetMetrics(reg *metrics.Registry) { c.reg = reg }

// SetFaultInjector attaches a deterministic fault-injection plan (chaos
// testing). Two sites are exposed: "artifact.read/<stage>" corrupts entry
// bytes after they leave the disk — exercising the checksum→evict→miss
// path — and "artifact.write/<stage>" fails a Put with an injected error.
// A nil injector (the default) disables both.
func (c *Cache) SetFaultInjector(inj *faultinject.Injector) { c.inj = inj }

func (c *Cache) count(name string) {
	if c.reg != nil {
		c.reg.Counter(name).Inc()
	}
}

// path returns the entry file for a key: <dir>/<stage>/<hh>/<hex>.v<N>.
// The schema version is part of the file name, so entries written under an
// older schema are never even opened after a version bump.
func (c *Cache) path(k Key) string {
	hex := k.Hex()
	return filepath.Join(c.dir, k.Stage, hex[:2], fmt.Sprintf("%s.v%d", hex[2:], k.Version))
}

// Get looks up an artifact. On a hit it returns the payload and the
// compute cost (in nanoseconds) recorded when the artifact was written —
// the wall-clock the hit just saved, which callers reuse to keep cached
// and uncached runs report-identical. Corrupted or version-mismatched
// entries are evicted and reported as a miss.
func (c *Cache) Get(k Key) (payload []byte, costNS int64, ok bool) {
	miss := func() ([]byte, int64, bool) {
		c.count("artifact.miss")
		c.count("artifact." + k.Stage + ".miss")
		return nil, 0, false
	}
	data, err := os.ReadFile(c.path(k))
	if err != nil {
		return miss()
	}
	data = c.inj.Corrupt(data, "artifact.read", k.Stage)
	payload, costNS, err = decodeEntry(data, k.Version)
	if err != nil {
		// Corrupt or mismatched: evict so the slot heals on the next write.
		os.Remove(c.path(k))
		c.count("artifact.evict")
		return miss()
	}
	c.count("artifact.hit")
	c.count("artifact." + k.Stage + ".hit")
	if c.reg != nil {
		c.reg.Counter("artifact.saved_ns").Add(costNS)
	}
	return payload, costNS, true
}

// Put stores an artifact atomically: the entry is written to a temp file
// in the cache root and renamed into place, so readers only ever observe
// complete entries. costNS records how long the payload took to compute.
func (c *Cache) Put(k Key, payload []byte, costNS int64) error {
	if err := c.inj.Hit("artifact.write", k.Stage); err != nil {
		return fmt.Errorf("artifact: writing %s: %w", k, err)
	}
	path := c.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write(encodeEntry(payload, k.Version, costNS))
	cerr := tmp.Close()
	if werr != nil {
		return fmt.Errorf("artifact: writing %s: %w", k, werr)
	}
	if cerr != nil {
		return fmt.Errorf("artifact: writing %s: %w", k, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	c.count("artifact.put")
	if c.reg != nil {
		c.reg.Counter("artifact.put_bytes").Add(int64(len(payload)))
	}
	return nil
}

// Entries walks the cache and reports the number of artifact files and
// their total byte size (diagnostics and tests).
func (c *Cache) Entries() (n int, bytes int64, err error) {
	err = filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		n++
		bytes += info.Size()
		return nil
	})
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	return n, bytes, err
}

func encodeEntry(payload []byte, version int, costNS int64) []byte {
	out := make([]byte, headerSize+len(payload))
	le := binary.LittleEndian
	le.PutUint64(out[0:], entryMagic)
	le.PutUint64(out[8:], uint64(version))
	le.PutUint64(out[16:], uint64(costNS))
	le.PutUint64(out[24:], uint64(len(payload)))
	h := sha256.New()
	h.Write(out[8:32]) // version, costNS, payload length
	h.Write(payload)
	copy(out[32:], h.Sum(nil))
	copy(out[headerSize:], payload)
	return out
}

func decodeEntry(data []byte, version int) (payload []byte, costNS int64, err error) {
	if len(data) < headerSize {
		return nil, 0, fmt.Errorf("artifact: entry truncated (%d bytes)", len(data))
	}
	le := binary.LittleEndian
	if m := le.Uint64(data[0:]); m != entryMagic {
		return nil, 0, fmt.Errorf("artifact: bad magic %#x", m)
	}
	if v := le.Uint64(data[8:]); v != uint64(version) {
		return nil, 0, fmt.Errorf("artifact: schema version %d, want %d", v, version)
	}
	costNS = int64(le.Uint64(data[16:]))
	n := le.Uint64(data[24:])
	if n > maxPayload || int(n) != len(data)-headerSize {
		return nil, 0, fmt.Errorf("artifact: payload length %d vs %d bytes on disk", n, len(data)-headerSize)
	}
	payload = data[headerSize:]
	h := sha256.New()
	h.Write(data[8:32])
	h.Write(payload)
	if !bytes.Equal(h.Sum(nil), data[32:32+sha256.Size]) {
		return nil, 0, fmt.Errorf("artifact: entry checksum mismatch")
	}
	return payload, costNS, nil
}
