// Package artifact implements the content-addressed, on-disk artifact
// cache behind the SimPoint pipeline. Every pipeline stage (BBV profiling,
// SimPoint selection, checkpoint creation, detailed measurement) keys its
// output by a SHA-256 over a canonical encoding of the stage's inputs —
// workload identity and generator parameters, BOOM configuration, interval
// size, warm-up length, technology library, and a per-stage schema version
// — so bit-identical inputs hit a prior run's artifact instead of
// recomputing it. The paper's whole argument is avoiding redundant
// simulation; this cache extends that economy across process boundaries.
//
// Entries are written atomically (temp file + rename) and self-verify on
// read: a corrupted, truncated, or schema-version-mismatched entry is
// evicted and reported as a miss, never returned. Hit/miss/evict/write
// counters register in an optional internal/metrics registry.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"

	"repro/internal/faultinject"
	"repro/internal/metrics"
)

// entryMagic identifies an artifact file ("RVARTFC1").
const entryMagic = 0x52564152_54464331

// headerSize is the fixed prefix before the payload: magic, version,
// costNS, payload length, then a SHA-256 over (version, costNS, length,
// payload) so corruption anywhere in the entry — metadata included — is
// detected.
const headerSize = 8 + 8 + 8 + 8 + sha256.Size

// maxPayload bounds a single artifact (defense against corrupt headers).
const maxPayload = 1 << 32

// Cache is a content-addressed artifact store rooted at one directory.
// The zero value is not usable; call Open. A Cache is safe for concurrent
// use: entries are immutable once renamed into place, and concurrent
// writers of the same key converge on identical content.
type Cache struct {
	dir    string
	reg    *metrics.Registry     // optional; nil disables instrumentation
	inj    *faultinject.Injector // optional; nil disables fault sites
	remote *Remote               // optional read-through/write-through tier
	log    func(format string, args ...any)

	// Fail-open state: a cache is an optimization, so a disk that stops
	// accepting writes (ENOSPC, quota, read-only remount) must degrade the
	// sweep to recomputation, not fail it.
	wmu       sync.Mutex
	writeErrs int  // consecutive real putRaw failures
	failOpen  bool // local writes disabled for the rest of the run
}

// Open returns a cache rooted at dir. The directory is created lazily on
// first write, so Open itself never touches the filesystem and never
// fails; a missing or empty directory simply misses every lookup.
func Open(dir string) *Cache { return &Cache{dir: dir} }

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// SetMetrics attaches a metrics registry. Counters: "artifact.hit",
// "artifact.miss", "artifact.evict", "artifact.put", "artifact.put_bytes",
// "artifact.saved_ns" (compute time short-circuited by hits), plus
// per-stage "artifact.<stage>.hit" / "artifact.<stage>.miss", and the
// degradation counters "artifact.write_errors", "artifact.fail_open",
// "artifact.put_skipped". A nil registry (the default) disables
// instrumentation. Propagates to an attached Remote.
func (c *Cache) SetMetrics(reg *metrics.Registry) {
	c.reg = reg
	if c.remote != nil {
		c.remote.SetMetrics(reg)
	}
}

// SetLog attaches a printf-style logger for the cache's one operational
// warning (the fail-open transition). Nil (the default) keeps it silent.
func (c *Cache) SetLog(fn func(format string, args ...any)) { c.log = fn }

// SetFaultInjector attaches a deterministic fault-injection plan (chaos
// testing). Two sites are exposed: "artifact.read/<stage>" corrupts entry
// bytes after they leave the disk — exercising the checksum→evict→miss
// path — and "artifact.write/<stage>" fails a Put with an injected error.
// A nil injector (the default) disables both.
func (c *Cache) SetFaultInjector(inj *faultinject.Injector) { c.inj = inj }

// SetRemote attaches a remote artifact store as a second tier: Get falls
// through a local miss to a checksum-verified remote fetch (filling the
// local tier on success), and Put pushes every entry to the store after
// the local write, so stages computed on one node feed every other node
// sharing the store. A nil remote (the default) keeps the cache purely
// local. See Remote for the fetch-verification contract.
func (c *Cache) SetRemote(r *Remote) {
	c.remote = r
	if r != nil && c.reg != nil {
		r.SetMetrics(c.reg)
	}
}

func (c *Cache) count(name string) {
	if c.reg != nil {
		c.reg.Counter(name).Inc()
	}
}

// path returns the entry file for a key: <dir>/<stage>/<hh>/<hex>.v<N>.
// The schema version is part of the file name, so entries written under an
// older schema are never even opened after a version bump.
func (c *Cache) path(k Key) string {
	hex := k.Hex()
	return filepath.Join(c.dir, k.Stage, hex[:2], fmt.Sprintf("%s.v%d", hex[2:], k.Version))
}

// Get looks up an artifact. On a hit it returns the payload and the
// compute cost (in nanoseconds) recorded when the artifact was written —
// the wall-clock the hit just saved, which callers reuse to keep cached
// and uncached runs report-identical. Corrupted or version-mismatched
// entries are evicted and reported as a miss.
//
// With a remote store attached (SetRemote), a local miss — including a
// local eviction — falls through to a remote fetch. A fetched entry is
// checksum-verified before use: a corrupt entry is evicted from the store
// (so the slot heals on the next Push) and reported as a miss, never
// returned. Verified entries fill the local tier and count as hits.
func (c *Cache) Get(k Key) (payload []byte, costNS int64, ok bool) {
	miss := func() ([]byte, int64, bool) {
		c.count("artifact.miss")
		c.count("artifact." + k.Stage + ".miss")
		return nil, 0, false
	}
	hit := func(payload []byte, costNS int64) ([]byte, int64, bool) {
		c.count("artifact.hit")
		c.count("artifact." + k.Stage + ".hit")
		if c.reg != nil {
			c.reg.Counter("artifact.saved_ns").Add(costNS)
		}
		return payload, costNS, true
	}
	data, err := os.ReadFile(c.path(k))
	if err == nil {
		data = c.inj.Corrupt(data, "artifact.read", k.Stage)
		payload, costNS, err = decodeEntry(data, k.Version)
		if err == nil {
			return hit(payload, costNS)
		}
		// Corrupt or mismatched: evict so the slot heals on the next write
		// (or on the remote fetch below).
		os.Remove(c.path(k))
		c.count("artifact.evict")
	}
	if c.remote == nil {
		return miss()
	}
	entry, ok := c.fetchRemote(k)
	if !ok {
		return miss()
	}
	payload, costNS, err = decodeEntry(entry, k.Version)
	if err != nil {
		// unreachable: fetchRemote only returns verified entries
		return miss()
	}
	return hit(payload, costNS)
}

// fetchRemote pulls one entry from the remote store and verifies it
// end to end before anything downstream can touch it. The contract is
// absolute: corrupt bytes are never served. A checksum mismatch — whether
// from the wire, the store's disk, or the injected "artifact.fetch" chaos
// site — evicts the store slot (best effort) so the next Push heals it,
// and the caller recomputes. Verified entries are written through to the
// local tier so subsequent Gets stop paying the round trip.
func (c *Cache) fetchRemote(k Key) (entry []byte, ok bool) {
	if err := c.inj.Hit("artifact.fetch", k.Stage); err != nil {
		c.count("artifact.remote.error")
		return nil, false
	}
	entry, err := c.remote.Fetch(k)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			c.count("artifact.remote.miss")
		} else {
			c.count("artifact.remote.error")
		}
		return nil, false
	}
	entry = c.inj.Corrupt(entry, "artifact.fetch", k.Stage)
	if _, _, err := decodeEntry(entry, k.Version); err != nil {
		_ = c.remote.Evict(k)
		c.count("artifact.remote.evict")
		return nil, false
	}
	if c.writeAllowed() {
		if err := c.putRaw(k, entry); err == nil {
			c.noteWriteOK()
			c.count("artifact.remote.fill")
		} else {
			c.noteWriteError(k, err)
		}
	}
	c.count("artifact.remote.fetch")
	return entry, true
}

// writeAllowed reports whether local writes are still enabled.
func (c *Cache) writeAllowed() bool {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return !c.failOpen
}

func (c *Cache) noteWriteOK() {
	c.wmu.Lock()
	c.writeErrs = 0
	c.wmu.Unlock()
}

// noteWriteError records a real (non-injected) putRaw failure and decides
// whether to fail open. Out-of-space conditions disable writes
// immediately — every subsequent write would fail the same way — while
// anything else must persist for writeErrTrip consecutive Puts first, so
// one transient hiccup doesn't permanently disable the cache. The
// transition logs exactly one warning.
func (c *Cache) noteWriteError(k Key, err error) {
	c.count("artifact.write_errors")
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.writeErrs++
	fatal := errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT) || errors.Is(err, syscall.EROFS)
	if c.failOpen || (!fatal && c.writeErrs < writeErrTrip) {
		return
	}
	c.failOpen = true
	c.count("artifact.fail_open")
	if c.log != nil {
		c.log("artifact cache failing open: writing %s under %s: %v (caching disabled for this run; stages recompute instead)", k, c.dir, err)
	}
}

// writeErrTrip is how many consecutive non-fatal write errors disable the
// local cache tier.
const writeErrTrip = 3

// Put stores an artifact atomically: the entry is written to a temp file
// in the cache root and renamed into place, so readers only ever observe
// complete entries. costNS records how long the payload took to compute.
//
// Local-tier write failures never fail the Put — a cache is an
// optimization, so a full or read-only disk degrades the run to
// recomputation ("artifact.write_errors"). ENOSPC/EDQUOT/EROFS, or
// writeErrTrip consecutive failures of any kind, fail the cache open:
// one warning, an "artifact.fail_open" counter, and every later Put
// skips the local write ("artifact.put_skipped"). Injected
// "artifact.write" faults still fail loudly — chaos tests exercise the
// caller's retry path through them.
//
// With a remote store attached, the entry is pushed to the store after
// the local write, and a push failure fails the Put: a distributed worker
// must not report a stage done while its artifact is invisible to the
// rest of the cluster. The exception is an open circuit breaker — the
// store is already known-dead, the cluster is already degrading to local
// recompute, so the push is skipped ("artifact.remote.push_skipped")
// rather than failed. Concurrent Puts of the same key are idempotent —
// the content-addressed key makes every writer's entry byte-identical
// (modulo the advisory costNS), so last-rename/last-push wins harmlessly.
func (c *Cache) Put(k Key, payload []byte, costNS int64) error {
	if err := c.inj.Hit("artifact.write", k.Stage); err != nil {
		return fmt.Errorf("artifact: writing %s: %w", k, err)
	}
	entry := encodeEntry(payload, k.Version, costNS)
	if !c.writeAllowed() {
		c.count("artifact.put_skipped")
	} else if err := c.putRaw(k, entry); err != nil {
		c.noteWriteError(k, err)
	} else {
		c.noteWriteOK()
		c.count("artifact.put")
		if c.reg != nil {
			c.reg.Counter("artifact.put_bytes").Add(int64(len(payload)))
		}
	}
	if c.remote != nil {
		if err := c.remote.Push(k, entry); errors.Is(err, ErrBreakerOpen) {
			c.count("artifact.remote.push_skipped")
		} else if err != nil {
			c.count("artifact.remote.push_error")
			return fmt.Errorf("artifact: pushing %s to remote store: %w", k, err)
		} else {
			c.count("artifact.remote.push")
		}
	}
	return nil
}

// putRaw renames an already-encoded entry into place atomically (the
// local-write half of Put, also used for remote read-through fills and by
// the store server's PUT handler).
func (c *Cache) putRaw(k Key, entry []byte) error {
	path := c.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write(entry)
	cerr := tmp.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	return os.Rename(tmp.Name(), path)
}

// Entries walks the cache and reports the number of artifact files and
// their total byte size (diagnostics and tests).
func (c *Cache) Entries() (n int, bytes int64, err error) {
	err = filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		n++
		bytes += info.Size()
		return nil
	})
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	return n, bytes, err
}

func encodeEntry(payload []byte, version int, costNS int64) []byte {
	out := make([]byte, headerSize+len(payload))
	le := binary.LittleEndian
	le.PutUint64(out[0:], entryMagic)
	le.PutUint64(out[8:], uint64(version))
	le.PutUint64(out[16:], uint64(costNS))
	le.PutUint64(out[24:], uint64(len(payload)))
	h := sha256.New()
	h.Write(out[8:32]) // version, costNS, payload length
	h.Write(payload)
	copy(out[32:], h.Sum(nil))
	copy(out[headerSize:], payload)
	return out
}

func decodeEntry(data []byte, version int) (payload []byte, costNS int64, err error) {
	if len(data) < headerSize {
		return nil, 0, fmt.Errorf("artifact: entry truncated (%d bytes)", len(data))
	}
	le := binary.LittleEndian
	if m := le.Uint64(data[0:]); m != entryMagic {
		return nil, 0, fmt.Errorf("artifact: bad magic %#x", m)
	}
	if v := le.Uint64(data[8:]); v != uint64(version) {
		return nil, 0, fmt.Errorf("artifact: schema version %d, want %d", v, version)
	}
	costNS = int64(le.Uint64(data[16:]))
	n := le.Uint64(data[24:])
	if n > maxPayload || int(n) != len(data)-headerSize {
		return nil, 0, fmt.Errorf("artifact: payload length %d vs %d bytes on disk", n, len(data)-headerSize)
	}
	payload = data[headerSize:]
	h := sha256.New()
	h.Write(data[8:32])
	h.Write(payload)
	if !bytes.Equal(h.Sum(nil), data[32:32+sha256.Size]) {
		return nil, 0, fmt.Errorf("artifact: entry checksum mismatch")
	}
	return payload, costNS, nil
}
