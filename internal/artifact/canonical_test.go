package artifact

import (
	"math"
	"testing"
)

func TestKeyDeterministicAcrossMapOrder(t *testing.T) {
	// Maps hash by sorted canonical key, so insertion order and Go's
	// randomized iteration order must never leak into the fingerprint.
	build := func(reverse bool) map[string]int {
		m := map[string]int{}
		n := 64
		for i := 0; i < n; i++ {
			idx := i
			if reverse {
				idx = n - 1 - i
			}
			m[string(rune('a'+idx%26))+string(rune('0'+idx%10))] = idx
		}
		return m
	}
	type in struct{ M map[string]int }
	k1 := NewKey("s", 1, in{build(false)})
	for i := 0; i < 20; i++ {
		if k2 := NewKey("s", 1, in{build(true)}); k1 != k2 {
			t.Fatalf("map iteration order leaked into key: %s vs %s", k1, k2)
		}
	}
}

func TestKeySeparatesStageVersionAndFields(t *testing.T) {
	type cfg struct {
		A string
		B string
		N int
	}
	base := NewKey("bbv", 1, cfg{"ab", "", 3})
	distinct := []Key{
		NewKey("select", 1, cfg{"ab", "", 3}),            // stage
		NewKey("bbv", 2, cfg{"ab", "", 3}),               // schema version
		NewKey("bbv", 1, cfg{"a", "b", 3}),               // field boundary: "ab"+"" vs "a"+"b"
		NewKey("bbv", 1, cfg{"ab", "", 4}),               // value
		NewKey("bbv", 1, struct{ A, B, N int }{0, 0, 3}), // field types
	}
	seen := map[Key]string{base: "base"}
	for i, k := range distinct {
		if prev, dup := seen[k]; dup {
			t.Fatalf("variant %d collides with %s", i, prev)
		}
		seen[k] = "variant"
	}
}

func TestKeyNilVersusEmpty(t *testing.T) {
	type in struct {
		S []byte
		M map[string]int
	}
	a := NewKey("s", 1, in{nil, nil})
	b := NewKey("s", 1, in{[]byte{}, map[string]int{}})
	if a == b {
		t.Fatal("nil and empty aggregates collide")
	}
}

func TestKeyIntUintFloatTagged(t *testing.T) {
	// 1 as int, uint and float64 must all fingerprint differently: the
	// encoding tags the kind, not just the 8 payload bytes.
	ki := NewKey("s", 1, struct{ V int }{1})
	ku := NewKey("s", 1, struct{ V uint }{1})
	kf := NewKey("s", 1, struct{ V float64 }{math.Float64frombits(1)})
	if ki == ku || ki == kf || ku == kf {
		t.Fatalf("kind tag missing: int=%s uint=%s float=%s", ki, ku, kf)
	}
}

func TestKeyPointerFollowsValue(t *testing.T) {
	type cfg struct{ N int }
	v := cfg{7}
	kv := NewKey("s", 1, struct{ C cfg }{v})
	kp := NewKey("s", 1, struct{ C *cfg }{&v})
	if kv != kp {
		t.Fatalf("pointer indirection changed the key: %s vs %s", kv, kp)
	}
	if kn := NewKey("s", 1, struct{ C *cfg }{nil}); kn == kp {
		t.Fatal("nil pointer collides with populated pointer")
	}
}

func TestKeyRejectsUnhashableKinds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("func field did not panic")
		}
	}()
	NewKey("s", 1, struct{ F func() }{func() {}})
}

// FuzzArtifactKey drives injectivity: a base config and every
// single-field mutation of it must all map to pairwise-distinct keys,
// while re-encoding the identical value reproduces the same key.
func FuzzArtifactKey(f *testing.F) {
	f.Add("sha", int64(4), uint64(32768), 1.0, "tage", true, []byte{1, 2, 3})
	f.Add("", int64(-1), uint64(0), 0.0, "", false, []byte(nil))
	f.Add("dijkstra", int64(1<<40), uint64(1)<<63, math.Inf(1), "gshare", true, []byte("seg"))
	f.Add("x", int64(0), uint64(0), math.NaN(), "x", false, []byte{})
	f.Fuzz(func(t *testing.T, name string, width int64, size uint64, freq float64, variant string, enabled bool, blob []byte) {
		type cfg struct {
			Name    string
			Width   int64
			Size    uint64
			Freq    float64
			Variant string
			Enabled bool
			Blob    []byte
		}
		base := cfg{name, width, size, freq, variant, enabled, blob}

		// Same value, same key — even for NaN (bit-level canonical).
		if NewKey("stage", 1, base) != NewKey("stage", 1, base) {
			t.Fatal("identical input produced different keys")
		}

		// Each mutant flips the bit-representation of exactly one field.
		mutate := func(fn func(*cfg)) cfg {
			m := base
			m.Blob = append([]byte(nil), base.Blob...) // keep mutations independent
			fn(&m)
			return m
		}
		mutants := []cfg{
			mutate(func(c *cfg) { c.Name += "x" }),
			mutate(func(c *cfg) { c.Width++ }),
			mutate(func(c *cfg) { c.Size ^= 1 }),
			mutate(func(c *cfg) { c.Freq = math.Float64frombits(math.Float64bits(c.Freq) ^ 1) }),
			mutate(func(c *cfg) { c.Variant += "x" }),
			mutate(func(c *cfg) { c.Enabled = !c.Enabled }),
			mutate(func(c *cfg) { c.Blob = append(c.Blob, 0) }),
		}
		seen := map[Key]int{NewKey("stage", 1, base): -1}
		for i, m := range mutants {
			k := NewKey("stage", 1, m)
			if prev, dup := seen[k]; dup {
				t.Fatalf("mutant %d collides with %d (base=-1): %+v", i, prev, m)
			}
			seen[k] = i
		}
	})
}
