package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/metrics"
)

// brokenCache roots a cache under a path that is a regular file, so every
// putRaw fails with a real filesystem error (ENOTDIR) — the persistent-
// write-failure shape without needing to fill a disk.
func brokenCache(t *testing.T) *Cache {
	t.Helper()
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return Open(filepath.Join(file, "cache"))
}

// TestCacheFailsOpenOnPersistentWriteErrors: real write errors never fail
// a Put, and after writeErrTrip consecutive failures the cache disables
// itself with exactly one warning — the sweep keeps computing.
func TestCacheFailsOpenOnPersistentWriteErrors(t *testing.T) {
	c := brokenCache(t)
	reg := metrics.NewRegistry()
	c.SetMetrics(reg)
	var mu sync.Mutex
	var warnings []string
	c.SetLog(func(format string, args ...any) {
		mu.Lock()
		warnings = append(warnings, fmt.Sprintf(format, args...))
		mu.Unlock()
	})

	for i := 0; i < writeErrTrip+2; i++ {
		k := NewKey("measure", 1, struct{ I int }{i})
		if err := c.Put(k, []byte("payload"), 1); err != nil {
			t.Fatalf("Put %d: a cache write error must not fail the Put: %v", i, err)
		}
	}
	if n := reg.Counter("artifact.write_errors").Value(); n != writeErrTrip {
		t.Errorf("write_errors = %d, want %d (fail-open stops the attempts)", n, writeErrTrip)
	}
	if n := reg.Counter("artifact.fail_open").Value(); n != 1 {
		t.Errorf("fail_open = %d, want 1", n)
	}
	if n := reg.Counter("artifact.put_skipped").Value(); n != 2 {
		t.Errorf("put_skipped = %d, want 2", n)
	}
	if len(warnings) != 1 {
		t.Fatalf("warnings = %d, want exactly 1: %q", len(warnings), warnings)
	}
	if !strings.Contains(warnings[0], "failing open") {
		t.Errorf("warning %q does not announce the fail-open", warnings[0])
	}

	// Reads still work while failed open (the cache degrades, it doesn't
	// poison): a miss is a miss, not an error.
	if _, _, ok := c.Get(NewKey("measure", 1, struct{ I int }{0})); ok {
		t.Error("Get hit on a cache that never persisted anything")
	}
}

// TestCacheWriteErrorsResetOnSuccess: errors must be consecutive to trip
// — a healthy write in between resets the count.
func TestCacheWriteErrorsResetOnSuccess(t *testing.T) {
	c := Open(t.TempDir())
	reg := metrics.NewRegistry()
	c.SetMetrics(reg)
	k := NewKey("measure", 1, struct{ W string }{"sha"})

	for round := 0; round < writeErrTrip+1; round++ {
		// One failed write (temp dir creation blocked by a file squatting
		// on the stage directory)...
		stageDir := filepath.Join(c.Dir(), "bbv")
		if err := os.WriteFile(stageDir, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		kb := NewKey("bbv", 1, struct{ I int }{round})
		if err := c.Put(kb, []byte("p"), 1); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		os.Remove(stageDir)
		// ...then a healthy one.
		if err := c.Put(k, []byte("p"), 1); err != nil {
			t.Fatalf("round %d healthy Put: %v", round, err)
		}
	}
	if n := reg.Counter("artifact.fail_open").Value(); n != 0 {
		t.Errorf("fail_open = %d, want 0 (interleaved successes reset the streak)", n)
	}
	if n := reg.Counter("artifact.write_errors").Value(); n != writeErrTrip+1 {
		t.Errorf("write_errors = %d, want %d", n, writeErrTrip+1)
	}
}

// TestCacheInjectedWriteFaultStillFailsLoudly: the chaos site keeps its
// contract — injected artifact.write faults propagate to the caller (the
// runner's retry path depends on seeing them), only real I/O errors are
// absorbed by fail-open.
func TestCacheInjectedWriteFaultStillFailsLoudly(t *testing.T) {
	inj, err := faultinject.Parse("1:artifact.write=error")
	if err != nil {
		t.Fatal(err)
	}
	c := Open(t.TempDir())
	c.SetFaultInjector(inj)
	k := NewKey("measure", 1, struct{ W string }{"sha"})
	if err := c.Put(k, []byte("p"), 1); err == nil {
		t.Fatal("injected write fault must propagate")
	}
	if err := c.Put(k, []byte("p"), 1); err != nil {
		t.Fatalf("post-fault Put: %v", err)
	}
}
