// Remote artifact store: the HTTP tier that lets the distributed sweep
// fabric share one content-addressed cache across nodes. The coordinator
// mounts NewServer over its local Cache; workers attach a Remote client
// to theirs (Cache.SetRemote), turning every local miss into a verified
// fetch and every Put into a write-through Push. Because entries are
// content-addressed and self-checksummed, the protocol needs no
// conditional requests: a GET either returns a complete verified entry or
// 404, and concurrent PUTs of one key converge on identical bytes.
//
// Wire layout (entry bytes exactly as Cache stores them on disk):
//
//	GET    /v1/artifacts/{stage}/v{version}/{hex}  200 entry | 404
//	PUT    /v1/artifacts/{stage}/v{version}/{hex}  204 | 400 corrupt entry
//	DELETE /v1/artifacts/{stage}/v{version}/{hex}  204 (idempotent)
package artifact

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// ErrNotFound reports a key absent from the remote store.
var ErrNotFound = fmt.Errorf("artifact: not found in remote store")

// Remote is the client half of the remote artifact store. A nil *Remote
// is inert. Safe for concurrent use.
type Remote struct {
	base string
	hc   *http.Client
}

// NewRemote returns a client for the store at base (e.g.
// "http://coordinator:8080"). hc nil uses a client with a 60s timeout.
func NewRemote(base string, hc *http.Client) *Remote {
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Remote{base: strings.TrimRight(base, "/"), hc: hc}
}

func (r *Remote) url(k Key) string {
	return fmt.Sprintf("%s/v1/artifacts/%s/v%d/%s", r.base, k.Stage, k.Version, k.Hex())
}

// Fetch retrieves the raw entry bytes for k. The caller (Cache.Get)
// verifies the entry checksum before using or persisting it — Fetch
// itself only moves bytes. Returns ErrNotFound for an absent key.
func (r *Remote) Fetch(k Key) ([]byte, error) {
	resp, err := r.hc.Get(r.url(k))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(io.LimitReader(resp.Body, maxPayload+headerSize))
	case http.StatusNotFound:
		return nil, ErrNotFound
	default:
		return nil, fmt.Errorf("artifact: remote store GET %s: %s", k, resp.Status)
	}
}

// Push uploads the raw entry bytes for k. Pushing the same key twice is
// idempotent: content addressing makes every writer's entry equivalent.
func (r *Remote) Push(k Key, entry []byte) error {
	req, err := http.NewRequest(http.MethodPut, r.url(k), bytes.NewReader(entry))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("artifact: remote store PUT %s: %s", k, resp.Status)
	}
	return nil
}

// Evict removes k from the store (best effort; absent keys succeed). Used
// when a fetched entry fails verification, so the slot heals on the next
// Push instead of serving the same corrupt bytes forever.
func (r *Remote) Evict(k Key) error {
	req, err := http.NewRequest(http.MethodDelete, r.url(k), nil)
	if err != nil {
		return err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("artifact: remote store DELETE %s: %s", k, resp.Status)
	}
	return nil
}

var hexSumRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// parseStoreKey reconstructs a Key from its three path components,
// rejecting anything that could escape the cache's directory layout.
func parseStoreKey(stage, version, sum string) (Key, error) {
	var k Key
	if stage == "" || strings.ContainsAny(stage, "/\\.") {
		return k, fmt.Errorf("bad stage %q", stage)
	}
	v, ok := strings.CutPrefix(version, "v")
	if !ok {
		return k, fmt.Errorf("bad version %q", version)
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return k, fmt.Errorf("bad version %q", version)
	}
	if !hexSumRE.MatchString(sum) {
		return k, fmt.Errorf("bad key %q", sum)
	}
	raw, err := hex.DecodeString(sum)
	if err != nil {
		return k, fmt.Errorf("bad key %q", sum)
	}
	k.Stage, k.Version = stage, n
	copy(k.Sum[:], raw)
	return k, nil
}

// NewServer returns the HTTP handler serving c as a remote artifact
// store. The handler upholds the store's one invariant — corrupt bytes
// are never served: every PUT is verified before it is persisted, and
// every GET re-verifies the entry read off disk, evicting (and 404ing)
// anything that rotted in place. Mount it wherever /v1/artifacts/
// resolves (the fabric coordinator mounts it next to its own API).
func NewServer(c *Cache) http.Handler {
	mux := http.NewServeMux()
	withKey := func(fn func(w http.ResponseWriter, r *http.Request, k Key)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			k, err := parseStoreKey(r.PathValue("stage"), r.PathValue("version"), r.PathValue("sum"))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			fn(w, r, k)
		}
	}
	mux.HandleFunc("GET /v1/artifacts/{stage}/{version}/{sum}", withKey(
		func(w http.ResponseWriter, r *http.Request, k Key) {
			data, err := os.ReadFile(c.path(k))
			if err != nil {
				c.count("artifact.store.get_miss")
				http.NotFound(w, r)
				return
			}
			if _, _, err := decodeEntry(data, k.Version); err != nil {
				// Rotted on the store's disk: evict rather than serve.
				os.Remove(c.path(k))
				c.count("artifact.store.evict")
				http.NotFound(w, r)
				return
			}
			c.count("artifact.store.get")
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
		}))
	mux.HandleFunc("PUT /v1/artifacts/{stage}/{version}/{sum}", withKey(
		func(w http.ResponseWriter, r *http.Request, k Key) {
			entry, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPayload+headerSize))
			if err != nil {
				http.Error(w, "reading entry: "+err.Error(), http.StatusBadRequest)
				return
			}
			if _, _, err := decodeEntry(entry, k.Version); err != nil {
				c.count("artifact.store.put_rejected")
				http.Error(w, "corrupt entry: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := c.putRaw(k, entry); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			c.count("artifact.store.put")
			w.WriteHeader(http.StatusNoContent)
		}))
	mux.HandleFunc("DELETE /v1/artifacts/{stage}/{version}/{sum}", withKey(
		func(w http.ResponseWriter, _ *http.Request, k Key) {
			os.Remove(c.path(k))
			c.count("artifact.store.delete")
			w.WriteHeader(http.StatusNoContent)
		}))
	return mux
}
