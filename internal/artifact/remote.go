// Remote artifact store: the HTTP tier that lets the distributed sweep
// fabric share one content-addressed cache across nodes. The coordinator
// mounts NewServer over its local Cache; workers attach a Remote client
// to theirs (Cache.SetRemote), turning every local miss into a verified
// fetch and every Put into a write-through Push. Because entries are
// content-addressed and self-checksummed, the protocol needs no
// conditional requests: a GET either returns a complete verified entry or
// 404, and concurrent PUTs of one key converge on identical bytes.
//
// Wire layout (entry bytes exactly as Cache stores them on disk):
//
//	GET    /v1/artifacts/{stage}/v{version}/{hex}  200 entry | 404
//	PUT    /v1/artifacts/{stage}/v{version}/{hex}  204 | 400 corrupt entry
//	DELETE /v1/artifacts/{stage}/v{version}/{hex}  204 (idempotent)
package artifact

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/backoff"
	"repro/internal/metrics"
)

// ErrNotFound reports a key absent from the remote store.
var ErrNotFound = fmt.Errorf("artifact: not found in remote store")

// NewHTTPClient returns an http.Client with the connection and response
// phases bounded separately: connect caps dialing (a dead or partitioned
// host fails fast) and response caps the wait for response headers (a
// server that accepts and then hangs is cut off). There is deliberately
// no overall Client.Timeout — that would also bound the body transfer and
// any long-poll the fabric layers on the same client. Zero durations
// leave that phase unbounded.
func NewHTTPClient(connect, response time.Duration) *http.Client {
	d := &net.Dialer{Timeout: connect, KeepAlive: 30 * time.Second}
	return &http.Client{Transport: &http.Transport{
		DialContext:           d.DialContext,
		ResponseHeaderTimeout: response,
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       90 * time.Second,
	}}
}

// statusError is an HTTP refusal from the store, kept typed so the retry
// and breaker layers can tell "the server said no" (4xx: permanent,
// breaker-neutral) from "the server is hurting" (5xx: retryable, counts
// toward the trip threshold).
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// Remote is the client half of the remote artifact store. A nil *Remote
// is inert. Safe for concurrent use.
//
// Every operation runs under a jittered-backoff retry policy with
// per-attempt deadlines, behind a consecutive-failure circuit breaker:
// transient store hiccups cost bounded latency, and a dead store trips
// the breaker so subsequent operations short-circuit with ErrBreakerOpen
// (callers degrade to local recompute) until a half-open probe finds the
// store healthy again. Breaker transitions surface as
// artifact.breaker_open / _close / _probe / _short_circuit counters.
type Remote struct {
	base string
	hc   *http.Client
	pol  backoff.Policy
	br   *breaker
	reg  *metrics.Registry
}

// NewRemote returns a client for the store at base (e.g.
// "http://coordinator:8080"). hc nil uses NewHTTPClient(5s, 60s) — a 5s
// connect bound and a 60s response-header bound, with the transfer itself
// unbounded.
func NewRemote(base string, hc *http.Client) *Remote {
	if hc == nil {
		hc = NewHTTPClient(5*time.Second, 60*time.Second)
	}
	r := &Remote{
		base: strings.TrimRight(base, "/"),
		hc:   hc,
		pol: backoff.Policy{
			Attempts:       3,
			Base:           100 * time.Millisecond,
			Max:            2 * time.Second,
			AttemptTimeout: 60 * time.Second,
		},
	}
	r.br = newBreaker(5, 5*time.Second, r.count)
	return r
}

// SetMetrics attaches a registry for breaker and retry counters.
func (r *Remote) SetMetrics(reg *metrics.Registry) { r.reg = reg }

// SetRetry replaces the retry policy (tests tighten it; operators with
// flappy links widen it).
func (r *Remote) SetRetry(p backoff.Policy) { r.pol = p }

// SetBreaker re-tunes the circuit breaker: trip after threshold
// consecutive failed operations, short-circuit for cooldown before
// probing. Zero values keep the defaults (5 failures, 5s).
func (r *Remote) SetBreaker(threshold int, cooldown time.Duration) {
	r.br = newBreaker(threshold, cooldown, r.count)
}

func (r *Remote) count(name string) {
	if r.reg != nil {
		r.reg.Counter(name).Inc()
	}
}

// breakerNeutral reports errors that prove the store is reachable even
// though the operation failed — a 404 or any other 4xx is the server
// answering, which must not trip the breaker.
func breakerNeutral(err error) bool {
	if errors.Is(err, ErrNotFound) {
		return true
	}
	var se *statusError
	return errors.As(err, &se) && se.code < 500
}

// do runs one logical store operation through the breaker and the retry
// policy. One allow() per operation: the retries inside count as a single
// breaker verdict, so the trip threshold measures operations, not
// attempts.
func (r *Remote) do(op func(ctx context.Context) error) error {
	if !r.br.allow() {
		return ErrBreakerOpen
	}
	err := backoff.Retry(context.Background(), r.pol, op)
	if err == nil || breakerNeutral(err) {
		r.br.success()
	} else {
		r.br.failure()
	}
	return err
}

func (r *Remote) url(k Key) string {
	return fmt.Sprintf("%s/v1/artifacts/%s/v%d/%s", r.base, k.Stage, k.Version, k.Hex())
}

// Fetch retrieves the raw entry bytes for k. The caller (Cache.Get)
// verifies the entry checksum before using or persisting it — Fetch
// itself only moves bytes. Returns ErrNotFound for an absent key and
// ErrBreakerOpen while the breaker is short-circuiting.
func (r *Remote) Fetch(k Key) ([]byte, error) {
	var out []byte
	err := r.do(func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url(k), nil)
		if err != nil {
			return backoff.Permanent(err)
		}
		resp, err := r.hc.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			out, err = io.ReadAll(io.LimitReader(resp.Body, maxPayload+headerSize))
			return err
		case http.StatusNotFound:
			return backoff.Permanent(ErrNotFound)
		default:
			serr := &statusError{resp.StatusCode, fmt.Sprintf("artifact: remote store GET %s: %s", k, resp.Status)}
			if resp.StatusCode/100 == 4 {
				return backoff.Permanent(serr)
			}
			return serr
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Push uploads the raw entry bytes for k. Pushing the same key twice is
// idempotent: content addressing makes every writer's entry equivalent.
func (r *Remote) Push(k Key, entry []byte) error {
	return r.do(func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.url(k), bytes.NewReader(entry))
		if err != nil {
			return backoff.Permanent(err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := r.hc.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 == 2 {
			return nil
		}
		serr := &statusError{resp.StatusCode, fmt.Sprintf("artifact: remote store PUT %s: %s", k, resp.Status)}
		if resp.StatusCode/100 == 4 {
			// The store rejected these bytes (corrupt entry); resending
			// the same bytes cannot change its mind.
			return backoff.Permanent(serr)
		}
		return serr
	})
}

// Evict removes k from the store (best effort; absent keys succeed). Used
// when a fetched entry fails verification, so the slot heals on the next
// Push instead of serving the same corrupt bytes forever.
func (r *Remote) Evict(k Key) error {
	return r.do(func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, r.url(k), nil)
		if err != nil {
			return backoff.Permanent(err)
		}
		resp, err := r.hc.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 == 2 || resp.StatusCode == http.StatusNotFound {
			return nil
		}
		serr := &statusError{resp.StatusCode, fmt.Sprintf("artifact: remote store DELETE %s: %s", k, resp.Status)}
		if resp.StatusCode/100 == 4 {
			return backoff.Permanent(serr)
		}
		return serr
	})
}

var hexSumRE = regexp.MustCompile(`^[0-9a-f]{64}$`)

// parseStoreKey reconstructs a Key from its three path components,
// rejecting anything that could escape the cache's directory layout.
func parseStoreKey(stage, version, sum string) (Key, error) {
	var k Key
	if stage == "" || strings.ContainsAny(stage, "/\\.") {
		return k, fmt.Errorf("bad stage %q", stage)
	}
	v, ok := strings.CutPrefix(version, "v")
	if !ok {
		return k, fmt.Errorf("bad version %q", version)
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return k, fmt.Errorf("bad version %q", version)
	}
	if !hexSumRE.MatchString(sum) {
		return k, fmt.Errorf("bad key %q", sum)
	}
	raw, err := hex.DecodeString(sum)
	if err != nil {
		return k, fmt.Errorf("bad key %q", sum)
	}
	k.Stage, k.Version = stage, n
	copy(k.Sum[:], raw)
	return k, nil
}

// NewServer returns the HTTP handler serving c as a remote artifact
// store. The handler upholds the store's one invariant — corrupt bytes
// are never served: every PUT is verified before it is persisted, and
// every GET re-verifies the entry read off disk, evicting (and 404ing)
// anything that rotted in place. Mount it wherever /v1/artifacts/
// resolves (the fabric coordinator mounts it next to its own API).
func NewServer(c *Cache) http.Handler {
	mux := http.NewServeMux()
	withKey := func(fn func(w http.ResponseWriter, r *http.Request, k Key)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			k, err := parseStoreKey(r.PathValue("stage"), r.PathValue("version"), r.PathValue("sum"))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			fn(w, r, k)
		}
	}
	mux.HandleFunc("GET /v1/artifacts/{stage}/{version}/{sum}", withKey(
		func(w http.ResponseWriter, r *http.Request, k Key) {
			data, err := os.ReadFile(c.path(k))
			if err != nil {
				c.count("artifact.store.get_miss")
				http.NotFound(w, r)
				return
			}
			if _, _, err := decodeEntry(data, k.Version); err != nil {
				// Rotted on the store's disk: evict rather than serve.
				os.Remove(c.path(k))
				c.count("artifact.store.evict")
				http.NotFound(w, r)
				return
			}
			c.count("artifact.store.get")
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
		}))
	mux.HandleFunc("PUT /v1/artifacts/{stage}/{version}/{sum}", withKey(
		func(w http.ResponseWriter, r *http.Request, k Key) {
			entry, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPayload+headerSize))
			if err != nil {
				http.Error(w, "reading entry: "+err.Error(), http.StatusBadRequest)
				return
			}
			if _, _, err := decodeEntry(entry, k.Version); err != nil {
				c.count("artifact.store.put_rejected")
				http.Error(w, "corrupt entry: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := c.putRaw(k, entry); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			c.count("artifact.store.put")
			w.WriteHeader(http.StatusNoContent)
		}))
	mux.HandleFunc("DELETE /v1/artifacts/{stage}/{version}/{sum}", withKey(
		func(w http.ResponseWriter, _ *http.Request, k Key) {
			os.Remove(c.path(k))
			c.count("artifact.store.delete")
			w.WriteHeader(http.StatusNoContent)
		}))
	return mux
}
