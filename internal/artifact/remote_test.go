package artifact

import (
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/metrics"
)

// startStore stands up a store server over its own Cache and returns the
// store cache plus a Remote pointed at it.
func startStore(t *testing.T) (*Cache, *Remote) {
	t.Helper()
	store := Open(t.TempDir())
	ts := httptest.NewServer(NewServer(store))
	t.Cleanup(ts.Close)
	return store, NewRemote(ts.URL, ts.Client())
}

// TestRemoteReadThrough: a Put on one node is visible to a Get on another
// through the store, fills the second node's local tier, and counts as a
// hit there.
func TestRemoteReadThrough(t *testing.T) {
	store, remote := startStore(t)
	k := NewKey("measure", 1, struct{ W string }{"sha"})
	payload := []byte("canonical result bytes")

	a := Open(t.TempDir())
	a.SetRemote(remote)
	regA := metrics.NewRegistry()
	a.SetMetrics(regA)
	if err := a.Put(k, payload, 42); err != nil {
		t.Fatal(err)
	}
	if n := regA.Counter("artifact.remote.push").Value(); n != 1 {
		t.Errorf("push count %d, want 1", n)
	}
	if n, _, _ := store.Entries(); n != 1 {
		t.Errorf("store entries %d, want 1 after write-through", n)
	}

	b := Open(t.TempDir())
	b.SetRemote(remote)
	regB := metrics.NewRegistry()
	b.SetMetrics(regB)
	got, costNS, ok := b.Get(k)
	if !ok || string(got) != string(payload) || costNS != 42 {
		t.Fatalf("remote read-through Get = %q, %d, %v", got, costNS, ok)
	}
	if n := regB.Counter("artifact.remote.fetch").Value(); n != 1 {
		t.Errorf("fetch count %d, want 1", n)
	}
	if n := regB.Counter("artifact.hit").Value(); n != 1 {
		t.Errorf("remote-tier hit must count as artifact.hit, got %d", n)
	}
	// The fetch filled the local tier: the next Get never leaves the node.
	if _, _, ok := b.Get(k); !ok {
		t.Fatal("local fill missing after remote fetch")
	}
	if n := regB.Counter("artifact.remote.fetch").Value(); n != 1 {
		t.Errorf("second Get refetched (count %d), local fill not used", n)
	}

	// A key nobody pushed is a plain miss.
	if _, _, ok := b.Get(NewKey("measure", 1, struct{ W string }{"qsort"})); ok {
		t.Fatal("absent key must miss")
	}
	if n := regB.Counter("artifact.remote.miss").Value(); n != 1 {
		t.Errorf("remote miss count %d, want 1", n)
	}
}

// TestRemoteStoreDiskRot: an entry corrupted on the store's own disk is
// evicted server-side and 404s — the client sees a miss and recomputes;
// corrupt bytes never cross the wire.
func TestRemoteStoreDiskRot(t *testing.T) {
	store, remote := startStore(t)
	k := NewKey("checkpoint", 1, struct{ W string }{"fft"})
	if err := store.Put(k, []byte("good checkpoint"), 1); err != nil {
		t.Fatal(err)
	}
	// Rot the stored entry in place.
	data, err := os.ReadFile(store.path(k))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(store.path(k), data, 0o644); err != nil {
		t.Fatal(err)
	}

	c := Open(t.TempDir())
	c.SetRemote(remote)
	reg := metrics.NewRegistry()
	store.SetMetrics(reg)
	if _, _, ok := c.Get(k); ok {
		t.Fatal("rotted store entry must never be served")
	}
	if n := reg.Counter("artifact.store.evict").Value(); n != 1 {
		t.Errorf("store-side evict count %d, want 1", n)
	}
	if _, err := os.Stat(store.path(k)); !os.IsNotExist(err) {
		t.Error("rotted entry still on store disk after evict")
	}
	// The slot heals on the next Push: recompute-and-Put serves cleanly.
	if err := c.Put(k, []byte("good checkpoint"), 1); err != nil {
		t.Fatal(err)
	}
	d := Open(t.TempDir())
	d.SetRemote(remote)
	if got, _, ok := d.Get(k); !ok || string(got) != "good checkpoint" {
		t.Fatalf("healed slot Get = %q, %v", got, ok)
	}
}

// TestRemoteFetchCorrupt: the "artifact.fetch" chaos site corrupts the
// entry in flight; the client must evict the store slot and report a miss
// (recompute), then the next Push heals the slot.
func TestRemoteFetchCorrupt(t *testing.T) {
	store, remote := startStore(t)
	k := NewKey("select", 1, struct{ W string }{"dijkstra"})
	if err := store.Put(k, []byte("simpoint selection"), 7); err != nil {
		t.Fatal(err)
	}

	inj, err := faultinject.Parse("3:artifact.fetch/select=corrupt:4")
	if err != nil {
		t.Fatal(err)
	}
	c := Open(t.TempDir())
	c.SetRemote(remote)
	c.SetFaultInjector(inj)
	reg := metrics.NewRegistry()
	c.SetMetrics(reg)
	if _, _, ok := c.Get(k); ok {
		t.Fatal("in-flight corruption must never be served")
	}
	if n := reg.Counter("artifact.remote.evict").Value(); n != 1 {
		t.Errorf("client-driven store evict count %d, want 1", n)
	}
	if _, err := os.Stat(store.path(k)); !os.IsNotExist(err) {
		t.Error("store slot not evicted after corrupt fetch")
	}
	// Recompute + Put (the rule fired once, so this fetch path is clean).
	if err := c.Put(k, []byte("simpoint selection"), 7); err != nil {
		t.Fatal(err)
	}
	if got, _, ok := c.Get(k); !ok || string(got) != "simpoint selection" {
		t.Fatalf("after heal Get = %q, %v", got, ok)
	}
}

// TestRemoteFetchError: a transient injected fetch error degrades to a
// plain miss, never an incident.
func TestRemoteFetchError(t *testing.T) {
	store, remote := startStore(t)
	k := NewKey("bbv", 1, struct{ W string }{"sha"})
	if err := store.Put(k, []byte("vectors"), 1); err != nil {
		t.Fatal(err)
	}
	inj, err := faultinject.Parse("1:artifact.fetch/bbv=error")
	if err != nil {
		t.Fatal(err)
	}
	c := Open(t.TempDir())
	c.SetRemote(remote)
	c.SetFaultInjector(inj)
	reg := metrics.NewRegistry()
	c.SetMetrics(reg)
	if _, _, ok := c.Get(k); ok {
		t.Fatal("faulted fetch must miss")
	}
	if n := reg.Counter("artifact.remote.error").Value(); n != 1 {
		t.Errorf("remote error count %d, want 1", n)
	}
	// The fault was transient (x1): the next Get succeeds.
	if got, _, ok := c.Get(k); !ok || string(got) != "vectors" {
		t.Fatalf("post-fault Get = %q, %v", got, ok)
	}
}

// TestRemoteConcurrentPut: concurrent PUTs of one content-addressed key
// are idempotent — all succeed, the store holds exactly one entry, and it
// verifies.
func TestRemoteConcurrentPut(t *testing.T) {
	store, remote := startStore(t)
	k := NewKey("measure", 1, struct{ W string }{"qsort"})
	payload := []byte(strings.Repeat("result", 1000))

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := Open(t.TempDir())
			c.SetRemote(remote)
			errs[i] = c.Put(k, payload, 5)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent Put %d: %v", i, err)
		}
	}
	if n, _, err := store.Entries(); err != nil || n != 1 {
		t.Errorf("store entries = %d (%v), want exactly 1", n, err)
	}
	c := Open(t.TempDir())
	c.SetRemote(remote)
	if got, _, ok := c.Get(k); !ok || string(got) != string(payload) {
		t.Fatal("converged entry does not verify")
	}
}

// TestStoreRejectsCorruptPut: the store's PUT handler verifies entries
// before persisting — garbage gets 400 and the Put fails loudly (a worker
// must not believe its artifact is visible when it is not).
func TestStoreRejectsCorruptPut(t *testing.T) {
	store, remote := startStore(t)
	k := NewKey("measure", 1, struct{ W string }{"sha"})
	if err := remote.Push(k, []byte("not an entry")); err == nil {
		t.Fatal("store accepted a corrupt entry")
	}
	if n, _, _ := store.Entries(); n != 0 {
		t.Errorf("store persisted a rejected entry (%d files)", n)
	}
	// And through the Cache layer: a push failure fails the Put.
	ts := httptest.NewServer(NewServer(store))
	defer ts.Close()
	bad := NewRemote(ts.URL+"/nowhere", nil) // wrong base: every push 404s
	c := Open(t.TempDir())
	c.SetRemote(bad)
	reg := metrics.NewRegistry()
	c.SetMetrics(reg)
	if err := c.Put(k, []byte("fine payload"), 1); err == nil {
		t.Fatal("Put must fail when the write-through push fails")
	}
	if n := reg.Counter("artifact.remote.push_error").Value(); n != 1 {
		t.Errorf("push_error count %d, want 1", n)
	}
}

// TestParseStoreKey: path components that could escape the cache layout
// are rejected.
func TestParseStoreKey(t *testing.T) {
	good := NewKey("measure", 3, struct{ X int }{1})
	k, err := parseStoreKey("measure", "v3", good.Hex())
	if err != nil || k != good {
		t.Fatalf("round trip = %+v, %v", k, err)
	}
	for _, bad := range [][3]string{
		{"", "v1", good.Hex()},
		{"..", "v1", good.Hex()},
		{"a/b", "v1", good.Hex()},
		{"measure", "1", good.Hex()},
		{"measure", "v-1", good.Hex()},
		{"measure", "vx", good.Hex()},
		{"measure", "v1", "zz"},
		{"measure", "v1", strings.Repeat("A", 64)},
	} {
		if _, err := parseStoreKey(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("parseStoreKey(%q, %q, %q) must fail", bad[0], bad[1], bad[2])
		}
	}
}
