package artifact

import (
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen reports a remote-store operation short-circuited because
// the circuit breaker is open: the store has failed enough consecutive
// times that hammering it further only adds latency. Callers treat it as
// a cache miss (recompute locally) or a skipped push, never as a sweep
// failure.
var ErrBreakerOpen = fmt.Errorf("artifact: remote store circuit breaker open")

const (
	brClosed = iota // normal operation
	brOpen          // short-circuiting everything until the cooldown lapses
	brHalfOpen      // cooldown lapsed; one probe in flight decides
)

// breaker is a consecutive-failure circuit breaker guarding the remote
// artifact store. Closed passes everything through; threshold consecutive
// failures trip it open; while open every call short-circuits with
// ErrBreakerOpen (the sweep degrades to local recompute instead of
// stalling on a dead store); after cooldown exactly one probe is allowed
// through — success closes the breaker, failure re-opens it for another
// cooldown. Probe dedupe matters under concurrency: N goroutines arriving
// at the half-open instant must not all dogpile the recovering store.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests
	count     func(string)     // metrics hook (never nil)

	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, count func(string)) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if count == nil {
		count = func(string) {}
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, count: count}
}

// allow reports whether an operation may proceed. A false return is a
// short circuit: the caller must fail fast with ErrBreakerOpen and must
// not report success/failure back.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		return true
	case brOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.count("artifact.breaker_short_circuit")
			return false
		}
		b.state = brHalfOpen
		b.probing = true
		b.count("artifact.breaker_probe")
		return true
	default: // brHalfOpen
		if b.probing {
			b.count("artifact.breaker_short_circuit")
			return false
		}
		b.probing = true
		b.count("artifact.breaker_probe")
		return true
	}
}

// success records a completed operation (including "the server answered
// with a refusal" — reachability is what the breaker measures).
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == brHalfOpen {
		b.count("artifact.breaker_close")
	}
	b.state = brClosed
	b.failures = 0
	b.probing = false
}

// failure records a transport-level or server-side (5xx) failure.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.tripLocked()
		}
	case brHalfOpen:
		b.probing = false
		b.tripLocked()
	case brOpen:
		// An operation that started before the trip finished late; the
		// breaker is already open and the cooldown already running.
	}
}

func (b *breaker) tripLocked() {
	b.state = brOpen
	b.openedAt = b.now()
	b.failures = 0
	b.count("artifact.breaker_open")
}
