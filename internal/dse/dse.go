// Package dse implements parametric design-space exploration over the
// BOOM timing model: a campaign is a base design point plus per-parameter
// sweep axes (ROB size, machine width, issue widths, IQ/LSQ depths, cache
// geometry, branch-predictor choice), expanded into the cross product of
// validated boom.Config design points. The paper stops at three fixed
// configurations; this package turns boom.Config's scalar-only registry
// into a generator of hundreds of named design points that batch through
// core.Runner or cmd/boomd like any other campaign.
//
// Expansion is deterministic: axes are normalized into sorted-parameter
// order, values keep their given order, and every expanded point gets a
// canonical name — base+param=value+… with parameters sorted — so the
// same spec always yields the same configs in the same order, and the
// campaign fingerprint (which hashes every field of every config) is a
// stable identity for caches and journals.
//
// The profile/select/checkpoint stages of the flow are config-independent,
// so an N-point expansion still costs one profile per workload: the
// content-addressed artifact cache keys those stages off workload identity
// alone, and every design point's measurement feeds off the same chain.
// That economy is what makes frontier-scale campaigns practical.
//
// The companion half of the package (frontier.go) reduces a finished
// campaign to Pareto frontiers of IPC vs perf-per-watt and an
// efficiency-optimal recommendation per workload.
package dse

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/boom"
)

// MaxPoints bounds an expansion: a campaign beyond this many design
// points is rejected rather than silently truncated. It matches the
// admission-control posture of the serving layer — a runaway cross
// product should fail loudly at the API boundary, not melt a worker.
const MaxPoints = 4096

// Setting is one parameter assignment ("rob" = "96").
type Setting struct {
	Param string
	Value string
}

// Axis is one sweep dimension: a parameter and the values it takes.
type Axis struct {
	Param  string
	Values []string
}

// Spec is a parametric campaign: a base design point, fixed overrides
// applied to it, and the axes whose cross product is explored.
type Spec struct {
	// Base is a registered design-point name ("MediumBOOM"/"medium", …).
	// Empty means MediumBOOM.
	Base string
	// Overrides pin parameters on the base before the axes apply. A
	// parameter may appear in Overrides or Axes, not both.
	Overrides []Setting
	// Axes are the sweep dimensions. Expansion normalizes them into
	// sorted-parameter order; values keep their given order.
	Axes []Axis
}

// param is one tunable surface of boom.Config.
type param struct {
	name  string
	doc   string
	apply func(c *boom.Config, v string) error
}

// posInt parses a strictly positive integer axis value.
func posInt(v string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("want a positive integer, got %q", v)
	}
	return n, nil
}

// intParam builds an apply func setting one int field.
func intParam(set func(c *boom.Config, n int)) func(*boom.Config, string) error {
	return func(c *boom.Config, v string) error {
		n, err := posInt(v)
		if err != nil {
			return err
		}
		set(c, n)
		return nil
	}
}

// params is the exploration surface, sorted by name. Every entry maps a
// stable external name onto boom.Config fields; dependent structural
// minima (register-file ports under a wider issue) are derived here so an
// expanded point carries the cost of what it widens, the mechanism behind
// the paper's port-scaling takeaways.
var params = []param{
	{"btb", "BTB entries", intParam(func(c *boom.Config, n int) { c.BTBEntries = n })},
	{"dcache-kib", "D-cache size in KiB", intParam(func(c *boom.Config, n int) { c.DCacheKiB = n })},
	{"dcache-mshrs", "D-cache MSHRs", intParam(func(c *boom.Config, n int) { c.DCacheMSHRs = n })},
	{"dcache-ways", "D-cache associativity", intParam(func(c *boom.Config, n int) { c.DCacheWays = n })},
	{"fetch-buffer", "fetch-buffer entries", intParam(func(c *boom.Config, n int) { c.FetchBufferEntries = n })},
	{"fetch-width", "front-end fetch width", intParam(func(c *boom.Config, n int) { c.FetchWidth = n })},
	{"fp-iq", "FP issue-queue slots", intParam(func(c *boom.Config, n int) { c.FpIssueSlots = n })},
	{"fp-issue-width", "FP issue width", intParam(func(c *boom.Config, n int) { c.FpIssueWidth = n })},
	{"fp-phys", "FP physical registers", intParam(func(c *boom.Config, n int) { c.FpPhysRegs = n })},
	{"icache-kib", "I-cache size in KiB", intParam(func(c *boom.Config, n int) { c.ICacheKiB = n })},
	{"icache-ways", "I-cache associativity", intParam(func(c *boom.Config, n int) { c.ICacheWays = n })},
	{"int-iq", "integer issue-queue slots", intParam(func(c *boom.Config, n int) { c.IntIssueSlots = n })},
	{"int-issue-width", "integer issue width (raises RF ports to the structural minimum)",
		intParam(func(c *boom.Config, n int) {
			c.IntIssueWidth = n
			// Widening issue is not free: the merged register file must
			// feed 2 source reads and absorb 1 writeback per issued µop,
			// so ports rise to the structural minimum (and never shrink).
			if min := 2*n + 2; c.IntRFReadPorts < min {
				c.IntRFReadPorts = min
			}
			if min := n + 1; c.IntRFWritePorts < min {
				c.IntRFWritePorts = min
			}
		})},
	{"int-phys", "integer physical registers", intParam(func(c *boom.Config, n int) { c.IntPhysRegs = n })},
	{"l2-kib", "L2 size in KiB", intParam(func(c *boom.Config, n int) { c.L2KiB = n })},
	{"l2-ways", "L2 associativity", intParam(func(c *boom.Config, n int) { c.L2Ways = n })},
	{"ldq", "load-queue entries", intParam(func(c *boom.Config, n int) { c.LdqEntries = n })},
	{"lsq", "load- and store-queue entries together", intParam(func(c *boom.Config, n int) {
		c.LdqEntries, c.StqEntries = n, n
	})},
	{"mem-iq", "memory issue-queue slots", intParam(func(c *boom.Config, n int) { c.MemIssueSlots = n })},
	{"mem-issue-width", "memory execution units", intParam(func(c *boom.Config, n int) { c.MemIssueWidth = n })},
	{"predictor", "branch direction predictor: tage|gshare", func(c *boom.Config, v string) error {
		switch strings.ToLower(strings.TrimSpace(v)) {
		case "tage":
			c.Predictor = boom.PredictorTAGE
		case "gshare":
			c.Predictor = boom.PredictorGShare
		default:
			return fmt.Errorf("want tage or gshare, got %q", v)
		}
		return nil
	}},
	{"ras", "return-address-stack entries", intParam(func(c *boom.Config, n int) { c.RASEntries = n })},
	{"rob", "reorder-buffer entries", intParam(func(c *boom.Config, n int) { c.RobEntries = n })},
	{"stq", "store-queue entries", intParam(func(c *boom.Config, n int) { c.StqEntries = n })},
	{"width", "machine width (decode and retire together)", intParam(func(c *boom.Config, n int) {
		c.DecodeWidth, c.RetireWidth = n, n
	})},
}

// Params returns the supported parameter names with one-line docs, sorted
// — the CLI help surface.
func Params() []string {
	out := make([]string, len(params))
	for i, p := range params {
		out[i] = fmt.Sprintf("%-16s %s", p.name, p.doc)
	}
	return out
}

func paramByName(name string) (*param, error) {
	i := sort.Search(len(params), func(i int) bool { return params[i].name >= name })
	if i < len(params) && params[i].name == name {
		return &params[i], nil
	}
	return nil, fmt.Errorf("dse: unknown parameter %q (see dse -params for the surface)", name)
}

// canonValue re-formats an accepted axis value into its canonical form,
// so "064" and "64" (or "TAGE" and "tage") name the same design point.
func canonValue(p *param, v string) string {
	if p.name == "predictor" {
		return strings.ToLower(strings.TrimSpace(v))
	}
	if n, err := posInt(v); err == nil {
		return strconv.Itoa(n)
	}
	return strings.TrimSpace(v)
}

// Expand materializes a spec into validated design points: the base
// config (resolved through the registry), overrides applied, then the
// full cross product of the axes in sorted-parameter order. Every point
// is named canonically (base+param=value+…, parameters sorted) and must
// pass boom.Config.Validate — an invalid corner (a width inversion, a
// non-power-of-two geometry) fails the whole expansion with the offending
// point named, never silently drops it.
func Expand(spec Spec) ([]boom.Config, error) {
	baseName := spec.Base
	if baseName == "" {
		baseName = "MediumBOOM"
	}
	base, err := boom.ConfigByName(baseName)
	if err != nil {
		return nil, err
	}

	// Normalize overrides and axes: resolve parameters, canonicalize
	// values, reject duplicates and cross-listing.
	used := map[string]string{} // param → "override" | "axis"
	overrides := make([]Setting, 0, len(spec.Overrides))
	for _, s := range spec.Overrides {
		p, err := paramByName(s.Param)
		if err != nil {
			return nil, err
		}
		if used[p.name] != "" {
			return nil, fmt.Errorf("dse: parameter %q listed twice", p.name)
		}
		used[p.name] = "override"
		overrides = append(overrides, Setting{p.name, canonValue(p, s.Value)})
	}
	axes := make([]Axis, 0, len(spec.Axes))
	total := 1
	for _, a := range spec.Axes {
		p, err := paramByName(a.Param)
		if err != nil {
			return nil, err
		}
		if used[p.name] != "" {
			return nil, fmt.Errorf("dse: parameter %q listed twice", p.name)
		}
		used[p.name] = "axis"
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("dse: axis %q has no values", p.name)
		}
		vals := make([]string, 0, len(a.Values))
		seen := map[string]bool{}
		for _, v := range a.Values {
			cv := canonValue(p, v)
			if seen[cv] {
				return nil, fmt.Errorf("dse: axis %q repeats value %q", p.name, cv)
			}
			seen[cv] = true
			vals = append(vals, cv)
		}
		axes = append(axes, Axis{p.name, vals})
		if total > MaxPoints/len(vals) {
			return nil, fmt.Errorf("dse: campaign exceeds %d design points", MaxPoints)
		}
		total *= len(vals)
	}
	sort.Slice(overrides, func(i, j int) bool { return overrides[i].Param < overrides[j].Param })
	sort.Slice(axes, func(i, j int) bool { return axes[i].Param < axes[j].Param })

	// Apply overrides to the base once; they are shared by every point.
	for _, s := range overrides {
		p, _ := paramByName(s.Param)
		if err := p.apply(&base, s.Value); err != nil {
			return nil, fmt.Errorf("dse: override %s=%s: %v", s.Param, s.Value, err)
		}
	}

	// Cross product in lexicographic order over the sorted axes.
	idx := make([]int, len(axes))
	out := make([]boom.Config, 0, total)
	for {
		cfg := base
		var suffix strings.Builder
		for _, s := range overrides {
			fmt.Fprintf(&suffix, "+%s=%s", s.Param, s.Value)
		}
		for ai, a := range axes {
			p, _ := paramByName(a.Param)
			v := a.Values[idx[ai]]
			if err := p.apply(&cfg, v); err != nil {
				return nil, fmt.Errorf("dse: axis %s=%s: %v", a.Param, v, err)
			}
			fmt.Fprintf(&suffix, "+%s=%s", a.Param, v)
		}
		cfg.Name = base.Name + suffix.String()
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("dse: design point %s: %v", cfg.Name, err)
		}
		out = append(out, cfg)

		// Odometer increment: last axis varies fastest.
		ai := len(axes) - 1
		for ; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(axes[ai].Values) {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			break
		}
	}
	return out, nil
}

// ParseAxes parses the CLI axis grammar: semicolon-separated axes, each
// "param=v1,v2,…". Example: "rob=64,96,128;predictor=tage,gshare".
func ParseAxes(s string) ([]Axis, error) {
	var out []Axis
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, vs, ok := strings.Cut(part, "=")
		if !ok || strings.TrimSpace(k) == "" {
			return nil, fmt.Errorf("dse: bad axis %q (want param=v1,v2,…)", part)
		}
		var vals []string
		for _, v := range strings.Split(vs, ",") {
			if v = strings.TrimSpace(v); v != "" {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("dse: axis %q has no values", strings.TrimSpace(k))
		}
		out = append(out, Axis{strings.TrimSpace(k), vals})
	}
	return out, nil
}

// ParseOverrides parses "param=v;param2=v2" into settings.
func ParseOverrides(s string) ([]Setting, error) {
	axes, err := ParseAxes(s)
	if err != nil {
		return nil, err
	}
	out := make([]Setting, 0, len(axes))
	for _, a := range axes {
		if len(a.Values) != 1 {
			return nil, fmt.Errorf("dse: override %q must have exactly one value", a.Param)
		}
		out = append(out, Setting{a.Param, a.Values[0]})
	}
	return out, nil
}
