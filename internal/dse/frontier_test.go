package dse

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func cell(wl, cfg string, ipc, mw, ppw float64) Cell {
	return Cell{Workload: wl, Config: cfg, IPC: ipc, PowerMW: mw, PerfPerWatt: ppw}
}

func configs(pts []Point) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = p.Config
	}
	return out
}

func TestFrontierDominance(t *testing.T) {
	// c dominates d outright; a and b trade IPC against efficiency.
	fs := Frontiers([]Cell{
		cell("sha", "a", 1.0, 100, 10),
		cell("sha", "b", 2.0, 400, 5),
		cell("sha", "c", 1.5, 200, 7.5),
		cell("sha", "d", 1.4, 250, 5.6), // dominated by c on both axes
	})
	if len(fs) != 1 || fs[0].Workload != "sha" {
		t.Fatalf("got %d frontiers", len(fs))
	}
	if got, want := configs(fs[0].Points), []string{"a", "c", "b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("frontier = %v, want %v (ascending IPC, d dominated)", got, want)
	}
	if fs[0].Best.Config != "a" {
		t.Fatalf("best = %s, want a (highest perf-per-watt)", fs[0].Best.Config)
	}
}

func TestFrontierTies(t *testing.T) {
	// Exact duplicates on both axes keep only the smaller config name.
	fs := Frontiers([]Cell{
		cell("sha", "zeta", 1.0, 100, 10),
		cell("sha", "alpha", 1.0, 100, 10),
	})
	if got := configs(fs[0].Points); !reflect.DeepEqual(got, []string{"alpha"}) {
		t.Fatalf("duplicate points: frontier = %v, want [alpha]", got)
	}
	// Best tie on perf-per-watt breaks toward higher IPC.
	fs = Frontiers([]Cell{
		cell("sha", "slow", 1.0, 100, 10),
		cell("sha", "fast", 2.0, 200, 10),
	})
	if fs[0].Best.Config != "fast" {
		t.Fatalf("best = %s, want fast (equal IPC/W, higher IPC)", fs[0].Best.Config)
	}
}

func TestFrontierWorkloadOrderAndGrouping(t *testing.T) {
	fs := Frontiers([]Cell{
		cell("qsort", "a", 1, 100, 10),
		cell("sha", "a", 1, 100, 10),
		cell("qsort", "b", 2, 100, 20),
	})
	if len(fs) != 2 || fs[0].Workload != "qsort" || fs[1].Workload != "sha" {
		t.Fatalf("workload order not first-seen: %+v", fs)
	}
	if fs[0].Best.Config != "b" {
		t.Fatalf("qsort best = %s, want b", fs[0].Best.Config)
	}
}

func TestFrontierNonFiniteClamped(t *testing.T) {
	fs := Frontiers([]Cell{
		cell("sha", "nan", math.NaN(), math.Inf(1), math.NaN()),
		cell("sha", "ok", 1, 100, 10),
	})
	for _, p := range fs[0].Points {
		if math.IsNaN(p.IPC) || math.IsInf(p.PowerMW, 0) || math.IsNaN(p.PerfPerWatt) {
			t.Fatalf("non-finite metric leaked into frontier: %+v", p)
		}
	}
	if fs[0].Best.Config != "ok" {
		t.Fatalf("best = %s, want ok", fs[0].Best.Config)
	}
}

func TestEncodeReportCanonical(t *testing.T) {
	rep := &Report{
		Campaign:     "abc123",
		DesignPoints: 4,
		Workloads: Frontiers([]Cell{
			cell("sha", "a", 1.25, 100, 12.5),
			cell("sha", "b", 2.5, 500, 5),
		}),
	}
	a, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("EncodeReport not deterministic")
	}
	if a[len(a)-1] != '\n' {
		t.Fatal("EncodeReport must end with one newline")
	}
	const want = `{"campaign":"abc123","design_points":4,"workloads":[{"workload":"sha","best":{"config":"a","ipc":1.25,"power_mw":100,"perf_per_watt":12.5},"points":[{"config":"a","ipc":1.25,"power_mw":100,"perf_per_watt":12.5},{"config":"b","ipc":2.5,"power_mw":500,"perf_per_watt":5}]}]}` + "\n"
	if string(a) != want {
		t.Fatalf("canonical bytes drifted:\n got %s\nwant %s", a, want)
	}
}

func TestFormatReport(t *testing.T) {
	rep := &Report{
		DesignPoints: 2,
		Workloads: Frontiers([]Cell{
			cell("sha", "eff", 1, 50, 20),
			cell("sha", "fast", 2, 400, 5),
		}),
	}
	out := FormatReport(rep)
	if !strings.Contains(out, "design points: 2") {
		t.Error("missing design-point count")
	}
	if !strings.Contains(out, "efficiency-optimal: eff") {
		t.Error("missing recommendation line")
	}
	if !strings.Contains(out, "* eff") {
		t.Error("best point not starred in the table")
	}
	if FormatReport(rep) != out {
		t.Error("FormatReport not deterministic")
	}
}
