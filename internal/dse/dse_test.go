package dse

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/boom"
)

// The parameter registry must stay sorted by name: paramByName binary
// searches it, and expansion's canonical ordering leans on it.
func TestParamRegistrySorted(t *testing.T) {
	if !sort.SliceIsSorted(params, func(i, j int) bool { return params[i].name < params[j].name }) {
		t.Fatal("params registry is not sorted by name; paramByName's binary search will miss entries")
	}
	seen := map[string]bool{}
	for _, p := range params {
		if seen[p.name] {
			t.Fatalf("duplicate parameter %q in registry", p.name)
		}
		seen[p.name] = true
		if p.doc == "" || p.apply == nil {
			t.Fatalf("parameter %q missing doc or apply", p.name)
		}
	}
}

// Every registered parameter must be applicable to the default base with a
// value that keeps the config valid — the CLI help surface promises as
// much.
func TestEveryParamApplies(t *testing.T) {
	vals := map[string]string{"predictor": "gshare"}
	for _, p := range params {
		v, ok := vals[p.name]
		if !ok {
			v = "64" // a positive integer accepted by every int param
		}
		cfg, err := boom.ConfigByName("MediumBOOM")
		if err != nil {
			t.Fatal(err)
		}
		if err := p.apply(&cfg, v); err != nil {
			t.Errorf("param %s: apply(%q): %v", p.name, v, err)
		}
	}
}

func TestExpandGolden(t *testing.T) {
	// Axes given in unsorted order with uncanonical values: expansion must
	// normalize both.
	cfgs, err := Expand(Spec{
		Base: "medium",
		Axes: []Axis{
			{Param: "rob", Values: []string{"096", "64"}},
			{Param: "predictor", Values: []string{"GShare", "tage"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"MediumBOOM+predictor=gshare+rob=96",
		"MediumBOOM+predictor=gshare+rob=64",
		"MediumBOOM+predictor=tage+rob=96",
		"MediumBOOM+predictor=tage+rob=64",
	}
	var got []string
	for _, c := range cfgs {
		got = append(got, c.Name)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expanded names:\n got %q\nwant %q", got, want)
	}

	// Field spot-checks: the axes really landed on the fields.
	if cfgs[0].Predictor != boom.PredictorGShare || cfgs[0].RobEntries != 96 {
		t.Errorf("point 0: predictor=%v rob=%d, want gshare/96", cfgs[0].Predictor, cfgs[0].RobEntries)
	}
	if cfgs[3].Predictor != boom.PredictorTAGE || cfgs[3].RobEntries != 64 {
		t.Errorf("point 3: predictor=%v rob=%d, want tage/64", cfgs[3].Predictor, cfgs[3].RobEntries)
	}
	// Untouched fields ride along from the base.
	base := boom.MediumBOOM()
	if cfgs[0].DCacheKiB != base.DCacheKiB || cfgs[0].IntIssueWidth != base.IntIssueWidth {
		t.Error("unswept fields drifted from the base config")
	}
}

func TestExpandDeterministic(t *testing.T) {
	spec := Spec{
		Overrides: []Setting{{"l2-kib", "1024"}},
		Axes: []Axis{
			{Param: "int-iq", Values: []string{"16", "24"}},
			{Param: "rob", Values: []string{"64", "96", "128"}},
		},
	}
	a, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec expanded to different configs")
	}
	if len(a) != 6 {
		t.Fatalf("got %d points, want 6", len(a))
	}
	for _, c := range a {
		if c.L2KiB != 1024 {
			t.Fatalf("%s: override l2-kib=1024 not applied (got %d)", c.Name, c.L2KiB)
		}
		if !strings.Contains(c.Name, "+l2-kib=1024+") {
			t.Fatalf("%s: override missing from canonical name", c.Name)
		}
	}
}

func TestExpandDefaultBase(t *testing.T) {
	cfgs, err := Expand(Spec{Axes: []Axis{{Param: "rob", Values: []string{"64"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 1 || !strings.HasPrefix(cfgs[0].Name, "MediumBOOM+") {
		t.Fatalf("empty base must resolve to MediumBOOM, got %q", cfgs[0].Name)
	}
}

// Widening integer issue must drag the register-file ports up to the
// structural minimum — and never shrink them when narrowing.
func TestIssueWidthRaisesPorts(t *testing.T) {
	wide, err := Expand(Spec{Axes: []Axis{{Param: "int-issue-width", Values: []string{"4"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := wide[0].IntRFReadPorts; got != 10 { // 2*4+2
		t.Errorf("int-issue-width=4: read ports = %d, want 10", got)
	}
	if got := wide[0].IntRFWritePorts; got != 5 { // 4+1
		t.Errorf("int-issue-width=4: write ports = %d, want 5", got)
	}
	narrow, err := Expand(Spec{Axes: []Axis{{Param: "int-issue-width", Values: []string{"1"}}}})
	if err != nil {
		t.Fatal(err)
	}
	base := boom.MediumBOOM()
	if narrow[0].IntRFReadPorts != base.IntRFReadPorts || narrow[0].IntRFWritePorts != base.IntRFWritePorts {
		t.Error("narrowing issue width must not shrink register-file ports")
	}
}

func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"unknown base", Spec{Base: "TinyBOOM"}, "TinyBOOM"},
		{"unknown param", Spec{Axes: []Axis{{Param: "l3-kib", Values: []string{"1"}}}}, "unknown parameter"},
		{"empty axis", Spec{Axes: []Axis{{Param: "rob"}}}, "no values"},
		{"duplicate axis", Spec{Axes: []Axis{
			{Param: "rob", Values: []string{"64"}},
			{Param: "rob", Values: []string{"96"}},
		}}, "listed twice"},
		{"cross-listed", Spec{
			Overrides: []Setting{{"rob", "64"}},
			Axes:      []Axis{{Param: "rob", Values: []string{"96"}}},
		}, "listed twice"},
		{"duplicate value after canon", Spec{Axes: []Axis{
			{Param: "rob", Values: []string{"64", "064"}},
		}}, "repeats value"},
		{"non-integer", Spec{Axes: []Axis{{Param: "rob", Values: []string{"big"}}}}, "positive integer"},
		{"bad predictor", Spec{Axes: []Axis{{Param: "predictor", Values: []string{"perceptron"}}}}, "tage or gshare"},
		{"invalid corner named", Spec{Axes: []Axis{
			{Param: "rob", Values: []string{"2"}}, // < 2*DecodeWidth
		}}, "MediumBOOM+rob=2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Expand(tc.spec)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Expand = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestExpandPointCap(t *testing.T) {
	// 70 × 70 = 4900 > MaxPoints: must refuse before materializing.
	big := make([]string, 70)
	for i := range big {
		big[i] = fmt.Sprint(64 + i)
	}
	_, err := Expand(Spec{Axes: []Axis{
		{Param: "rob", Values: big},
		{Param: "int-iq", Values: big},
	}})
	if err == nil || !strings.Contains(err.Error(), "4096") {
		t.Fatalf("oversized cross product: err = %v, want MaxPoints rejection", err)
	}
	// Exactly at the cap is fine (64 × 64 = 4096).
	at := big[:64]
	cfgs, err := Expand(Spec{Axes: []Axis{
		{Param: "rob", Values: at},
		{Param: "int-iq", Values: at},
	}})
	if err != nil || len(cfgs) != 4096 {
		t.Fatalf("at-cap expansion: %d points, err %v", len(cfgs), err)
	}
}

func TestParseAxes(t *testing.T) {
	axes, err := ParseAxes("rob=64, 96 ;predictor=tage,gshare;")
	if err != nil {
		t.Fatal(err)
	}
	want := []Axis{
		{Param: "rob", Values: []string{"64", "96"}},
		{Param: "predictor", Values: []string{"tage", "gshare"}},
	}
	if !reflect.DeepEqual(axes, want) {
		t.Fatalf("ParseAxes = %+v, want %+v", axes, want)
	}
	for _, bad := range []string{"rob", "=64", "rob="} {
		if _, err := ParseAxes(bad); err == nil {
			t.Errorf("ParseAxes(%q) accepted", bad)
		}
	}
}

func TestParseOverrides(t *testing.T) {
	ovs, err := ParseOverrides("l2-kib=1024;predictor=gshare")
	if err != nil {
		t.Fatal(err)
	}
	want := []Setting{{"l2-kib", "1024"}, {"predictor", "gshare"}}
	if !reflect.DeepEqual(ovs, want) {
		t.Fatalf("ParseOverrides = %+v, want %+v", ovs, want)
	}
	if _, err := ParseOverrides("rob=64,96"); err == nil {
		t.Error("multi-valued override accepted")
	}
}

func TestParamsHelpSurface(t *testing.T) {
	lines := Params()
	if len(lines) != len(params) {
		t.Fatalf("Params() returned %d lines for %d params", len(lines), len(params))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "rob") {
		t.Error("help surface missing rob")
	}
}
