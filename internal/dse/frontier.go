package dse

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file reduces a finished campaign to the paper's real question:
// which design point is efficiency-optimal per workload? Each (workload,
// config) cell contributes a point in the IPC × perf-per-watt plane; the
// Pareto frontier keeps the points no other design dominates, and the
// recommendation is the frontier point with the highest perf-per-watt.
// Everything here is deterministic and wall-clock-free — same cells in,
// same bytes out — matching the serving layer's EncodeSweep contract.

// Cell is one measured (workload, design point) result.
type Cell struct {
	Workload    string
	Config      string
	IPC         float64
	PowerMW     float64
	PerfPerWatt float64
}

// Point is one design point's position in the IPC × perf-per-watt plane.
type Point struct {
	Config      string  `json:"config"`
	IPC         float64 `json:"ipc"`
	PowerMW     float64 `json:"power_mw"`
	PerfPerWatt float64 `json:"perf_per_watt"`
}

// dominates reports whether a beats b: at least as good on both axes and
// strictly better on one.
func dominates(a, b Point) bool {
	return a.IPC >= b.IPC && a.PerfPerWatt >= b.PerfPerWatt &&
		(a.IPC > b.IPC || a.PerfPerWatt > b.PerfPerWatt)
}

// WorkloadFrontier is one workload's Pareto view of the campaign.
type WorkloadFrontier struct {
	Workload string `json:"workload"`
	// Best is the efficiency-optimal design point: the frontier point
	// with the highest perf-per-watt (ties break toward higher IPC, then
	// lexicographically smaller config name).
	Best Point `json:"best"`
	// Points is the Pareto-optimal set, ascending IPC (name-ordered on
	// exact ties). Dominated design points are dropped.
	Points []Point `json:"points"`
}

// Frontiers groups cells by workload (preserving first-seen workload
// order, which for EncodeSweep rows is the campaign's workload order) and
// computes each workload's Pareto frontier. Non-finite metrics are
// clamped to 0 first, so a degenerate cell can never poison a comparison.
func Frontiers(cells []Cell) []WorkloadFrontier {
	order := []string{}
	byWL := map[string][]Point{}
	for _, c := range cells {
		if _, ok := byWL[c.Workload]; !ok {
			order = append(order, c.Workload)
		}
		byWL[c.Workload] = append(byWL[c.Workload], Point{
			Config:      c.Config,
			IPC:         finite(c.IPC),
			PowerMW:     finite(c.PowerMW),
			PerfPerWatt: finite(c.PerfPerWatt),
		})
	}
	out := make([]WorkloadFrontier, 0, len(order))
	for _, wl := range order {
		pts := byWL[wl]
		var frontier []Point
		for i, p := range pts {
			dominated := false
			for j, q := range pts {
				if i != j && (dominates(q, p) ||
					// Exact duplicates on both axes: keep the smaller name.
					(q.IPC == p.IPC && q.PerfPerWatt == p.PerfPerWatt &&
						q.Config < p.Config)) {
					dominated = true
					break
				}
			}
			if !dominated {
				frontier = append(frontier, p)
			}
		}
		sort.Slice(frontier, func(i, j int) bool {
			if frontier[i].IPC != frontier[j].IPC {
				return frontier[i].IPC < frontier[j].IPC
			}
			return frontier[i].Config < frontier[j].Config
		})
		best := frontier[0]
		for _, p := range frontier[1:] {
			switch {
			case p.PerfPerWatt > best.PerfPerWatt:
				best = p
			case p.PerfPerWatt == best.PerfPerWatt && p.IPC > best.IPC:
				best = p
			case p.PerfPerWatt == best.PerfPerWatt && p.IPC == best.IPC &&
				p.Config < best.Config:
				best = p
			}
		}
		out = append(out, WorkloadFrontier{Workload: wl, Best: best, Points: frontier})
	}
	return out
}

// Report is the canonical frontier artifact of one campaign.
type Report struct {
	// Campaign is the campaign fingerprint the frontier was computed
	// from (the boomd job ID), empty for local runs without a cache.
	Campaign string `json:"campaign,omitempty"`
	// DesignPoints is the campaign's expanded design-point count.
	DesignPoints int                `json:"design_points"`
	Workloads    []WorkloadFrontier `json:"workloads"`
}

// EncodeReport renders a frontier report as canonical JSON bytes:
// struct-field key order, one trailing newline, no wall-clock content —
// byte-identical across cold, warm-cached and HTTP-served runs of the
// same campaign.
func EncodeReport(rep *Report) ([]byte, error) {
	b, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FormatReport renders the frontier as a human-readable text table: one
// block per workload, frontier points ascending IPC with the
// recommendation marked. Deterministic like the JSON form.
func FormatReport(rep *Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "design points: %d\n", rep.DesignPoints)
	for _, wf := range rep.Workloads {
		fmt.Fprintf(&sb, "\n%s — efficiency-optimal: %s (IPC %.3f, %.1f IPC/W)\n",
			wf.Workload, wf.Best.Config, wf.Best.IPC, wf.Best.PerfPerWatt)
		fmt.Fprintf(&sb, "  %-52s %8s %10s %10s\n", "pareto frontier", "IPC", "mW", "IPC/W")
		for _, p := range wf.Points {
			mark := " "
			if p.Config == wf.Best.Config {
				mark = "*"
			}
			fmt.Fprintf(&sb, "  %s %-50s %8.3f %10.2f %10.1f\n",
				mark, p.Config, p.IPC, p.PowerMW, p.PerfPerWatt)
		}
	}
	return sb.String()
}

func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
