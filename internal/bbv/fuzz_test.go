package bbv

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseBBV checks that ReadBB never panics, and that any input it
// accepts survives a write → read round-trip losslessly: the reparsed
// vectors are deeply equal and the re-written bytes are a fixpoint.
func FuzzParseBBV(f *testing.F) {
	f.Add([]byte("T:1:100 :2:50 \nT:3:7 \n"))
	f.Add([]byte("T:1:9007199254740992 \n"))
	f.Add([]byte("# comment\n\nT:5:1 \n"))
	f.Add([]byte("T:1:1 :1:2 \n"))
	f.Add([]byte("garbage"))
	f.Add([]byte("T:0:1 \n"))
	f.Add([]byte("T:1:-1 \n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		vectors, err := ReadBB(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, not panic
		}
		var out bytes.Buffer
		if err := WriteBB(&out, vectors); err != nil {
			t.Fatalf("WriteBB on parsed input: %v", err)
		}
		again, err := ReadBB(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reparse of written output: %v\noutput:\n%s", err, out.Bytes())
		}
		if !reflect.DeepEqual(vectors, again) {
			t.Fatalf("round-trip changed vectors:\nfirst:  %v\nsecond: %v", vectors, again)
		}
		var out2 bytes.Buffer
		if err := WriteBB(&out2, again); err != nil {
			t.Fatalf("second WriteBB: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("write is not a fixpoint:\nfirst:  %q\nsecond: %q", out.Bytes(), out2.Bytes())
		}
	})
}

// TestReadBBHardening pins down the malformed inputs the fuzzer surfaced
// (and the invariants behind them): every case must return an error
// mentioning the offending construct — never panic, never silently accept.
func TestReadBBHardening(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"missing marker", "X:1:2 \n", "missing T marker"},
		{"bad field arity", "T:1:2:3 \n", "bad field"},
		{"zero block id", "T:0:5 \n", "bad block id"},
		{"negative block id", "T:-1:5 \n", "bad block id"},
		{"non-numeric block", "T:a:5 \n", "bad block id"},
		{"negative count", "T:1:-5 \n", "bad count"},
		{"non-numeric count", "T:1:x \n", "bad count"},
		{"float count", "T:1:1.5 \n", "bad count"},
		{"count int64 overflow", "T:1:99999999999999999999 \n", "bad count"},
		{"count above 2^53", "T:1:9007199254740993 \n", "exceeds float64"},
		{"duplicate block", "T:1:2 :1:3 \n", "duplicate block id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBB(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ReadBB(%q) accepted malformed input", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ReadBB(%q) error %q, want it to mention %q", tc.in, err, tc.wantErr)
			}
		})
	}

	// The exact-range boundary itself is legal.
	v, err := ReadBB(strings.NewReader("T:1:9007199254740992 \n"))
	if err != nil {
		t.Fatalf("ReadBB rejected count 2^53: %v", err)
	}
	if got := v[0][0]; got != 9007199254740992 {
		t.Fatalf("count 2^53 parsed as %v", got)
	}
}
