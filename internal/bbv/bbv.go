// Package bbv builds Basic Block Vectors from the committed instruction
// stream, playing the role gem5 plays in the paper's SimPoint flow (Fig. 4):
// execution is split into fixed-size intervals, and each interval is
// summarized by how many dynamic instructions it spent in each static basic
// block.
//
// Basic blocks are discovered dynamically: a block begins at the target of
// any control transfer (or the program entry) and ends at the next control
// transfer instruction. Each retired instruction adds one unit of weight to
// its enclosing block, so a block's weight is execution count × block
// length, exactly the quantity the SimPoint methodology clusters on.
package bbv

import (
	"repro/internal/sim"
)

// Vector maps basic-block ID to the number of dynamic instructions the
// interval spent in that block.
type Vector map[int]float64

// Total returns the sum of all weights (the interval length, for complete
// intervals).
func (v Vector) Total() float64 {
	var t float64
	for _, w := range v {
		t += w
	}
	return t
}

// Profiler accumulates BBVs over a run. Feed it every retired instruction
// via Observe, then call Finish once.
type Profiler struct {
	interval int64

	ids     map[uint64]int // block start PC → block ID
	current Vector
	count   int64
	blockID int  // block being executed
	inBlock bool // whether blockID is valid

	vectors []Vector
	starts  []uint64 // per-interval start PC (checkpoint anchor)
	pending uint64   // start PC of the next interval
	havePC  bool
}

// NewProfiler returns a profiler with the given interval size in
// instructions. Interval sizes of 1M–2M instructions correspond to the
// paper's Table II; scaled-down runs use proportionally smaller intervals.
func NewProfiler(intervalSize int64) *Profiler {
	return &Profiler{
		interval: intervalSize,
		ids:      make(map[uint64]int),
		current:  make(Vector),
	}
}

// Observe processes one retired instruction.
func (p *Profiler) Observe(r *sim.Retired) {
	if !p.havePC {
		p.pending = r.PC
		p.havePC = true
	}
	if !p.inBlock {
		id, ok := p.ids[r.PC]
		if !ok {
			id = len(p.ids)
			p.ids[r.PC] = id
		}
		p.blockID = id
		p.inBlock = true
	}
	p.current[p.blockID]++
	p.count++

	// A control-flow instruction (taken or not) ends the block: the next
	// instruction starts a new one keyed by its own PC.
	if r.Inst.Op.IsBranchOrJump() {
		p.inBlock = false
	}

	if p.count >= p.interval {
		p.flush(r.NextPC)
	}
}

func (p *Profiler) flush(nextPC uint64) {
	p.vectors = append(p.vectors, p.current)
	p.starts = append(p.starts, p.pending)
	p.pending = nextPC
	p.current = make(Vector)
	p.count = 0
	p.inBlock = false
}

// Finish closes the trailing partial interval (if it contains at least one
// instruction). Call after the traced run completes.
func (p *Profiler) Finish() {
	if p.count > 0 {
		p.flush(0)
	}
}

// Vectors returns one BBV per interval, in execution order.
func (p *Profiler) Vectors() []Vector { return p.vectors }

// IntervalStarts returns the PC at which each interval begins; interval i
// starts at instruction i×interval of the committed stream.
func (p *Profiler) IntervalStarts() []uint64 { return p.starts }

// NumBlocks reports how many static basic blocks were discovered.
func (p *Profiler) NumBlocks() int { return len(p.ids) }

// IntervalSize returns the configured interval length.
func (p *Profiler) IntervalSize() int64 { return p.interval }
