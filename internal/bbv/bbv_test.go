package bbv

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/sim"
)

func traceProgram(t *testing.T, src string, interval int64) *Profiler {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := sim.New()
	c.Load(prog)
	p := NewProfiler(interval)
	if _, err := c.RunTrace(-1, p.Observe); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Fatal("program did not halt")
	}
	p.Finish()
	return p
}

// twoPhase runs phase A (tight 2-inst loop) then phase B (different 4-inst
// loop), each for many iterations.
const twoPhase = `
	.text
	li t0, 3000
phaseA:
	addi t0, t0, -1
	bnez t0, phaseA
	li t0, 1500
phaseB:
	addi t1, t1, 1
	addi t2, t2, 2
	addi t0, t0, -1
	bnez t0, phaseB
	li a7, 93
	ecall
`

func TestIntervalCount(t *testing.T) {
	p := traceProgram(t, twoPhase, 1000)
	// ~6000 (A) + ~6000 (B) + small tails ≈ 12 intervals
	n := len(p.Vectors())
	if n < 11 || n > 14 {
		t.Fatalf("got %d intervals", n)
	}
	// Every complete interval must sum to the interval size.
	for i, v := range p.Vectors()[:n-1] {
		if v.Total() != 1000 {
			t.Errorf("interval %d total %v", i, v.Total())
		}
	}
}

func TestPhaseSeparation(t *testing.T) {
	p := traceProgram(t, twoPhase, 1000)
	vs := p.Vectors()
	// Blocks exercised early (phase A) must be disjoint from the blocks that
	// dominate late intervals (phase B).
	early, late := vs[1], vs[len(vs)-2]
	shared := 0.0
	for b, w := range early {
		if w2, ok := late[b]; ok {
			if w < w2 {
				shared += w
			} else {
				shared += w2
			}
		}
	}
	if shared > 50 { // at most noise from loop prologues
		t.Fatalf("phases share %v instructions of weight", shared)
	}
}

func TestBlockDiscovery(t *testing.T) {
	p := traceProgram(t, twoPhase, 1000)
	// Expected blocks: entry..bnez(A), phaseA loop body, li..bnez(B) after A,
	// phaseB body, exit block. Allow some slack for li expansions.
	if n := p.NumBlocks(); n < 4 || n > 8 {
		t.Fatalf("discovered %d blocks", n)
	}
}

func TestIntervalStartsAlignment(t *testing.T) {
	p := traceProgram(t, twoPhase, 1000)
	starts := p.IntervalStarts()
	if len(starts) != len(p.Vectors()) {
		t.Fatalf("starts/vectors length mismatch: %d vs %d", len(starts), len(p.Vectors()))
	}
	if starts[0] != asm.DefaultTextBase {
		t.Errorf("first interval starts at %#x", starts[0])
	}
}

func TestPartialFinalInterval(t *testing.T) {
	p := traceProgram(t, `
		.text
		li t0, 10
	l:
		addi t0, t0, -1
		bnez t0, l
		li a7, 93
		ecall
	`, 1000)
	vs := p.Vectors()
	if len(vs) != 1 {
		t.Fatalf("got %d intervals, want 1 partial", len(vs))
	}
	if vs[0].Total() >= 1000 || vs[0].Total() < 20 {
		t.Fatalf("partial interval total %v", vs[0].Total())
	}
}
