package bbv

import (
	"bytes"
	"strings"
	"testing"
)

func TestBBRoundTrip(t *testing.T) {
	vecs := []Vector{
		{0: 500, 3: 250, 7: 250},
		{1: 1000},
		{0: 10, 1: 20, 2: 30, 3: 40},
	}
	var buf bytes.Buffer
	if err := WriteBB(&buf, vecs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vecs) {
		t.Fatalf("got %d vectors, want %d", len(got), len(vecs))
	}
	for i := range vecs {
		if len(got[i]) != len(vecs[i]) {
			t.Fatalf("vector %d: %d blocks, want %d", i, len(got[i]), len(vecs[i]))
		}
		for b, w := range vecs[i] {
			if got[i][b] != w {
				t.Errorf("vector %d block %d: %v want %v", i, b, got[i][b], w)
			}
		}
	}
}

func TestBBFormatShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBB(&buf, []Vector{{0: 7, 4: 3}}); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	// SimPoint 3.0 format: T:<1-based id>:<count> pairs.
	if line != "T:1:7 :5:3" {
		t.Fatalf("unexpected .bb line %q", line)
	}
}

func TestReadBBRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"X:1:2", "T:0:5", "T:1:-2", "T:a:b", "T:1"} {
		if _, err := ReadBB(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
	// Comments and blank lines are fine.
	got, err := ReadBB(strings.NewReader("# header\n\nT:1:5 \n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("comment handling: %v %d", err, len(got))
	}
}
