package bbv

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the frequency-vector file format of the original
// SimPoint 3.0 tool ("T:<block>:<count> :<block>:<count> ..." per interval,
// with 1-based block IDs), so profiles produced here can be fed to the
// reference SimPoint binary and vice versa.

// WriteBB writes vectors in SimPoint .bb format.
func WriteBB(w io.Writer, vectors []Vector) error {
	bw := bufio.NewWriter(w)
	for _, v := range vectors {
		blocks := make([]int, 0, len(v))
		for b := range v {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		if _, err := bw.WriteString("T"); err != nil {
			return err
		}
		for _, b := range blocks {
			if _, err := fmt.Fprintf(bw, ":%d:%d ", b+1, int64(v[b])); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxExactCount is the largest execution count accepted by ReadBB. Vector
// stores counts as float64, which is exact only up to 2^53; larger counts
// would silently lose precision and break write→read round-trips.
const maxExactCount = int64(1) << 53

// ReadBB parses a SimPoint .bb stream back into vectors. Malformed input
// returns an error; it never panics or silently drops information
// (duplicate block IDs in one interval and counts beyond float64's exact
// integer range are rejected rather than merged or rounded).
func ReadBB(r io.Reader) ([]Vector, error) {
	var out []Vector
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "T") {
			return nil, fmt.Errorf("bbv: line %d: missing T marker", lineNo)
		}
		v := Vector{}
		for _, field := range strings.Fields(line[1:]) {
			parts := strings.Split(strings.TrimPrefix(field, ":"), ":")
			if len(parts) != 2 {
				return nil, fmt.Errorf("bbv: line %d: bad field %q", lineNo, field)
			}
			block, err := strconv.Atoi(parts[0])
			if err != nil || block < 1 {
				return nil, fmt.Errorf("bbv: line %d: bad block id %q", lineNo, parts[0])
			}
			count, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil || count < 0 {
				return nil, fmt.Errorf("bbv: line %d: bad count %q", lineNo, parts[1])
			}
			if count > maxExactCount {
				return nil, fmt.Errorf("bbv: line %d: count %d exceeds float64's exact range", lineNo, count)
			}
			if _, dup := v[block-1]; dup {
				return nil, fmt.Errorf("bbv: line %d: duplicate block id %d", lineNo, block)
			}
			v[block-1] = float64(count)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
