// Package mem provides the sparse 64-bit physical memory shared by the
// functional simulator, the checkpoint machinery and the workload loaders.
// Memory is allocated lazily in fixed-size pages so that multi-gigabyte
// address spaces with a few megabytes of live data stay cheap, and so that
// checkpoints serialize only the touched pages.
package mem

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// PageBits is the log2 of the page size. 4 KiB pages match what the
// checkpointing flow in the paper's Chipyard setup serializes.
const PageBits = 12

// PageSize is the byte size of one lazily allocated page.
const PageSize = 1 << PageBits

const pageMask = PageSize - 1

// Memory is a sparse byte-addressable memory. The zero value is not usable;
// call New.
type Memory struct {
	pages map[uint64]*[PageSize]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[PageSize]byte {
	key := addr >> PageBits
	p := m.pages[key]
	if p == nil && create {
		p = new([PageSize]byte)
		m.pages[key] = p
	}
	return p
}

// ByteAt returns the byte at addr (0 for untouched memory).
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte stores one byte at addr.
func (m *Memory) SetByte(addr uint64, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read returns size bytes starting at addr as a little-endian unsigned
// value. size must be 1, 2, 4 or 8. Accesses may straddle page boundaries.
func (m *Memory) Read(addr uint64, size int) uint64 {
	// Fast path: access within one page.
	off := addr & pageMask
	if off+uint64(size) <= PageSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores size bytes of v at addr, little-endian.
func (m *Memory) Write(addr uint64, size int, v uint64) {
	off := addr & pageMask
	if off+uint64(size) <= PageSize {
		p := m.page(addr, true)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// Read64 is shorthand for an 8-byte read.
func (m *Memory) Read64(addr uint64) uint64 { return m.Read(addr, 8) }

// Write64 is shorthand for an 8-byte write.
func (m *Memory) Write64(addr uint64, v uint64) { m.Write(addr, 8, v) }

// Read32 is shorthand for a 4-byte read (instruction fetch).
func (m *Memory) Read32(addr uint64) uint32 { return uint32(m.Read(addr, 4)) }

// SetBytes copies b into memory starting at addr.
func (m *Memory) SetBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		off := addr & pageMask
		n := PageSize - off
		if uint64(len(b)) < n {
			n = uint64(len(b))
		}
		copy(m.page(addr, true)[off:off+n], b[:n])
		addr += n
		b = b[n:]
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.ByteAt(addr + uint64(i))
	}
	return out
}

// PageCount reports how many pages have been touched.
func (m *Memory) PageCount() int { return len(m.pages) }

// Footprint reports the number of bytes of allocated backing store.
func (m *Memory) Footprint() int64 { return int64(len(m.pages)) * PageSize }

// Clone returns a deep copy, used to fork a pristine workload image for
// multiple simulations.
func (m *Memory) Clone() *Memory {
	c := New()
	for k, p := range m.pages {
		np := new([PageSize]byte)
		*np = *p
		c.pages[k] = np
	}
	return c
}

// Serialize writes the touched pages to w in a deterministic order. The
// format is: uint64 page count, then per page a uint64 page index followed
// by PageSize raw bytes.
func (m *Memory) Serialize(w io.Writer) error {
	keys := make([]uint64, 0, len(m.pages))
	for k := range m.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(keys)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, k := range keys {
		binary.LittleEndian.PutUint64(hdr[:], k)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(m.pages[k][:]); err != nil {
			return err
		}
	}
	return nil
}

// Deserialize replaces the contents of m with pages read from r, in the
// format produced by Serialize.
func (m *Memory) Deserialize(r io.Reader) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("mem: reading page count: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > 1<<24 {
		return fmt.Errorf("mem: unreasonable page count %d", n)
	}
	m.pages = make(map[uint64]*[PageSize]byte, n)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return fmt.Errorf("mem: reading page %d index: %w", i, err)
		}
		key := binary.LittleEndian.Uint64(hdr[:])
		p := new([PageSize]byte)
		if _, err := io.ReadFull(r, p[:]); err != nil {
			return fmt.Errorf("mem: reading page %d data: %w", i, err)
		}
		m.pages[key] = p
	}
	return nil
}
