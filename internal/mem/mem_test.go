package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadWriteWidths(t *testing.T) {
	m := New()
	m.Write(0x1000, 8, 0x1122334455667788)
	if got := m.Read(0x1000, 8); got != 0x1122334455667788 {
		t.Fatalf("read64: %#x", got)
	}
	if got := m.Read(0x1000, 4); got != 0x55667788 {
		t.Fatalf("read32: %#x", got)
	}
	if got := m.Read(0x1004, 4); got != 0x11223344 {
		t.Fatalf("read32 hi: %#x", got)
	}
	if got := m.Read(0x1000, 2); got != 0x7788 {
		t.Fatalf("read16: %#x", got)
	}
	if got := m.Read(0x1007, 1); got != 0x11 {
		t.Fatalf("read8: %#x", got)
	}
}

func TestUntouchedMemoryReadsZero(t *testing.T) {
	m := New()
	if m.Read(0xDEADBEEF000, 8) != 0 {
		t.Fatal("untouched memory should be zero")
	}
	if m.PageCount() != 0 {
		t.Fatal("reads must not allocate pages")
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(2*PageSize - 3) // straddles a page boundary
	m.Write(addr, 8, 0xA1B2C3D4E5F60718)
	if got := m.Read(addr, 8); got != 0xA1B2C3D4E5F60718 {
		t.Fatalf("cross-page read: %#x", got)
	}
	if m.PageCount() != 2 {
		t.Fatalf("expected 2 pages, got %d", m.PageCount())
	}
}

func TestSetBytesAndReadBytes(t *testing.T) {
	m := New()
	data := make([]byte, 3*PageSize+17)
	rng := rand.New(rand.NewSource(7))
	rng.Read(data)
	base := uint64(0x80001234)
	m.SetBytes(base, data)
	if got := m.ReadBytes(base, len(data)); !bytes.Equal(got, data) {
		t.Fatal("SetBytes/ReadBytes mismatch")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.Write64(0x100, 42)
	c := m.Clone()
	c.Write64(0x100, 99)
	if m.Read64(0x100) != 42 {
		t.Fatal("clone mutated the original")
	}
	if c.Read64(0x100) != 99 {
		t.Fatal("clone lost its own write")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(3))
	addrs := make([]uint64, 200)
	for i := range addrs {
		addrs[i] = uint64(rng.Int63n(1 << 40))
		m.Write64(addrs[i], rng.Uint64())
	}
	var buf bytes.Buffer
	if err := m.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := New()
	if err := m2.Deserialize(&buf); err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if m.Read64(a) != m2.Read64(a) {
			t.Fatalf("mismatch at %#x", a)
		}
	}
	if m.PageCount() != m2.PageCount() {
		t.Fatalf("page counts differ: %d vs %d", m.PageCount(), m2.PageCount())
	}
}

func TestDeserializeRejectsTruncated(t *testing.T) {
	m := New()
	m.Write64(0, 1)
	var buf bytes.Buffer
	if err := m.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if err := New().Deserialize(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}

// Property: a write of any width followed by a read of the same width at the
// same address returns the written value masked to that width.
func TestWriteReadProperty(t *testing.T) {
	f := func(addr uint64, v uint64, sizeSel uint8) bool {
		m := New()
		size := 1 << (sizeSel % 4) // 1,2,4,8
		addr &= (1 << 44) - 1
		m.Write(addr, size, v)
		want := v
		if size < 8 {
			want &= 1<<(8*size) - 1
		}
		return m.Read(addr, size) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: non-overlapping byte writes do not interfere.
func TestDisjointWritesProperty(t *testing.T) {
	f := func(a, b uint64, va, vb byte) bool {
		a &= (1 << 40) - 1
		b &= (1 << 40) - 1
		if a == b {
			return true
		}
		m := New()
		m.SetByte(a, va)
		m.SetByte(b, vb)
		return m.ByteAt(a) == va && m.ByteAt(b) == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
