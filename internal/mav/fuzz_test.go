package mav

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzParseMAV mirrors bbv's FuzzParseBBV: ReadMAV never panics, and any
// input it accepts survives a write → read round-trip losslessly — the
// reparsed vectors are deeply equal and the re-written bytes are a
// fixpoint.
func FuzzParseMAV(f *testing.F) {
	f.Add([]byte("M:1:100 :2:50 \nM:8:7 \n"))
	f.Add([]byte("M:1:9007199254740992 \n"))
	f.Add([]byte("# comment\n\nM:5:1 \n"))
	f.Add([]byte("M:1:1 :1:2 \n"))
	f.Add([]byte("garbage"))
	f.Add([]byte("M:0:1 \n"))
	f.Add([]byte("M:9:1 \n"))
	f.Add([]byte("M:1:-1 \n"))
	f.Add([]byte("M:1:NaN \n"))
	f.Add([]byte("M\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		vectors, err := ReadMAV(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, not panic
		}
		var out bytes.Buffer
		if err := WriteMAV(&out, vectors); err != nil {
			t.Fatalf("WriteMAV on parsed input: %v", err)
		}
		again, err := ReadMAV(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reparse of written output: %v\noutput:\n%s", err, out.Bytes())
		}
		if len(again) != len(vectors) || (len(vectors) > 0 && !reflect.DeepEqual(vectors, again)) {
			t.Fatalf("round-trip changed vectors:\nfirst:  %v\nsecond: %v", vectors, again)
		}
		var out2 bytes.Buffer
		if err := WriteMAV(&out2, again); err != nil {
			t.Fatalf("second WriteMAV: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("write is not a fixpoint:\nfirst:  %q\nsecond: %q", out.Bytes(), out2.Bytes())
		}
	})
}
