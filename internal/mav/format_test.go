package mav

import (
	"bytes"
	"strings"
	"testing"
)

func TestMAVRoundTrip(t *testing.T) {
	vecs := []Vector{
		{FeatLoads: 500, FeatStores: 250, FeatReuseHits: 250},
		{FeatLoads: 1000},
		{},
		{FeatLoads: 10, FeatStores: 20, FeatUniqueLines: 30, FeatLargeStride: 40},
	}
	var buf bytes.Buffer
	if err := WriteMAV(&buf, vecs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vecs) {
		t.Fatalf("got %d vectors, want %d", len(got), len(vecs))
	}
	for i := range vecs {
		if got[i] != vecs[i] {
			t.Errorf("vector %d: %v want %v", i, got[i], vecs[i])
		}
	}
}

func TestMAVFormatShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMAV(&buf, []Vector{{FeatLoads: 7, FeatReuseHits: 3}}); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	// .bb-shaped: M:<1-based feature>:<count> pairs, zero features omitted.
	if line != "M:1:7 :8:3" {
		t.Fatalf("unexpected .mav line %q", line)
	}
}

// TestReadMAVHardening mirrors TestReadBBHardening: every malformed
// construct must return an error mentioning it — never panic, never
// silently accept.
func TestReadMAVHardening(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"missing marker", "T:1:2 \n", "missing M marker"},
		{"bad field arity", "M:1:2:3 \n", "bad field"},
		{"zero feature index", "M:0:5 \n", "bad feature index"},
		{"negative feature index", "M:-1:5 \n", "bad feature index"},
		{"index above NumFeatures", "M:9:5 \n", "bad feature index"},
		{"non-numeric index", "M:a:5 \n", "bad feature index"},
		{"negative count", "M:1:-5 \n", "bad count"},
		{"non-numeric count", "M:1:x \n", "bad count"},
		{"float count", "M:1:1.5 \n", "bad count"},
		{"NaN count", "M:1:NaN \n", "bad count"},
		{"Inf count", "M:1:+Inf \n", "bad count"},
		{"count int64 overflow", "M:1:99999999999999999999 \n", "bad count"},
		{"count above 2^53", "M:1:9007199254740993 \n", "exceeds float64"},
		{"duplicate feature", "M:1:2 :1:3 \n", "duplicate feature index"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadMAV(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ReadMAV(%q) accepted malformed input", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ReadMAV(%q) error %q, want it to mention %q", tc.in, err, tc.wantErr)
			}
		})
	}

	// The exact-range boundary itself is legal, as are comments/blanks.
	v, err := ReadMAV(strings.NewReader("# header\n\nM:1:9007199254740992 \n"))
	if err != nil {
		t.Fatalf("ReadMAV rejected count 2^53: %v", err)
	}
	if got := v[0][FeatLoads]; got != 9007199254740992 {
		t.Fatalf("count 2^53 parsed as %v", got)
	}
}
