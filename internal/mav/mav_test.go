package mav

import (
	"testing"

	"repro/internal/rv64"
	"repro/internal/sim"
)

func load(addr uint64) *sim.Retired {
	return &sim.Retired{Inst: rv64.Inst{Op: rv64.LD}, MemAddr: addr}
}

func store(addr uint64) *sim.Retired {
	return &sim.Retired{Inst: rv64.Inst{Op: rv64.SD}, MemAddr: addr}
}

func alu() *sim.Retired {
	return &sim.Retired{Inst: rv64.Inst{Op: rv64.ADD}}
}

func TestProfilerCounts(t *testing.T) {
	p := NewProfiler(8)
	// Interval 1: two loads to the same line, a store one line up, an
	// ALU op, a load 4 lines up, a load 100 lines up, then filler.
	p.Observe(load(0x1000))
	p.Observe(load(0x1008))  // same 64B line as 0x1000
	p.Observe(store(0x1040)) // +1 line
	p.Observe(alu())
	p.Observe(load(0x1140)) // +4 lines
	p.Observe(load(0x2c40)) // +92 lines
	p.Observe(alu())
	p.Observe(alu()) // 8th instruction flushes
	vs := p.Vectors()
	if len(vs) != 1 {
		t.Fatalf("got %d vectors, want 1", len(vs))
	}
	v := vs[0]
	if v[FeatLoads] != 4 || v[FeatStores] != 1 {
		t.Fatalf("loads/stores = %v/%v, want 4/1", v[FeatLoads], v[FeatStores])
	}
	if v[FeatUniqueLines] != 4 {
		t.Fatalf("unique lines = %v, want 4", v[FeatUniqueLines])
	}
	if v[FeatSameLine] != 1 || v[FeatNearStride] != 1 || v[FeatSmallStride] != 1 || v[FeatLargeStride] != 1 {
		t.Fatalf("strides same/near/small/large = %v/%v/%v/%v, want 1/1/1/1",
			v[FeatSameLine], v[FeatNearStride], v[FeatSmallStride], v[FeatLargeStride])
	}
	// 0x1008 hit the line inserted by 0x1000.
	if v[FeatReuseHits] != 1 {
		t.Fatalf("reuse hits = %v, want 1", v[FeatReuseHits])
	}
}

func TestIntervalBoundariesMatchBBV(t *testing.T) {
	// The profiler counts every retired instruction, so vector count
	// follows total instructions / interval regardless of memory mix.
	p := NewProfiler(4)
	for i := 0; i < 10; i++ {
		if i%3 == 0 {
			p.Observe(load(uint64(i) * 64))
		} else {
			p.Observe(alu())
		}
	}
	p.Finish()
	if got := len(p.Vectors()); got != 3 { // 4 + 4 + trailing 2
		t.Fatalf("got %d vectors, want 3", got)
	}
	// State does not leak across the boundary: the same line again in a
	// new interval is a fresh unique line, not a reuse hit or zero stride.
	p2 := NewProfiler(1)
	p2.Observe(load(0x1000))
	p2.Observe(load(0x1000))
	vs := p2.Vectors()
	if len(vs) != 2 {
		t.Fatalf("got %d vectors, want 2", len(vs))
	}
	for i, v := range vs {
		if v[FeatUniqueLines] != 1 || v[FeatReuseHits] != 0 || v[FeatSameLine] != 0 {
			t.Fatalf("interval %d: unique/reuse/same = %v/%v/%v, want 1/0/0 (state leaked)", i,
				v[FeatUniqueLines], v[FeatReuseHits], v[FeatSameLine])
		}
	}
}

func TestReuseWindowEvicts(t *testing.T) {
	p := NewProfiler(1 << 20)
	// Touch reuseWindow+1 distinct lines, then re-touch the first: it
	// must have been evicted (FIFO), so no reuse hit for it.
	for i := 0; i <= reuseWindow; i++ {
		p.Observe(load(uint64(i) << lineShift))
	}
	p.Observe(load(0))
	p.Finish()
	v := p.Vectors()[0]
	if v[FeatReuseHits] != 0 {
		t.Fatalf("reuse hits = %v, want 0 (line 0 evicted)", v[FeatReuseHits])
	}
	// But the most recent line is still resident.
	p2 := NewProfiler(1 << 20)
	for i := 0; i <= reuseWindow; i++ {
		p2.Observe(load(uint64(i) << lineShift))
	}
	p2.Observe(load(uint64(reuseWindow) << lineShift))
	p2.Finish()
	if got := p2.Vectors()[0][FeatReuseHits]; got != 1 {
		t.Fatalf("reuse hits = %v, want 1", got)
	}
}

func TestFinishOnEmpty(t *testing.T) {
	p := NewProfiler(100)
	p.Finish()
	if len(p.Vectors()) != 0 {
		t.Fatal("empty run produced vectors")
	}
	if p.IntervalSize() != 100 {
		t.Fatalf("IntervalSize = %d", p.IntervalSize())
	}
}

func TestVectorTotal(t *testing.T) {
	v := Vector{1, 2, 3}
	if v.Total() != 6 {
		t.Fatalf("Total = %v, want 6", v.Total())
	}
}
