package mav

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a text format for MAV streams deliberately shaped
// like SimPoint's .bb frequency-vector format (see internal/bbv/format.go):
// one line per interval, "M:<feature>:<count> " fields with 1-based
// feature indices, zero-count features omitted. The M marker keeps the
// two formats from being confused for one another.

// maxExactCount is the largest count accepted by ReadMAV. Vector stores
// counts as float64, which is exact only up to 2^53; larger counts would
// silently lose precision and break write→read round-trips.
const maxExactCount = int64(1) << 53

// WriteMAV writes vectors in the .mav format.
func WriteMAV(w io.Writer, vectors []Vector) error {
	bw := bufio.NewWriter(w)
	for _, v := range vectors {
		if _, err := bw.WriteString("M"); err != nil {
			return err
		}
		for f, c := range v {
			if c == 0 {
				continue
			}
			if _, err := fmt.Fprintf(bw, ":%d:%d ", f+1, int64(c)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMAV parses a .mav stream back into vectors. Malformed input
// returns an error; it never panics or silently drops information
// (duplicate feature indices, indices outside [1, NumFeatures], negative
// counts, and counts beyond float64's exact integer range are rejected
// rather than merged or rounded).
func ReadMAV(r io.Reader) ([]Vector, error) {
	var out []Vector
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "M") {
			return nil, fmt.Errorf("mav: line %d: missing M marker", lineNo)
		}
		var v Vector
		seen := [NumFeatures]bool{}
		for _, field := range strings.Fields(line[1:]) {
			parts := strings.Split(strings.TrimPrefix(field, ":"), ":")
			if len(parts) != 2 {
				return nil, fmt.Errorf("mav: line %d: bad field %q", lineNo, field)
			}
			feat, err := strconv.Atoi(parts[0])
			if err != nil || feat < 1 || feat > NumFeatures {
				return nil, fmt.Errorf("mav: line %d: bad feature index %q", lineNo, parts[0])
			}
			count, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil || count < 0 {
				return nil, fmt.Errorf("mav: line %d: bad count %q", lineNo, parts[1])
			}
			if count > maxExactCount {
				return nil, fmt.Errorf("mav: line %d: count %d exceeds float64's exact range", lineNo, count)
			}
			if seen[feat-1] {
				return nil, fmt.Errorf("mav: line %d: duplicate feature index %d", lineNo, feat)
			}
			seen[feat-1] = true
			v[feat-1] = float64(count)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
