// Package mav builds Memory Access Vectors from the committed
// instruction stream: per-interval summaries of cache-line stride and
// reuse behavior that capture what Basic Block Vectors cannot. Two
// intervals can execute identical code (identical BBVs) while one
// streams through a multi-hundred-kilobyte working set and the other
// hits a hot cache-resident structure; BBV-only SimPoint clustering
// merges them and mis-samples memory-bound phases. Following the
// "Memory Access Vectors" result (Caculo et al., PAPERS.md), each
// interval is summarized by a small fixed-dimension feature vector the
// clusterer concatenates onto the projected BBV point.
//
// The profiler counts every retired instruction — not just memory ops —
// so its interval boundaries land on exactly the same committed-stream
// offsets as bbv.Profiler's. Vector i here and BBV i describe the same
// instructions.
package mav

import (
	"repro/internal/rv64"
	"repro/internal/sim"
)

// lineShift converts an effective address to a 64-byte cache-line index,
// the granularity at which stride and reuse are classified.
const lineShift = 6

// reuseWindow is the capacity of the per-interval recency set used for
// the near-reuse feature: an access whose line is among the last
// reuseWindow distinct lines inserted counts as a reuse hit. 64 lines
// (4 KiB) approximates an L1 set's worth of short-term locality without
// modeling any concrete cache. The window evicts FIFO rather than LRU —
// O(1) per access, which matters in a per-instruction callback, and
// just as deterministic.
const reuseWindow = 64

// Feature indices of a Vector. The dimensionality is fixed: unlike
// BBVs, whose block space grows with the program, MAV features are a
// closed taxonomy of access behavior.
const (
	FeatLoads       = iota // retired loads
	FeatStores             // retired stores
	FeatUniqueLines        // distinct cache lines touched this interval
	FeatSameLine           // accesses to the same line as the previous access
	FeatNearStride         // line stride of ±1 (sequential streaming)
	FeatSmallStride        // line stride in [2, 8] (strided array walks)
	FeatLargeStride        // line stride > 8 (pointer chasing, big jumps)
	FeatReuseHits          // accesses whose line is in the recent-64 window

	NumFeatures = 8
)

// Vector is one interval's memory-access summary. Counts are exact
// integers stored as float64 (bounded by the interval length, far below
// float64's 2^53 exact range).
type Vector [NumFeatures]float64

// Total returns the sum of all feature counts.
func (v Vector) Total() float64 {
	var t float64
	for _, c := range v {
		t += c
	}
	return t
}

// Profiler accumulates MAVs over a run. Feed it every retired
// instruction via Observe — the same stream, in the same order, as the
// BBV profiler — then call Finish once.
type Profiler struct {
	interval int64
	count    int64 // all retired instructions this interval

	current  Vector
	haveLast bool
	lastLine uint64

	// Per-interval distinct-line set (FeatUniqueLines). Bounded by the
	// number of memory ops in one interval.
	lines map[uint64]struct{}

	// Deterministic recency set for FeatReuseHits: the last reuseWindow
	// distinct lines, evicted FIFO via a ring buffer.
	recent  map[uint64]struct{}
	ring    [reuseWindow]uint64
	ringLen int
	ringPos int

	vectors []Vector
}

// NewProfiler returns a profiler with the given interval size in
// instructions. Use the same interval as the paired bbv.Profiler so the
// two vector streams stay index-aligned.
func NewProfiler(intervalSize int64) *Profiler {
	p := &Profiler{interval: intervalSize}
	p.reset()
	return p
}

func (p *Profiler) reset() {
	p.current = Vector{}
	p.haveLast = false
	p.lastLine = 0
	p.lines = make(map[uint64]struct{})
	p.recent = make(map[uint64]struct{}, reuseWindow)
	p.ringLen = 0
	p.ringPos = 0
}

// Observe processes one retired instruction. Non-memory instructions
// only advance the interval counter.
func (p *Profiler) Observe(r *sim.Retired) {
	switch r.Inst.Op.Class() {
	case rv64.ClassLoad:
		p.current[FeatLoads]++
		p.access(r.MemAddr >> lineShift)
	case rv64.ClassStore:
		p.current[FeatStores]++
		p.access(r.MemAddr >> lineShift)
	}
	p.count++
	if p.count >= p.interval {
		p.flush()
	}
}

func (p *Profiler) access(line uint64) {
	if _, seen := p.lines[line]; !seen {
		p.lines[line] = struct{}{}
		p.current[FeatUniqueLines]++
	}
	if p.haveLast {
		var stride uint64
		if line >= p.lastLine {
			stride = line - p.lastLine
		} else {
			stride = p.lastLine - line
		}
		switch {
		case stride == 0:
			p.current[FeatSameLine]++
		case stride == 1:
			p.current[FeatNearStride]++
		case stride <= 8:
			p.current[FeatSmallStride]++
		default:
			p.current[FeatLargeStride]++
		}
	}
	p.lastLine = line
	p.haveLast = true

	// Recency: a hit only counts; a miss inserts the line, evicting the
	// oldest insertion once the window is full.
	if _, hit := p.recent[line]; hit {
		p.current[FeatReuseHits]++
		return
	}
	if p.ringLen >= reuseWindow {
		delete(p.recent, p.ring[p.ringPos])
	} else {
		p.ringLen++
	}
	p.ring[p.ringPos] = line
	p.recent[line] = struct{}{}
	p.ringPos = (p.ringPos + 1) % reuseWindow
}

func (p *Profiler) flush() {
	p.vectors = append(p.vectors, p.current)
	p.count = 0
	p.reset()
}

// Finish closes the trailing partial interval (if it observed at least
// one instruction). Call after the traced run completes.
func (p *Profiler) Finish() {
	if p.count > 0 {
		p.flush()
	}
}

// Vectors returns one MAV per interval, in execution order.
func (p *Profiler) Vectors() []Vector { return p.vectors }

// IntervalSize returns the configured interval length.
func (p *Profiler) IntervalSize() int64 { return p.interval }
