// Package sampling defines SamplingSpec, the first-class description of
// how a campaign samples its workloads: interval length, clustering
// feature set (BBV alone or BBV ⊕ MAV), SimPoint projection dimensions
// and k ceiling, and the warm-up policy executed before each measured
// SimPoint. Historically every one of these knobs was an implicit
// constant scattered across the tree — per-workload IntervalSize in
// internal/workloads, hardcoded Dims/MaxK in internal/simpoint's flow
// defaults, and warm-up length buried in core.FlowConfig. A Spec makes
// them campaign parameters: it rides on core.Campaign, is versioned into
// every artifact key and the campaign fingerprint, crosses the serve v2
// wire as the `sampling` request block, and is replayed bit-identically
// by fabric workers.
//
// The zero value is load-bearing: Spec{} means "legacy behavior", and
// every fingerprint, artifact key, and golden digest produced by a
// zero-spec campaign is byte-identical to what the engine produced
// before the type existed. Non-zero specs version into schema-2 keys so
// cold/warm cache identity holds per spec.
package sampling

import (
	"fmt"
	"strconv"
	"strings"
)

// Feature sets. Empty means FeaturesBBV (legacy).
const (
	// FeaturesBBV clusters on basic-block vectors alone, as the paper does.
	FeaturesBBV = "bbv"
	// FeaturesBBVMAV concatenates normalized memory-access vectors onto the
	// projected BBV point before clustering, following the Memory Access
	// Vectors result that BBV-only clustering mis-samples memory-bound
	// phases (dijkstra being our canonical offender).
	FeaturesBBVMAV = "bbv+mav"
)

// Warm-up policies. Empty means "flow default": the scale-derived
// core.FlowConfig.WarmupInsts, exactly as before the policy existed.
const (
	// WarmupFlowDefault defers to the scale's FlowConfig (legacy).
	WarmupFlowDefault = ""
	// WarmupNone runs each SimPoint cold: no instructions before measurement.
	WarmupNone = "none"
	// WarmupFixed executes exactly WarmupInsts instructions before each
	// measured interval.
	WarmupFixed = "fixed"
	// WarmupProportional executes WarmupFactor × interval instructions
	// before each measured interval, scaling warm-up with interval length
	// so large-footprint workloads are not measured cache-cold.
	WarmupProportional = "proportional"
)

// DefaultWarmupFactor is the proportional-policy multiplier used when a
// Spec selects WarmupProportional without setting WarmupFactor.
const DefaultWarmupFactor = 5

// Spec is a value type: comparable, JSON-round-trippable with flat
// scalar fields, and hashed field-by-field into artifact keys (so field
// names and order are part of the cache identity — do not rename or
// reorder them).
//
// Every field's zero value means "inherit the legacy default":
//
//	Interval == 0      → Workload.IntervalSize (the per-workload Table II fallback)
//	Features == ""     → "bbv"
//	Dims == 0          → FlowConfig.SimPoint.Dims
//	MaxK == 0          → FlowConfig.SimPoint.MaxK
//	WarmupPolicy == "" → FlowConfig.WarmupInsts
type Spec struct {
	// Interval is the profiling/measurement interval in instructions.
	// 0 consults the workload's IntervalSize fallback.
	Interval int64 `json:"interval,omitempty"`
	// Features is the clustering feature set: "", "bbv", or "bbv+mav".
	Features string `json:"features,omitempty"`
	// Dims overrides the SimPoint random-projection dimensionality.
	Dims int `json:"dims,omitempty"`
	// MaxK overrides the SimPoint k ceiling.
	MaxK int `json:"max_k,omitempty"`
	// WarmupPolicy is "", "none", "fixed", or "proportional".
	WarmupPolicy string `json:"warmup_policy,omitempty"`
	// WarmupInsts is the fixed-policy warm-up length in instructions.
	WarmupInsts int64 `json:"warmup_insts,omitempty"`
	// WarmupFactor is the proportional-policy multiplier (default 5).
	WarmupFactor int `json:"warmup_factor,omitempty"`
}

// Recommended is the fidelity-first spec: BBV ⊕ MAV clustering and
// proportional warm-up. It is what `make fidelity` gates against the
// BBV-only baseline.
func Recommended() Spec {
	return Spec{Features: FeaturesBBVMAV, WarmupPolicy: WarmupProportional, WarmupFactor: DefaultWarmupFactor}
}

// IsZero reports whether s is the legacy spec. Zero specs keep every
// pre-Spec fingerprint and artifact key byte-for-byte.
func (s Spec) IsZero() bool { return s == Spec{} }

// Validate rejects specs that cannot be resolved deterministically.
func (s Spec) Validate() error {
	if s.Interval < 0 {
		return fmt.Errorf("sampling: interval %d: must be >= 0", s.Interval)
	}
	switch s.Features {
	case "", FeaturesBBV, FeaturesBBVMAV:
	default:
		return fmt.Errorf("sampling: features %q: want %q or %q", s.Features, FeaturesBBV, FeaturesBBVMAV)
	}
	if s.Dims < 0 {
		return fmt.Errorf("sampling: dims %d: must be >= 0", s.Dims)
	}
	if s.MaxK < 0 {
		return fmt.Errorf("sampling: max_k %d: must be >= 0", s.MaxK)
	}
	switch s.WarmupPolicy {
	case WarmupFlowDefault, WarmupNone, WarmupFixed, WarmupProportional:
	default:
		return fmt.Errorf("sampling: warmup policy %q: want \"\", %q, %q, or %q",
			s.WarmupPolicy, WarmupNone, WarmupFixed, WarmupProportional)
	}
	if s.WarmupInsts < 0 {
		return fmt.Errorf("sampling: warmup insts %d: must be >= 0", s.WarmupInsts)
	}
	if s.WarmupFactor < 0 {
		return fmt.Errorf("sampling: warmup factor %d: must be >= 0", s.WarmupFactor)
	}
	if s.WarmupInsts != 0 && s.WarmupPolicy != WarmupFixed {
		return fmt.Errorf("sampling: warmup insts set but policy is %q, not %q", s.WarmupPolicy, WarmupFixed)
	}
	if s.WarmupFactor != 0 && s.WarmupPolicy != WarmupProportional {
		return fmt.Errorf("sampling: warmup factor set but policy is %q, not %q", s.WarmupPolicy, WarmupProportional)
	}
	return nil
}

// UseMAV reports whether the spec clusters on BBV ⊕ MAV features.
func (s Spec) UseMAV() bool { return s.Features == FeaturesBBVMAV }

// ResolveInterval returns the effective interval: the spec's when set,
// else the workload fallback (Workload.IntervalSize).
func (s Spec) ResolveInterval(fallback int64) int64 {
	if s.Interval > 0 {
		return s.Interval
	}
	return fallback
}

// ResolveWarmup returns the warm-up length in instructions for a
// measured interval of the given length. flowDefault is the scale's
// FlowConfig.WarmupInsts, used by the legacy "" policy.
func (s Spec) ResolveWarmup(interval, flowDefault int64) int64 {
	switch s.WarmupPolicy {
	case WarmupNone:
		return 0
	case WarmupFixed:
		return s.WarmupInsts
	case WarmupProportional:
		f := int64(s.WarmupFactor)
		if f == 0 {
			f = DefaultWarmupFactor
		}
		return f * interval
	default:
		return flowDefault
	}
}

// String renders the non-zero fields compactly for logs, status bodies,
// and the canonical result encoding ("" for the zero spec so legacy
// encodings are untouched).
func (s Spec) String() string {
	if s.IsZero() {
		return ""
	}
	var parts []string
	if s.Features != "" {
		parts = append(parts, "features="+s.Features)
	}
	if s.Interval > 0 {
		parts = append(parts, fmt.Sprintf("interval=%d", s.Interval))
	}
	if s.Dims > 0 {
		parts = append(parts, fmt.Sprintf("dims=%d", s.Dims))
	}
	if s.MaxK > 0 {
		parts = append(parts, fmt.Sprintf("maxk=%d", s.MaxK))
	}
	switch s.WarmupPolicy {
	case WarmupNone:
		parts = append(parts, "warmup=none")
	case WarmupFixed:
		parts = append(parts, fmt.Sprintf("warmup=%d", s.WarmupInsts))
	case WarmupProportional:
		f := s.WarmupFactor
		if f == 0 {
			f = DefaultWarmupFactor
		}
		parts = append(parts, fmt.Sprintf("warmup=%dx", f))
	}
	return strings.Join(parts, " ")
}

// ParseWarmup maps a CLI warm-up flag value onto policy fields:
//
//	""     → flow default
//	"none" → cold measurement
//	"<n>"  → fixed n instructions
//	"<n>x" → proportional, factor n
//
// It returns the policy triple to store on a Spec.
func ParseWarmup(s string) (policy string, insts int64, factor int, err error) {
	switch {
	case s == "":
		return WarmupFlowDefault, 0, 0, nil
	case s == "none":
		return WarmupNone, 0, 0, nil
	case strings.HasSuffix(s, "x"):
		n, perr := strconv.Atoi(strings.TrimSuffix(s, "x"))
		if perr != nil || n <= 0 {
			return "", 0, 0, fmt.Errorf("sampling: warmup %q: want a positive factor like \"5x\"", s)
		}
		return WarmupProportional, 0, n, nil
	default:
		n, perr := strconv.ParseInt(s, 10, 64)
		if perr != nil || n < 0 {
			return "", 0, 0, fmt.Errorf("sampling: warmup %q: want \"none\", an instruction count, or a factor like \"5x\"", s)
		}
		if n == 0 {
			return WarmupNone, 0, 0, nil
		}
		return WarmupFixed, n, 0, nil
	}
}
