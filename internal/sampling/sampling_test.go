package sampling

import (
	"encoding/json"
	"testing"
)

func TestZeroSpec(t *testing.T) {
	var s Spec
	if !s.IsZero() {
		t.Fatal("zero Spec not IsZero")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("zero Spec invalid: %v", err)
	}
	if s.UseMAV() {
		t.Fatal("zero Spec claims MAV")
	}
	if got := s.ResolveInterval(20_000); got != 20_000 {
		t.Fatalf("zero Spec interval = %d, want workload fallback 20000", got)
	}
	if got := s.ResolveWarmup(20_000, 10_000); got != 10_000 {
		t.Fatalf("zero Spec warmup = %d, want flow default 10000", got)
	}
	if s.String() != "" {
		t.Fatalf("zero Spec String = %q, want empty", s.String())
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "{}" {
		t.Fatalf("zero Spec JSON = %s, want {} (omitempty on every field)", b)
	}
}

func TestValidate(t *testing.T) {
	valid := []Spec{
		{},
		{Features: FeaturesBBV},
		{Features: FeaturesBBVMAV, Interval: 50_000, Dims: 12, MaxK: 6},
		{WarmupPolicy: WarmupNone},
		{WarmupPolicy: WarmupFixed, WarmupInsts: 250_000},
		{WarmupPolicy: WarmupProportional, WarmupFactor: 3},
		{WarmupPolicy: WarmupProportional}, // factor defaults at resolve time
		Recommended(),
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	invalid := []Spec{
		{Interval: -1},
		{Features: "mav"},
		{Features: "BBV"},
		{Dims: -2},
		{MaxK: -1},
		{WarmupPolicy: "cold"},
		{WarmupInsts: -5, WarmupPolicy: WarmupFixed},
		{WarmupFactor: -1, WarmupPolicy: WarmupProportional},
		{WarmupInsts: 100, WarmupPolicy: WarmupNone}, // insts without fixed policy
		{WarmupFactor: 2, WarmupPolicy: WarmupFixed}, // factor without proportional
		{WarmupInsts: 100}, // insts with flow-default policy
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestResolveWarmup(t *testing.T) {
	cases := []struct {
		spec     Spec
		interval int64
		flow     int64
		want     int64
	}{
		{Spec{}, 100_000, 50_000, 50_000},
		{Spec{WarmupPolicy: WarmupNone}, 100_000, 50_000, 0},
		{Spec{WarmupPolicy: WarmupFixed, WarmupInsts: 7_000}, 100_000, 50_000, 7_000},
		{Spec{WarmupPolicy: WarmupProportional, WarmupFactor: 3}, 100_000, 50_000, 300_000},
		{Spec{WarmupPolicy: WarmupProportional}, 20_000, 10_000, int64(DefaultWarmupFactor) * 20_000},
	}
	for _, c := range cases {
		if got := c.spec.ResolveWarmup(c.interval, c.flow); got != c.want {
			t.Errorf("%+v.ResolveWarmup(%d, %d) = %d, want %d", c.spec, c.interval, c.flow, got, c.want)
		}
	}
}

func TestParseWarmup(t *testing.T) {
	cases := []struct {
		in     string
		policy string
		insts  int64
		factor int
		ok     bool
	}{
		{"", WarmupFlowDefault, 0, 0, true},
		{"none", WarmupNone, 0, 0, true},
		{"0", WarmupNone, 0, 0, true},
		{"250000", WarmupFixed, 250_000, 0, true},
		{"5x", WarmupProportional, 0, 5, true},
		{"12x", WarmupProportional, 0, 12, true},
		{"-1", "", 0, 0, false},
		{"0x", "", 0, 0, false},
		{"-3x", "", 0, 0, false},
		{"fast", "", 0, 0, false},
		{"1e6", "", 0, 0, false},
	}
	for _, c := range cases {
		policy, insts, factor, err := ParseWarmup(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseWarmup(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if policy != c.policy || insts != c.insts || factor != c.factor {
			t.Errorf("ParseWarmup(%q) = (%q, %d, %d), want (%q, %d, %d)",
				c.in, policy, insts, factor, c.policy, c.insts, c.factor)
		}
		got := Spec{WarmupPolicy: policy, WarmupInsts: insts, WarmupFactor: factor}
		if err := got.Validate(); err != nil {
			t.Errorf("ParseWarmup(%q) produced invalid spec: %v", c.in, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		Recommended(),
		{Interval: 50_000, Features: FeaturesBBVMAV, Dims: 20, MaxK: 12, WarmupPolicy: WarmupFixed, WarmupInsts: 300_000},
	}
	for _, s := range specs {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got Spec
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("round trip %+v -> %s -> %+v", s, b, got)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{}, ""},
		{Spec{Features: FeaturesBBV}, "features=bbv"},
		{Recommended(), "features=bbv+mav warmup=5x"},
		{Spec{Interval: 50_000, WarmupPolicy: WarmupNone}, "interval=50000 warmup=none"},
		{Spec{WarmupPolicy: WarmupFixed, WarmupInsts: 9}, "warmup=9"},
		{Spec{Dims: 4, MaxK: 7}, "dims=4 maxk=7"},
	}
	for _, c := range cases {
		if got := c.spec.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.spec, got, c.want)
		}
	}
}
