package core

import (
	"testing"

	"repro/internal/boom"
	"repro/internal/sampling"
	"repro/internal/workloads"
)

// This file pins the interaction between sampling.Spec and the campaign
// fingerprint. Two properties are load-bearing:
//
//  1. The zero spec is invisible: a campaign with Sampling == Spec{} (or a
//     Runner built WithSampling(Spec{})) must reproduce the pre-sampling
//     fingerprints byte-for-byte, or existing journals and caches orphan.
//  2. Any non-zero spec is part of campaign identity: it must change the
//     fingerprint, and distinct specs must not collide — otherwise a
//     bbv+mav journal could replay against a bbv-only cache.

func shaQsortMedium() Campaign {
	return NewCampaign([]string{"sha", "qsort"}, []boom.Config{boom.MediumBOOM()}, workloads.ScaleTiny)
}

func TestZeroSpecKeepsPinnedFingerprint(t *testing.T) {
	camp := shaQsortMedium()
	camp.Sampling = sampling.Spec{} // explicit zero, same as never set
	if got := pinnedRunner(t, workloads.ScaleTiny).CampaignID(camp); got != fpShaQsortMedium {
		t.Fatalf("explicit zero spec drifted the fingerprint: got %s, want %s", got, fpShaQsortMedium)
	}
	// A Runner carrying the zero spec is equally invisible.
	r := pinnedRunner(t, workloads.ScaleTiny, WithSampling(sampling.Spec{}))
	if got := r.CampaignID(shaQsortMedium()); got != fpShaQsortMedium {
		t.Fatalf("zero runner spec drifted the fingerprint: got %s, want %s", got, fpShaQsortMedium)
	}
}

func TestSpecIsPartOfCampaignIdentity(t *testing.T) {
	r := pinnedRunner(t, workloads.ScaleTiny)

	specs := []sampling.Spec{
		{Features: sampling.FeaturesBBVMAV},
		{Interval: 10_000},
		{WarmupPolicy: sampling.WarmupProportional, WarmupFactor: 5},
		sampling.Recommended(),
	}
	seen := map[string]string{fpShaQsortMedium: "zero spec"}
	for _, spec := range specs {
		camp := shaQsortMedium()
		camp.Sampling = spec
		id := r.CampaignID(camp)
		if prev, dup := seen[id]; dup {
			t.Errorf("spec %q collided with %s (id %s)", spec, prev, id)
		}
		seen[id] = spec.String()
	}
}

// TestRunnerSpecResolution: the campaign's own spec wins; the Runner's
// spec (WithSampling) applies only to campaigns that carry none. The
// fingerprint must follow the same resolution, or a sweep's results would
// be keyed under an identity computed from parameters it did not run with.
func TestRunnerSpecResolution(t *testing.T) {
	spec := sampling.Recommended()

	// Campaign spec set: runner spec must not matter.
	camp := shaQsortMedium()
	camp.Sampling = spec
	plain := pinnedRunner(t, workloads.ScaleTiny).CampaignID(camp)
	other := pinnedRunner(t, workloads.ScaleTiny,
		WithSampling(sampling.Spec{Interval: 40_000})).CampaignID(camp)
	if plain != other {
		t.Fatalf("campaign spec did not win over runner spec: %s vs %s", plain, other)
	}

	// Campaign spec zero: the runner's spec becomes the effective one,
	// and must fingerprint identically to the same spec on the campaign.
	viaRunner := pinnedRunner(t, workloads.ScaleTiny, WithSampling(spec)).CampaignID(shaQsortMedium())
	if viaRunner != plain {
		t.Fatalf("runner-level spec fingerprints differently from campaign-level: %s vs %s", viaRunner, plain)
	}
	if viaRunner == fpShaQsortMedium {
		t.Fatal("non-zero runner spec left the legacy fingerprint unchanged")
	}
}

func TestCampaignValidateRejectsBadSpec(t *testing.T) {
	camp := shaQsortMedium()
	camp.Sampling = sampling.Spec{Features: "mav"}
	if err := camp.Validate(); err == nil {
		t.Fatal("campaign with invalid sampling spec passed Validate")
	}
}
