package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/boom"
	"repro/internal/power"
	"repro/internal/simpoint"
)

// Intra-cell point parallelism (DESIGN §17). Every simulation point of one
// (workload, config) cell restores its own architectural checkpoint into a
// fresh functional+timing pair, so points are independent and can be
// measured concurrently. Two invariants make this safe:
//
//   - One shared budget. The Runner owns a slot semaphore of capacity -j
//     shared between cell-level sweep workers and intra-cell point helpers,
//     so the process never runs more than -j measurement goroutines no
//     matter how the work is shaped. Helpers only try-acquire: when the
//     sweep saturates the budget with cells, measurement inside each cell
//     degrades gracefully to serial; when cells are scarce (a single
//     workload, a DSE tail), the idle slots drain into the points.
//
//   - Ordered reduce. Point workers never touch the cell aggregate; each
//     deposits its raw measurement into an index-addressed slot and the
//     floating-point reduction replays serially in checkpoint order
//     afterwards — the exact accumulation sequence of the old serial loop,
//     which is what keeps every digest in testdata/equivalence_golden.txt
//     byte-identical at any -j.

// errSiblingPoint is the cancellation cause recorded when one simulation
// point fails: sibling workers stop claiming points without manufacturing
// errors of their own, so the fold surfaces the original failure instead
// of a cancellation artifact.
var errSiblingPoint = errors.New("core: sibling simulation point failed")

// pointOutput is one simulation point's raw measurement, deposited by a
// point worker and folded into the cell aggregate strictly in checkpoint
// order. Exactly one of {stats, err, panicked, aborted} outcomes is set.
type pointOutput struct {
	stats    *boom.Stats // unweighted interval activity
	slots    []float64   // unweighted per-int-issue-slot power
	point    PointResult
	detailed uint64 // warm-up + measured instructions on the detailed model
	err      error  // fatal for the cell, already *StageError-wrapped
	panicked any    // recovered panic value, re-thrown on the folding goroutine
	aborted  bool   // skipped because a sibling point already failed
}

// pointBudget returns the per-cell cap on concurrently measured points:
// WithPointParallelism when set, otherwise the full -j budget.
func (r *Runner) pointBudget() int {
	if r.pointPar >= 1 {
		return r.pointPar
	}
	return r.par
}

// runPoints executes body(i, scratch) for every point index in [0, n).
// The calling goroutine is always worker zero; up to pointBudget()-1
// helpers are admitted by try-acquiring slots from the Runner's shared
// budget, so cell-level sweep workers and point helpers can never
// oversubscribe -j between them. Each worker owns a private power.Report
// scratch (the zero-alloc EstimateInto path). Point indices are claimed
// atomically; body must be panic-free or capture its own panics — a panic
// escaping body on a helper goroutine would kill the process.
func (r *Runner) runPoints(n int, body func(i int, scratch *power.Report)) {
	if n == 0 {
		return
	}
	var next atomic.Int64
	work := func() {
		var scratch power.Report
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			body(i, &scratch)
		}
	}
	extra := r.pointBudget() - 1
	if extra > n-1 {
		extra = n - 1
	}
	var wg sync.WaitGroup
admit:
	for k := 0; k < extra; k++ {
		select {
		case r.sem <- struct{}{}:
		default:
			break admit // budget exhausted: the sweep has the cores
		}
		wg.Add(1)
		go func() {
			defer func() { <-r.sem; wg.Done() }()
			work()
		}()
	}
	work()
	wg.Wait()
}

// foldPoints is the ordered reduce: it replays the per-point accumulation
// serially in checkpoint-index order, producing the weighted aggregate
// stats, the weighted slot-power vector, the per-point phase results, and
// the detailed-instruction total. The arithmetic — per-slot multiply-add,
// ScaleWeighted, Stats.Add — runs in exactly the order the old serial
// measure loop used, so the result is bit-identical to a serial
// measurement regardless of the completion order of the point workers.
// Every outs[i] must be a successful measurement (stats non-nil).
func foldPoints(cfg *boom.Config, sel *simpoint.Result, outs []pointOutput) (
	agg *boom.Stats, aggSlots []float64, points []PointResult, detailed uint64) {
	agg = boom.NewStats(cfg)
	aggSlots = make([]float64, cfg.IntIssueSlots)
	for i := range outs {
		o := &outs[i]
		w := sel.Selected[i].Weight
		points = append(points, o.point)
		for s := range aggSlots {
			aggSlots[s] += w * o.slots[s]
		}
		o.stats.ScaleWeighted(w)
		agg.Add(o.stats)
		detailed += o.detailed
	}
	return agg, aggSlots, points, detailed
}

// firstPointFailure scans outputs in checkpoint order and surfaces the
// lowest-index real failure the way the serial loop would have: a
// recovered panic is re-thrown (for the sweep supervisor's recover to
// convert into a Panicked *StageError), an error is returned as-is, and
// sibling-abort placeholders are skipped — they only exist because some
// other index holds the real failure. Returns nil when every point
// succeeded.
func firstPointFailure(outs []pointOutput) error {
	for i := range outs {
		if outs[i].panicked != nil {
			panic(outs[i].panicked)
		}
		if outs[i].err != nil {
			return outs[i].err
		}
	}
	for i := range outs {
		if outs[i].aborted {
			// Defensive: an abort can only be caused by a sibling failure,
			// which the loop above would have surfaced already.
			return context.Canceled
		}
	}
	return nil
}
