package core

// Measured-result transport for the distributed sweep fabric
// (internal/fabric): a worker that finishes a measure cell ships the
// cell's canonical payload bytes back to the coordinator, which decodes
// them into the *Result it merges into the campaign's Sweep. Reusing the
// measure artifact's cache codec — the exact bytes a local sweep would
// have written under the measure key — is what makes distributed results
// byte-identical to single-node ones by construction: there is no second
// encoding that could drift.

// EncodeMeasuredResult encodes a measured Result into the canonical
// measure-artifact payload.
func EncodeMeasuredResult(res *Result) ([]byte, error) {
	return encodeResultPayload(res)
}

// DecodeMeasuredResult decodes a canonical measure payload into res,
// filling everything but the identity fields (Workload, Suite,
// ConfigName, Mode) — exactly the split the artifact cache uses, so the
// caller seeds those from the cell it scheduled.
func DecodeMeasuredResult(payload []byte, res *Result) error {
	return decodeResultPayload(payload, res)
}
