package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/boom"
	"repro/internal/metrics"
)

// TestLoadJournalTornLines: a journal whose tail was cut mid-record by a
// crash must still yield every intact "done" record.
func TestLoadJournalTornLines(t *testing.T) {
	r := New(DefaultFlowConfig())
	names := []string{"sha", "bitcount"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	id := r.sweepID(tcamp(names, cfgs))

	path := filepath.Join(t.TempDir(), journalName)
	body := `{"ev":"sweep","id":"` + id + `"}
{"ev":"start","task":"profile/sha"}
{"ev":"done","task":"profile/sha","ns":7}
{"ev":"start","task":"profile/bitcount"}
{"ev":"done","task":"profile/bitcoun` // torn: process died mid-write
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	done, failed := loadJournal(path, id)
	if !done["profile/sha"] {
		t.Error("intact done record not loaded")
	}
	if done["profile/bitcount"] {
		t.Error("torn record must not count as done")
	}
	if len(done) != 1 || failed != 0 {
		t.Errorf("done=%v failed=%d, want exactly the one intact record", done, failed)
	}
}

// TestLoadJournalForeignCampaign: a journal header from a different
// campaign (or no header at all) must never be replayed.
func TestLoadJournalForeignCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalName)
	body := `{"ev":"sweep","id":"deadbeef"}
{"ev":"done","task":"profile/sha","ns":7}
`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if done, _ := loadJournal(path, "cafef00d"); len(done) != 0 {
		t.Errorf("foreign campaign replayed %d tasks", len(done))
	}

	headerless := `{"ev":"done","task":"profile/sha","ns":7}` + "\n"
	if err := os.WriteFile(path, []byte(headerless), 0o644); err != nil {
		t.Fatal(err)
	}
	if done, _ := loadJournal(path, "cafef00d"); len(done) != 0 {
		t.Errorf("headerless journal replayed %d tasks", len(done))
	}

	if done, _ := loadJournal(filepath.Join(t.TempDir(), "absent"), "x"); len(done) != 0 {
		t.Error("missing journal must yield an empty set")
	}
}

// TestSweepIDSensitivity: any campaign input drift — workload set, config
// set, flow parameters, scale — must change the fingerprint.
func TestSweepIDSensitivity(t *testing.T) {
	names := []string{"sha", "bitcount"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	base := New(DefaultFlowConfig()).sweepID(tcamp(names, cfgs))

	if got := New(DefaultFlowConfig()).sweepID(tcamp(names, cfgs)); got != base {
		t.Error("identical campaign must fingerprint identically")
	}
	if got := New(DefaultFlowConfig()).sweepID(tcamp([]string{"sha"}, cfgs)); got == base {
		t.Error("workload-set drift not detected")
	}
	if got := New(DefaultFlowConfig()).sweepID(tcamp(names, []boom.Config{boom.MegaBOOM()})); got == base {
		t.Error("config-set drift not detected")
	}
	fc := DefaultFlowConfig()
	fc.WarmupInsts++
	if got := New(fc).sweepID(tcamp(names, cfgs)); got == base {
		t.Error("flow-parameter drift not detected")
	}
}

// TestJournalWrittenDuringSweep: with a cache attached, a sweep leaves a
// complete journal (header + start/done per task) at JournalPath.
func TestJournalWrittenDuringSweep(t *testing.T) {
	dir := t.TempDir()
	r := New(DefaultFlowConfig(), WithCache(dir))
	names := []string{"sha"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	if _, err := r.Sweep(context.Background(), tcamp(names, cfgs)); err != nil {
		t.Fatal(err)
	}
	done, failed := loadJournal(JournalPath(dir), r.sweepID(tcamp(names, cfgs)))
	if failed != 0 {
		t.Errorf("clean sweep journaled %d failures", failed)
	}
	for _, task := range []string{"profile/sha", "measure/MediumBOOM/sha"} {
		if !done[task] {
			t.Errorf("journal missing done record for %s (have %v)", task, done)
		}
	}
	if len(done) != 2 {
		t.Errorf("journal lists %d done tasks, want 2", len(done))
	}
}

// TestJournalWriteErrorSurfaced: a journal whose file rejects writes (here
// a file opened read-only, standing in for ENOSPC) must not silently drop
// records. The first failed append increments
// core.sweep.journal_write_errors, warns exactly once, and disables the
// journal for the rest of the sweep so the failure degrades to "no
// journal" instead of a half-written one that -resume would half-trust.
func TestJournalWriteErrorSurfaced(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	reg := metrics.NewRegistry()
	var warns int
	jn := &journal{f: f, reg: reg, warn: func(string, ...interface{}) { warns++ }}
	jn.append(journalRecord{Ev: "start", Task: "profile/sha"})
	jn.append(journalRecord{Ev: "done", Task: "profile/sha", NS: 1})
	jn.append(journalRecord{Ev: "done", Task: "profile/qsort", NS: 1})

	if got := reg.Counter("core.sweep.journal_write_errors").Value(); got != 1 {
		t.Errorf("core.sweep.journal_write_errors = %d, want 1 (first error only)", got)
	}
	if warns != 1 {
		t.Errorf("warned %d times, want exactly 1", warns)
	}
	if data, err := os.ReadFile(path); err != nil || len(data) != 0 {
		t.Errorf("read-only journal has %d bytes on disk, want 0 (err=%v)", len(data), err)
	}
}

// TestJournalShortWriteSurfaced: a short write with a nil error (a buggy
// or exotic filesystem) must be treated as a write error, not success.
func TestJournalShortWriteSurfaced(t *testing.T) {
	// os.File returns an error for genuinely short writes, so drive the
	// accounting through the same entry point with a crafted record whose
	// write fails at the OS layer: /dev/full fails writes with ENOSPC and
	// exists on every Linux CI box this repo targets. Skip elsewhere.
	f, err := os.OpenFile("/dev/full", os.O_WRONLY, 0)
	if err != nil {
		t.Skipf("no /dev/full on this platform: %v", err)
	}
	defer f.Close()
	reg := metrics.NewRegistry()
	jn := &journal{f: f, reg: reg}
	jn.append(journalRecord{Ev: "done", Task: "measure/MediumBOOM/sha"})
	if got := reg.Counter("core.sweep.journal_write_errors").Value(); got != 1 {
		t.Errorf("ENOSPC write surfaced %d errors, want 1", got)
	}
}

// TestJournalHeaderDurable: openSweepJournal must put the campaign header
// on disk (fsynced) before the sweep starts, so the journal's identity
// survives a crash that follows immediately.
func TestJournalHeaderDurable(t *testing.T) {
	dir := t.TempDir()
	r := New(DefaultFlowConfig(), WithCache(dir))
	names := []string{"sha"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	jn, _ := r.openSweepJournal(tcamp(names, cfgs))
	if jn == nil {
		t.Fatal("journal not opened")
	}
	defer jn.Close()
	done, _ := loadJournal(JournalPath(dir), r.sweepID(tcamp(names, cfgs)))
	if done == nil {
		t.Fatal("header not readable from disk right after open")
	}
}
