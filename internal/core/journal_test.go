package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/boom"
)

// TestLoadJournalTornLines: a journal whose tail was cut mid-record by a
// crash must still yield every intact "done" record.
func TestLoadJournalTornLines(t *testing.T) {
	r := New(DefaultFlowConfig())
	names := []string{"sha", "bitcount"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	id := r.sweepID(names, cfgs)

	path := filepath.Join(t.TempDir(), journalName)
	body := `{"ev":"sweep","id":"` + id + `"}
{"ev":"start","task":"profile/sha"}
{"ev":"done","task":"profile/sha","ns":7}
{"ev":"start","task":"profile/bitcount"}
{"ev":"done","task":"profile/bitcoun` // torn: process died mid-write
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	done, failed := loadJournal(path, id)
	if !done["profile/sha"] {
		t.Error("intact done record not loaded")
	}
	if done["profile/bitcount"] {
		t.Error("torn record must not count as done")
	}
	if len(done) != 1 || failed != 0 {
		t.Errorf("done=%v failed=%d, want exactly the one intact record", done, failed)
	}
}

// TestLoadJournalForeignCampaign: a journal header from a different
// campaign (or no header at all) must never be replayed.
func TestLoadJournalForeignCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalName)
	body := `{"ev":"sweep","id":"deadbeef"}
{"ev":"done","task":"profile/sha","ns":7}
`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if done, _ := loadJournal(path, "cafef00d"); len(done) != 0 {
		t.Errorf("foreign campaign replayed %d tasks", len(done))
	}

	headerless := `{"ev":"done","task":"profile/sha","ns":7}` + "\n"
	if err := os.WriteFile(path, []byte(headerless), 0o644); err != nil {
		t.Fatal(err)
	}
	if done, _ := loadJournal(path, "cafef00d"); len(done) != 0 {
		t.Errorf("headerless journal replayed %d tasks", len(done))
	}

	if done, _ := loadJournal(filepath.Join(t.TempDir(), "absent"), "x"); len(done) != 0 {
		t.Error("missing journal must yield an empty set")
	}
}

// TestSweepIDSensitivity: any campaign input drift — workload set, config
// set, flow parameters, scale — must change the fingerprint.
func TestSweepIDSensitivity(t *testing.T) {
	names := []string{"sha", "bitcount"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	base := New(DefaultFlowConfig()).sweepID(names, cfgs)

	if got := New(DefaultFlowConfig()).sweepID(names, cfgs); got != base {
		t.Error("identical campaign must fingerprint identically")
	}
	if got := New(DefaultFlowConfig()).sweepID([]string{"sha"}, cfgs); got == base {
		t.Error("workload-set drift not detected")
	}
	if got := New(DefaultFlowConfig()).sweepID(names, []boom.Config{boom.MegaBOOM()}); got == base {
		t.Error("config-set drift not detected")
	}
	fc := DefaultFlowConfig()
	fc.WarmupInsts++
	if got := New(fc).sweepID(names, cfgs); got == base {
		t.Error("flow-parameter drift not detected")
	}
}

// TestJournalWrittenDuringSweep: with a cache attached, a sweep leaves a
// complete journal (header + start/done per task) at JournalPath.
func TestJournalWrittenDuringSweep(t *testing.T) {
	dir := t.TempDir()
	r := New(DefaultFlowConfig(), WithCache(dir))
	names := []string{"sha"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	if _, err := r.Sweep(context.Background(), names, cfgs); err != nil {
		t.Fatal(err)
	}
	done, failed := loadJournal(JournalPath(dir), r.sweepID(names, cfgs))
	if failed != 0 {
		t.Errorf("clean sweep journaled %d failures", failed)
	}
	for _, task := range []string{"profile/sha", "measure/MediumBOOM/sha"} {
		if !done[task] {
			t.Errorf("journal missing done record for %s (have %v)", task, done)
		}
	}
	if len(done) != 2 {
		t.Errorf("journal lists %d done tasks, want 2", len(done))
	}
}
