package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/asap7"
	"repro/internal/bbv"
	"repro/internal/boom"
	"repro/internal/ckpt"
	"repro/internal/faultinject"
	"repro/internal/mav"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/simpoint"
	"repro/internal/workloads"
)

// Stage names used for spans and StageError identity, in flow order.
const (
	StageProfile    = "profile"
	StageSelect     = "select"
	StageCheckpoint = "checkpoint"
	StageWarmup     = "warmup"
	StageMeasure    = "measure"
	StageEstimate   = "estimate"
)

// Stages lists every stage name in flow order.
func Stages() []string {
	return []string{StageProfile, StageSelect, StageCheckpoint,
		StageWarmup, StageMeasure, StageEstimate}
}

// Runner executes the SimPoint→power flow. Construct with New; the zero
// value is not usable. A Runner is safe for concurrent use: it holds only
// immutable configuration plus an optional metrics registry and artifact
// cache (both internally synchronized).
//
// Sweep runs under supervision: worker panics are recovered into
// *StageError (never crash the process), per-stage watchdogs bound runaway
// stages (WithStageTimeout), transient faults retry with exponential
// backoff (WithRetry), failures can be collected instead of aborting the
// campaign (WithKeepGoing), and — with a cache attached — an append-only
// journal makes killed sweeps resumable (WithResume).
type Runner struct {
	fc           FlowConfig
	scale        workloads.Scale
	sampling     sampling.Spec
	reg          *metrics.Registry
	par          int
	pointPar     int
	sem          chan struct{} // shared -j slot budget (see points.go)
	progress     func(string)
	cache        *artifact.Cache
	remote       *artifact.Remote
	verify       bool
	stageTimeout time.Duration
	retryMax     int
	retryBase    time.Duration
	keepGoing    bool
	resume       bool
	inj          *faultinject.Injector
	taskHook     func(completed int)
	tasksDone    atomic.Int64
}

// Option configures a Runner.
type Option func(*Runner)

// WithScale sets the workload scale used when the Runner builds workloads
// by name (Sweep, Validate). Default: workloads.ScaleTiny.
func WithScale(s workloads.Scale) Option {
	return func(r *Runner) { r.scale = s }
}

// WithLib overrides the ASAP7 library used for power estimation.
func WithLib(lib asap7.Library) Option {
	return func(r *Runner) { r.fc.Lib = lib }
}

// WithSampling sets the Runner's sampling spec, used by direct
// Profile/Run/Validate calls and by Sweep when the campaign itself
// carries no spec. The zero value (the default) reproduces the legacy
// implicit defaults — and every legacy artifact key and campaign
// fingerprint byte-for-byte. A campaign with a non-zero Sampling field
// overrides this for its sweep, the way campaign scale already overrides
// WithScale.
func WithSampling(spec sampling.Spec) Option {
	return func(r *Runner) { r.sampling = spec }
}

// WithMetrics attaches a metrics registry: per-stage spans under the
// "flow" root span, functional/detailed throughput, k-means stats, and
// sweep worker utilization. A nil registry disables instrumentation.
func WithMetrics(reg *metrics.Registry) Option {
	return func(r *Runner) { r.reg = reg }
}

// WithParallelism sets the Runner's total worker budget: the number of
// Sweep workers, and — shared with them through one slot semaphore — the
// ceiling on concurrent intra-cell point workers (see
// WithPointParallelism). Values below 1 mean "one worker". Default:
// runtime.GOMAXPROCS(0). Results are bit-identical for every parallelism
// level — each (workload, config) measurement is an isolated deterministic
// core+CPU pair, and within a cell the per-point reduction is replayed
// serially in checkpoint order (DESIGN §17).
func WithParallelism(n int) Option {
	return func(r *Runner) { r.par = n }
}

// WithPointParallelism caps how many simulation points of one (workload,
// config) cell may be measured concurrently. The default (any n < 1)
// shares the WithParallelism budget: a cell fans its points out over
// whatever slots the sweep leaves idle, so a single-workload campaign
// uses all of -j while a saturated 11×3 sweep degrades each cell to
// serial measurement — the combined goroutine count never exceeds -j.
// n = 1 forces strictly serial point measurement. Results are
// bit-identical at every setting.
func WithPointParallelism(n int) Option {
	return func(r *Runner) { r.pointPar = n }
}

// WithProgress installs a callback receiving human-readable step strings.
func WithProgress(fn func(string)) Option {
	return func(r *Runner) { r.progress = fn }
}

// WithCache attaches a content-addressed artifact cache rooted at dir.
// Every stage then does lookup → compute-on-miss → atomic write, keyed by
// a hash of the stage's full input closure (see internal/core/cache.go).
// Results are bit-identical with and without a cache; an empty dir
// disables caching.
func WithCache(dir string) Option {
	return func(r *Runner) {
		if dir == "" {
			r.cache = nil
			return
		}
		r.cache = artifact.Open(dir)
	}
}

// WithRemoteStore attaches a remote artifact store as a second cache
// tier (see artifact.Cache.SetRemote): local misses fall through to a
// checksum-verified remote fetch, and every Put is pushed through to the
// store so stages computed on this node are visible to every node sharing
// it. This is how the distributed sweep fabric (internal/fabric) gets the
// paper's one-profile-per-workload economy across machines. Requires
// WithCache (the local tier is the read-through cache); without a cache
// the remote is ignored.
func WithRemoteStore(remote *artifact.Remote) Option {
	return func(r *Runner) { r.remote = remote }
}

// WithCacheVerify makes every cache hit recompute the stage and
// byte-compare the canonical payloads, turning silent cache corruption or
// nondeterminism into a hard error. A no-op without WithCache.
func WithCacheVerify(v bool) Option {
	return func(r *Runner) { r.verify = v }
}

// WithStageTimeout bounds each pipeline stage execution with a deadline: a
// workload's profile/select/checkpoint stages individually, and each
// (workload, config) measurement body as one unit. Enforcement is
// cooperative — the deadline is observed at the same interval boundaries
// as context cancellation — and a tripped watchdog surfaces as a transient
// error (errors.Is context.DeadlineExceeded), so WithRetry can re-run the
// stage. Zero (the default) disables the watchdog.
func WithStageTimeout(d time.Duration) Option {
	return func(r *Runner) { r.stageTimeout = d }
}

// WithRetry allows up to n retries (n+1 attempts) per sweep task when the
// failure is transient (see IsTransient): injected chaos, cache I/O, a
// tripped watchdog. Waits between attempts grow exponentially from base
// (base, 2·base, 4·base, …). Deterministic model errors — deadlocks,
// invalid configs, diverged checkpoints — are never retried. Retries apply
// to Sweep tasks; direct Profile/Run calls fail on first error.
func WithRetry(n int, base time.Duration) Option {
	return func(r *Runner) {
		if n < 0 {
			n = 0
		}
		if base <= 0 {
			base = 10 * time.Millisecond
		}
		r.retryMax, r.retryBase = n, base
	}
}

// WithKeepGoing makes Sweep run every task regardless of failures, collect
// every task error into a *SweepErrors, and still return all successfully
// measured Results: a long campaign loses exactly the faulted (workload,
// config) pairs, nothing else. Without it (the default), the first failure
// aborts the sweep and the remaining tasks are drained unrun.
func WithKeepGoing(v bool) Option {
	return func(r *Runner) { r.keepGoing = v }
}

// WithResume replays the sweep journal left under the cache directory by a
// previous (killed or failed) run of the identical campaign: tasks with a
// "done" record are served straight from their cache artifacts and only
// unfinished or failed tasks recompute. Requires WithCache; a journal from
// a different campaign (different workloads, configs, flow parameters or
// scale) is ignored.
func WithResume(v bool) Option {
	return func(r *Runner) { r.resume = v }
}

// WithFaultInjector attaches a deterministic fault-injection plan (see
// internal/faultinject). The injector is threaded into every fault site
// the Runner controls: core.profile/<wl>, core.measure/<wl>/<cfg>,
// core.estimate/<wl>/<cfg> at each per-point power estimate,
// boom.tick/<wl>/<cfg> inside the detailed model, and the artifact cache's
// read/write sites. Nil (the default) disables every site.
func WithFaultInjector(inj *faultinject.Injector) Option {
	return func(r *Runner) { r.inj = inj }
}

// WithTaskHook installs fn, called after every successfully completed
// sweep task with the Runner's running completion count. This is an
// operational hook for crash drills and progress-driven tooling (e.g.
// "kill the process after N tasks" in resume tests); fn runs on worker
// goroutines and must be safe for concurrent use.
func WithTaskHook(fn func(completed int)) Option {
	return func(r *Runner) { r.taskHook = fn }
}

// New returns a Runner for the given flow configuration.
func New(fc FlowConfig, opts ...Option) *Runner {
	r := &Runner{
		fc:    fc,
		scale: workloads.ScaleTiny,
		par:   runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(r)
	}
	if r.par < 1 {
		r.par = 1
	}
	r.sem = make(chan struct{}, r.par)
	if r.cache != nil {
		r.cache.SetMetrics(r.reg)
		r.cache.SetFaultInjector(r.inj)
		r.cache.SetRemote(r.remote)
		r.cache.SetLog(r.note)
	}
	r.inj.SetMetrics(r.reg)
	return r
}

// Metrics returns the attached registry (nil when none).
func (r *Runner) Metrics() *metrics.Registry { return r.reg }

// Cache returns the attached artifact cache (nil when none).
func (r *Runner) Cache() *artifact.Cache { return r.cache }

// flowLap opens a lap on the root "flow" span; the returned func closes it.
func (r *Runner) flowLap() func() {
	if r.reg == nil {
		return func() {}
	}
	sp := r.reg.Span("flow")
	sp.Start()
	return sp.End
}

// stage opens a lap on one stage span under the "flow" root.
func (r *Runner) stage(name string) func() {
	if r.reg == nil {
		return func() {}
	}
	sp := r.reg.Span("flow").Child(name)
	sp.Start()
	return sp.End
}

func (r *Runner) note(format string, args ...interface{}) {
	if r.progress != nil {
		r.progress(fmt.Sprintf(format, args...))
	}
}

// stageCtx derives the per-stage watchdog deadline (WithStageTimeout).
func (r *Runner) stageCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.stageTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, r.stageTimeout)
}

// Profile runs steps 1–3 of the flow (profile → select → checkpoint) for
// one already-built workload, under the Runner's sampling spec
// (WithSampling; the zero spec is the legacy flow). Cancellation is
// cooperative: the context is checked at interval boundaries of the
// functional execution, where any WithStageTimeout deadline is observed
// too. With a cache attached, each step is served from its artifact when
// present.
func (r *Runner) Profile(ctx context.Context, w *workloads.Workload) (*Profile, error) {
	return r.profileWith(ctx, w, r.sampling)
}

// effectiveSpec resolves which sampling spec governs a campaign: the
// campaign's own when set, else the Runner's (WithSampling). Everything
// spec-dependent — sweep profiling, the campaign fingerprint, the
// journal identity — goes through this one resolution so results and
// identities can never disagree.
func (r *Runner) effectiveSpec(c Campaign) sampling.Spec {
	if !c.Sampling.IsZero() {
		return c.Sampling
	}
	return r.sampling
}

// simpointConfig resolves the clustering config under a spec: the flow's
// scale-derived defaults with the spec's Dims/MaxK overrides applied.
func (r *Runner) simpointConfig(spec sampling.Spec) simpoint.Config {
	cfg := r.fc.SimPoint
	if spec.Dims > 0 {
		cfg.Dims = spec.Dims
	}
	if spec.MaxK > 0 {
		cfg.MaxK = spec.MaxK
	}
	return cfg
}

// profileWith is Profile under an explicit sampling spec: the spec
// resolves the interval length (falling back to the workload's), the
// clustering feature set and config, and the warm-up budget checkpoints
// are captured under.
func (r *Runner) profileWith(ctx context.Context, w *workloads.Workload, spec sampling.Spec) (*Profile, error) {
	defer r.flowLap()()

	interval := spec.ResolveInterval(w.IntervalSize)
	warmup := spec.ResolveWarmup(interval, r.fc.WarmupInsts)
	spCfg := r.simpointConfig(spec)

	var keys profileKeys
	if r.cache != nil {
		keys = r.profileKeys(w, spec)
	}

	// Stage 1: functional execution + BBV (and, under a bbv+mav spec, MAV)
	// profiling, one interval at a time.
	var (
		vectors    []bbv.Vector
		mavs       []mav.Vector
		totalInsts uint64
		numBlocks  int
	)
	endStage := r.stage(StageProfile)
	c1, err := r.stageCached(keys.bbv,
		func(payload []byte) error {
			v, m, ti, nb, derr := decodeBBVPayloadSpec(payload, spec)
			if derr != nil {
				return derr
			}
			vectors, mavs, totalInsts, numBlocks = v, m, ti, nb
			return nil
		},
		func() error {
			sctx, cancel := r.stageCtx(ctx)
			defer cancel()
			if ierr := r.inj.Hit("core.profile", w.Name); ierr != nil {
				return ierr
			}
			cpu, cerr := w.NewCPU()
			if cerr != nil {
				return cerr
			}
			cpu.SetMetrics(r.reg)
			profiler := bbv.NewProfiler(interval)
			observe := profiler.Observe
			var mavProf *mav.Profiler
			if spec.UseMAV() {
				// Both profilers count every retired instruction, so their
				// interval boundaries coincide and vector i of each stream
				// describes the same instructions.
				mavProf = mav.NewProfiler(interval)
				observe = func(rt *sim.Retired) {
					profiler.Observe(rt)
					mavProf.Observe(rt)
				}
			}
			var n int64
			for !cpu.Halted {
				if cerr := sctx.Err(); cerr != nil {
					return cerr
				}
				ran, rerr := cpu.RunTrace(interval, observe)
				n += ran
				if rerr != nil {
					return rerr
				}
				if ran == 0 && !cpu.Halted {
					return fmt.Errorf("no forward progress (did not halt)")
				}
			}
			profiler.Finish()
			vectors = profiler.Vectors()
			totalInsts = uint64(n)
			numBlocks = profiler.NumBlocks()
			if mavProf != nil {
				mavProf.Finish()
				mavs = mavProf.Vectors()
				if len(mavs) != len(vectors) {
					return fmt.Errorf("profiler drift: %d MAV intervals for %d BBV intervals", len(mavs), len(vectors))
				}
			}
			return nil
		},
		func() ([]byte, error) {
			return encodeBBVPayloadSpec(vectors, mavs, totalInsts, numBlocks, spec)
		})
	endStage()
	if err != nil {
		return nil, wrapStage(StageProfile, w.Name, "", err)
	}

	// Stage 2: SimPoint selection.
	var sel *simpoint.Result
	endStage = r.stage(StageSelect)
	c2, err := r.stageCached(keys.sel,
		func(payload []byte) error {
			s, derr := simpoint.DecodeResult(bytes.NewReader(payload))
			if derr != nil {
				return derr
			}
			sel = s
			return nil
		},
		func() error {
			var s *simpoint.Result
			var serr error
			if spec.UseMAV() {
				s, serr = simpoint.ChooseCombined(vectors, mavs, spCfg)
			} else {
				s, serr = simpoint.Choose(vectors, spCfg)
			}
			if serr != nil {
				return serr
			}
			sel = s
			return nil
		},
		func() ([]byte, error) {
			var buf bytes.Buffer
			if eerr := simpoint.EncodeResult(&buf, sel); eerr != nil {
				return nil, eerr
			}
			return buf.Bytes(), nil
		})
	if err == nil && r.reg != nil {
		r.reg.Counter("simpoint.kmeans.runs").Add(int64(sel.Stats.Runs))
		r.reg.Counter("simpoint.kmeans.iterations").Add(int64(sel.Stats.Iterations))
		r.reg.Gauge("simpoint.k").Set(float64(sel.K))
		r.reg.Gauge("simpoint.coverage").Set(sel.Coverage)
	}
	endStage()
	if err != nil {
		return nil, wrapStage(StageSelect, w.Name, "", err)
	}

	// Stage 3: checkpoint creation. Checkpoints are taken WarmupInsts
	// before each simulation point (clamped at program start), in one
	// functional pass over the sorted capture points.
	var (
		cks     []*ckpt.Checkpoint
		warmups []int64
	)
	endStage = r.stage(StageCheckpoint)
	c3, err := r.stageCached(keys.ckpt,
		func(payload []byte) error {
			k, wu, derr := decodeCkptPayload(payload, len(sel.Selected))
			if derr != nil {
				return derr
			}
			cks, warmups = k, wu
			return nil
		},
		func() error {
			sctx, cancel := r.stageCtx(ctx)
			defer cancel()
			type capturePoint struct {
				at       int64 // instruction count where the checkpoint is taken
				selIdx   int
				interval int64
			}
			caps := make([]capturePoint, len(sel.Selected))
			for i, pt := range sel.Selected {
				st := int64(pt.Interval) * interval
				at := st - warmup
				if at < 0 {
					at = 0
				}
				caps[i] = capturePoint{at: at, selIdx: i, interval: int64(pt.Interval)}
			}
			sort.Slice(caps, func(i, j int) bool { return caps[i].at < caps[j].at })

			cpu2, cerr := w.NewCPU()
			if cerr != nil {
				return cerr
			}
			cpu2.SetMetrics(r.reg)
			cks = make([]*ckpt.Checkpoint, len(caps))
			warmups = make([]int64, len(caps))
			var executed int64
			for _, cp := range caps {
				for executed < cp.at {
					if cerr := sctx.Err(); cerr != nil {
						return cerr
					}
					step := cp.at - executed
					if step > interval {
						step = interval
					}
					if _, rerr := cpu2.Run(step); rerr != nil {
						return rerr
					}
					executed += step
				}
				k := ckpt.Capture(cpu2)
				k.Interval = cp.interval
				k.Weight = sel.Selected[cp.selIdx].Weight
				cks[cp.selIdx] = k
				warmups[cp.selIdx] = cp.interval*interval - cp.at
			}
			return nil
		},
		func() ([]byte, error) {
			return encodeCkptPayload(cks, warmups)
		})
	endStage()
	if err != nil {
		return nil, wrapStage(StageCheckpoint, w.Name, "", err)
	}

	p := &Profile{
		Workload:    w,
		Sampling:    spec,
		Interval:    interval,
		TotalInsts:  totalInsts,
		Vectors:     vectors,
		MAVs:        mavs,
		NumBlocks:   numBlocks,
		Selection:   sel,
		Checkpoints: cks,
		WarmupInsts: warmups,
		WallNS:      c1 + c2 + c3,
	}
	if r.cache != nil {
		p.CacheKey = keys.ckpt.Hex()
	}
	return p, nil
}

// Run executes steps 4–5 of the flow for one profiled workload on one
// configuration: restore every checkpoint, warm up, measure, and estimate
// power, aggregating by cluster weight. The context is checked between
// simulation points. With a cache attached, the whole measurement is one
// artifact keyed off the profile's chain.
func (r *Runner) Run(ctx context.Context, p *Profile, cfg boom.Config) (*Result, error) {
	defer r.flowLap()()

	var key artifact.Key
	if r.cache != nil && p.CacheKey != "" {
		key = measureKey(p.CacheKey, cfg, r.fc.Lib)
	}
	res := &Result{
		Workload:   p.Workload.Name,
		Suite:      p.Workload.Suite,
		ConfigName: cfg.Name,
		Mode:       "simpoint",
	}
	cost, err := r.stageCached(key,
		func(payload []byte) error { return decodeResultPayload(payload, res) },
		func() error { return r.measure(ctx, p, cfg, res) },
		func() ([]byte, error) { return encodeResultPayload(res) })
	if err != nil {
		return nil, wrapStage(StageMeasure, p.Workload.Name, cfg.Name, err)
	}
	res.MeasureWallNS = cost
	return res, nil
}

// measure is the compute body of Run: warm up, measure and estimate every
// simulation point, filling res (everything but MeasureWallNS). res is
// only written after the full measurement succeeds, so a failed attempt
// never leaks partial state into a retry.
//
// Points are measured concurrently (see points.go): each restores its own
// checkpoint into a fresh functional+timing pair, deposits its raw
// measurement into an index-addressed slot, and the floating-point
// reduction replays serially in checkpoint order — bit-identical to a
// serial loop at every parallelism level.
func (r *Runner) measure(ctx context.Context, p *Profile, cfg boom.Config, res *Result) error {
	serr := func(stage string, err error) error {
		return &StageError{Stage: stage, Workload: p.Workload.Name, Config: cfg.Name, Err: err}
	}
	mctx, cancel := r.stageCtx(ctx)
	defer cancel()
	// pctx carries the sibling-failure abort: the first failing point
	// cancels it with errSiblingPoint so the others stop claiming work
	// without manufacturing errors of their own.
	pctx, abort := context.WithCancelCause(mctx)
	defer abort(nil)
	if err := r.inj.Hit("core.measure", p.Workload.Name, cfg.Name); err != nil {
		return serr(StageMeasure, err)
	}

	est := power.NewEstimator(cfg, r.fc.Lib)
	est.SetMetrics(r.reg)

	prog, err := p.Workload.Program()
	if err != nil {
		return serr(StageWarmup, err)
	}

	n := len(p.Checkpoints)
	outs := make([]pointOutput, n)
	// One backing array serves every point's slot vector: point workers
	// write disjoint sub-slices, nothing is shared or resized.
	slotBuf := make([]float64, n*cfg.IntIssueSlots)
	inflight := r.reg.Gauge("core.measure.points_inflight")
	pointNS := r.reg.Histogram("core.measure.point_ns")
	pointsDone := r.reg.Counter("core.measure.points")

	r.runPoints(n, func(i int, scratch *power.Report) {
		out := &outs[i]
		defer func() {
			if rec := recover(); rec != nil {
				// Captured here so a helper goroutine's panic cannot kill
				// the process; re-thrown in checkpoint order by
				// firstPointFailure for the sweep supervisor to recover.
				out.panicked = rec
			}
			if out.panicked != nil || out.err != nil {
				abort(errSiblingPoint)
			}
		}()
		if cerr := pctx.Err(); cerr != nil {
			if context.Cause(pctx) == errSiblingPoint {
				out.aborted = true
			} else {
				out.err = serr(StageMeasure, cerr)
			}
			return
		}
		inflight.Add(1)
		t0 := time.Now()
		defer func() {
			inflight.Add(-1)
			pointsDone.Inc()
			pointNS.Observe(time.Since(t0).Nanoseconds())
		}()

		// Warm-up: restore the architectural checkpoint into a fresh
		// functional+timing pair and prime caches and predictors.
		endStage := r.stage(StageWarmup)
		cpu := sim.New()
		cpu.Load(prog) // establish the decode window
		p.Checkpoints[i].Restore(cpu)
		core, nerr := boom.New(cfg)
		if nerr != nil {
			endStage()
			out.err = serr(StageWarmup, nerr)
			return
		}
		core.SetMetrics(r.reg)
		core.SetFaultInjector(r.inj, p.Workload.Name, cfg.Name)
		ts := &traceSource{cpu: cpu}
		if warm := uint64(p.WarmupInsts[i]); warm > 0 {
			if _, rerr := core.Run(ts.next, warm); rerr != nil {
				endStage()
				out.err = serr(StageWarmup, rerr)
				return
			}
			out.detailed += warm
		}
		core.ResetStats()
		endStage()

		endStage = r.stage(StageMeasure)
		ran, rerr := core.Run(ts.next, uint64(p.Interval))
		endStage()
		if rerr != nil {
			out.err = serr(StageMeasure, rerr)
			return
		}
		if ts.err != nil {
			out.err = serr(StageMeasure, ts.err)
			return
		}
		out.detailed += ran
		st := core.Stats()

		endStage = r.stage(StageEstimate)
		// Per-point estimates are consumed immediately, so each worker's
		// scratch Report serves every point it measures — the zero-alloc
		// accumulation path, now per-worker instead of shared. A failed
		// estimate is as fatal as the aggregate estimate below: silently
		// dropping the point would leave Points inconsistent with the
		// accumulated Stats.
		perr := r.inj.Hit("core.estimate", p.Workload.Name, cfg.Name)
		if perr == nil {
			perr = est.EstimateInto(scratch, st)
		}
		if perr != nil {
			endStage()
			out.err = serr(StageEstimate, perr)
			return
		}
		out.point = PointResult{
			Interval: p.Checkpoints[i].Interval,
			Weight:   p.Selection.Selected[i].Weight,
			IPC:      st.IPC(),
			PowerMW:  scratch.TotalMW(),
		}
		dst := slotBuf[i*cfg.IntIssueSlots : (i+1)*cfg.IntIssueSlots : (i+1)*cfg.IntIssueSlots]
		out.slots = est.SlotPowerInto(dst, st)
		out.stats = st
		endStage()
	})
	if ferr := firstPointFailure(outs); ferr != nil {
		return ferr
	}

	// Ordered reduce: replay the accumulation serially in checkpoint order.
	agg, aggSlots, points, detailed := foldPoints(&cfg, p.Selection, outs)

	endStage := r.stage(StageEstimate)
	rep, err := est.Estimate(agg)
	endStage()
	if err != nil {
		return serr(StageEstimate, err)
	}
	// Normalize the weighted slot powers by coverage so partial coverage
	// does not deflate them. A degenerate selection can carry a zero (or
	// non-finite) coverage; dividing by it would poison every slot power
	// with NaN/Inf, so such a selection skips normalization.
	if cov := p.Selection.Coverage; cov > 0 && !math.IsInf(cov, 1) {
		for s := range aggSlots {
			aggSlots[s] /= cov
		}
	}
	res.TotalInsts = p.TotalInsts
	res.IntervalSize = p.Interval
	res.NumPoints = p.NumSimPoints()
	res.Coverage = p.Selection.Coverage
	res.K = p.Selection.K
	res.Stats = agg
	res.Power = rep
	res.Slots = aggSlots
	res.Points = points
	res.DetailedInsts = detailed
	return nil
}

// RunFull executes the entire workload on the detailed model (the
// baseline the SimPoint methodology replaces). Cancellation is checked at
// interval boundaries of the detailed run.
func (r *Runner) RunFull(ctx context.Context, w *workloads.Workload, cfg boom.Config) (*Result, error) {
	defer r.flowLap()()

	var key artifact.Key
	if r.cache != nil {
		key = fullKey(w, cfg, r.fc.Lib)
	}
	res := &Result{
		Workload:   w.Name,
		Suite:      w.Suite,
		ConfigName: cfg.Name,
		Mode:       "full",
	}
	cost, err := r.stageCached(key,
		func(payload []byte) error { return decodeResultPayload(payload, res) },
		func() error { return r.measureFull(ctx, w, cfg, res) },
		func() ([]byte, error) { return encodeResultPayload(res) })
	if err != nil {
		return nil, wrapStage(StageMeasure, w.Name, cfg.Name, err)
	}
	res.MeasureWallNS = cost
	return res, nil
}

// measureFull is the compute body of RunFull.
func (r *Runner) measureFull(ctx context.Context, w *workloads.Workload, cfg boom.Config, res *Result) error {
	serr := func(stage string, err error) error {
		return &StageError{Stage: stage, Workload: w.Name, Config: cfg.Name, Err: err}
	}
	mctx, cancel := r.stageCtx(ctx)
	defer cancel()
	cpu, err := w.NewCPU()
	if err != nil {
		return serr(StageMeasure, err)
	}
	core, err := boom.New(cfg)
	if err != nil {
		return serr(StageMeasure, err)
	}
	core.SetMetrics(r.reg)
	core.SetFaultInjector(r.inj, w.Name, cfg.Name)
	ts := &traceSource{cpu: cpu}

	endStage := r.stage(StageMeasure)
	chunk := uint64(w.IntervalSize)
	if chunk == 0 {
		chunk = 1 << 20
	}
	var ran uint64
	for {
		n, rerr := core.Run(ts.next, chunk)
		ran += n
		if rerr != nil {
			endStage()
			return serr(StageMeasure, rerr)
		}
		if ts.err != nil {
			endStage()
			return serr(StageMeasure, ts.err)
		}
		if n < chunk {
			break
		}
		if cerr := mctx.Err(); cerr != nil {
			endStage()
			return serr(StageMeasure, cerr)
		}
	}
	endStage()

	st := core.Stats()
	est := power.NewEstimator(cfg, r.fc.Lib)
	est.SetMetrics(r.reg)
	endStage = r.stage(StageEstimate)
	rep, err := est.Estimate(st)
	endStage()
	if err != nil {
		return serr(StageEstimate, err)
	}
	res.TotalInsts = st.Insts
	res.IntervalSize = w.IntervalSize
	res.Stats = st
	res.Power = rep
	res.Slots = est.SlotPower(st)
	res.DetailedInsts = ran
	return nil
}

// Sweep profiles every campaign workload once (at the campaign's scale)
// and evaluates it on every design point with the SimPoint flow: N
// configs share one profile/select/checkpoint per workload, both within
// the sweep (phase 1 runs once per workload) and across sweeps (the
// profile stages are config-independent, so their cache artifacts feed
// every design point that ever measures the workload). Work is spread
// across the Runner's parallelism — every (workload, config) measurement
// is independent and deterministic, so results are bit-identical to a
// serial run regardless of worker count, metrics attachment, cache state,
// retries, or which sibling tasks failed.
//
// Failure semantics: by default the first task error aborts the sweep
// (remaining tasks drain unrun) and Sweep returns (nil, err). Under
// WithKeepGoing, every task runs, all failures are collected into a
// *SweepErrors, and Sweep returns the partial *Sweep TOGETHER WITH the
// error — callers render what succeeded and report what did not. Missing
// entries in Results mark the failed pairs.
func (r *Runner) Sweep(ctx context.Context, camp Campaign) (*Sweep, error) {
	names, configs := camp.Workloads, camp.Configs
	var noteMu sync.Mutex
	note := func(format string, args ...interface{}) {
		noteMu.Lock()
		r.note(format, args...)
		noteMu.Unlock()
	}
	spec := r.effectiveSpec(camp)
	sw := &Sweep{
		Flow:     r.fc,
		Scale:    camp.Scale,
		Sampling: spec,
		Names:    append([]string(nil), names...),
		Profiles: map[string]*Profile{},
		Results:  map[string]map[string]*Result{},
	}
	for _, cfg := range configs {
		sw.ConfigNames = append(sw.ConfigNames, cfg.Name)
		sw.Results[cfg.Name] = map[string]*Result{}
	}
	jn, doneSet := r.openSweepJournal(camp)
	defer jn.Close()
	var mu sync.Mutex

	// Phase 1: profile every workload (parallel across workloads).
	profErr := r.runTasks(ctx, jn, doneSet, taskSet{
		stage: StageProfile,
		n:     len(names),
		id:    func(i int) taskID { return taskID{kind: "profile", workload: names[i]} },
		do: func(ctx context.Context, i int) error {
			name := names[i]
			w, err := workloads.Build(name, camp.Scale)
			if err != nil {
				return wrapStage(StageProfile, name, "", err)
			}
			note("profiling %-14s (%s scale)", name, camp.Scale)
			p, err := r.profileWith(ctx, w, spec)
			if err != nil {
				return err
			}
			mu.Lock()
			sw.Profiles[name] = p
			mu.Unlock()
			note("  %-14s %d insts, %d intervals, k=%d, %d simpoints, %.0f%% coverage",
				name, p.TotalInsts, len(p.Vectors), p.Selection.K, p.NumSimPoints(),
				100*p.Selection.Coverage)
			return nil
		},
	})
	if profErr != nil && !r.keepGoing {
		return nil, profErr
	}

	// Phase 2: measure every (config, workload) pair (parallel). Pairs
	// whose workload failed to profile are already accounted in profErr
	// and skipped here.
	type pair struct {
		cfg  boom.Config
		name string
	}
	var pairs []pair
	for _, cfg := range configs {
		for _, name := range names {
			if sw.Profiles[name] == nil {
				continue
			}
			pairs = append(pairs, pair{cfg, name})
		}
	}
	var measErr error
	if ctx.Err() == nil {
		measErr = r.runTasks(ctx, jn, doneSet, taskSet{
			stage: StageMeasure,
			n:     len(pairs),
			id: func(i int) taskID {
				return taskID{kind: "measure", workload: pairs[i].name, config: pairs[i].cfg.Name}
			},
			do: func(ctx context.Context, i int) error {
				pr := pairs[i]
				note("measuring %-14s on %s", pr.name, pr.cfg.Name)
				res, err := r.Run(ctx, sw.Profiles[pr.name], pr.cfg)
				if err != nil {
					return err
				}
				mu.Lock()
				sw.Results[pr.cfg.Name][pr.name] = res
				mu.Unlock()
				return nil
			},
		})
	} else if profErr == nil {
		profErr = &StageError{Stage: StageMeasure, Err: ctx.Err()}
	}
	if !r.keepGoing {
		if measErr != nil {
			return nil, measErr
		}
		return sw, nil
	}
	var errs []error
	for _, e := range []error{profErr, measErr} {
		var se *SweepErrors
		switch {
		case e == nil:
		case errors.As(e, &se):
			errs = append(errs, se.Errs...)
		default:
			errs = append(errs, e)
		}
	}
	if len(errs) > 0 {
		return sw, &SweepErrors{Errs: errs}
	}
	return sw, nil
}

// taskID names one sweep task for journaling and failure identity.
type taskID struct {
	kind     string // "profile" | "measure"
	workload string
	config   string // empty for profile tasks
}

func (id taskID) label() string {
	if id.config == "" {
		return id.kind + "/" + id.workload
	}
	return id.kind + "/" + id.config + "/" + id.workload
}

func (id taskID) stage() string {
	if id.kind == "profile" {
		return StageProfile
	}
	return StageMeasure
}

// taskSet is one parallel phase of a sweep.
type taskSet struct {
	stage string
	n     int
	id    func(i int) taskID
	do    func(ctx context.Context, i int) error
}

// runTasks runs a task set on a fixed worker pool under supervision,
// recording per-worker busy time and utilization plus task queue-wait into
// the registry. Fail-fast mode (the default) returns the first error and
// drains the remaining queue unrun; keep-going mode runs everything and
// returns a *SweepErrors. Drained tasks increment core.sweep.tasks_drained
// and are excluded from the tasks counter, queue-wait histogram and worker
// busy time. A canceled context surfaces as a *StageError naming the phase
// in flight and wrapping ctx.Err().
func (r *Runner) runTasks(ctx context.Context, jn *journal, doneSet map[string]bool, ts taskSet) error {
	if ts.n == 0 {
		return nil
	}
	workers := r.par
	if workers > ts.n {
		workers = ts.n
	}
	type item struct {
		idx        int
		enqueuedNS int64
	}
	ch := make(chan item, ts.n)
	start := time.Now()
	qwait := r.reg.Histogram("core.sweep.queue_wait_ns")
	tasks := r.reg.Counter("core.sweep.tasks")
	drained := r.reg.Counter("core.sweep.tasks_drained")

	var mu sync.Mutex
	var errs []error
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(errs) > 0
	}
	record := func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
		r.reg.Counter("core.sweep.tasks_failed").Inc()
	}
	busyNS := make([]int64, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for it := range ch {
				if (!r.keepGoing && failed()) || ctx.Err() != nil {
					drained.Inc()
					continue // drain without running (and without accounting)
				}
				t0 := time.Now()
				qwait.Observe(t0.UnixNano() - it.enqueuedNS)
				// One task holds one slot of the shared -j budget for its
				// whole attempt chain; intra-cell point helpers try-acquire
				// the remainder (points.go), so sweep workers plus point
				// workers never exceed -j goroutines combined.
				r.sem <- struct{}{}
				err := r.runTask(ctx, jn, doneSet, ts.id(it.idx),
					func(c context.Context) error { return ts.do(c, it.idx) })
				<-r.sem
				if err != nil {
					record(err)
				}
				tasks.Inc()
				busyNS[wk] += time.Since(t0).Nanoseconds()
			}
		}(wk)
	}
	for i := 0; i < ts.n; i++ {
		ch <- item{i, time.Now().UnixNano()}
	}
	close(ch)
	wg.Wait()
	if r.reg != nil {
		wall := time.Since(start).Nanoseconds()
		for wk := 0; wk < workers; wk++ {
			r.reg.Counter(fmt.Sprintf("core.sweep.worker.%02d.busy_ns", wk)).Add(busyNS[wk])
			r.reg.Gauge(fmt.Sprintf("core.sweep.worker.%02d.util", wk)).
				Set(utilization(busyNS[wk], wall))
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		errs = append(errs, &StageError{Stage: ts.stage, Err: cerr})
	}
	if len(errs) == 0 {
		return nil
	}
	if !r.keepGoing {
		return errs[0]
	}
	return &SweepErrors{Errs: errs}
}

// utilization returns the busy/wall worker-utilization ratio as a finite
// value in [0, 1]. A zero or negative wall clock — a degenerate or instant
// sweep on a coarse clock — must yield 0, never NaN or ±Inf: the ratio
// lands in a gauge that -metrics json marshals, and encoding/json rejects
// non-finite numbers outright, so one bad division would kill the whole
// metrics emission. Busy time can marginally exceed the wall measurement
// (the two clock reads are not atomic), so the ratio is clamped at 1.
func utilization(busyNS, wallNS int64) float64 {
	if wallNS <= 0 || busyNS <= 0 {
		return 0
	}
	if u := float64(busyNS) / float64(wallNS); u < 1 {
		return u
	}
	return 1
}

// runTask supervises one task: journal bookkeeping and resume accounting,
// then bounded exponential-backoff retries around guarded attempts.
func (r *Runner) runTask(ctx context.Context, jn *journal, doneSet map[string]bool, id taskID, do func(context.Context) error) error {
	resumed := doneSet[id.label()]
	if resumed {
		r.reg.Counter("core.sweep.tasks_resumed").Inc()
	} else {
		jn.append(journalRecord{Ev: "start", Task: id.label()})
	}
	t0 := time.Now()
	var err error
	for attempt := 1; ; attempt++ {
		err = r.attempt(ctx, id, do)
		if err == nil || ctx.Err() != nil || attempt > r.retryMax || !IsTransient(err) {
			if err != nil && attempt > 1 {
				var se *StageError
				if errors.As(err, &se) {
					se.Attempt = attempt
				}
			}
			break
		}
		r.reg.Counter("core.sweep.retries").Inc()
		select {
		case <-time.After(r.retryBase << (attempt - 1)):
		case <-ctx.Done():
		}
	}
	if !resumed {
		if err != nil {
			jn.append(journalRecord{Ev: "fail", Task: id.label(), Err: err.Error()})
		} else {
			jn.append(journalRecord{Ev: "done", Task: id.label(), NS: time.Since(t0).Nanoseconds()})
		}
	}
	if err == nil && r.taskHook != nil {
		r.taskHook(int(r.tasksDone.Add(1)))
	}
	return err
}

// attempt runs one guarded try of a task: a panic anywhere below —
// the detailed model, an artifact codec, a workload generator — is
// recovered into a *StageError carrying the captured stack, and a tripped
// per-stage watchdog (deadline exceeded while the sweep's own context is
// still live) is classified transient so the retry policy applies.
func (r *Runner) attempt(parent context.Context, id taskID, do func(context.Context) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			r.reg.Counter("core.sweep.panics").Inc()
			err = &StageError{
				Stage:    id.stage(),
				Workload: id.workload,
				Config:   id.config,
				Panicked: true,
				Stack:    debug.Stack(),
				Err:      fmt.Errorf("panic: %v", p),
			}
		}
	}()
	err = do(parent)
	if err != nil && parent.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
		r.reg.Counter("core.sweep.timeouts").Inc()
		err = Transient(err)
	}
	return err
}

// Validate runs both the SimPoint flow and the full detailed model for
// one workload (built at the Runner's scale) and compares their IPC.
func (r *Runner) Validate(ctx context.Context, name string, cfg boom.Config) (*Accuracy, error) {
	w, err := workloads.Build(name, r.scale)
	if err != nil {
		return nil, err
	}
	p, err := r.Profile(ctx, w)
	if err != nil {
		return nil, err
	}
	sp, err := r.Run(ctx, p, cfg)
	if err != nil {
		return nil, err
	}
	w2, err := workloads.Build(name, r.scale)
	if err != nil {
		return nil, err
	}
	full, err := r.RunFull(ctx, w2, cfg)
	if err != nil {
		return nil, err
	}
	return &Accuracy{
		Workload:    name,
		ConfigName:  cfg.Name,
		SimPointIPC: sp.IPC(),
		FullIPC:     full.IPC(),
	}, nil
}
