package core

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/asap7"
	"repro/internal/bbv"
	"repro/internal/boom"
	"repro/internal/ckpt"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/simpoint"
	"repro/internal/workloads"
)

// Stage names used for spans and StageError identity, in flow order.
const (
	StageProfile    = "profile"
	StageSelect     = "select"
	StageCheckpoint = "checkpoint"
	StageWarmup     = "warmup"
	StageMeasure    = "measure"
	StageEstimate   = "estimate"
)

// Stages lists every stage name in flow order.
func Stages() []string {
	return []string{StageProfile, StageSelect, StageCheckpoint,
		StageWarmup, StageMeasure, StageEstimate}
}

// Runner executes the SimPoint→power flow. Construct with New; the zero
// value is not usable. A Runner is safe for concurrent use: it holds only
// immutable configuration plus an optional metrics registry and artifact
// cache (both internally synchronized).
type Runner struct {
	fc       FlowConfig
	scale    workloads.Scale
	reg      *metrics.Registry
	par      int
	progress func(string)
	cache    *artifact.Cache
	verify   bool
}

// Option configures a Runner.
type Option func(*Runner)

// WithScale sets the workload scale used when the Runner builds workloads
// by name (Sweep, Validate). Default: workloads.ScaleTiny.
func WithScale(s workloads.Scale) Option {
	return func(r *Runner) { r.scale = s }
}

// WithLib overrides the ASAP7 library used for power estimation.
func WithLib(lib asap7.Library) Option {
	return func(r *Runner) { r.fc.Lib = lib }
}

// WithMetrics attaches a metrics registry: per-stage spans under the
// "flow" root span, functional/detailed throughput, k-means stats, and
// sweep worker utilization. A nil registry disables instrumentation.
func WithMetrics(reg *metrics.Registry) Option {
	return func(r *Runner) { r.reg = reg }
}

// WithParallelism caps the number of Sweep workers. Values below 1 mean
// "one worker". Default: runtime.GOMAXPROCS(0). Results are bit-identical
// for every parallelism level — each (workload, config) measurement is an
// isolated deterministic core+CPU pair.
func WithParallelism(n int) Option {
	return func(r *Runner) { r.par = n }
}

// WithProgress installs a callback receiving human-readable step strings.
func WithProgress(fn func(string)) Option {
	return func(r *Runner) { r.progress = fn }
}

// WithCache attaches a content-addressed artifact cache rooted at dir.
// Every stage then does lookup → compute-on-miss → atomic write, keyed by
// a hash of the stage's full input closure (see internal/core/cache.go).
// Results are bit-identical with and without a cache; an empty dir
// disables caching.
func WithCache(dir string) Option {
	return func(r *Runner) {
		if dir == "" {
			r.cache = nil
			return
		}
		r.cache = artifact.Open(dir)
	}
}

// WithCacheVerify makes every cache hit recompute the stage and
// byte-compare the canonical payloads, turning silent cache corruption or
// nondeterminism into a hard error. A no-op without WithCache.
func WithCacheVerify(v bool) Option {
	return func(r *Runner) { r.verify = v }
}

// New returns a Runner for the given flow configuration.
func New(fc FlowConfig, opts ...Option) *Runner {
	r := &Runner{
		fc:    fc,
		scale: workloads.ScaleTiny,
		par:   runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(r)
	}
	if r.par < 1 {
		r.par = 1
	}
	if r.cache != nil {
		r.cache.SetMetrics(r.reg)
	}
	return r
}

// Metrics returns the attached registry (nil when none).
func (r *Runner) Metrics() *metrics.Registry { return r.reg }

// Cache returns the attached artifact cache (nil when none).
func (r *Runner) Cache() *artifact.Cache { return r.cache }

// flowLap opens a lap on the root "flow" span; the returned func closes it.
func (r *Runner) flowLap() func() {
	if r.reg == nil {
		return func() {}
	}
	sp := r.reg.Span("flow")
	sp.Start()
	return sp.End
}

// stage opens a lap on one stage span under the "flow" root.
func (r *Runner) stage(name string) func() {
	if r.reg == nil {
		return func() {}
	}
	sp := r.reg.Span("flow").Child(name)
	sp.Start()
	return sp.End
}

func (r *Runner) note(format string, args ...interface{}) {
	if r.progress != nil {
		r.progress(fmt.Sprintf(format, args...))
	}
}

// Profile runs steps 1–3 of the flow (profile → select → checkpoint) for
// one already-built workload. Cancellation is cooperative: the context is
// checked at interval boundaries of the functional execution. With a
// cache attached, each step is served from its artifact when present.
func (r *Runner) Profile(ctx context.Context, w *workloads.Workload) (*Profile, error) {
	defer r.flowLap()()

	var keys profileKeys
	if r.cache != nil {
		keys = r.profileKeys(w)
	}

	// Stage 1: functional execution + BBV profiling, one interval at a time.
	var (
		vectors    []bbv.Vector
		totalInsts uint64
		numBlocks  int
	)
	endStage := r.stage(StageProfile)
	c1, err := r.stageCached(keys.bbv,
		func(payload []byte) error {
			v, ti, nb, derr := decodeBBVPayload(payload)
			if derr != nil {
				return derr
			}
			vectors, totalInsts, numBlocks = v, ti, nb
			return nil
		},
		func() error {
			cpu, cerr := w.NewCPU()
			if cerr != nil {
				return cerr
			}
			cpu.SetMetrics(r.reg)
			profiler := bbv.NewProfiler(w.IntervalSize)
			var n int64
			for !cpu.Halted {
				if cerr := ctx.Err(); cerr != nil {
					return cerr
				}
				ran, rerr := cpu.RunTrace(w.IntervalSize, profiler.Observe)
				n += ran
				if rerr != nil {
					return rerr
				}
				if ran == 0 && !cpu.Halted {
					return fmt.Errorf("no forward progress (did not halt)")
				}
			}
			profiler.Finish()
			vectors = profiler.Vectors()
			totalInsts = uint64(n)
			numBlocks = profiler.NumBlocks()
			return nil
		},
		func() ([]byte, error) {
			return encodeBBVPayload(vectors, totalInsts, numBlocks)
		})
	endStage()
	if err != nil {
		return nil, wrapStage(StageProfile, w.Name, "", err)
	}

	// Stage 2: SimPoint selection.
	var sel *simpoint.Result
	endStage = r.stage(StageSelect)
	c2, err := r.stageCached(keys.sel,
		func(payload []byte) error {
			s, derr := simpoint.DecodeResult(bytes.NewReader(payload))
			if derr != nil {
				return derr
			}
			sel = s
			return nil
		},
		func() error {
			s, serr := simpoint.Choose(vectors, r.fc.SimPoint)
			if serr != nil {
				return serr
			}
			sel = s
			return nil
		},
		func() ([]byte, error) {
			var buf bytes.Buffer
			if eerr := simpoint.EncodeResult(&buf, sel); eerr != nil {
				return nil, eerr
			}
			return buf.Bytes(), nil
		})
	if err == nil && r.reg != nil {
		r.reg.Counter("simpoint.kmeans.runs").Add(int64(sel.Stats.Runs))
		r.reg.Counter("simpoint.kmeans.iterations").Add(int64(sel.Stats.Iterations))
		r.reg.Gauge("simpoint.k").Set(float64(sel.K))
		r.reg.Gauge("simpoint.coverage").Set(sel.Coverage)
	}
	endStage()
	if err != nil {
		return nil, wrapStage(StageSelect, w.Name, "", err)
	}

	// Stage 3: checkpoint creation. Checkpoints are taken WarmupInsts
	// before each simulation point (clamped at program start), in one
	// functional pass over the sorted capture points.
	var (
		cks     []*ckpt.Checkpoint
		warmups []int64
	)
	endStage = r.stage(StageCheckpoint)
	c3, err := r.stageCached(keys.ckpt,
		func(payload []byte) error {
			k, wu, derr := decodeCkptPayload(payload, len(sel.Selected))
			if derr != nil {
				return derr
			}
			cks, warmups = k, wu
			return nil
		},
		func() error {
			type capturePoint struct {
				at       int64 // instruction count where the checkpoint is taken
				selIdx   int
				interval int64
			}
			caps := make([]capturePoint, len(sel.Selected))
			for i, pt := range sel.Selected {
				st := int64(pt.Interval) * w.IntervalSize
				at := st - r.fc.WarmupInsts
				if at < 0 {
					at = 0
				}
				caps[i] = capturePoint{at: at, selIdx: i, interval: int64(pt.Interval)}
			}
			sort.Slice(caps, func(i, j int) bool { return caps[i].at < caps[j].at })

			cpu2, cerr := w.NewCPU()
			if cerr != nil {
				return cerr
			}
			cpu2.SetMetrics(r.reg)
			cks = make([]*ckpt.Checkpoint, len(caps))
			warmups = make([]int64, len(caps))
			var executed int64
			for _, cp := range caps {
				for executed < cp.at {
					if cerr := ctx.Err(); cerr != nil {
						return cerr
					}
					step := cp.at - executed
					if step > w.IntervalSize {
						step = w.IntervalSize
					}
					if _, rerr := cpu2.Run(step); rerr != nil {
						return rerr
					}
					executed += step
				}
				k := ckpt.Capture(cpu2)
				k.Interval = cp.interval
				k.Weight = sel.Selected[cp.selIdx].Weight
				cks[cp.selIdx] = k
				warmups[cp.selIdx] = cp.interval*w.IntervalSize - cp.at
			}
			return nil
		},
		func() ([]byte, error) {
			return encodeCkptPayload(cks, warmups)
		})
	endStage()
	if err != nil {
		return nil, wrapStage(StageCheckpoint, w.Name, "", err)
	}

	p := &Profile{
		Workload:    w,
		TotalInsts:  totalInsts,
		Vectors:     vectors,
		NumBlocks:   numBlocks,
		Selection:   sel,
		Checkpoints: cks,
		WarmupInsts: warmups,
		WallNS:      c1 + c2 + c3,
	}
	if r.cache != nil {
		p.CacheKey = keys.ckpt.Hex()
	}
	return p, nil
}

// Run executes steps 4–5 of the flow for one profiled workload on one
// configuration: restore every checkpoint, warm up, measure, and estimate
// power, aggregating by cluster weight. The context is checked between
// simulation points. With a cache attached, the whole measurement is one
// artifact keyed off the profile's chain.
func (r *Runner) Run(ctx context.Context, p *Profile, cfg boom.Config) (*Result, error) {
	defer r.flowLap()()

	var key artifact.Key
	if r.cache != nil && p.CacheKey != "" {
		key = measureKey(p.CacheKey, cfg, r.fc.Lib)
	}
	res := &Result{
		Workload:   p.Workload.Name,
		Suite:      p.Workload.Suite,
		ConfigName: cfg.Name,
		Mode:       "simpoint",
	}
	cost, err := r.stageCached(key,
		func(payload []byte) error { return decodeResultPayload(payload, res) },
		func() error { return r.measure(ctx, p, cfg, res) },
		func() ([]byte, error) { return encodeResultPayload(res) })
	if err != nil {
		return nil, wrapStage(StageMeasure, p.Workload.Name, cfg.Name, err)
	}
	res.MeasureWallNS = cost
	return res, nil
}

// measure is the compute body of Run: warm up, measure and estimate every
// simulation point, filling res (everything but MeasureWallNS).
func (r *Runner) measure(ctx context.Context, p *Profile, cfg boom.Config, res *Result) error {
	est := power.NewEstimator(cfg, r.fc.Lib)
	est.SetMetrics(r.reg)
	agg := boom.NewStats(&cfg)
	aggSlots := make([]float64, cfg.IntIssueSlots)
	var points []PointResult
	var detailed uint64

	prog, err := p.Workload.Program()
	if err != nil {
		return &StageError{Stage: StageWarmup, Workload: p.Workload.Name, Config: cfg.Name, Err: err}
	}
	for i, k := range p.Checkpoints {
		if cerr := ctx.Err(); cerr != nil {
			return &StageError{Stage: StageMeasure, Workload: p.Workload.Name, Config: cfg.Name, Err: cerr}
		}
		// Warm-up: restore the architectural checkpoint into a fresh
		// functional+timing pair and prime caches and predictors.
		endStage := r.stage(StageWarmup)
		cpu := sim.New()
		cpu.Load(prog) // establish the decode window
		k.Restore(cpu)
		core := boom.New(cfg)
		core.SetMetrics(r.reg)
		next := traceFn(cpu)
		if warm := uint64(p.WarmupInsts[i]); warm > 0 {
			core.Run(next, warm)
			detailed += warm
		}
		core.ResetStats()
		endStage()

		endStage = r.stage(StageMeasure)
		ran := core.Run(next, uint64(p.Workload.IntervalSize))
		endStage()
		detailed += ran
		st := core.Stats()

		w := p.Selection.Selected[i].Weight
		endStage = r.stage(StageEstimate)
		if rep, perr := est.Estimate(st); perr == nil {
			points = append(points, PointResult{
				Interval: p.Checkpoints[i].Interval,
				Weight:   w,
				IPC:      st.IPC(),
				PowerMW:  rep.TotalMW(),
			})
		}
		slots := est.SlotPower(st)
		for s := range aggSlots {
			aggSlots[s] += w * slots[s]
		}
		st.ScaleWeighted(w)
		agg.Add(st)
		endStage()
	}
	endStage := r.stage(StageEstimate)
	rep, err := est.Estimate(agg)
	endStage()
	if err != nil {
		return &StageError{Stage: StageEstimate, Workload: p.Workload.Name, Config: cfg.Name, Err: err}
	}
	// Normalize the weighted slot powers by coverage so partial coverage
	// does not deflate them.
	for s := range aggSlots {
		aggSlots[s] /= p.Selection.Coverage
	}
	res.TotalInsts = p.TotalInsts
	res.IntervalSize = p.Workload.IntervalSize
	res.NumPoints = p.NumSimPoints()
	res.Coverage = p.Selection.Coverage
	res.K = p.Selection.K
	res.Stats = agg
	res.Power = rep
	res.Slots = aggSlots
	res.Points = points
	res.DetailedInsts = detailed
	return nil
}

// RunFull executes the entire workload on the detailed model (the
// baseline the SimPoint methodology replaces). Cancellation is checked at
// interval boundaries of the detailed run.
func (r *Runner) RunFull(ctx context.Context, w *workloads.Workload, cfg boom.Config) (*Result, error) {
	defer r.flowLap()()

	var key artifact.Key
	if r.cache != nil {
		key = fullKey(w, cfg, r.fc.Lib)
	}
	res := &Result{
		Workload:   w.Name,
		Suite:      w.Suite,
		ConfigName: cfg.Name,
		Mode:       "full",
	}
	cost, err := r.stageCached(key,
		func(payload []byte) error { return decodeResultPayload(payload, res) },
		func() error { return r.measureFull(ctx, w, cfg, res) },
		func() ([]byte, error) { return encodeResultPayload(res) })
	if err != nil {
		return nil, wrapStage(StageMeasure, w.Name, cfg.Name, err)
	}
	res.MeasureWallNS = cost
	return res, nil
}

// measureFull is the compute body of RunFull.
func (r *Runner) measureFull(ctx context.Context, w *workloads.Workload, cfg boom.Config, res *Result) error {
	cpu, err := w.NewCPU()
	if err != nil {
		return &StageError{Stage: StageMeasure, Workload: w.Name, Config: cfg.Name, Err: err}
	}
	core := boom.New(cfg)
	core.SetMetrics(r.reg)
	next := traceFn(cpu)

	endStage := r.stage(StageMeasure)
	chunk := uint64(w.IntervalSize)
	if chunk == 0 {
		chunk = 1 << 20
	}
	var ran uint64
	for {
		n := core.Run(next, chunk)
		ran += n
		if n < chunk {
			break
		}
		if cerr := ctx.Err(); cerr != nil {
			endStage()
			return &StageError{Stage: StageMeasure, Workload: w.Name, Config: cfg.Name, Err: cerr}
		}
	}
	endStage()

	st := core.Stats()
	est := power.NewEstimator(cfg, r.fc.Lib)
	est.SetMetrics(r.reg)
	endStage = r.stage(StageEstimate)
	rep, err := est.Estimate(st)
	endStage()
	if err != nil {
		return &StageError{Stage: StageEstimate, Workload: w.Name, Config: cfg.Name, Err: err}
	}
	res.TotalInsts = st.Insts
	res.IntervalSize = w.IntervalSize
	res.Stats = st
	res.Power = rep
	res.Slots = est.SlotPower(st)
	res.DetailedInsts = ran
	return nil
}

// Sweep profiles every named workload once (at the Runner's scale) and
// evaluates it on every config with the SimPoint flow. Work is spread
// across the Runner's parallelism — every (workload, config) measurement
// is independent and deterministic, so results are bit-identical to a
// serial run regardless of worker count, metrics attachment, or cache
// state.
func (r *Runner) Sweep(ctx context.Context, names []string, configs []boom.Config) (*Sweep, error) {
	var noteMu sync.Mutex
	note := func(format string, args ...interface{}) {
		noteMu.Lock()
		r.note(format, args...)
		noteMu.Unlock()
	}
	sw := &Sweep{
		Flow:     r.fc,
		Scale:    r.scale,
		Profiles: map[string]*Profile{},
		Results:  map[string]map[string]*Result{},
	}
	var mu sync.Mutex

	// Phase 1: profile every workload (parallel across workloads).
	err := r.runTasks(ctx, len(names), func(i int) error {
		name := names[i]
		w, err := workloads.Build(name, r.scale)
		if err != nil {
			return err
		}
		note("profiling %-14s (%s scale)", name, r.scale)
		p, err := r.Profile(ctx, w)
		if err != nil {
			return err
		}
		mu.Lock()
		sw.Profiles[name] = p
		mu.Unlock()
		note("  %-14s %d insts, %d intervals, k=%d, %d simpoints, %.0f%% coverage",
			name, p.TotalInsts, len(p.Vectors), p.Selection.K, p.NumSimPoints(),
			100*p.Selection.Coverage)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: measure every (config, workload) pair (parallel).
	type pair struct {
		cfg  boom.Config
		name string
	}
	var pairs []pair
	for _, cfg := range configs {
		sw.Results[cfg.Name] = map[string]*Result{}
		for _, name := range names {
			pairs = append(pairs, pair{cfg, name})
		}
	}
	err = r.runTasks(ctx, len(pairs), func(i int) error {
		pr := pairs[i]
		note("measuring %-14s on %s", pr.name, pr.cfg.Name)
		res, err := r.Run(ctx, sw.Profiles[pr.name], pr.cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		sw.Results[pr.cfg.Name][pr.name] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sw, nil
}

// runTasks runs do(0..n-1) on a fixed worker pool, recording per-worker
// busy time and utilization plus task queue-wait into the registry. The
// first error wins; remaining queued tasks are drained without running.
func (r *Runner) runTasks(ctx context.Context, n int, do func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := r.par
	if workers > n {
		workers = n
	}
	type item struct {
		idx        int
		enqueuedNS int64
	}
	ch := make(chan item, n)
	start := time.Now()
	qwait := r.reg.Histogram("core.sweep.queue_wait_ns")
	tasks := r.reg.Counter("core.sweep.tasks")

	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	busyNS := make([]int64, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for it := range ch {
				t0 := time.Now()
				qwait.Observe(t0.UnixNano() - it.enqueuedNS)
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed || ctx.Err() != nil {
					continue // drain without running
				}
				if err := do(it.idx); err != nil {
					setErr(err)
				}
				tasks.Inc()
				busyNS[wk] += time.Since(t0).Nanoseconds()
			}
		}(wk)
	}
	for i := 0; i < n; i++ {
		ch <- item{i, time.Now().UnixNano()}
	}
	close(ch)
	wg.Wait()
	if r.reg != nil {
		wall := time.Since(start).Nanoseconds()
		for wk := 0; wk < workers; wk++ {
			r.reg.Counter(fmt.Sprintf("core.sweep.worker.%02d.busy_ns", wk)).Add(busyNS[wk])
			if wall > 0 {
				r.reg.Gauge(fmt.Sprintf("core.sweep.worker.%02d.util", wk)).
					Set(float64(busyNS[wk]) / float64(wall))
			}
		}
	}
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// Validate runs both the SimPoint flow and the full detailed model for
// one workload (built at the Runner's scale) and compares their IPC.
func (r *Runner) Validate(ctx context.Context, name string, cfg boom.Config) (*Accuracy, error) {
	w, err := workloads.Build(name, r.scale)
	if err != nil {
		return nil, err
	}
	p, err := r.Profile(ctx, w)
	if err != nil {
		return nil, err
	}
	sp, err := r.Run(ctx, p, cfg)
	if err != nil {
		return nil, err
	}
	w2, err := workloads.Build(name, r.scale)
	if err != nil {
		return nil, err
	}
	full, err := r.RunFull(ctx, w2, cfg)
	if err != nil {
		return nil, err
	}
	return &Accuracy{
		Workload:    name,
		ConfigName:  cfg.Name,
		SimPointIPC: sp.IPC(),
		FullIPC:     full.IPC(),
	}, nil
}
