package core

// Measure-stage kernel benchmark: one full (workload, config) cell —
// every simulation point warmed, measured, and estimated — serially and
// with four workers sharing the budget. The J1/J4 pair is what
// BENCH_kernel.json records for the intra-cell point parallelism of
// DESIGN §17, and `make bench-measure` asserts J4 actually beats J1 with
// byte-identical results. The profile (functional simulation + SimPoint
// selection) is built once per process so ns/op isolates the measure
// stage itself.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/boom"
	"repro/internal/workloads"
)

var (
	mbOnce sync.Once
	mbProf *Profile
	mbErr  error
)

// measureProfile profiles sha at tiny scale once per process.
func measureProfile(b *testing.B) *Profile {
	b.Helper()
	mbOnce.Do(func() {
		w, err := workloads.Build("sha", workloads.ScaleTiny)
		if err != nil {
			mbErr = err
			return
		}
		mbProf, mbErr = New(DefaultFlowConfig()).Profile(context.Background(), w)
	})
	if mbErr != nil {
		b.Fatal(mbErr)
	}
	return mbProf
}

func benchMeasure(b *testing.B, par int) {
	p := measureProfile(b)
	cfg := boom.MegaBOOM()
	r := New(DefaultFlowConfig(), WithParallelism(par))
	b.ReportAllocs()
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(context.Background(), p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		insts += res.DetailedInsts
	}
	if el := b.Elapsed().Seconds(); el > 0 && insts > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
	}
}

func BenchmarkKernelMeasureJ1MegaBOOM(b *testing.B) { benchMeasure(b, 1) }
func BenchmarkKernelMeasureJ4MegaBOOM(b *testing.B) { benchMeasure(b, 4) }
