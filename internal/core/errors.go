package core

import (
	"errors"
	"fmt"
)

// StageError identifies where in the flow an error occurred: the pipeline
// stage (profile/select/checkpoint/warmup/measure/estimate), the workload,
// and — for detailed-model stages — the BOOM configuration. It wraps the
// underlying cause for errors.Is/As.
//
// Supervised sweeps add failure forensics: Attempt counts retries consumed
// before the error became final, and a recovered worker panic carries
// Panicked plus the goroutine stack captured at the recovery point.
type StageError struct {
	Stage    string // one of the Stage* constants
	Workload string
	Config   string // BOOM config name; empty for config-independent stages
	Attempt  int    // 1-based attempt that produced Err; 0/1 = first try
	Panicked bool   // Err was recovered from a panic in a sweep worker
	Stack    []byte // goroutine stack at recovery (only when Panicked)
	Err      error
}

func (e *StageError) Error() string {
	s := "core: stage " + e.Stage
	if e.Workload != "" {
		s += " workload=" + e.Workload
	}
	if e.Config != "" {
		s += " config=" + e.Config
	}
	if e.Attempt > 1 {
		s += fmt.Sprintf(" attempt=%d", e.Attempt)
	}
	if e.Panicked {
		s += " (recovered panic)"
	}
	return fmt.Sprintf("%s: %v", s, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// Transient marks err as retryable under the Runner's retry policy
// (WithRetry): the fault is expected to be environmental — cache I/O,
// injected chaos, a tripped watchdog — rather than a deterministic property
// of the model or its inputs. The wrapper preserves errors.Is/As.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// IsTransient reports whether err (or anything it wraps) declares itself
// retryable via a `Transient() bool` method. Deterministic model errors —
// a pipeline deadlock, an invalid configuration, a diverged checkpoint —
// carry no such marker and fail once.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// SweepErrors is the multi-error a keep-going sweep returns: every task
// failure, in completion order, each (normally) a *StageError naming the
// stage, workload and config that failed. Unwrap exposes the slice to
// errors.Is/As, so callers can still test for context.Canceled, a panic, a
// deadlock sentinel, or a specific stage across the whole collection.
type SweepErrors struct {
	Errs []error
}

func (e *SweepErrors) Error() string {
	if len(e.Errs) == 1 {
		return fmt.Sprintf("core: sweep: 1 task failed: %v", e.Errs[0])
	}
	return fmt.Sprintf("core: sweep: %d tasks failed; first: %v", len(e.Errs), e.Errs[0])
}

func (e *SweepErrors) Unwrap() []error { return e.Errs }
