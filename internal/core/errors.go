package core

import "fmt"

// StageError identifies where in the flow an error occurred: the pipeline
// stage (profile/select/checkpoint/warmup/measure/estimate), the workload,
// and — for detailed-model stages — the BOOM configuration. It wraps the
// underlying cause for errors.Is/As.
type StageError struct {
	Stage    string // one of the Stage* constants
	Workload string
	Config   string // BOOM config name; empty for config-independent stages
	Err      error
}

func (e *StageError) Error() string {
	s := "core: stage " + e.Stage
	if e.Workload != "" {
		s += " workload=" + e.Workload
	}
	if e.Config != "" {
		s += " config=" + e.Config
	}
	return fmt.Sprintf("%s: %v", s, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }
