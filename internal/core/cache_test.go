package core

import (
	"bytes"
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/boom"
	"repro/internal/sampling"
	"repro/internal/simpoint"
	"repro/internal/workloads"
)

// corruptAllCacheFiles flips one byte in every artifact under dir.
func corruptAllCacheFiles(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		data[len(data)/2] ^= 0xff
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWarmCacheSweepSpeedup is the headline economics claim: a warm-cache
// sweep over every registered workload skips straight to report
// generation, at least 5× faster than the cold run, with exactly equal
// results (timing fields included — hit costs are restored from the
// cache, so even the speedup table reproduces byte-for-byte).
func TestWarmCacheSweepSpeedup(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	fc := DefaultFlowConfig()
	names := workloads.Names()
	cfgs := []boom.Config{boom.MediumBOOM()}

	t0 := time.Now()
	coldSW, err := New(fc, WithScale(workloads.ScaleTiny), WithCache(dir)).Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(t0)

	t1 := time.Now()
	warmSW, err := New(fc, WithScale(workloads.ScaleTiny), WithCache(dir)).Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(t1)

	if warmDur*5 > coldDur {
		t.Errorf("warm sweep %v is not ≥5× faster than cold %v", warmDur, coldDur)
	}
	if !reflect.DeepEqual(coldSW.Results, warmSW.Results) {
		t.Error("warm sweep results differ from cold")
	}
	for name, pa := range coldSW.Profiles {
		pb := warmSW.Profiles[name]
		if pa.WallNS != pb.WallNS || pa.CacheKey != pb.CacheKey {
			t.Errorf("%s: warm profile (wall %d, key %s) differs from cold (wall %d, key %s)",
				name, pb.WallNS, pb.CacheKey, pa.WallNS, pa.CacheKey)
		}
		if !reflect.DeepEqual(pa.Selection, pb.Selection) {
			t.Errorf("%s: warm selection differs from cold", name)
		}
	}
}

// TestCachedMatchesUncached: attaching a cache must not change a single
// computed bit relative to the plain pipeline — only the wall-clock
// bookkeeping (and the cache fingerprint) may differ.
func TestCachedMatchesUncached(t *testing.T) {
	ctx := context.Background()
	fc := DefaultFlowConfig()
	cfg := boom.LargeBOOM()
	w1, err := workloads.Build("qsort", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := workloads.Build("qsort", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}

	plain := New(fc, WithScale(workloads.ScaleTiny))
	cached := New(fc, WithScale(workloads.ScaleTiny), WithCache(t.TempDir()))

	p1, err := plain.Profile(ctx, w1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cached.Profile(ctx, w2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Vectors, p2.Vectors) ||
		!reflect.DeepEqual(p1.Selection, p2.Selection) ||
		!reflect.DeepEqual(p1.Checkpoints, p2.Checkpoints) ||
		!reflect.DeepEqual(p1.WarmupInsts, p2.WarmupInsts) ||
		p1.TotalInsts != p2.TotalInsts || p1.NumBlocks != p2.NumBlocks {
		t.Fatal("cached profile differs from uncached")
	}
	if p2.CacheKey == "" {
		t.Fatal("cached profile has no CacheKey")
	}

	r1, err := plain.Run(ctx, p1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cached.Run(ctx, p2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := *r1, *r2
	a.MeasureWallNS, b.MeasureWallNS = 0, 0
	if !reflect.DeepEqual(&a, &b) {
		t.Fatal("cached result differs from uncached")
	}
}

// TestCacheVerifyPassesAndDetectsDivergence: -cache-verify semantics. A
// clean warm pass verifies silently; a poisoned artifact (valid entry,
// wrong content — the case checksums cannot catch) fails loudly.
func TestCacheVerifyPassesAndDetectsDivergence(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	fc := DefaultFlowConfig()
	w, err := workloads.Build("sha", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}

	cold := New(fc, WithScale(workloads.ScaleTiny), WithCache(dir))
	if _, err := cold.Profile(ctx, w); err != nil {
		t.Fatal(err)
	}

	verify := New(fc, WithScale(workloads.ScaleTiny), WithCache(dir), WithCacheVerify(true))
	if _, err := verify.Profile(ctx, w); err != nil {
		t.Fatalf("verify pass over a clean cache failed: %v", err)
	}

	// Poison the selection artifact with a well-formed but wrong payload.
	bogus := &simpoint.Result{
		K:        1,
		Coverage: 1,
		Points:   []simpoint.Point{{Interval: 0, Cluster: 0, Weight: 1}},
		Selected: []simpoint.Point{{Interval: 0, Cluster: 0, Weight: 1}},
	}
	var buf bytes.Buffer
	if err := simpoint.EncodeResult(&buf, bogus); err != nil {
		t.Fatal(err)
	}
	keys := cold.profileKeys(w, sampling.Spec{})
	if err := cold.Cache().Put(keys.sel, buf.Bytes(), 1); err != nil {
		t.Fatal(err)
	}

	_, err = verify.Profile(ctx, w)
	if err == nil {
		t.Fatal("verify accepted a poisoned artifact")
	}
	if !strings.Contains(err.Error(), "cache verify") {
		t.Fatalf("poisoned artifact error %q does not mention cache verify", err)
	}

	// Without verification the poisoned-but-decodable entry is simply
	// served — that asymmetry is exactly what -cache-verify exists for —
	// while a fresh cold run elsewhere stays correct.
	if _, err := cold.Profile(ctx, w); err != nil {
		t.Fatalf("non-verify run over poisoned cache errored: %v", err)
	}
}

// TestCacheCorruptEntryRecomputes: flipping bits on disk must degrade to
// a recompute-and-heal, never a wrong result.
func TestCacheCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	fc := DefaultFlowConfig()
	w, err := workloads.Build("bitcount", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	r := New(fc, WithScale(workloads.ScaleTiny), WithCache(dir))
	p1, err := r.Profile(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	corruptAllCacheFiles(t, dir)
	p2, err := r.Profile(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Selection, p2.Selection) {
		t.Fatal("recompute after corruption changed the selection")
	}
	// The healed entries serve the next run again.
	p3, err := r.Profile(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Selection, p3.Selection) {
		t.Fatal("healed cache served a different selection")
	}
}
