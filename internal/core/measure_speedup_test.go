package core

// The `make bench-measure` smoke gate: a single-workload MegaBOOM cell at
// -j1 vs -j4 must produce byte-identical canonical results, and — when
// the machine actually has cores to parallelize onto — the -j4 measure
// must be faster on the wall clock. The digest half runs on any machine;
// the timing half needs >= 4 CPUs (a single-core container can only pay
// scheduling overhead for its helpers, so asserting speedup there would
// test the host, not the code).

import (
	"bytes"
	"context"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/boom"
)

func TestMeasurePointSpeedup(t *testing.T) {
	if os.Getenv("BOOM_MEASURE_SPEEDUP") == "" {
		t.Skip("set BOOM_MEASURE_SPEEDUP=1 (make bench-measure) to run the measure-stage gate")
	}
	p := profileOf(t, "sha")
	if p.NumSimPoints() < 2 {
		t.Fatalf("sha selected %d simulation points; the gate needs >= 2", p.NumSimPoints())
	}
	cfg := boom.MegaBOOM()

	run := func(par int) (*Result, time.Duration) {
		r := New(DefaultFlowConfig(), WithParallelism(par))
		var res *Result
		best := time.Duration(1<<63 - 1)
		for k := 0; k < 3; k++ { // best-of-3 damps scheduler noise
			t0 := time.Now()
			out, err := r.Run(context.Background(), p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
			res = out
		}
		return res, best
	}
	r1, d1 := run(1)
	r4, d4 := run(4)

	b1, err := EncodeMeasuredResult(r1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := EncodeMeasuredResult(r4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b4) {
		t.Fatalf("-j1 and -j4 digests differ (%d vs %d bytes)", len(b1), len(b4))
	}
	t.Logf("measure %s/%s (%d points): j1=%v j4=%v (%.2fx)",
		p.Workload.Name, cfg.Name, p.NumSimPoints(), d1, d4, d1.Seconds()/d4.Seconds())

	if runtime.NumCPU() < 4 {
		t.Skipf("digests identical; skipping wall-clock assertion on %d CPU(s)", runtime.NumCPU())
	}
	if d4 >= d1 {
		t.Errorf("-j4 measure (%v) not faster than -j1 (%v)", d4, d1)
	}
}
