package core

// Tests for intra-cell point parallelism (points.go, DESIGN §17): the
// worker pool must claim every checkpoint exactly once, the ordered
// reduce must be bit-identical at any parallelism and any completion
// order, and the two silent-failure bugs in the measure path — a
// swallowed per-point estimate error and a zero-coverage division —
// must stay fixed.

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/boom"
	"repro/internal/power"
	"repro/internal/simpoint"
)

// TestEstimateErrorSurfaced is the regression for the swallowed per-point
// estimate failure: before the fix a non-nil EstimateInto error dropped
// the point from res.Points while the aggregate kept its stats — reports
// went inconsistent with no error anywhere. A failing estimate (here
// injected at the core.estimate site, which feeds the same error path)
// must now fail the cell with a StageEstimate error.
func TestEstimateErrorSurfaced(t *testing.T) {
	p := profileOf(t, "sha")
	r := New(DefaultFlowConfig(),
		WithFaultInjector(mustInj(t, "1:core.estimate/sha/MediumBOOM=error")))
	_, err := r.Run(context.Background(), p, boom.MediumBOOM())
	if err == nil {
		t.Fatal("estimate failure was swallowed: Run returned nil error")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("want *StageError, got %T: %v", err, err)
	}
	if se.Stage != StageEstimate {
		t.Errorf("stage %q, want %q", se.Stage, StageEstimate)
	}
}

// TestCoverageZeroSkipsNormalization is the regression for the NaN
// poisoning: a degenerate selection with Coverage == 0 used to divide
// every slot power by zero. The guard must keep the result finite (and
// the same for a NaN or +Inf coverage).
func TestCoverageZeroSkipsNormalization(t *testing.T) {
	p := profileOf(t, "bitcount")
	for _, cov := range []float64{0, math.NaN(), math.Inf(1)} {
		p.Selection.Coverage = cov
		res, err := New(DefaultFlowConfig()).Run(context.Background(), p, boom.MediumBOOM())
		if err != nil {
			t.Fatalf("coverage %v: %v", cov, err)
		}
		for s, v := range res.Slots {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("coverage %v poisoned slot %d power: %v", cov, s, v)
			}
		}
		if len(res.Points) != res.NumPoints {
			t.Fatalf("coverage %v: %d point results for %d points",
				cov, len(res.Points), res.NumPoints)
		}
	}
}

// TestPointParallelismBitIdentical is the determinism suite for the
// parallel merge: the same cell measured serially and with every core
// sharing the budget must produce byte-identical canonical results.
// Running under -race additionally makes this the pool's race check.
func TestPointParallelismBitIdentical(t *testing.T) {
	p := profileOf(t, "stringsearch")
	for _, cfg := range []boom.Config{boom.MediumBOOM(), boom.MegaBOOM()} {
		serial, err := New(DefaultFlowConfig(), WithParallelism(1)).
			Run(context.Background(), p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := New(DefaultFlowConfig(), WithParallelism(runtime.NumCPU())).
			Run(context.Background(), p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := EncodeMeasuredResult(serial)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := EncodeMeasuredResult(wide)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, wb) {
			t.Errorf("%s: -j1 and -j%d results differ (%d vs %d bytes)",
				cfg.Name, runtime.NumCPU(), len(sb), len(wb))
		}
	}
}

// TestRunPointsClaimsEachIndexOnce: the pool's atomic index claim must
// hand every point to exactly one worker, for pools narrower and wider
// than the work.
func TestRunPointsClaimsEachIndexOnce(t *testing.T) {
	for _, par := range []int{1, 3, 16} {
		for _, n := range []int{0, 1, 5, 33} {
			r := New(DefaultFlowConfig(), WithParallelism(par))
			counts := make([]atomic.Int32, n+1)
			r.runPoints(n, func(i int, _ *power.Report) {
				counts[i].Add(1)
			})
			for i := 0; i < n; i++ {
				if got := counts[i].Load(); got != 1 {
					t.Errorf("par=%d n=%d: point %d ran %d times", par, n, i, got)
				}
			}
		}
	}
}

// splitmix64 is the deterministic generator behind the synthetic reduce
// inputs: the same seed always replays the same measurement stream.
func splitmix64(seed uint64) func() uint64 {
	return func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// TestOrderedReduceShuffledCompletion property-tests the ordered reduce:
// workers deposit synthetic per-point measurements under deliberately
// skewed completion orders (a different pseudo-random delay pattern each
// round), and every round's fold must be bit-identical to a serial
// reference fold of the same inputs. The fold mutates its inputs
// (ScaleWeighted), so each round regenerates them from the same seed.
func TestOrderedReduceShuffledCompletion(t *testing.T) {
	cfg := boom.MediumBOOM()
	const n = 12
	sel := &simpoint.Result{Coverage: 0.95}
	selRng := splitmix64(7)
	for i := 0; i < n; i++ {
		sel.Selected = append(sel.Selected,
			simpoint.Point{Interval: i, Weight: float64(selRng()%1000) / 1000.0})
	}
	mkOuts := func() []pointOutput {
		next := splitmix64(42)
		outs := make([]pointOutput, n)
		for i := range outs {
			st := boom.NewStats(&cfg)
			st.Cycles = next() % 1e6
			st.Insts = next() % 1e6
			st.Branches = next() % 1e5
			st.Mispredicts = next() % 1e4
			for s := range st.IntIssueSlotCycles {
				st.IntIssueSlotCycles[s] = next() % 1e6
			}
			slots := make([]float64, cfg.IntIssueSlots)
			for s := range slots {
				slots[s] = float64(next()%1e9) / 1e3
			}
			outs[i] = pointOutput{
				stats:    st,
				slots:    slots,
				point:    PointResult{Interval: int64(i), Weight: sel.Selected[i].Weight},
				detailed: next() % 1e6,
			}
		}
		return outs
	}
	refAgg, refSlots, refPoints, refDet := foldPoints(&cfg, sel, mkOuts())

	for round := 0; round < 8; round++ {
		fresh := mkOuts()
		outs := make([]pointOutput, n)
		r := New(DefaultFlowConfig(), WithParallelism(8))
		delayRng := splitmix64(uint64(round) + 1000)
		delays := make([]time.Duration, n)
		for i := range delays {
			delays[i] = time.Duration(delayRng()%3000) * time.Microsecond
		}
		r.runPoints(n, func(i int, _ *power.Report) {
			time.Sleep(delays[i])
			outs[i] = fresh[i]
		})
		agg, aggSlots, points, det := foldPoints(&cfg, sel, outs)
		if agg.Cycles != refAgg.Cycles || agg.Insts != refAgg.Insts || det != refDet {
			t.Fatalf("round %d: aggregate differs from serial reference", round)
		}
		for s := range aggSlots {
			if aggSlots[s] != refSlots[s] {
				t.Fatalf("round %d: slot %d power %v != %v (not bit-identical)",
					round, s, aggSlots[s], refSlots[s])
			}
		}
		for i := range points {
			if points[i] != refPoints[i] {
				t.Fatalf("round %d: point %d result reordered", round, i)
			}
		}
	}
}
