// Package core implements the paper's contribution: the end-to-end
// SimPoint-based RTL power/performance evaluation flow (Figs. 3 and 4).
//
// For one workload the flow is:
//
//  1. Profile — execute the workload on the functional simulator while the
//     BBV profiler splits it into intervals (gem5's role).
//  2. Select — cluster the interval BBVs and pick the representative
//     simulation points with ≥90 % coverage (SimPoint 3.0's role).
//  3. Checkpoint — re-execute functionally and capture an architectural
//     checkpoint shortly before each simulation point (Spike's role).
//  4. Measure — restore each checkpoint into the BOOM timing model, warm up
//     caches and predictors, then measure the interval; weight each
//     interval's activity by its cluster weight (Chipyard+Verilator role).
//  5. Estimate — convert the weighted activity into per-component power
//     through the Joules-style flow in internal/power.
//
// The same API also supports full-workload detailed simulation, which is
// what the SimPoint methodology is being compared against (the paper's 45×
// speedup and its accuracy validation).
//
// The flow is driven through a Runner constructed with New and functional
// options (WithScale, WithLib, WithMetrics, WithParallelism, WithProgress,
// and the supervision/caching options — see runner.go). Every Runner method
// takes a context.Context with cooperative cancellation at interval
// boundaries, and every stage is wrapped in a span when a metrics registry
// is attached.
package core

import (
	"fmt"

	"repro/internal/asap7"
	"repro/internal/bbv"
	"repro/internal/boom"
	"repro/internal/ckpt"
	"repro/internal/mav"
	"repro/internal/power"
	"repro/internal/sampling"
	"repro/internal/sim"
	"repro/internal/simpoint"
	"repro/internal/workloads"
)

// FlowConfig parameterizes the flow.
type FlowConfig struct {
	SimPoint    simpoint.Config
	WarmupInsts int64 // detailed-model warm-up before each measured interval
	Lib         asap7.Library
}

// DefaultFlowConfig mirrors the paper's setup: SimPoint 3.0 defaults with
// ≥90 % coverage and a warm-up before each simulation point.
func DefaultFlowConfig() FlowConfig {
	return FlowConfigFor(workloads.ScaleTiny)
}

// FlowConfigFor scales the flow with the workload scale: the warm-up window
// tracks the paper's proportion of its 1–2 M-instruction intervals, and the
// cluster cap tightens at experiment scales — the paper's Table II lands at
// 1–3 simulation points per benchmark, which requires phases to merge
// rather than fragment across interval-boundary drift.
func FlowConfigFor(scale workloads.Scale) FlowConfig {
	sp := simpoint.DefaultConfig()
	warm := int64(10_000)
	switch scale {
	case workloads.ScaleDefault:
		warm = 50_000
		sp.MaxK = 10
	case workloads.ScalePaper:
		warm = 500_000
		sp.MaxK = 8
	}
	return FlowConfig{
		SimPoint:    sp,
		WarmupInsts: warm,
		Lib:         asap7.Default(),
	}
}

// Profile is the result of steps 1–3 for one workload (config-independent).
type Profile struct {
	Workload    *workloads.Workload
	Sampling    sampling.Spec // spec the profile was taken under (zero = legacy)
	Interval    int64         // resolved interval length (spec override or Workload.IntervalSize)
	TotalInsts  uint64
	Vectors     []bbv.Vector
	MAVs        []mav.Vector // per-interval memory-access vectors; nil unless Sampling.UseMAV
	NumBlocks   int
	Selection   *simpoint.Result
	Checkpoints []*ckpt.Checkpoint // aligned with Selection.Selected
	WarmupInsts []int64            // actual warm-up available per checkpoint
	WallNS      int64              // compute wall-clock of steps 1–3 (cache hits report the original cost)
	CacheKey    string             // artifact-chain fingerprint of steps 1–3; empty without a cache
}

// NumSimPoints returns the number of selected simulation points (the
// "# Simpoints" column of Table II).
func (p *Profile) NumSimPoints() int { return len(p.Selection.Selected) }

// PointResult is the measurement of one simulation point — the phase-level
// view the SimPoint methodology provides for free.
type PointResult struct {
	Interval int64   // interval index in the program
	Weight   float64 // cluster weight
	IPC      float64
	PowerMW  float64 // tile power during this phase
}

// Result is one (workload, config) evaluation.
type Result struct {
	Workload     string
	Suite        string
	ConfigName   string
	Mode         string // "simpoint" or "full"
	TotalInsts   uint64 // full workload length
	IntervalSize int64
	NumPoints    int
	Coverage     float64
	K            int

	Stats  *boom.Stats   // weighted-aggregate activity
	Power  *power.Report // per-component power
	Slots  []float64     // per-int-issue-slot power (Fig. 8)
	Points []PointResult // per-simulation-point phase measurements

	DetailedInsts uint64 // instructions run on the detailed model
	MeasureWallNS int64  // measured wall-clock of steps 4–5
}

// IPC returns the (weighted) instructions per cycle.
func (r *Result) IPC() float64 { return r.Stats.IPC() }

// TotalPowerMW returns tile power.
func (r *Result) TotalPowerMW() float64 { return r.Power.TotalMW() }

// PerfPerWatt returns IPC per watt (Fig. 11's metric).
func (r *Result) PerfPerWatt() float64 {
	return r.IPC() / (r.TotalPowerMW() / 1000.0)
}

// traceSource adapts a functional CPU into a timing-model trace source.
// A functional-step divergence ends the trace and is captured in err for
// the caller to surface as a stage failure (never a panic).
type traceSource struct {
	cpu *sim.CPU
	err error
}

func (t *traceSource) next(r *sim.Retired) bool {
	if t.err != nil || t.cpu.Halted {
		return false
	}
	if err := t.cpu.Step(r); err != nil {
		t.err = fmt.Errorf("core: functional step diverged: %w", err)
		return false
	}
	return true
}

// Sweep holds a full experiment: every workload × configuration. Under
// WithKeepGoing the maps may be partial — a failed profile leaves its
// workload out of Profiles, a failed measurement leaves its (config,
// workload) cell out of Results — while Names and ConfigNames always
// record the full campaign as requested, so reports can render explicit
// FAILED cells instead of silently shrinking.
type Sweep struct {
	Flow        FlowConfig
	Scale       workloads.Scale
	Sampling    sampling.Spec                 // effective sampling spec (zero = legacy defaults)
	Names       []string                      // requested workloads, request order
	ConfigNames []string                      // requested configs, request order
	Profiles    map[string]*Profile           // by workload (may be partial)
	Results     map[string]map[string]*Result // [config][workload] (may be partial)
}

// SpeedupReport quantifies the simulation-time reduction of the SimPoint
// methodology (the paper's 45×): detailed-model instructions with SimPoints
// vs simulating every workload in full, plus the measured wall-clock cost
// of the flow so the reported speedup is backed by real time, not
// instruction counts alone.
type SpeedupReport struct {
	FullInsts     uint64
	DetailedInsts uint64
	ProfileWallNS int64 // measured wall-clock of functional profiling (steps 1–3)
	MeasureWallNS int64 // measured wall-clock of detailed measurement (steps 4–5)
}

// Speedup returns the instruction-count reduction factor.
func (s SpeedupReport) Speedup() float64 {
	if s.DetailedInsts == 0 {
		return 0
	}
	return float64(s.FullInsts) / float64(s.DetailedInsts)
}

// FlowWallNS returns the measured wall-clock of the whole SimPoint flow.
func (s SpeedupReport) FlowWallNS() int64 { return s.ProfileWallNS + s.MeasureWallNS }

// EstFullWallNS estimates the wall-clock of simulating everything on the
// detailed model, from the measured per-instruction detailed-model cost.
func (s SpeedupReport) EstFullWallNS() int64 {
	if s.DetailedInsts == 0 {
		return 0
	}
	perInst := float64(s.MeasureWallNS) / float64(s.DetailedInsts)
	return int64(perInst * float64(s.FullInsts))
}

// WallSpeedup returns the measured wall-clock speedup of the SimPoint flow
// (profiling + detailed measurement) over an estimated full detailed
// simulation. Zero when no wall-clock data was recorded.
func (s SpeedupReport) WallSpeedup() float64 {
	flow := s.FlowWallNS()
	if flow == 0 || s.MeasureWallNS == 0 || s.DetailedInsts == 0 {
		return 0
	}
	return float64(s.EstFullWallNS()) / float64(flow)
}

// SpeedupOf summarizes a sweep's simulation-cost saving. Each workload's
// profiling wall-clock is counted once (profiles are shared across
// configs); detailed measurement wall-clock is summed per (config,
// workload) pair.
func (sw *Sweep) SpeedupOf() SpeedupReport {
	var rep SpeedupReport
	for _, p := range sw.Profiles {
		rep.ProfileWallNS += p.WallNS
	}
	for _, perCfg := range sw.Results {
		for _, r := range perCfg {
			rep.FullInsts += r.TotalInsts
			rep.DetailedInsts += r.DetailedInsts
			rep.MeasureWallNS += r.MeasureWallNS
		}
	}
	return rep
}

// Accuracy compares the SimPoint-estimated IPC against a full detailed run
// for one workload/config (the methodology's validation).
type Accuracy struct {
	Workload    string
	ConfigName  string
	SimPointIPC float64
	FullIPC     float64
}

// ErrorPct returns the relative IPC error in percent.
func (a Accuracy) ErrorPct() float64 {
	if a.FullIPC == 0 {
		return 0
	}
	return 100 * (a.SimPointIPC - a.FullIPC) / a.FullIPC
}
