// Package core implements the paper's contribution: the end-to-end
// SimPoint-based RTL power/performance evaluation flow (Figs. 3 and 4).
//
// For one workload the flow is:
//
//  1. Profile — execute the workload on the functional simulator while the
//     BBV profiler splits it into intervals (gem5's role).
//  2. Select — cluster the interval BBVs and pick the representative
//     simulation points with ≥90 % coverage (SimPoint 3.0's role).
//  3. Checkpoint — re-execute functionally and capture an architectural
//     checkpoint shortly before each simulation point (Spike's role).
//  4. Measure — restore each checkpoint into the BOOM timing model, warm up
//     caches and predictors, then measure the interval; weight each
//     interval's activity by its cluster weight (Chipyard+Verilator role).
//  5. Estimate — convert the weighted activity into per-component power
//     through the Joules-style flow in internal/power.
//
// The same API also supports full-workload detailed simulation, which is
// what the SimPoint methodology is being compared against (the paper's 45×
// speedup and its accuracy validation).
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/asap7"
	"repro/internal/bbv"
	"repro/internal/boom"
	"repro/internal/ckpt"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/simpoint"
	"repro/internal/workloads"
)

// FlowConfig parameterizes the flow.
type FlowConfig struct {
	SimPoint    simpoint.Config
	WarmupInsts int64 // detailed-model warm-up before each measured interval
	Lib         asap7.Library
}

// DefaultFlowConfig mirrors the paper's setup: SimPoint 3.0 defaults with
// ≥90 % coverage and a warm-up before each simulation point.
func DefaultFlowConfig() FlowConfig {
	return FlowConfigFor(workloads.ScaleTiny)
}

// FlowConfigFor scales the flow with the workload scale: the warm-up window
// tracks the paper's proportion of its 1–2 M-instruction intervals, and the
// cluster cap tightens at experiment scales — the paper's Table II lands at
// 1–3 simulation points per benchmark, which requires phases to merge
// rather than fragment across interval-boundary drift.
func FlowConfigFor(scale workloads.Scale) FlowConfig {
	sp := simpoint.DefaultConfig()
	warm := int64(10_000)
	switch scale {
	case workloads.ScaleDefault:
		warm = 50_000
		sp.MaxK = 10
	case workloads.ScalePaper:
		warm = 500_000
		sp.MaxK = 8
	}
	return FlowConfig{
		SimPoint:    sp,
		WarmupInsts: warm,
		Lib:         asap7.Default(),
	}
}

// Profile is the result of steps 1–3 for one workload (config-independent).
type Profile struct {
	Workload    *workloads.Workload
	TotalInsts  uint64
	Vectors     []bbv.Vector
	NumBlocks   int
	Selection   *simpoint.Result
	Checkpoints []*ckpt.Checkpoint // aligned with Selection.Selected
	WarmupInsts []int64            // actual warm-up available per checkpoint
}

// NumSimPoints returns the number of selected simulation points (the
// "# Simpoints" column of Table II).
func (p *Profile) NumSimPoints() int { return len(p.Selection.Selected) }

// ProfileWorkload runs steps 1–3 of the flow.
func ProfileWorkload(w *workloads.Workload, fc FlowConfig) (*Profile, error) {
	// Step 1: functional execution + BBV profiling.
	cpu, err := w.NewCPU()
	if err != nil {
		return nil, err
	}
	profiler := bbv.NewProfiler(w.IntervalSize)
	n, err := cpu.RunTrace(-1, profiler.Observe)
	if err != nil {
		return nil, fmt.Errorf("core: profiling %s: %w", w.Name, err)
	}
	if !cpu.Halted {
		return nil, fmt.Errorf("core: %s did not halt", w.Name)
	}
	profiler.Finish()

	// Step 2: SimPoint selection.
	sel, err := simpoint.Choose(profiler.Vectors(), fc.SimPoint)
	if err != nil {
		return nil, fmt.Errorf("core: simpoint selection for %s: %w", w.Name, err)
	}

	p := &Profile{
		Workload:   w,
		TotalInsts: uint64(n),
		Vectors:    profiler.Vectors(),
		NumBlocks:  profiler.NumBlocks(),
		Selection:  sel,
	}

	// Step 3: checkpoint creation. Checkpoints are taken WarmupInsts before
	// each simulation point (clamped at program start), in one functional
	// pass over the sorted capture points.
	type capturePoint struct {
		at       int64 // instruction count where the checkpoint is taken
		selIdx   int
		interval int64
	}
	caps := make([]capturePoint, len(sel.Selected))
	for i, pt := range sel.Selected {
		start := int64(pt.Interval) * w.IntervalSize
		at := start - fc.WarmupInsts
		if at < 0 {
			at = 0
		}
		caps[i] = capturePoint{at: at, selIdx: i, interval: int64(pt.Interval)}
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].at < caps[j].at })

	cpu2, err := w.NewCPU()
	if err != nil {
		return nil, err
	}
	p.Checkpoints = make([]*ckpt.Checkpoint, len(caps))
	p.WarmupInsts = make([]int64, len(caps))
	var executed int64
	for _, cp := range caps {
		if delta := cp.at - executed; delta > 0 {
			if _, err := cpu2.Run(delta); err != nil {
				return nil, fmt.Errorf("core: checkpointing %s: %w", w.Name, err)
			}
			executed = cp.at
		}
		k := ckpt.Capture(cpu2)
		k.Interval = cp.interval
		k.Weight = sel.Selected[cp.selIdx].Weight
		p.Checkpoints[cp.selIdx] = k
		p.WarmupInsts[cp.selIdx] = cp.interval*w.IntervalSize - cp.at
	}
	return p, nil
}

// PointResult is the measurement of one simulation point — the phase-level
// view the SimPoint methodology provides for free.
type PointResult struct {
	Interval int64   // interval index in the program
	Weight   float64 // cluster weight
	IPC      float64
	PowerMW  float64 // tile power during this phase
}

// Result is one (workload, config) evaluation.
type Result struct {
	Workload     string
	Suite        string
	ConfigName   string
	Mode         string // "simpoint" or "full"
	TotalInsts   uint64 // full workload length
	IntervalSize int64
	NumPoints    int
	Coverage     float64
	K            int

	Stats  *boom.Stats   // weighted-aggregate activity
	Power  *power.Report // per-component power
	Slots  []float64     // per-int-issue-slot power (Fig. 8)
	Points []PointResult // per-simulation-point phase measurements

	DetailedInsts uint64 // instructions run on the detailed model
}

// IPC returns the (weighted) instructions per cycle.
func (r *Result) IPC() float64 { return r.Stats.IPC() }

// TotalPowerMW returns tile power.
func (r *Result) TotalPowerMW() float64 { return r.Power.TotalMW() }

// PerfPerWatt returns IPC per watt (Fig. 11's metric).
func (r *Result) PerfPerWatt() float64 {
	return r.IPC() / (r.TotalPowerMW() / 1000.0)
}

// traceFn adapts a functional CPU into a timing-model trace source.
func traceFn(cpu *sim.CPU) func(*sim.Retired) bool {
	return func(r *sim.Retired) bool {
		if cpu.Halted {
			return false
		}
		if err := cpu.Step(r); err != nil {
			panic(fmt.Sprintf("core: functional step diverged: %v", err))
		}
		return true
	}
}

// RunSimPoint executes steps 4–5: measure every selected simulation point
// on cfg and aggregate by cluster weight.
func RunSimPoint(p *Profile, cfg boom.Config, fc FlowConfig) (*Result, error) {
	est := power.NewEstimator(cfg, fc.Lib)
	agg := boom.NewStats(&cfg)
	aggSlots := make([]float64, cfg.IntIssueSlots)
	var points []PointResult
	var detailed uint64

	prog, err := p.Workload.Program()
	if err != nil {
		return nil, err
	}
	for i, k := range p.Checkpoints {
		cpu := sim.New()
		cpu.Load(prog) // establish the decode window
		k.Restore(cpu)
		core := boom.New(cfg)
		next := traceFn(cpu)
		if warm := uint64(p.WarmupInsts[i]); warm > 0 {
			core.Run(next, warm)
			detailed += warm
		}
		core.ResetStats()
		ran := core.Run(next, uint64(p.Workload.IntervalSize))
		detailed += ran
		st := core.Stats()

		w := p.Selection.Selected[i].Weight
		if rep, perr := est.Estimate(st); perr == nil {
			points = append(points, PointResult{
				Interval: p.Checkpoints[i].Interval,
				Weight:   w,
				IPC:      st.IPC(),
				PowerMW:  rep.TotalMW(),
			})
		}
		slots := est.SlotPower(st)
		for s := range aggSlots {
			aggSlots[s] += w * slots[s]
		}
		st.ScaleWeighted(w)
		agg.Add(st)
	}
	rep, err := est.Estimate(agg)
	if err != nil {
		return nil, err
	}
	// Normalize the weighted slot powers by coverage so partial coverage
	// does not deflate them.
	for s := range aggSlots {
		aggSlots[s] /= p.Selection.Coverage
	}
	return &Result{
		Workload:      p.Workload.Name,
		Suite:         p.Workload.Suite,
		ConfigName:    cfg.Name,
		Mode:          "simpoint",
		TotalInsts:    p.TotalInsts,
		IntervalSize:  p.Workload.IntervalSize,
		NumPoints:     p.NumSimPoints(),
		Coverage:      p.Selection.Coverage,
		K:             p.Selection.K,
		Stats:         agg,
		Power:         rep,
		Slots:         aggSlots,
		Points:        points,
		DetailedInsts: detailed,
	}, nil
}

// RunFull executes the entire workload on the detailed model (the baseline
// the SimPoint methodology replaces).
func RunFull(w *workloads.Workload, cfg boom.Config, fc FlowConfig) (*Result, error) {
	cpu, err := w.NewCPU()
	if err != nil {
		return nil, err
	}
	core := boom.New(cfg)
	ran := core.Run(traceFn(cpu), ^uint64(0))
	st := core.Stats()
	est := power.NewEstimator(cfg, fc.Lib)
	rep, err := est.Estimate(st)
	if err != nil {
		return nil, err
	}
	return &Result{
		Workload:      w.Name,
		Suite:         w.Suite,
		ConfigName:    cfg.Name,
		Mode:          "full",
		TotalInsts:    st.Insts,
		IntervalSize:  w.IntervalSize,
		Stats:         st,
		Power:         rep,
		Slots:         est.SlotPower(st),
		DetailedInsts: ran,
	}, nil
}

// Sweep holds a full experiment: every workload × configuration.
type Sweep struct {
	Flow     FlowConfig
	Scale    workloads.Scale
	Profiles map[string]*Profile           // by workload
	Results  map[string]map[string]*Result // [config][workload]
}

// RunSweep profiles every named workload once and evaluates it on every
// config with the SimPoint flow. Work is spread across CPU cores — every
// (workload, config) measurement is independent and deterministic, so the
// results are identical to a serial run. progress (optional) receives step
// strings.
func RunSweep(names []string, configs []boom.Config, scale workloads.Scale,
	fc FlowConfig, progress func(string)) (*Sweep, error) {
	var noteMu sync.Mutex
	note := func(format string, args ...interface{}) {
		if progress != nil {
			noteMu.Lock()
			progress(fmt.Sprintf(format, args...))
			noteMu.Unlock()
		}
	}
	sw := &Sweep{
		Flow:     fc,
		Scale:    scale,
		Profiles: map[string]*Profile{},
		Results:  map[string]map[string]*Result{},
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(names) {
		workers = len(names)
	}
	if workers < 1 {
		workers = 1
	}

	// Phase 1: profile every workload (parallel across workloads).
	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			w, err := workloads.Build(name, scale)
			if err != nil {
				setErr(err)
				return
			}
			note("profiling %-14s (%s scale)", name, scale)
			p, err := ProfileWorkload(w, fc)
			if err != nil {
				setErr(err)
				return
			}
			mu.Lock()
			sw.Profiles[name] = p
			mu.Unlock()
			note("  %-14s %d insts, %d intervals, k=%d, %d simpoints, %.0f%% coverage",
				name, p.TotalInsts, len(p.Vectors), p.Selection.K, p.NumSimPoints(),
				100*p.Selection.Coverage)
		}(name)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Phase 2: measure every (config, workload) pair (parallel).
	for _, cfg := range configs {
		sw.Results[cfg.Name] = map[string]*Result{}
	}
	for _, cfg := range configs {
		for _, name := range names {
			wg.Add(1)
			go func(cfg boom.Config, name string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				note("measuring %-14s on %s", name, cfg.Name)
				r, err := RunSimPoint(sw.Profiles[name], cfg, fc)
				if err != nil {
					setErr(err)
					return
				}
				mu.Lock()
				sw.Results[cfg.Name][name] = r
				mu.Unlock()
			}(cfg, name)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sw, nil
}

// SpeedupReport quantifies the simulation-time reduction of the SimPoint
// methodology (the paper's 45×): detailed-model instructions with SimPoints
// vs simulating every workload in full.
type SpeedupReport struct {
	FullInsts     uint64
	DetailedInsts uint64
}

// Speedup returns the reduction factor.
func (s SpeedupReport) Speedup() float64 {
	if s.DetailedInsts == 0 {
		return 0
	}
	return float64(s.FullInsts) / float64(s.DetailedInsts)
}

// SpeedupOf summarizes a sweep's simulation-cost saving.
func (sw *Sweep) SpeedupOf() SpeedupReport {
	var rep SpeedupReport
	for _, perCfg := range sw.Results {
		for _, r := range perCfg {
			rep.FullInsts += r.TotalInsts
			rep.DetailedInsts += r.DetailedInsts
		}
	}
	return rep
}

// Accuracy compares the SimPoint-estimated IPC against a full detailed run
// for one workload/config (the methodology's validation).
type Accuracy struct {
	Workload    string
	ConfigName  string
	SimPointIPC float64
	FullIPC     float64
}

// ErrorPct returns the relative IPC error in percent.
func (a Accuracy) ErrorPct() float64 {
	if a.FullIPC == 0 {
		return 0
	}
	return 100 * (a.SimPointIPC - a.FullIPC) / a.FullIPC
}

// ValidateAccuracy runs both the SimPoint flow and the full detailed model.
func ValidateAccuracy(name string, scale workloads.Scale, cfg boom.Config, fc FlowConfig) (*Accuracy, error) {
	w, err := workloads.Build(name, scale)
	if err != nil {
		return nil, err
	}
	p, err := ProfileWorkload(w, fc)
	if err != nil {
		return nil, err
	}
	sp, err := RunSimPoint(p, cfg, fc)
	if err != nil {
		return nil, err
	}
	w2, err := workloads.Build(name, scale)
	if err != nil {
		return nil, err
	}
	full, err := RunFull(w2, cfg, fc)
	if err != nil {
		return nil, err
	}
	return &Accuracy{
		Workload:    name,
		ConfigName:  cfg.Name,
		SimPointIPC: sp.IPC(),
		FullIPC:     full.IPC(),
	}, nil
}
