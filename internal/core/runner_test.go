package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/boom"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// TestRunnerStageSpans is the end-to-end observability check: every flow
// stage must emit a non-zero span, and the stage spans must account for
// (nearly) all of the flow's wall-clock time.
func TestRunnerStageSpans(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New(DefaultFlowConfig(), WithMetrics(reg))
	w, err := workloads.Build("sha", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p, err := r.Profile(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(ctx, p, boom.MediumBOOM())
	if err != nil {
		t.Fatal(err)
	}

	flow := reg.Span("flow")
	total := flow.DurationNS()
	if total <= 0 {
		t.Fatal("flow span has no duration")
	}
	seen := map[string]int64{}
	var sum int64
	for _, c := range flow.Children() {
		d := c.DurationNS()
		seen[c.Name()] = d
		sum += d
	}
	for _, stage := range Stages() {
		if seen[stage] <= 0 {
			t.Errorf("stage span %q missing or zero (%d ns)", stage, seen[stage])
		}
	}
	if frac := float64(sum) / float64(total); frac < 0.85 || frac > 1.02 {
		t.Errorf("stage spans cover %.1f%% of flow wall-clock (want ~100%%)", 100*frac)
	}

	// Throughput and stage-adjacent instrumentation must be populated.
	for _, counter := range []string{
		"sim.insts", "sim.wall_ns",
		"boom.retired", "boom.cycles",
		"power.estimates",
		"simpoint.kmeans.runs", "simpoint.kmeans.iterations",
	} {
		if v := reg.Counter(counter).Value(); v <= 0 {
			t.Errorf("counter %q = %d, want > 0", counter, v)
		}
	}
	if reg.Histogram("sim.kips").Snapshot().Count == 0 {
		t.Error("functional KIPS histogram empty")
	}
	if reg.Histogram("boom.kips").Snapshot().Count == 0 {
		t.Error("detailed KIPS histogram empty")
	}
	if k := reg.Gauge("simpoint.k").Value(); int(k) != p.Selection.K {
		t.Errorf("simpoint.k gauge %v, want %d", k, p.Selection.K)
	}

	// Wall-clock accounting feeding SpeedupReport.
	if p.WallNS <= 0 {
		t.Error("Profile.WallNS not measured")
	}
	if res.MeasureWallNS <= 0 {
		t.Error("Result.MeasureWallNS not measured")
	}
}

// TestRunnerCancellation: a canceled context must stop the flow at the
// next interval boundary with a wrapped, stage-identified error.
func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := New(DefaultFlowConfig())
	w, err := workloads.Build("sha", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Profile(ctx, w); err == nil {
		t.Fatal("Profile must fail on a canceled context")
	} else {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not wrap context.Canceled", err)
		}
		var se *StageError
		if !errors.As(err, &se) {
			t.Errorf("error %T is not a *StageError", err)
		} else if se.Stage != StageProfile || se.Workload != "sha" {
			t.Errorf("wrong identity: stage=%q workload=%q", se.Stage, se.Workload)
		}
	}

	// Run on an existing profile: canceled between simulation points.
	p, err := r.Profile(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, p, boom.MediumBOOM()); err == nil {
		t.Fatal("Run must fail on a canceled context")
	} else if !errors.Is(err, context.Canceled) {
		t.Errorf("Run error %v does not wrap context.Canceled", err)
	}

	if _, err := r.RunFull(ctx, w, boom.MediumBOOM()); err == nil {
		t.Fatal("RunFull must fail on a canceled context")
	}
	if _, err := r.Sweep(ctx, tcamp([]string{"sha"}, []boom.Config{boom.MediumBOOM()})); err == nil {
		t.Fatal("Sweep must fail on a canceled context")
	}
}

// TestStageErrorIdentity: flow errors must carry workload+config+stage
// identity and unwrap to the cause.
func TestStageErrorIdentity(t *testing.T) {
	fc := DefaultFlowConfig()
	fc.SimPoint.Dims = 0 // invalid: surfaces from the select stage
	w, err := workloads.Build("sha", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(fc).Profile(context.Background(), w)
	if err == nil {
		t.Fatal("invalid simpoint config must error")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not a *StageError", err)
	}
	if se.Stage != StageSelect || se.Workload != "sha" {
		t.Errorf("identity stage=%q workload=%q", se.Stage, se.Workload)
	}
	if se.Unwrap() == nil {
		t.Error("StageError must unwrap to its cause")
	}
	for _, want := range []string{StageSelect, "sha"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestSweepParallelismBitIdentical: a metrics-instrumented sweep at n=1
// must be bit-identical to one at n=NumCPU (the determinism contract of
// WithParallelism).
func TestSweepParallelismBitIdentical(t *testing.T) {
	names := []string{"sha", "bitcount"}
	cfgs := []boom.Config{boom.MediumBOOM(), boom.MegaBOOM()}
	ctx := context.Background()

	serialReg := metrics.NewRegistry()
	serial, err := New(DefaultFlowConfig(), WithParallelism(1), WithMetrics(serialReg)).
		Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatal(err)
	}
	parReg := metrics.NewRegistry()
	par, err := New(DefaultFlowConfig(), WithParallelism(runtime.NumCPU()), WithMetrics(parReg)).
		Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		for _, n := range names {
			rs, rp := serial.Results[cfg.Name][n], par.Results[cfg.Name][n]
			if rs.Stats.Cycles != rp.Stats.Cycles || rs.IPC() != rp.IPC() ||
				rs.TotalPowerMW() != rp.TotalPowerMW() {
				t.Errorf("%s/%s differs between n=1 and n=NumCPU", cfg.Name, n)
			}
		}
	}
	// Scheduling metrics must be recorded in both runs.
	wantTasks := int64(len(names) + len(names)*len(cfgs))
	for _, reg := range []*metrics.Registry{serialReg, parReg} {
		if got := reg.Counter("core.sweep.tasks").Value(); got != wantTasks {
			t.Errorf("core.sweep.tasks = %d, want %d", got, wantTasks)
		}
		if reg.Histogram("core.sweep.queue_wait_ns").Snapshot().Count != wantTasks {
			t.Error("queue-wait histogram incomplete")
		}
		if reg.Counter("core.sweep.worker.00.busy_ns").Value() <= 0 {
			t.Error("worker 0 busy time not recorded")
		}
	}
}

// TestSpeedupWallClock: the sweep's speedup report must carry measured
// wall-clock alongside the instruction-count ratio.
func TestSpeedupWallClock(t *testing.T) {
	sw, err := New(DefaultFlowConfig()).
		Sweep(context.Background(), tcamp([]string{"sha"}, []boom.Config{boom.MediumBOOM()}))
	if err != nil {
		t.Fatal(err)
	}
	rep := sw.SpeedupOf()
	if rep.Speedup() <= 0 {
		t.Error("instruction-count speedup missing")
	}
	if rep.ProfileWallNS <= 0 || rep.MeasureWallNS <= 0 {
		t.Errorf("wall-clock not measured: profile=%d measure=%d",
			rep.ProfileWallNS, rep.MeasureWallNS)
	}
	if rep.WallSpeedup() <= 0 || rep.EstFullWallNS() <= 0 {
		t.Errorf("wall speedup not derivable: %+v", rep)
	}
	if rep.FlowWallNS() != rep.ProfileWallNS+rep.MeasureWallNS {
		t.Error("FlowWallNS must sum profile and measure wall time")
	}
}

// TestUtilizationFinite: the worker-utilization ratio must be finite for
// every input, including the degenerate zero-wall-clock sweep that used
// to produce NaN/±Inf and kill -metrics json.
func TestUtilizationFinite(t *testing.T) {
	for _, tc := range []struct {
		busy, wall int64
		want       float64
	}{
		{0, 0, 0},
		{5, 0, 0}, // instant sweep: busy recorded, wall rounded to 0
		{0, 100, 0},
		{-1, -1, 0},
		{50, 100, 0.5},
		{120, 100, 1}, // clock skew: busy may marginally exceed wall
	} {
		got := utilization(tc.busy, tc.wall)
		if got != tc.want {
			t.Errorf("utilization(%d, %d) = %v, want %v", tc.busy, tc.wall, got, tc.want)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("utilization(%d, %d) = %v is not finite", tc.busy, tc.wall, got)
		}
	}
}

// TestZeroDurationSweepMetricsJSON: a degenerate sweep (zero tasks, ~zero
// wall-clock) must leave the registry in a state json.Marshal accepts —
// the regression here was a NaN utilization gauge aborting the whole
// -metrics json emission.
func TestZeroDurationSweepMetricsJSON(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New(DefaultFlowConfig(), WithMetrics(reg))
	if _, err := r.Sweep(context.Background(), tcamp(nil, nil)); err != nil {
		t.Fatal(err)
	}
	// Force the exact degenerate division a zero-duration phase produces.
	reg.Gauge("core.sweep.worker.00.util").Set(utilization(5, 0))
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("zero-duration sweep metrics do not marshal: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("emitted metrics are not valid JSON:\n%s", buf.Bytes())
	}
}
