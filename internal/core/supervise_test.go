package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/boom"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// mustInj parses a chaos spec, failing the test on a grammar error.
func mustInj(t *testing.T, spec string) *faultinject.Injector {
	t.Helper()
	inj, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// payloadOf canonically encodes a result for bit-identity comparison.
func payloadOf(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := encodeResultPayload(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepPanicIsolation: an injected panic inside one (workload, config)
// measurement must be recovered into a *StageError with the captured stack
// — never crash the sweep — and under WithKeepGoing every sibling pair
// must still produce its exact fault-free result.
func TestSweepPanicIsolation(t *testing.T) {
	names := []string{"sha", "bitcount"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	ctx := context.Background()

	ref, err := New(DefaultFlowConfig()).Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	sw, err := New(DefaultFlowConfig(),
		WithKeepGoing(true),
		WithMetrics(reg),
		WithFaultInjector(mustInj(t, "1:core.measure/sha/MediumBOOM=panic")),
	).Sweep(ctx, tcamp(names, cfgs))
	if err == nil {
		t.Fatal("sweep with an injected panic must report an error")
	}
	if sw == nil {
		t.Fatal("keep-going sweep must return partial results alongside the error")
	}
	var se *SweepErrors
	if !errors.As(err, &se) || len(se.Errs) != 1 {
		t.Fatalf("want *SweepErrors with 1 failure, got %v", err)
	}
	var st *StageError
	if !errors.As(se.Errs[0], &st) {
		t.Fatalf("task failure %T is not a *StageError", se.Errs[0])
	}
	if !st.Panicked || len(st.Stack) == 0 {
		t.Errorf("recovered panic must set Panicked and capture the stack: %+v", st)
	}
	if st.Stage != StageMeasure || st.Workload != "sha" || st.Config != "MediumBOOM" {
		t.Errorf("panic identity wrong: stage=%q workload=%q config=%q", st.Stage, st.Workload, st.Config)
	}
	if got := reg.Counter("core.sweep.panics").Value(); got != 1 {
		t.Errorf("core.sweep.panics = %d, want 1", got)
	}
	if got := reg.Counter("core.sweep.tasks_failed").Value(); got != 1 {
		t.Errorf("core.sweep.tasks_failed = %d, want 1", got)
	}
	if sw.Results["MediumBOOM"]["sha"] != nil {
		t.Error("faulted pair must be absent from Results")
	}
	got, want := sw.Results["MediumBOOM"]["bitcount"], ref.Results["MediumBOOM"]["bitcount"]
	if got == nil {
		t.Fatal("sibling pair missing from keep-going results")
	}
	if !bytes.Equal(payloadOf(t, got), payloadOf(t, want)) {
		t.Error("sibling pair not bit-identical to the fault-free run")
	}
	if len(sw.Names) != len(names) || len(sw.ConfigNames) != len(cfgs) {
		t.Errorf("campaign identity not recorded: names=%v configs=%v", sw.Names, sw.ConfigNames)
	}
}

// TestSweepRetryTransient: a transient injected error must be retried with
// backoff and converge on the exact fault-free result.
func TestSweepRetryTransient(t *testing.T) {
	names := []string{"sha"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	ctx := context.Background()

	ref, err := New(DefaultFlowConfig()).Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	sw, err := New(DefaultFlowConfig(),
		WithRetry(2, time.Millisecond),
		WithMetrics(reg),
		WithFaultInjector(mustInj(t, "1:core.measure/sha/MediumBOOM=error")),
	).Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatalf("transient fault with retries must succeed: %v", err)
	}
	if got := reg.Counter("core.sweep.retries").Value(); got != 1 {
		t.Errorf("core.sweep.retries = %d, want 1", got)
	}
	if got := reg.Counter("faultinject.error").Value(); got != 1 {
		t.Errorf("faultinject.error = %d, want 1", got)
	}
	if !bytes.Equal(payloadOf(t, sw.Results["MediumBOOM"]["sha"]),
		payloadOf(t, ref.Results["MediumBOOM"]["sha"])) {
		t.Error("retried result not bit-identical to the fault-free run")
	}

	// Without retries the same transient fault must fail the task.
	if _, err := New(DefaultFlowConfig(),
		WithFaultInjector(mustInj(t, "1:core.measure/sha/MediumBOOM=error")),
	).Sweep(ctx, tcamp(names, cfgs)); err == nil {
		t.Error("transient fault without a retry budget must fail the sweep")
	} else if !IsTransient(err) {
		t.Errorf("surfaced error must keep its transient marker: %v", err)
	}
}

// TestSweepPermanentNotRetried: permanent faults must fail on the first
// attempt even with a retry budget configured.
func TestSweepPermanentNotRetried(t *testing.T) {
	reg := metrics.NewRegistry()
	_, err := New(DefaultFlowConfig(),
		WithRetry(3, time.Millisecond),
		WithMetrics(reg),
		WithFaultInjector(mustInj(t, "1:core.measure/sha/MediumBOOM=error-perm")),
	).Sweep(context.Background(), tcamp([]string{"sha"}, []boom.Config{boom.MediumBOOM()}))
	if err == nil {
		t.Fatal("permanent fault must fail the sweep")
	}
	if IsTransient(err) {
		t.Error("permanent fault must not carry the transient marker")
	}
	if got := reg.Counter("core.sweep.retries").Value(); got != 0 {
		t.Errorf("permanent fault consumed %d retries, want 0", got)
	}
}

// TestSweepDrainAccounting: after a fail-fast error, queued tasks must
// drain unrun — counted in core.sweep.tasks_drained and excluded from the
// tasks counter and the queue-wait histogram.
func TestSweepDrainAccounting(t *testing.T) {
	reg := metrics.NewRegistry()
	_, err := New(DefaultFlowConfig(),
		WithParallelism(1),
		WithMetrics(reg),
		WithFaultInjector(mustInj(t, "1:core.profile/sha=error-perm")),
	).Sweep(context.Background(), tcamp([]string{"sha", "bitcount"}, []boom.Config{boom.MediumBOOM()}))
	if err == nil {
		t.Fatal("sweep must fail fast on a permanent profile fault")
	}
	var st *StageError
	if !errors.As(err, &st) || st.Stage != StageProfile || st.Workload != "sha" {
		t.Errorf("fail-fast error identity wrong: %v", err)
	}
	if got := reg.Counter("core.sweep.tasks_drained").Value(); got != 1 {
		t.Errorf("core.sweep.tasks_drained = %d, want 1", got)
	}
	if got := reg.Counter("core.sweep.tasks").Value(); got != 1 {
		t.Errorf("core.sweep.tasks = %d, want 1 (drained tasks must not count)", got)
	}
	if got := reg.Histogram("core.sweep.queue_wait_ns").Snapshot().Count; got != 1 {
		t.Errorf("queue-wait histogram has %d samples, want 1 (drained tasks must not observe)", got)
	}
}

// TestSweepCancellationStageError: cancelling mid-sweep must surface a
// *StageError naming the phase in flight that wraps context.Canceled,
// while keep-going still hands back the work completed before the cancel.
func TestSweepCancellationStageError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw, err := New(DefaultFlowConfig(),
		WithParallelism(1),
		WithKeepGoing(true),
		WithTaskHook(func(completed int) {
			if completed == 1 {
				cancel()
			}
		}),
	).Sweep(ctx, tcamp([]string{"sha", "bitcount", "qsort"}, []boom.Config{boom.MediumBOOM()}))
	if err == nil {
		t.Fatal("cancelled sweep must report an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	var st *StageError
	if !errors.As(err, &st) {
		t.Fatalf("cancellation error %T does not carry a *StageError", err)
	}
	if st.Stage != StageProfile {
		t.Errorf("cancellation must name the phase in flight, got %q", st.Stage)
	}
	if sw == nil {
		t.Fatal("keep-going must return partial results on cancellation")
	}
	if sw.Profiles["sha"] == nil {
		t.Error("work completed before the cancel must be kept")
	}
	if len(sw.Profiles) != 1 {
		t.Errorf("only the pre-cancel task should have completed, got %d profiles", len(sw.Profiles))
	}
}

// TestChaosCorruptArtifact: a payload corrupted between disk and decode
// must be evicted and recomputed, with the final result bit-identical to
// the fault-free run (the cache self-heals; the report never changes).
func TestChaosCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	names := []string{"sha"}
	cfgs := []boom.Config{boom.MediumBOOM()}
	ctx := context.Background()

	cold, err := New(DefaultFlowConfig(), WithCache(dir)).Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	warm, err := New(DefaultFlowConfig(),
		WithCache(dir),
		WithMetrics(reg),
		WithFaultInjector(mustInj(t, "5:artifact.read/measure=corrupt:4")),
	).Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatalf("corrupted artifact must heal, not fail: %v", err)
	}
	if got := reg.Counter("faultinject.corrupt").Value(); got != 1 {
		t.Errorf("faultinject.corrupt = %d, want 1", got)
	}
	if got := reg.Counter("artifact.evict").Value(); got != 1 {
		t.Errorf("artifact.evict = %d, want 1 (corrupt entry must be evicted)", got)
	}
	if got := reg.Counter("artifact.measure.miss").Value(); got != 1 {
		t.Errorf("artifact.measure.miss = %d, want 1 (evicted entry must recompute)", got)
	}
	if !bytes.Equal(payloadOf(t, warm.Results["MediumBOOM"]["sha"]),
		payloadOf(t, cold.Results["MediumBOOM"]["sha"])) {
		t.Error("recomputed result not bit-identical to the fault-free run")
	}
}

// TestSweepResumeJournal: a failed keep-going sweep leaves a journal; a
// -resume rerun of the identical campaign replays finished tasks through
// the cache and recomputes only what never finished.
func TestSweepResumeJournal(t *testing.T) {
	dir := t.TempDir()
	names := []string{"sha", "bitcount"}
	cfgs := []boom.Config{boom.MediumBOOM(), boom.MegaBOOM()}
	ctx := context.Background()

	ref, err := New(DefaultFlowConfig()).Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatal(err)
	}

	// Run 1: one measurement fails permanently; 5 of 6 tasks journal done.
	sw1, err := New(DefaultFlowConfig(),
		WithCache(dir),
		WithKeepGoing(true),
		WithFaultInjector(mustInj(t, "9:core.measure/bitcount/MegaBOOM=error-perm")),
	).Sweep(ctx, tcamp(names, cfgs))
	if err == nil {
		t.Fatal("run 1 must report the injected failure")
	}
	if sw1.Results["MegaBOOM"]["bitcount"] != nil {
		t.Fatal("faulted pair must be absent from run 1")
	}

	// Run 2: resume the identical campaign without chaos. Finished tasks
	// replay from the cache; only the failed pair recomputes.
	reg := metrics.NewRegistry()
	sw2, err := New(DefaultFlowConfig(),
		WithCache(dir),
		WithResume(true),
		WithMetrics(reg),
	).Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatalf("resume run must complete cleanly: %v", err)
	}
	if got := reg.Counter("core.sweep.tasks_resumed").Value(); got != 5 {
		t.Errorf("core.sweep.tasks_resumed = %d, want 5", got)
	}
	if got := reg.Counter("artifact.measure.miss").Value(); got != 1 {
		t.Errorf("artifact.measure.miss = %d, want 1 (only the unfinished pair recomputes)", got)
	}
	for _, cfg := range cfgs {
		for _, n := range names {
			got, want := sw2.Results[cfg.Name][n], ref.Results[cfg.Name][n]
			if got == nil {
				t.Fatalf("%s/%s missing after resume", cfg.Name, n)
			}
			if !bytes.Equal(payloadOf(t, got), payloadOf(t, want)) {
				t.Errorf("%s/%s not bit-identical to the cache-free run", cfg.Name, n)
			}
		}
	}

	// A different campaign must never replay this journal.
	reg3 := metrics.NewRegistry()
	if _, err := New(DefaultFlowConfig(),
		WithCache(dir),
		WithResume(true),
		WithMetrics(reg3),
	).Sweep(ctx, tcamp([]string{"sha"}, cfgs)); err != nil {
		t.Fatal(err)
	}
	if got := reg3.Counter("core.sweep.tasks_resumed").Value(); got != 0 {
		t.Errorf("foreign campaign resumed %d tasks, want 0", got)
	}
}

// TestStageTimeoutTransient: a tripped per-stage watchdog must surface as
// a transient error (retryable) while the sweep's own context stays live.
func TestStageTimeoutTransient(t *testing.T) {
	reg := metrics.NewRegistry()
	_, err := New(DefaultFlowConfig(),
		WithStageTimeout(time.Nanosecond),
		WithMetrics(reg),
	).Sweep(context.Background(), tcamp([]string{"sha"}, []boom.Config{boom.MediumBOOM()}))
	if err == nil {
		t.Fatal("a 1 ns stage watchdog must trip")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if !IsTransient(err) {
		t.Error("watchdog timeout must be classified transient")
	}
	if got := reg.Counter("core.sweep.timeouts").Value(); got == 0 {
		t.Error("core.sweep.timeouts not counted")
	}
}

// TestChaosSweepAcceptance is the acceptance drill from the issue: a full
// 11-workload × 3-config sweep under WithKeepGoing with a seeded plan
// injecting a panic, a transient error, and corrupted artifacts. The
// process must never crash, and every non-faulted pair must be
// bit-identical to the fault-free run.
func TestChaosSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite chaos drill")
	}
	dir := t.TempDir()
	names := workloads.Names()
	cfgs := boom.Configs()
	ctx := context.Background()

	// Fault-free reference, populating the cache.
	ref, err := New(DefaultFlowConfig(), WithCache(dir)).Sweep(ctx, tcamp(names, cfgs))
	if err != nil {
		t.Fatal(err)
	}

	// Chaos run over the warm cache: every measure read corrupts (forcing
	// evict → recompute), one recomputation panics mid-tick, one throws a
	// transient error that the retry budget absorbs.
	reg := metrics.NewRegistry()
	spec := "42:boom.tick/tarfind/MegaBOOM=panic," +
		"core.measure/dijkstra/LargeBOOM=error," +
		"artifact.read/measure=corrupt:3x*"
	sw, err := New(DefaultFlowConfig(),
		WithCache(dir),
		WithKeepGoing(true),
		WithRetry(2, time.Millisecond),
		WithMetrics(reg),
		WithFaultInjector(mustInj(t, spec)),
	).Sweep(ctx, tcamp(names, cfgs))
	if err == nil {
		t.Fatal("chaos sweep must report its injected failure")
	}
	var se *SweepErrors
	if !errors.As(err, &se) {
		t.Fatalf("chaos sweep error %T is not *SweepErrors", err)
	}
	if len(se.Errs) != 1 {
		t.Fatalf("want exactly 1 failed task (the panic), got %d: %v", len(se.Errs), se.Errs)
	}
	var st *StageError
	if !errors.As(se.Errs[0], &st) || !st.Panicked {
		t.Fatalf("the one failure must be the recovered panic: %v", se.Errs[0])
	}
	if st.Workload != "tarfind" || st.Config != "MegaBOOM" {
		t.Errorf("panic hit %s/%s, want tarfind/MegaBOOM", st.Workload, st.Config)
	}
	if got := reg.Counter("core.sweep.panics").Value(); got != 1 {
		t.Errorf("core.sweep.panics = %d, want 1", got)
	}
	if got := reg.Counter("core.sweep.retries").Value(); got == 0 {
		t.Error("the transient fault must consume a retry")
	}
	if got := reg.Counter("faultinject.corrupt").Value(); got == 0 {
		t.Error("corrupt rule never fired")
	}
	if got := reg.Counter("artifact.evict").Value(); got == 0 {
		t.Error("corrupted entries must be evicted")
	}
	for _, cfg := range cfgs {
		for _, n := range names {
			if cfg.Name == "MegaBOOM" && n == "tarfind" {
				if sw.Results[cfg.Name][n] != nil {
					t.Error("panicked pair must be absent from Results")
				}
				continue
			}
			got, want := sw.Results[cfg.Name][n], ref.Results[cfg.Name][n]
			if got == nil {
				t.Errorf("%s/%s missing from chaos results", cfg.Name, n)
				continue
			}
			if !bytes.Equal(payloadOf(t, got), payloadOf(t, want)) {
				t.Errorf("%s/%s not bit-identical to the fault-free run", cfg.Name, n)
			}
		}
	}
}
