package core

import (
	"bufio"
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/artifact"
	"repro/internal/asap7"
	"repro/internal/bbv"
	"repro/internal/binio"
	"repro/internal/boom"
	"repro/internal/ckpt"
	"repro/internal/mav"
	"repro/internal/power"
	"repro/internal/sampling"
	"repro/internal/simpoint"
	"repro/internal/workloads"
)

// This file threads the content-addressed artifact cache through the flow.
// Each pipeline stage is keyed by a SHA-256 over a canonical encoding of
// everything its output depends on, chained through the upstream stage
// keys:
//
//	bbv        ← workload identity (name, suite, scale, generator output:
//	             source text, data segments, checksum) + interval size
//	select     ← bbv key + simpoint.Config
//	checkpoint ← bbv key + select key + warm-up length
//	measure    ← checkpoint key + boom.Config + asap7.Library
//	full       ← workload identity + boom.Config + asap7.Library
//
// Each stage's payload schema carries its own version; bumping a version
// orphans every entry written under the old schema (never read, the file
// name embeds the version). Payload integrity is the cache's job
// (internal/artifact); payload meaning is versioned here.

// Per-stage payload schema versions. The profile stages carry two
// parallel schema generations: the legacy versions, reserved for the
// zero sampling spec (their keys and payloads are pinned byte-for-byte
// by the equivalence goldens), and the spec-bearing versions, whose key
// structs append the sampling spec so every distinct spec owns a
// distinct cold/warm cache identity.
const (
	bbvSchema     = 1
	selectSchema  = 1
	ckptSchema    = 2 // v2: flate-compressed body
	measureSchema = 1
	fullSchema    = 1

	bbvSpecSchema    = 2 // v2: sampling spec in key; optional MAV section in payload
	selectSpecSchema = 2 // v2: sampling spec in key
	ckptSpecSchema   = 3 // v3: sampling spec (resolved warm-up) in key
)

// maxCachedLen bounds decoded slice lengths (corrupt-payload defense).
const maxCachedLen = 1 << 28

// maxCkptRawLen bounds the inflated size of a checkpoint payload, so a
// corrupt entry cannot act as a decompression bomb.
const maxCkptRawLen = 1 << 31

// workloadIdent is every input that determines a workload's committed
// instruction stream: the generator's name and parameters are fully
// captured by the generated source, data segments and reference checksum.
type workloadIdent struct {
	Name         string
	Suite        string
	Scale        int
	IntervalSize int64
	Checksum     uint64
	Source       string
	Segments     []workloads.Segment
}

func identOf(w *workloads.Workload) workloadIdent {
	return workloadIdent{
		Name:         w.Name,
		Suite:        w.Suite,
		Scale:        int(w.Scale),
		IntervalSize: w.IntervalSize,
		Checksum:     w.Checksum,
		Source:       w.Source,
		Segments:     w.Segments,
	}
}

// profileKeys is the key chain of steps 1–3 for one workload.
type profileKeys struct {
	bbv  artifact.Key
	sel  artifact.Key
	ckpt artifact.Key
}

func (r *Runner) profileKeys(w *workloads.Workload, spec sampling.Spec) profileKeys {
	if spec.IsZero() {
		// Legacy shape, pinned byte-for-byte: pre-spec cache entries and
		// fingerprints must keep resolving. Do not touch these structs.
		var k profileKeys
		k.bbv = artifact.NewKey("bbv", bbvSchema, struct {
			Workload workloadIdent
		}{identOf(w)})
		k.sel = artifact.NewKey("select", selectSchema, struct {
			BBV    string
			Config simpoint.Config
		}{k.bbv.Hex(), r.fc.SimPoint})
		k.ckpt = artifact.NewKey("checkpoint", ckptSchema, struct {
			BBV         string
			Select      string
			WarmupInsts int64
		}{k.bbv.Hex(), k.sel.Hex(), r.fc.WarmupInsts})
		return k
	}
	// Spec-bearing shape: the resolved interval replaces the workload's
	// implicit one in the identity (it determines the committed-stream
	// split), the spec rides in every stage key (features change the BBV
	// payload and the clustering; warm-up policy changes the checkpoints),
	// and the clustering key hashes the resolved simpoint.Config so
	// Dims/MaxK overrides are part of the chain.
	ident := identOf(w)
	ident.IntervalSize = spec.ResolveInterval(w.IntervalSize)
	var k profileKeys
	k.bbv = artifact.NewKey("bbv", bbvSpecSchema, struct {
		Workload workloadIdent
		Sampling sampling.Spec
	}{ident, spec})
	k.sel = artifact.NewKey("select", selectSpecSchema, struct {
		BBV      string
		Config   simpoint.Config
		Sampling sampling.Spec
	}{k.bbv.Hex(), r.simpointConfig(spec), spec})
	k.ckpt = artifact.NewKey("checkpoint", ckptSpecSchema, struct {
		BBV         string
		Select      string
		WarmupInsts int64
	}{k.bbv.Hex(), k.sel.Hex(), spec.ResolveWarmup(ident.IntervalSize, r.fc.WarmupInsts)})
	return k
}

func measureKey(profileKey string, cfg boom.Config, lib asap7.Library) artifact.Key {
	return artifact.NewKey("measure", measureSchema, struct {
		Profile string
		Config  boom.Config
		Lib     asap7.Library
	}{profileKey, cfg, lib})
}

func fullKey(w *workloads.Workload, cfg boom.Config, lib asap7.Library) artifact.Key {
	return artifact.NewKey("full", fullSchema, struct {
		Workload workloadIdent
		Config   boom.Config
		Lib      asap7.Library
	}{identOf(w), cfg, lib})
}

// stageCached runs one pipeline stage under the cache protocol: lookup →
// decode on hit, compute on miss → atomic write. With verification on, a
// hit additionally recomputes the stage and byte-compares the canonical
// payloads, failing loudly on divergence. The returned cost is the stage's
// compute wall-clock — the cached value on a hit, so cached and uncached
// runs report identical timing — and feeds Profile.WallNS /
// Result.MeasureWallNS.
//
// A zero key disables caching for the call (the stage just runs).
func (r *Runner) stageCached(key artifact.Key,
	decode func(payload []byte) error,
	compute func() error,
	encode func() ([]byte, error)) (costNS int64, err error) {

	var cached []byte
	var cachedCost int64
	hit := false
	if r.cache != nil && key.Stage != "" {
		cached, cachedCost, hit = r.cache.Get(key)
	}
	if hit && !r.verify {
		if decode(cached) == nil {
			return cachedCost, nil
		}
		// Undecodable despite an intact checksum (stale schema logic):
		// fall through, recompute, and overwrite the entry.
		hit = false
	}
	t0 := time.Now()
	if err := compute(); err != nil {
		return 0, err
	}
	computed := time.Since(t0).Nanoseconds()
	if r.cache == nil || key.Stage == "" {
		return computed, nil
	}
	fresh, err := encode()
	if err != nil {
		return 0, fmt.Errorf("encoding %s artifact: %w", key.Stage, err)
	}
	if hit { // verification pass
		if !bytes.Equal(fresh, cached) {
			if r.reg != nil {
				r.reg.Counter("artifact.verify.fail").Inc()
			}
			return 0, fmt.Errorf("cache verify: artifact %s diverges from recomputation (cached %d bytes, fresh %d bytes)",
				key, len(cached), len(fresh))
		}
		if r.reg != nil {
			r.reg.Counter("artifact.verify.ok").Inc()
		}
		return cachedCost, nil
	}
	if err := r.cache.Put(key, fresh, computed); err != nil {
		// A failed write is environmental (disk, permissions, injected
		// chaos) — the stage itself computed fine — so mark it retryable.
		return 0, Transient(fmt.Errorf("caching %s artifact: %w", key.Stage, err))
	}
	return computed, nil
}

// wrapStage attaches flow identity to err unless it already carries one.
func wrapStage(stage, workload, config string, err error) error {
	if err == nil {
		return nil
	}
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	return &StageError{Stage: stage, Workload: workload, Config: config, Err: err}
}

// --- Stage payload codecs. All are canonical: one value, one byte
// stream. The BBV payload reuses the SimPoint 3.0 .bb text format (it is
// already deterministic and interoperable); the rest are binary.

func encodeBBVPayload(vectors []bbv.Vector, totalInsts uint64, numBlocks int) ([]byte, error) {
	var body bytes.Buffer
	if err := bbv.WriteBB(&body, vectors); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.U64(totalInsts)
	bw.Int(numBlocks)
	bw.Bytes(body.Bytes())
	return buf.Bytes(), bw.Err()
}

func decodeBBVPayload(payload []byte) (vectors []bbv.Vector, totalInsts uint64, numBlocks int, err error) {
	br := binio.NewReader(bytes.NewReader(payload))
	totalInsts = br.U64()
	numBlocks = br.Int()
	body := br.Bytes(maxCachedLen)
	if err := br.Err(); err != nil {
		return nil, 0, 0, err
	}
	vectors, err = bbv.ReadBB(bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, err
	}
	return vectors, totalInsts, numBlocks, nil
}

// encodeBBVPayloadSpec encodes the profile stage's payload under a
// sampling spec: the legacy layout, followed — only under a bbv+mav spec
// — by a .mav-format section holding the per-interval memory-access
// vectors. Zero-spec payloads are byte-identical to pre-spec ones (the
// spec-bearing key schema keeps the two generations from ever sharing an
// entry, so the section's presence is fully determined by the key).
func encodeBBVPayloadSpec(vectors []bbv.Vector, mavs []mav.Vector, totalInsts uint64, numBlocks int, spec sampling.Spec) ([]byte, error) {
	payload, err := encodeBBVPayload(vectors, totalInsts, numBlocks)
	if err != nil {
		return nil, err
	}
	if !spec.UseMAV() {
		return payload, nil
	}
	var body bytes.Buffer
	if err := mav.WriteMAV(&body, mavs); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(payload)
	bw := binio.NewWriter(&buf)
	bw.Bytes(body.Bytes())
	if err := bw.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeBBVPayloadSpec(payload []byte, spec sampling.Spec) (vectors []bbv.Vector, mavs []mav.Vector, totalInsts uint64, numBlocks int, err error) {
	rd := bytes.NewReader(payload)
	br := binio.NewReader(rd)
	totalInsts = br.U64()
	numBlocks = br.Int()
	body := br.Bytes(maxCachedLen)
	var mavBody []byte
	if spec.UseMAV() {
		mavBody = br.Bytes(maxCachedLen)
	}
	if err := br.Err(); err != nil {
		return nil, nil, 0, 0, err
	}
	vectors, err = bbv.ReadBB(bytes.NewReader(body))
	if err != nil {
		return nil, nil, 0, 0, err
	}
	if spec.UseMAV() {
		mavs, err = mav.ReadMAV(bytes.NewReader(mavBody))
		if err != nil {
			return nil, nil, 0, 0, err
		}
		if len(mavs) != len(vectors) {
			return nil, nil, 0, 0, fmt.Errorf("bbv payload has %d MAV intervals for %d BBV intervals", len(mavs), len(vectors))
		}
	}
	return vectors, mavs, totalInsts, numBlocks, nil
}

// Checkpoint payloads embed full memory page images, which are large but
// extremely repetitive (zeroed pages, data segments duplicated into every
// checkpoint), so the body is flate-compressed. BestSpeed already shrinks
// the worst case (tarfind's ~19 MB filesystem image × every simpoint,
// ~370 MB raw) by two orders of magnitude, which is what keeps warm-cache
// sweeps fast: the dominant cost of a warm profile is reading this entry.
func encodeCkptPayload(cks []*ckpt.Checkpoint, warmups []int64) ([]byte, error) {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	bw := binio.NewWriter(fw)
	bw.Int(len(warmups))
	for _, v := range warmups {
		bw.I64(v)
	}
	if err := bw.Err(); err != nil {
		return nil, err
	}
	if err := ckpt.SerializeAll(fw, cks); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeCkptPayload(payload []byte, wantPoints int) (cks []*ckpt.Checkpoint, warmups []int64, err error) {
	fr := flate.NewReader(bytes.NewReader(payload))
	defer fr.Close()
	rd := bufio.NewReaderSize(io.LimitReader(fr, maxCkptRawLen), 1<<16)
	br := binio.NewReader(rd)
	warmups = make([]int64, br.Len(maxCachedLen))
	for i := range warmups {
		warmups[i] = br.I64()
	}
	if err := br.Err(); err != nil {
		return nil, nil, err
	}
	cks, err = ckpt.DeserializeAll(rd)
	if err != nil {
		return nil, nil, err
	}
	if len(cks) != len(warmups) || len(cks) != wantPoints {
		return nil, nil, fmt.Errorf("checkpoint payload has %d checkpoints / %d warm-ups for %d simpoints",
			len(cks), len(warmups), wantPoints)
	}
	return cks, warmups, nil
}

// encodeResultPayload serializes the measured portion of a Result: the
// identity fields (workload, suite, config, mode) live in the key chain,
// and MeasureWallNS travels as the artifact's cost, not its content.
func encodeResultPayload(res *Result) ([]byte, error) {
	var buf bytes.Buffer
	bw := binio.NewWriter(&buf)
	bw.U64(res.TotalInsts)
	bw.I64(res.IntervalSize)
	bw.Int(res.NumPoints)
	bw.F64(res.Coverage)
	bw.Int(res.K)
	bw.U64(res.DetailedInsts)
	bw.Int(len(res.Slots))
	for _, s := range res.Slots {
		bw.F64(s)
	}
	bw.Int(len(res.Points))
	for _, p := range res.Points {
		bw.I64(p.Interval)
		bw.F64(p.Weight)
		bw.F64(p.IPC)
		bw.F64(p.PowerMW)
	}
	if err := bw.Err(); err != nil {
		return nil, err
	}
	if err := boom.EncodeStats(&buf, res.Stats); err != nil {
		return nil, err
	}
	if err := power.EncodeReport(&buf, res.Power); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeResultPayload(payload []byte, res *Result) error {
	rd := bytes.NewReader(payload)
	br := binio.NewReader(rd)
	res.TotalInsts = br.U64()
	res.IntervalSize = br.I64()
	res.NumPoints = br.Int()
	res.Coverage = br.F64()
	res.K = br.Int()
	res.DetailedInsts = br.U64()
	res.Slots = make([]float64, br.Len(maxCachedLen))
	for i := range res.Slots {
		res.Slots[i] = br.F64()
	}
	res.Points = make([]PointResult, br.Len(maxCachedLen))
	for i := range res.Points {
		res.Points[i].Interval = br.I64()
		res.Points[i].Weight = br.F64()
		res.Points[i].IPC = br.F64()
		res.Points[i].PowerMW = br.F64()
	}
	if err := br.Err(); err != nil {
		return err
	}
	var err error
	if res.Stats, err = boom.DecodeStats(rd); err != nil {
		return err
	}
	if res.Power, err = power.DecodeReport(rd); err != nil {
		return err
	}
	return nil
}
