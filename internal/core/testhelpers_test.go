package core

import (
	"repro/internal/boom"
	"repro/internal/workloads"
)

// tcamp builds a tiny-scale Campaign — the shape nearly every core test
// sweeps. Kept here so call sites stay as close to the old
// (names, configs) form as possible.
func tcamp(names []string, cfgs []boom.Config) Campaign {
	return NewCampaign(names, cfgs, workloads.ScaleTiny)
}
