package core

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"repro/internal/boom"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// This file is the campaign-fingerprint compatibility suite. The Campaign
// redesign replaced the (names, configs) pair throughout the sweep API,
// but the fingerprint — the identity that keys journals, boomd jobs and
// dedupe — must stay byte-compatible with the pre-redesign encoding, or
// every existing journal and cache directory silently stops resuming.
// The hex values below were captured from the pre-Campaign code and are
// load-bearing: if one of these tests fails, the fix is to restore the
// encoding, never to update the constant.
const (
	// All 11 workloads x the three named BOOM corners, ScaleTiny flow.
	fpTrioTinyAll = "7ca397f61868bc0960a03e5b548fc38298df2a7d186269a7b0b4c6eb20f5de40"
	// [sha qsort] x [MediumBOOM], ScaleTiny flow.
	fpShaQsortMedium = "19b9181fede44501869b1c4d01e5c4e0e48474bbc1391f8d9eaca5e9b3b5743f"
	// All 11 workloads x the three corners at default scale/flow.
	fpTrioDefaultAll = "1e5403d4ad2c0f3a40822d1f221269c6a014afada5d92abd80f6e927869c9d26"
)

func pinnedRunner(t *testing.T, scale workloads.Scale, opts ...Option) *Runner {
	t.Helper()
	return New(FlowConfigFor(scale), append([]Option{WithScale(scale)}, opts...)...)
}

// TestPinnedCampaignFingerprints replays three campaigns that existed
// before the Campaign redesign and checks their fingerprints against the
// hexes the old (names, configs) API produced.
func TestPinnedCampaignFingerprints(t *testing.T) {
	cases := []struct {
		name  string
		camp  Campaign
		scale workloads.Scale
		want  string
	}{
		{
			name:  "trio-tiny-all",
			camp:  NewCampaign(workloads.Names(), boom.Configs(), workloads.ScaleTiny),
			scale: workloads.ScaleTiny,
			want:  fpTrioTinyAll,
		},
		{
			name:  "sha-qsort-medium",
			camp:  NewCampaign([]string{"sha", "qsort"}, []boom.Config{boom.MediumBOOM()}, workloads.ScaleTiny),
			scale: workloads.ScaleTiny,
			want:  fpShaQsortMedium,
		},
		{
			name:  "trio-default-all",
			camp:  NewCampaign(workloads.Names(), boom.Configs(), workloads.ScaleDefault),
			scale: workloads.ScaleDefault,
			want:  fpTrioDefaultAll,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := pinnedRunner(t, tc.scale).CampaignID(tc.camp)
			if got != tc.want {
				t.Fatalf("fingerprint drifted: got %s, want %s\n"+
					"A pre-redesign journal or cache keyed by the old ID would no longer resume.", got, tc.want)
			}
		})
	}
}

// TestLegacyJournalResumes writes a journal in the exact on-disk format
// the pre-redesign code produced — header keyed by the pinned fingerprint,
// then "done" records with the old task labels — and checks that a sweep
// through the new Campaign API treats those tasks as resumed.
func TestLegacyJournalResumes(t *testing.T) {
	dir := t.TempDir()
	legacy := []journalRecord{
		{Ev: "sweep", ID: fpShaQsortMedium},
		{Ev: "done", Task: "profile/sha", NS: 12345},
		{Ev: "done", Task: "profile/qsort", NS: 23456},
		{Ev: "done", Task: "measure/MediumBOOM/sha", NS: 34567},
	}
	f, err := os.Create(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range legacy {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	r := pinnedRunner(t, workloads.ScaleTiny,
		WithCache(dir), WithResume(true), WithMetrics(reg))
	camp := NewCampaign([]string{"sha", "qsort"}, []boom.Config{boom.MediumBOOM()}, workloads.ScaleTiny)
	sw, err := r.Sweep(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Results) != 1 || len(sw.Results["MediumBOOM"]) != 2 {
		t.Fatalf("sweep incomplete after legacy resume: %+v", sw.Results)
	}
	if got := reg.Counter("core.sweep.tasks_resumed").Value(); got != int64(len(legacy)-1) {
		t.Fatalf("tasks_resumed = %d, want %d: the legacy journal's done-set was not honored", got, len(legacy)-1)
	}
}

// TestFingerprintSensitiveToEveryConfigField mutates every field of a
// boom.Config by reflection and requires the campaign fingerprint to
// change. This is what makes parametric design points (internal/dse)
// first-class identities: any knob an axis can turn is part of the
// campaign ID, so two design points never collide in the journal or the
// boomd job table.
func TestFingerprintSensitiveToEveryConfigField(t *testing.T) {
	r := pinnedRunner(t, workloads.ScaleTiny)
	base := NewCampaign([]string{"sha"}, []boom.Config{boom.MediumBOOM()}, workloads.ScaleTiny)
	baseID := r.CampaignID(base)

	rt := reflect.TypeOf(boom.Config{})
	for i := 0; i < rt.NumField(); i++ {
		field := rt.Field(i)
		cfg := boom.MediumBOOM()
		fv := reflect.ValueOf(&cfg).Elem().Field(i)
		switch fv.Kind() {
		case reflect.String:
			fv.SetString(fv.String() + "-mutated")
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(fv.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(fv.Uint() + 1)
		case reflect.Float32, reflect.Float64:
			fv.SetFloat(fv.Float() + 1)
		case reflect.Bool:
			fv.SetBool(!fv.Bool())
		default:
			t.Fatalf("boom.Config.%s has kind %s — extend the mutation table so the fingerprint stays sensitive to it", field.Name, fv.Kind())
		}
		mut := NewCampaign([]string{"sha"}, []boom.Config{cfg}, workloads.ScaleTiny)
		if r.CampaignID(mut) == baseID {
			t.Errorf("fingerprint blind to boom.Config.%s: two different design points would share a journal", field.Name)
		}
	}
}

// TestFingerprintSensitiveToCampaignShape covers the non-config axes of
// identity: workload membership and order, config multiplicity, and scale.
func TestFingerprintSensitiveToCampaignShape(t *testing.T) {
	r := pinnedRunner(t, workloads.ScaleTiny)
	base := NewCampaign([]string{"sha", "qsort"}, []boom.Config{boom.MediumBOOM()}, workloads.ScaleTiny)
	baseID := r.CampaignID(base)

	variants := map[string]Campaign{
		"workload dropped": NewCampaign([]string{"sha"}, []boom.Config{boom.MediumBOOM()}, workloads.ScaleTiny),
		"workload added":   NewCampaign([]string{"sha", "qsort", "fft"}, []boom.Config{boom.MediumBOOM()}, workloads.ScaleTiny),
		"workload reorder": NewCampaign([]string{"qsort", "sha"}, []boom.Config{boom.MediumBOOM()}, workloads.ScaleTiny),
		"config added":     NewCampaign([]string{"sha", "qsort"}, []boom.Config{boom.MediumBOOM(), boom.LargeBOOM()}, workloads.ScaleTiny),
		"scale changed":    NewCampaign([]string{"sha", "qsort"}, []boom.Config{boom.MediumBOOM()}, workloads.ScaleDefault),
	}
	for name, camp := range variants {
		if r.CampaignID(camp) == baseID {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
}
