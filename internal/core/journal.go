package core

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/artifact"
	"repro/internal/boom"
	"repro/internal/metrics"
	"repro/internal/sampling"
)

// This file implements the sweep's crash-resume journal: an append-only
// JSONL write-ahead log living next to the artifact cache. Every sweep task
// (one workload profile, one (workload, config) measurement) writes a
// "start" record before it runs and a "done" or "fail" record after, one
// JSON object per line, flushed per record, so a killed process loses at
// most the record being written.
//
// The journal is the bookkeeping layer over the content-addressed cache:
// the cache holds the results, the journal holds the campaign's progress.
// On -resume, tasks with a "done" record are replayed straight through
// their cache artifacts (no recomputation); tasks that were in flight or
// failed run again. A header record pins the sweep's identity — workload
// set, configurations, flow parameters, scale — so a journal is never
// replayed against a different campaign.

// journalName is the journal's file name under the cache directory.
const journalName = "sweep.journal"

// journalRecord is one JSONL line.
type journalRecord struct {
	Ev   string `json:"ev"`             // "sweep" (header), "start", "done", "fail"
	ID   string `json:"id,omitempty"`   // sweep fingerprint (header only)
	Task string `json:"task,omitempty"` // e.g. "profile/sha", "measure/MegaBOOM/sha"
	NS   int64  `json:"ns,omitempty"`   // task wall-clock (done only)
	Err  string `json:"err,omitempty"`  // failure message (fail only)
}

// journal is an open, append-only WAL. All methods are safe for concurrent
// use; a nil *journal is inert so the sweep path needs no guards.
//
// Write errors are never swallowed: a WAL that silently drops a "done"
// record would make a later -resume rerun — or worse, half-trust — work
// that actually finished. The first failed write increments
// core.sweep.journal_write_errors, warns once through the progress sink,
// and disables the journal for the rest of the sweep, so the failure mode
// degrades to "no journal" (resume reruns everything), never to a
// plausible-but-wrong journal.
type journal struct {
	mu       sync.Mutex
	f        *os.File
	reg      *metrics.Registry // nil-safe counter sink
	warn     func(format string, args ...interface{})
	disabled bool
}

func (j *journal) append(rec journalRecord) { j.write(rec, false) }

// appendSync appends like append, then fsyncs — used for the header
// record, so a crash shortly after open can never leave a journal whose
// campaign identity is not durable on disk.
func (j *journal) appendSync(rec journalRecord) { j.write(rec, true) }

func (j *journal) write(rec journalRecord, sync bool) {
	if j == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return // journalRecord always marshals; stay inert regardless
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.disabled {
		return
	}
	n, err := j.f.Write(line) // one write syscall per record: crash loses ≤1 line
	if err == nil && n < len(line) {
		err = io.ErrShortWrite
	}
	if err == nil && sync {
		err = j.f.Sync()
	}
	if err != nil {
		j.disabled = true
		j.reg.Counter("core.sweep.journal_write_errors").Inc()
		if j.warn != nil {
			j.warn("sweep journal disabled after write error (a later -resume will rerun unjournaled tasks): %v", err)
		}
	}
}

func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}

// sweepID fingerprints a campaign: the exact workload list, configuration
// list, flow parameters and scale. Reuses the artifact cache's canonical
// encoding, so any drift in any input — including any single field of any
// design point, which is how parametric axes (internal/dse) become part
// of the identity — yields a different ID and a stale journal is ignored
// rather than replayed.
//
// Compatibility: the encoded shapes below (anonymous structs, these
// field names and types, the schema versions) are pinned by the
// fingerprint compatibility suite. The zero sampling spec MUST keep
// producing the schema-1 shape — a pre-Campaign-redesign journal or
// cache entry for the named-trio campaign must keep resolving to the
// same ID. A non-zero spec versions into a schema-2 shape that appends
// the spec, so sampling parameters are part of campaign identity the
// same way design-point fields are. Do not rename fields, reorder them,
// or name the structs (the canonical encoding hashes the type name, and
// an anonymous struct encodes as "").
func (r *Runner) sweepID(c Campaign) string {
	spec := r.effectiveSpec(c)
	if spec.IsZero() {
		return artifact.NewKey("sweep", 1, struct {
			Names   []string
			Configs []boom.Config
			Flow    FlowConfig
			Scale   int
		}{c.Workloads, c.Configs, r.fc, int(c.Scale)}).Hex()
	}
	return artifact.NewKey("sweep", 2, struct {
		Names    []string
		Configs  []boom.Config
		Flow     FlowConfig
		Scale    int
		Sampling sampling.Spec
	}{c.Workloads, c.Configs, r.fc, int(c.Scale), spec}).Hex()
}

// loadJournal parses an existing journal and returns the set of tasks with
// a "done" record, provided the header matches wantID. A missing file, a
// foreign campaign, or an unreadable header all return an empty set — the
// sweep then simply starts from scratch. Truncated trailing lines (the
// record being written when the process died) are skipped, not fatal.
func loadJournal(path, wantID string) (done map[string]bool, prevFailed int) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0
	}
	defer f.Close()
	done = map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	first := true
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn write from a crash: ignore the fragment
		}
		if first {
			if rec.Ev != "sweep" || rec.ID != wantID {
				return nil, 0 // different campaign: never replay
			}
			first = false
			continue
		}
		switch rec.Ev {
		case "done":
			done[rec.Task] = true
		case "fail":
			prevFailed++
		}
	}
	return done, prevFailed
}

// openSweepJournal prepares the WAL for one Sweep call. Without a cache
// the journal is disabled (nil, empty set). With WithResume, a matching
// prior journal yields the done-set and the file is extended in place;
// otherwise the file is truncated and a fresh header written.
func (r *Runner) openSweepJournal(camp Campaign) (*journal, map[string]bool) {
	if r.cache == nil {
		return nil, nil
	}
	id := r.sweepID(camp)
	path := filepath.Join(r.cache.Dir(), journalName)
	var done map[string]bool
	if r.resume {
		var prevFailed int
		done, prevFailed = loadJournal(path, id)
		if len(done) > 0 || prevFailed > 0 {
			r.note("resume: journal lists %d finished task(s), %d failed — rerunning the rest", len(done), prevFailed)
		}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		r.note("journal disabled: %v", err)
		return nil, done
	}
	flags := os.O_CREATE | os.O_WRONLY
	if len(done) > 0 {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		r.note("journal disabled: %v", err)
		return nil, done
	}
	jn := &journal{f: f, reg: r.reg, warn: r.note}
	if len(done) == 0 {
		jn.appendSync(journalRecord{Ev: "sweep", ID: id})
	}
	return jn, done
}

// CampaignID returns the campaign fingerprint under this Runner's flow
// parameters — the exact identity the sweep journal is keyed by. The
// serving layer (internal/serve) reuses it as the job and dedupe ID:
// duplicate submissions of one campaign collapse onto one job, and the
// artifact cache dedupes across requests.
func (r *Runner) CampaignID(camp Campaign) string {
	return r.sweepID(camp)
}

// JournalPath returns the sweep journal location for a cache directory
// (diagnostics and tests).
func JournalPath(cacheDir string) string {
	return filepath.Join(cacheDir, journalName)
}
