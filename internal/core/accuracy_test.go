package core

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/boom"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/workloads"
)

// cpiErrPct returns the SimPoint-estimated CPI error vs the full run, in
// percent.
func cpiErrPct(sp, full *Result) float64 {
	spCPI, fullCPI := 1/sp.IPC(), 1/full.IPC()
	return 100 * math.Abs(spCPI-fullCPI) / fullCPI
}

// TestDifferentialAccuracy is the safety net behind the cache: for every
// registered workload at MediumBOOM it (a) checks the SimPoint-estimated
// CPI against the full detailed run within the 20% bound the repo already
// claims (results_paper.txt / cmd/validate), and (b) reruns the estimate
// through a warm cache with metrics attached and demands bit-identical
// results — the cache must never change what the pipeline computes.
func TestDifferentialAccuracy(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	fc := DefaultFlowConfig()
	// The flow-default unit-test warm-up (10 K insts, half the tiny 20 K
	// interval) is too short for workloads whose working set does not
	// shrink with the instruction stream: dijkstra's 100 KB adjacency
	// matrix leaves every measured interval cache-cold and overestimates
	// CPI by ~2×. Instead of patching FlowConfig here, the campaign
	// carries an explicit proportional warm-up policy (5× the interval =
	// 100 K insts at tiny scale), which is the production-facing fix —
	// and dijkstra's error bound below tightens accordingly.
	cfg := boom.MediumBOOM()
	names := workloads.Names()
	camp := tcamp(names, []boom.Config{cfg})
	camp.Sampling = sampling.Spec{
		WarmupPolicy: sampling.WarmupProportional,
		WarmupFactor: sampling.DefaultWarmupFactor,
	}

	cold := New(fc, WithScale(workloads.ScaleTiny), WithCache(dir))
	sw, err := cold.Sweep(ctx, camp)
	if err != nil {
		t.Fatal(err)
	}

	// Full-model baselines, spread over the worker pool like a sweep.
	fulls := make(map[string]*Result, len(names))
	var mu sync.Mutex
	err = cold.runTasks(ctx, nil, nil, taskSet{
		stage: StageMeasure,
		n:     len(names),
		id:    func(i int) taskID { return taskID{kind: "measure", workload: names[i], config: cfg.Name} },
		do: func(ctx context.Context, i int) error {
			w, err := workloads.Build(names[i], workloads.ScaleTiny)
			if err != nil {
				return err
			}
			res, err := cold.RunFull(ctx, w, cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			fulls[names[i]] = res
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Per-workload CPI error bounds. The blanket bound is the 20% the
	// repo already claims (results_paper.txt / cmd/validate); dijkstra —
	// historically the worst offender, fixed by the explicit warm-up
	// policy above — is pinned tighter so a warm-up regression shows up
	// as a bound violation rather than hiding under the blanket.
	bounds := map[string]float64{"dijkstra": 10.0}
	const boundPct = 20.0
	for _, name := range names {
		sp, full := sw.Results[cfg.Name][name], fulls[name]
		if sp.IPC() <= 0 || full.IPC() <= 0 {
			t.Errorf("%s: non-positive IPC (simpoint %.3f, full %.3f)", name, sp.IPC(), full.IPC())
			continue
		}
		bound := boundPct
		if b, ok := bounds[name]; ok {
			bound = b
		}
		if e := cpiErrPct(sp, full); e > bound {
			t.Errorf("%s: SimPoint CPI error %.1f%% exceeds %.0f%% (CPI %.4f vs %.4f)",
				name, e, bound, 1/sp.IPC(), 1/full.IPC())
		}
	}

	// Warm-cache rerun with metrics attached: every stage must hit, and
	// every estimate must come back bit-for-bit.
	reg := metrics.NewRegistry()
	warm := New(fc, WithScale(workloads.ScaleTiny), WithCache(dir), WithMetrics(reg))
	sw2, err := warm.Sweep(ctx, camp)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		a, b := sw.Results[cfg.Name][name], sw2.Results[cfg.Name][name]
		if math.Float64bits(a.IPC()) != math.Float64bits(b.IPC()) {
			t.Errorf("%s: warm-cache IPC %v not bit-identical to cold %v", name, b.IPC(), a.IPC())
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: warm-cache result differs from cold run", name)
		}
		pa, pb := sw.Profiles[name], sw2.Profiles[name]
		if pa.WallNS != pb.WallNS {
			t.Errorf("%s: warm profile cost %d ≠ cold %d (costs must be restored from the cache)",
				name, pb.WallNS, pa.WallNS)
		}
	}
	if miss := reg.Counter("artifact.miss").Value(); miss != 0 {
		t.Errorf("warm sweep took %d cache misses, want 0", miss)
	}
	if hit := reg.Counter("artifact.hit").Value(); hit == 0 {
		t.Error("warm sweep recorded no cache hits")
	}
}
