package core

import (
	"fmt"

	"repro/internal/boom"
	"repro/internal/sampling"
	"repro/internal/workloads"
)

// Campaign is the unit of sweep identity: the workloads, the design
// points, and the scale they are evaluated at. It replaces the
// (names []string, configs []boom.Config) pairs that used to thread
// through Sweep, the crash-resume journal, and the serving layer — one
// value now carries everything the campaign fingerprint covers, so the
// engine cannot be handed a workload list and a config list that belong
// to different campaigns.
//
// The zero value is the empty campaign at ScaleTiny; use NewCampaign or a
// composite literal. Configs may be the registry's named trio or design
// points expanded from parametric axes (internal/dse) — the engine does
// not distinguish: every config is a full boom.Config value, and the
// fingerprint hashes every field of every config, so any axis change
// yields a different campaign identity.
type Campaign struct {
	// Workloads lists benchmark names (internal/workloads.Names order is
	// conventional but not required).
	Workloads []string
	// Configs lists the design points. Names must be unique: the journal
	// and result maps key cells by (config name, workload name).
	Configs []boom.Config
	// Scale is the workload scale every cell is built at.
	Scale workloads.Scale
	// Sampling parameterizes how every cell is sampled: interval length,
	// clustering feature set, projection dims, k ceiling, warm-up policy.
	// The zero value reproduces the legacy implicit defaults — and the
	// legacy campaign fingerprint, byte-for-byte (see sweepID).
	Sampling sampling.Spec
}

// NewCampaign builds a campaign over defensive copies of its inputs.
func NewCampaign(names []string, configs []boom.Config, scale workloads.Scale) Campaign {
	return Campaign{
		Workloads: append([]string(nil), names...),
		Configs:   append([]boom.Config(nil), configs...),
		Scale:     scale,
	}
}

// ConfigNames returns the design-point names in campaign order.
func (c Campaign) ConfigNames() []string {
	out := make([]string, len(c.Configs))
	for i := range c.Configs {
		out[i] = c.Configs[i].Name
	}
	return out
}

// Cells returns the number of (workload, config) measurement cells.
func (c Campaign) Cells() int { return len(c.Workloads) * len(c.Configs) }

// Validate rejects campaigns the sweep engine cannot run unambiguously:
// empty axes, duplicate workloads or config names (the journal keys tasks
// by name), unregistered workloads, structurally invalid design points
// (boom.Config.Validate), and unresolvable sampling specs.
func (c Campaign) Validate() error {
	if len(c.Workloads) == 0 {
		return fmt.Errorf("campaign: no workloads")
	}
	if err := c.Sampling.Validate(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if len(c.Configs) == 0 {
		return fmt.Errorf("campaign: no configs")
	}
	known := map[string]bool{}
	for _, n := range workloads.Names() {
		known[n] = true
	}
	seen := map[string]bool{}
	for _, n := range c.Workloads {
		if !known[n] {
			return fmt.Errorf("campaign: unknown workload %q", n)
		}
		if seen[n] {
			return fmt.Errorf("campaign: duplicate workload %q", n)
		}
		seen[n] = true
	}
	seenCfg := map[string]bool{}
	for i := range c.Configs {
		cfg := &c.Configs[i]
		if cfg.Name == "" {
			return fmt.Errorf("campaign: config %d has no name", i)
		}
		if seenCfg[cfg.Name] {
			return fmt.Errorf("campaign: duplicate config %q", cfg.Name)
		}
		seenCfg[cfg.Name] = true
		if err := cfg.Validate(); err != nil {
			return err
		}
	}
	return nil
}
