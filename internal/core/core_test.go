package core

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/boom"
	"repro/internal/ckpt"
	"repro/internal/workloads"
)

func profileOf(t *testing.T, name string) *Profile {
	t.Helper()
	w, err := workloads.Build(name, workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(DefaultFlowConfig()).Profile(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileStage(t *testing.T) {
	p := profileOf(t, "bitcount")
	if p.TotalInsts == 0 {
		t.Fatal("no instructions profiled")
	}
	wantIntervals := int(p.TotalInsts/uint64(p.Workload.IntervalSize)) + 1
	if len(p.Vectors) < wantIntervals-1 || len(p.Vectors) > wantIntervals {
		t.Errorf("got %d intervals for %d insts (interval %d)",
			len(p.Vectors), p.TotalInsts, p.Workload.IntervalSize)
	}
	if p.Selection.Coverage < 0.9 {
		t.Errorf("coverage %.2f below the paper's 90%% floor", p.Selection.Coverage)
	}
	if len(p.Checkpoints) != p.NumSimPoints() {
		t.Errorf("%d checkpoints for %d simpoints", len(p.Checkpoints), p.NumSimPoints())
	}
	// bitcount has five phases: the clustering must find several.
	if p.Selection.K < 3 {
		t.Errorf("bitcount k=%d; expected ≥3 for 5 method phases", p.Selection.K)
	}
	for i, k := range p.Checkpoints {
		if k == nil {
			t.Fatalf("checkpoint %d missing", i)
		}
		start := p.Selection.Selected[i].Interval
		wantInst := int64(start)*p.Workload.IntervalSize - p.WarmupInsts[i]
		if int64(k.InstRet) != wantInst {
			t.Errorf("checkpoint %d at inst %d, want %d", i, k.InstRet, wantInst)
		}
	}
}

func TestSimPointRunAggregates(t *testing.T) {
	p := profileOf(t, "stringsearch")
	cfg := boom.MediumBOOM()
	r, err := New(DefaultFlowConfig()).Run(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0.1 || r.IPC() > float64(cfg.DecodeWidth) {
		t.Errorf("weighted IPC %.2f out of range", r.IPC())
	}
	if r.TotalPowerMW() < 3 || r.TotalPowerMW() > 60 {
		t.Errorf("tile power %.1f mW implausible", r.TotalPowerMW())
	}
	if r.PerfPerWatt() <= 0 {
		t.Error("perf/W must be positive")
	}
	if r.NumPoints < 1 || r.DetailedInsts == 0 {
		t.Errorf("no simulation points measured: %d points, %d insts",
			r.NumPoints, r.DetailedInsts)
	}
	if len(r.Slots) != cfg.IntIssueSlots {
		t.Errorf("slot power length %d", len(r.Slots))
	}
}

// TestSpeedupAtExperimentScale checks the methodology's payoff: at
// experiment scale the SimPoint flow simulates a small fraction of the
// program on the detailed model (the paper reports 45× at its 1:300
// interval:program ratio).
func TestSpeedupAtExperimentScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment-scale inputs")
	}
	fc := FlowConfigFor(workloads.ScaleDefault)
	var full, detailed uint64
	for _, name := range []string{"sha", "matmult"} {
		w, err := workloads.Build(name, workloads.ScaleDefault)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(fc).Profile(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(fc).Run(context.Background(), p, boom.LargeBOOM())
		if err != nil {
			t.Fatal(err)
		}
		full += r.TotalInsts
		detailed += r.DetailedInsts
	}
	speedup := float64(full) / float64(detailed)
	if speedup < 3 {
		t.Errorf("speedup %.1f× too small (%d of %d insts simulated)",
			speedup, detailed, full)
	} else {
		t.Logf("detailed-simulation reduction: %.1f×", speedup)
	}
}

// TestSimPointAccuracy validates the methodology: weighted-SimPoint IPC
// must track the full detailed-model IPC closely (the property that makes
// the 45× speedup usable).
func TestSimPointAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full detailed simulations")
	}
	for _, name := range []string{"bitcount", "sha", "basicmath", "fft"} {
		acc, err := New(DefaultFlowConfig(), WithScale(workloads.ScaleTiny)).
			Validate(context.Background(), name, boom.LargeBOOM())
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(acc.ErrorPct()); e > 20 {
			t.Errorf("%s: SimPoint IPC %.3f vs full %.3f (%.1f%% error)",
				name, acc.SimPointIPC, acc.FullIPC, e)
		} else {
			t.Logf("%s: SimPoint IPC %.3f vs full %.3f (%.1f%% error)",
				name, acc.SimPointIPC, acc.FullIPC, acc.ErrorPct())
		}
	}
}

func TestSweepAndSpeedup(t *testing.T) {
	names := []string{"sha", "tarfind", "qsort"}
	sw, err := New(DefaultFlowConfig(), WithScale(workloads.ScaleTiny)).
		Sweep(context.Background(), tcamp(names, []boom.Config{boom.MediumBOOM(), boom.MegaBOOM()}))
	if err != nil {
		t.Fatal(err)
	}
	for _, cfgName := range []string{"MediumBOOM", "MegaBOOM"} {
		for _, n := range names {
			if sw.Results[cfgName][n] == nil {
				t.Fatalf("missing result %s/%s", cfgName, n)
			}
		}
	}
	// Sha IPC must grow with core width; tarfind must be the slowest.
	med, mega := sw.Results["MediumBOOM"], sw.Results["MegaBOOM"]
	if mega["sha"].IPC() <= med["sha"].IPC() {
		t.Errorf("sha IPC: mega %.2f vs medium %.2f", mega["sha"].IPC(), med["sha"].IPC())
	}
	if tar := mega["tarfind"].IPC(); tar >= mega["sha"].IPC() {
		t.Errorf("tarfind IPC %.2f should trail sha %.2f", tar, mega["sha"].IPC())
	}
	// Medium perf/W should beat Mega on most of these workloads (Fig. 11).
	better := 0
	for _, n := range names {
		if med[n].PerfPerWatt() > mega[n].PerfPerWatt() {
			better++
		}
	}
	if better < 2 {
		t.Errorf("MediumBOOM should win perf/W on most workloads; won %d of %d", better, len(names))
	}
}

func TestFlowDeterminism(t *testing.T) {
	a := profileOf(t, "patricia")
	b := profileOf(t, "patricia")
	if a.TotalInsts != b.TotalInsts || a.NumSimPoints() != b.NumSimPoints() ||
		a.Selection.K != b.Selection.K {
		t.Fatal("profiling is not deterministic")
	}
	cfg := boom.LargeBOOM()
	ra, err := New(DefaultFlowConfig()).Run(context.Background(), a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := New(DefaultFlowConfig()).Run(context.Background(), b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Stats.Cycles != rb.Stats.Cycles || ra.IPC() != rb.IPC() {
		t.Fatal("simpoint measurement is not deterministic")
	}
}

// TestPowerAccuracySimPointVsFull: the weighted SimPoint power must track
// the full-run power (the flow's other headline quantity besides IPC).
func TestPowerAccuracySimPointVsFull(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full detailed simulations")
	}
	fc := DefaultFlowConfig()
	cfg := boom.MediumBOOM()
	for _, name := range []string{"bitcount", "sha"} {
		w, err := workloads.Build(name, workloads.ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(fc).Profile(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := New(fc).Run(context.Background(), p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		w2, _ := workloads.Build(name, workloads.ScaleTiny)
		full, err := New(fc).RunFull(context.Background(), w2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(sp.TotalPowerMW()-full.TotalPowerMW()) / full.TotalPowerMW()
		if rel > 0.12 {
			t.Errorf("%s: simpoint power %.2f vs full %.2f (%.0f%% error)",
				name, sp.TotalPowerMW(), full.TotalPowerMW(), 100*rel)
		}
	}
}

// TestCheckpointFilesDriveTheFlow: checkpoints survive serialization and
// still produce identical measurements (the on-disk artifact path of
// cmd/simpoints).
func TestCheckpointFilesDriveTheFlow(t *testing.T) {
	fc := DefaultFlowConfig()
	p := profileOf(t, "stringsearch")
	cfg := boom.MediumBOOM()
	direct, err := New(fc).Run(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize + deserialize every checkpoint, then re-run.
	for i, k := range p.Checkpoints {
		var buf bytes.Buffer
		if err := k.Serialize(&buf); err != nil {
			t.Fatal(err)
		}
		k2, err := ckpt.Deserialize(&buf)
		if err != nil {
			t.Fatal(err)
		}
		p.Checkpoints[i] = k2
	}
	reloaded, err := New(fc).Run(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Stats.Cycles != reloaded.Stats.Cycles || direct.IPC() != reloaded.IPC() {
		t.Fatalf("serialized checkpoints changed the measurement: %d vs %d cycles",
			direct.Stats.Cycles, reloaded.Stats.Cycles)
	}
}

// TestPointsBracketAggregate: per-point phase results must be present and
// their weights must sum to the coverage.
func TestPointsBracketAggregate(t *testing.T) {
	p := profileOf(t, "bitcount")
	r, err := New(DefaultFlowConfig()).Run(context.Background(), p, boom.LargeBOOM())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != r.NumPoints {
		t.Fatalf("points %d, expected %d", len(r.Points), r.NumPoints)
	}
	var wsum float64
	for _, pt := range r.Points {
		wsum += pt.Weight
		if pt.IPC <= 0 || pt.PowerMW <= 0 {
			t.Errorf("degenerate point %+v", pt)
		}
	}
	if math.Abs(wsum-r.Coverage) > 1e-9 {
		t.Errorf("point weights sum %.4f != coverage %.4f", wsum, r.Coverage)
	}
}

// TestParallelSweepDeterminism: the concurrent sweep must be bit-identical
// to itself run-to-run (each measurement is an isolated core+CPU pair).
func TestParallelSweepDeterminism(t *testing.T) {
	names := []string{"sha", "bitcount"}
	cfgs := []boom.Config{boom.MediumBOOM(), boom.MegaBOOM()}
	a, err := New(DefaultFlowConfig(), WithScale(workloads.ScaleTiny)).Sweep(context.Background(), tcamp(names, cfgs))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(DefaultFlowConfig(), WithScale(workloads.ScaleTiny)).Sweep(context.Background(), tcamp(names, cfgs))
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		for _, n := range names {
			ra, rb := a.Results[cfg.Name][n], b.Results[cfg.Name][n]
			if ra.Stats.Cycles != rb.Stats.Cycles || ra.IPC() != rb.IPC() ||
				ra.TotalPowerMW() != rb.TotalPowerMW() {
				t.Errorf("%s/%s differs across parallel sweeps", cfg.Name, n)
			}
		}
	}
}

func TestFlowErrorPaths(t *testing.T) {
	if _, err := New(DefaultFlowConfig(), WithScale(workloads.ScaleTiny)).Validate(context.Background(), "nope", boom.MediumBOOM()); err == nil {
		t.Error("unknown workload must error")
	}
	if _, err := New(DefaultFlowConfig(), WithScale(workloads.ScaleTiny)).
		Sweep(context.Background(), tcamp([]string{"nope"}, []boom.Config{boom.MediumBOOM()})); err == nil {
		t.Error("sweep with unknown workload must error")
	}
	// Invalid simpoint config surfaces from profiling.
	fc := DefaultFlowConfig()
	fc.SimPoint.Dims = 0
	w, err := workloads.Build("sha", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(fc).Profile(context.Background(), w); err == nil {
		t.Error("invalid simpoint config must error")
	}
}

func TestRunFullMatchesDirectModel(t *testing.T) {
	// RunFull must agree with driving the model by hand.
	fc := DefaultFlowConfig()
	w, err := workloads.Build("bitcount", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(fc).RunFull(context.Background(), w, boom.MediumBOOM())
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := workloads.Build("bitcount", workloads.ScaleTiny)
	cpu, _ := w2.NewCPU()
	core, err := boom.New(boom.MediumBOOM())
	if err != nil {
		t.Fatal(err)
	}
	ts := &traceSource{cpu: cpu}
	if _, err := core.Run(ts.next, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if ts.err != nil {
		t.Fatal(ts.err)
	}
	if full.Stats.Cycles != core.Stats().Cycles || full.Stats.Insts != core.Stats().Insts {
		t.Fatalf("RunFull %d/%d vs direct %d/%d",
			full.Stats.Insts, full.Stats.Cycles, core.Stats().Insts, core.Stats().Cycles)
	}
}
