package core

import (
	"context"
	"math"
	"os"
	"sync"
	"testing"

	"repro/internal/boom"
	"repro/internal/sampling"
	"repro/internal/workloads"
)

// TestFidelityGate is the CPI-error regression gate behind `make
// fidelity`: for every registered workload at MediumBOOM it measures the
// sampled-vs-full CPI error under the BBV-only baseline spec and under
// the recommended BBV ⊕ MAV spec, prints the per-workload delta table,
// and asserts that the recommended spec's mean error does not regress —
// and that dijkstra, the canonical memory-bound victim of BBV-only
// sampling, strictly improves. The flow is deterministic, so the gate is
// exact: any drift is a real fidelity change, not noise.
//
// The run is minutes long (two sweeps plus eleven full-model baselines),
// so it is opt-in via BOOM_FIDELITY=1, mirroring BOOM_MEASURE_SPEEDUP.
func TestFidelityGate(t *testing.T) {
	if os.Getenv("BOOM_FIDELITY") == "" {
		t.Skip("set BOOM_FIDELITY=1 to run the sampling-fidelity gate (minutes)")
	}
	dir := t.TempDir()
	ctx := context.Background()
	fc := DefaultFlowConfig()
	cfg := boom.MediumBOOM()
	names := workloads.Names()
	r := New(fc, WithScale(workloads.ScaleTiny), WithCache(dir))

	// Full-model CPI baselines, shared by both specs.
	fulls := make(map[string]*Result, len(names))
	var mu sync.Mutex
	err := r.runTasks(ctx, nil, nil, taskSet{
		stage: StageMeasure,
		n:     len(names),
		id:    func(i int) taskID { return taskID{kind: "measure", workload: names[i], config: cfg.Name} },
		do: func(ctx context.Context, i int) error {
			w, err := workloads.Build(names[i], workloads.ScaleTiny)
			if err != nil {
				return err
			}
			res, err := r.RunFull(ctx, w, cfg)
			if err != nil {
				return err
			}
			mu.Lock()
			fulls[names[i]] = res
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	baseline := sampling.Spec{Features: sampling.FeaturesBBV}
	candidate := sampling.Recommended()
	errsFor := func(spec sampling.Spec) map[string]float64 {
		camp := tcamp(names, []boom.Config{cfg})
		camp.Sampling = spec
		sw, err := r.Sweep(ctx, camp)
		if err != nil {
			t.Fatalf("sweep under %q: %v", spec, err)
		}
		out := make(map[string]float64, len(names))
		for _, name := range names {
			out[name] = cpiErrPct(sw.Results[cfg.Name][name], fulls[name])
		}
		return out
	}
	base := errsFor(baseline)
	cand := errsFor(candidate)

	var baseMean, candMean float64
	t.Logf("%-14s %12s %12s %10s", "workload", "bbv err%", "bbv+mav err%", "delta")
	for _, name := range names {
		delta := cand[name] - base[name]
		t.Logf("%-14s %12.2f %12.2f %+10.2f", name, base[name], cand[name], delta)
		baseMean += base[name]
		candMean += cand[name]
	}
	baseMean /= float64(len(names))
	candMean /= float64(len(names))
	t.Logf("%-14s %12.2f %12.2f %+10.2f", "MEAN", baseMean, candMean, candMean-baseMean)

	if math.IsNaN(candMean) || math.IsNaN(baseMean) {
		t.Fatal("non-finite mean CPI error")
	}
	if candMean > baseMean {
		t.Errorf("mean CPI error regressed under %q: %.3f%% vs %.3f%% for %q",
			candidate, candMean, baseMean, baseline)
	}
	if cand["dijkstra"] >= base["dijkstra"] {
		t.Errorf("dijkstra CPI error did not strictly improve: %.3f%% under %q vs %.3f%% under %q",
			cand["dijkstra"], candidate, base["dijkstra"], baseline)
	}
}
