package sim_test

// Kernel microbenchmark of the functional simulator's per-instruction step
// (decode-cache hit → execute → retire-record fill), the producer side of
// the trace-driven timing model. Wrapped into BENCH_kernel.json by
// cmd/kernelbench.

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func BenchmarkKernelFuncStep(b *testing.B) {
	w, err := workloads.Build("sha", workloads.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := w.NewCPU()
	if err != nil {
		b.Fatal(err)
	}
	var r sim.Retired
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cpu.Halted {
			b.StopTimer()
			if cpu, err = w.NewCPU(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := cpu.Step(&r); err != nil {
			b.Fatal(err)
		}
	}
}
