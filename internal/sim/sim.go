// Package sim implements the functional RV64IMD simulator that plays the
// role Spike plays in the paper's flow: it provides golden architectural
// execution for basic-block profiling, creates the state that SimPoint
// checkpoints capture, and feeds the committed instruction stream to the
// BOOM timing model.
package sim

import (
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/rv64"
)

// DefaultStackTop is where the stack pointer starts. It sits well above the
// default text/data bases used by the assembler.
const DefaultStackTop = 0x0800_0000

// Retired describes one committed instruction, in the form the BBV profiler
// and the timing model consume.
type Retired struct {
	PC      uint64
	NextPC  uint64
	Inst    rv64.Inst
	Taken   bool   // branches: condition outcome
	MemAddr uint64 // loads/stores: effective address
}

// ErrBreakpoint is returned by Run when an EBREAK retires.
var ErrBreakpoint = fmt.Errorf("sim: ebreak")

// CPU is the architectural state plus execution machinery.
type CPU struct {
	PC      uint64
	X       [32]uint64
	F       [32]uint64 // raw IEEE-754 bits
	Mem     *mem.Memory
	InstRet uint64 // retired instruction counter
	Halted  bool
	Exit    int64 // exit code once Halted

	Stdout []byte // bytes written via the write syscall

	// decoded-instruction cache covering the text segment
	textBase uint64
	decoded  []rv64.Inst
	valid    []bool

	metrics *metrics.Registry // optional; nil disables instrumentation
}

// SetMetrics attaches an optional metrics registry: every Run/RunTrace
// records retired instructions, wall time, and functional-simulation
// throughput (KIPS). A nil registry (the default) disables instrumentation.
func (c *CPU) SetMetrics(reg *metrics.Registry) { c.metrics = reg }

// recordRun publishes one Run/RunTrace call's throughput.
func (c *CPU) recordRun(t0 time.Time, n int64) {
	wall := time.Since(t0)
	c.metrics.Counter("sim.insts").Add(n)
	c.metrics.Counter("sim.wall_ns").Add(wall.Nanoseconds())
	if s := wall.Seconds(); s > 0 && n > 0 {
		c.metrics.Histogram("sim.kips").Observe(int64(float64(n) / s / 1000))
	}
}

// New returns a CPU with fresh memory and the stack pointer initialized.
func New() *CPU {
	c := &CPU{Mem: mem.New()}
	c.X[rv64.RegSP] = DefaultStackTop
	return c
}

// Load installs an assembled program: text and data are copied into memory,
// the PC is set to the entry point and the decode cache is primed.
func (c *CPU) Load(p *asm.Program) {
	c.Mem.SetBytes(p.TextAddr, p.TextBytes())
	if len(p.Data) > 0 {
		c.Mem.SetBytes(p.DataAddr, p.Data)
	}
	c.PC = p.Entry
	c.SetTextWindow(p.TextAddr, len(p.Text))
}

// SetTextWindow (re)declares the instruction address range so fetches decode
// through a direct-mapped slice cache instead of repeated binary decode.
func (c *CPU) SetTextWindow(base uint64, words int) {
	c.textBase = base
	c.decoded = make([]rv64.Inst, words)
	c.valid = make([]bool, words)
}

func (c *CPU) fetch(pc uint64) (rv64.Inst, error) {
	if idx := (pc - c.textBase) / 4; pc >= c.textBase && idx < uint64(len(c.decoded)) && pc%4 == 0 {
		if c.valid[idx] {
			return c.decoded[idx], nil
		}
		in, err := rv64.Decode(c.Mem.Read32(pc))
		if err != nil {
			return in, fmt.Errorf("sim: pc=%#x: %w", pc, err)
		}
		c.decoded[idx], c.valid[idx] = in, true
		return in, nil
	}
	in, err := rv64.Decode(c.Mem.Read32(pc))
	if err != nil {
		return in, fmt.Errorf("sim: pc=%#x: %w", pc, err)
	}
	return in, nil
}

// Step executes one instruction. If r is non-nil it is filled with the
// retirement record. Stepping a halted CPU is a no-op returning nil.
func (c *CPU) Step(r *Retired) error {
	if c.Halted {
		return nil
	}
	in, err := c.fetch(c.PC)
	if err != nil {
		return err
	}
	pc := c.PC
	next, taken, memAddr, err := c.exec(in)
	if err != nil {
		return err
	}
	c.X[0] = 0
	c.PC = next
	c.InstRet++
	if r != nil {
		r.PC = pc
		r.NextPC = next
		r.Inst = in
		r.Taken = taken
		r.MemAddr = memAddr
	}
	return nil
}

// Run executes up to max instructions (or until halt when max < 0) and
// returns the number retired.
func (c *CPU) Run(max int64) (n int64, err error) {
	if c.metrics != nil {
		t0 := time.Now()
		defer func() { c.recordRun(t0, n) }()
	}
	for !c.Halted && (max < 0 || n < max) {
		if err := c.Step(nil); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// RunTrace is Run with a callback per retired instruction. The callback
// receives a reused Retired record; it must not retain the pointer.
func (c *CPU) RunTrace(max int64, fn func(*Retired)) (n int64, err error) {
	if c.metrics != nil {
		t0 := time.Now()
		defer func() { c.recordRun(t0, n) }()
	}
	var r Retired
	for !c.Halted && (max < 0 || n < max) {
		if err := c.Step(&r); err != nil {
			return n, err
		}
		fn(&r)
		n++
	}
	return n, nil
}

// syscall implements the minimal Linux-flavored ABI the workloads use:
// a7=93 exit(a0), a7=64 write(fd=a0, buf=a1, len=a2).
func (c *CPU) syscall() error {
	switch c.X[rv64.RegA7] {
	case 93: // exit
		c.Halted = true
		c.Exit = int64(c.X[rv64.RegA0])
		return nil
	case 64: // write
		n := c.X[rv64.RegA2]
		if n > 1<<20 {
			return fmt.Errorf("sim: write syscall of %d bytes", n)
		}
		c.Stdout = append(c.Stdout, c.Mem.ReadBytes(c.X[rv64.RegA1], int(n))...)
		c.X[rv64.RegA0] = n
		return nil
	}
	return fmt.Errorf("sim: unsupported syscall %d at pc=%#x", c.X[rv64.RegA7], c.PC)
}
