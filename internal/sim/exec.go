package sim

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/rv64"
)

// exec executes one decoded instruction and returns the next PC, the branch
// outcome and the effective memory address (when applicable).
func (c *CPU) exec(in rv64.Inst) (next uint64, taken bool, memAddr uint64, err error) {
	pc := c.PC
	next = pc + 4
	x := &c.X
	rs1 := x[in.Rs1]
	rs2 := x[in.Rs2]
	wr := func(v uint64) {
		if in.Rd != 0 {
			x[in.Rd] = v
		}
	}
	w32 := func(v int32) { wr(uint64(int64(v))) }

	switch in.Op {
	case rv64.LUI:
		wr(uint64(in.Imm << 12))
	case rv64.AUIPC:
		wr(pc + uint64(in.Imm<<12))
	case rv64.JAL:
		wr(pc + 4)
		next = pc + uint64(in.Imm)
		taken = true
	case rv64.JALR:
		t := (rs1 + uint64(in.Imm)) &^ 1
		wr(pc + 4)
		next = t
		taken = true
	case rv64.BEQ:
		taken = rs1 == rs2
	case rv64.BNE:
		taken = rs1 != rs2
	case rv64.BLT:
		taken = int64(rs1) < int64(rs2)
	case rv64.BGE:
		taken = int64(rs1) >= int64(rs2)
	case rv64.BLTU:
		taken = rs1 < rs2
	case rv64.BGEU:
		taken = rs1 >= rs2
	case rv64.LB:
		memAddr = rs1 + uint64(in.Imm)
		wr(uint64(int64(int8(c.Mem.Read(memAddr, 1)))))
	case rv64.LH:
		memAddr = rs1 + uint64(in.Imm)
		wr(uint64(int64(int16(c.Mem.Read(memAddr, 2)))))
	case rv64.LW:
		memAddr = rs1 + uint64(in.Imm)
		wr(uint64(int64(int32(c.Mem.Read(memAddr, 4)))))
	case rv64.LD:
		memAddr = rs1 + uint64(in.Imm)
		wr(c.Mem.Read(memAddr, 8))
	case rv64.LBU:
		memAddr = rs1 + uint64(in.Imm)
		wr(c.Mem.Read(memAddr, 1))
	case rv64.LHU:
		memAddr = rs1 + uint64(in.Imm)
		wr(c.Mem.Read(memAddr, 2))
	case rv64.LWU:
		memAddr = rs1 + uint64(in.Imm)
		wr(c.Mem.Read(memAddr, 4))
	case rv64.SB:
		memAddr = rs1 + uint64(in.Imm)
		c.Mem.Write(memAddr, 1, rs2)
	case rv64.SH:
		memAddr = rs1 + uint64(in.Imm)
		c.Mem.Write(memAddr, 2, rs2)
	case rv64.SW:
		memAddr = rs1 + uint64(in.Imm)
		c.Mem.Write(memAddr, 4, rs2)
	case rv64.SD:
		memAddr = rs1 + uint64(in.Imm)
		c.Mem.Write(memAddr, 8, rs2)
	case rv64.ADDI:
		wr(rs1 + uint64(in.Imm))
	case rv64.SLTI:
		wr(b2u(int64(rs1) < in.Imm))
	case rv64.SLTIU:
		wr(b2u(rs1 < uint64(in.Imm)))
	case rv64.XORI:
		wr(rs1 ^ uint64(in.Imm))
	case rv64.ORI:
		wr(rs1 | uint64(in.Imm))
	case rv64.ANDI:
		wr(rs1 & uint64(in.Imm))
	case rv64.SLLI:
		wr(rs1 << uint(in.Imm))
	case rv64.SRLI:
		wr(rs1 >> uint(in.Imm))
	case rv64.SRAI:
		wr(uint64(int64(rs1) >> uint(in.Imm)))
	case rv64.ADD:
		wr(rs1 + rs2)
	case rv64.SUB:
		wr(rs1 - rs2)
	case rv64.SLL:
		wr(rs1 << (rs2 & 63))
	case rv64.SLT:
		wr(b2u(int64(rs1) < int64(rs2)))
	case rv64.SLTU:
		wr(b2u(rs1 < rs2))
	case rv64.XOR:
		wr(rs1 ^ rs2)
	case rv64.SRL:
		wr(rs1 >> (rs2 & 63))
	case rv64.SRA:
		wr(uint64(int64(rs1) >> (rs2 & 63)))
	case rv64.OR:
		wr(rs1 | rs2)
	case rv64.AND:
		wr(rs1 & rs2)
	case rv64.ADDIW:
		w32(int32(rs1) + int32(in.Imm))
	case rv64.SLLIW:
		w32(int32(rs1) << uint(in.Imm))
	case rv64.SRLIW:
		w32(int32(uint32(rs1) >> uint(in.Imm)))
	case rv64.SRAIW:
		w32(int32(rs1) >> uint(in.Imm))
	case rv64.ADDW:
		w32(int32(rs1) + int32(rs2))
	case rv64.SUBW:
		w32(int32(rs1) - int32(rs2))
	case rv64.SLLW:
		w32(int32(rs1) << (rs2 & 31))
	case rv64.SRLW:
		w32(int32(uint32(rs1) >> (rs2 & 31)))
	case rv64.SRAW:
		w32(int32(rs1) >> (rs2 & 31))
	case rv64.FENCE:
		// no-op in a single-hart functional model
	case rv64.ECALL:
		if err := c.syscall(); err != nil {
			return next, false, 0, err
		}
	case rv64.EBREAK:
		return next, false, 0, ErrBreakpoint

	case rv64.MUL:
		wr(rs1 * rs2)
	case rv64.MULH:
		wr(mulh(int64(rs1), int64(rs2)))
	case rv64.MULHSU:
		wr(mulhsu(int64(rs1), rs2))
	case rv64.MULHU:
		wr(mulhu(rs1, rs2))
	case rv64.DIV:
		wr(uint64(divS(int64(rs1), int64(rs2))))
	case rv64.DIVU:
		wr(divU(rs1, rs2))
	case rv64.REM:
		wr(uint64(remS(int64(rs1), int64(rs2))))
	case rv64.REMU:
		wr(remU(rs1, rs2))
	case rv64.MULW:
		w32(int32(rs1) * int32(rs2))
	case rv64.DIVW:
		w32(divS32(int32(rs1), int32(rs2)))
	case rv64.DIVUW:
		w32(int32(divU32(uint32(rs1), uint32(rs2))))
	case rv64.REMW:
		w32(remS32(int32(rs1), int32(rs2)))
	case rv64.REMUW:
		w32(int32(remU32(uint32(rs1), uint32(rs2))))

	default:
		return c.execFP(in, rs1, rs2)
	}

	if in.Op.Class() == rv64.ClassBranch {
		if taken {
			next = pc + uint64(in.Imm)
		}
	}
	return next, taken, memAddr, nil
}

func (c *CPU) execFP(in rv64.Inst, rs1, rs2 uint64) (next uint64, taken bool, memAddr uint64, err error) {
	next = c.PC + 4
	f := &c.F
	fd := func(i uint8) float64 { return math.Float64frombits(f[i]) }
	wrf := func(v float64) { f[in.Rd] = math.Float64bits(v) }
	wri := func(v uint64) {
		if in.Rd != 0 {
			c.X[in.Rd] = v
		}
	}
	a, b := fd(in.Rs1), fd(in.Rs2)

	switch in.Op {
	case rv64.FLD:
		memAddr = rs1 + uint64(in.Imm)
		f[in.Rd] = c.Mem.Read(memAddr, 8)
	case rv64.FSD:
		memAddr = rs1 + uint64(in.Imm)
		c.Mem.Write(memAddr, 8, f[in.Rs2])
	case rv64.FADDD:
		wrf(a + b)
	case rv64.FSUBD:
		wrf(a - b)
	case rv64.FMULD:
		wrf(a * b)
	case rv64.FDIVD:
		wrf(a / b)
	case rv64.FSQRTD:
		wrf(math.Sqrt(a))
	case rv64.FSGNJD:
		f[in.Rd] = f[in.Rs1]&^signBit | f[in.Rs2]&signBit
	case rv64.FSGNJND:
		f[in.Rd] = f[in.Rs1]&^signBit | ^f[in.Rs2]&signBit
	case rv64.FSGNJXD:
		f[in.Rd] = f[in.Rs1] ^ f[in.Rs2]&signBit
	case rv64.FMIND:
		wrf(fpMin(a, b))
	case rv64.FMAXD:
		wrf(fpMax(a, b))
	case rv64.FCVTWD:
		wri(uint64(int64(satConv32(a))))
	case rv64.FCVTWUD:
		wri(uint64(int64(int32(satConvU32(a))))) // sign-extended per spec
	case rv64.FCVTDW:
		wrf(float64(int32(rs1)))
	case rv64.FCVTDWU:
		wrf(float64(uint32(rs1)))
	case rv64.FCVTLD:
		wri(uint64(satConv64(a)))
	case rv64.FCVTLUD:
		wri(satConvU64(a))
	case rv64.FCVTDL:
		wrf(float64(int64(rs1)))
	case rv64.FCVTDLU:
		wrf(float64(rs1))
	case rv64.FMVXD:
		wri(f[in.Rs1])
	case rv64.FMVDX:
		f[in.Rd] = rs1
	case rv64.FEQD:
		wri(b2u(a == b))
	case rv64.FLTD:
		wri(b2u(a < b))
	case rv64.FLED:
		wri(b2u(a <= b))
	case rv64.FCLASSD:
		wri(fclass(f[in.Rs1]))
	case rv64.FMADDD:
		wrf(math.FMA(a, b, fd(in.Rs3)))
	case rv64.FMSUBD:
		wrf(math.FMA(a, b, -fd(in.Rs3)))
	case rv64.FNMADDD:
		wrf(-math.FMA(a, b, fd(in.Rs3)))
	case rv64.FNMSUBD:
		wrf(math.FMA(-a, b, fd(in.Rs3)))
	default:
		return next, false, 0, fmt.Errorf("sim: unimplemented op %v at pc=%#x", in.Op, c.PC)
	}
	return next, false, memAddr, nil
}

const signBit = uint64(1) << 63

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func mulhu(a, b uint64) uint64 {
	hi, _ := bits.Mul64(a, b)
	return hi
}

// mulh returns the high 64 bits of the signed 128-bit product.
func mulh(a, b int64) uint64 {
	hi := mulhu(uint64(a), uint64(b))
	if a < 0 {
		hi -= uint64(b)
	}
	if b < 0 {
		hi -= uint64(a)
	}
	return hi
}

// mulhsu returns the high 64 bits of the signed×unsigned product.
func mulhsu(a int64, b uint64) uint64 {
	hi := mulhu(uint64(a), b)
	if a < 0 {
		hi -= b
	}
	return hi
}

func divS(a, b int64) int64 {
	switch {
	case b == 0:
		return -1
	case a == math.MinInt64 && b == -1:
		return math.MinInt64
	}
	return a / b
}

func remS(a, b int64) int64 {
	switch {
	case b == 0:
		return a
	case a == math.MinInt64 && b == -1:
		return 0
	}
	return a % b
}

func divU(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	return a / b
}

func remU(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}

func divS32(a, b int32) int32 {
	switch {
	case b == 0:
		return -1
	case a == math.MinInt32 && b == -1:
		return math.MinInt32
	}
	return a / b
}

func remS32(a, b int32) int32 {
	switch {
	case b == 0:
		return a
	case a == math.MinInt32 && b == -1:
		return 0
	}
	return a % b
}

func divU32(a, b uint32) uint32 {
	if b == 0 {
		return ^uint32(0)
	}
	return a / b
}

func remU32(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	return a % b
}

// fpMin implements RISC-V fmin.d: if one input is NaN, return the other.
func fpMin(a, b float64) float64 {
	switch {
	case math.IsNaN(a):
		return b
	case math.IsNaN(b):
		return a
	case a == 0 && b == 0:
		if math.Signbit(a) {
			return a
		}
		return b
	case a < b:
		return a
	}
	return b
}

func fpMax(a, b float64) float64 {
	switch {
	case math.IsNaN(a):
		return b
	case math.IsNaN(b):
		return a
	case a == 0 && b == 0:
		if math.Signbit(a) {
			return b
		}
		return a
	case a > b:
		return a
	}
	return b
}

// Saturating float→int conversions with RISC-V semantics (round toward
// zero; NaN converts to the maximum value).
func satConv32(a float64) int32 {
	switch {
	case math.IsNaN(a):
		return math.MaxInt32
	case a >= float64(math.MaxInt32):
		return math.MaxInt32
	case a <= float64(math.MinInt32):
		return math.MinInt32
	}
	return int32(a)
}

func satConvU32(a float64) uint32 {
	switch {
	case math.IsNaN(a):
		return math.MaxUint32
	case a >= float64(math.MaxUint32):
		return math.MaxUint32
	case a <= 0:
		return 0
	}
	return uint32(a)
}

func satConv64(a float64) int64 {
	switch {
	case math.IsNaN(a):
		return math.MaxInt64
	case a >= float64(math.MaxInt64):
		return math.MaxInt64
	case a <= float64(math.MinInt64):
		return math.MinInt64
	}
	return int64(a)
}

func satConvU64(a float64) uint64 {
	switch {
	case math.IsNaN(a):
		return math.MaxUint64
	case a >= float64(math.MaxUint64):
		return math.MaxUint64
	case a <= 0:
		return 0
	}
	return uint64(a)
}

// fclass returns the RISC-V FCLASS.D result bitmask.
func fclass(bits uint64) uint64 {
	v := math.Float64frombits(bits)
	neg := bits&signBit != 0
	exp := bits >> 52 & 0x7FF
	frac := bits & ((1 << 52) - 1)
	switch {
	case math.IsInf(v, -1):
		return 1 << 0
	case math.IsInf(v, 1):
		return 1 << 7
	case math.IsNaN(v):
		if frac>>51 == 1 {
			return 1 << 9 // quiet NaN
		}
		return 1 << 8 // signaling NaN
	case exp == 0 && frac == 0:
		if neg {
			return 1 << 3 // -0
		}
		return 1 << 4 // +0
	case exp == 0:
		if neg {
			return 1 << 2 // negative subnormal
		}
		return 1 << 5 // positive subnormal
	case neg:
		return 1 << 1 // negative normal
	}
	return 1 << 6 // positive normal
}
