package sim

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/rv64"
)

// run assembles src, executes it to completion and returns the CPU.
func run(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := New()
	c.Load(p)
	if _, err := c.Run(50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.Halted {
		t.Fatal("program did not halt")
	}
	return c
}

const exit = `
	li a7, 93
	ecall
`

func TestLoopSum(t *testing.T) {
	c := run(t, `
		.text
		li a0, 0
		li t0, 1
		li t1, 101
	loop:
		add a0, a0, t0
		addi t0, t0, 1
		bne t0, t1, loop
	`+exit)
	if c.Exit != 5050 {
		t.Fatalf("sum = %d, want 5050", c.Exit)
	}
}

func TestRecursionWithStack(t *testing.T) {
	// fib(15) = 610 via naive recursion, exercising the stack.
	c := run(t, `
		.text
		li a0, 15
		call fib
		li a7, 93
		ecall
	fib:
		li t0, 2
		blt a0, t0, base
		addi sp, sp, -24
		sd ra, 0(sp)
		sd a0, 8(sp)
		addi a0, a0, -1
		call fib
		sd a0, 16(sp)
		ld a0, 8(sp)
		addi a0, a0, -2
		call fib
		ld t1, 16(sp)
		add a0, a0, t1
		ld ra, 0(sp)
		addi sp, sp, 24
		ret
	base:
		ret
	`)
	if c.Exit != 610 {
		t.Fatalf("fib(15) = %d, want 610", c.Exit)
	}
}

func TestMemoryOpsAndData(t *testing.T) {
	c := run(t, `
		.data
	arr:
		.dword 5, 9, 1, 7, 3
		.equ N, 5
		.text
		la   t0, arr
		li   t1, N
		li   a0, 0
	loop:
		ld   t2, 0(t0)
		add  a0, a0, t2
		addi t0, t0, 8
		addi t1, t1, -1
		bnez t1, loop
	`+exit)
	if c.Exit != 25 {
		t.Fatalf("sum = %d, want 25", c.Exit)
	}
}

func TestByteHalfWordAccess(t *testing.T) {
	c := run(t, `
		.data
	buf:
		.space 16
		.text
		la  t0, buf
		li  t1, -2
		sb  t1, 0(t0)
		lb  t2, 0(t0)      # sign-extended -2
		lbu t3, 0(t0)      # 254
		li  t1, -3
		sh  t1, 2(t0)
		lh  t4, 2(t0)      # -3
		lhu t5, 2(t0)      # 65533
		add a0, t2, t3     # 252
		add a0, a0, t4     # 249
		add a0, a0, t5     # 65782
	`+exit)
	if c.Exit != 65782 {
		t.Fatalf("got %d, want 65782", c.Exit)
	}
}

func TestWordArithmeticSignExtension(t *testing.T) {
	c := run(t, `
		.text
		li   t0, 0x7FFFFFFF
		addiw t1, t0, 1        # overflows to -2^31
		li   t2, 0x80000000
		sub  a0, t1, t2        # t2 = +2^31 via li (64-bit), t1 = -2^31
	`+exit)
	if c.Exit != -(1 << 32) {
		t.Fatalf("got %d, want %d", c.Exit, -(int64(1) << 32))
	}
}

func TestDivRemEdgeCases(t *testing.T) {
	c := run(t, `
		.text
		li t0, 7
		li t1, 0
		div  t2, t0, t1       # -1
		rem  t3, t0, t1       # 7
		divu t4, t0, t1       # all ones
		li  t5, 1
		add a0, t2, t3        # 6
		add t4, t4, t5        # 0
		add a0, a0, t4
	`+exit)
	if c.Exit != 6 {
		t.Fatalf("got %d, want 6", c.Exit)
	}
}

func TestFloatingPoint(t *testing.T) {
	c := run(t, `
		.data
	vals:
		.dword 0x4000000000000000   # 2.0
		.dword 0x4008000000000000   # 3.0
		.text
		la  t0, vals
		fld fa0, 0(t0)
		fld fa1, 8(t0)
		fmul.d  fa2, fa0, fa1       # 6.0
		fadd.d  fa2, fa2, fa0       # 8.0
		fsqrt.d fa3, fa2            # ~2.828
		fmadd.d fa4, fa0, fa1, fa2  # 2*3+8 = 14
		fdiv.d  fa5, fa4, fa0       # 7
		fcvt.l.d a0, fa5
	`+exit)
	if c.Exit != 7 {
		t.Fatalf("got %d, want 7", c.Exit)
	}
}

func TestFPCompareAndConvert(t *testing.T) {
	c := run(t, `
		.text
		li   t0, 5
		fcvt.d.l fa0, t0
		li   t1, 3
		fcvt.d.l fa1, t1
		flt.d a0, fa1, fa0     # 1
		fle.d t2, fa0, fa1     # 0
		feq.d t3, fa0, fa0     # 1
		add  a0, a0, t2
		add  a0, a0, t3        # 2
		fneg.d fa2, fa0
		fabs.d fa3, fa2
		feq.d t4, fa3, fa0     # 1
		add  a0, a0, t4        # 3
	`+exit)
	if c.Exit != 3 {
		t.Fatalf("got %d, want 3", c.Exit)
	}
}

func TestWriteSyscall(t *testing.T) {
	c := run(t, `
		.data
	msg:
		.ascii "hello"
		.text
		li a0, 1
		la a1, msg
		li a2, 5
		li a7, 64
		ecall
		li a0, 0
	`+exit)
	if string(c.Stdout) != "hello" {
		t.Fatalf("stdout = %q", c.Stdout)
	}
}

func TestRetiredRecords(t *testing.T) {
	p, err := asm.Assemble(`
		.text
		li  t0, 2          # addi
		beq t0, t0, next   # taken branch
		nop
	next:
		ld  t1, 0(sp)
	` + exit)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.Load(p)
	var recs []Retired
	if _, err := c.RunTrace(-1, func(r *Retired) {
		recs = append(recs, *r)
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	if recs[1].Inst.Op != rv64.BEQ || !recs[1].Taken {
		t.Errorf("branch record wrong: %+v", recs[1])
	}
	if recs[1].NextPC != recs[2].PC {
		t.Errorf("taken branch NextPC %#x, next record PC %#x", recs[1].NextPC, recs[2].PC)
	}
	if recs[2].Inst.Op != rv64.LD || recs[2].MemAddr != DefaultStackTop {
		t.Errorf("load record wrong: %+v", recs[2])
	}
}

func TestX0AlwaysZero(t *testing.T) {
	c := run(t, `
		.text
		li  t0, 99
		add x0, t0, t0
		mv  a0, x0
	`+exit)
	if c.Exit != 0 {
		t.Fatalf("x0 = %d", c.Exit)
	}
}

func TestMulhAgainstBigInt(t *testing.T) {
	f := func(a, b int64) bool {
		want := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		want.Rsh(want, 64)
		got := mulh(a, b)
		return uint64(want.Int64()) == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	fu := func(a, b uint64) bool {
		bigA := new(big.Int).SetUint64(a)
		bigB := new(big.Int).SetUint64(b)
		want := new(big.Int).Mul(bigA, bigB)
		want.Rsh(want, 64)
		return want.Uint64() == mulhu(a, b)
	}
	if err := quick.Check(fu, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	fsu := func(a int64, b uint64) bool {
		want := new(big.Int).Mul(big.NewInt(a), new(big.Int).SetUint64(b))
		want.Rsh(want, 64)
		lo64 := new(big.Int).And(want, new(big.Int).SetUint64(math.MaxUint64))
		return lo64.Uint64() == mulhsu(a, b)
	}
	if err := quick.Check(fsu, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDivPropertiesAgainstGo(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return true // covered by the edge-case test
		}
		return divS(a, b) == a/b && remS(a, b) == a%b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFclass(t *testing.T) {
	cases := map[float64]uint64{
		math.Inf(-1):         1 << 0,
		-1.5:                 1 << 1,
		math.Copysign(0, -1): 1 << 3,
		0:                    1 << 4,
		2.5:                  1 << 6,
		math.Inf(1):          1 << 7,
	}
	for v, want := range cases {
		if got := fclass(math.Float64bits(v)); got != want {
			t.Errorf("fclass(%v) = %#x, want %#x", v, got, want)
		}
	}
	if got := fclass(math.Float64bits(math.NaN())); got != 1<<9 && got != 1<<8 {
		t.Errorf("fclass(NaN) = %#x", got)
	}
}

func TestEbreakStops(t *testing.T) {
	p, err := asm.Assemble("\t.text\n\tebreak")
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.Load(p)
	if _, err := c.Run(-1); err != ErrBreakpoint {
		t.Fatalf("expected Breakpoint, got %v", err)
	}
}

func TestUnsupportedSyscallErrors(t *testing.T) {
	p, err := asm.Assemble("\t.text\n\tli a7, 999\n\tecall")
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.Load(p)
	if _, err := c.Run(-1); err == nil {
		t.Fatal("expected error for unsupported syscall")
	}
}
