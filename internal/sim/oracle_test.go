package sim

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/rv64"
)

// TestIntegerOpsAgainstOracle differentially tests every integer
// register-register and register-immediate operation against a Go-side
// oracle over random operands.
func TestIntegerOpsAgainstOracle(t *testing.T) {
	type oracle func(a, b uint64, imm int64) uint64
	u32 := func(v uint64) uint32 { return uint32(v) }
	sext32 := func(v int32) uint64 { return uint64(int64(v)) }

	rOps := map[rv64.Op]oracle{
		rv64.ADD:  func(a, b uint64, _ int64) uint64 { return a + b },
		rv64.SUB:  func(a, b uint64, _ int64) uint64 { return a - b },
		rv64.SLL:  func(a, b uint64, _ int64) uint64 { return a << (b & 63) },
		rv64.SRL:  func(a, b uint64, _ int64) uint64 { return a >> (b & 63) },
		rv64.SRA:  func(a, b uint64, _ int64) uint64 { return uint64(int64(a) >> (b & 63)) },
		rv64.SLT:  func(a, b uint64, _ int64) uint64 { return b2u(int64(a) < int64(b)) },
		rv64.SLTU: func(a, b uint64, _ int64) uint64 { return b2u(a < b) },
		rv64.XOR:  func(a, b uint64, _ int64) uint64 { return a ^ b },
		rv64.OR:   func(a, b uint64, _ int64) uint64 { return a | b },
		rv64.AND:  func(a, b uint64, _ int64) uint64 { return a & b },
		rv64.ADDW: func(a, b uint64, _ int64) uint64 { return sext32(int32(a) + int32(b)) },
		rv64.SUBW: func(a, b uint64, _ int64) uint64 { return sext32(int32(a) - int32(b)) },
		rv64.SLLW: func(a, b uint64, _ int64) uint64 { return sext32(int32(a) << (b & 31)) },
		rv64.SRLW: func(a, b uint64, _ int64) uint64 { return sext32(int32(u32(a) >> (b & 31))) },
		rv64.SRAW: func(a, b uint64, _ int64) uint64 { return sext32(int32(a) >> (b & 31)) },
		rv64.MUL:  func(a, b uint64, _ int64) uint64 { return a * b },
		rv64.MULH: func(a, b uint64, _ int64) uint64 {
			hi, _ := bits.Mul64(uint64(a), uint64(b))
			if int64(a) < 0 {
				hi -= b
			}
			if int64(b) < 0 {
				hi -= a
			}
			return hi
		},
		rv64.MULHU: func(a, b uint64, _ int64) uint64 {
			hi, _ := bits.Mul64(a, b)
			return hi
		},
		rv64.MULHSU: func(a, b uint64, _ int64) uint64 {
			hi, _ := bits.Mul64(uint64(a), b)
			if int64(a) < 0 {
				hi -= b
			}
			return hi
		},
		rv64.MULW: func(a, b uint64, _ int64) uint64 { return sext32(int32(a) * int32(b)) },
		rv64.DIV: func(a, b uint64, _ int64) uint64 {
			switch {
			case b == 0:
				return ^uint64(0)
			case int64(a) == math.MinInt64 && int64(b) == -1:
				return a
			}
			return uint64(int64(a) / int64(b))
		},
		rv64.DIVU: func(a, b uint64, _ int64) uint64 {
			if b == 0 {
				return ^uint64(0)
			}
			return a / b
		},
		rv64.REM: func(a, b uint64, _ int64) uint64 {
			switch {
			case b == 0:
				return a
			case int64(a) == math.MinInt64 && int64(b) == -1:
				return 0
			}
			return uint64(int64(a) % int64(b))
		},
		rv64.REMU: func(a, b uint64, _ int64) uint64 {
			if b == 0 {
				return a
			}
			return a % b
		},
		rv64.DIVW: func(a, b uint64, _ int64) uint64 {
			x, y := int32(a), int32(b)
			switch {
			case y == 0:
				return sext32(-1)
			case x == math.MinInt32 && y == -1:
				return sext32(x)
			}
			return sext32(x / y)
		},
		rv64.DIVUW: func(a, b uint64, _ int64) uint64 {
			if u32(b) == 0 {
				return sext32(-1)
			}
			return sext32(int32(u32(a) / u32(b)))
		},
		rv64.REMW: func(a, b uint64, _ int64) uint64 {
			x, y := int32(a), int32(b)
			switch {
			case y == 0:
				return sext32(x)
			case x == math.MinInt32 && y == -1:
				return 0
			}
			return sext32(x % y)
		},
		rv64.REMUW: func(a, b uint64, _ int64) uint64 {
			if u32(b) == 0 {
				return sext32(int32(u32(a)))
			}
			return sext32(int32(u32(a) % u32(b)))
		},
	}
	iOps := map[rv64.Op]oracle{
		rv64.ADDI:  func(a, _ uint64, imm int64) uint64 { return a + uint64(imm) },
		rv64.SLTI:  func(a, _ uint64, imm int64) uint64 { return b2u(int64(a) < imm) },
		rv64.SLTIU: func(a, _ uint64, imm int64) uint64 { return b2u(a < uint64(imm)) },
		rv64.XORI:  func(a, _ uint64, imm int64) uint64 { return a ^ uint64(imm) },
		rv64.ORI:   func(a, _ uint64, imm int64) uint64 { return a | uint64(imm) },
		rv64.ANDI:  func(a, _ uint64, imm int64) uint64 { return a & uint64(imm) },
		rv64.ADDIW: func(a, _ uint64, imm int64) uint64 { return sext32(int32(a) + int32(imm)) },
	}
	shiftOps := map[rv64.Op]oracle{
		rv64.SLLI:  func(a, _ uint64, imm int64) uint64 { return a << uint(imm) },
		rv64.SRLI:  func(a, _ uint64, imm int64) uint64 { return a >> uint(imm) },
		rv64.SRAI:  func(a, _ uint64, imm int64) uint64 { return uint64(int64(a) >> uint(imm)) },
		rv64.SLLIW: func(a, _ uint64, imm int64) uint64 { return sext32(int32(a) << uint(imm)) },
		rv64.SRLIW: func(a, _ uint64, imm int64) uint64 { return sext32(int32(u32(a) >> uint(imm))) },
		rv64.SRAIW: func(a, _ uint64, imm int64) uint64 { return sext32(int32(a) >> uint(imm)) },
	}

	rng := rand.New(rand.NewSource(2026))
	interesting := []uint64{0, 1, ^uint64(0), 1 << 63, math.MaxInt64, 0x80000000, 0xFFFFFFFF}
	operand := func() uint64 {
		if rng.Intn(3) == 0 {
			return interesting[rng.Intn(len(interesting))]
		}
		return rng.Uint64()
	}

	check := func(op rv64.Op, or oracle, imm int64, wantRs2 bool) {
		a, b := operand(), operand()
		in := rv64.Inst{Op: op, Rd: 10, Rs1: 11, Imm: imm}
		if wantRs2 {
			in.Rs2 = 12
		}
		c := execOne(t, in, func(c *CPU) {
			c.X[11] = a
			c.X[12] = b
		})
		want := or(a, b, imm)
		if c.X[10] != want {
			t.Errorf("%v(a=%#x, b=%#x, imm=%d) = %#x, want %#x", op, a, b, imm, c.X[10], want)
		}
	}
	for trial := 0; trial < 300; trial++ {
		for op, or := range rOps {
			check(op, or, 0, true)
		}
		for op, or := range iOps {
			check(op, or, int64(rng.Intn(4096))-2048, false)
		}
	}
	for trial := 0; trial < 64; trial++ {
		for op, or := range shiftOps {
			max := 64
			switch op {
			case rv64.SLLIW, rv64.SRLIW, rv64.SRAIW:
				max = 32
			}
			check(op, or, int64(rng.Intn(max)), false)
		}
	}
}

// TestFPArithmeticAgainstOracle differentially tests the FP arithmetic ops.
func TestFPArithmeticAgainstOracle(t *testing.T) {
	type fporacle func(a, b float64) float64
	ops := map[rv64.Op]fporacle{
		rv64.FADDD: func(a, b float64) float64 { return a + b },
		rv64.FSUBD: func(a, b float64) float64 { return a - b },
		rv64.FMULD: func(a, b float64) float64 { return a * b },
		rv64.FDIVD: func(a, b float64) float64 { return a / b },
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		a := math.Float64frombits(rng.Uint64())
		b := math.Float64frombits(rng.Uint64())
		for op, or := range ops {
			c := execOne(t, rv64.Inst{Op: op, Rd: 3, Rs1: 1, Rs2: 2}, func(c *CPU) {
				c.F[1] = math.Float64bits(a)
				c.F[2] = math.Float64bits(b)
			})
			got := math.Float64frombits(c.F[3])
			want := or(a, b)
			if math.IsNaN(want) {
				if !math.IsNaN(got) {
					t.Errorf("%v(%v, %v) = %v, want NaN", op, a, b, got)
				}
				continue
			}
			if got != want {
				t.Errorf("%v(%v, %v) = %v, want %v", op, a, b, got, want)
			}
		}
	}
	// fsqrt on non-negative values.
	for trial := 0; trial < 200; trial++ {
		a := math.Abs(math.Float64frombits(rng.Uint64()))
		c := execOne(t, rv64.Inst{Op: rv64.FSQRTD, Rd: 3, Rs1: 1}, func(c *CPU) {
			c.F[1] = math.Float64bits(a)
		})
		got := math.Float64frombits(c.F[3])
		want := math.Sqrt(a)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("fsqrt(%v) = %v, want %v", a, got, want)
		}
	}
}
