package sim

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/rv64"
)

// execOne builds a CPU, seeds registers, executes one decoded instruction
// and returns the CPU.
func execOne(t *testing.T, in rv64.Inst, setup func(*CPU)) *CPU {
	t.Helper()
	c := New()
	raw, err := rv64.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	c.Mem.Write(0x1000, 4, uint64(raw))
	c.PC = 0x1000
	c.SetTextWindow(0x1000, 1)
	if setup != nil {
		setup(c)
	}
	if err := c.Step(nil); err != nil {
		t.Fatal(err)
	}
	return c
}

func fbits(v float64) uint64 { return math.Float64bits(v) }

func TestFMinMaxNaNHandling(t *testing.T) {
	// RISC-V fmin/fmax return the non-NaN operand.
	c := execOne(t, rv64.Inst{Op: rv64.FMIND, Rd: 3, Rs1: 1, Rs2: 2}, func(c *CPU) {
		c.F[1] = fbits(math.NaN())
		c.F[2] = fbits(2.5)
	})
	if got := math.Float64frombits(c.F[3]); got != 2.5 {
		t.Errorf("fmin(NaN, 2.5) = %v", got)
	}
	c = execOne(t, rv64.Inst{Op: rv64.FMAXD, Rd: 3, Rs1: 1, Rs2: 2}, func(c *CPU) {
		c.F[1] = fbits(-1)
		c.F[2] = fbits(math.NaN())
	})
	if got := math.Float64frombits(c.F[3]); got != -1 {
		t.Errorf("fmax(-1, NaN) = %v", got)
	}
	// Signed zeros: fmin(-0, +0) = -0, fmax(-0, +0) = +0.
	c = execOne(t, rv64.Inst{Op: rv64.FMIND, Rd: 3, Rs1: 1, Rs2: 2}, func(c *CPU) {
		c.F[1] = fbits(math.Copysign(0, -1))
		c.F[2] = fbits(0)
	})
	if !math.Signbit(math.Float64frombits(c.F[3])) {
		t.Error("fmin(-0, +0) must be -0")
	}
	c = execOne(t, rv64.Inst{Op: rv64.FMAXD, Rd: 3, Rs1: 1, Rs2: 2}, func(c *CPU) {
		c.F[1] = fbits(math.Copysign(0, -1))
		c.F[2] = fbits(0)
	})
	if math.Signbit(math.Float64frombits(c.F[3])) {
		t.Error("fmax(-0, +0) must be +0")
	}
}

func TestSaturatingConversions(t *testing.T) {
	cases := []struct {
		op   rv64.Op
		in   float64
		want uint64
	}{
		{rv64.FCVTLD, 1e300, uint64(math.MaxInt64)},
		{rv64.FCVTLD, -1e300, 1 << 63},
		{rv64.FCVTLD, math.NaN(), uint64(math.MaxInt64)},
		{rv64.FCVTLD, -2.9, uint64(0xFFFFFFFFFFFFFFFE)}, // trunc toward zero: -2
		{rv64.FCVTLUD, -5, 0},
		{rv64.FCVTLUD, 1e300, math.MaxUint64},
		{rv64.FCVTWD, 1e300, uint64(math.MaxInt32)},
		{rv64.FCVTWD, -1e300, 0xFFFFFFFF80000000},
		{rv64.FCVTWUD, 1e300, 0xFFFFFFFFFFFFFFFF}, // MaxUint32 sign-extended
	}
	for _, tc := range cases {
		c := execOne(t, rv64.Inst{Op: tc.op, Rd: 5, Rs1: 1}, func(c *CPU) {
			c.F[1] = fbits(tc.in)
		})
		if c.X[5] != tc.want {
			t.Errorf("%v(%v) = %#x, want %#x", tc.op, tc.in, c.X[5], tc.want)
		}
	}
}

func TestFclassSubnormals(t *testing.T) {
	sub := math.Float64frombits(1) // smallest positive subnormal
	if got := fclass(math.Float64bits(sub)); got != 1<<5 {
		t.Errorf("fclass(+subnormal) = %#x, want bit 5", got)
	}
	if got := fclass(math.Float64bits(-sub)); got != 1<<2 {
		t.Errorf("fclass(-subnormal) = %#x, want bit 2", got)
	}
}

func TestJALRClearsLSB(t *testing.T) {
	// jalr must clear bit 0 of the computed target (spec requirement).
	c := execOne(t, rv64.Inst{Op: rv64.JALR, Rd: 1, Rs1: 5, Imm: 3}, func(c *CPU) {
		c.X[5] = 0x2000
	})
	if c.PC != 0x2002 {
		t.Errorf("jalr target %#x, want 0x2002 (LSB cleared)", c.PC)
	}
	if c.X[1] != 0x1004 {
		t.Errorf("link %#x, want 0x1004", c.X[1])
	}
}

func TestFSgnjBitExact(t *testing.T) {
	// Sign injection operates on raw bits, even for NaN payloads.
	nanBits := uint64(0x7FF8DEADBEEF0001)
	c := execOne(t, rv64.Inst{Op: rv64.FSGNJND, Rd: 3, Rs1: 1, Rs2: 2}, func(c *CPU) {
		c.F[1] = nanBits
		c.F[2] = fbits(1.0) // positive → inject negative
	})
	if c.F[3] != nanBits|1<<63 {
		t.Errorf("fsgnjn payload lost: %#x", c.F[3])
	}
}

func TestFmaddMatchesFMA(t *testing.T) {
	a, b, cc := 1.0000000000000002, 3.999999999999999, -4.000000000000001
	c := execOne(t, rv64.Inst{Op: rv64.FMADDD, Rd: 4, Rs1: 1, Rs2: 2, Rs3: 3}, func(cpu *CPU) {
		cpu.F[1], cpu.F[2], cpu.F[3] = fbits(a), fbits(b), fbits(cc)
	})
	want := math.FMA(a, b, cc)
	if got := math.Float64frombits(c.F[4]); got != want {
		t.Errorf("fmadd fused result %v, want %v (must not double-round)", got, want)
	}
	if mulAdd := a*b + cc; mulAdd == want {
		t.Log("note: chosen operands do not distinguish fused from unfused")
	}
}

// TestDecodeWindowFallback: executing outside the cached text window decodes
// straight from memory.
func TestDecodeWindowFallback(t *testing.T) {
	p, err := asm.Assemble(`
		.text
		li   t0, 0x9000
		jr   t0
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.Load(p)
	// addi a0, zero, 55 ; ecall(exit)
	c.Mem.Write(0x9000, 4, 0x03700513)
	c.Mem.Write(0x9004, 4, 0x05D00893) // li a7, 93
	c.Mem.Write(0x9008, 4, 0x00000073)
	if _, err := c.Run(-1); err != nil {
		t.Fatal(err)
	}
	if !c.Halted || c.Exit != 55 {
		t.Fatalf("halted=%v exit=%d", c.Halted, c.Exit)
	}
}
