package rv64

import "fmt"

// Decode unpacks one 32-bit machine word. It returns an error for encodings
// outside the supported RV64IMD subset.
func Decode(raw uint32) (Inst, error) {
	in := Inst{Raw: raw}
	opcode := raw & 0x7F
	rd := uint8(raw >> 7 & 31)
	f3 := raw >> 12 & 7
	rs1 := uint8(raw >> 15 & 31)
	rs2 := uint8(raw >> 20 & 31)
	f7 := raw >> 25 & 0x7F

	immI := int64(int32(raw)) >> 20
	immS := int64(int32(raw&0xFE000000))>>20 | int64(raw>>7&0x1F)
	immB := int64(int32(raw&0x80000000))>>19 |
		int64(raw>>7&1)<<11 | int64(raw>>25&0x3F)<<5 | int64(raw>>8&0xF)<<1
	immU := int64(int32(raw)) >> 12
	immJ := int64(int32(raw&0x80000000))>>11 |
		int64(raw>>12&0xFF)<<12 | int64(raw>>20&1)<<11 | int64(raw>>21&0x3FF)<<1

	set := func(op Op, imm int64) (Inst, error) {
		in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm = op, rd, rs1, rs2, imm
		normalize(&in)
		return in, nil
	}
	bad := func() (Inst, error) {
		return in, fmt.Errorf("rv64: illegal instruction %#08x", raw)
	}

	switch opcode {
	case 0x37:
		return set(LUI, immU)
	case 0x17:
		return set(AUIPC, immU)
	case 0x6F:
		return set(JAL, immJ)
	case 0x67:
		if f3 != 0 {
			return bad()
		}
		return set(JALR, immI)
	case 0x63:
		var op Op
		switch f3 {
		case 0:
			op = BEQ
		case 1:
			op = BNE
		case 4:
			op = BLT
		case 5:
			op = BGE
		case 6:
			op = BLTU
		case 7:
			op = BGEU
		default:
			return bad()
		}
		return set(op, immB)
	case 0x03:
		var op Op
		switch f3 {
		case 0:
			op = LB
		case 1:
			op = LH
		case 2:
			op = LW
		case 3:
			op = LD
		case 4:
			op = LBU
		case 5:
			op = LHU
		case 6:
			op = LWU
		default:
			return bad()
		}
		return set(op, immI)
	case 0x07:
		if f3 != 3 {
			return bad()
		}
		return set(FLD, immI)
	case 0x23:
		var op Op
		switch f3 {
		case 0:
			op = SB
		case 1:
			op = SH
		case 2:
			op = SW
		case 3:
			op = SD
		default:
			return bad()
		}
		return set(op, immS)
	case 0x27:
		if f3 != 3 {
			return bad()
		}
		return set(FSD, immS)
	case 0x13:
		switch f3 {
		case 0:
			return set(ADDI, immI)
		case 2:
			return set(SLTI, immI)
		case 3:
			return set(SLTIU, immI)
		case 4:
			return set(XORI, immI)
		case 6:
			return set(ORI, immI)
		case 7:
			return set(ANDI, immI)
		case 1:
			if f7>>1 != 0 {
				return bad()
			}
			return set(SLLI, int64(raw>>20&63))
		case 5:
			switch f7 >> 1 {
			case 0x00:
				return set(SRLI, int64(raw>>20&63))
			case 0x10:
				return set(SRAI, int64(raw>>20&63))
			}
			return bad()
		}
		return bad()
	case 0x1B:
		switch f3 {
		case 0:
			return set(ADDIW, immI)
		case 1:
			if f7 != 0 {
				return bad()
			}
			return set(SLLIW, int64(rs2))
		case 5:
			switch f7 {
			case 0x00:
				return set(SRLIW, int64(rs2))
			case 0x20:
				return set(SRAIW, int64(rs2))
			}
			return bad()
		}
		return bad()
	case 0x33:
		if f7 == 0x01 {
			ms := [8]Op{MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU}
			return set(ms[f3], 0)
		}
		switch f3<<8 | f7 {
		case 0x000:
			return set(ADD, 0)
		case 0x020:
			return set(SUB, 0)
		case 0x100:
			return set(SLL, 0)
		case 0x200:
			return set(SLT, 0)
		case 0x300:
			return set(SLTU, 0)
		case 0x400:
			return set(XOR, 0)
		case 0x500:
			return set(SRL, 0)
		case 0x520:
			return set(SRA, 0)
		case 0x600:
			return set(OR, 0)
		case 0x700:
			return set(AND, 0)
		}
		return bad()
	case 0x3B:
		if f7 == 0x01 {
			switch f3 {
			case 0:
				return set(MULW, 0)
			case 4:
				return set(DIVW, 0)
			case 5:
				return set(DIVUW, 0)
			case 6:
				return set(REMW, 0)
			case 7:
				return set(REMUW, 0)
			}
			return bad()
		}
		switch f3<<8 | f7 {
		case 0x000:
			return set(ADDW, 0)
		case 0x020:
			return set(SUBW, 0)
		case 0x100:
			return set(SLLW, 0)
		case 0x500:
			return set(SRLW, 0)
		case 0x520:
			return set(SRAW, 0)
		}
		return bad()
	case 0x0F:
		return set(FENCE, 0)
	case 0x73:
		switch raw {
		case 0x00000073:
			return set(ECALL, 0)
		case 0x00100073:
			return set(EBREAK, 0)
		}
		return bad()
	case 0x53:
		return decodeFP(in, raw, rd, f3, rs1, rs2, f7)
	case 0x43, 0x47, 0x4B, 0x4F:
		if f7&3 != 0x01 { // fmt field must select double precision
			return bad()
		}
		var op Op
		switch opcode {
		case 0x43:
			op = FMADDD
		case 0x47:
			op = FMSUBD
		case 0x4B:
			op = FNMSUBD
		case 0x4F:
			op = FNMADDD
		}
		in.Op, in.Rd, in.Rs1, in.Rs2, in.Rs3 = op, rd, rs1, rs2, uint8(raw>>27&31)
		return in, nil
	}
	return bad()
}

// normalize clears register fields the instruction does not use, so that
// decoded instructions compare cleanly and downstream consumers never see
// leftover bit-field noise (e.g. the shamt in the rs2 slot of shifts).
func normalize(in *Inst) {
	if !in.Op.HasRd() {
		in.Rd = 0
	}
	if !in.Op.HasRs1() {
		in.Rs1 = 0
	}
	if !in.Op.HasRs2() {
		in.Rs2 = 0
	}
	if !in.Op.HasRs3() {
		in.Rs3 = 0
	}
}

func decodeFP(in Inst, raw uint32, rd uint8, f3 uint32, rs1, rs2 uint8, f7 uint32) (Inst, error) {
	set := func(op Op) (Inst, error) {
		in.Op, in.Rd, in.Rs1, in.Rs2 = op, rd, rs1, rs2
		normalize(&in)
		return in, nil
	}
	bad := func() (Inst, error) {
		return in, fmt.Errorf("rv64: illegal FP instruction %#08x", raw)
	}
	switch f7 {
	case 0x01:
		return set(FADDD)
	case 0x05:
		return set(FSUBD)
	case 0x09:
		return set(FMULD)
	case 0x0D:
		return set(FDIVD)
	case 0x2D:
		return set(FSQRTD)
	case 0x11:
		switch f3 {
		case 0:
			return set(FSGNJD)
		case 1:
			return set(FSGNJND)
		case 2:
			return set(FSGNJXD)
		}
		return bad()
	case 0x15:
		switch f3 {
		case 0:
			return set(FMIND)
		case 1:
			return set(FMAXD)
		}
		return bad()
	case 0x51:
		switch f3 {
		case 0:
			return set(FLED)
		case 1:
			return set(FLTD)
		case 2:
			return set(FEQD)
		}
		return bad()
	case 0x61:
		switch rs2 {
		case 0:
			return set(FCVTWD)
		case 1:
			return set(FCVTWUD)
		case 2:
			return set(FCVTLD)
		case 3:
			return set(FCVTLUD)
		}
		return bad()
	case 0x69:
		switch rs2 {
		case 0:
			return set(FCVTDW)
		case 1:
			return set(FCVTDWU)
		case 2:
			return set(FCVTDL)
		case 3:
			return set(FCVTDLU)
		}
		return bad()
	case 0x71:
		switch f3 {
		case 0:
			return set(FMVXD)
		case 1:
			return set(FCLASSD)
		}
		return bad()
	case 0x79:
		return set(FMVDX)
	}
	return bad()
}
