package rv64

import "fmt"

// Encode packs in into its 32-bit machine form. It is the inverse of Decode
// for every supported Op and is used by the assembler.
func Encode(in Inst) (uint32, error) {
	if in.Op == ILLEGAL || in.Op >= numOps {
		return 0, fmt.Errorf("rv64: cannot encode %v", in.Op)
	}
	info := &ops[in.Op]
	rd := uint32(in.Rd) & 31
	rs1 := uint32(in.Rs1) & 31
	rs2 := uint32(in.Rs2) & 31
	rs3 := uint32(in.Rs3) & 31
	switch info.fmt {
	case fmtR:
		if info.unaryFP {
			rs2 = info.rs2Field
		}
		return info.opcode | rd<<7 | info.f3<<12 | rs1<<15 | rs2<<20 | info.f7<<25, nil
	case fmtR4:
		return info.opcode | rd<<7 | info.f3<<12 | rs1<<15 | rs2<<20 | (info.f7&3)<<25 | rs3<<27, nil
	case fmtI:
		if err := checkImm(in.Imm, 12, in.Op); err != nil {
			return 0, err
		}
		imm := uint32(in.Imm) & 0xFFF
		return info.opcode | rd<<7 | info.f3<<12 | rs1<<15 | imm<<20, nil
	case fmtShift:
		if in.Imm < 0 || in.Imm > 63 {
			return 0, fmt.Errorf("rv64: %v shamt %d out of range", in.Op, in.Imm)
		}
		return info.opcode | rd<<7 | info.f3<<12 | rs1<<15 | uint32(in.Imm)<<20 | (info.f7>>1)<<26, nil
	case fmtShiftW:
		if in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("rv64: %v shamt %d out of range", in.Op, in.Imm)
		}
		return info.opcode | rd<<7 | info.f3<<12 | rs1<<15 | uint32(in.Imm)<<20 | info.f7<<25, nil
	case fmtS:
		if err := checkImm(in.Imm, 12, in.Op); err != nil {
			return 0, err
		}
		imm := uint32(in.Imm) & 0xFFF
		return info.opcode | (imm&0x1F)<<7 | info.f3<<12 | rs1<<15 | rs2<<20 | (imm>>5)<<25, nil
	case fmtB:
		if in.Imm&1 != 0 {
			return 0, fmt.Errorf("rv64: %v branch offset %d not even", in.Op, in.Imm)
		}
		if err := checkImm(in.Imm, 13, in.Op); err != nil {
			return 0, err
		}
		imm := uint32(in.Imm) & 0x1FFF
		return info.opcode |
			(imm>>11&1)<<7 | (imm>>1&0xF)<<8 |
			info.f3<<12 | rs1<<15 | rs2<<20 |
			(imm>>5&0x3F)<<25 | (imm>>12&1)<<31, nil
	case fmtU:
		if in.Imm < -(1<<19) || in.Imm >= 1<<20 {
			return 0, fmt.Errorf("rv64: %v imm %d out of 20-bit range", in.Op, in.Imm)
		}
		return info.opcode | rd<<7 | (uint32(in.Imm)&0xFFFFF)<<12, nil
	case fmtJ:
		if in.Imm&1 != 0 {
			return 0, fmt.Errorf("rv64: %v jump offset %d not even", in.Op, in.Imm)
		}
		if err := checkImm(in.Imm, 21, in.Op); err != nil {
			return 0, err
		}
		imm := uint32(in.Imm) & 0x1FFFFF
		return info.opcode | rd<<7 |
			(imm>>12&0xFF)<<12 | (imm>>11&1)<<20 |
			(imm>>1&0x3FF)<<21 | (imm>>20&1)<<31, nil
	case fmtNone:
		switch in.Op {
		case FENCE:
			return 0x0FF0000F, nil
		case ECALL:
			return 0x00000073, nil
		case EBREAK:
			return 0x00100073, nil
		}
	}
	return 0, fmt.Errorf("rv64: unhandled format for %v", in.Op)
}

func checkImm(imm int64, bits uint, op Op) error {
	min := int64(-1) << (bits - 1)
	max := int64(1)<<(bits-1) - 1
	if imm < min || imm > max {
		return fmt.Errorf("rv64: %v immediate %d out of %d-bit signed range", op, imm, bits)
	}
	return nil
}
