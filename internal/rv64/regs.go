package rv64

// IntRegNames lists the ABI names of the 32 integer registers, indexed by
// architectural register number.
var IntRegNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// FPRegNames lists the ABI names of the 32 floating-point registers.
var FPRegNames = [32]string{
	"ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
	"fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
	"fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
	"fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
}

// Commonly referenced ABI register numbers.
const (
	RegZero = 0
	RegRA   = 1
	RegSP   = 2
	RegGP   = 3
	RegA0   = 10
	RegA1   = 11
	RegA2   = 12
	RegA7   = 17
)

var intRegLookup = buildRegLookup(IntRegNames[:], "x")
var fpRegLookup = buildRegLookup(FPRegNames[:], "f")

func buildRegLookup(names []string, prefix string) map[string]uint8 {
	m := make(map[string]uint8, 2*len(names))
	for i, n := range names {
		m[n] = uint8(i)
	}
	for i := 0; i < len(names); i++ {
		m[prefix+itoa(i)] = uint8(i)
	}
	return m
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// IntReg resolves an integer register name ("a0", "x10", "zero", also "fp"
// as an alias for s0) to its number.
func IntReg(name string) (uint8, bool) {
	if name == "fp" {
		return 8, true
	}
	r, ok := intRegLookup[name]
	return r, ok
}

// FPReg resolves an FP register name ("fa0", "f10") to its number.
func FPReg(name string) (uint8, bool) {
	r, ok := fpRegLookup[name]
	return r, ok
}
