package rv64

import (
	"math/rand"
	"testing"
)

// allEncodableOps returns every op that Encode supports.
func allEncodableOps() []Op {
	var out []Op
	for op := Op(1); op < numOps; op++ {
		if ops[op].name != "" {
			out = append(out, op)
		}
	}
	return out
}

func randImm(rng *rand.Rand, op Op) int64 {
	switch ops[op].fmt {
	case fmtI, fmtS:
		return int64(rng.Intn(4096)) - 2048
	case fmtB:
		return (int64(rng.Intn(4096)) - 2048) * 2
	case fmtU:
		return int64(rng.Intn(1<<20)) - 1<<19
	case fmtJ:
		return (int64(rng.Intn(1<<20)) - 1<<19) * 2
	case fmtShift:
		return int64(rng.Intn(64))
	case fmtShiftW:
		return int64(rng.Intn(32))
	}
	return 0
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, op := range allEncodableOps() {
		for trial := 0; trial < 50; trial++ {
			in := Inst{
				Op:  op,
				Rd:  uint8(rng.Intn(32)),
				Rs1: uint8(rng.Intn(32)),
				Rs2: uint8(rng.Intn(32)),
				Rs3: uint8(rng.Intn(32)),
				Imm: randImm(rng, op),
			}
			raw, err := Encode(in)
			if err != nil {
				t.Fatalf("%v: encode: %v", op, err)
			}
			got, err := Decode(raw)
			if err != nil {
				t.Fatalf("%v: decode %#08x: %v", op, raw, err)
			}
			if got.Op != op {
				t.Fatalf("round trip op: have %v want %v (raw %#08x)", got.Op, op, raw)
			}
			if op.HasRd() && got.Rd != in.Rd {
				t.Fatalf("%v: rd %d != %d", op, got.Rd, in.Rd)
			}
			if op.HasRs1() && got.Rs1 != in.Rs1 {
				t.Fatalf("%v: rs1 %d != %d", op, got.Rs1, in.Rs1)
			}
			if op.HasRs2() && got.Rs2 != in.Rs2 {
				t.Fatalf("%v: rs2 %d != %d", op, got.Rs2, in.Rs2)
			}
			if op.HasRs3() && got.Rs3 != in.Rs3 {
				t.Fatalf("%v: rs3 %d != %d", op, got.Rs3, in.Rs3)
			}
			switch ops[op].fmt {
			case fmtI, fmtS, fmtB, fmtJ, fmtShift, fmtShiftW:
				if got.Imm != in.Imm {
					t.Fatalf("%v: imm %d != %d (raw %#08x)", op, got.Imm, in.Imm, raw)
				}
			case fmtU:
				want := in.Imm
				if got.Imm != want {
					t.Fatalf("%v: imm %d != %d", op, got.Imm, want)
				}
			}
		}
	}
}

func TestDecodeKnownEncodings(t *testing.T) {
	// Golden encodings cross-checked against the RISC-V spec examples.
	cases := []struct {
		raw  uint32
		want Inst
	}{
		{0x00000013, Inst{Op: ADDI}},                           // nop = addi x0,x0,0
		{0x00A28293, Inst{Op: ADDI, Rd: 5, Rs1: 5, Imm: 10}},   // addi t0,t0,10
		{0x00B50633, Inst{Op: ADD, Rd: 12, Rs1: 10, Rs2: 11}},  // add a2,a0,a1
		{0x40B50633, Inst{Op: SUB, Rd: 12, Rs1: 10, Rs2: 11}},  // sub a2,a0,a1
		{0x02B50633, Inst{Op: MUL, Rd: 12, Rs1: 10, Rs2: 11}},  // mul a2,a0,a1
		{0x0005A503, Inst{Op: LW, Rd: 10, Rs1: 11, Imm: 0}},    // lw a0,0(a1)
		{0x00A5B023, Inst{Op: SD, Rs1: 11, Rs2: 10, Imm: 0}},   // sd a0,0(a1)
		{0x00000073, Inst{Op: ECALL}},                          // ecall
		{0xFE5214E3, Inst{Op: BNE, Rs1: 4, Rs2: 5, Imm: -24}},  // bne tp,t0,-24
		{0x00C0006F, Inst{Op: JAL, Rd: 0, Imm: 12}},            // j +12
		{0x000080E7, Inst{Op: JALR, Rd: 1, Rs1: 1, Imm: 0}},    // jalr ra,0(ra)
		{0x000125B7, Inst{Op: LUI, Rd: 11, Imm: 0x12}},         // lui a1,0x12
		{0x02B575B3, Inst{Op: REMU, Rd: 11, Rs1: 10, Rs2: 11}}, // remu a1,a0,a1
		{0x01F51513, Inst{Op: SLLI, Rd: 10, Rs1: 10, Imm: 31}}, // slli a0,a0,31
		{0x43F55513, Inst{Op: SRAI, Rd: 10, Rs1: 10, Imm: 63}}, // srai a0,a0,63
	}
	for _, c := range cases {
		got, err := Decode(c.raw)
		if err != nil {
			t.Fatalf("decode %#08x: %v", c.raw, err)
		}
		if got.Op != c.want.Op || got.Rd != c.want.Rd || got.Rs1 != c.want.Rs1 ||
			got.Rs2 != c.want.Rs2 || got.Imm != c.want.Imm {
			t.Errorf("decode %#08x: have %+v want %+v", c.raw, got, c.want)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, raw := range []uint32{0x00000000, 0xFFFFFFFF, 0x0000007F, 0x00007057} {
		if _, err := Decode(raw); err == nil {
			t.Errorf("decode %#08x: expected error", raw)
		}
	}
}

func TestClassAssignments(t *testing.T) {
	cases := map[Op]Class{
		ADD: ClassALU, MUL: ClassMul, DIV: ClassDiv, LD: ClassLoad,
		SD: ClassStore, BEQ: ClassBranch, JAL: ClassJAL, JALR: ClassJALR,
		FADDD: ClassFPALU, FMULD: ClassFPMul, FDIVD: ClassFPDiv,
		FMADDD: ClassFPMul, FSQRTD: ClassFPDiv, ECALL: ClassSystem,
		FLD: ClassLoad, FSD: ClassStore,
	}
	for op, want := range cases {
		if op.Class() != want {
			t.Errorf("%v: class %v want %v", op, op.Class(), want)
		}
	}
}

func TestRegisterFlags(t *testing.T) {
	if !FLD.FPRd() || FLD.FPRs1() {
		t.Error("fld must write FP rd and read int rs1")
	}
	if !FSD.FPRs2() || FSD.FPRs1() {
		t.Error("fsd must read FP rs2 and int rs1")
	}
	if FEQD.FPRd() || !FEQD.FPRs1() || !FEQD.FPRs2() {
		t.Error("feq.d writes int rd from FP sources")
	}
	if !FMADDD.HasRs3() || !FMADDD.FPRs3() {
		t.Error("fmadd.d reads FP rs3")
	}
	if SD.HasRd() || BEQ.HasRd() {
		t.Error("stores and branches have no rd")
	}
	if LD.MemBytes() != 8 || LW.MemBytes() != 4 || SB.MemBytes() != 1 {
		t.Error("wrong memory access widths")
	}
}

func TestRegLookup(t *testing.T) {
	for i, name := range IntRegNames {
		r, ok := IntReg(name)
		if !ok || r != uint8(i) {
			t.Errorf("IntReg(%q) = %d,%v want %d", name, r, ok, i)
		}
	}
	if r, ok := IntReg("x31"); !ok || r != 31 {
		t.Errorf("IntReg(x31) = %d,%v", r, ok)
	}
	if r, ok := IntReg("fp"); !ok || r != 8 {
		t.Errorf("IntReg(fp) = %d,%v", r, ok)
	}
	if r, ok := FPReg("fa0"); !ok || r != 10 {
		t.Errorf("FPReg(fa0) = %d,%v", r, ok)
	}
	if _, ok := IntReg("bogus"); ok {
		t.Error("IntReg(bogus) should fail")
	}
}
