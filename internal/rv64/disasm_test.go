package rv64

import (
	"math/rand"
	"testing"
)

func TestDisassembleGolden(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 10, Rs1: 11, Rs2: 12}, "add a0, a1, a2"},
		{Inst{Op: ADDI, Rd: 5, Rs1: 6, Imm: -42}, "addi t0, t1, -42"},
		{Inst{Op: LD, Rd: 13, Rs1: 2, Imm: 16}, "ld a3, 16(sp)"},
		{Inst{Op: SD, Rs1: 2, Rs2: 13, Imm: -8}, "sd a3, -8(sp)"},
		{Inst{Op: BEQ, Rs1: 10, Rs2: 11, Imm: 64}, "beq a0, a1, 64"},
		{Inst{Op: JAL, Rd: 1, Imm: -2048}, "jal ra, -2048"},
		{Inst{Op: JALR, Rd: 0, Rs1: 1, Imm: 0}, "jalr zero, 0(ra)"},
		{Inst{Op: LUI, Rd: 10, Imm: 1000}, "lui a0, 1000"},
		{Inst{Op: ECALL}, "ecall"},
		{Inst{Op: FLD, Rd: 10, Rs1: 11, Imm: 8}, "fld fa0, 8(a1)"},
		{Inst{Op: FSD, Rs1: 11, Rs2: 10, Imm: 8}, "fsd fa0, 8(a1)"},
		{Inst{Op: FADDD, Rd: 10, Rs1: 11, Rs2: 12}, "fadd.d fa0, fa1, fa2"},
		{Inst{Op: FMADDD, Rd: 1, Rs1: 2, Rs2: 3, Rs3: 4}, "fmadd.d ft1, ft2, ft3, ft4"},
		{Inst{Op: FEQD, Rd: 10, Rs1: 11, Rs2: 12}, "feq.d a0, fa1, fa2"},
		{Inst{Op: FCVTLD, Rd: 10, Rs1: 11}, "fcvt.l.d a0, fa1"},
		{Inst{Op: FMVDX, Rd: 10, Rs1: 11}, "fmv.d.x fa0, a1"},
		{Inst{Op: FSQRTD, Rd: 10, Rs1: 11}, "fsqrt.d fa0, fa1"},
		{Inst{Op: SLLI, Rd: 10, Rs1: 10, Imm: 13}, "slli a0, a0, 13"},
		{Inst{Op: MULHSU, Rd: 7, Rs1: 8, Rs2: 9}, "mulhsu t2, s0, s1"},
	}
	for _, c := range cases {
		if got := Disassemble(c.in); got != c.want {
			t.Errorf("Disassemble(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestDecodeFuzzNoPanic: Decode must never panic and must round-trip
// whatever it accepts.
func TestDecodeFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for i := 0; i < 200_000; i++ {
		raw := rng.Uint32()
		in, err := Decode(raw)
		if err != nil {
			continue
		}
		re, err := Encode(in)
		if err != nil {
			t.Fatalf("decoded %#08x to %+v but cannot re-encode: %v", raw, in, err)
		}
		// Re-encoding may canonicalize don't-care bits (e.g. rounding-mode
		// fields); the re-encoded word must decode to the same instruction.
		in2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded %#08x undecodable: %v", re, err)
		}
		if in.Op != in2.Op || in.Rd != in2.Rd || in.Rs1 != in2.Rs1 ||
			in.Rs2 != in2.Rs2 || in.Rs3 != in2.Rs3 || in.Imm != in2.Imm {
			t.Fatalf("unstable decode: %#08x → %+v vs %#08x → %+v", raw, in, re, in2)
		}
		// Disassembly of any decodable word must not panic.
		_ = Disassemble(in)
	}
}
