package rv64

import "fmt"

// Disassemble renders in as assembler syntax accepted by internal/asm, with
// branch/jump targets shown as numeric offsets. It is the inverse of the
// assembler for single instructions and is used for debugging, traces and
// the encode/decode round-trip property tests.
func Disassemble(in Inst) string {
	name := in.Op.Name()
	x := func(r uint8) string { return IntRegNames[r&31] }
	f := func(r uint8) string { return FPRegNames[r&31] }
	switch in.Op {
	case LUI, AUIPC:
		return fmt.Sprintf("%s %s, %d", name, x(in.Rd), in.Imm)
	case JAL:
		return fmt.Sprintf("%s %s, %d", name, x(in.Rd), in.Imm)
	case JALR:
		return fmt.Sprintf("%s %s, %d(%s)", name, x(in.Rd), in.Imm, x(in.Rs1))
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return fmt.Sprintf("%s %s, %s, %d", name, x(in.Rs1), x(in.Rs2), in.Imm)
	case FENCE, ECALL, EBREAK:
		return name
	case FLD:
		return fmt.Sprintf("%s %s, %d(%s)", name, f(in.Rd), in.Imm, x(in.Rs1))
	case FSD:
		return fmt.Sprintf("%s %s, %d(%s)", name, f(in.Rs2), in.Imm, x(in.Rs1))
	}
	if in.Op.Class() == ClassLoad {
		return fmt.Sprintf("%s %s, %d(%s)", name, x(in.Rd), in.Imm, x(in.Rs1))
	}
	if in.Op.Class() == ClassStore {
		return fmt.Sprintf("%s %s, %d(%s)", name, x(in.Rs2), in.Imm, x(in.Rs1))
	}
	reg := func(r uint8, fp bool) string {
		if fp {
			return f(r)
		}
		return x(r)
	}
	if in.Op.HasRs3() { // fused multiply-add family
		return fmt.Sprintf("%s %s, %s, %s, %s", name,
			reg(in.Rd, in.Op.FPRd()), reg(in.Rs1, in.Op.FPRs1()),
			reg(in.Rs2, in.Op.FPRs2()), reg(in.Rs3, in.Op.FPRs3()))
	}
	if in.Op.HasRs2() { // R-format
		return fmt.Sprintf("%s %s, %s, %s", name,
			reg(in.Rd, in.Op.FPRd()), reg(in.Rs1, in.Op.FPRs1()), reg(in.Rs2, in.Op.FPRs2()))
	}
	if in.Op.HasRs1() && in.Op.HasRd() {
		// I-format ALU / shifts / unary FP.
		switch ops[in.Op].fmt {
		case fmtI, fmtShift, fmtShiftW:
			return fmt.Sprintf("%s %s, %s, %d", name, x(in.Rd), x(in.Rs1), in.Imm)
		}
		return fmt.Sprintf("%s %s, %s", name,
			reg(in.Rd, in.Op.FPRd()), reg(in.Rs1, in.Op.FPRs1()))
	}
	return in.String()
}
