// Package rv64 defines the RV64IMD instruction set used throughout the
// repository: opcode enumeration, binary decode/encode, register naming and
// the coarse instruction classes consumed by the BOOM timing model.
//
// The subset implemented is the one exercised by the MiBench/Embench
// workload kernels in internal/workloads: the full RV64I base, the M
// extension, the D extension (double-precision floating point, including
// fused multiply-add), and the FMV/FCVT bridges between the integer and
// floating-point files. Compressed instructions and CSR accesses other than
// ECALL/EBREAK are intentionally out of scope.
package rv64

import "fmt"

// Op identifies one machine instruction.
type Op uint16

// All supported operations. The order groups the base ISA, the M extension
// and the D extension; Class relies only on the explicit table below, not on
// ordering.
const (
	ILLEGAL Op = iota

	// RV64I
	LUI
	AUIPC
	JAL
	JALR
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	LB
	LH
	LW
	LD
	LBU
	LHU
	LWU
	SB
	SH
	SW
	SD
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND
	ADDIW
	SLLIW
	SRLIW
	SRAIW
	ADDW
	SUBW
	SLLW
	SRLW
	SRAW
	FENCE
	ECALL
	EBREAK

	// RV64M
	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU
	MULW
	DIVW
	DIVUW
	REMW
	REMUW

	// RV64D (+ integer bridges)
	FLD
	FSD
	FADDD
	FSUBD
	FMULD
	FDIVD
	FSQRTD
	FSGNJD
	FSGNJND
	FSGNJXD
	FMIND
	FMAXD
	FCVTWD
	FCVTWUD
	FCVTDW
	FCVTDWU
	FCVTLD
	FCVTLUD
	FCVTDL
	FCVTDLU
	FMVXD
	FMVDX
	FEQD
	FLTD
	FLED
	FCLASSD
	FMADDD
	FMSUBD
	FNMADDD
	FNMSUBD

	numOps
)

// Class is the coarse execution class the timing model schedules by.
type Class uint8

// Instruction classes. Loads and stores carry an FP flag on the Inst rather
// than a separate class so that the LSU treats them uniformly.
const (
	ClassALU    Class = iota // single-cycle integer ops
	ClassMul                 // pipelined integer multiply
	ClassDiv                 // unpipelined integer divide
	ClassLoad                // memory read (int or FP destination)
	ClassStore               // memory write
	ClassBranch              // conditional branch
	ClassJAL                 // direct jump (and link)
	ClassJALR                // indirect jump (and link)
	ClassFPALU               // FP add/sub/compare/convert/move/sign ops
	ClassFPMul               // FP multiply and fused multiply-add
	ClassFPDiv               // FP divide / sqrt (unpipelined)
	ClassSystem              // ecall/ebreak/fence
)

func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassDiv:
		return "div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassJAL:
		return "jal"
	case ClassJALR:
		return "jalr"
	case ClassFPALU:
		return "fpalu"
	case ClassFPMul:
		return "fpmul"
	case ClassFPDiv:
		return "fpdiv"
	case ClassSystem:
		return "system"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// format describes how an Op packs into 32 bits.
type format uint8

const (
	fmtR format = iota
	fmtR4
	fmtI
	fmtS
	fmtB
	fmtU
	fmtJ
	fmtShift  // I-format with 6-bit shamt
	fmtShiftW // I-format with 5-bit shamt (word shifts)
	fmtNone   // ecall/ebreak/fence
)

// opInfo is the single source of truth for encoding, decoding, naming and
// classification of each Op.
type opInfo struct {
	name   string
	fmt    format
	opcode uint32 // bits [6:0]
	f3     uint32 // bits [14:12]
	f7     uint32 // bits [31:25] (or rs2 field for unary FP ops)
	class  Class
	// flags
	fpRd, fpRs1, fpRs2, fpRs3 bool
	unaryFP                   bool // f7 ops whose rs2 field is fixed (fsqrt, fcvt, fmv, fclass)
	rs2Field                  uint32
	memBytes                  uint8 // access size for loads/stores
	fpMem                     bool  // FP load/store
}

var ops = [numOps]opInfo{
	LUI:    {name: "lui", fmt: fmtU, opcode: 0x37, class: ClassALU},
	AUIPC:  {name: "auipc", fmt: fmtU, opcode: 0x17, class: ClassALU},
	JAL:    {name: "jal", fmt: fmtJ, opcode: 0x6F, class: ClassJAL},
	JALR:   {name: "jalr", fmt: fmtI, opcode: 0x67, f3: 0, class: ClassJALR},
	BEQ:    {name: "beq", fmt: fmtB, opcode: 0x63, f3: 0, class: ClassBranch},
	BNE:    {name: "bne", fmt: fmtB, opcode: 0x63, f3: 1, class: ClassBranch},
	BLT:    {name: "blt", fmt: fmtB, opcode: 0x63, f3: 4, class: ClassBranch},
	BGE:    {name: "bge", fmt: fmtB, opcode: 0x63, f3: 5, class: ClassBranch},
	BLTU:   {name: "bltu", fmt: fmtB, opcode: 0x63, f3: 6, class: ClassBranch},
	BGEU:   {name: "bgeu", fmt: fmtB, opcode: 0x63, f3: 7, class: ClassBranch},
	LB:     {name: "lb", fmt: fmtI, opcode: 0x03, f3: 0, class: ClassLoad, memBytes: 1},
	LH:     {name: "lh", fmt: fmtI, opcode: 0x03, f3: 1, class: ClassLoad, memBytes: 2},
	LW:     {name: "lw", fmt: fmtI, opcode: 0x03, f3: 2, class: ClassLoad, memBytes: 4},
	LD:     {name: "ld", fmt: fmtI, opcode: 0x03, f3: 3, class: ClassLoad, memBytes: 8},
	LBU:    {name: "lbu", fmt: fmtI, opcode: 0x03, f3: 4, class: ClassLoad, memBytes: 1},
	LHU:    {name: "lhu", fmt: fmtI, opcode: 0x03, f3: 5, class: ClassLoad, memBytes: 2},
	LWU:    {name: "lwu", fmt: fmtI, opcode: 0x03, f3: 6, class: ClassLoad, memBytes: 4},
	SB:     {name: "sb", fmt: fmtS, opcode: 0x23, f3: 0, class: ClassStore, memBytes: 1},
	SH:     {name: "sh", fmt: fmtS, opcode: 0x23, f3: 1, class: ClassStore, memBytes: 2},
	SW:     {name: "sw", fmt: fmtS, opcode: 0x23, f3: 2, class: ClassStore, memBytes: 4},
	SD:     {name: "sd", fmt: fmtS, opcode: 0x23, f3: 3, class: ClassStore, memBytes: 8},
	ADDI:   {name: "addi", fmt: fmtI, opcode: 0x13, f3: 0, class: ClassALU},
	SLTI:   {name: "slti", fmt: fmtI, opcode: 0x13, f3: 2, class: ClassALU},
	SLTIU:  {name: "sltiu", fmt: fmtI, opcode: 0x13, f3: 3, class: ClassALU},
	XORI:   {name: "xori", fmt: fmtI, opcode: 0x13, f3: 4, class: ClassALU},
	ORI:    {name: "ori", fmt: fmtI, opcode: 0x13, f3: 6, class: ClassALU},
	ANDI:   {name: "andi", fmt: fmtI, opcode: 0x13, f3: 7, class: ClassALU},
	SLLI:   {name: "slli", fmt: fmtShift, opcode: 0x13, f3: 1, f7: 0x00, class: ClassALU},
	SRLI:   {name: "srli", fmt: fmtShift, opcode: 0x13, f3: 5, f7: 0x00, class: ClassALU},
	SRAI:   {name: "srai", fmt: fmtShift, opcode: 0x13, f3: 5, f7: 0x20, class: ClassALU},
	ADD:    {name: "add", fmt: fmtR, opcode: 0x33, f3: 0, f7: 0x00, class: ClassALU},
	SUB:    {name: "sub", fmt: fmtR, opcode: 0x33, f3: 0, f7: 0x20, class: ClassALU},
	SLL:    {name: "sll", fmt: fmtR, opcode: 0x33, f3: 1, f7: 0x00, class: ClassALU},
	SLT:    {name: "slt", fmt: fmtR, opcode: 0x33, f3: 2, f7: 0x00, class: ClassALU},
	SLTU:   {name: "sltu", fmt: fmtR, opcode: 0x33, f3: 3, f7: 0x00, class: ClassALU},
	XOR:    {name: "xor", fmt: fmtR, opcode: 0x33, f3: 4, f7: 0x00, class: ClassALU},
	SRL:    {name: "srl", fmt: fmtR, opcode: 0x33, f3: 5, f7: 0x00, class: ClassALU},
	SRA:    {name: "sra", fmt: fmtR, opcode: 0x33, f3: 5, f7: 0x20, class: ClassALU},
	OR:     {name: "or", fmt: fmtR, opcode: 0x33, f3: 6, f7: 0x00, class: ClassALU},
	AND:    {name: "and", fmt: fmtR, opcode: 0x33, f3: 7, f7: 0x00, class: ClassALU},
	ADDIW:  {name: "addiw", fmt: fmtI, opcode: 0x1B, f3: 0, class: ClassALU},
	SLLIW:  {name: "slliw", fmt: fmtShiftW, opcode: 0x1B, f3: 1, f7: 0x00, class: ClassALU},
	SRLIW:  {name: "srliw", fmt: fmtShiftW, opcode: 0x1B, f3: 5, f7: 0x00, class: ClassALU},
	SRAIW:  {name: "sraiw", fmt: fmtShiftW, opcode: 0x1B, f3: 5, f7: 0x20, class: ClassALU},
	ADDW:   {name: "addw", fmt: fmtR, opcode: 0x3B, f3: 0, f7: 0x00, class: ClassALU},
	SUBW:   {name: "subw", fmt: fmtR, opcode: 0x3B, f3: 0, f7: 0x20, class: ClassALU},
	SLLW:   {name: "sllw", fmt: fmtR, opcode: 0x3B, f3: 1, f7: 0x00, class: ClassALU},
	SRLW:   {name: "srlw", fmt: fmtR, opcode: 0x3B, f3: 5, f7: 0x00, class: ClassALU},
	SRAW:   {name: "sraw", fmt: fmtR, opcode: 0x3B, f3: 5, f7: 0x20, class: ClassALU},
	FENCE:  {name: "fence", fmt: fmtNone, opcode: 0x0F, f3: 0, class: ClassSystem},
	ECALL:  {name: "ecall", fmt: fmtNone, opcode: 0x73, f3: 0, f7: 0, class: ClassSystem},
	EBREAK: {name: "ebreak", fmt: fmtNone, opcode: 0x73, f3: 0, f7: 0, rs2Field: 1, class: ClassSystem},

	MUL:    {name: "mul", fmt: fmtR, opcode: 0x33, f3: 0, f7: 0x01, class: ClassMul},
	MULH:   {name: "mulh", fmt: fmtR, opcode: 0x33, f3: 1, f7: 0x01, class: ClassMul},
	MULHSU: {name: "mulhsu", fmt: fmtR, opcode: 0x33, f3: 2, f7: 0x01, class: ClassMul},
	MULHU:  {name: "mulhu", fmt: fmtR, opcode: 0x33, f3: 3, f7: 0x01, class: ClassMul},
	DIV:    {name: "div", fmt: fmtR, opcode: 0x33, f3: 4, f7: 0x01, class: ClassDiv},
	DIVU:   {name: "divu", fmt: fmtR, opcode: 0x33, f3: 5, f7: 0x01, class: ClassDiv},
	REM:    {name: "rem", fmt: fmtR, opcode: 0x33, f3: 6, f7: 0x01, class: ClassDiv},
	REMU:   {name: "remu", fmt: fmtR, opcode: 0x33, f3: 7, f7: 0x01, class: ClassDiv},
	MULW:   {name: "mulw", fmt: fmtR, opcode: 0x3B, f3: 0, f7: 0x01, class: ClassMul},
	DIVW:   {name: "divw", fmt: fmtR, opcode: 0x3B, f3: 4, f7: 0x01, class: ClassDiv},
	DIVUW:  {name: "divuw", fmt: fmtR, opcode: 0x3B, f3: 5, f7: 0x01, class: ClassDiv},
	REMW:   {name: "remw", fmt: fmtR, opcode: 0x3B, f3: 6, f7: 0x01, class: ClassDiv},
	REMUW:  {name: "remuw", fmt: fmtR, opcode: 0x3B, f3: 7, f7: 0x01, class: ClassDiv},

	FLD:     {name: "fld", fmt: fmtI, opcode: 0x07, f3: 3, class: ClassLoad, fpRd: true, memBytes: 8, fpMem: true},
	FSD:     {name: "fsd", fmt: fmtS, opcode: 0x27, f3: 3, class: ClassStore, fpRs2: true, memBytes: 8, fpMem: true},
	FADDD:   {name: "fadd.d", fmt: fmtR, opcode: 0x53, f3: 7, f7: 0x01, class: ClassFPALU, fpRd: true, fpRs1: true, fpRs2: true},
	FSUBD:   {name: "fsub.d", fmt: fmtR, opcode: 0x53, f3: 7, f7: 0x05, class: ClassFPALU, fpRd: true, fpRs1: true, fpRs2: true},
	FMULD:   {name: "fmul.d", fmt: fmtR, opcode: 0x53, f3: 7, f7: 0x09, class: ClassFPMul, fpRd: true, fpRs1: true, fpRs2: true},
	FDIVD:   {name: "fdiv.d", fmt: fmtR, opcode: 0x53, f3: 7, f7: 0x0D, class: ClassFPDiv, fpRd: true, fpRs1: true, fpRs2: true},
	FSQRTD:  {name: "fsqrt.d", fmt: fmtR, opcode: 0x53, f3: 7, f7: 0x2D, class: ClassFPDiv, fpRd: true, fpRs1: true, unaryFP: true},
	FSGNJD:  {name: "fsgnj.d", fmt: fmtR, opcode: 0x53, f3: 0, f7: 0x11, class: ClassFPALU, fpRd: true, fpRs1: true, fpRs2: true},
	FSGNJND: {name: "fsgnjn.d", fmt: fmtR, opcode: 0x53, f3: 1, f7: 0x11, class: ClassFPALU, fpRd: true, fpRs1: true, fpRs2: true},
	FSGNJXD: {name: "fsgnjx.d", fmt: fmtR, opcode: 0x53, f3: 2, f7: 0x11, class: ClassFPALU, fpRd: true, fpRs1: true, fpRs2: true},
	FMIND:   {name: "fmin.d", fmt: fmtR, opcode: 0x53, f3: 0, f7: 0x15, class: ClassFPALU, fpRd: true, fpRs1: true, fpRs2: true},
	FMAXD:   {name: "fmax.d", fmt: fmtR, opcode: 0x53, f3: 1, f7: 0x15, class: ClassFPALU, fpRd: true, fpRs1: true, fpRs2: true},
	FCVTWD:  {name: "fcvt.w.d", fmt: fmtR, opcode: 0x53, f3: 1, f7: 0x61, class: ClassFPALU, fpRs1: true, unaryFP: true, rs2Field: 0},
	FCVTWUD: {name: "fcvt.wu.d", fmt: fmtR, opcode: 0x53, f3: 1, f7: 0x61, class: ClassFPALU, fpRs1: true, unaryFP: true, rs2Field: 1},
	FCVTDW:  {name: "fcvt.d.w", fmt: fmtR, opcode: 0x53, f3: 0, f7: 0x69, class: ClassFPALU, fpRd: true, unaryFP: true, rs2Field: 0},
	FCVTDWU: {name: "fcvt.d.wu", fmt: fmtR, opcode: 0x53, f3: 0, f7: 0x69, class: ClassFPALU, fpRd: true, unaryFP: true, rs2Field: 1},
	FCVTLD:  {name: "fcvt.l.d", fmt: fmtR, opcode: 0x53, f3: 1, f7: 0x61, class: ClassFPALU, fpRs1: true, unaryFP: true, rs2Field: 2},
	FCVTLUD: {name: "fcvt.lu.d", fmt: fmtR, opcode: 0x53, f3: 1, f7: 0x61, class: ClassFPALU, fpRs1: true, unaryFP: true, rs2Field: 3},
	FCVTDL:  {name: "fcvt.d.l", fmt: fmtR, opcode: 0x53, f3: 0, f7: 0x69, class: ClassFPALU, fpRd: true, unaryFP: true, rs2Field: 2},
	FCVTDLU: {name: "fcvt.d.lu", fmt: fmtR, opcode: 0x53, f3: 0, f7: 0x69, class: ClassFPALU, fpRd: true, unaryFP: true, rs2Field: 3},
	FMVXD:   {name: "fmv.x.d", fmt: fmtR, opcode: 0x53, f3: 0, f7: 0x71, class: ClassFPALU, fpRs1: true, unaryFP: true},
	FMVDX:   {name: "fmv.d.x", fmt: fmtR, opcode: 0x53, f3: 0, f7: 0x79, class: ClassFPALU, fpRd: true, unaryFP: true},
	FEQD:    {name: "feq.d", fmt: fmtR, opcode: 0x53, f3: 2, f7: 0x51, class: ClassFPALU, fpRs1: true, fpRs2: true},
	FLTD:    {name: "flt.d", fmt: fmtR, opcode: 0x53, f3: 1, f7: 0x51, class: ClassFPALU, fpRs1: true, fpRs2: true},
	FLED:    {name: "fle.d", fmt: fmtR, opcode: 0x53, f3: 0, f7: 0x51, class: ClassFPALU, fpRs1: true, fpRs2: true},
	FCLASSD: {name: "fclass.d", fmt: fmtR, opcode: 0x53, f3: 1, f7: 0x71, class: ClassFPALU, fpRs1: true, unaryFP: true},
	FMADDD:  {name: "fmadd.d", fmt: fmtR4, opcode: 0x43, f3: 7, f7: 0x01, class: ClassFPMul, fpRd: true, fpRs1: true, fpRs2: true, fpRs3: true},
	FMSUBD:  {name: "fmsub.d", fmt: fmtR4, opcode: 0x47, f3: 7, f7: 0x01, class: ClassFPMul, fpRd: true, fpRs1: true, fpRs2: true, fpRs3: true},
	FNMADDD: {name: "fnmadd.d", fmt: fmtR4, opcode: 0x4F, f3: 7, f7: 0x01, class: ClassFPMul, fpRd: true, fpRs1: true, fpRs2: true, fpRs3: true},
	FNMSUBD: {name: "fnmsub.d", fmt: fmtR4, opcode: 0x4B, f3: 7, f7: 0x01, class: ClassFPMul, fpRd: true, fpRs1: true, fpRs2: true, fpRs3: true},
}

// Name returns the assembler mnemonic of op.
func (op Op) Name() string {
	if op < numOps && ops[op].name != "" {
		return ops[op].name
	}
	return fmt.Sprintf("op(%d)", uint16(op))
}

func (op Op) String() string { return op.Name() }

// Class returns the execution class of op.
func (op Op) Class() Class { return ops[op].class }

// FPRd reports whether the destination register is in the FP file.
func (op Op) FPRd() bool { return ops[op].fpRd }

// FPRs1 reports whether rs1 is read from the FP file.
func (op Op) FPRs1() bool { return ops[op].fpRs1 }

// FPRs2 reports whether rs2 is read from the FP file.
func (op Op) FPRs2() bool { return ops[op].fpRs2 }

// FPRs3 reports whether rs3 is read from the FP file (fused multiply-add).
func (op Op) FPRs3() bool { return ops[op].fpRs3 }

// MemBytes returns the access width in bytes for loads and stores, 0 for
// other instructions.
func (op Op) MemBytes() int { return int(ops[op].memBytes) }

// IsFPMem reports whether op is an FP load/store.
func (op Op) IsFPMem() bool { return ops[op].fpMem }

// HasRd reports whether op writes a destination register.
func (op Op) HasRd() bool {
	switch ops[op].fmt {
	case fmtS, fmtB, fmtNone:
		return false
	}
	return true
}

// HasRs1 reports whether op reads rs1.
func (op Op) HasRs1() bool {
	switch ops[op].fmt {
	case fmtU, fmtJ, fmtNone:
		return false
	}
	return true
}

// HasRs2 reports whether op reads rs2.
func (op Op) HasRs2() bool {
	switch ops[op].fmt {
	case fmtR, fmtR4, fmtS, fmtB:
		return !ops[op].unaryFP
	}
	return false
}

// HasRs3 reports whether op reads a third source register.
func (op Op) HasRs3() bool { return ops[op].fmt == fmtR4 }

// IsBranchOrJump reports whether op can redirect the PC.
func (op Op) IsBranchOrJump() bool {
	switch op.Class() {
	case ClassBranch, ClassJAL, ClassJALR:
		return true
	}
	return false
}

// Inst is one decoded instruction.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Rs3 uint8
	Imm int64
	Raw uint32
}

func (in Inst) String() string {
	return fmt.Sprintf("%s rd=%d rs1=%d rs2=%d imm=%d", in.Op.Name(), in.Rd, in.Rs1, in.Rs2, in.Imm)
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, numOps)
	for op := Op(1); op < numOps; op++ {
		if ops[op].name != "" {
			m[ops[op].name] = op
		}
	}
	return m
}()

// OpByName resolves an assembler mnemonic ("addi", "fmadd.d") to its Op.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}
