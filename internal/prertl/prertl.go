// Package prertl implements a McPAT-style pre-RTL analytical power model —
// the baseline abstraction level the paper positions its RTL flow against
// (§II-A): fast, architecture-level, and markedly less accurate. McPAT
// itself reports ~21 % average error across processor configurations; this
// model reproduces that class of estimator so the repository can quantify
// the accuracy gap that motivates the paper's RTL-level methodology.
//
// Unlike internal/power — which maps the configuration to a cell inventory
// and consumes fine-grained structure activity (per-entry CAM compares,
// collapse shifts, snapshot copies, per-slot occupancy) — this model sees
// only architecture-level event rates (instructions, branches, cache
// accesses/misses) and generic capacitance heuristics, exactly the
// information a performance simulator like gem5 exposes to McPAT.
package prertl

import (
	"fmt"

	"repro/internal/boom"
)

// Estimate returns per-component power (mW) from architecture-level event
// counts only. The heuristics follow McPAT's structure: per-access energies
// proportional to storage size and port count, plus area-proportional
// leakage — with NO calibration against measured RTL power.
func Estimate(cfg boom.Config, st *boom.Stats) (*boom.ComponentPower, error) {
	if st.Cycles == 0 {
		return nil, fmt.Errorf("prertl: zero-cycle stats")
	}
	cyc := float64(st.Cycles)
	insts := float64(st.Insts)
	ipc := insts / cyc
	toMW := 0.5 // pJ/cycle → mW at 500 MHz

	out := &boom.ComponentPower{}
	setP := func(c boom.Component, mw float64) { out.MW[c] = mw }

	// Generic technology heuristics (per-event pJ, per-bit leakage nW).
	const (
		pjPerRegBit   = 0.004
		pjPerSRAMKB   = 0.09
		pjPerCAMEntry = 0.03
		leakNWBit     = 0.9
	)
	leak := func(bits float64) float64 { return bits * leakNWBit * 1e-6 }

	branches := float64(st.Branches) / cyc
	loads := float64(st.Loads+st.DCacheHits+st.DCacheMisses) / cyc
	stores := float64(st.Stores) / cyc

	// Branch predictor: one lookup per cycle over total predictor storage.
	predKB := float64(cfg.TageTables*cfg.TageEntries)*13/8192 + float64(cfg.BTBEntries)*68/8192
	setP(boom.CompBranchPredictor,
		(1.0*predKB*pjPerSRAMKB+branches*2)*toMW+leak(predKB*8192))

	// Register files: reads/writes scale with IPC; energy with ports×bits.
	rfEnergy := func(regs, r, w int, accessRate float64) float64 {
		bits := float64(regs) * 64
		perAccess := 64 * pjPerRegBit * float64(r+w) / 4
		return accessRate*perAccess*toMW + leak(bits)
	}
	setP(boom.CompIntRF, rfEnergy(cfg.IntPhysRegs, cfg.IntRFReadPorts, cfg.IntRFWritePorts, 2.2*ipc))
	setP(boom.CompFpRF, rfEnergy(cfg.FpPhysRegs, cfg.FpRFReadPorts, cfg.FpRFWritePorts, 0.3*ipc))

	// Rename: map-table accesses per instruction.
	setP(boom.CompIntRename, ipc*3*7*pjPerRegBit*8*toMW+leak(float64(cfg.IntPhysRegs)*8))
	setP(boom.CompFpRename, 0.3*ipc*3*7*pjPerRegBit*8*toMW+leak(float64(cfg.FpPhysRegs)*8))

	// Issue queues: CAM energy per dispatched instruction over all entries
	// (McPAT models the wakeup CAM as a full-array search per issue).
	iq := func(slots int, rate float64) float64 {
		return rate*float64(slots)*pjPerCAMEntry*toMW + leak(float64(slots)*76)
	}
	setP(boom.CompIntIssue, iq(cfg.IntIssueSlots, 0.7*ipc))
	setP(boom.CompMemIssue, iq(cfg.MemIssueSlots, loads+stores))
	setP(boom.CompFpIssue, iq(cfg.FpIssueSlots, 0.2*ipc))

	// ROB: width reads+writes per cycle.
	setP(boom.CompRob, ipc*2*46*pjPerRegBit*toMW+leak(float64(cfg.RobEntries)*46))

	// Fetch buffer.
	setP(boom.CompFetchBuffer, ipc*52*pjPerRegBit*toMW+leak(float64(cfg.FetchBufferEntries)*52))

	// LSU.
	setP(boom.CompLSU, (loads+stores)*float64(cfg.LdqEntries+cfg.StqEntries)*pjPerCAMEntry*0.5*toMW+
		leak(float64(cfg.LdqEntries)*64+float64(cfg.StqEntries)*118))

	// Caches: per-access energy ∝ size, plus miss (fill) energy.
	cache := func(kb int, accesses, misses float64) float64 {
		return (accesses*float64(kb)*pjPerSRAMKB+misses*float64(kb)*pjPerSRAMKB*2)*toMW +
			leak(float64(kb)*8192)
	}
	setP(boom.CompICache, cache(cfg.ICacheKiB, float64(st.ICacheHits+st.ICacheMisses)/cyc,
		float64(st.ICacheMisses)/cyc))
	setP(boom.CompDCache, cache(cfg.DCacheKiB, loads+stores, float64(st.DCacheMisses)/cyc))

	// Other: decode + execution, a flat per-instruction energy.
	setP(boom.CompOther, ipc*2.4*toMW+leak(30000))
	return out, nil
}
