package prertl

import (
	"math"
	"testing"

	"repro/internal/asap7"
	"repro/internal/boom"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func runStats(t *testing.T, name string, cfg boom.Config) *boom.Stats {
	t.Helper()
	w, err := workloads.Build(name, workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := w.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	c, err := boom.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(func(r *sim.Retired) bool {
		if cpu.Halted {
			return false
		}
		if err := cpu.Step(r); err != nil {
			panic(err)
		}
		return true
	}, math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	return c.Stats()
}

func TestEstimateBasics(t *testing.T) {
	cfg := boom.LargeBOOM()
	st := runStats(t, "sha", cfg)
	p, err := Estimate(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	for c := boom.Component(0); c < boom.NumComponents; c++ {
		if p.MW[c] <= 0 {
			t.Errorf("%v: non-positive power %v", c, p.MW[c])
		}
	}
	if total := p.TotalMW(); total < 2 || total > 200 {
		t.Errorf("implausible tile power %.1f mW", total)
	}
	if _, err := Estimate(cfg, boom.NewStats(&cfg)); err == nil {
		t.Error("expected error for empty stats")
	}
}

// TestPreRTLvsRTLAccuracyGap reproduces the paper's §II motivation: the
// architecture-level model deviates substantially from the RTL-style flow
// at per-component granularity (McPAT reports ~21 % average error; here the
// RTL-calibrated flow is the reference).
func TestPreRTLvsRTLAccuracyGap(t *testing.T) {
	cfg := boom.LargeBOOM()
	est := power.NewEstimator(cfg, asap7.Default())
	var sumAbsErr float64
	var n int
	for _, name := range []string{"sha", "dijkstra", "fft", "bitcount"} {
		st := runStats(t, name, cfg)
		rtl, err := est.Estimate(st)
		if err != nil {
			t.Fatal(err)
		}
		pre, err := Estimate(cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		for _, comp := range boom.AnalyzedComponents() {
			ref := rtl.Comp[comp].TotalMW()
			if ref < 0.05 {
				continue // noise floor
			}
			e := math.Abs(pre.MW[comp]-ref) / ref
			sumAbsErr += e
			n++
		}
	}
	avgErr := sumAbsErr / float64(n)
	if avgErr < 0.10 {
		t.Errorf("pre-RTL model suspiciously accurate (%.0f%% avg error) — it must not be calibrated to the RTL flow", 100*avgErr)
	}
	if avgErr > 3.0 {
		t.Errorf("pre-RTL model unusably wrong (%.0f%% avg error)", 100*avgErr)
	}
	t.Logf("pre-RTL vs RTL per-component average |error|: %.0f%% (McPAT class: ~21%%+)", 100*avgErr)
}

// TestPreRTLTracksActivity: despite its crudeness, the baseline must move
// in the right direction with activity.
func TestPreRTLTracksActivity(t *testing.T) {
	cfg := boom.MegaBOOM()
	sha := runStats(t, "sha", cfg)
	tar := runStats(t, "tarfind", cfg)
	pSha, err := Estimate(cfg, sha)
	if err != nil {
		t.Fatal(err)
	}
	pTar, err := Estimate(cfg, tar)
	if err != nil {
		t.Fatal(err)
	}
	// Sha (IPC ~3) must burn more total power than tarfind (IPC ~0.3).
	if pSha.TotalMW() <= pTar.TotalMW() {
		t.Errorf("pre-RTL power should track activity: sha %.1f vs tarfind %.1f",
			pSha.TotalMW(), pTar.TotalMW())
	}
}
