// Package asap7 provides a synthetic 7-nm predictive technology library in
// the role the ASAP7 PDK liberty files play in the paper's Cadence Joules
// flow: per-cell-class leakage and per-event switching/internal energies at
// the paper's operating point (0.7 V, 500 MHz).
//
// The values are not the (license-bound) ASAP7 characterization data; they
// are a self-consistent coefficient set calibrated once so that the three
// BOOM design points reproduce the per-component power the paper reports
// (see internal/power and EXPERIMENTS.md). All cross-configuration and
// cross-workload behaviour emerges from structure scaling and measured
// activity, not from per-case tuning.
package asap7

// Library is the technology operating point and cell characterization used
// by the power flow.
type Library struct {
	Name     string
	VoltageV float64
	ClockMHz float64

	// Leakage, in nanowatts.
	FlopLeakNW    float64 // per flip-flop (state bit in registers/queues)
	SRAMLeakNWBit float64 // per SRAM bit (caches, big predictor tables)
	CombLeakNWGE  float64 // per gate-equivalent of combinational logic

	// Dynamic energy, in picojoules per event.
	FlopClockPJ    float64 // clock-pin energy per (non-gated) flop per cycle
	FlopWritePJ    float64 // data toggle into a flop
	RegReadPJBit   float64 // register-file read, per bit per port
	RegWritePJBit  float64 // register-file write, per bit per port
	SRAMReadPJBit  float64 // SRAM array read, per bit of the accessed row
	SRAMWritePJBit float64
	SRAMBitlinePJ  float64 // per KiB of array precharged per access
	CAMSearchPJBit float64 // CAM tag comparison, per compared bit
	ShiftPJBit     float64 // collapsing-queue entry move, per bit
	BypassPJBit    float64 // bypass-network transfer, per bit per hop
	ALUOpPJ        float64 // integer ALU operation
	MulOpPJ        float64
	DivOpPJ        float64
	FPOpPJ         float64
	AGUOpPJ        float64
}

// Default returns the calibrated 7-nm library at the paper's 500 MHz /
// 0.7 V operating point.
func Default() Library {
	return Library{
		Name:     "asap7-like 7nm predictive",
		VoltageV: 0.7,
		ClockMHz: 500,

		FlopLeakNW:    1.35,
		SRAMLeakNWBit: 0.16,
		CombLeakNWGE:  0.45,

		FlopClockPJ:    0.0035,
		FlopWritePJ:    0.0045,
		RegReadPJBit:   0.0038,
		RegWritePJBit:  0.0052,
		SRAMReadPJBit:  0.0019,
		SRAMWritePJBit: 0.0026,
		SRAMBitlinePJ:  0.065,
		CAMSearchPJBit: 0.0016,
		ShiftPJBit:     0.0040,
		BypassPJBit:    0.0024,
		ALUOpPJ:        1.5,
		MulOpPJ:        3.1,
		DivOpPJ:        7.5,
		FPOpPJ:         4.0,
		AGUOpPJ:        0.75,
	}
}

// MWPerPJPerCycle converts an energy rate (pJ/cycle) into milliwatts at the
// library's clock: mW = pJ/cycle × f(GHz).
func (l Library) MWPerPJPerCycle() float64 {
	return l.ClockMHz / 1000.0
}
