package asap7

import "testing"

func TestDefaultLibrarySanity(t *testing.T) {
	lib := Default()
	if lib.VoltageV != 0.7 || lib.ClockMHz != 500 {
		t.Fatalf("operating point %v V / %v MHz, want 0.7/500 (paper §IV-A)", lib.VoltageV, lib.ClockMHz)
	}
	positives := map[string]float64{
		"FlopLeakNW":     lib.FlopLeakNW,
		"SRAMLeakNWBit":  lib.SRAMLeakNWBit,
		"CombLeakNWGE":   lib.CombLeakNWGE,
		"FlopClockPJ":    lib.FlopClockPJ,
		"FlopWritePJ":    lib.FlopWritePJ,
		"RegReadPJBit":   lib.RegReadPJBit,
		"RegWritePJBit":  lib.RegWritePJBit,
		"SRAMReadPJBit":  lib.SRAMReadPJBit,
		"SRAMWritePJBit": lib.SRAMWritePJBit,
		"SRAMBitlinePJ":  lib.SRAMBitlinePJ,
		"CAMSearchPJBit": lib.CAMSearchPJBit,
		"ShiftPJBit":     lib.ShiftPJBit,
		"BypassPJBit":    lib.BypassPJBit,
		"ALUOpPJ":        lib.ALUOpPJ,
		"MulOpPJ":        lib.MulOpPJ,
		"DivOpPJ":        lib.DivOpPJ,
		"FPOpPJ":         lib.FPOpPJ,
		"AGUOpPJ":        lib.AGUOpPJ,
	}
	for name, v := range positives {
		if v <= 0 {
			t.Errorf("%s = %v, must be positive", name, v)
		}
	}
	// Relative magnitudes that any sane library obeys.
	if lib.SRAMLeakNWBit >= lib.FlopLeakNW {
		t.Error("SRAM bits must leak less than flip-flops")
	}
	if lib.SRAMReadPJBit >= lib.RegReadPJBit*4 {
		t.Error("SRAM bit reads should not dwarf register reads")
	}
	if !(lib.ALUOpPJ < lib.MulOpPJ && lib.MulOpPJ < lib.DivOpPJ) {
		t.Error("operation energies must order ALU < MUL < DIV")
	}
	if lib.FPOpPJ <= lib.ALUOpPJ {
		t.Error("FP ops cost more than integer ALU ops")
	}
}

func TestMWConversion(t *testing.T) {
	lib := Default()
	// 1 pJ per cycle at 500 MHz is 0.5 mW.
	if got := lib.MWPerPJPerCycle(); got != 0.5 {
		t.Fatalf("MWPerPJPerCycle = %v, want 0.5", got)
	}
	lib.ClockMHz = 1000
	if got := lib.MWPerPJPerCycle(); got != 1.0 {
		t.Fatalf("at 1 GHz: %v, want 1.0", got)
	}
}
