package workloads

import (
	"encoding/binary"
	"fmt"
)

// matmult mirrors Embench's matmult-int: repeated N×N int32 matrix
// multiplication. The column-strided walk over B streams through the data
// cache, which is why Matmult shows the highest L1D power in the paper
// (Key Takeaway #8 territory).

func init() { register("matmult", buildMatmult) }

// N=80 puts matrix B at 25 KiB: resident in Mega/Large's 32 KiB L1D but
// thrashing MediumBOOM's 16 KiB — the differentiation behind the paper's
// L1D discussion. Tiny scale trades that for speed.
func matmultParams(s Scale) (n, reps int64) {
	switch s {
	case ScaleTiny:
		return 32, 1
	case ScalePaper:
		return 96, 55
	}
	return 80, 3
}

func buildMatmult(s Scale) (*Workload, error) {
	n, reps := matmultParams(s)

	// Input matrices A and B (int32), generated deterministically.
	a := make([]int32, n*n)
	b := make([]int32, n*n)
	l := newLCG(0x3A7)
	for i := range a {
		a[i] = int32(l.next32() % 1000)
	}
	for i := range b {
		b[i] = int32(l.next32() % 1000)
	}

	// Reference: C = A×B each rep; accumulate the C sum every rep (C is
	// identical across reps, so the accumulation just scales — but the
	// kernel must actually recompute it, same as the original benchmark).
	var acc uint64
	c := make([]int32, n*n)
	for r := int64(0); r < reps; r++ {
		for i := int64(0); i < n; i++ {
			for j := int64(0); j < n; j++ {
				var sum int32
				for k := int64(0); k < n; k++ {
					sum += a[i*n+k] * b[k*n+j]
				}
				c[i*n+j] = sum
			}
		}
		for _, v := range c {
			acc += uint64(int64(v))
		}
	}

	seg := make([]byte, 12*n*n) // A, B, C back to back
	for i, v := range a {
		binary.LittleEndian.PutUint32(seg[4*i:], uint32(v))
	}
	for i, v := range b {
		binary.LittleEndian.PutUint32(seg[4*int64(i)+4*n*n:], uint32(v))
	}

	src := fmt.Sprintf(`
	.equ N,     %d
	.equ REPS,  %d
	.equ ABASE, %d
	.equ BBASE, %d
	.equ CBASE, %d
	.text
	li   s0, REPS
	li   s3, 0             # checksum
rep_loop:
	li   s1, 0             # i
i_loop:
	li   s2, 0             # j
j_loop:
	li   t0, 0             # sum
	li   t1, 0             # k
	# t2 = &A[i][0], t3 = &B[0][j]
	li   t4, N
	mul  t2, s1, t4
	slli t2, t2, 2
	li   t5, ABASE
	add  t2, t2, t5
	slli t3, s2, 2
	li   t5, BBASE
	add  t3, t3, t5
k_loop:
	lw   t5, 0(t2)
	lw   t6, 0(t3)
	mulw t5, t5, t6
	addw t0, t0, t5
	addi t2, t2, 4
	li   t6, N*4
	add  t3, t3, t6
	addi t1, t1, 1
	li   t6, N
	bne  t1, t6, k_loop
	# C[i][j] = sum
	li   t4, N
	mul  t5, s1, t4
	add  t5, t5, s2
	slli t5, t5, 2
	li   t6, CBASE
	add  t5, t5, t6
	sw   t0, 0(t5)
	addi s2, s2, 1
	li   t6, N
	bne  s2, t6, j_loop
	addi s1, s1, 1
	li   t6, N
	bne  s1, t6, i_loop

	# accumulate sum of C (as sign-extended words)
	li   t0, CBASE
	li   t1, N*N
sum_loop:
	lw   t2, 0(t0)
	add  s3, s3, t2
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, sum_loop

	addi s0, s0, -1
	bnez s0, rep_loop
	mv   a0, s3
`+exitSeq, n, reps, ExtraBase, ExtraBase+4*n*n, ExtraBase+8*n*n)

	return &Workload{
		Name:     "matmult",
		Suite:    "Embench",
		Scale:    s,
		Source:   src,
		Segments: []Segment{{Addr: ExtraBase, Bytes: seg}},
		Checksum: acc,
	}, nil
}
