// Package workloads re-implements the paper's eleven MiBench/Embench
// benchmarks as RV64 assembly kernels (assembled by internal/asm) paired
// with bit-exact Go reference implementations. Each workload computes a
// checksum that the simulator must reproduce, which validates the assembler,
// the functional simulator and the kernel itself in one shot.
//
// Workloads take a Scale, which sets input sizes and iteration counts:
// ScaleTiny is for unit tests, ScaleDefault for the standard experiment
// sweep, and ScalePaper approaches the paper's Table II dynamic instruction
// counts (hundreds of millions; slow).
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/sim"
)

// Scale selects the workload input magnitude.
type Scale int

// Available scales.
const (
	ScaleTiny    Scale = iota // ~100K–1M dynamic instructions (unit tests)
	ScaleDefault              // ~2–20M dynamic instructions (experiments)
	ScalePaper                // the paper's order of magnitude (slow)
)

func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleDefault:
		return "default"
	case ScalePaper:
		return "paper"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// ParseScale is the inverse of String: it resolves "tiny", "default" or
// "paper" (the -scale flag values and the serving API's scale field).
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return ScaleTiny, nil
	case "default":
		return ScaleDefault, nil
	case "paper":
		return ScalePaper, nil
	}
	return 0, fmt.Errorf("workloads: unknown scale %q (tiny|default|paper)", s)
}

// Segment is raw data the loader pokes into memory before the run (large
// generated inputs that would be wasteful as .dword directives).
type Segment struct {
	Addr  uint64
	Bytes []byte
}

// ExtraBase is where generated input segments live; kernels reference it via
// li/la of absolute addresses passed through .equ constants.
const ExtraBase = 0x0200_0000

// Workload is one benchmark instance at a specific scale.
type Workload struct {
	Name     string
	Suite    string // "MiBench" or "Embench"
	Scale    Scale
	Source   string // assembly text
	Segments []Segment
	Checksum uint64 // expected value in a0 at exit (Go reference result)

	// IntervalSize is the BBV interval used for this workload at this
	// scale, mirroring Table II's per-benchmark interval column.
	//
	// Deprecated as a primary knob: this is the fallback consulted only
	// when the campaign's sampling spec leaves its Interval unset
	// (sampling.Spec.Interval == 0). Builders leave it zero and Build
	// resolves it to DefaultInterval(scale); set it explicitly only for
	// custom instances constructed outside Build.
	IntervalSize int64
}

// Program assembles the workload.
func (w *Workload) Program() (*asm.Program, error) {
	p, err := asm.Assemble(w.Source)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return p, nil
}

// NewCPU assembles, loads program and segments, and returns a ready CPU.
func (w *Workload) NewCPU() (*sim.CPU, error) {
	p, err := w.Program()
	if err != nil {
		return nil, err
	}
	c := sim.New()
	c.Load(p)
	for _, seg := range w.Segments {
		c.Mem.SetBytes(seg.Addr, seg.Bytes)
	}
	return c, nil
}

// builder constructs a workload for a given scale.
type builder func(Scale) (*Workload, error)

var registry = map[string]builder{}

func register(name string, b builder) {
	if _, dup := registry[name]; dup {
		panic("workloads: duplicate " + name)
	}
	registry[name] = b
}

// Names returns all workload names in the paper's Table II order.
func Names() []string {
	// Table II order; fall back to sorted for any extras.
	order := []string{"basicmath", "stringsearch", "fft", "ifft", "bitcount",
		"qsort", "dijkstra", "patricia", "matmult", "sha", "tarfind"}
	known := map[string]bool{}
	out := make([]string, 0, len(registry))
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
			known[n] = true
		}
	}
	var rest []string
	for n := range registry {
		if !known[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// DefaultInterval returns the scale's default BBV interval, mirroring the
// 1M-instruction intervals of Table II at paper scale. This is the single
// default-resolution point that replaced the ten per-builder intervalFor
// call sites; campaigns override it through sampling.Spec.Interval.
func DefaultInterval(s Scale) int64 {
	switch s {
	case ScaleTiny:
		return 20_000
	case ScalePaper:
		return 1_000_000
	}
	return 100_000
}

// Build constructs the named workload at the given scale. A builder that
// leaves IntervalSize zero gets the scale's DefaultInterval.
func Build(name string, scale Scale) (*Workload, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	w, err := b(scale)
	if err != nil {
		return nil, err
	}
	if w.IntervalSize == 0 {
		w.IntervalSize = DefaultInterval(scale)
	}
	return w, nil
}

// lcg is the shared deterministic pseudo-random generator. Kernels that
// need random data implement the identical recurrence in assembly.
type lcg struct{ s uint64 }

const (
	lcgMul = 6364136223846793005
	lcgInc = 1442695040888963407
)

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }

func (l *lcg) next() uint64 {
	l.s = l.s*lcgMul + lcgInc
	return l.s
}

// next32 returns the high 32 bits (better statistical quality than the low
// bits of an LCG).
func (l *lcg) next32() uint32 { return uint32(l.next() >> 32) }

// exitSeq is the common epilogue: checksum already in a0.
const exitSeq = `
	li   a7, 93
	ecall
`
