package workloads

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// shaRounds generates the 80 fully unrolled SHA-1 rounds. Register roles
// (a..e) rotate through t0..t4 each round — the same transformation an
// optimizing compiler applies to the MiBench source — so there are no move
// instructions or call/return breaks on the critical path. The recurrence
// depth per round is ~4 ops, which is what lets BOOM extract the paper's
// high Sha IPC.
func shaRounds() string {
	regs := [5]string{"t0", "t1", "t2", "t3", "t4"}
	roles := [5]int{0, 1, 2, 3, 4} // positions of a,b,c,d,e in regs
	var sb strings.Builder
	lastK := int64(-1)
	for i := 0; i < 80; i++ {
		a, b, cc, d, e := regs[roles[0]], regs[roles[1]], regs[roles[2]], regs[roles[3]], regs[roles[4]]
		var k int64
		switch {
		case i < 20:
			k = 0x5A827999
		case i < 40:
			k = 0x6ED9EBA1
		case i < 60:
			k = -0x70E44324 // 0x8F1BBCDC sign-extended to 32 bits
		default:
			k = -0x359D3E2A // 0xCA62C1D6
		}
		if k != lastK {
			fmt.Fprintf(&sb, "\tli   a2, %d\n", k)
			lastK = k
		}
		// a1 = w[i] + k + e  (independent of the a-chain)
		fmt.Fprintf(&sb, "\tlw   a1, %d(s9)\n", 4*i)
		sb.WriteString("\taddw a1, a1, a2\n")
		fmt.Fprintf(&sb, "\taddw a1, a1, %s\n", e)
		// t6 = f(b, c, d)
		switch {
		case i < 20:
			fmt.Fprintf(&sb, "\tand  t5, %s, %s\n", b, cc)
			fmt.Fprintf(&sb, "\tnot  t6, %s\n", b)
			fmt.Fprintf(&sb, "\tand  t6, t6, %s\n", d)
			sb.WriteString("\tor   t6, t5, t6\n")
		case i < 40, i >= 60:
			fmt.Fprintf(&sb, "\txor  t6, %s, %s\n", b, cc)
			fmt.Fprintf(&sb, "\txor  t6, t6, %s\n", d)
		default:
			fmt.Fprintf(&sb, "\tand  t5, %s, %s\n", b, cc)
			fmt.Fprintf(&sb, "\tand  t6, %s, %s\n", b, d)
			sb.WriteString("\tor   t5, t5, t6\n")
			fmt.Fprintf(&sb, "\tand  t6, %s, %s\n", cc, d)
			sb.WriteString("\tor   t6, t5, t6\n")
		}
		sb.WriteString("\taddw a1, a1, t6\n")
		// new a (into e's register) = rol5(a) + a1
		fmt.Fprintf(&sb, "\tslliw t5, %s, 5\n", a)
		fmt.Fprintf(&sb, "\tsrliw t6, %s, 27\n", a)
		sb.WriteString("\tor   t5, t5, t6\n")
		fmt.Fprintf(&sb, "\taddw %s, t5, a1\n", e)
		// c' = rol30(b), in place
		fmt.Fprintf(&sb, "\tslliw t5, %s, 30\n", b)
		fmt.Fprintf(&sb, "\tsrliw t6, %s, 2\n", b)
		fmt.Fprintf(&sb, "\tor   %s, t5, t6\n", b)
		// Rotate roles: (a,b,c,d,e) ← (t→old e reg, a, rol30(b), c, d).
		roles = [5]int{roles[4], roles[0], roles[1], roles[2], roles[3]}
	}
	return sb.String()
}

// sha mirrors MiBench's sha (SHA-1): the full FIPS-180 compression function
// run over a pseudo-random corpus, with the five-word chaining state carried
// across blocks. Only the final padding block of the original is omitted —
// the hot loop (message schedule + 80 rounds) is identical, which is what
// gives sha its paper-visible character: integer-ALU-dominated with high
// ILP and the highest IPC of the suite.

func init() { register("sha", buildSHA) }

func shaBlocks(s Scale) int64 {
	switch s {
	case ScaleTiny:
		return 64
	case ScalePaper:
		return 65_000
	}
	return 3_000
}

// sha1Compress is FIPS-180 SHA-1 over one 64-byte block (big-endian words),
// mirrored in the assembly kernel.
func sha1Compress(h *[5]uint32, block []byte) {
	var w [80]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(block[4*i:])
	}
	for i := 16; i < 80; i++ {
		x := w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]
		w[i] = x<<1 | x>>31
	}
	a, b, c, d, e := h[0], h[1], h[2], h[3], h[4]
	for i := 0; i < 80; i++ {
		var f, k uint32
		switch {
		case i < 20:
			f, k = b&c|^b&d, 0x5A827999
		case i < 40:
			f, k = b^c^d, 0x6ED9EBA1
		case i < 60:
			f, k = b&c|b&d|c&d, 0x8F1BBCDC
		default:
			f, k = b^c^d, 0xCA62C1D6
		}
		t := (a<<5 | a>>27) + f + e + k + w[i]
		e, d, c, b, a = d, c, b<<30|b>>2, a, t
	}
	h[0] += a
	h[1] += b
	h[2] += c
	h[3] += d
	h[4] += e
}

func buildSHA(s Scale) (*Workload, error) {
	blocks := shaBlocks(s)

	// Corpus: 64 blocks of pseudo-random bytes, iterated cyclically.
	const corpusBlocks = 64
	corpus := make([]byte, corpusBlocks*64)
	l := newLCG(0x5AA)
	for i := 0; i < len(corpus); i += 8 {
		binary.LittleEndian.PutUint64(corpus[i:], l.next())
	}

	// Reference digest and checksum.
	h := [5]uint32{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	for b := int64(0); b < blocks; b++ {
		off := (b % corpusBlocks) * 64
		sha1Compress(&h, corpus[off:off+64])
	}
	acc := uint64(h[0])
	for i := 1; i < 5; i++ {
		acc = acc*31 + uint64(h[i])
	}

	src := fmt.Sprintf(`
	.equ BLOCKS,  %d
	.equ CORPUS,  %d
	.equ CMASK,   %d        # corpusBlocks-1 (power of two)
	.data
wbuf:
	.space 320              # 80-entry message schedule
	.text
	# chaining state in s4..s8
	li   s4, 0x67452301
	li   s5, 0xEFCDAB89
	li   s6, 0x98BADCFE
	li   s7, 0x10325476
	li   s8, 0xC3D2E1F0
	li   s0, 0              # block index
	li   s1, BLOCKS
	la   s9, wbuf
blk_loop:
	andi t0, s0, CMASK
	slli t0, t0, 6
	li   t1, CORPUS
	add  s2, t1, t0         # block pointer

	# ---- message schedule: w[0..15] = big-endian load ----
	li   t0, 0              # i
ws_le:
	slli t1, t0, 2
	add  t2, s2, t1
	lbu  t3, 0(t2)          # big-endian assemble
	slli t3, t3, 8
	lbu  t4, 1(t2)
	or   t3, t3, t4
	slli t3, t3, 8
	lbu  t4, 2(t2)
	or   t3, t3, t4
	slli t3, t3, 8
	lbu  t4, 3(t2)
	or   t3, t3, t4
	add  t2, s9, t1
	sw   t3, 0(t2)
	addi t0, t0, 1
	li   t5, 16
	bne  t0, t5, ws_le

	# ---- w[16..79] = rol1(w[i-3]^w[i-8]^w[i-14]^w[i-16]) ----
ws_ext:
	slli t1, t0, 2
	add  t2, s9, t1
	lw   t3, -12(t2)
	lw   t4, -32(t2)
	xor  t3, t3, t4
	lw   t4, -56(t2)
	xor  t3, t3, t4
	lw   t4, -64(t2)
	xor  t3, t3, t4
	slliw t4, t3, 1
	srliw t3, t3, 31
	or   t3, t3, t4
	sw   t3, 0(t2)
	addi t0, t0, 1
	li   t5, 80
	bne  t0, t5, ws_ext

	# ---- 80 fully unrolled rounds; a..e live in t0..t4 ----
	mv   t0, s4
	mv   t1, s5
	mv   t2, s6
	mv   t3, s7
	mv   t4, s8
%s
	addw s4, s4, t0
	addw s5, s5, t1
	addw s6, s6, t2
	addw s7, s7, t3
	addw s8, s8, t4

	addi s0, s0, 1
	beq  s0, s1, blk_done   # unrolled body exceeds branch range: use j back
	j    blk_loop
blk_done:

	# checksum = fold(h0..h4) with masked 32-bit words
	li   t6, 0xFFFFFFFF
	and  a0, s4, t6
	li   t5, 31
	mul  a0, a0, t5
	and  t0, s5, t6
	add  a0, a0, t0
	mul  a0, a0, t5
	and  t0, s6, t6
	add  a0, a0, t0
	mul  a0, a0, t5
	and  t0, s7, t6
	add  a0, a0, t0
	mul  a0, a0, t5
	and  t0, s8, t6
	add  a0, a0, t0
`+exitSeq, blocks, ExtraBase, corpusBlocks-1, shaRounds())

	return &Workload{
		Name:     "sha",
		Suite:    "MiBench",
		Scale:    s,
		Source:   src,
		Segments: []Segment{{Addr: ExtraBase, Bytes: corpus}},
		Checksum: acc,
	}, nil
}
