package workloads

import (
	"encoding/binary"
	"fmt"
)

// dijkstra mirrors MiBench's dijkstra_large, which is queue-driven (SPFA
// style) rather than a min-scan: vertices are dequeued from a work queue and
// all V edges into the vertex are relaxed, enqueueing every improvement.
// The adjacency matrix is stored column-major (weights into vertex i in
// column i), so relaxing one vertex strides across cache lines of a matrix
// that exceeds the L1D at every scale. Nearly every integer instruction
// then waits behind a missing load — which keeps the integer issue queue
// full at low IPC, the behaviour the paper's Fig. 8 contrasts against Sha.

func init() { register("dijkstra", buildDijkstra) }

// V=600 puts the adjacency matrix at 1.44 MiB — beyond the 1 MiB L2 — so
// the column-strided relax loop runs at DRAM latency, which is what drives
// the full-issue-queue, low-IPC behaviour of Fig. 8. Tiny scale keeps the
// same column-walk against the L2 only.
func dijkstraParams(s Scale) (v, sources int64) {
	switch s {
	case ScaleTiny:
		return 160, 1
	case ScalePaper:
		return 600, 6
	}
	return 600, 1
}

const dijkstraInf = 0x7FFFFFFF

// dijkstraRef mirrors the kernel exactly, including queue order.
func dijkstraRef(adj []uint32, v int64, start int64) []uint32 {
	dist := make([]uint32, v)
	for i := range dist {
		dist[i] = dijkstraInf
	}
	dist[start] = 0
	queue := []int64{start}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		dv := dist[node]
		for i := int64(0); i < v; i++ {
			w := adj[i*v+node] // column-major: stride-V walk
			if w == 0 {
				continue
			}
			nd := dv + w
			if nd < dist[i] {
				dist[i] = nd
				queue = append(queue, i)
			}
		}
	}
	return dist
}

func buildDijkstra(s Scale) (*Workload, error) {
	v, sources := dijkstraParams(s)
	w, err := buildDijkstraWith(v, sources)
	if err != nil {
		return nil, err
	}
	w.Scale = s
	return w, nil
}

func buildDijkstraWith(v, sources int64) (*Workload, error) {

	// Dense graph with pseudo-random weights 1..999 (no self edges).
	adj := make([]uint32, v*v)
	l := newLCG(0xD1C)
	for i := int64(0); i < v; i++ {
		for j := int64(0); j < v; j++ {
			if i == j {
				continue
			}
			adj[i*v+j] = l.next32()%999 + 1
		}
	}

	var acc uint64
	for src := int64(0); src < sources; src++ {
		for _, d := range dijkstraRef(adj, v, src%v) {
			acc += uint64(d)
		}
	}

	seg := make([]byte, 4*v*v)
	for i, w := range adj {
		binary.LittleEndian.PutUint32(seg[4*i:], w)
	}

	// Work-queue ring: power-of-two capacity well above the worst-case
	// outstanding entries (bounded by total improvements in flight).
	const qCapLog = 17

	src := fmt.Sprintf(`
	.equ V,       %d
	.equ SOURCES, %d
	.equ ADJ,     %d
	.equ QBASE,   %d
	.equ QMASK,   %d
	.equ INF,     %d
	.data
dist:
	.space %d
	.text
	li   s0, 0             # source counter
	li   s3, 0             # checksum
src_loop:
	li   t0, V
	remu s1, s0, t0        # start vertex

	# dist[i] = INF, dist[start] = 0
	la   t0, dist
	li   t2, V
	li   t3, INF
init:
	sw   t3, 0(t0)
	addi t0, t0, 4
	addi t2, t2, -1
	bnez t2, init
	la   t0, dist
	slli t1, s1, 2
	add  t0, t0, t1
	sw   zero, 0(t0)

	# queue: ring of u32 vertex ids; s4 = head, s5 = tail
	li   s4, 0
	li   s5, 0
	li   s6, QBASE
	li   s7, QMASK
	la   s8, dist
	# push(start)
	and  t0, s5, s7
	slli t0, t0, 2
	add  t0, t0, s6
	sw   s1, 0(t0)
	addi s5, s5, 1

work_loop:
	beq  s4, s5, src_done  # queue empty
	and  t0, s4, s7
	slli t0, t0, 2
	add  t0, t0, s6
	lwu  t1, 0(t0)         # node
	addi s4, s4, 1
	slli t2, t1, 2
	add  t2, t2, s8
	lwu  s9, 0(t2)         # dv = dist[node]
	# t3 = &adj[0][node] (column walk, stride V*4), t4 = &dist[0]
	slli t3, t1, 2
	li   t0, ADJ
	add  t3, t3, t0
	mv   t4, s8
	li   s2, V*4           # column stride
	li   s10, V
	li   s11, 0            # i
relax:
	lwu  t5, 0(t3)         # w = adj[i][node]
	beqz t5, relax_next
	add  t5, t5, s9        # nd = dv + w
	lwu  t6, 0(t4)         # dist[i]
	bgeu t5, t6, relax_next
	sw   t5, 0(t4)         # improve
	# push(i)
	and  t0, s5, s7
	slli t0, t0, 2
	add  t0, t0, s6
	sw   s11, 0(t0)
	addi s5, s5, 1
relax_next:
	add  t3, t3, s2
	addi t4, t4, 4
	addi s11, s11, 1
	addi s10, s10, -1
	bnez s10, relax
	j    work_loop

src_done:
	# accumulate dist[]
	la   t0, dist
	li   t1, V
acc_loop:
	lwu  t2, 0(t0)
	add  s3, s3, t2
	addi t0, t0, 4
	addi t1, t1, -1
	bnez t1, acc_loop

	addi s0, s0, 1
	li   t0, SOURCES
	bne  s0, t0, src_loop
	mv   a0, s3
`+exitSeq, v, sources, ExtraBase, ExtraBase+4*v*v, (1<<qCapLog)-1, dijkstraInf, 4*v)

	return &Workload{
		Name:     "dijkstra",
		Suite:    "MiBench",
		Source:   src,
		Segments: []Segment{{Addr: ExtraBase, Bytes: seg}},
		Checksum: acc,
	}, nil
}

// BuildDijkstraCustom builds a dijkstra instance with explicit parameters,
// used by model-calibration tests and the ablation benches. It bypasses
// Build's interval resolution, so it pins IntervalSize itself.
func BuildDijkstraCustom(v, sources int64) (*Workload, error) {
	w, err := buildDijkstraWith(v, sources)
	if err != nil {
		return nil, err
	}
	w.IntervalSize = DefaultInterval(ScaleDefault)
	return w, nil
}
