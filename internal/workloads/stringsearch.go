package workloads

import "fmt"

// stringsearch mirrors MiBench's stringsearch: Boyer–Moore–Horspool search
// of many patterns over a text corpus. The scan is load-dominated with a
// data-dependent skip distance, pressuring the memory issue queue — the
// paper calls out Stringsearch (with Dijkstra) as the top Memory Issue Unit
// consumer.

func init() { register("stringsearch", buildStringsearch) }

func stringsearchParams(s Scale) (corpus, patterns, reps int64) {
	switch s {
	case ScaleTiny:
		return 6 << 10, 6, 1
	case ScalePaper:
		return 64 << 10, 64, 28
	}
	return 24 << 10, 24, 2
}

// bmhRef is the Boyer–Moore–Horspool search mirrored by the kernel; it
// returns the sum of all match positions (and counts matches).
func bmhRef(text, pat []byte) (posSum uint64, matches uint64) {
	m := len(pat)
	var skip [256]int64
	for i := range skip {
		skip[i] = int64(m)
	}
	for i := 0; i < m-1; i++ {
		skip[pat[i]] = int64(m - 1 - i)
	}
	for i := int64(0); i+int64(m) <= int64(len(text)); {
		j := m - 1
		for j >= 0 && text[i+int64(j)] == pat[j] {
			j--
		}
		if j < 0 {
			posSum += uint64(i)
			matches++
			i++
			continue
		}
		i += skip[text[i+int64(m)-1]]
	}
	return posSum, matches
}

func buildStringsearch(s Scale) (*Workload, error) {
	corpusLen, patterns, reps := stringsearchParams(s)

	// Corpus: pseudo-random lowercase text with spaces (27-symbol alphabet,
	// skewed so repeats occur and BMH skips vary).
	corpus := make([]byte, corpusLen)
	l := newLCG(0x57E)
	for i := range corpus {
		r := l.next32() % 27
		if r == 26 {
			corpus[i] = ' '
		} else {
			corpus[i] = byte('a' + r%13) // halve the alphabet: more matches
		}
	}
	// Patterns: substrings of the corpus (guaranteed hits), length 6..13.
	const patLen = 16 // allocated slot per pattern
	patSeg := make([]byte, int64(patLen)*patterns)
	patLens := make([]int64, patterns)
	for p := int64(0); p < patterns; p++ {
		n := 6 + int64(l.next32()%8)
		off := int64(l.next32()) % (corpusLen - n)
		copy(patSeg[p*patLen:], corpus[off:off+n])
		patLens[p] = n
	}

	// Reference.
	var acc uint64
	for r := int64(0); r < reps; r++ {
		for p := int64(0); p < patterns; p++ {
			pos, m := bmhRef(corpus, patSeg[p*patLen:p*patLen+patLens[p]])
			acc += pos + m*uint64(p+1)
		}
	}

	// Pattern length table (one byte each) appended after the patterns.
	lenSeg := make([]byte, patterns)
	for i, n := range patLens {
		lenSeg[i] = byte(n)
	}

	src := fmt.Sprintf(`
	.equ CORPUS,   %d
	.equ CLEN,     %d
	.equ PATS,     %d
	.equ PATLEN,   %d
	.equ PLENS,    %d
	.equ NPATS,    %d
	.equ REPS,     %d
	.data
skip:
	.space 2048            # 256 × 8-byte skip table
	.text
	li   s0, REPS
	li   s3, 0             # checksum
rep_loop:
	li   s1, 0             # pattern index
pat_loop:
	# s4 = &pat, s5 = m (pattern length)
	li   t0, PATLEN
	mul  s4, s1, t0
	li   t0, PATS
	add  s4, s4, t0
	li   t0, PLENS
	add  t0, t0, s1
	lbu  s5, 0(t0)

	# build skip table: skip[*] = m; skip[pat[i]] = m-1-i for i < m-1
	la   t0, skip
	li   t1, 256
fill:
	sd   s5, 0(t0)
	addi t0, t0, 8
	addi t1, t1, -1
	bnez t1, fill
	li   t1, 0             # i
	addi t2, s5, -1        # m-1
fill2:
	bge  t1, t2, fill2_done
	add  t3, s4, t1
	lbu  t3, 0(t3)         # pat[i]
	slli t3, t3, 3
	la   t4, skip
	add  t3, t3, t4
	sub  t5, t2, t1        # m-1-i
	sd   t5, 0(t3)
	addi t1, t1, 1
	j    fill2
fill2_done:

	# scan: i in 0 .. CLEN-m
	li   s6, 0             # i
	li   s7, CLEN
	sub  s7, s7, s5        # last valid start
	li   s8, CORPUS
scan:
	bgt  s6, s7, pat_done
	addi t0, s5, -1        # j = m-1
cmp:
	bltz t0, match
	add  t1, s6, t0
	add  t1, t1, s8
	lbu  t1, 0(t1)         # text[i+j]
	add  t2, s4, t0
	lbu  t2, 0(t2)         # pat[j]
	bne  t1, t2, mismatch
	addi t0, t0, -1
	j    cmp
match:
	add  s3, s3, s6        # posSum += i
	addi t0, s1, 1
	add  s3, s3, t0        # matches × (p+1)
	addi s6, s6, 1
	j    scan
mismatch:
	add  t1, s6, s5
	addi t1, t1, -1
	add  t1, t1, s8
	lbu  t1, 0(t1)         # text[i+m-1]
	slli t1, t1, 3
	la   t2, skip
	add  t1, t1, t2
	ld   t1, 0(t1)
	add  s6, s6, t1
	j    scan
pat_done:
	addi s1, s1, 1
	li   t0, NPATS
	bne  s1, t0, pat_loop
	addi s0, s0, -1
	bnez s0, rep_loop
	mv   a0, s3
`+exitSeq, ExtraBase, corpusLen, ExtraBase+corpusLen,
		patLen, ExtraBase+corpusLen+int64(patLen)*patterns, patterns, reps)

	segs := []Segment{
		{Addr: ExtraBase, Bytes: corpus},
		{Addr: ExtraBase + uint64(corpusLen), Bytes: patSeg},
		{Addr: ExtraBase + uint64(corpusLen) + uint64(int64(patLen)*patterns), Bytes: lenSeg},
	}
	return &Workload{
		Name:     "stringsearch",
		Suite:    "MiBench",
		Scale:    s,
		Source:   src,
		Segments: segs,
		Checksum: acc,
	}, nil
}
