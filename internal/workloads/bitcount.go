package workloads

import (
	"fmt"
	"math/bits"
)

// bitcount mirrors MiBench's bitcnts: five different bit-counting methods
// run over streams of pseudo-random 64-bit values. The five phases have
// distinct instruction mixes (serial shift loop, Kernighan loop, SWAR
// arithmetic, byte-table lookups, nibble-table lookups), which gives the
// workload visible SimPoint phases and, like the original, lots of
// independent integer work (high ILP).

func init() { register("bitcount", buildBitcount) }

func bitcountN(s Scale) int64 {
	switch s {
	case ScaleTiny:
		return 250
	case ScalePaper:
		return 800_000
	}
	return 8_000
}

func buildBitcount(s Scale) (*Workload, error) {
	n := bitcountN(s)

	// Byte and nibble popcount tables, poked as a segment.
	tab := make([]byte, 256+16)
	for i := 0; i < 256; i++ {
		tab[i] = byte(bits.OnesCount8(uint8(i)))
	}
	for i := 0; i < 16; i++ {
		tab[256+i] = byte(bits.OnesCount8(uint8(i)))
	}

	// Go reference: the five methods all compute popcount; each phase uses
	// its own seed so wrong phase attribution changes the checksum.
	var acc uint64
	for phase := uint64(1); phase <= 5; phase++ {
		l := newLCG(phase * 0x9E3779B9)
		for i := int64(0); i < n; i++ {
			v := l.next()
			acc += phase * uint64(bits.OnesCount64(v))
		}
	}

	src := fmt.Sprintf(`
	.equ N,      %d
	.equ TAB8,   %d
	.equ TAB4,   %d
	.text
	li   s10, %d           # lcg multiplier
	li   s11, %d           # lcg increment
	li   s3, 0             # checksum accumulator

	# ---- phase 1: serial shift-and-mask ----
	li   s2, 0x9E3779B9    # seed = 1*0x9E3779B9
	li   s0, N
p1_loop:
	mul  s2, s2, s10
	add  s2, s2, s11
	mv   t0, s2
	li   t1, 0
p1_bits:
	andi t2, t0, 1
	add  t1, t1, t2
	srli t0, t0, 1
	bnez t0, p1_bits
	add  s3, s3, t1        # weight 1
	addi s0, s0, -1
	bnez s0, p1_loop

	# ---- phase 2: Kernighan x &= x-1 ----
	li   t3, 0x9E3779B9
	slli s2, t3, 1         # seed = 2*0x9E3779B9
	li   s0, N
p2_loop:
	mul  s2, s2, s10
	add  s2, s2, s11
	mv   t0, s2
	li   t1, 0
p2_bits:
	beqz t0, p2_done
	addi t2, t0, -1
	and  t0, t0, t2
	addi t1, t1, 1
	j    p2_bits
p2_done:
	slli t1, t1, 1         # weight 2
	add  s3, s3, t1
	addi s0, s0, -1
	bnez s0, p2_loop

	# ---- phase 3: SWAR parallel popcount ----
	li   t3, 0x9E3779B9
	li   t4, 3
	mul  s2, t3, t4        # seed = 3*0x9E3779B9
	li   s0, N
	li   s4, 0x5555555555555555
	li   s5, 0x3333333333333333
	li   s6, 0x0F0F0F0F0F0F0F0F
	li   s7, 0x0101010101010101
p3_loop:
	mul  s2, s2, s10
	add  s2, s2, s11
	mv   t0, s2
	srli t1, t0, 1
	and  t1, t1, s4
	sub  t0, t0, t1
	srli t1, t0, 2
	and  t1, t1, s5
	and  t0, t0, s5
	add  t0, t0, t1
	srli t1, t0, 4
	add  t0, t0, t1
	and  t0, t0, s6
	mul  t0, t0, s7
	srli t0, t0, 56
	li   t5, 3
	mul  t0, t0, t5        # weight 3
	add  s3, s3, t0
	addi s0, s0, -1
	bnez s0, p3_loop

	# ---- phase 4: byte-table lookup ----
	li   t3, 0x9E3779B9
	slli s2, t3, 2         # seed = 4*0x9E3779B9
	li   s0, N
	li   s5, TAB8
p4_loop:
	mul  s2, s2, s10
	add  s2, s2, s11
	mv   t0, s2
	li   t1, 0
	li   t6, 8
p4_bytes:
	andi t2, t0, 0xFF
	add  t2, t2, s5
	lbu  t2, 0(t2)
	add  t1, t1, t2
	srli t0, t0, 8
	addi t6, t6, -1
	bnez t6, p4_bytes
	slli t1, t1, 2         # weight 4
	add  s3, s3, t1
	addi s0, s0, -1
	bnez s0, p4_loop

	# ---- phase 5: nibble-table lookup ----
	li   t3, 0x9E3779B9
	li   t4, 5
	mul  s2, t3, t4        # seed = 5*0x9E3779B9
	li   s0, N
	li   s5, TAB4
p5_loop:
	mul  s2, s2, s10
	add  s2, s2, s11
	mv   t0, s2
	li   t1, 0
	li   t6, 16
p5_nibbles:
	andi t2, t0, 0xF
	add  t2, t2, s5
	lbu  t2, 0(t2)
	add  t1, t1, t2
	srli t0, t0, 4
	addi t6, t6, -1
	bnez t6, p5_nibbles
	li   t5, 5
	mul  t1, t1, t5        # weight 5
	add  s3, s3, t1
	addi s0, s0, -1
	bnez s0, p5_loop

	mv   a0, s3
`+exitSeq, n, ExtraBase, ExtraBase+256, int64(lcgMul), int64(lcgInc))

	return &Workload{
		Name:     "bitcount",
		Suite:    "MiBench",
		Scale:    s,
		Source:   src,
		Segments: []Segment{{Addr: ExtraBase, Bytes: tab}},
		Checksum: acc,
	}, nil
}
