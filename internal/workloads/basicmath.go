package workloads

import "fmt"

// basicmath mirrors MiBench's basicmath: three integer math phases — a
// bit-by-bit integer square root, Euclid's GCD (stressing the divider), and
// polynomial evaluation via Horner's rule (stressing the multiplier). The
// original mixes cubic solving and conversions; the integer kernels here
// keep the same "pure arithmetic, small data" character the paper relies on
// (the FP register file stays idle, as Figs. 5–7 show for Bmath).

func init() { register("basicmath", buildBasicmath) }

func basicmathN(s Scale) int64 {
	switch s {
	case ScaleTiny:
		return 500
	case ScalePaper:
		return 700_000
	}
	return 10_000
}

// isqrtRef is the bit-by-bit method, mirrored exactly in assembly.
func isqrtRef(x uint64) uint64 {
	var res uint64
	bit := uint64(1) << 62
	for bit > x {
		bit >>= 2
	}
	for bit != 0 {
		if x >= res+bit {
			x -= res + bit
			res = res>>1 + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	return res
}

func gcdRef(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func buildBasicmath(s Scale) (*Workload, error) {
	n := basicmathN(s)

	var acc uint64
	// Phase A: integer square roots of pseudo-random values.
	l := newLCG(0xB45)
	for i := int64(0); i < n; i++ {
		acc += isqrtRef(l.next())
	}
	// Phase B: GCDs (divider-heavy).
	l = newLCG(0xB46)
	for i := int64(0); i < n; i++ {
		a := l.next() | 1
		b := l.next() | 1
		acc += 3 * gcdRef(a, b)
	}
	// Phase C: degree-8 Horner evaluation.
	l = newLCG(0xB47)
	var coef [9]uint64
	for i := range coef {
		coef[i] = l.next()
	}
	for i := int64(0); i < n; i++ {
		x := l.next()
		v := coef[8]
		for d := 7; d >= 0; d-- {
			v = v*x + coef[d]
		}
		acc += 5 * v
	}

	src := fmt.Sprintf(`
	.equ N, %d
	.data
coef:
	.space 72              # 9 coefficients filled by phase C prologue
	.text
	li   s10, %d           # lcg multiplier
	li   s11, %d           # lcg increment
	li   s3, 0             # checksum

	# ---- phase A: bit-by-bit isqrt ----
	li   s2, 0xB45
	li   s0, N
pa_loop:
	mul  s2, s2, s10
	add  s2, s2, s11
	mv   t0, s2            # x
	li   t1, 0             # res
	li   t2, 1
	slli t2, t2, 62        # bit
pa_findbit:
	bleu t2, t0, pa_bits
	srli t2, t2, 2
	j    pa_findbit
pa_bits:
	beqz t2, pa_done
	add  t3, t1, t2        # res + bit
	bltu t0, t3, pa_skip
	sub  t0, t0, t3
	srli t1, t1, 1
	add  t1, t1, t2
	j    pa_next
pa_skip:
	srli t1, t1, 1
pa_next:
	srli t2, t2, 2
	j    pa_bits
pa_done:
	add  s3, s3, t1
	addi s0, s0, -1
	bnez s0, pa_loop

	# ---- phase B: Euclid GCD ----
	li   s2, 0xB46
	li   s0, N
pb_loop:
	mul  s2, s2, s10
	add  s2, s2, s11
	ori  t0, s2, 1         # a
	mul  s2, s2, s10
	add  s2, s2, s11
	ori  t1, s2, 1         # b
pb_gcd:
	beqz t1, pb_done
	remu t2, t0, t1
	mv   t0, t1
	mv   t1, t2
	j    pb_gcd
pb_done:
	li   t3, 3
	mul  t0, t0, t3
	add  s3, s3, t0
	addi s0, s0, -1
	bnez s0, pb_loop

	# ---- phase C: Horner polynomial ----
	li   s2, 0xB47
	la   s5, coef
	li   s0, 9             # fill coefficients from the LCG
pc_fill:
	mul  s2, s2, s10
	add  s2, s2, s11
	sd   s2, 0(s5)
	addi s5, s5, 8
	addi s0, s0, -1
	bnez s0, pc_fill
	la   s5, coef
	li   s0, N
pc_loop:
	mul  s2, s2, s10
	add  s2, s2, s11
	mv   t0, s2            # x
	ld   t1, 64(s5)        # v = coef[8]
	li   t2, 7             # d
pc_horner:
	mul  t1, t1, t0
	slli t3, t2, 3
	add  t3, t3, s5
	ld   t4, 0(t3)
	add  t1, t1, t4
	addi t2, t2, -1
	bgez t2, pc_horner
	li   t3, 5
	mul  t1, t1, t3
	add  s3, s3, t1
	addi s0, s0, -1
	bnez s0, pc_loop

	mv   a0, s3
`+exitSeq, n, int64(lcgMul), int64(lcgInc))

	return &Workload{
		Name:     "basicmath",
		Suite:    "MiBench",
		Scale:    s,
		Source:   src,
		Checksum: acc,
	}, nil
}
