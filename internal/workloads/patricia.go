package workloads

import "fmt"

// patricia mirrors MiBench's patricia: a digital search trie over 32-bit
// keys (the original uses IP addresses) built by insertion and then probed
// by lookups. Every step chases a pointer chosen by one key bit, producing
// the serialized, cache-unfriendly loads the original is known for.

func init() { register("patricia", buildPatricia) }

func patriciaParams(s Scale) (inserts, lookups int64) {
	switch s {
	case ScaleTiny:
		return 700, 1400
	case ScalePaper:
		return 450_000, 900_000
	}
	return 15_000, 30_000
}

// Node layout in the arena: 16 bytes = left u32 index | right u32 index |
// key u32 | pad. Index 0 means nil; the arena slot 0 is the root sentinel.
const patNodeSize = 16

// patTrie is the Go reference for the digital search tree.
type patTrie struct {
	left, right, key []uint32
}

func newPatTrie() *patTrie {
	// Slot 0: root sentinel holding key 0 (never matched because inserted
	// keys are forced nonzero).
	return &patTrie{left: []uint32{0}, right: []uint32{0}, key: []uint32{0}}
}

// insert returns true if a new node was created.
func (t *patTrie) insert(key uint32) bool {
	n := uint32(0)
	for bit := 31; bit >= 0; bit-- {
		if t.key[n] == key {
			return false
		}
		dir := key >> uint(bit) & 1
		var next uint32
		if dir == 0 {
			next = t.left[n]
		} else {
			next = t.right[n]
		}
		if next == 0 {
			idx := uint32(len(t.key))
			t.left = append(t.left, 0)
			t.right = append(t.right, 0)
			t.key = append(t.key, key)
			if dir == 0 {
				t.left[n] = idx
			} else {
				t.right[n] = idx
			}
			return true
		}
		n = next
	}
	return false
}

func (t *patTrie) lookup(key uint32) bool {
	n := uint32(0)
	for bit := 31; bit >= 0; bit-- {
		if t.key[n] == key {
			return true
		}
		var next uint32
		if key>>uint(bit)&1 == 0 {
			next = t.left[n]
		} else {
			next = t.right[n]
		}
		if next == 0 {
			return false
		}
		n = next
	}
	return t.key[n] == key
}

func buildPatricia(s Scale) (*Workload, error) {
	inserts, lookups := patriciaParams(s)

	// Reference.
	trie := newPatTrie()
	var created, hits uint64
	l := newLCG(0x9A7)
	for i := int64(0); i < inserts; i++ {
		key := l.next32() | 1
		if trie.insert(key) {
			created++
		}
	}
	// Lookups: alternate between keys from the inserted stream (hits) and a
	// fresh stream (mostly misses).
	lh := newLCG(0x9A7)
	lm := newLCG(0x777)
	for i := int64(0); i < lookups; i++ {
		var key uint32
		if i&1 == 0 {
			key = lh.next32() | 1
		} else {
			key = lm.next32() | 1
		}
		if trie.lookup(key) {
			hits++
		}
	}
	acc := created*2654435761 + hits

	arenaBytes := (inserts + 8) * patNodeSize

	src := fmt.Sprintf(`
	.equ ARENA,   %d
	.equ INSERTS, %d
	.equ LOOKUPS, %d
	.text
	li   s10, %d           # lcg multiplier
	li   s11, %d           # lcg increment
	# arena slot 0 is the pre-zeroed root sentinel
	li   s4, 1             # next free node index
	li   s5, 0             # created count
	li   s6, 0             # hit count
	li   s7, ARENA

	# ---- insert phase ----
	li   s2, 0x9A7
	li   s0, INSERTS
ins_loop:
	mul  s2, s2, s10
	add  s2, s2, s11
	srli t0, s2, 32
	ori  t0, t0, 1
	li   t5, 0xFFFFFFFF
	and  t0, t0, t5        # key (32-bit, nonzero)
	li   t1, 0             # n = root
	li   t2, 31            # bit
ins_walk:
	slli t3, t1, 4
	add  t3, t3, s7        # &node[n]
	lwu  t4, 8(t3)         # node.key
	beq  t4, t0, ins_next  # duplicate
	srl  t4, t0, t2
	andi t4, t4, 1         # dir
	slli t4, t4, 2
	add  t4, t4, t3        # &child[dir]
	lwu  t6, 0(t4)
	bnez t6, ins_descend
	# allocate node s4: key = t0, children zero (arena pre-zeroed)
	slli t6, s4, 4
	add  t6, t6, s7
	sw   t0, 8(t6)
	sw   s4, 0(t4)         # link
	addi s4, s4, 1
	addi s5, s5, 1
	j    ins_next
ins_descend:
	mv   t1, t6
	addi t2, t2, -1
	bgez t2, ins_walk
ins_next:
	addi s0, s0, -1
	bnez s0, ins_loop

	# ---- lookup phase ----
	li   s2, 0x9A7         # hit stream state
	li   s3, 0x777         # miss stream state
	li   s0, 0             # i
look_loop:
	andi t0, s0, 1
	bnez t0, use_miss
	mul  s2, s2, s10
	add  s2, s2, s11
	srli t0, s2, 32
	j    key_ready
use_miss:
	mul  s3, s3, s10
	add  s3, s3, s11
	srli t0, s3, 32
key_ready:
	ori  t0, t0, 1
	li   t5, 0xFFFFFFFF
	and  t0, t0, t5
	li   t1, 0             # n
	li   t2, 31            # bit
look_walk:
	slli t3, t1, 4
	add  t3, t3, s7
	lwu  t4, 8(t3)
	beq  t4, t0, look_hit
	srl  t4, t0, t2
	andi t4, t4, 1
	slli t4, t4, 2
	add  t4, t4, t3
	lwu  t6, 0(t4)
	beqz t6, look_next     # miss
	mv   t1, t6
	addi t2, t2, -1
	bgez t2, look_walk
	# bit exhausted: final key compare
	slli t3, t1, 4
	add  t3, t3, s7
	lwu  t4, 8(t3)
	bne  t4, t0, look_next
look_hit:
	addi s6, s6, 1
look_next:
	addi s0, s0, 1
	li   t4, LOOKUPS
	bne  s0, t4, look_loop

	# checksum = created*2654435761 + hits
	li   t0, 2654435761
	mul  a0, s5, t0
	add  a0, a0, s6
`+exitSeq, ExtraBase, inserts, lookups, int64(lcgMul), int64(lcgInc))

	return &Workload{
		Name:   "patricia",
		Suite:  "MiBench",
		Scale:  s,
		Source: src,
		Segments: []Segment{
			// Pre-zeroed arena (sparse memory reads zero anyway, but an
			// explicit segment documents the footprint and forces pages in).
			{Addr: ExtraBase, Bytes: make([]byte, arenaBytes)},
		},
		Checksum: acc,
	}, nil
}
