package workloads

import (
	"testing"
)

// runWorkload executes w to completion and returns the checksum (a0) and
// instruction count.
func runWorkload(t *testing.T, w *Workload) (uint64, uint64) {
	t.Helper()
	c, err := w.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(2_000_000_000); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if !c.Halted {
		t.Fatalf("%s did not halt", w.Name)
	}
	return uint64(c.Exit), c.InstRet
}

// TestChecksumsTiny validates every registered workload against its Go
// reference at tiny scale: one failure means the assembler, the simulator or
// the kernel disagrees with the reference semantics.
func TestChecksumsTiny(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := Build(name, ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			got, insts := runWorkload(t, w)
			if got != w.Checksum {
				t.Fatalf("%s: checksum %#x, want %#x", name, got, w.Checksum)
			}
			if insts < 20_000 {
				t.Errorf("%s: only %d instructions at tiny scale", name, insts)
			}
			t.Logf("%s: %d instructions, checksum %#x", name, insts, got)
		})
	}
}

// TestChecksumsDefault validates the experiment-scale inputs.
func TestChecksumsDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("default scale is slow in -short mode")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := Build(name, ScaleDefault)
			if err != nil {
				t.Fatal(err)
			}
			got, insts := runWorkload(t, w)
			if got != w.Checksum {
				t.Fatalf("%s: checksum %#x, want %#x", name, got, w.Checksum)
			}
			if insts < 500_000 {
				t.Errorf("%s: only %d instructions at default scale", name, insts)
			}
			t.Logf("%s: %d instructions", name, insts)
		})
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope", ScaleTiny); err == nil {
		t.Fatal("expected error")
	}
}

func TestDeterministicBuild(t *testing.T) {
	for _, name := range Names() {
		a, err := Build(name, ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(name, ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		if a.Checksum != b.Checksum || a.Source != b.Source {
			t.Errorf("%s: non-deterministic build", name)
		}
	}
}

// TestChecksumPaperScaleSpot validates one workload at the paper's full
// instruction count (sha ≈ 160 M dynamic instructions).
func TestChecksumPaperScaleSpot(t *testing.T) {
	if testing.Short() {
		t.Skip("paper scale is slow")
	}
	w, err := Build("sha", ScalePaper)
	if err != nil {
		t.Fatal(err)
	}
	got, insts := runWorkload(t, w)
	if got != w.Checksum {
		t.Fatalf("sha paper-scale checksum %#x, want %#x", got, w.Checksum)
	}
	if insts < 100_000_000 {
		t.Fatalf("paper scale only ran %d instructions", insts)
	}
}
