package workloads

import (
	"testing"

	"repro/internal/rv64"
	"repro/internal/sim"
)

// mixOf returns per-class dynamic instruction fractions.
func mixOf(t *testing.T, name string) map[rv64.Class]float64 {
	t.Helper()
	w, err := Build(name, ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[rv64.Class]float64{}
	var total float64
	if _, err := c.RunTrace(-1, func(r *sim.Retired) {
		counts[r.Inst.Op.Class()]++
		total++
	}); err != nil {
		t.Fatal(err)
	}
	for k := range counts {
		counts[k] /= total
	}
	return counts
}

// TestInstructionMixes pins each kernel's qualitative character — the
// property the paper's workload choices rely on (FP-heavy FFT, ALU-heavy
// Sha, memory-heavy Dijkstra/Stringsearch, divider-heavy Basicmath...).
func TestInstructionMixes(t *testing.T) {
	fp := func(m map[rv64.Class]float64) float64 {
		return m[rv64.ClassFPALU] + m[rv64.ClassFPMul] + m[rv64.ClassFPDiv]
	}
	memf := func(m map[rv64.Class]float64) float64 {
		return m[rv64.ClassLoad] + m[rv64.ClassStore]
	}

	sha := mixOf(t, "sha")
	if fp(sha) != 0 {
		t.Errorf("sha must be FP-free, got %.3f", fp(sha))
	}
	if sha[rv64.ClassALU] < 0.55 {
		t.Errorf("sha ALU fraction %.2f too low", sha[rv64.ClassALU])
	}

	fft := mixOf(t, "fft")
	if fp(fft) < 0.20 {
		t.Errorf("fft FP fraction %.2f too low", fp(fft))
	}
	if memf(fft) < 0.15 {
		t.Errorf("fft memory fraction %.2f too low", memf(fft))
	}

	bm := mixOf(t, "basicmath")
	if bm[rv64.ClassDiv] < 0.01 {
		t.Errorf("basicmath divider fraction %.3f too low", bm[rv64.ClassDiv])
	}
	if fp(bm) != 0 {
		t.Errorf("basicmath must not touch FP (paper Figs. 5-7), got %.3f", fp(bm))
	}

	dij := mixOf(t, "dijkstra")
	if memf(dij) < 0.18 {
		t.Errorf("dijkstra memory fraction %.2f too low", memf(dij))
	}

	ss := mixOf(t, "stringsearch")
	if ss[rv64.ClassLoad] < 0.15 {
		t.Errorf("stringsearch load fraction %.2f too low", ss[rv64.ClassLoad])
	}

	tar := mixOf(t, "tarfind")
	if tar[rv64.ClassBranch] < 0.12 {
		t.Errorf("tarfind branch fraction %.2f too low", tar[rv64.ClassBranch])
	}

	qs := mixOf(t, "qsort")
	if fp(qs) < 0.03 {
		t.Errorf("qsort FP-compare fraction %.3f too low", fp(qs))
	}

	mm := mixOf(t, "matmult")
	if mm[rv64.ClassMul] < 0.05 || memf(mm) < 0.15 {
		t.Errorf("matmult mul/mem fractions %.2f/%.2f too low", mm[rv64.ClassMul], memf(mm))
	}

	pat := mixOf(t, "patricia")
	if pat[rv64.ClassLoad] < 0.10 {
		t.Errorf("patricia load fraction %.2f too low", pat[rv64.ClassLoad])
	}

	bc := mixOf(t, "bitcount")
	if bc[rv64.ClassALU] < 0.5 {
		t.Errorf("bitcount ALU fraction %.2f too low", bc[rv64.ClassALU])
	}
}
