package workloads

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// qsort mirrors MiBench's qsort: recursive quicksort (Lomuto partition) over
// an array of float64 keys. The FP compares keep the FP pipeline mildly
// busy — the paper groups Qsort with FFT/iFFT as the only FP-register-file
// users — while the swap traffic works the LSU.

func init() { register("qsort", buildQsort) }

func qsortK(s Scale) int64 {
	switch s {
	case ScaleTiny:
		return 1_200
	case ScalePaper:
		return 55_000
	}
	return 28_000
}

func buildQsort(s Scale) (*Workload, error) {
	k := qsortK(s)

	vals := make([]float64, k)
	l := newLCG(0x450)
	for i := range vals {
		vals[i] = float64(l.next()>>11) / (1 << 53) // [0,1), distinct w.h.p.
	}

	// Reference: the sorted order is unique for distinct keys, so any sort
	// yields the kernel's final array. Positional checksum with exact FP ops
	// (×2^32 is exact; the convert truncates toward zero in both worlds).
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var acc uint64
	for i, v := range sorted {
		acc += uint64(i+1) * uint64(int64(v*4294967296.0))
	}

	seg := make([]byte, 8*k)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(seg[8*i:], math.Float64bits(v))
	}

	src := fmt.Sprintf(`
	.equ ARR, %d
	.equ K,   %d
	.text
	li   s7, ARR
	li   a0, 0             # lo
	li   a1, K-1           # hi
	call qsort

	# positional checksum
	li   a0, 0
	li   t0, 0             # i
	li   t5, 1
	slli t5, t5, 32
	fcvt.d.l fa3, t5       # 2^32
ck_loop:
	slli t1, t0, 3
	add  t1, t1, s7
	fld  fa0, 0(t1)
	fmul.d fa0, fa0, fa3
	fcvt.l.d t2, fa0
	addi t3, t0, 1
	mul  t2, t2, t3
	add  a0, a0, t2
	addi t0, t0, 1
	li   t1, K
	bne  t0, t1, ck_loop
	j    done

	# qsort(a0=lo, a1=hi): Lomuto partition, recursive.
qsort:
	bge  a0, a1, qret
	slli t0, a1, 3
	add  t0, t0, s7
	fld  fa0, 0(t0)        # pivot = a[hi]
	addi t1, a0, -1        # i
	mv   t2, a0            # j
part:
	slli t3, t2, 3
	add  t3, t3, s7
	fld  fa1, 0(t3)        # a[j]
	flt.d t4, fa1, fa0
	beqz t4, noswap
	addi t1, t1, 1
	slli t5, t1, 3
	add  t5, t5, s7
	fld  fa2, 0(t5)        # a[i]
	fsd  fa1, 0(t5)
	fsd  fa2, 0(t3)
noswap:
	addi t2, t2, 1
	blt  t2, a1, part
	# place pivot: swap a[i+1] and a[hi]
	addi t1, t1, 1
	slli t5, t1, 3
	add  t5, t5, s7
	fld  fa2, 0(t5)
	fsd  fa0, 0(t5)
	slli t6, a1, 3
	add  t6, t6, s7
	fsd  fa2, 0(t6)
	# recurse: qsort(lo, p-1); qsort(p+1, hi)
	addi sp, sp, -24
	sd   ra, 0(sp)
	sd   a1, 8(sp)
	sd   t1, 16(sp)
	addi a1, t1, -1
	call qsort
	ld   t1, 16(sp)
	addi a0, t1, 1
	ld   a1, 8(sp)
	call qsort
	ld   ra, 0(sp)
	addi sp, sp, 24
qret:
	ret
done:
`+exitSeq, ExtraBase, k)

	return &Workload{
		Name:     "qsort",
		Suite:    "MiBench",
		Scale:    s,
		Source:   src,
		Segments: []Segment{{Addr: ExtraBase, Bytes: seg}},
		Checksum: acc,
	}, nil
}
