package workloads

import "fmt"

// tarfind mirrors Embench's tarfind: scan a tar archive, validate each
// 512-byte header (magic check), parse the octal size field, match the file
// name's class tag against a needle, and skip over the file data. The next
// header's address depends on the current header's parsed size — a serial
// pointer chain through an archive far larger than the cache hierarchy —
// and the tag compares are data-random, so the workload is miss- and
// mispredict-bound with the lowest IPC of the suite, exactly as Fig. 10
// shows.

func init() { register("tarfind", buildTarfind) }

// Entry counts keep the accessed header lines (3 cache lines per entry)
// beyond the 1 MiB L2, so every pass walks a DRAM-latency pointer chain —
// the behaviour that gives tarfind the suite's lowest IPC.
func tarfindParams(s Scale) (entries, passes int64) {
	switch s {
	case ScaleTiny:
		return 7000, 2
	case ScalePaper:
		return 9000, 3600
	}
	return 8000, 18
}

const (
	tarNameOff  = 0   // 100-byte name field; class tag at bytes 5..7
	tarTagOff   = 5   // "proj/<tag>/..."
	tarSizeOff  = 124 // 12-byte octal size
	tarMagicOff = 257 // "ustar"
)

// tarfindRef scans the archive once for one 3-byte needle, mirroring the
// kernel: returns Σ(header offsets of matching entries) + match count.
func tarfindRef(arc []byte, needle []byte) uint64 {
	var acc uint64
	off := int64(0)
	for off+512 <= int64(len(arc)) {
		h := arc[off : off+512]
		if string(h[tarMagicOff:tarMagicOff+5]) != "ustar" {
			break
		}
		// Parse the low 4 octal digits (sizes here are < 4096 octal-wise,
		// i.e. < 0o10000); the kernel reads the same fixed positions.
		var size int64
		for i := 7; i < 11; i++ {
			size = size*8 + int64(h[tarSizeOff+i]-'0')
		}
		// Fixed-position class-tag compare.
		if h[tarTagOff] == needle[0] && h[tarTagOff+1] == needle[1] && h[tarTagOff+2] == needle[2] {
			acc += uint64(off) + 1
		}
		off += 512 + (size+511)/512*512
	}
	return acc
}

func buildTarfind(s Scale) (*Workload, error) {
	entries, passes := tarfindParams(s)

	// Build a synthetic archive whose class tags are pseudo-random, so the
	// per-header compare branches carry no learnable pattern.
	l := newLCG(0x7AF)
	classes := []string{"src", "doc", "img", "bin", "tst", "cfg"}
	var arc []byte
	for e := int64(0); e < entries; e++ {
		h := make([]byte, 512)
		cls := classes[l.next32()%uint32(len(classes))]
		name := fmt.Sprintf("proj/%s/file_%06d.dat", cls, e)
		copy(h[tarNameOff:], name)
		size := int64(l.next32() % 4000)
		// 11-digit octal, NUL-terminated (tar convention).
		copy(h[tarSizeOff:], fmt.Sprintf("%011o", size))
		copy(h[tarMagicOff:], "ustar")
		arc = append(arc, h...)
		pad := (size + 511) / 512 * 512
		arc = append(arc, make([]byte, pad)...)
	}
	arc = append(arc, make([]byte, 1024)...) // terminator blocks (no magic)

	// Needles cycle over the class tags; one archive scan per pass.
	needleSlot := int64(8)
	needleSeg := make([]byte, needleSlot*int64(len(classes)))
	for i, c := range classes {
		copy(needleSeg[int64(i)*needleSlot:], c)
	}

	var acc uint64
	for p := int64(0); p < passes; p++ {
		needle := classes[p%int64(len(classes))]
		acc += tarfindRef(arc, []byte(needle))
	}

	src := fmt.Sprintf(`
	.equ ARC,     %d
	.equ ARCLEN,  %d
	.equ NEEDLES, %d
	.equ NSLOT,   %d
	.equ NCLS,    %d
	.equ PASSES,  %d
	.text
	li   s0, 0             # pass
	li   s3, 0             # checksum
pass_loop:
	# load the pass's 3-byte needle into s8..s10
	li   t0, NCLS
	remu t0, s0, t0
	li   t1, NSLOT
	mul  t0, t0, t1
	li   t1, NEEDLES
	add  s4, t0, t1
	lbu  s8, 0(s4)
	lbu  s9, 1(s4)
	lbu  s10, 2(s4)

	li   s5, ARC           # current header pointer
	li   s6, ARC
	li   t0, ARCLEN
	add  s6, s6, t0        # end
	li   s11, 'u'          # magic byte, hoisted
hdr_loop:
	addi t0, s5, 512
	bgt  t0, s6, pass_done
	# magic check: 'u','s' of "ustar" at +257
	lbu  t1, 257(s5)
	bne  t1, s11, pass_done
	lbu  t1, 258(s5)
	li   t2, 's'
	bne  t1, t2, pass_done

	# parse the low 4 octal size digits at +124+7..10
	lbu  t1, 131(s5)
	lbu  t2, 132(s5)
	lbu  t3, 133(s5)
	lbu  t4, 134(s5)
	addi t1, t1, -48
	slli t1, t1, 3
	addi t2, t2, -48
	add  t1, t1, t2
	slli t1, t1, 3
	addi t3, t3, -48
	add  t1, t1, t3
	slli t1, t1, 3
	addi t4, t4, -48
	add  s7, t1, t4        # file size

	# class tag compare at fixed offset 5..7 (data-random outcome)
	lbu  t4, 5(s5)
	bne  t4, s8, no_match
	lbu  t4, 6(s5)
	bne  t4, s9, no_match
	lbu  t4, 7(s5)
	bne  t4, s10, no_match
	li   t0, ARC
	sub  t0, s5, t0
	add  s3, s3, t0
	addi s3, s3, 1
no_match:
	# advance: 512 + roundup(size, 512)
	addi t0, s7, 511
	srli t0, t0, 9
	slli t0, t0, 9
	addi t0, t0, 512
	add  s5, s5, t0
	j    hdr_loop
pass_done:
	addi s0, s0, 1
	li   t0, PASSES
	bne  s0, t0, pass_loop
	mv   a0, s3
`+exitSeq, ExtraBase, len(arc), ExtraBase+int64(len(arc)),
		needleSlot, len(classes), passes)

	return &Workload{
		Name:   "tarfind",
		Suite:  "Embench",
		Scale:  s,
		Source: src,
		Segments: []Segment{
			{Addr: ExtraBase, Bytes: arc},
			{Addr: ExtraBase + uint64(len(arc)), Bytes: needleSeg},
		},
		Checksum: acc,
	}, nil
}
