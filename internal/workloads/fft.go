package workloads

import (
	"encoding/binary"
	"fmt"
	"math"
)

// fft mirrors MiBench's FFT: an iterative radix-2 Cooley–Tukey transform
// over N complex doubles, repeated with a 1/N rescale per pass so values
// stay bounded. ifft is the inverse transform (conjugate twiddles). Both are
// FP-multiply/add dominated and are the workloads that light up the FP issue
// queue and FP register file in Figs. 5–7.
//
// The Go reference below executes the identical operation sequence, so the
// checksum (a fold over the raw IEEE-754 bits) must match bit-exactly.

func init() {
	register("fft", func(s Scale) (*Workload, error) { return buildFFT(s, false) })
	register("ifft", func(s Scale) (*Workload, error) { return buildFFT(s, true) })
}

func fftParams(s Scale) (n, reps int64) {
	switch s {
	case ScaleTiny:
		return 256, 2
	case ScalePaper:
		return 16384, 95
	}
	return 2048, 10
}

// fftRef performs one in-place pass exactly as the kernel does.
func fftRef(re, im, wre, wim []float64, rev []uint32) {
	n := len(re)
	for i := 0; i < n; i++ {
		j := int(rev[i])
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for base := 0; base < n; base += size {
			for k := 0; k < half; k++ {
				t := k * step
				wr, wi := wre[t], wim[t]
				a, b := base+k, base+k+half
				tr := re[b]*wr - im[b]*wi
				ti := re[b]*wi + im[b]*wr
				re[b] = re[a] - tr
				im[b] = im[a] - ti
				re[a] = re[a] + tr
				im[a] = im[a] + ti
			}
		}
	}
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		re[i] *= invN
		im[i] *= invN
	}
}

func buildFFT(s Scale, inverse bool) (*Workload, error) {
	n, reps := fftParams(s)

	// Input signal: deterministic mixture, identical for fft and ifft apart
	// from the seed.
	seed := uint64(0xFF7)
	name := "fft"
	if inverse {
		seed = 0x1FF7
		name = "ifft"
	}
	re := make([]float64, n)
	im := make([]float64, n)
	l := newLCG(seed)
	for i := int64(0); i < n; i++ {
		re[i] = float64(l.next()>>11)/(1<<53) - 0.5
		im[i] = float64(l.next()>>11)/(1<<53) - 0.5
	}

	// Twiddles: w_k = exp(∓2πik/N); inverse uses the conjugate.
	wre := make([]float64, n/2)
	wim := make([]float64, n/2)
	for k := int64(0); k < n/2; k++ {
		ang := 2 * math.Pi * float64(k) / float64(n)
		wre[k] = math.Cos(ang)
		if inverse {
			wim[k] = math.Sin(ang)
		} else {
			wim[k] = -math.Sin(ang)
		}
	}

	// Bit-reversal table.
	bitsN := 0
	for 1<<bitsN < int(n) {
		bitsN++
	}
	rev := make([]uint32, n)
	for i := int64(0); i < n; i++ {
		var r uint32
		for b := 0; b < bitsN; b++ {
			r |= uint32(i>>uint(b)&1) << uint(bitsN-1-b)
		}
		rev[i] = r
	}

	// Reference run + checksum.
	refRe := append([]float64(nil), re...)
	refIm := append([]float64(nil), im...)
	for r := int64(0); r < reps; r++ {
		fftRef(refRe, refIm, wre, wim, rev)
	}
	var acc uint64
	for i := int64(0); i < n; i++ {
		acc = acc*31 + math.Float64bits(refRe[i])
		acc = acc*31 + math.Float64bits(refIm[i])
	}

	// Memory layout (all offsets from ExtraBase, in bytes):
	// RE: 0, IM: 8N, WRE: 16N, WIM: 20N, REV: 24N, INVN: 28N.
	seg := make([]byte, 28*n+8)
	putF := func(off int64, v float64) {
		binary.LittleEndian.PutUint64(seg[off:], math.Float64bits(v))
	}
	for i := int64(0); i < n; i++ {
		putF(8*i, re[i])
		putF(8*n+8*i, im[i])
		binary.LittleEndian.PutUint32(seg[24*n+4*i:], rev[i])
	}
	for k := int64(0); k < n/2; k++ {
		putF(16*n+8*k, wre[k])
		putF(20*n+8*k, wim[k])
	}
	putF(28*n, 1/float64(n))

	src := fmt.Sprintf(`
	.equ N,     %d
	.equ REPS,  %d
	.equ RE,    %d
	.equ IM,    %d
	.equ WRE,   %d
	.equ WIM,   %d
	.equ REV,   %d
	.equ INVN,  %d
	.text
	li   s4, RE
	li   s5, IM
	li   s6, WRE
	li   s7, WIM
	li   s0, REPS
rep_loop:
	# ---- bit-reversal permutation ----
	li   t0, 0             # i
	li   t6, REV
br_loop:
	slli t1, t0, 2
	add  t1, t1, t6
	lwu  t1, 0(t1)         # j
	bge  t0, t1, br_next   # only swap when i < j
	slli t2, t0, 3
	slli t3, t1, 3
	add  t4, s4, t2
	add  t5, s4, t3
	fld  fa0, 0(t4)
	fld  fa1, 0(t5)
	fsd  fa1, 0(t4)
	fsd  fa0, 0(t5)
	add  t4, s5, t2
	add  t5, s5, t3
	fld  fa0, 0(t4)
	fld  fa1, 0(t5)
	fsd  fa1, 0(t4)
	fsd  fa0, 0(t5)
br_next:
	addi t0, t0, 1
	li   t1, N
	bne  t0, t1, br_loop

	# ---- stages ----
	li   s1, 2             # size
stage_loop:
	srli s2, s1, 1         # half
	li   t0, N
	divu s3, t0, s1        # step
	li   s8, 0             # base
base_loop:
	li   s9, 0             # k
k_loop:
	# twiddle: t = k*step (element), byte offset = t*8
	mul  t0, s9, s3
	slli t0, t0, 3
	add  t1, s6, t0
	fld  fa2, 0(t1)        # wr
	add  t1, s7, t0
	fld  fa3, 0(t1)        # wi
	# a = base+k, b = a+half
	add  t2, s8, s9
	slli t2, t2, 3         # a byte offset
	slli t3, s2, 3
	add  t3, t2, t3        # b byte offset
	add  t4, s4, t3
	fld  fa4, 0(t4)        # re[b]
	add  t5, s5, t3
	fld  fa5, 0(t5)        # im[b]
	# tr = re[b]*wr - im[b]*wi ; ti = re[b]*wi + im[b]*wr
	fmul.d fa6, fa4, fa2
	fmul.d fa7, fa5, fa3
	fsub.d fa6, fa6, fa7   # tr
	fmul.d fa7, fa4, fa3
	fmul.d ft0, fa5, fa2
	fadd.d fa7, fa7, ft0   # ti
	add  t4, s4, t2
	fld  fa4, 0(t4)        # re[a]
	add  t5, s5, t2
	fld  fa5, 0(t5)        # im[a]
	fsub.d ft0, fa4, fa6   # re[a] - tr
	fsub.d ft1, fa5, fa7   # im[a] - ti
	fadd.d fa4, fa4, fa6   # re[a] + tr
	fadd.d fa5, fa5, fa7   # im[a] + ti
	add  t4, s4, t3
	fsd  ft0, 0(t4)        # re[b]
	add  t5, s5, t3
	fsd  ft1, 0(t5)        # im[b]
	add  t4, s4, t2
	fsd  fa4, 0(t4)        # re[a]
	add  t5, s5, t2
	fsd  fa5, 0(t5)        # im[a]
	addi s9, s9, 1
	bne  s9, s2, k_loop
	add  s8, s8, s1
	li   t0, N
	blt  s8, t0, base_loop
	slli s1, s1, 1
	li   t0, N
	ble  s1, t0, stage_loop

	# ---- rescale by 1/N ----
	li   t0, INVN
	fld  fa2, 0(t0)
	li   t0, 0
sc_loop:
	slli t1, t0, 3
	add  t2, s4, t1
	fld  fa0, 0(t2)
	fmul.d fa0, fa0, fa2
	fsd  fa0, 0(t2)
	add  t2, s5, t1
	fld  fa0, 0(t2)
	fmul.d fa0, fa0, fa2
	fsd  fa0, 0(t2)
	addi t0, t0, 1
	li   t1, N
	bne  t0, t1, sc_loop

	addi s0, s0, -1
	bnez s0, rep_loop

	# ---- checksum over raw bits ----
	li   a0, 0
	li   t3, 31
	li   t0, 0
ck_loop:
	slli t1, t0, 3
	add  t2, s4, t1
	fld  fa0, 0(t2)
	fmv.x.d t4, fa0
	mul  a0, a0, t3
	add  a0, a0, t4
	add  t2, s5, t1
	fld  fa0, 0(t2)
	fmv.x.d t4, fa0
	mul  a0, a0, t3
	add  a0, a0, t4
	addi t0, t0, 1
	li   t1, N
	bne  t0, t1, ck_loop
`+exitSeq, n, reps, ExtraBase, ExtraBase+8*n, ExtraBase+16*n,
		ExtraBase+20*n, ExtraBase+24*n, ExtraBase+28*n)

	suite := "MiBench"
	return &Workload{
		Name:     name,
		Suite:    suite,
		Scale:    s,
		Source:   src,
		Segments: []Segment{{Addr: ExtraBase, Bytes: seg}},
		Checksum: acc,
	}, nil
}
