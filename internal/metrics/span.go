package metrics

import "sync"

// Span is one node of a hierarchical wall-clock tracer. A span
// accumulates time over any number of Start/End laps, so a pipeline stage
// that runs in disjoint stretches (e.g. per-checkpoint warm-up) still
// reports one total. Start/End pairs may overlap across goroutines: the
// span counts wall-clock time during which at least one lap is active,
// which for serial callers is exactly the elapsed time.
//
// All methods are nil-safe no-ops.
type Span struct {
	name string
	now  func() int64

	mu       sync.Mutex
	children map[string]*Span
	order    []*Span
	active   int   // concurrent Start()s not yet End()ed
	lapStart int64 // clock at the moment active went 0→1
	durNS    int64 // accumulated across completed laps
	laps     int64
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child returns the named child span, creating it on first use. The child
// is not started.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	c := s.children[name]
	if c == nil {
		c = &Span{name: name, now: s.now}
		if s.children == nil {
			s.children = map[string]*Span{}
		}
		s.children[name] = c
		s.order = append(s.order, c)
	}
	s.mu.Unlock()
	return c
}

// Start begins a lap. Nested/overlapping Starts are reference-counted.
func (s *Span) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.active == 0 {
		s.lapStart = s.now()
	}
	s.active++
	s.mu.Unlock()
}

// End finishes the most recent Start. When the last overlapping lap ends,
// the elapsed wall-clock time is added to the span's total.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.active > 0 {
		s.active--
		if s.active == 0 {
			s.durNS += s.now() - s.lapStart
			s.laps++
		}
	}
	s.mu.Unlock()
}

// DurationNS returns the accumulated wall-clock nanoseconds, including
// the currently running lap if any.
func (s *Span) DurationNS() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	d := s.durNS
	if s.active > 0 {
		d += s.now() - s.lapStart
	}
	s.mu.Unlock()
	return d
}

// Laps returns the number of completed laps.
func (s *Span) Laps() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	n := s.laps
	s.mu.Unlock()
	return n
}

// Children returns the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]*Span(nil), s.order...)
	s.mu.Unlock()
	return out
}

// SpanSnapshot is a point-in-time view of a span subtree.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	NS       int64          `json:"ns"`
	Laps     int64          `json:"laps"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot returns a consistent copy of the span subtree.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	snap := SpanSnapshot{Name: s.name, NS: s.DurationNS(), Laps: s.Laps()}
	for _, c := range s.Children() {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}
