package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter %d, want %d", got, workers*per)
	}
	if reg.Counter("c") != c {
		t.Error("Counter must return the same instance per name")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for j := int64(0); j < per; j++ {
				h.Observe(base + j)
			}
		}(int64(i))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	if s.Min != 0 || s.Max != per-1+workers-1 {
		t.Errorf("min/max %d/%d", s.Min, s.Max)
	}
	var want int64
	for i := int64(0); i < workers; i++ {
		for j := int64(0); j < per; j++ {
			want += i + j
		}
	}
	if s.Sum != want {
		t.Errorf("sum %d, want %d", s.Sum, want)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("g")
	g.Set(3.25)
	if v := g.Value(); v != 3.25 {
		t.Fatalf("gauge %v", v)
	}
	g.Add(0.75)
	if v := g.Value(); v != 4 {
		t.Fatalf("after Add %v", v)
	}
	g.Add(-4)
	if v := g.Value(); v != 0 {
		t.Fatalf("after negative Add %v", v)
	}
	var nilG *Gauge
	nilG.Add(1) // nil-safe like every other instrument
}

// TestGaugeAddConcurrent: Add is a CAS loop, so concurrent adjustments —
// fabric workers registering and departing — never lose an update the way
// a racy Value+Set pair would.
func TestGaugeAddConcurrent(t *testing.T) {
	g := NewRegistry().Gauge("workers")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				g.Add(1)
				g.Add(-1)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != workers*per {
		t.Errorf("gauge %v after concurrent adds, want %d", v, workers*per)
	}
}

func TestSpanNesting(t *testing.T) {
	var now int64
	reg := NewRegistryWithClock(func() int64 { now += 1000; return now })
	root := reg.Span("flow")
	root.Start()                 // 1000
	child := root.Child("inner") // no clock read
	child.Start()                // 2000
	grand := child.Child("leaf")
	grand.Start() // 3000
	grand.End()   // 4000 → 1000ns
	child.End()   // 5000 → 3000ns
	child.Start() // 6000
	child.End()   // 7000 → +1000 = 4000ns
	root.End()    // 8000 → 7000ns

	if d := root.DurationNS(); d != 7000 {
		t.Errorf("root %d", d)
	}
	if d := child.DurationNS(); d != 4000 || child.Laps() != 2 {
		t.Errorf("child %dns %d laps", d, child.Laps())
	}
	if d := grand.DurationNS(); d != 1000 {
		t.Errorf("grand %d", d)
	}
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "inner" {
		t.Fatalf("children %v", kids)
	}
	if reg.Span("flow") != root || root.Child("inner") != child {
		t.Error("spans must be memoized by name")
	}
}

func TestSpanOverlappingLaps(t *testing.T) {
	// Overlapping Start/End pairs (parallel sweep workers sharing a stage
	// span) must count wall-clock time with ≥1 active lap exactly once.
	var now int64
	reg := NewRegistryWithClock(func() int64 { now += 1; return now })
	s := reg.Span("stage")
	s.Start() // t=1 (active 0→1: lap starts)
	s.Start() // no clock read
	s.End()   // still active
	s.End()   // t=2 → 1ns
	if d := s.DurationNS(); d != 1 {
		t.Errorf("overlapped duration %d, want 1", d)
	}
	if s.Laps() != 1 {
		t.Errorf("laps %d, want 1", s.Laps())
	}
}

func TestSpanConcurrent(t *testing.T) {
	reg := NewRegistry()
	s := reg.Span("flow")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := s.Child("stage")
				c.Start()
				c.End()
			}
		}(i)
	}
	wg.Wait()
	if got := len(s.Children()); got != 1 {
		t.Fatalf("%d children, want 1", got)
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Add(1)
	reg.Gauge("x").Set(1)
	reg.Histogram("x").Observe(1)
	reg.Time("x")()
	sp := reg.Span("x")
	sp.Start()
	sp.Child("y").End()
	if sp.DurationNS() != 0 || reg.Counter("x").Value() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if s := reg.Snapshot(); len(s.Counters) != 0 || len(s.Spans) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestTime(t *testing.T) {
	var now int64
	reg := NewRegistryWithClock(func() int64 { now += 500; return now })
	stop := reg.Time("op_ns")
	stop()
	s := reg.Histogram("op_ns").Snapshot()
	if s.Count != 1 || s.Sum != 500 {
		t.Fatalf("timer snapshot %+v", s)
	}
}

func TestObserveDuration(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("d").ObserveDuration(3 * time.Millisecond)
	if s := reg.Histogram("d").Snapshot(); s.Sum != 3_000_000 {
		t.Fatalf("sum %d", s.Sum)
	}
}

// goldenRegistry builds a fixed scenario on a deterministic clock.
func goldenRegistry() *Registry {
	var now int64
	reg := NewRegistryWithClock(func() int64 { now += 1_000_000; return now })
	reg.Counter("boom.retired").Add(1000)
	reg.Counter("boom.cycles").Add(2500)
	reg.Gauge("simpoint.k").Set(4)
	reg.Gauge("core.sweep.worker.00.util").Set(0.875)
	h := reg.Histogram("core.sweep.queue_wait_ns")
	h.Observe(1500)
	h.Observe(2500)
	h.Observe(0)

	flow := reg.Span("flow")
	flow.Start() // 1ms
	prof := flow.Child("profile")
	prof.Start() // 2ms
	prof.End()   // 3ms
	sel := flow.Child("select")
	sel.Start()  // 4ms
	sel.End()    // 5ms
	prof.Start() // 6ms
	prof.End()   // 7ms
	flow.End()   // 8ms
	return reg
}

func TestRenderGolden(t *testing.T) {
	for _, tc := range []struct {
		file  string
		write func(*Registry, *bytes.Buffer) error
	}{
		{"registry.txt", func(r *Registry, b *bytes.Buffer) error { return r.WriteText(b) }},
		{"registry.json", func(r *Registry, b *bytes.Buffer) error { return r.WriteJSON(b) }},
		{"registry.prom", func(r *Registry, b *bytes.Buffer) error { return r.WritePrometheus(b) }},
	} {
		var buf bytes.Buffer
		if err := tc.write(goldenRegistry(), &buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", tc.file)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run `go test ./internal/metrics -update` to regenerate)", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", tc.file, buf.Bytes(), want)
		}
	}
}

// TestEmptyHistogramSummary: Summary() of an untouched (or nil) histogram
// must be all zeros — in particular the 0/0 mean is defined as 0, not NaN,
// so the digest can always be marshaled.
func TestEmptyHistogramSummary(t *testing.T) {
	var nilHist *Histogram
	if s := nilHist.Summary(); s != (Summary{}) {
		t.Errorf("nil histogram Summary = %+v, want zero", s)
	}
	reg := NewRegistry()
	s := reg.Histogram("untouched").Summary()
	if s != (Summary{}) {
		t.Errorf("untouched histogram Summary = %+v, want zero", s)
	}
	if math.IsNaN(s.Mean) {
		t.Error("empty-histogram mean is NaN")
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("empty Summary does not marshal: %v", err)
	}
	if !json.Valid(b) {
		t.Fatalf("invalid JSON: %s", b)
	}
}

func TestHistogramSummaryValues(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h")
	h.Observe(2)
	h.Observe(4)
	s := h.Summary()
	want := Summary{Count: 2, Sum: 6, Min: 2, Max: 4, Mean: 3}
	if s != want {
		t.Errorf("Summary = %+v, want %+v", s, want)
	}
}

// TestWriteJSONNonFiniteGauge: a single poisoned gauge (NaN or ±Inf, e.g.
// a ratio whose denominator collapsed to zero) must not kill the whole
// JSON emission — encoding/json rejects non-finite numbers, so the render
// layer clamps them to 0.
func TestWriteJSONNonFiniteGauge(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("poisoned.nan").Set(math.NaN())
	reg.Gauge("poisoned.inf").Set(math.Inf(1))
	reg.Gauge("fine").Set(0.5)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON with a NaN gauge: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if snap.Gauges["poisoned.nan"] != 0 || snap.Gauges["poisoned.inf"] != 0 {
		t.Errorf("non-finite gauges not clamped: %v", snap.Gauges)
	}
	if snap.Gauges["fine"] != 0.5 {
		t.Errorf("finite gauge altered: %v", snap.Gauges["fine"])
	}
}

// TestWritePrometheusSanitizesNames: registry names use dots and slashes;
// the exposition must map them onto [a-zA-Z0-9_:].
func TestWritePrometheusSanitizesNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("core.sweep.tasks").Inc()
	reg.Gauge("core.sweep.worker.00.util").Set(math.NaN()) // must render 0
	reg.Histogram("core.sweep.queue_wait_ns").Observe(1024)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE core_sweep_tasks counter\ncore_sweep_tasks 1\n",
		"core_sweep_worker_00_util 0\n",
		"core_sweep_queue_wait_ns_count 1\n",
		"core_sweep_queue_wait_ns_sum 1024\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("exposition leaks NaN:\n%s", out)
	}
}
