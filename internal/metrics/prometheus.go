package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), for scraping off a daemon's GET /metrics:
//
//	counters   →  one "counter" series per instrument
//	gauges     →  one "gauge" series per instrument
//	histograms →  <name>_count / _sum / _min / _max / _mean gauge-style
//	              scalar series from Summary() (the power-of-two buckets
//	              stay in the JSON/text renderers)
//	spans      →  <name>_ns / <name>_laps counter series, flattened with
//	              their full path as the metric name
//
// Metric names are mapped to the Prometheus charset: every character
// outside [a-zA-Z0-9_:] (the registry uses dots and slashes) becomes an
// underscore. Series are emitted in sorted order, so output for a fixed
// registry state is deterministic. Non-finite gauge values render as 0
// via the snapshot layer — an exposition that emits "NaN" poisons most
// scrape-side rate() math silently.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, k := range sortedKeys(s.Counters) {
		name := promName(k)
		p("# TYPE %s counter\n%s %d\n", name, name, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		name := promName(k)
		p("# TYPE %s gauge\n%s %s\n", name, name, promFloat(s.Gauges[k]))
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		name := promName(k)
		p("# TYPE %s summary\n", name)
		p("%s_count %d\n", name, h.Count)
		p("%s_sum %d\n", name, h.Sum)
		p("%s_min %d\n", name, h.Min)
		p("%s_max %d\n", name, h.Max)
		p("%s_mean %s\n", name, promFloat(finiteOr0(h.Mean)))
	}
	for _, sp := range s.Spans {
		writeSpanProm(p, "", sp)
	}
	return err
}

func writeSpanProm(p func(string, ...interface{}), prefix string, s SpanSnapshot) {
	name := promName(prefix + "span_" + s.Name)
	if prefix != "" {
		name = promName(prefix + "_" + s.Name)
	}
	p("# TYPE %s_ns counter\n%s_ns %d\n", name, name, s.NS)
	p("# TYPE %s_laps counter\n%s_laps %d\n", name, name, s.Laps)
	for _, c := range s.Children {
		writeSpanProm(p, name, c)
	}
}

// promFloat formats a float the way Prometheus client libraries do: the
// shortest representation that round-trips.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName maps a registry instrument name onto the Prometheus metric
// charset [a-zA-Z0-9_:].
func promName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, s)
}
