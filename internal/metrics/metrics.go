// Package metrics is a lightweight, dependency-free observability layer
// for the SimPoint→power pipeline: atomic counters and gauges, histograms
// with ns-precision timers, a hierarchical span tracer, and a registry
// that renders to text and JSON.
//
// Every type is nil-safe: methods on a nil *Registry, *Counter, *Gauge,
// *Histogram, or *Span are no-ops (reads return zero values). Callers can
// therefore thread an optional registry through hot paths without guarding
// each call site; instrumentation disappears when no registry is attached.
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically adjusted atomic int64.
type Counter struct{ v atomic.Int64 }

// Add adds n to the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 level.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d atomically (a CAS loop over the float bits),
// so concurrent registrations and departures — the fabric's live-worker
// level — never lose an update the way a racy Value+Set pair would.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram tracks an int64-valued distribution (by convention
// nanoseconds, or derived rates such as KIPS) with count/sum/min/max and
// power-of-two buckets.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [65]int64 // buckets[i] counts values v with bits.Len64(v)==i; buckets[0] counts v<=0
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v > 0 {
		h.buckets[bits.Len64(uint64(v))]++
	} else {
		h.buckets[0]++
	}
	h.mu.Unlock()
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Summary is the scalar digest of a histogram: observation count, sum,
// extrema and mean. It is the shape the renderers (text, JSON, Prometheus)
// emit for a histogram when buckets are not wanted.
type Summary struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
	Mean  float64
}

// Summary returns the histogram's scalar digest. An untouched (or nil)
// histogram returns the zero Summary — the mean of zero observations is
// defined as 0, never the 0/0 NaN, which would poison any JSON emission
// the digest lands in.
func (h *Histogram) Summary() Summary {
	var s Summary
	if h == nil {
		return s
	}
	h.mu.Lock()
	s.Count, s.Sum, s.Min, s.Max = h.count, h.sum, h.min, h.max
	h.mu.Unlock()
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	return s
}

// HistSnapshot is a consistent point-in-time view of a histogram.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	// Buckets maps a human-readable upper bound ("<2.048µs") to the number
	// of observations below it (power-of-two buckets, non-empty only).
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	h.mu.Lock()
	s.Count, s.Sum, s.Min, s.Max = h.count, h.sum, h.min, h.max
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
	}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if s.Buckets == nil {
			s.Buckets = map[string]int64{}
		}
		label := "<=0"
		if i > 0 && i < 63 {
			label = "<" + time.Duration(int64(1)<<i).String()
		} else if i >= 63 {
			label = ">=2^62"
		}
		s.Buckets[label] += n
	}
	h.mu.Unlock()
	return s
}

// Registry owns a namespace of metrics and spans. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is a valid no-op
// sink: all lookups return nil instruments whose methods do nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*Span
	spanList []*Span
	now      func() int64 // clock in ns; injectable for tests
}

// NewRegistry returns a registry on the wall clock.
func NewRegistry() *Registry {
	return NewRegistryWithClock(func() int64 { return time.Now().UnixNano() })
}

// NewRegistryWithClock returns a registry reading time (in ns) from now —
// for deterministic tests.
func NewRegistryWithClock(now func() int64) *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*Span{},
		now:      now,
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// Span returns the named root span, creating it on first use. The span is
// not started.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s := r.spans[name]
	if s == nil {
		s = &Span{name: name, now: r.now}
		r.spans[name] = s
		r.spanList = append(r.spanList, s)
	}
	r.mu.Unlock()
	return s
}

// Time starts an ns-precision timer; the returned stop function records
// the elapsed time into the named histogram.
func (r *Registry) Time(name string) func() {
	if r == nil {
		return func() {}
	}
	h := r.Histogram(name)
	start := r.now()
	return func() { h.Observe(r.now() - start) }
}

// sortedKeys returns the keys of m in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
