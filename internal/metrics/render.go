package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// Snapshot is a consistent point-in-time view of a whole registry, in the
// shape WriteJSON emits.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot          `json:"spans,omitempty"`
}

// Snapshot captures every instrument. A nil registry yields a zero
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	spanList := append([]*Span(nil), r.spanList...)
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = map[string]int64{}
		for k, v := range counters {
			s.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = map[string]float64{}
		for k, v := range gauges {
			s.Gauges[k] = finiteOr0(v.Value())
		}
	}
	if len(hists) > 0 {
		s.Histograms = map[string]HistSnapshot{}
		for k, v := range hists {
			s.Histograms[k] = v.Snapshot()
		}
	}
	for _, sp := range spanList {
		s.Spans = append(s.Spans, sp.Snapshot())
	}
	return s
}

// finiteOr0 clamps non-finite values to 0 at the rendering boundary.
// encoding/json rejects NaN/±Inf outright, so a single poisoned gauge
// (e.g. a ratio whose denominator collapsed to zero) would otherwise kill
// an entire metrics emission — a silent instrumentation bug escalating
// into a hard serving failure.
func finiteOr0(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// WriteJSON renders the registry as one indented JSON object. Map keys
// are emitted in sorted order (encoding/json), span order is creation
// order, so the output is deterministic for a fixed clock. Non-finite
// gauge values are rendered as 0 (see finiteOr0) so the emission cannot
// fail on a poisoned instrument.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText renders the registry as a human-readable report.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# metrics\n")
	if len(s.Counters) > 0 {
		p("counters:\n")
		for _, k := range sortedKeys(s.Counters) {
			p("  %-44s %d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		p("gauges:\n")
		for _, k := range sortedKeys(s.Gauges) {
			p("  %-44s %s\n", k, strconv.FormatFloat(s.Gauges[k], 'g', 6, 64))
		}
	}
	if len(s.Histograms) > 0 {
		p("histograms:\n")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			p("  %-44s count=%d sum=%d min=%d max=%d mean=%.1f\n",
				k, h.Count, h.Sum, h.Min, h.Max, h.Mean)
		}
	}
	if len(s.Spans) > 0 {
		p("spans:\n")
		for _, sp := range s.Spans {
			writeSpanText(p, sp, 1)
		}
	}
	return err
}

func writeSpanText(p func(string, ...interface{}), s SpanSnapshot, depth int) {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	name := indent + s.Name
	p("%-46s %-14s (%d laps)\n", name, time.Duration(s.NS), s.Laps)
	for _, c := range s.Children {
		writeSpanText(p, c, depth+1)
	}
}
