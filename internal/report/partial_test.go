package report

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// partialSweep derives a keep-going-shaped sweep from the shared test
// sweep: the dijkstra profile is gone (its Profile task failed) and
// qsort/MegaBOOM is gone (its measure task failed). Names/ConfigNames
// keep the full campaign, exactly as Runner.Sweep leaves them.
func partialSweep(t *testing.T) *core.Sweep {
	t.Helper()
	full := testSweep(t)
	sw := &core.Sweep{
		Flow:        full.Flow,
		Scale:       full.Scale,
		Names:       full.Names,
		ConfigNames: full.ConfigNames,
		Profiles:    map[string]*core.Profile{},
		Results:     map[string]map[string]*core.Result{},
	}
	for n, p := range full.Profiles {
		if n == "dijkstra" {
			continue
		}
		sw.Profiles[n] = p
	}
	for cfg, byName := range full.Results {
		sw.Results[cfg] = map[string]*core.Result{}
		for n, r := range byName {
			if n == "dijkstra" || (cfg == "MegaBOOM" && n == "qsort") {
				continue
			}
			sw.Results[cfg][n] = r
		}
	}
	return sw
}

// TestPartialSweepFailedCells: every artifact must render FAILED cells for
// the missing pairs — never panic, never silently drop the campaign rows.
func TestPartialSweepFailedCells(t *testing.T) {
	sw := partialSweep(t)
	tables := map[string]*Table{
		"table2":  TableII(sw),
		"fig5":    FigComponentPower(sw, "MediumBOOM"),
		"fig7":    FigComponentPower(sw, "MegaBOOM"),
		"fig8":    FigSlotPower(sw, "MegaBOOM", "dijkstra", "sha"),
		"fig10":   FigIPC(sw),
		"fig11":   FigPerfPerWatt(sw),
		"speedup": SpeedupTable(sw),
		"phases":  PhaseProfile(sw, "MegaBOOM", "dijkstra"),
	}
	for key, tb := range tables {
		out := tb.Render()
		if !strings.Contains(out, "FAILED") {
			t.Errorf("%s: no FAILED cell for the missing pairs:\n%s", key, out)
		}
	}
	// Per-config aggregates carry no per-pair cell; they must still render
	// (means over the measured workloads), just without inventing data.
	for key, tb := range map[string]*Table{
		"fig9":    FigContribution(sw),
		"sources": PowerSources(sw),
	} {
		if out := tb.Render(); !strings.Contains(out, "MegaBOOM") {
			t.Errorf("%s did not render on a partial sweep:\n%s", key, out)
		}
	}

	// The full campaign stays visible: Table II keeps one row per swept
	// workload, with dijkstra's row all-FAILED.
	tb := tables["table2"]
	if len(tb.Rows) != 3 {
		t.Fatalf("table2 rows = %d, want 3 (failed workloads keep their row)", len(tb.Rows))
	}
	var dij []string
	for _, row := range tb.Rows {
		if row[0] == "dijkstra" {
			dij = row
		}
	}
	if dij == nil {
		t.Fatal("table2 lost the dijkstra row")
	}
	for _, cell := range dij[1:] {
		if cell != "FAILED" {
			t.Errorf("dijkstra cell %q, want FAILED", cell)
		}
	}

	// Measured pairs keep their fault-free values: the sha IPC row must be
	// identical between the partial and the complete sweep.
	full := FigIPC(testSweep(t))
	part := tables["fig10"]
	rowOf := func(tb *Table, name string) []string {
		for _, row := range tb.Rows {
			if row[0] == name {
				return row
			}
		}
		return nil
	}
	fr, pr := rowOf(full, "sha"), rowOf(part, "sha")
	if fr == nil || pr == nil {
		t.Fatal("sha row missing from Fig 10")
	}
	if strings.Join(fr, "|") != strings.Join(pr, "|") {
		t.Errorf("surviving pair drifted: full=%v partial=%v", fr, pr)
	}

	// Takeaways must degrade, not crash, on a partial sweep.
	if txt := Takeaways(sw); !strings.Contains(txt, "Key takeaways") {
		t.Errorf("takeaways did not render: %q", txt)
	}
}
