package report

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/boom"
	"repro/internal/core"
	"repro/internal/workloads"
)

var (
	sweepOnce sync.Once
	sweepVal  *core.Sweep
	sweepErr  error
)

// testSweep runs one small shared sweep (3 workloads × 2 configs, tiny).
func testSweep(t *testing.T) *core.Sweep {
	t.Helper()
	sweepOnce.Do(func() {
		sweepVal, sweepErr = core.New(core.DefaultFlowConfig(), core.WithScale(workloads.ScaleTiny)).
			Sweep(context.Background(), core.NewCampaign(
				[]string{"sha", "qsort", "dijkstra"},
				[]boom.Config{boom.MediumBOOM(), boom.MegaBOOM()},
				workloads.ScaleTiny))
	})
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	return sweepVal
}

func TestRenderAlignment(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Headers: []string{"a", "long-header"},
		Rows:    [][]string{{"xxxxxx", "1"}, {"y", "2"}},
	}
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "a      ") {
		t.Errorf("header misaligned: %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{
		Headers: []string{"a", "b"},
		Rows:    [][]string{{`va"l`, "x,y"}},
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"va""l"`) || !strings.Contains(csv, `"x,y"`) {
		t.Errorf("bad CSV: %q", csv)
	}
}

func TestTableI(t *testing.T) {
	tb := TableI(boom.Configs())
	if len(tb.Headers) != 4 {
		t.Fatalf("headers: %v", tb.Headers)
	}
	out := tb.Render()
	for _, want := range []string{"MegaBOOM", "12/6", "24/40/32", "500"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableII(t *testing.T) {
	tb := TableII(testSweep(t))
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	// Table II order: qsort, dijkstra, sha.
	if tb.Rows[0][0] != "qsort" || tb.Rows[1][0] != "dijkstra" || tb.Rows[2][0] != "sha" {
		t.Errorf("wrong order: %v %v %v", tb.Rows[0][0], tb.Rows[1][0], tb.Rows[2][0])
	}
}

func TestFigTables(t *testing.T) {
	sw := testSweep(t)
	comp := FigComponentPower(sw, "MegaBOOM")
	if len(comp.Rows) != 13 {
		t.Errorf("Fig 5-7 must have 13 component rows, got %d", len(comp.Rows))
	}
	slots := FigSlotPower(sw, "MegaBOOM", "dijkstra", "sha")
	if len(slots.Rows) != boom.MegaBOOM().IntIssueSlots {
		t.Errorf("Fig 8 rows: %d", len(slots.Rows))
	}
	contrib := FigContribution(sw)
	if len(contrib.Rows) != 2 {
		t.Errorf("Fig 9 rows: %d", len(contrib.Rows))
	}
	ipc := FigIPC(sw)
	if len(ipc.Rows) != 3 || len(ipc.Headers) != 3 {
		t.Errorf("Fig 10 shape: %dx%d", len(ipc.Rows), len(ipc.Headers))
	}
	ppw := FigPerfPerWatt(sw)
	if ppw.Headers[len(ppw.Headers)-1] != "Best" {
		t.Errorf("Fig 11 must name the best config")
	}
	sp := SpeedupTable(sw)
	if !strings.HasPrefix(sp.Rows[len(sp.Rows)-1][0], "TOTAL") {
		t.Errorf("speedup table must end with a TOTAL row")
	}
	if sp.Rows[len(sp.Rows)-1][0] != "TOTAL wall-clock" {
		t.Errorf("speedup table must report measured wall-clock speedup")
	}
}

func TestTakeaways(t *testing.T) {
	out := Takeaways(testSweep(t))
	for _, want := range []string{"#1", "#2", "#3", "#4", "#5", "#6", "#7", "#8",
		"branch predictor", "allocation-list"} {
		if !strings.Contains(out, want) {
			t.Errorf("takeaways missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseProfile(t *testing.T) {
	sw := testSweep(t)
	tb := PhaseProfile(sw, "MegaBOOM", "sha")
	r := sw.Results["MegaBOOM"]["sha"]
	if len(tb.Rows) != r.NumPoints {
		t.Fatalf("rows %d, points %d", len(tb.Rows), r.NumPoints)
	}
	// Phase IPCs must bracket the weighted aggregate.
	var minIPC, maxIPC = 1e9, 0.0
	for _, p := range r.Points {
		if p.IPC < minIPC {
			minIPC = p.IPC
		}
		if p.IPC > maxIPC {
			maxIPC = p.IPC
		}
	}
	if agg := r.IPC(); agg < minIPC*0.95 || agg > maxIPC*1.05 {
		t.Errorf("aggregate IPC %.2f outside phase range [%.2f, %.2f]", agg, minIPC, maxIPC)
	}
}

func TestPowerSources(t *testing.T) {
	tb := PowerSources(testSweep(t))
	if len(tb.Rows) != 2 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	// Components must sum: leak+internal+switching == total per row.
	for _, row := range tb.Rows {
		var parts [4]float64
		for i := 0; i < 4; i++ {
			if _, err := fmt.Sscan(row[i+1], &parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		if d := parts[0] + parts[1] + parts[2] - parts[3]; d > 0.02 || d < -0.02 {
			t.Errorf("row %v does not sum: delta %v", row, d)
		}
	}
}
