package report

import (
	"fmt"
	"strings"

	"repro/internal/boom"
	"repro/internal/core"
)

// Takeaways re-derives the paper's 8 Key Takeaways from a sweep's measured
// data, quoting the numbers that support (or contradict) each one. It is
// the reproduction of the paper's contribution #4.
func Takeaways(sw *core.Sweep) string {
	var sb strings.Builder
	names := orderedWorkloads(sw)
	cfgs := configNames(sw)

	mean := func(cfg string, comp boom.Component) float64 {
		present := presentCount(sw, cfg, names)
		if present == 0 {
			return 0
		}
		var m float64
		for _, n := range names {
			if r := resultOf(sw, cfg, n); r != nil {
				m += r.Power.Comp[comp].TotalMW() / float64(present)
			}
		}
		return m
	}
	tile := func(cfg string) float64 {
		present := presentCount(sw, cfg, names)
		if present == 0 {
			return 0
		}
		var m float64
		for _, n := range names {
			if r := resultOf(sw, cfg, n); r != nil {
				m += r.Power.TotalMW() / float64(present)
			}
		}
		return m
	}
	line := func(format string, args ...interface{}) {
		fmt.Fprintf(&sb, format+"\n", args...)
	}
	pct := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return 100 * a / b
	}

	first, last := cfgs[0], cfgs[len(cfgs)-1]

	line("Key takeaways, re-derived from this run (%s scale):", sw.Scale)
	line("")

	// #1 — Integer RF varies sharply across configs (ports → bypass).
	line("#1  Integer register file scales super-linearly with ports:")
	for _, cfg := range cfgs {
		line("      %-11s %5.2f mW (%4.1f%% of tile)", cfg,
			mean(cfg, boom.CompIntRF), pct(mean(cfg, boom.CompIntRF), tile(cfg)))
	}

	// #2 — FP RF static power on the largest config even without FP.
	intWl := pickMeasured(sw, last, names, "bitcount")
	if r := resultOf(sw, last, intWl); r != nil {
		fpB := r.Power.Comp[boom.CompFpRF]
		line("#2  FP register file on FP-free %q (%s): %.2f mW, %.0f%% leakage",
			intWl, last, fpB.TotalMW(), 100*fpB.LeakageMW/fpB.TotalMW())

		// #3 — FP rename burns power without FP instructions.
		line("#3  FP rename on FP-free %q: %.2f mW (int rename %.2f mW) — allocation-list copies per branch",
			intWl, r.Power.Comp[boom.CompFpRename].TotalMW(),
			r.Power.Comp[boom.CompIntRename].TotalMW())
	} else {
		line("#2  unavailable — no measured workload on %s", last)
		line("#3  unavailable — no measured workload on %s", last)
	}

	// #4 — Scheduler group is the second-largest consumer.
	for _, cfg := range cfgs {
		sched := mean(cfg, boom.CompIntIssue) + mean(cfg, boom.CompMemIssue) + mean(cfg, boom.CompFpIssue)
		line("#4  %-11s scheduler group %5.2f mW vs branch predictor %5.2f mW",
			cfg, sched, mean(cfg, boom.CompBranchPredictor))
	}

	// #5 — Collapsing queues: issue power tracks occupancy, not IPC.
	dij, sha := pickMeasured(sw, last, names, "dijkstra"), pickMeasured(sw, last, names, "sha")
	rd, rs := resultOf(sw, last, dij), resultOf(sw, last, sha)
	if rd != nil && rs != nil {
		line("#5  %s: IPC %.2f, int-issue %.2f mW  |  %s: IPC %.2f, int-issue %.2f mW",
			dij, rd.IPC(), rd.Power.Comp[boom.CompIntIssue].TotalMW(),
			sha, rs.IPC(), rs.Power.Comp[boom.CompIntIssue].TotalMW())
	}

	// #6 — ROB power scales with size; see BenchmarkAblationROBSize.
	line("#6  ROB: %s %.2f mW → %s %.2f mW (entries %d → %d); see BenchmarkAblationROBSize",
		first, mean(first, boom.CompRob), last, mean(last, boom.CompRob),
		boom.MediumBOOM().RobEntries, boom.MegaBOOM().RobEntries)

	// #7 — Branch predictor is the top consumer.
	for _, cfg := range cfgs {
		bp := mean(cfg, boom.CompBranchPredictor)
		line("#7  %-11s branch predictor %5.2f mW (%4.1f%% of tile) — top component",
			cfg, bp, pct(bp, tile(cfg)))
	}

	// #8 — Memory units + MSHRs trade power for concurrency.
	line("#8  L1D: %s %.2f mW → %s %.2f mW (same size on the larger cores: the delta is ports+MSHRs); see BenchmarkAblationMSHR",
		first, mean(first, boom.CompDCache), last, mean(last, boom.CompDCache))

	return sb.String()
}

// pickMeasured prefers want if it was measured on cfg, otherwise the first
// measured workload, otherwise "".
func pickMeasured(sw *core.Sweep, cfg string, names []string, want string) string {
	for _, n := range names {
		if n == want && resultOf(sw, cfg, n) != nil {
			return n
		}
	}
	for _, n := range names {
		if resultOf(sw, cfg, n) != nil {
			return n
		}
	}
	return ""
}
