// Package report renders the paper's tables and figures from sweep results:
// aligned text tables for terminals and CSV for downstream plotting. Each
// Table*/Fig* function regenerates the corresponding artifact of the
// paper's evaluation section.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/boom"
	"repro/internal/core"
)

// Table is one renderable table/figure data set.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := len(t.Headers) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	write(t.Headers)
	for _, row := range t.Rows {
		write(row)
	}
	return sb.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// failedCell marks a (workload, config) pair that a keep-going sweep could
// not measure: the row survives, the number does not.
const failedCell = "FAILED"

// resultOf returns the result for (config, workload), nil when that pair
// failed (or was never run) in a partial sweep.
func resultOf(sw *core.Sweep, cfg, name string) *core.Result {
	return sw.Results[cfg][name]
}

// presentCount returns how many of names have a result under cfg — the
// divisor for suite means, so complete sweeps keep their exact arithmetic
// and partial sweeps average over what was actually measured.
func presentCount(sw *core.Sweep, cfg string, names []string) int {
	n := 0
	for _, name := range names {
		if resultOf(sw, cfg, name) != nil {
			n++
		}
	}
	return n
}

// orderedWorkloads returns the sweep's workloads in Table II order. The
// requested campaign (Sweep.Names) is authoritative when recorded, so
// workloads that failed to profile still get their FAILED rows; older
// serialized sweeps fall back to the profiled set.
func orderedWorkloads(sw *core.Sweep) []string {
	var names []string
	if len(sw.Names) > 0 {
		names = append(names, sw.Names...)
	} else {
		for n := range sw.Profiles {
			names = append(names, n)
		}
	}
	order := map[string]int{}
	for i, n := range []string{"basicmath", "stringsearch", "fft", "ifft",
		"bitcount", "qsort", "dijkstra", "patricia", "matmult", "sha", "tarfind"} {
		order[n] = i
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		if iok && jok {
			return oi < oj
		}
		if iok != jok {
			return iok
		}
		return names[i] < names[j]
	})
	return names
}

func configNames(sw *core.Sweep) []string {
	var out []string
	for _, c := range []string{"MediumBOOM", "LargeBOOM", "MegaBOOM"} {
		if _, ok := sw.Results[c]; ok {
			out = append(out, c)
		}
	}
	for c := range sw.Results {
		found := false
		for _, k := range out {
			if k == c {
				found = true
			}
		}
		if !found {
			out = append(out, c)
		}
	}
	return out
}

// TableI renders the three BOOM design points.
func TableI(configs []boom.Config) *Table {
	t := &Table{
		Title:   "Table I — BOOM configurations",
		Headers: []string{"Parameter"},
	}
	for _, c := range configs {
		t.Headers = append(t.Headers, c.Name)
	}
	row := func(name string, get func(boom.Config) string) {
		r := []string{name}
		for _, c := range configs {
			r = append(r, get(c))
		}
		t.Rows = append(t.Rows, r)
	}
	row("Fetch/decode width", func(c boom.Config) string {
		return fmt.Sprintf("%d/%d", c.FetchWidth, c.DecodeWidth)
	})
	row("Fetch buffer entries", func(c boom.Config) string { return fmt.Sprint(c.FetchBufferEntries) })
	row("ROB entries", func(c boom.Config) string { return fmt.Sprint(c.RobEntries) })
	row("Int/FP physical registers", func(c boom.Config) string {
		return fmt.Sprintf("%d/%d", c.IntPhysRegs, c.FpPhysRegs)
	})
	row("Int RF read/write ports", func(c boom.Config) string {
		return fmt.Sprintf("%d/%d", c.IntRFReadPorts, c.IntRFWritePorts)
	})
	row("Issue slots (mem/int/FP)", func(c boom.Config) string {
		return fmt.Sprintf("%d/%d/%d", c.MemIssueSlots, c.IntIssueSlots, c.FpIssueSlots)
	})
	row("Memory execution units", func(c boom.Config) string { return fmt.Sprint(c.MemIssueWidth) })
	row("L1D (KiB/ways/MSHRs)", func(c boom.Config) string {
		return fmt.Sprintf("%d/%d/%d", c.DCacheKiB, c.DCacheWays, c.DCacheMSHRs)
	})
	row("L1I (KiB/ways)", func(c boom.Config) string {
		return fmt.Sprintf("%d/%d", c.ICacheKiB, c.ICacheWays)
	})
	row("BTB entries", func(c boom.Config) string { return fmt.Sprint(c.BTBEntries) })
	row("TAGE tables × entries", func(c boom.Config) string {
		return fmt.Sprintf("%d×%d", c.TageTables, c.TageEntries)
	})
	row("LDQ/STQ entries", func(c boom.Config) string {
		return fmt.Sprintf("%d/%d", c.LdqEntries, c.StqEntries)
	})
	row("Clock (MHz)", func(c boom.Config) string { return fmt.Sprintf("%.0f", c.ClockMHz) })
	return t
}

// TableII renders per-benchmark instructions, interval size and simpoint
// counts.
func TableII(sw *core.Sweep) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Table II — benchmark instructions, interval & #SimPoints (%s scale)", sw.Scale),
		Headers: []string{"Benchmark", "Suite", "Interval", "#SimPoints", "Coverage", "Instructions"},
	}
	for _, name := range orderedWorkloads(sw) {
		p := sw.Profiles[name]
		if p == nil {
			t.Rows = append(t.Rows, []string{
				name, failedCell, failedCell, failedCell, failedCell, failedCell,
			})
			continue
		}
		t.Rows = append(t.Rows, []string{
			name, p.Workload.Suite,
			fmt.Sprint(p.Workload.IntervalSize),
			fmt.Sprint(p.NumSimPoints()),
			fmt.Sprintf("%.0f%%", 100*p.Selection.Coverage),
			fmt.Sprint(p.TotalInsts),
		})
	}
	return t
}

// FigComponentPower renders Figs. 5/6/7: per-component power (mW) for every
// workload on one configuration.
func FigComponentPower(sw *core.Sweep, configName string) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 5/6/7 — per-component power (mW), %s", configName),
		Headers: []string{"Component"},
	}
	names := orderedWorkloads(sw)
	t.Headers = append(t.Headers, names...)
	t.Headers = append(t.Headers, "Mean")
	present := presentCount(sw, configName, names)
	for _, comp := range boom.AnalyzedComponents() {
		row := []string{comp.String()}
		var mean float64
		for _, n := range names {
			r := resultOf(sw, configName, n)
			if r == nil {
				row = append(row, failedCell)
				continue
			}
			v := r.Power.Comp[comp].TotalMW()
			row = append(row, f2(v))
			mean += v / float64(present)
		}
		row = append(row, f2(mean))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// FigSlotPower renders Fig. 8: per-integer-issue-slot power for chosen
// workloads on one configuration.
func FigSlotPower(sw *core.Sweep, configName string, names ...string) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 8 — power per integer issue slot (mW), %s", configName),
		Headers: []string{"Slot"},
	}
	t.Headers = append(t.Headers, names...)
	slots := 0
	for _, n := range names {
		if r := resultOf(sw, configName, n); r != nil {
			slots = len(r.Slots)
			break
		}
	}
	for s := 0; s < slots; s++ {
		row := []string{fmt.Sprint(s)}
		for _, n := range names {
			r := resultOf(sw, configName, n)
			if r == nil {
				row = append(row, failedCell)
				continue
			}
			row = append(row, fmt.Sprintf("%.4f", r.Slots[s]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// FigContribution renders Fig. 9: the 13 analyzed components' share of
// tile power per configuration.
func FigContribution(sw *core.Sweep) *Table {
	t := &Table{
		Title:   "Fig. 9 — analyzed components' share of tile power",
		Headers: []string{"Config", "Analyzed mW", "Tile mW", "Share"},
	}
	for _, cfg := range configNames(sw) {
		var analyzed, total float64
		names := orderedWorkloads(sw)
		present := presentCount(sw, cfg, names)
		if present == 0 {
			t.Rows = append(t.Rows, []string{cfg, failedCell, failedCell, failedCell})
			continue
		}
		for _, n := range names {
			r := resultOf(sw, cfg, n)
			if r == nil {
				continue
			}
			analyzed += r.Power.AnalyzedMW() / float64(present)
			total += r.Power.TotalMW() / float64(present)
		}
		t.Rows = append(t.Rows, []string{
			cfg, f2(analyzed), f2(total), fmt.Sprintf("%.0f%%", 100*analyzed/total),
		})
	}
	return t
}

// FigIPC renders Fig. 10: IPC per benchmark per configuration.
func FigIPC(sw *core.Sweep) *Table {
	t := &Table{
		Title:   "Fig. 10 — IPC per benchmark",
		Headers: []string{"Benchmark"},
	}
	cfgs := configNames(sw)
	t.Headers = append(t.Headers, cfgs...)
	for _, n := range orderedWorkloads(sw) {
		row := []string{n}
		for _, cfg := range cfgs {
			if r := resultOf(sw, cfg, n); r != nil {
				row = append(row, f2(r.IPC()))
			} else {
				row = append(row, failedCell)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// FigPerfPerWatt renders Fig. 11: IPC per watt per benchmark per config.
func FigPerfPerWatt(sw *core.Sweep) *Table {
	t := &Table{
		Title:   "Fig. 11 — performance per watt (IPC/W)",
		Headers: []string{"Benchmark"},
	}
	cfgs := configNames(sw)
	t.Headers = append(t.Headers, cfgs...)
	t.Headers = append(t.Headers, "Best")
	for _, n := range orderedWorkloads(sw) {
		row := []string{n}
		best, bestV := "", 0.0
		for _, cfg := range cfgs {
			r := resultOf(sw, cfg, n)
			if r == nil {
				row = append(row, failedCell)
				continue
			}
			v := r.PerfPerWatt()
			row = append(row, fmt.Sprintf("%.0f", v))
			if v > bestV {
				best, bestV = cfg, v
			}
		}
		row = append(row, best)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SpeedupTable summarizes the SimPoint simulation-cost saving.
func SpeedupTable(sw *core.Sweep) *Table {
	t := &Table{
		Title:   "SimPoint speedup — detailed-model instructions avoided",
		Headers: []string{"Benchmark", "Full insts", "Simulated insts", "Reduction"},
	}
	var full, det uint64
	for _, n := range orderedWorkloads(sw) {
		var wf, wd uint64
		for _, cfg := range configNames(sw) {
			r := resultOf(sw, cfg, n)
			if r == nil {
				continue
			}
			wf += r.TotalInsts
			wd += r.DetailedInsts
		}
		if wd == 0 {
			t.Rows = append(t.Rows, []string{n, failedCell, failedCell, failedCell})
			continue
		}
		full += wf
		det += wd
		t.Rows = append(t.Rows, []string{
			n, fmt.Sprint(wf), fmt.Sprint(wd), fmt.Sprintf("%.1f×", float64(wf)/float64(wd)),
		})
	}
	if det > 0 {
		t.Rows = append(t.Rows, []string{
			"TOTAL", fmt.Sprint(full), fmt.Sprint(det), fmt.Sprintf("%.1f×", float64(full)/float64(det)),
		})
	}
	// Measured wall-clock speedup (flow profiling + detailed measurement vs
	// an estimated full detailed simulation at the measured per-instruction
	// cost) — the time-based evidence behind the instruction-count ratio.
	if rep := sw.SpeedupOf(); rep.WallSpeedup() > 0 {
		t.Rows = append(t.Rows, []string{
			"TOTAL wall-clock",
			fmt.Sprintf("%.0f ms (est. full)", float64(rep.EstFullWallNS())/1e6),
			fmt.Sprintf("%.0f ms (measured)", float64(rep.FlowWallNS())/1e6),
			fmt.Sprintf("%.1f×", rep.WallSpeedup()),
		})
	}
	return t
}

// PhaseProfile renders the per-simulation-point view of one workload on one
// configuration: the phase-level IPC/power breakdown the SimPoint
// methodology provides for free.
func PhaseProfile(sw *core.Sweep, configName, workload string) *Table {
	r := resultOf(sw, configName, workload)
	if r == nil {
		return &Table{
			Title:   fmt.Sprintf("Phase profile — %s on %s", workload, configName),
			Headers: []string{"Point", "Interval", "Weight", "IPC", "Power mW"},
			Rows:    [][]string{{failedCell, failedCell, failedCell, failedCell, failedCell}},
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("Phase profile — %s on %s (%d points, %.0f%% coverage)", workload, configName, r.NumPoints, 100*r.Coverage),
		Headers: []string{"Point", "Interval", "Weight", "IPC", "Power mW"},
	}
	for i, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(i + 1),
			fmt.Sprint(p.Interval),
			fmt.Sprintf("%.3f", p.Weight),
			f2(p.IPC),
			f2(p.PowerMW),
		})
	}
	return t
}

// PowerSources renders the §II-E decomposition: tile power per configuration
// split into leakage, internal and switching power (suite averages).
func PowerSources(sw *core.Sweep) *Table {
	t := &Table{
		Title:   "Power by dissipation source (§II-E), suite averages",
		Headers: []string{"Config", "Leakage mW", "Internal mW", "Switching mW", "Total mW"},
	}
	names := orderedWorkloads(sw)
	for _, cfg := range configNames(sw) {
		present := presentCount(sw, cfg, names)
		if present == 0 {
			t.Rows = append(t.Rows, []string{cfg, failedCell, failedCell, failedCell, failedCell})
			continue
		}
		var leak, internal, switching float64
		for _, n := range names {
			r := resultOf(sw, cfg, n)
			if r == nil {
				continue
			}
			for c := boom.Component(0); c < boom.NumComponents; c++ {
				b := r.Power.Comp[c]
				leak += b.LeakageMW / float64(present)
				internal += b.InternalMW / float64(present)
				switching += b.SwitchingMW / float64(present)
			}
		}
		t.Rows = append(t.Rows, []string{
			cfg, f2(leak), f2(internal), f2(switching), f2(leak + internal + switching),
		})
	}
	return t
}
