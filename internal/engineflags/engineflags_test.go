package engineflags

import (
	"bytes"
	"flag"
	"io"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// parse registers the shared flags (plus metrics) on a throwaway FlagSet
// and parses args, failing the test on a parse error.
func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	f := Register(fs)
	f.RegisterMetrics(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %q: %v", args, err)
	}
	return f
}

// TestValidateRejections: every invalid combination must fail with an
// error that names the offending flag — not be clamped or ignored.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		args []string
		want string // substring of the error
	}{
		{[]string{"-j", "0"}, "-j 0"},
		{[]string{"-j", "-4"}, "-j -4"},
		{[]string{"-point-j", "-1"}, "-point-j"},
		{[]string{"-retries", "-1"}, "-retries"},
		{[]string{"-stage-timeout", "-1s"}, "-stage-timeout"},
		{[]string{"-cache-verify"}, "-cache-verify requires -cache"},
		{[]string{"-resume"}, "-resume requires -cache"},
		{[]string{"-chaos", "not-a-plan"}, "-chaos"},
		{[]string{"-metrics", "xml"}, "-metrics"},
		{[]string{"-remote-store", "http://store:9000"}, "-remote-store requires -cache"},
		{[]string{"-remote-connect-timeout", "-1s"}, "-remote-connect-timeout"},
		{[]string{"-remote-timeout", "0s"}, "-remote-timeout"},
	}
	for _, tc := range cases {
		f := parse(t, tc.args...)
		err := f.Validate()
		if err == nil {
			t.Errorf("%q: Validate accepted invalid flags", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not mention %q", tc.args, err, tc.want)
		}
		if _, err := f.Options(); err == nil {
			t.Errorf("%q: Options must propagate the validation error", tc.args)
		}
	}
}

// TestDefaultJobsValid: -j defaults to 0 meaning "all cores"; only an
// explicitly passed non-positive value is an error.
func TestDefaultJobsValid(t *testing.T) {
	f := parse(t)
	if err := f.Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
	opts, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 0 {
		t.Errorf("defaults built %d options, want none", len(opts))
	}
}

// TestOptionsBuilt: every set flag must contribute its engine option.
func TestOptionsBuilt(t *testing.T) {
	f := parse(t,
		"-j", "2", "-point-j", "2", "-cache", t.TempDir(), "-cache-verify", "-resume",
		"-retries", "3", "-keep-going", "-stage-timeout", "5s",
		"-chaos", "7:core.measure/sha/*=error",
		"-remote-store", "http://store:9000")
	opts, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	// parallelism, point parallelism, cache, cache-verify, keep-going,
	// resume, retry, stage-timeout, fault injector, remote store
	if len(opts) != 10 {
		t.Errorf("built %d options, want 10", len(opts))
	}
}

// TestRemoteClient: the remote-tier client carries the split
// connect/response timeouts (no overall timeout — long polls must
// survive), and a -chaos plan arms the network boundary by wrapping the
// transport in a faultinject.Transport with the caller's peer scope.
func TestRemoteClient(t *testing.T) {
	f := parse(t, "-remote-connect-timeout", "1s", "-remote-timeout", "2s")
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	hc := f.RemoteClient("")
	if hc.Timeout != 0 {
		t.Errorf("overall client timeout %s; must be 0 so long polls survive", hc.Timeout)
	}
	if _, ok := hc.Transport.(*faultinject.Transport); ok {
		t.Error("transport chaos-wrapped without a -chaos plan")
	}

	f = parse(t, "-chaos", "7:fabric.report/w-1=error")
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, ok := f.RemoteClient("w-1").Transport.(*faultinject.Transport)
	if !ok {
		t.Fatal("a -chaos plan must wrap the remote client in a faultinject.Transport")
	}
	if tr.Peer != "w-1" || tr.Injector != f.Injector() {
		t.Errorf("transport wiring: peer %q injector match %v", tr.Peer, tr.Injector == f.Injector())
	}
}

// TestMetricsRegistry: a registry exists exactly when -metrics is set, and
// EmitMetrics honors the mode and the stdout destination.
func TestMetricsRegistry(t *testing.T) {
	if f := parse(t); f.MetricsRegistry() != nil {
		t.Error("registry without -metrics")
	}

	f := parse(t, "-metrics", "json")
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	reg := f.MetricsRegistry()
	if reg == nil {
		t.Fatal("no registry with -metrics json")
	}
	var buf bytes.Buffer
	if err := f.EmitMetrics(reg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(buf.String()), "{") {
		t.Errorf("json mode emitted %q", buf.String())
	}

	if err := f.EmitMetrics(nil, &buf); err != nil {
		t.Errorf("nil registry must be a no-op, got %v", err)
	}
}
