// Package engineflags declares the sweep-engine command-line surface shared
// by every binary that drives the flow (cmd/boomflow, cmd/tables,
// cmd/boomd): caching, crash-resume, supervision, fault injection,
// parallelism, and metrics emission. A new engine option is declared here
// once and every binary picks it up in lockstep instead of each cmd
// re-wiring (and drifting on) its own copy.
//
// Usage:
//
//	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
//	ef := engineflags.Register(fs)
//	ef.RegisterMetrics(fs) // only tools that render a metrics registry
//	fs.Parse(args)
//	opts, err := ef.Options() // validated []core.Option
//
// Validation is strict: values that would silently misbehave (a
// non-positive -j, -cache-verify without a cache directory, a malformed
// -chaos plan) are rejected with a clear error instead of being clamped or
// ignored.
package engineflags

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/sampling"
)

// Flags holds the parsed engine flag values. Fields are exported so
// daemons that thread them into their own config (cmd/boomd → serve.Config)
// can read them directly after Validate.
type Flags struct {
	CacheDir     string
	CacheVerify  bool
	Resume       bool
	Retries      int
	KeepGoing    bool
	StageTimeout time.Duration
	Chaos        string
	Jobs         int
	// PointJobs caps intra-cell simulation-point parallelism (-point-j).
	// 0 shares the -j budget (the default; see core.WithPointParallelism),
	// 1 forces serial point measurement, n > 1 caps helpers per cell.
	PointJobs   int
	RemoteStore string
	// RemoteConnect bounds dialing the remote store / coordinator;
	// RemoteTimeout bounds the wait for response headers per RPC. The two
	// are split deliberately: a single overall client timeout would also
	// cap long polls and large artifact transfers.
	RemoteConnect time.Duration
	RemoteTimeout time.Duration

	// Sampling-spec flags (-interval, -features, -sp-dims, -sp-maxk,
	// -warmup). All zero/empty = the legacy flow; Validate folds them into
	// the spec returned by Sampling.
	Interval int64
	Features string
	SPDims   int
	SPMaxK   int
	Warmup   string

	MetricsMode string // "", "text", "json" (set only if RegisterMetrics)
	MetricsOut  string

	fs         *flag.FlagSet
	hasMetrics bool
	injector   *faultinject.Injector
	sspec      sampling.Spec
}

// RetryBackoff is the base backoff between transient-fault retries used by
// every binary (kept identical so sweep timing is comparable across tools).
const RetryBackoff = 10 * time.Millisecond

// Register declares the shared engine flags on fs and returns the value
// holder. Call Validate (or Options, which validates) after fs.Parse.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{fs: fs}
	fs.StringVar(&f.CacheDir, "cache", "", "artifact cache directory (empty = no caching)")
	fs.BoolVar(&f.CacheVerify, "cache-verify", false, "recompute every cache hit and fail on divergence")
	fs.BoolVar(&f.Resume, "resume", false, "replay the sweep journal under -cache and rerun only unfinished tasks")
	fs.IntVar(&f.Retries, "retries", 0, "retries per sweep task on transient faults")
	fs.BoolVar(&f.KeepGoing, "keep-going", false, "run every (workload, config) pair despite failures instead of aborting")
	fs.DurationVar(&f.StageTimeout, "stage-timeout", 0, "watchdog deadline per pipeline stage (0 = none)")
	fs.StringVar(&f.Chaos, "chaos", "", "deterministic fault-injection plan SEED:SPEC, e.g. 7:core.measure/sha/*=error (see internal/faultinject)")
	fs.IntVar(&f.Jobs, "j", 0, "sweep parallelism (0 = all cores); results are bit-identical at any level")
	fs.IntVar(&f.PointJobs, "point-j", 0, "simulation points measured concurrently within one cell (0 = share the -j budget, 1 = serial); results are bit-identical at any level")
	fs.StringVar(&f.RemoteStore, "remote-store", "", "base URL of a remote artifact store used as a read-through tier over -cache")
	fs.DurationVar(&f.RemoteConnect, "remote-connect-timeout", 5*time.Second, "dial timeout for remote-store/coordinator RPCs")
	fs.DurationVar(&f.RemoteTimeout, "remote-timeout", 60*time.Second, "response-header timeout per remote RPC (not an overall cap; long polls and large transfers may run longer)")
	fs.Int64Var(&f.Interval, "interval", 0, "sampling interval in instructions (0 = per-workload default)")
	fs.StringVar(&f.Features, "features", "", "SimPoint clustering features: bbv|bbv+mav (empty = bbv)")
	fs.IntVar(&f.SPDims, "sp-dims", 0, "SimPoint projection dimensions (0 = flow default)")
	fs.IntVar(&f.SPMaxK, "sp-maxk", 0, "SimPoint cluster-count ceiling (0 = flow default)")
	fs.StringVar(&f.Warmup, "warmup", "", "warm-up before each measured SimPoint: none, an instruction count, or a factor like 5x (empty = flow default)")
	return f
}

// RegisterMetrics additionally declares -metrics/-metrics-out for tools
// that render a metrics registry after their report.
func (f *Flags) RegisterMetrics(fs *flag.FlagSet) {
	f.hasMetrics = true
	fs.StringVar(&f.MetricsMode, "metrics", "", "emit flow metrics after the report: text|json")
	fs.StringVar(&f.MetricsOut, "metrics-out", "-", "metrics destination (- = stdout)")
}

// Validate checks cross-flag consistency and value ranges. It must run
// after fs.Parse. Errors name the offending flag.
func (f *Flags) Validate() error {
	explicitJobs := false
	f.fs.Visit(func(fl *flag.Flag) {
		if fl.Name == "j" {
			explicitJobs = true
		}
	})
	if explicitJobs && f.Jobs <= 0 {
		return fmt.Errorf("-j %d: parallelism must be ≥ 1 (omit -j to use all cores)", f.Jobs)
	}
	if f.PointJobs < 0 {
		return fmt.Errorf("-point-j %d: must be ≥ 0 (0 shares the -j budget)", f.PointJobs)
	}
	if f.Retries < 0 {
		return fmt.Errorf("-retries %d: must be ≥ 0", f.Retries)
	}
	if f.StageTimeout < 0 {
		return fmt.Errorf("-stage-timeout %s: must be ≥ 0", f.StageTimeout)
	}
	if f.RemoteConnect <= 0 {
		return fmt.Errorf("-remote-connect-timeout %s: must be > 0", f.RemoteConnect)
	}
	if f.RemoteTimeout <= 0 {
		return fmt.Errorf("-remote-timeout %s: must be > 0", f.RemoteTimeout)
	}
	if f.CacheDir == "" {
		if f.CacheVerify {
			return fmt.Errorf("-cache-verify requires -cache DIR")
		}
		if f.Resume {
			return fmt.Errorf("-resume requires -cache DIR (the journal lives there)")
		}
		if f.RemoteStore != "" {
			return fmt.Errorf("-remote-store requires -cache DIR (the local read-through tier)")
		}
	}
	if f.Chaos != "" {
		inj, err := faultinject.Parse(f.Chaos)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		f.injector = inj
	}
	policy, insts, factor, err := sampling.ParseWarmup(f.Warmup)
	if err != nil {
		return fmt.Errorf("-warmup: %w", err)
	}
	f.sspec = sampling.Spec{
		Interval:     f.Interval,
		Features:     f.Features,
		Dims:         f.SPDims,
		MaxK:         f.SPMaxK,
		WarmupPolicy: policy,
		WarmupInsts:  insts,
		WarmupFactor: factor,
	}
	if err := f.sspec.Validate(); err != nil {
		return err
	}
	if f.hasMetrics {
		switch f.MetricsMode {
		case "", "text", "json":
		default:
			return fmt.Errorf("unknown -metrics mode %q (text|json)", f.MetricsMode)
		}
	}
	return nil
}

// Options validates the flags and builds the corresponding engine options.
// Metrics are not included — callers that want instrumentation append
// core.WithMetrics with the registry from MetricsRegistry, so they keep the
// handle for rendering.
func (f *Flags) Options() ([]core.Option, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var opts []core.Option
	if f.Jobs > 0 {
		opts = append(opts, core.WithParallelism(f.Jobs))
	}
	if f.PointJobs > 0 {
		opts = append(opts, core.WithPointParallelism(f.PointJobs))
	}
	if f.CacheDir != "" {
		opts = append(opts, core.WithCache(f.CacheDir), core.WithCacheVerify(f.CacheVerify))
	}
	if f.RemoteStore != "" {
		opts = append(opts, core.WithRemoteStore(artifact.NewRemote(f.RemoteStore, f.RemoteClient(""))))
	}
	if f.KeepGoing {
		opts = append(opts, core.WithKeepGoing(true))
	}
	if f.Resume {
		opts = append(opts, core.WithResume(true))
	}
	if f.Retries > 0 {
		opts = append(opts, core.WithRetry(f.Retries, RetryBackoff))
	}
	if f.StageTimeout > 0 {
		opts = append(opts, core.WithStageTimeout(f.StageTimeout))
	}
	if f.injector != nil {
		opts = append(opts, core.WithFaultInjector(f.injector))
	}
	if !f.sspec.IsZero() {
		opts = append(opts, core.WithSampling(f.sspec))
	}
	return opts, nil
}

// Sampling returns the spec assembled from -interval/-features/-sp-dims/
// -sp-maxk/-warmup (the zero spec when none were set). Call after
// Validate. Daemons thread it into their own defaults (cmd/boomd →
// serve.Config.Sampling); sweep CLIs stamp it on the campaign so it
// becomes part of the fingerprint.
func (f *Flags) Sampling() sampling.Spec { return f.sspec }

// RemoteClient builds the HTTP client every remote tier (remote store,
// fabric coordinator) should use: split connect/response-header timeouts
// from -remote-connect-timeout/-remote-timeout, with the -chaos plan's
// network-boundary sites armed via a faultinject.Transport when a plan is
// set. peer scopes per-node chaos rules (the fabric worker ID); leave it
// empty for unscoped clients. Call after Validate.
func (f *Flags) RemoteClient(peer string) *http.Client {
	hc := artifact.NewHTTPClient(f.RemoteConnect, f.RemoteTimeout)
	if f.injector != nil {
		hc = &http.Client{Transport: &faultinject.Transport{
			Injector: f.injector,
			Base:     hc.Transport,
			Peer:     peer,
		}}
	}
	return hc
}

// Injector returns the parsed -chaos plan (nil when unset). Call after
// Validate.
func (f *Flags) Injector() *faultinject.Injector { return f.injector }

// MetricsRegistry returns a fresh registry when -metrics was requested
// (after Validate), or nil when metrics are off.
func (f *Flags) MetricsRegistry() *metrics.Registry {
	if !f.hasMetrics || f.MetricsMode == "" {
		return nil
	}
	return metrics.NewRegistry()
}

// EmitMetrics renders reg per -metrics/-metrics-out. stdout is the tool's
// standard output (used when -metrics-out is "-" or empty).
func (f *Flags) EmitMetrics(reg *metrics.Registry, stdout io.Writer) error {
	if reg == nil {
		return nil
	}
	dst := stdout
	if f.MetricsOut != "-" && f.MetricsOut != "" {
		file, err := os.Create(f.MetricsOut)
		if err != nil {
			return err
		}
		defer file.Close()
		dst = file
	}
	if f.MetricsMode == "json" {
		return reg.WriteJSON(dst)
	}
	return reg.WriteText(dst)
}
