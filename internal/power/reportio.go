package power

import (
	"fmt"
	"io"

	"repro/internal/binio"
	"repro/internal/boom"
)

// Binary codec for Report, used by the artifact cache to persist the
// per-component power of a measurement. Canonical: same Report → same
// bytes, so -cache-verify can byte-compare cached power against a fresh
// estimation pass.

// reportMagic identifies the serialized Report format ("PWREPRT1").
const reportMagic = 0x50575245_50525431

// EncodeReport writes rep in the binary format read by DecodeReport.
func EncodeReport(w io.Writer, rep *Report) error {
	bw := binio.NewWriter(w)
	bw.U64(reportMagic)
	bw.Int(int(boom.NumComponents))
	for c := range rep.Comp {
		bw.F64(rep.Comp[c].LeakageMW)
		bw.F64(rep.Comp[c].InternalMW)
		bw.F64(rep.Comp[c].SwitchingMW)
	}
	return bw.Err()
}

// DecodeReport reads a Report in the format produced by EncodeReport.
func DecodeReport(r io.Reader) (*Report, error) {
	br := binio.NewReader(r)
	if m := br.U64(); br.Err() == nil && m != reportMagic {
		return nil, fmt.Errorf("power: bad report magic %#x", m)
	}
	if n := br.Int(); br.Err() == nil && n != int(boom.NumComponents) {
		return nil, fmt.Errorf("power: report has %d components, want %d", n, boom.NumComponents)
	}
	rep := &Report{}
	for c := range rep.Comp {
		rep.Comp[c].LeakageMW = br.F64()
		rep.Comp[c].InternalMW = br.F64()
		rep.Comp[c].SwitchingMW = br.F64()
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("power: decoding report: %w", err)
	}
	return rep, nil
}
