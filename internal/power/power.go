// Package power implements the RTL-style power-estimation flow that Cadence
// Joules provides in the paper: a design-mapping step builds a cell-level
// inventory (flip-flops, SRAM bits, CAM comparators, bypass fabric) for
// every microarchitectural component from the BOOM configuration, and an
// estimation step converts the timing model's activity counters — the
// architectural aggregation of an RTL toggle trace — into leakage, internal
// and switching power per component (§II-E of the paper).
//
// Coefficient provenance: the structural coefficients below were calibrated
// ONCE against the per-component averages the paper reports for MediumBOOM,
// LargeBOOM and MegaBOOM (Figs. 5–7; see calibrate_test.go for the targets
// and the regression that guards the calibration). Only per-component
// energy/area constants are fitted; cross-workload and cross-configuration
// variation is never fitted — it emerges from measured activity and from
// structure scaling (port counts, queue depths, cache geometry).
package power

import (
	"fmt"
	"math"

	"repro/internal/asap7"
	"repro/internal/boom"
	"repro/internal/metrics"
)

// Breakdown is the three-source power split of one component, in milliwatts
// (§II-E: leakage, internal, switching).
type Breakdown struct {
	LeakageMW   float64
	InternalMW  float64
	SwitchingMW float64
}

// TotalMW returns the component total.
func (b Breakdown) TotalMW() float64 { return b.LeakageMW + b.InternalMW + b.SwitchingMW }

// Report is the per-component power of one run.
type Report struct {
	Comp [boom.NumComponents]Breakdown
}

// TotalMW returns full-tile power.
func (r *Report) TotalMW() float64 {
	var t float64
	for _, b := range r.Comp {
		t += b.TotalMW()
	}
	return t
}

// AnalyzedMW returns the sum over the paper's 13 components (tile minus
// Other), the numerator of Fig. 9.
func (r *Report) AnalyzedMW() float64 {
	return r.TotalMW() - r.Comp[boom.CompOther].TotalMW()
}

// Estimator maps one BOOM design point onto the technology library. Create
// it once per configuration (the "design mapping"/synthesis step of Fig. 1
// in the paper), then Estimate any number of activity traces.
type Estimator struct {
	cfg     boom.Config
	lib     asap7.Library
	inv     [boom.NumComponents]inventory
	metrics *metrics.Registry // optional; nil disables instrumentation
}

// SetMetrics attaches an optional metrics registry: every Estimate call is
// counted and timed ("power.estimates", "power.estimate_ns"). A nil
// registry (the default) disables instrumentation.
func (e *Estimator) SetMetrics(reg *metrics.Registry) { e.metrics = reg }

// inventory is the mapped cell content of one component plus its calibrated
// per-event energies.
type inventory struct {
	flops    float64 // state flip-flops
	sramBits float64
	combGE   float64 // combinational gate-equivalents

	staticMW float64 // calibrated fabric static+clock power (bypass etc.)

	// Per-event energies in pJ.
	readPJ  float64
	writePJ float64
	camPJ   float64 // per CAMSearches unit (one entry compare)
	shiftPJ float64 // per Shifts unit
	occPJ   float64 // clock/data energy per occupied entry per cycle

	clkFrac float64 // fraction of flops clocked every cycle (ungated)
}

func (inv *inventory) leakMW(lib *asap7.Library) float64 {
	return (inv.flops*lib.FlopLeakNW+inv.sramBits*lib.SRAMLeakNWBit+
		inv.combGE*lib.CombLeakNWGE)*1e-6 + inv.staticMW
}

// Structural constants of the mapping (bits per entry etc.).
const (
	issueEntryBits = 76 // uop payload + two source tags + valid/ready
	robEntryBits   = 46
	fbEntryBits    = 52 // instruction word + predecode + PC fragment
	ldqEntryBits   = 64
	stqEntryBits   = 118 // address + data + state
	btbEntryBits   = 68
	tageEntryBits  = 13 // tag 10 + ctr 3 (useful bits in overhead)
	renameMapBits  = 7
	cacheTagBits   = 40
)

// Calibrated coefficients (see package comment). Units: pJ unless noted.
const (
	bpLookupPerSlotPJ = 0.245 // per fetch-width slot per predictor read
	bpGShareFactor    = 1.35  // narrower read path, but un-banked table
	bpUpdatePJ        = 3.2   // counter update + allocation traffic
	fbWritePJ         = 0.28  // instruction insert
	fbReadPJ          = 0.02  // mux readout
	fbOccPJ           = 0.005 // clock per occupied entry
	icWayEnergyCoef   = 19.0  // ways² term of a cache access (×SRAMReadPJBit)
	icBaseEnergyCoef  = 176.0
	dcWayEnergyCoef   = 42.8
	dcBaseEnergyCoef  = 1421.0
	dcPortFactor      = 0.9 // extra energy per additional memory unit
	dcMSHROccPJ       = 3.0 // miss-handling machinery per busy MSHR cycle
	renameReadPJ      = 0.10
	intRenameShiftPJ  = 0.098 // per snapshot-copied free-list bit
	fpRenameShiftPJ   = 0.088
	robOccCoefPJ      = 0.0042 // ×sqrt(entries), per occupied entry cycle
	robWritePJ        = 0.05
	// Wakeup CAMs precharge the match line of every VALID entry every
	// cycle, so scheduler power is occupancy-driven (the §IV-B mechanism
	// behind Fig. 8); broadcasts and collapse moves add smaller per-event
	// energies. Per-entry precharge energy grows with queue depth (wires).
	iqIntOccBasePJ    = 0.155 // int queue, per valid entry per cycle at 20 slots
	iqMemOccBasePJ    = 0.58  // wider entries (address + TLB tags)
	iqFpOccBasePJ     = 0.42
	iqBroadcastPJ     = 0.02     // per entry compare on a wakeup broadcast
	iqShiftPJ         = 0.02     // collapse move, per entry
	iqSizeExp         = 1.5      // match-line wire growth with queue depth
	rfIntFabricMW     = 1.646e-4 // ×(R·W)^2.4 static bypass fabric
	rfIntFabricExp    = 2.4
	rfFpFabricMW      = 1.9e-4 // ×(R·W)^3.0
	rfFpFabricExp     = 3.0
	rfAccessPJ        = 0.05
	lsuOccBasePJ      = 0.19 // ×(entries/32)^0.55
	lsuCAMPJ          = 0.1
	otherStaticBaseMW = 0.5
	otherStaticPerWMW = 0.675 // per decode-width unit
	otherDecodePJ     = 1.05  // per decoded instruction
)

// NewEstimator performs the design-mapping step for cfg.
func NewEstimator(cfg boom.Config, lib asap7.Library) *Estimator {
	e := &Estimator{cfg: cfg, lib: lib}
	c := &cfg
	set := func(comp boom.Component, inv inventory) { e.inv[comp] = inv }

	// --- Branch predictor: direction tables + BTB + RAS ---
	// The per-lookup energy is dominated by the superscalar read path: the
	// tables are banked per fetch slot, so energy scales with fetch width.
	perLookup := bpLookupPerSlotPJ * float64(c.FetchWidth)
	var predBits float64
	if c.Predictor == boom.PredictorTAGE {
		predBits = float64(c.TageTables)*float64(c.TageEntries)*tageEntryBits + 2048*2
	} else {
		predBits = float64(c.GShareEntries) * 2
		perLookup *= bpGShareFactor
	}
	set(boom.CompBranchPredictor, inventory{
		flops:    float64(c.RASEntries) * 64,
		sramBits: predBits + float64(c.BTBEntries)*btbEntryBits,
		combGE:   900,
		readPJ:   perLookup,
		writePJ:  bpUpdatePJ,
		clkFrac:  0.15,
	})

	// --- Fetch buffer ---
	set(boom.CompFetchBuffer, inventory{
		flops:   float64(c.FetchBufferEntries) * fbEntryBits,
		combGE:  float64(c.FetchWidth) * 60,
		readPJ:  fbReadPJ,
		writePJ: fbWritePJ,
		occPJ:   fbOccPJ,
		clkFrac: 0.02,
	})

	// --- Caches ---
	set(boom.CompICache, inventory{
		sramBits: float64(c.ICacheKiB)*8192 + float64(c.ICacheKiB)*1024/float64(c.LineBytes)*cacheTagBits,
		readPJ:   (float64(c.ICacheWays*c.ICacheWays)*icWayEnergyCoef + icBaseEnergyCoef) * lib.SRAMReadPJBit,
		clkFrac:  0.01,
	})
	dcAccess := (float64(c.DCacheWays*c.DCacheWays)*dcWayEnergyCoef + dcBaseEnergyCoef) *
		lib.SRAMReadPJBit * (1 + dcPortFactor*float64(c.MemIssueWidth-1))
	set(boom.CompDCache, inventory{
		flops:    float64(c.DCacheMSHRs) * 260,
		sramBits: float64(c.DCacheKiB)*8192 + float64(c.DCacheKiB)*1024/float64(c.LineBytes)*cacheTagBits,
		combGE:   float64(c.MemIssueWidth) * 700,
		readPJ:   dcAccess,
		writePJ:  dcAccess * 1.3,
		occPJ:    dcMSHROccPJ,
		clkFrac:  0.01,
	})

	// --- Rename units ---
	// The dominant cost is the per-branch snapshot copy of the allocation
	// list (Key Takeaway #3); Shifts count the copied bits.
	renameInv := func(shiftPJ float64, physRegs int) inventory {
		return inventory{
			flops:   32*renameMapBits + float64(physRegs)*13,
			combGE:  float64(c.DecodeWidth) * 220,
			readPJ:  renameReadPJ,
			writePJ: renameReadPJ,
			shiftPJ: shiftPJ,
			clkFrac: 0.02,
		}
	}
	set(boom.CompIntRename, renameInv(intRenameShiftPJ, c.IntPhysRegs))
	set(boom.CompFpRename, renameInv(fpRenameShiftPJ, c.FpPhysRegs))

	// --- ROB ---
	// Row energy grows with array size (banked bitlines ⇒ √entries).
	set(boom.CompRob, inventory{
		flops:   float64(c.RobEntries) * robEntryBits,
		combGE:  float64(c.RetireWidth) * 180,
		writePJ: robWritePJ,
		occPJ:   robOccCoefPJ * math.Sqrt(float64(c.RobEntries)),
		clkFrac: 0.005,
	})

	// --- Distributed scheduler queues (collapsing) ---
	// Per-valid-entry match-line precharge dominates; energy per entry
	// grows with (slots/20)^iqSizeExp (Key Takeaways #4/#5).
	szf := func(slots int) float64 { return math.Pow(float64(slots)/20.0, iqSizeExp) }
	iqInv := func(slots, width int, occBase float64) inventory {
		return inventory{
			flops:   float64(slots) * issueEntryBits,
			combGE:  float64(width*slots) * 9,
			occPJ:   occBase * szf(slots),
			camPJ:   iqBroadcastPJ,
			shiftPJ: iqShiftPJ,
			clkFrac: 0.01,
		}
	}
	set(boom.CompIntIssue, iqInv(c.IntIssueSlots, c.IntIssueWidth, iqIntOccBasePJ))
	set(boom.CompMemIssue, iqInv(c.MemIssueSlots, c.MemIssueWidth, iqMemOccBasePJ))
	set(boom.CompFpIssue, iqInv(c.FpIssueSlots, c.FpIssueWidth, iqFpOccBasePJ))

	// --- Register files with bypass networks ---
	// Fabric static power grows super-linearly with port product — the
	// non-linearity Key Takeaways #1/#2 attribute the Mega RF power to.
	rfInv := func(regs, r, w int, fabricMW, exp float64) inventory {
		return inventory{
			flops:    float64(regs) * 64,
			staticMW: fabricMW * math.Pow(float64(r*w), exp),
			readPJ:   rfAccessPJ,
			writePJ:  rfAccessPJ,
			clkFrac:  0.001,
		}
	}
	set(boom.CompIntRF, rfInv(c.IntPhysRegs, c.IntRFReadPorts, c.IntRFWritePorts, rfIntFabricMW, rfIntFabricExp))
	set(boom.CompFpRF, rfInv(c.FpPhysRegs, c.FpRFReadPorts, c.FpRFWritePorts, rfFpFabricMW, rfFpFabricExp))

	// --- LSU (LDQ + STQ + disambiguation CAMs) ---
	lsuEntries := float64(c.LdqEntries + c.StqEntries)
	set(boom.CompLSU, inventory{
		flops:   float64(c.LdqEntries)*ldqEntryBits + float64(c.StqEntries)*stqEntryBits,
		combGE:  float64(c.MemIssueWidth) * 500,
		camPJ:   lsuCAMPJ,
		occPJ:   lsuOccBasePJ * math.Pow(lsuEntries/32.0, 0.75),
		clkFrac: 0.01,
	})

	// --- Other: decode, execution units, FTQ, PC logic, CSR, ... ---
	set(boom.CompOther, inventory{
		flops:    float64(c.DecodeWidth)*900 + 2600,
		combGE:   float64(c.DecodeWidth)*4200 + 9000,
		staticMW: otherStaticBaseMW + otherStaticPerWMW*float64(c.DecodeWidth),
		readPJ:   otherDecodePJ, // charged per decoded instruction
		clkFrac:  0.0,
	})

	return e
}

// Config returns the mapped configuration.
func (e *Estimator) Config() boom.Config { return e.cfg }

// Library returns the technology library in use.
func (e *Estimator) Library() asap7.Library { return e.lib }

// Estimate converts a run's activity into per-component power. stats.Cycles
// must be non-zero. Allocates the Report; the accumulation hot path
// (per-simpoint estimation inside a sweep) uses EstimateInto with a
// reused Report instead.
func (e *Estimator) Estimate(stats *boom.Stats) (*Report, error) {
	rep := &Report{}
	if err := e.EstimateInto(rep, stats); err != nil {
		return nil, err
	}
	return rep, nil
}

// EstimateInto is Estimate writing into a caller-owned Report — the
// allocation-free form. Every component is overwritten, so a reused
// Report never leaks a previous run's values. The numeric path is
// identical to Estimate's: reuse changes where the result lives, never
// what it is.
func (e *Estimator) EstimateInto(rep *Report, stats *boom.Stats) error {
	if e.metrics != nil {
		e.metrics.Counter("power.estimates").Inc()
		defer e.metrics.Time("power.estimate_ns")()
	}
	if stats.Cycles == 0 {
		return fmt.Errorf("power: zero-cycle stats")
	}
	cyc := float64(stats.Cycles)
	toMW := e.lib.MWPerPJPerCycle()
	for comp := boom.Component(0); comp < boom.NumComponents; comp++ {
		inv := &e.inv[comp]
		a := &stats.Comp[comp]
		var b Breakdown
		b.LeakageMW = inv.leakMW(&e.lib)
		// Internal: ungated clock load + per-occupied-entry clock + cell-
		// internal read/write energy.
		clockPJ := inv.flops*inv.clkFrac*e.lib.FlopClockPJ +
			float64(a.Occupancy)/cyc*inv.occPJ
		evInternal := (float64(a.Reads)*inv.readPJ + float64(a.Writes)*inv.writePJ) / cyc
		// Switching: net toggles (CAM match lines, collapse moves).
		evSwitching := (float64(a.CAMSearches)*inv.camPJ + float64(a.Shifts)*inv.shiftPJ) / cyc
		b.InternalMW = (clockPJ + evInternal) * toMW
		b.SwitchingMW = evSwitching * toMW
		if comp == boom.CompOther {
			b.SwitchingMW += e.execPJPerCycle(stats) * toMW
		}
		rep.Comp[comp] = b
	}
	return nil
}

// execPJPerCycle charges execution-unit energy (part of Other) from the
// per-class operation counts.
func (e *Estimator) execPJPerCycle(stats *boom.Stats) float64 {
	cyc := float64(stats.Cycles)
	var pj float64
	for class, n := range stats.ExecOps {
		if n == 0 {
			continue
		}
		var per float64
		switch class {
		case 0, 5, 6, 7: // ALU, branches, jumps
			per = e.lib.ALUOpPJ
		case 1: // mul
			per = e.lib.MulOpPJ
		case 2: // div
			per = e.lib.DivOpPJ
		case 3, 4: // loads/stores: AGU
			per = e.lib.AGUOpPJ
		case 8, 9, 10: // FP
			per = e.lib.FPOpPJ
		default:
			per = e.lib.ALUOpPJ
		}
		pj += float64(n) * per
	}
	return pj / cyc
}

// SlotPower returns the per-slot power of the integer issue queue (the
// paper's Fig. 8): each slot burns leakage always, and clock, wakeup-CAM
// and collapse energy in proportion to how often it holds a valid entry.
func (e *Estimator) SlotPower(stats *boom.Stats) []float64 {
	return e.SlotPowerInto(nil, stats)
}

// SlotPowerInto is SlotPower writing into dst — the allocation-free form
// for per-simpoint accumulation. dst is grown (reallocating) only when
// its capacity is short; the returned slice is always exactly one entry
// per integer issue slot, computed identically to SlotPower.
func (e *Estimator) SlotPowerInto(dst []float64, stats *boom.Stats) []float64 {
	if stats.Cycles == 0 {
		return nil
	}
	cyc := float64(stats.Cycles)
	toMW := e.lib.MWPerPJPerCycle()
	inv := &e.inv[boom.CompIntIssue]
	slotLeak := issueEntryBits * e.lib.FlopLeakNW * 1e-6
	broadcastRate := float64(stats.Comp[boom.CompIntIssue].CAMSearches) /
		math.Max(1, float64(stats.Comp[boom.CompIntIssue].Occupancy))
	n := len(stats.IntIssueSlotCycles)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	out := dst[:n]
	for i, busy := range stats.IntIssueSlotCycles {
		util := float64(busy) / cyc
		pj := util * (inv.occPJ + broadcastRate*inv.camPJ + 0.5*inv.shiftPJ)
		out[i] = slotLeak + pj*toMW
	}
	return out
}
