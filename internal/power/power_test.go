package power

import (
	"math"
	"testing"

	"repro/internal/asap7"
	"repro/internal/boom"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestCalibrationBands asserts every component's suite-average power is
// within a modest band of the paper's reported value, for all three
// configurations. This is the regression that guards the one-time
// calibration.
func TestCalibrationBands(t *testing.T) {
	res := runSweep(t)
	const band = 1.6 // ×/÷ tolerance
	for comp, want := range paperMW {
		for ci := range want {
			got := res.avg[ci][comp]
			if got > want[ci]*band || got < want[ci]/band {
				t.Errorf("%v config %d: %.2f mW, paper %.2f (outside ×/÷%.1f)",
					comp, ci, got, want[ci], band)
			}
		}
	}
}

// TestBranchPredictorIsTopConsumer checks the paper's headline finding
// (Key Takeaway #7): the branch predictor is the #1 power component in all
// three configurations.
func TestBranchPredictorIsTopConsumer(t *testing.T) {
	res := runSweep(t)
	for ci := range res.avg {
		bp := res.avg[ci][boom.CompBranchPredictor]
		for _, comp := range boom.AnalyzedComponents() {
			if comp == boom.CompBranchPredictor {
				continue
			}
			if res.avg[ci][comp] >= bp {
				t.Errorf("config %d: %v (%.2f mW) >= branch predictor (%.2f mW)",
					ci, comp, res.avg[ci][comp], bp)
			}
		}
	}
}

// TestSchedulerIsSecondGroup checks Key Takeaway #4: the three scheduler
// queues collectively rank second, trailing only the branch predictor.
func TestSchedulerIsSecondGroup(t *testing.T) {
	res := runSweep(t)
	for ci := range res.avg {
		sched := res.avg[ci][boom.CompIntIssue] + res.avg[ci][boom.CompMemIssue] +
			res.avg[ci][boom.CompFpIssue]
		bp := res.avg[ci][boom.CompBranchPredictor]
		if sched >= bp {
			t.Errorf("config %d: scheduler group %.2f should trail BP %.2f", ci, sched, bp)
		}
		for _, comp := range boom.AnalyzedComponents() {
			switch comp {
			case boom.CompBranchPredictor, boom.CompIntIssue, boom.CompMemIssue, boom.CompFpIssue:
				continue
			}
			if res.avg[ci][comp] >= sched {
				t.Errorf("config %d: %v (%.2f) >= scheduler group (%.2f)",
					ci, comp, res.avg[ci][comp], sched)
			}
		}
	}
}

// TestFig9Shares checks the 13 components' share of tile power:
// 73 % / 81 % / 85 %.
func TestFig9Shares(t *testing.T) {
	res := runSweep(t)
	for ci := range res.total {
		share := (res.total[ci] - res.avg[ci][boom.CompOther]) / res.total[ci]
		if math.Abs(share-paperShare[ci]) > 0.05 {
			t.Errorf("config %d: analyzed share %.3f, paper %.2f", ci, share, paperShare[ci])
		}
	}
	// And the share must grow Medium → Mega, as the paper explains.
	s0 := (res.total[0] - res.avg[0][boom.CompOther]) / res.total[0]
	s2 := (res.total[2] - res.avg[2][boom.CompOther]) / res.total[2]
	if s0 >= s2 {
		t.Errorf("share must grow with core size: %.3f vs %.3f", s0, s2)
	}
}

// TestIntRFExplodesOnMega checks Key Takeaway #1: the integer register file
// is a minor consumer on Medium/Large (~2-3 %) but ~12 % of the tile on
// MegaBOOM, driven by the port-product bypass fabric.
func TestIntRFExplodesOnMega(t *testing.T) {
	res := runSweep(t)
	medShare := res.avg[0][boom.CompIntRF] / res.total[0]
	megaShare := res.avg[2][boom.CompIntRF] / res.total[2]
	if medShare > 0.04 {
		t.Errorf("Medium IRF share %.3f should be small", medShare)
	}
	if megaShare < 0.09 || megaShare > 0.16 {
		t.Errorf("Mega IRF share %.3f should be ≈0.12", megaShare)
	}
}

// TestFpRFStaticOnMega checks Key Takeaway #2: on MegaBOOM the FP register
// file burns significant power even on FP-free workloads, and that power is
// static-dominated.
func TestFpRFStaticOnMega(t *testing.T) {
	res := runSweep(t)
	rep := res.per[2]["bitcount"] // no FP instructions at all
	b := rep.Comp[boom.CompFpRF]
	if b.TotalMW() < 0.5 {
		t.Errorf("Mega FP RF on integer code: %.2f mW, expected ≈1 mW", b.TotalMW())
	}
	if b.LeakageMW < 0.7*b.TotalMW() {
		t.Errorf("Mega FP RF should be static-dominated: leak %.2f of %.2f",
			b.LeakageMW, b.TotalMW())
	}
	// Medium: near zero on the same workload.
	if med := res.per[0]["bitcount"].Comp[boom.CompFpRF].TotalMW(); med > 0.15 {
		t.Errorf("Medium FP RF on integer code: %.2f mW, expected ≈0.05", med)
	}
}

// TestFpRenameBurnsWithoutFp checks Key Takeaway #3: the FP rename unit
// consumes real power even on integer-only workloads (allocation-list
// copies per branch).
func TestFpRenameBurnsWithoutFp(t *testing.T) {
	res := runSweep(t)
	for ci := range res.per {
		fp := res.per[ci]["bitcount"].Comp[boom.CompFpRename].TotalMW()
		intR := res.per[ci]["bitcount"].Comp[boom.CompIntRename].TotalMW()
		if fp < 0.25*intR {
			t.Errorf("config %d: FP rename %.2f should be comparable to int rename %.2f on integer code",
				ci, fp, intR)
		}
	}
}

// runScaled runs a workload at the given scale through the MegaBOOM model,
// capped at maxInsts committed instructions, and returns stats.
func runScaled(t *testing.T, name string, scale workloads.Scale, cfg boom.Config, maxInsts uint64) *boom.Stats {
	t.Helper()
	w, err := workloads.Build(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := w.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	core, err := boom.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(func(r *sim.Retired) bool {
		if cpu.Halted {
			return false
		}
		if err := cpu.Step(r); err != nil {
			panic(err)
		}
		return true
	}, maxInsts); err != nil {
		t.Fatal(err)
	}
	return core.Stats()
}

// TestDijkstraIssueBeatsShaOnMega checks the §IV-B observation behind
// Fig. 8: Dijkstra burns more integer-issue power than Sha despite its
// lower IPC, because its queue occupancy is much higher. This is an
// experiment-scale property (dijkstra's matrix must exceed the L2), so the
// test uses ScaleDefault inputs.
func TestDijkstraIssueBeatsShaOnMega(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment-scale inputs")
	}
	cfg := boom.MegaBOOM()
	est := NewEstimator(cfg, asap7.Default())
	dijStats := runScaled(t, "dijkstra", workloads.ScaleDefault, cfg, 8_000_000)
	shaStats := runScaled(t, "sha", workloads.ScaleDefault, cfg, 8_000_000)
	dijRep, err := est.Estimate(dijStats)
	if err != nil {
		t.Fatal(err)
	}
	shaRep, err := est.Estimate(shaStats)
	if err != nil {
		t.Fatal(err)
	}
	dij := dijRep.Comp[boom.CompIntIssue].TotalMW()
	sha := shaRep.Comp[boom.CompIntIssue].TotalMW()
	if dijStats.IPC() >= shaStats.IPC() {
		t.Errorf("dijkstra IPC %.2f should trail sha %.2f", dijStats.IPC(), shaStats.IPC())
	}
	if dij <= sha {
		t.Errorf("dijkstra int-issue power %.2f must exceed sha %.2f", dij, sha)
	}
}

// TestICacheWorkloadInsensitive: the paper finds the L1I nearly identical
// across workloads (regular access every cycle).
func TestICacheWorkloadInsensitive(t *testing.T) {
	res := runSweep(t)
	min, max := math.Inf(1), 0.0
	for _, rep := range res.per[1] {
		v := rep.Comp[boom.CompICache].TotalMW()
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if max > 2.2*min {
		t.Errorf("L1I spread too wide: %.2f..%.2f mW", min, max)
	}
}

// TestTAGEvsGShare checks Key Takeaway #7's ablation: TAGE consumes ≈2.5×
// the power of GShare.
func TestTAGEvsGShare(t *testing.T) {
	lib := asap7.Default()
	for _, base := range boom.Configs() {
		gcfg := base
		gcfg.Predictor = boom.PredictorGShare
		var ratioSum float64
		n := 0
		for _, name := range []string{"bitcount", "dijkstra", "stringsearch"} {
			tagePower := bpPowerFor(t, name, base, lib)
			gsharePower := bpPowerFor(t, name, gcfg, lib)
			ratioSum += tagePower / gsharePower
			n++
		}
		ratio := ratioSum / float64(n)
		if ratio < 1.7 || ratio > 3.6 {
			t.Errorf("%s: TAGE/GShare BP power ratio %.2f, paper reports ≈2.5", base.Name, ratio)
		}
	}
}

func bpPowerFor(t *testing.T, name string, cfg boom.Config, lib asap7.Library) float64 {
	t.Helper()
	w, err := workloads.Build(name, workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := w.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	core, err := boom.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(func(r *sim.Retired) bool {
		if cpu.Halted {
			return false
		}
		if err := cpu.Step(r); err != nil {
			panic(err)
		}
		return true
	}, math.MaxUint64); err != nil {
		t.Fatal(err)
	}
	rep, err := NewEstimator(cfg, lib).Estimate(core.Stats())
	if err != nil {
		t.Fatal(err)
	}
	return rep.Comp[boom.CompBranchPredictor].TotalMW()
}

// TestSlotPowerShape checks Fig. 8: Dijkstra shows notable power in every
// MegaBOOM integer issue slot; Sha concentrates in the low slots. Like the
// paper's measurement, this is an experiment-scale property.
func TestSlotPowerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment-scale inputs")
	}
	cfg := boom.MegaBOOM()
	est := NewEstimator(cfg, asap7.Default())
	dij := est.SlotPower(runScaled(t, "dijkstra", workloads.ScaleDefault, cfg, 16_000_000))
	sha := est.SlotPower(runScaled(t, "sha", workloads.ScaleDefault, cfg, 8_000_000))
	if len(dij) != 40 || len(sha) != 40 {
		t.Fatalf("expected 40 slots, got %d/%d", len(dij), len(sha))
	}
	// Dijkstra's highest slots must dwarf Sha's.
	if dij[35] < 3*sha[35] {
		t.Errorf("slot 35: dijkstra %.4f mW vs sha %.4f mW", dij[35], sha[35])
	}
	// Sha's power must collapse beyond its backlog plateau.
	if sha[30] > 0.3*sha[2] {
		t.Errorf("sha slot 30 (%.4f) should be far below slot 2 (%.4f)", sha[30], sha[2])
	}
	// Dijkstra must stay "notable" across the whole queue: well above Sha's
	// same slot and a visible fraction of its own peak.
	if dij[39] < 4*sha[39] {
		t.Errorf("slot 39: dijkstra %.4f mW vs sha %.4f mW", dij[39], sha[39])
	}
	if dij[39] < 0.05*dij[2] {
		t.Errorf("dijkstra slot 39 (%.4f) should stay notable vs slot 2 (%.4f)", dij[39], dij[2])
	}
}

// TestEstimateRejectsEmptyStats guards the API contract.
func TestEstimateRejectsEmptyStats(t *testing.T) {
	cfg := boom.MediumBOOM()
	est := NewEstimator(cfg, asap7.Default())
	if _, err := est.Estimate(boom.NewStats(&cfg)); err == nil {
		t.Fatal("expected error for zero-cycle stats")
	}
}

// TestBreakdownComponents: leakage must be activity-independent while
// dynamic power scales with activity.
func TestBreakdownComponents(t *testing.T) {
	cfg := boom.LargeBOOM()
	est := NewEstimator(cfg, asap7.Default())
	idle := boom.NewStats(&cfg)
	idle.Cycles = 1000
	busy := boom.NewStats(&cfg)
	busy.Cycles = 1000
	busy.Comp[boom.CompDCache].Reads = 900
	ri, err := est.Estimate(idle)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := est.Estimate(busy)
	if err != nil {
		t.Fatal(err)
	}
	ic, bc := ri.Comp[boom.CompDCache], rb.Comp[boom.CompDCache]
	if ic.LeakageMW != bc.LeakageMW {
		t.Error("leakage must not depend on activity")
	}
	if bc.InternalMW <= ic.InternalMW {
		t.Error("internal power must grow with access activity")
	}
}

// TestWorkloadSensitivities pins the paper's per-workload observations from
// §IV-B: which workloads dominate which component.
func TestWorkloadSensitivities(t *testing.T) {
	res := runSweep(t)
	argmax := func(ci int, comp boom.Component) string {
		best, bestV := "", -1.0
		for name, rep := range res.per[ci] {
			if v := rep.Comp[comp].TotalMW(); v > bestV {
				best, bestV = name, v
			}
		}
		return best
	}
	// "The Sha benchmark ... has the highest IRF power consumption" (Mega).
	// At experiment scale sha wins outright (see results_default.txt); the
	// tiny inputs let matmult tie, so accept either here.
	if got := argmax(2, boom.CompIntRF); got != "sha" && got != "matmult" {
		t.Errorf("Mega IRF argmax = %s, paper says sha", got)
	}
	// "Matmult and Tarfind ... highest power consumption in relation to the
	// data cache" — accept dijkstra too (our SPFA variant is L1D-heaviest).
	if got := argmax(2, boom.CompDCache); got != "matmult" && got != "tarfind" && got != "dijkstra" && got != "fft" && got != "ifft" {
		t.Errorf("Mega L1D argmax = %s, expected a memory-streaming workload", got)
	}
	// "FFT, iFFT ... higher power consumption for the FP Issue Unit".
	if got := argmax(1, boom.CompFpIssue); got != "fft" && got != "ifft" {
		t.Errorf("Large FP-issue argmax = %s, paper says fft/ifft", got)
	}
	// "Dijkstra and Stringsearch consistently demonstrate the highest
	// [Memory Issue Unit] power".
	for ci := 0; ci < 3; ci++ {
		if got := argmax(ci, boom.CompMemIssue); got != "dijkstra" && got != "stringsearch" && got != "tarfind" {
			t.Errorf("config %d mem-issue argmax = %s, paper says dijkstra/stringsearch", ci, got)
		}
	}
}
