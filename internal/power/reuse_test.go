package power

import (
	"testing"

	"repro/internal/asap7"
	"repro/internal/boom"
)

// TestIntoVariantsBitIdentical: the reuse forms must produce bit-identical
// values to the allocating forms, even when the destination carries a
// previous run's garbage — reuse changes where the result lives, never
// what it is.
func TestIntoVariantsBitIdentical(t *testing.T) {
	for _, cfg := range boom.Configs() {
		st := kernelStats(&cfg)
		est := NewEstimator(cfg, asap7.Default())

		want, err := est.Estimate(st)
		if err != nil {
			t.Fatal(err)
		}
		var got Report
		for c := range got.Comp { // poison the reused Report
			got.Comp[c] = Breakdown{1e9, 1e9, 1e9}
		}
		if err := est.EstimateInto(&got, st); err != nil {
			t.Fatal(err)
		}
		if got != *want {
			t.Errorf("%s: EstimateInto diverged from Estimate", cfg.Name)
		}

		wantSlots := est.SlotPower(st)
		dirty := make([]float64, len(wantSlots)+7) // longer + poisoned
		for i := range dirty {
			dirty[i] = -1e9
		}
		gotSlots := est.SlotPowerInto(dirty, st)
		if len(gotSlots) != len(wantSlots) {
			t.Fatalf("%s: SlotPowerInto length %d, want %d", cfg.Name, len(gotSlots), len(wantSlots))
		}
		for i := range wantSlots {
			if gotSlots[i] != wantSlots[i] {
				t.Errorf("%s: slot %d: %v != %v", cfg.Name, i, gotSlots[i], wantSlots[i])
			}
		}
		if &gotSlots[0] != &dirty[0] {
			t.Errorf("%s: SlotPowerInto reallocated despite sufficient capacity", cfg.Name)
		}
	}
}
