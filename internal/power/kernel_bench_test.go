package power

// Kernel microbenchmark of the power-accumulation path: converting one
// interval's activity counters into the per-component leakage/internal/
// switching split plus the per-slot Fig. 8 vector. Runs per BOOM config
// because the inventory (and the slot count) scales with the design point.
// Wrapped into BENCH_kernel.json by cmd/kernelbench.

import (
	"testing"

	"repro/internal/asap7"
	"repro/internal/boom"
)

// kernelStats builds a deterministic synthetic activity trace sized for
// cfg, so the benchmark needs no timing-model run.
func kernelStats(cfg *boom.Config) *boom.Stats {
	s := boom.NewStats(cfg)
	s.Cycles, s.Insts = 1_000_000, 800_000
	for c := range s.Comp {
		s.Comp[c] = boom.Activity{
			Reads: 100_000 + uint64(c)*1000, Writes: 50_000,
			CAMSearches: 400_000, Shifts: 30_000, Occupancy: 5_000_000,
		}
	}
	for i := range s.IntIssueSlotCycles {
		s.IntIssueSlotCycles[i] = uint64(900_000 - 900_000*i/len(s.IntIssueSlotCycles))
	}
	for i := range s.ExecOps {
		s.ExecOps[i] = 40_000
	}
	return s
}

func benchPowerAccumulate(b *testing.B, cfg boom.Config) {
	st := kernelStats(&cfg)
	est := NewEstimator(cfg, asap7.Default())
	// The reuse path the sweep's per-simpoint accumulation loop runs:
	// one Report and one slot vector, overwritten every iteration.
	var rep Report
	var slots []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := est.EstimateInto(&rep, st); err != nil {
			b.Fatal(err)
		}
		if slots = est.SlotPowerInto(slots, st); len(slots) == 0 {
			b.Fatal("no slot power")
		}
	}
}

func BenchmarkKernelPowerAccumulateMediumBOOM(b *testing.B) {
	benchPowerAccumulate(b, boom.MediumBOOM())
}
func BenchmarkKernelPowerAccumulateLargeBOOM(b *testing.B) {
	benchPowerAccumulate(b, boom.LargeBOOM())
}
func BenchmarkKernelPowerAccumulateMegaBOOM(b *testing.B) {
	benchPowerAccumulate(b, boom.MegaBOOM())
}
