package power

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/asap7"
	"repro/internal/boom"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// paperMW is the per-component average power (mW) the paper reports across
// its eleven workloads for Medium/Large/MegaBOOM (Figs. 5–7 and §IV-B).
var paperMW = map[boom.Component][3]float64{
	boom.CompBranchPredictor: {3.34, 7.00, 7.60},
	boom.CompIntRF:           {0.27, 0.72, 4.83},
	boom.CompFpRF:            {0.05, 0.08, 1.18},
	boom.CompIntRename:       {0.95, 1.57, 2.50},
	boom.CompFpRename:        {0.60, 1.29, 2.16},
	boom.CompIntIssue:        {0.83, 2.08, 4.40},
	boom.CompMemIssue:        {0.26, 0.62, 1.30},
	boom.CompFpIssue:         {0.17, 0.39, 0.74},
	boom.CompRob:             {0.61, 1.08, 1.57},
	boom.CompFetchBuffer:     {0.22, 0.31, 0.36},
	boom.CompLSU:             {0.84, 1.30, 2.20},
	boom.CompDCache:          {1.13, 2.24, 4.34},
	boom.CompICache:          {0.36, 1.06, 1.06},
}

// paperShare is Fig. 9: the 13 components' share of total tile power.
var paperShare = [3]float64{0.73, 0.81, 0.85}

// sweepResult caches one full 11×3 sweep for all calibration tests.
type sweepResult struct {
	avg   [3]map[boom.Component]float64 // mean mW per component
	total [3]float64                    // mean tile mW
	per   [3]map[string]*Report         // per-workload reports
	ipc   [3]map[string]float64
}

var (
	sweepOnce sync.Once
	sweep     *sweepResult
	sweepErr  error
)

func runSweep(t *testing.T) *sweepResult {
	t.Helper()
	sweepOnce.Do(func() {
		sweep, sweepErr = doSweep()
	})
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	return sweep
}

func doSweep() (*sweepResult, error) {
	res := &sweepResult{}
	lib := asap7.Default()
	for ci, cfg := range boom.Configs() {
		res.avg[ci] = map[boom.Component]float64{}
		res.per[ci] = map[string]*Report{}
		res.ipc[ci] = map[string]float64{}
		est := NewEstimator(cfg, lib)
		names := workloads.Names()
		for _, name := range names {
			w, err := workloads.Build(name, workloads.ScaleTiny)
			if err != nil {
				return nil, err
			}
			cpu, err := w.NewCPU()
			if err != nil {
				return nil, err
			}
			core, err := boom.New(cfg)
			if err != nil {
				return nil, err
			}
			if _, err := core.Run(func(r *sim.Retired) bool {
				if cpu.Halted {
					return false
				}
				if err := cpu.Step(r); err != nil {
					panic(err)
				}
				return true
			}, math.MaxUint64); err != nil {
				return nil, err
			}
			rep, err := est.Estimate(core.Stats())
			if err != nil {
				return nil, err
			}
			res.per[ci][name] = rep
			res.ipc[ci][name] = core.Stats().IPC()
			for comp := boom.Component(0); comp < boom.NumComponents; comp++ {
				res.avg[ci][comp] += rep.Comp[comp].TotalMW() / float64(len(names))
			}
			res.total[ci] += rep.TotalMW() / float64(len(names))
		}
	}
	return res, nil
}

// TestCalibrationReport prints model-vs-paper per component (run with -v).
func TestCalibrationReport(t *testing.T) {
	res := runSweep(t)
	fmt.Printf("%-16s %23s %23s\n", "component", "model (Med/Lg/Mega)", "paper (Med/Lg/Mega)")
	for _, comp := range boom.AnalyzedComponents() {
		p := paperMW[comp]
		fmt.Printf("%-16s %6.2f %6.2f %6.2f    %6.2f %6.2f %6.2f\n", comp,
			res.avg[0][comp], res.avg[1][comp], res.avg[2][comp], p[0], p[1], p[2])
	}
	fmt.Printf("%-16s %6.2f %6.2f %6.2f    %6.2f %6.2f %6.2f\n", "Other",
		res.avg[0][boom.CompOther], res.avg[1][boom.CompOther], res.avg[2][boom.CompOther],
		res.total[0]*(1-paperShare[0]), res.total[1]*(1-paperShare[1]), res.total[2]*(1-paperShare[2]))
	for ci := range res.total {
		analyzed := res.total[ci] - res.avg[ci][boom.CompOther]
		fmt.Printf("tile[%d]=%.2f mW analyzed=%.2f (share %.2f, paper %.2f)\n",
			ci, res.total[ci], analyzed, analyzed/res.total[ci], paperShare[ci])
	}
}
