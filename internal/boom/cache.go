package boom

// cacheModel is a set-associative cache with true-LRU replacement, used for
// the L1I, L1D and the unified L2 behind them. It tracks hit/miss behaviour
// on real addresses; latency and MSHR accounting live in the core.
type cacheModel struct {
	sets     int
	ways     int
	lineBits uint
	tags     []uint64 // sets × ways
	valid    []bool
	age      []uint64 // LRU stamps
	stamp    uint64
}

func newCacheModel(kib, ways, lineBytes int) *cacheModel {
	lines := kib * 1024 / lineBytes
	sets := lines / ways
	lb := uint(0)
	for 1<<lb < lineBytes {
		lb++
	}
	return &cacheModel{
		sets:     sets,
		ways:     ways,
		lineBits: lb,
		tags:     make([]uint64, sets*ways),
		valid:    make([]bool, sets*ways),
		age:      make([]uint64, sets*ways),
	}
}

// access looks up addr; on a miss it fills the line (LRU victim). Returns
// whether the access hit.
func (c *cacheModel) access(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line % uint64(c.sets))
	base := set * c.ways
	c.stamp++
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.age[base+w] = c.stamp
			return true
		}
	}
	victim := base
	for w := 1; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.age[base+w] < c.age[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.age[victim] = c.stamp
	return false
}

// probe is access without allocation (used for store write-probes where the
// timing model does not want fills to perturb the load path).
func (c *cacheModel) probe(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}
