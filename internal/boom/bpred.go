package boom

import "repro/internal/rv64"

// bpred models BOOM's front-end prediction stack: a TAGE direction
// predictor (or GShare for the ablation), a branch target buffer, and a
// return address stack. Every lookup and update is charged to the
// BranchPredictor component.
type bpred struct {
	cfg   *Config
	stats *Stats

	hist uint64 // global history (newest outcome in bit 0)

	// TAGE.
	bimodal []int8 // 2-bit counters
	tables  []tageTable

	// GShare.
	gshare []int8

	// BTB (direct-mapped with tags).
	btbTags    []uint64
	btbTargets []uint64
	btbValid   []bool

	// RAS.
	ras    []uint64
	rasTop int
	rasCnt int
}

type tageTable struct {
	histLen int
	tags    []uint16
	ctr     []int8 // 3-bit signed counter: >= 0 predicts taken
	useful  []uint8
}

func newBPred(cfg *Config, stats *Stats) *bpred {
	b := &bpred{cfg: cfg, stats: stats}
	b.bimodal = make([]int8, 2048)
	histLens := []int{4, 8, 16, 24, 32, 48, 64, 96}
	for t := 0; t < cfg.TageTables; t++ {
		hl := histLens[t%len(histLens)]
		b.tables = append(b.tables, tageTable{
			histLen: hl,
			tags:    make([]uint16, cfg.TageEntries),
			ctr:     make([]int8, cfg.TageEntries),
			useful:  make([]uint8, cfg.TageEntries),
		})
	}
	b.gshare = make([]int8, cfg.GShareEntries)
	b.btbTags = make([]uint64, cfg.BTBEntries)
	b.btbTargets = make([]uint64, cfg.BTBEntries)
	b.btbValid = make([]bool, cfg.BTBEntries)
	b.ras = make([]uint64, cfg.RASEntries)
	return b
}

func mix(pc uint64) uint64 {
	pc ^= pc >> 13
	pc *= 0x9E3779B97F4A7C15
	return pc ^ pc>>29
}

func (t *tageTable) index(pc, hist uint64) (idx int, tag uint16) {
	h := hist
	if t.histLen < 64 {
		h &= 1<<uint(t.histLen) - 1
	}
	v := mix(pc>>2 ^ h*0x45D9F3B3)
	return int(v % uint64(len(t.tags))), uint16(v>>20)&0x3FF | 1 // nonzero 10-bit tag
}

// lookupCycle charges the per-fetch-cycle read activity: in a real BOOM the
// predictor RAMs and the BTB are read every fetch cycle regardless of
// whether a branch is present.
func (b *bpred) lookupCycle() {
	a := &b.stats.Comp[CompBranchPredictor]
	if b.cfg.Predictor == PredictorTAGE {
		a.Reads += uint64(len(b.tables)) + 1 // tagged tables + bimodal
		a.CAMSearches += uint64(len(b.tables))
	} else {
		a.Reads++
	}
	a.Reads++ // BTB read
}

// predictCond returns the predicted direction for a conditional branch.
func (b *bpred) predictCond(pc uint64) bool {
	if b.cfg.Predictor == PredictorGShare {
		idx := (mix(pc>>2) ^ b.hist) % uint64(len(b.gshare))
		return b.gshare[idx] >= 0
	}
	for t := len(b.tables) - 1; t >= 0; t-- {
		idx, tag := b.tables[t].index(pc, b.hist)
		if b.tables[t].tags[idx] == tag {
			return b.tables[t].ctr[idx] >= 0
		}
	}
	return b.bimodal[(pc>>2)%uint64(len(b.bimodal))] >= 0
}

// updateCond trains the direction predictor with the architectural outcome
// and shifts the global history.
func (b *bpred) updateCond(pc uint64, taken bool) {
	a := &b.stats.Comp[CompBranchPredictor]
	if b.cfg.Predictor == PredictorGShare {
		idx := (mix(pc>>2) ^ b.hist) % uint64(len(b.gshare))
		b.gshare[idx] = bump2(b.gshare[idx], taken)
		a.Writes++
	} else {
		b.updateTAGE(pc, taken)
	}
	b.hist = b.hist<<1 | boolBit(taken)
}

func (b *bpred) updateTAGE(pc uint64, taken bool) {
	a := &b.stats.Comp[CompBranchPredictor]
	// Find provider (longest matching) and the prediction it made.
	provider := -1
	var pIdx int
	for t := len(b.tables) - 1; t >= 0; t-- {
		idx, tag := b.tables[t].index(pc, b.hist)
		if b.tables[t].tags[idx] == tag {
			provider, pIdx = t, idx
			break
		}
	}
	var predicted bool
	if provider >= 0 {
		predicted = b.tables[provider].ctr[pIdx] >= 0
	} else {
		predicted = b.bimodal[(pc>>2)%uint64(len(b.bimodal))] >= 0
	}

	// Update provider counter (or bimodal).
	if provider >= 0 {
		b.tables[provider].ctr[pIdx] = bump3(b.tables[provider].ctr[pIdx], taken)
		if predicted == taken && b.tables[provider].useful[pIdx] < 3 {
			b.tables[provider].useful[pIdx]++
		}
		a.Writes++
	} else {
		bi := (pc >> 2) % uint64(len(b.bimodal))
		b.bimodal[bi] = bump2(b.bimodal[bi], taken)
		a.Writes++
	}

	// On a mispredict, allocate one entry in a longer-history table.
	if predicted != taken && provider < len(b.tables)-1 {
		for t := provider + 1; t < len(b.tables); t++ {
			idx, tag := b.tables[t].index(pc, b.hist)
			if b.tables[t].useful[idx] == 0 {
				b.tables[t].tags[idx] = tag
				if taken {
					b.tables[t].ctr[idx] = 0
				} else {
					b.tables[t].ctr[idx] = -1
				}
				b.tables[t].useful[idx] = 0
				a.Writes++
				break
			}
			// Decay usefulness so allocation eventually succeeds.
			b.tables[t].useful[idx]--
			a.Writes++
		}
	}
}

// btbLookup returns the predicted target for pc, if any.
func (b *bpred) btbLookup(pc uint64) (uint64, bool) {
	idx := (pc >> 2) % uint64(len(b.btbTags))
	if b.btbValid[idx] && b.btbTags[idx] == pc {
		return b.btbTargets[idx], true
	}
	return 0, false
}

// btbUpdate installs a taken-control-flow target.
func (b *bpred) btbUpdate(pc, target uint64) {
	idx := (pc >> 2) % uint64(len(b.btbTags))
	b.btbTags[idx] = pc
	b.btbTargets[idx] = target
	b.btbValid[idx] = true
	b.stats.Comp[CompBranchPredictor].Writes++
}

// RAS operations: calls push the return address, returns pop a prediction.
func (b *bpred) rasPush(ret uint64) {
	b.rasTop = (b.rasTop + 1) % len(b.ras)
	b.ras[b.rasTop] = ret
	if b.rasCnt < len(b.ras) {
		b.rasCnt++
	}
	b.stats.Comp[CompBranchPredictor].Writes++
}

func (b *bpred) rasPop() (uint64, bool) {
	if b.rasCnt == 0 {
		return 0, false
	}
	v := b.ras[b.rasTop]
	b.rasTop = (b.rasTop - 1 + len(b.ras)) % len(b.ras)
	b.rasCnt--
	b.stats.Comp[CompBranchPredictor].Reads++
	return v, true
}

// bump2 saturates a 2-bit signed counter in [-2, 1].
func bump2(c int8, up bool) int8 {
	if up {
		if c < 1 {
			return c + 1
		}
		return c
	}
	if c > -2 {
		return c - 1
	}
	return c
}

// bump3 saturates a 3-bit signed counter in [-4, 3].
func bump3(c int8, up bool) int8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// isCall reports whether in is a call (writes the link register).
func isCall(in rv64.Inst) bool {
	return (in.Op == rv64.JAL || in.Op == rv64.JALR) && in.Rd == rv64.RegRA
}

// isReturn reports whether in is a return (jalr through ra without linking).
func isReturn(in rv64.Inst) bool {
	return in.Op == rv64.JALR && in.Rd == 0 && in.Rs1 == rv64.RegRA
}
