package boom

// Per-PC decode/crack cache. Cracking a committed instruction into a µop
// used to re-derive every static property (class, register-file routing,
// source counts, queue selection, call/return shape) from rv64.Op predicate
// tables on every fetch. All of that is a pure function of the decoded
// instruction, so the core caches the cracked form per PC and revalidates
// by comparing the full rv64.Inst — the cache is semantically transparent:
// a PC that re-decodes differently (alias, collision, self-modifying text)
// simply misses and is re-cracked, never served stale. Only per-instance
// dynamic fields (next PC, memory address, taken bit, dependencies) are
// filled per µop.

import "repro/internal/rv64"

// Source-operand kinds for the rename stage, precomputed at crack time so
// renameSources is a straight table walk instead of predicate calls.
const (
	srcNone uint8 = iota
	srcInt        // read c.lastInt[srcReg]
	srcFp         // read c.lastFp[srcReg]
)

// Issue-queue selector, precomputed at crack time.
const (
	qInt uint8 = iota
	qMem
	qFp
)

// uopStatic is everything about a µop that is a pure function of the
// decoded instruction. It is computed once per PC by crack and copied into
// each µop wholesale.
type uopStatic struct {
	op    rv64.Op
	class rv64.Class

	rs1, rs2, rs3, rd uint8
	imm               int64 // retained for pipeline tracing
	memSize           uint8

	isLoad, isStore bool
	fpData          bool // store data (or load dest) in FP file
	dstInt, dstFp   bool

	nIntSrc, nFpSrc uint8    // register-file read counts at issue
	srcKind         [3]uint8 // rename-slot source kinds (srcNone/srcInt/srcFp)
	srcReg          [3]uint8

	fpRename bool  // rename activity charged to the FP map table
	qSel     uint8 // qInt/qMem/qFp
	call     bool
	ret      bool
}

// crack fills st from a decoded instruction. The rename-slot layout must
// match the historical renameSources exactly: slot 0 is rs1 when present,
// the next slot is rs2 when present, then rs3 — a slot stays srcNone when
// the operand is integer x0.
func crack(in rv64.Inst, st *uopStatic) {
	op := in.Op
	cl := op.Class()
	*st = uopStatic{
		op: op, class: cl,
		rs1: in.Rs1, rs2: in.Rs2, rs3: in.Rs3, rd: in.Rd,
		imm:     in.Imm,
		memSize: uint8(op.MemBytes()),
		isLoad:  cl == rv64.ClassLoad,
		isStore: cl == rv64.ClassStore,
		fpData:  op.IsFPMem(),
	}
	if op.HasRd() {
		if op.FPRd() {
			st.dstFp = true
		} else {
			st.dstInt = in.Rd != 0
		}
	}
	d := 0
	if op.HasRs1() {
		if op.FPRs1() {
			st.srcKind[d], st.srcReg[d] = srcFp, in.Rs1
			st.nFpSrc++
		} else if in.Rs1 != 0 {
			st.srcKind[d], st.srcReg[d] = srcInt, in.Rs1
			st.nIntSrc++
		}
		d++
	}
	if op.HasRs2() {
		if op.FPRs2() {
			st.srcKind[d], st.srcReg[d] = srcFp, in.Rs2
			st.nFpSrc++
		} else if in.Rs2 != 0 {
			st.srcKind[d], st.srcReg[d] = srcInt, in.Rs2
			st.nIntSrc++
		}
		d++
	}
	if op.HasRs3() {
		st.srcKind[d], st.srcReg[d] = srcFp, in.Rs3
		st.nFpSrc++
	}
	switch cl {
	case rv64.ClassLoad, rv64.ClassStore:
		st.qSel = qMem
	case rv64.ClassFPALU, rv64.ClassFPMul, rv64.ClassFPDiv:
		st.qSel = qFp
	}
	st.fpRename = st.dstFp || st.fpData || st.qSel == qFp
	st.call = isCall(in)
	st.ret = isReturn(in)
}

// nSrcs counts rename map-table reads (sources in either file).
func (st *uopStatic) nSrcs() int { return int(st.nIntSrc) + int(st.nFpSrc) }

// decEntries sizes the direct-mapped decode cache: 4096 entries cover 16 KiB
// of straight-line text at 4-byte spacing, larger loops still hit through
// index reuse, and collisions are safe because entries revalidate against
// the full instruction encoding.
const decEntries = 4096

type decEntry struct {
	pc    uint64
	valid bool
	inst  rv64.Inst
	st    uopStatic
}

// lookupDecode returns the cracked form of (pc, inst), cracking and caching
// on miss or stale hit.
func (c *Core) lookupDecode(pc uint64, inst rv64.Inst) *uopStatic {
	e := &c.dec[(pc>>2)&uint64(len(c.dec)-1)]
	if !e.valid || e.pc != pc || e.inst != inst {
		crack(inst, &e.st)
		e.pc, e.inst, e.valid = pc, inst, true
	}
	return &e.st
}
