// Package boom implements a cycle-level timing model of the SonicBOOM
// out-of-order core at the paper's three design points (MediumBOOM,
// LargeBOOM, MegaBOOM). It is trace-driven: the functional simulator
// supplies the committed instruction stream and this model imposes BOOM's
// pipeline structure — TAGE/GShare front end with BTB and RAS, fetch buffer,
// rename with per-branch free-list snapshots, a three-queue distributed
// scheduler with collapsing queues, merged register files with port limits,
// a load/store unit with store-to-load forwarding, and non-blocking L1
// caches with MSHRs. Every structure counts its activity (reads, writes,
// CAM searches, entry shifts, occupancy) so the power flow in
// internal/power can convert cycle behaviour into leakage/internal/
// switching power per component, exactly as the Verilator→Joules flow does
// in the paper.
package boom

import "fmt"

// PredictorKind selects the branch direction predictor.
type PredictorKind int

// Direction predictor choices. The paper's BOOM uses TAGE; GShare is
// implemented for the Takeaway-#7 ablation (TAGE ≈ 2.5× GShare power).
const (
	PredictorTAGE PredictorKind = iota
	PredictorGShare
)

func (p PredictorKind) String() string {
	if p == PredictorGShare {
		return "gshare"
	}
	return "tage"
}

// Config holds every microarchitectural parameter of a BOOM design point
// (the paper's Table I).
type Config struct {
	Name string

	// Front end.
	FetchWidth         int
	FetchBufferEntries int
	BTBEntries         int
	RASEntries         int
	TageTables         int
	TageEntries        int // entries per tagged table
	GShareEntries      int // used when Predictor == PredictorGShare
	Predictor          PredictorKind

	// Decode/rename/retire.
	DecodeWidth int
	RetireWidth int
	RobEntries  int
	IntPhysRegs int
	FpPhysRegs  int

	// Register file ports (Table I / §IV-B discussion).
	IntRFReadPorts  int
	IntRFWritePorts int
	FpRFReadPorts   int
	FpRFWritePorts  int

	// Distributed scheduler.
	IntIssueSlots int
	MemIssueSlots int
	FpIssueSlots  int
	IntIssueWidth int
	MemIssueWidth int // = number of memory execution units
	FpIssueWidth  int

	// LSU.
	LdqEntries int
	StqEntries int

	// L1 caches.
	DCacheKiB   int
	DCacheWays  int
	DCacheMSHRs int
	ICacheKiB   int
	ICacheWays  int
	LineBytes   int

	// Memory hierarchy behind the L1s (shared by all three design points in
	// the paper's SoC).
	L2KiB      int
	L2Ways     int
	L2Latency  int // additional cycles on an L1 miss that hits L2
	MemLatency int // additional cycles on an L2 miss (DRAM)

	// Clock, fixed at 500 MHz across configs per §IV-A.
	ClockMHz float64
}

// MediumBOOM is the 2-wide design point.
func MediumBOOM() Config {
	return Config{
		Name:               "MediumBOOM",
		FetchWidth:         4,
		FetchBufferEntries: 16,
		BTBEntries:         256,
		RASEntries:         8,
		TageTables:         6,
		TageEntries:        256,
		GShareEntries:      4096,
		Predictor:          PredictorTAGE,
		DecodeWidth:        2,
		RetireWidth:        2,
		RobEntries:         64,
		IntPhysRegs:        80,
		FpPhysRegs:         64,
		IntRFReadPorts:     6,
		IntRFWritePorts:    3,
		FpRFReadPorts:      3,
		FpRFWritePorts:     2,
		IntIssueSlots:      20,
		MemIssueSlots:      12,
		FpIssueSlots:       16,
		IntIssueWidth:      2,
		MemIssueWidth:      1,
		FpIssueWidth:       1,
		LdqEntries:         16,
		StqEntries:         16,
		DCacheKiB:          16,
		DCacheWays:         4,
		DCacheMSHRs:        2,
		ICacheKiB:          16,
		ICacheWays:         4,
		LineBytes:          64,
		L2KiB:              1024,
		L2Ways:             8,
		L2Latency:          14,
		MemLatency:         80,
		ClockMHz:           500,
	}
}

// LargeBOOM is the 3-wide design point.
func LargeBOOM() Config {
	c := MediumBOOM()
	c.Name = "LargeBOOM"
	c.FetchWidth = 8
	c.FetchBufferEntries = 24
	c.BTBEntries = 512
	c.RASEntries = 16
	c.TageEntries = 512
	c.GShareEntries = 8192
	c.DecodeWidth = 3
	c.RetireWidth = 3
	c.RobEntries = 96
	c.IntPhysRegs = 100
	c.FpPhysRegs = 96
	c.IntRFReadPorts = 8
	c.IntRFWritePorts = 4
	c.FpRFReadPorts = 4
	c.FpRFWritePorts = 2
	c.IntIssueSlots = 28
	c.MemIssueSlots = 16
	c.FpIssueSlots = 24
	c.IntIssueWidth = 3
	c.MemIssueWidth = 1
	c.FpIssueWidth = 1
	c.LdqEntries = 24
	c.StqEntries = 24
	c.DCacheKiB = 32
	c.DCacheWays = 8
	c.DCacheMSHRs = 4
	c.ICacheKiB = 32
	c.ICacheWays = 8
	return c
}

// MegaBOOM is the 4-wide design point. Per the paper: 40 integer issue
// slots, 12/6 integer RF ports, two memory execution units and twice
// LargeBOOM's MSHRs.
func MegaBOOM() Config {
	c := LargeBOOM()
	c.Name = "MegaBOOM"
	c.FetchWidth = 8
	c.FetchBufferEntries = 32
	c.DecodeWidth = 4
	c.RetireWidth = 4
	c.RobEntries = 128
	c.IntPhysRegs = 128
	c.FpPhysRegs = 128
	c.IntRFReadPorts = 12
	c.IntRFWritePorts = 6
	c.FpRFReadPorts = 6
	c.FpRFWritePorts = 3
	c.IntIssueSlots = 40
	c.MemIssueSlots = 24
	c.FpIssueSlots = 32
	c.IntIssueWidth = 4
	c.MemIssueWidth = 2
	c.FpIssueWidth = 2
	c.LdqEntries = 32
	c.StqEntries = 32
	c.DCacheMSHRs = 8
	return c
}

// registry holds one canonical instance of each design point, built once.
// Lookups copy out of it and never hand back anything that can reach
// these instances, so a caller mutating its copy (boomflow's -predictor
// ablation flips Predictor, tests tweak RobEntries) cannot poison a later
// sweep that resolves the same name.
var registry = []Config{MediumBOOM(), LargeBOOM(), MegaBOOM()}

// Configs returns the paper's three design points in Table I order. The
// slice and its elements are the caller's to mutate.
func Configs() []Config {
	out := make([]Config, len(registry))
	copy(out, registry)
	return out
}

// ConfigByName resolves "medium"/"large"/"mega" (or the full names) to a
// defensive copy of the canonical design point.
func ConfigByName(name string) (Config, error) {
	for i := range registry {
		c := registry[i] // copy; Config is scalar-only, so this is deep
		switch name {
		case c.Name, shortName(c.Name):
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("boom: unknown config %q", name)
}

// shortName maps "MediumBOOM" → "medium" etc.
func shortName(full string) string {
	switch full {
	case "MediumBOOM":
		return "medium"
	case "LargeBOOM":
		return "large"
	case "MegaBOOM":
		return "mega"
	}
	return full
}

// powerOfTwo reports whether n is a positive power of two — the shape
// every indexed hardware table (cache sets and ways, predictor tables)
// must have, since the index is a bit-field of the address or history.
func powerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// cacheSetsOK checks one cache's geometry: power-of-two ways, the
// capacity divisible into them, and a power-of-two set count (a
// non-power-of-two set count has no index function).
func cacheSetsOK(kib, ways, line int) bool {
	if kib <= 0 || line <= 0 || !powerOfTwo(ways) {
		return false
	}
	lines := kib * 1024 / line
	return lines%ways == 0 && powerOfTwo(lines/ways)
}

// Validate checks structural invariants. Parametric expansion
// (internal/dse) runs every generated design point through here, so an
// invalid corner of a sweep — a width inversion, a non-power-of-two cache
// geometry, a zero-depth queue — fails loudly at expansion time instead
// of producing a design point the timing model cannot mean anything for.
func (c *Config) Validate() error {
	check := func(ok bool, what string) error {
		if !ok {
			return fmt.Errorf("boom: %s: invalid %s", c.Name, what)
		}
		return nil
	}
	for _, e := range []error{
		check(c.FetchWidth > 0 && c.DecodeWidth > 0 && c.RetireWidth > 0, "widths"),
		check(c.DecodeWidth <= c.FetchWidth, "decode vs fetch width"),
		check(c.RetireWidth >= c.DecodeWidth, "retire vs decode width"),
		check(c.FetchBufferEntries >= c.FetchWidth, "fetch buffer"),
		check(c.BTBEntries > 0 && c.RASEntries > 0 &&
			c.TageTables > 0 && c.TageEntries > 0 && c.GShareEntries > 0, "predictor tables"),
		check(c.RobEntries >= 2*c.DecodeWidth, "ROB size"),
		check(c.IntPhysRegs > 32 && c.FpPhysRegs > 32, "physical registers"),
		check(c.IntIssueSlots > 0 && c.MemIssueSlots > 0 && c.FpIssueSlots > 0, "issue slots"),
		check(c.IntIssueWidth > 0 && c.MemIssueWidth > 0 && c.FpIssueWidth > 0, "issue widths"),
		check(c.IntIssueWidth <= c.IntIssueSlots && c.MemIssueWidth <= c.MemIssueSlots &&
			c.FpIssueWidth <= c.FpIssueSlots, "issue width vs slots"),
		check(c.IntRFReadPorts >= 2*c.IntIssueWidth, "int RF read ports"),
		check(c.IntRFWritePorts > c.IntIssueWidth, "int RF write ports"),
		check(c.LdqEntries > 0 && c.StqEntries > 0, "LSU queues"),
		check(c.DCacheKiB > 0 && c.DCacheWays > 0 && c.LineBytes > 0, "D-cache geometry"),
		check(cacheSetsOK(c.DCacheKiB, c.DCacheWays, c.LineBytes), "D-cache sets"),
		check(cacheSetsOK(c.ICacheKiB, c.ICacheWays, c.LineBytes), "I-cache sets"),
		check(c.DCacheMSHRs > 0, "MSHRs"),
		check(c.L2KiB > 0 && c.L2Ways > 0 && cacheSetsOK(c.L2KiB, c.L2Ways, c.LineBytes), "L2 geometry"),
		check(c.L2Latency > 0 && c.MemLatency > 0, "memory latencies"),
		check(c.ClockMHz > 0, "clock"),
	} {
		if e != nil {
			return e
		}
	}
	return nil
}
