package boom

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestPipeTrace(t *testing.T) {
	src := `
	.text
	li   t0, 5
loop:
	addi t1, t1, 1
	addi t0, t0, -1
	bnez t0, loop
`
	p := mustProgram(t, src)
	cpu := newCPUFor(t, p)
	core := mustNew(t, MediumBOOM())
	var buf bytes.Buffer
	core.SetPipeTrace(&buf, 10)
	mustRun(t, core, traceFrom(t, cpu), ^uint64(0))
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 10 uops + limit marker.
	if len(lines) != 12 {
		t.Fatalf("got %d trace lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "retire") {
		t.Errorf("missing header: %q", lines[0])
	}
	if !strings.Contains(out, "addi") || !strings.Contains(out, "bne") {
		t.Errorf("trace missing instructions:\n%s", out)
	}
	if !strings.Contains(lines[11], "limit reached") {
		t.Errorf("missing limit marker: %q", lines[11])
	}
	// Lifecycle ordering on a data row: fetch ≤ dispatch ≤ issue < done ≤
	// retire. The cycle columns are the last five fields.
	fields := strings.Fields(lines[2])
	if len(fields) < 5 {
		t.Fatalf("short trace row %q", lines[2])
	}
	var cyc [5]uint64
	for j := 0; j < 5; j++ {
		if _, err := fmt.Sscan(fields[len(fields)-5+j], &cyc[j]); err != nil {
			t.Fatalf("parse %q: %v", lines[2], err)
		}
	}
	f, d, i, done, r := cyc[0], cyc[1], cyc[2], cyc[3], cyc[4]
	if !(f <= d && d <= i && i < done && done <= r) {
		t.Errorf("lifecycle out of order: F%d D%d I%d C%d R%d", f, d, i, done, r)
	}
}
