package boom

// uopRing is a fixed-capacity FIFO of µops backed by a power-of-two array.
// The ROB, fetch buffer, and store queue are all strict FIFOs whose
// occupancy is bounded by the configuration, so a ring replaces the old
// slide-forward slices (s = s[1:] + append) that leaked capacity off the
// front and reallocated the backing array every window's worth of
// instructions.
type uopRing struct {
	buf  []*uop
	mask int
	head int
	n    int
}

func newUopRing(capacity int) uopRing {
	sz := 1
	for sz < capacity {
		sz <<= 1
	}
	return uopRing{buf: make([]*uop, sz), mask: sz - 1}
}

func (r *uopRing) len() int      { return r.n }
func (r *uopRing) front() *uop   { return r.buf[r.head] }
func (r *uopRing) at(i int) *uop { return r.buf[(r.head+i)&r.mask] }

func (r *uopRing) pushBack(u *uop) {
	r.buf[(r.head+r.n)&r.mask] = u
	r.n++
}

func (r *uopRing) popFront() *uop {
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & r.mask
	r.n--
	return u
}
