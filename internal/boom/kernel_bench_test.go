package boom

// Kernel microbenchmarks of the cycle-model hot path. These are white-box
// (package boom) so they can meter cycles directly and drive the decode
// path in isolation. They are trace-replay driven: one committed
// instruction stream is recorded from the functional simulator once and
// replayed from memory, so the numbers measure the timing model alone —
// not the functional simulator feeding it.
//
// `make bench` wraps these (via cmd/kernelbench) into BENCH_kernel.json so
// every PR has a perf trajectory to defend; `make check` runs each once
// (-benchtime=1x) to catch harness rot.

import (
	"math"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

var (
	ktOnce sync.Once
	ktBuf  []sim.Retired
	ktErr  error
)

// kernelTrace records the committed instruction stream of sha at tiny
// scale once per process.
func kernelTrace(b *testing.B) []sim.Retired {
	b.Helper()
	ktOnce.Do(func() {
		w, err := workloads.Build("sha", workloads.ScaleTiny)
		if err != nil {
			ktErr = err
			return
		}
		cpu, err := w.NewCPU()
		if err != nil {
			ktErr = err
			return
		}
		_, ktErr = cpu.RunTrace(-1, func(r *sim.Retired) {
			ktBuf = append(ktBuf, *r)
		})
	})
	if ktErr != nil {
		b.Fatal(ktErr)
	}
	return ktBuf
}

// replaySource feeds a recorded trace to Core.Run.
type replaySource struct {
	tr  []sim.Retired
	pos int
}

func (s *replaySource) next(r *sim.Retired) bool {
	if s.pos >= len(s.tr) {
		return false
	}
	*r = s.tr[s.pos]
	s.pos++
	return true
}

// benchTick replays the full recorded trace through a fresh core per
// iteration: ns/op is the cost of one whole-trace replay; the cycles/s and
// ns/inst metrics are the figures BENCH_kernel.json records.
func benchTick(b *testing.B, cfg Config) {
	tr := kernelTrace(b)
	b.ReportAllocs()
	var cycles, insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		src := &replaySource{tr: tr}
		n, err := c.Run(src.next, math.MaxUint64)
		if err != nil {
			b.Fatal(err)
		}
		insts += n
		cycles += c.Stats().Cycles
	}
	el := b.Elapsed().Seconds()
	if el > 0 && insts > 0 {
		b.ReportMetric(float64(cycles)/el, "cycles/s")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/inst")
	}
}

func BenchmarkKernelTickMediumBOOM(b *testing.B) { benchTick(b, MediumBOOM()) }
func BenchmarkKernelTickLargeBOOM(b *testing.B)  { benchTick(b, LargeBOOM()) }
func BenchmarkKernelTickMegaBOOM(b *testing.B)   { benchTick(b, MegaBOOM()) }

// BenchmarkKernelDecode measures the per-instruction fetch-crack path
// (trace pull → µop fields) in isolation: ns/op is the cost of cracking
// one committed instruction into a µop.
func BenchmarkKernelDecode(b *testing.B) {
	tr := kernelTrace(b)
	c, err := New(MediumBOOM())
	if err != nil {
		b.Fatal(err)
	}
	src := &replaySource{tr: tr}
	c.next = func(r *sim.Retired) bool {
		if !src.next(r) {
			src.pos = 0
			return src.next(r)
		}
		return true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := c.pullTrace()
		if u == nil {
			b.Fatal("trace ran dry")
		}
		c.peek = nil
		c.freeUops = append(c.freeUops, u)
	}
}

// BenchmarkKernelStatsAccumulate measures the per-interval weighted
// activity merge (SimPoint aggregation: scale one interval's counters by
// its cluster weight and fold into the campaign aggregate).
func BenchmarkKernelStatsAccumulate(b *testing.B) {
	cfg := MediumBOOM()
	src := NewStats(&cfg)
	src.Cycles, src.Insts = 1_000_000, 800_000
	for c := range src.Comp {
		src.Comp[c] = Activity{
			Reads: 100_000, Writes: 50_000, CAMSearches: 400_000,
			Shifts: 30_000, Occupancy: 5_000_000,
		}
	}
	for i := range src.IntIssueSlotCycles {
		src.IntIssueSlotCycles[i] = uint64(900_000 - 20_000*i)
	}
	agg := NewStats(&cfg)
	tmp := NewStats(&cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slots := tmp.IntIssueSlotCycles // keep tmp's own backing array
		*tmp = *src
		tmp.IntIssueSlotCycles = append(slots[:0], src.IntIssueSlotCycles...)
		tmp.ScaleWeighted(0.37)
		agg.Add(tmp)
	}
}
