package boom

import (
	"fmt"
	"io"

	"repro/internal/rv64"
)

// SetPipeTrace streams a per-instruction pipeline lifecycle trace to w (one
// line per retired uop: fetch/dispatch/issue/complete/retire cycles), up to
// maxUops lines. It is the textual equivalent of a waveform/Konata view of
// the Verilator run and is meant for debugging and teaching; it slows the
// model down and should stay off in experiments. Pass nil to disable.
func (c *Core) SetPipeTrace(w io.Writer, maxUops uint64) {
	c.traceW = w
	c.traceLeft = maxUops
	if w != nil {
		fmt.Fprintf(w, "%-6s %-10s %-28s %8s %8s %8s %8s %8s\n",
			"seq", "pc", "instruction", "fetch", "disp", "issue", "done", "retire")
	}
}

func (c *Core) traceFetch(u *uop) {
	if c.traceW != nil {
		u.fetchedAt = c.cycle
	}
}

func (c *Core) traceDispatch(u *uop) {
	if c.traceW != nil {
		u.dispatchedAt = c.cycle
	}
}

func (c *Core) traceIssue(u *uop) {
	if c.traceW != nil {
		u.issuedAt = c.cycle
	}
}

func (c *Core) traceRetire(u *uop) {
	if c.traceW == nil || c.traceLeft == 0 {
		return
	}
	c.traceLeft--
	dis := rv64.Disassemble(rv64.Inst{
		Op: u.op, Rd: u.rd, Rs1: u.rs1, Rs2: u.rs2, Rs3: u.rs3, Imm: u.imm,
	})
	flags := ""
	if u.mispred {
		flags = " !mispredict"
	}
	fmt.Fprintf(c.traceW, "%-6d %-#10x %-28s %8d %8d %8d %8d %8d%s\n",
		u.seq, u.pc, dis, u.fetchedAt, u.dispatchedAt, u.issuedAt, u.doneAt, c.cycle, flags)
	if c.traceLeft == 0 {
		fmt.Fprintln(c.traceW, "... pipeline trace limit reached")
	}
}
