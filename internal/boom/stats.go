package boom

import "fmt"

// Component identifies one of the 13 hardware structures the paper analyzes
// (Figs. 5–7) plus the "Other" bucket (execution units, decode, FTQ, …)
// that makes up the rest of the BOOM tile (Fig. 9).
type Component int

// Components in the paper's naming.
const (
	CompBranchPredictor Component = iota
	CompFetchBuffer
	CompICache
	CompIntRename
	CompFpRename
	CompRob
	CompIntIssue
	CompMemIssue
	CompFpIssue
	CompIntRF
	CompFpRF
	CompLSU
	CompDCache
	CompOther
	NumComponents
)

var componentNames = [NumComponents]string{
	"BranchPredictor", "FetchBuffer", "L1-ICache", "IntRename", "FPRename",
	"ROB", "IntIssue", "MemIssue", "FPIssue", "IntRegFile", "FPRegFile",
	"LSU", "L1-DCache", "Other",
}

func (c Component) String() string {
	if c >= 0 && c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("component(%d)", int(c))
}

// AnalyzedComponents lists the 13 paper components (everything but Other).
func AnalyzedComponents() []Component {
	out := make([]Component, 0, NumComponents-1)
	for c := Component(0); c < NumComponents; c++ {
		if c != CompOther {
			out = append(out, c)
		}
	}
	return out
}

// Activity is the per-component event record a run produces — the
// architectural aggregation of the signal toggles an RTL trace would carry.
type Activity struct {
	Reads       uint64 // port read accesses
	Writes      uint64 // port write accesses
	CAMSearches uint64 // per-entry match/wakeup comparisons
	Shifts      uint64 // collapsing-queue entry movements
	Occupancy   uint64 // Σ occupied entries over cycles (divide by Cycles)
}

// Add accumulates other into a.
func (a *Activity) Add(other Activity) {
	a.Reads += other.Reads
	a.Writes += other.Writes
	a.CAMSearches += other.CAMSearches
	a.Shifts += other.Shifts
	a.Occupancy += other.Occupancy
}

// Scale multiplies every counter by w (used for SimPoint-weighted merging).
func (a *Activity) Scale(w float64) {
	a.Reads = uint64(float64(a.Reads) * w)
	a.Writes = uint64(float64(a.Writes) * w)
	a.CAMSearches = uint64(float64(a.CAMSearches) * w)
	a.Shifts = uint64(float64(a.Shifts) * w)
	a.Occupancy = uint64(float64(a.Occupancy) * w)
}

// Stats is everything a timing run measures.
type Stats struct {
	Cycles uint64
	Insts  uint64

	Branches     uint64
	Mispredicts  uint64 // direction or target mispredictions resolved at execute
	BTBMisses    uint64 // taken control flow without a BTB target (front-end bubble)
	Loads        uint64
	Stores       uint64
	DCacheHits   uint64
	DCacheMisses uint64
	ICacheHits   uint64
	ICacheMisses uint64
	L2Hits       uint64
	L2Misses     uint64
	StoreForward uint64 // loads satisfied by store-to-load forwarding

	Comp [NumComponents]Activity

	// ExecOps counts executed operations per rv64.Class (indexed by the
	// class value); the power model charges execution-unit energy from it.
	ExecOps [16]uint64

	// IntIssueSlotCycles[i] counts cycles in which integer issue slot i held
	// a valid entry — the per-slot activity behind the paper's Fig. 8.
	IntIssueSlotCycles []uint64
}

// NewStats returns a Stats sized for cfg.
func NewStats(cfg *Config) *Stats {
	return &Stats{IntIssueSlotCycles: make([]uint64, cfg.IntIssueSlots)}
}

// IPC returns instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// MispredictRate returns mispredictions per branch.
func (s *Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Add accumulates other into s (slot arrays must match in length).
func (s *Stats) Add(other *Stats) {
	s.Cycles += other.Cycles
	s.Insts += other.Insts
	s.Branches += other.Branches
	s.Mispredicts += other.Mispredicts
	s.BTBMisses += other.BTBMisses
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.DCacheHits += other.DCacheHits
	s.DCacheMisses += other.DCacheMisses
	s.ICacheHits += other.ICacheHits
	s.ICacheMisses += other.ICacheMisses
	s.L2Hits += other.L2Hits
	s.L2Misses += other.L2Misses
	s.StoreForward += other.StoreForward
	for c := range s.Comp {
		s.Comp[c].Add(other.Comp[c])
	}
	for i := range s.ExecOps {
		s.ExecOps[i] += other.ExecOps[i]
	}
	for i := range s.IntIssueSlotCycles {
		if i < len(other.IntIssueSlotCycles) {
			s.IntIssueSlotCycles[i] += other.IntIssueSlotCycles[i]
		}
	}
}

// ScaleWeighted multiplies all counters by w.
func (s *Stats) ScaleWeighted(w float64) {
	s.Cycles = uint64(float64(s.Cycles) * w)
	s.Insts = uint64(float64(s.Insts) * w)
	s.Branches = uint64(float64(s.Branches) * w)
	s.Mispredicts = uint64(float64(s.Mispredicts) * w)
	s.BTBMisses = uint64(float64(s.BTBMisses) * w)
	s.Loads = uint64(float64(s.Loads) * w)
	s.Stores = uint64(float64(s.Stores) * w)
	s.DCacheHits = uint64(float64(s.DCacheHits) * w)
	s.DCacheMisses = uint64(float64(s.DCacheMisses) * w)
	s.ICacheHits = uint64(float64(s.ICacheHits) * w)
	s.ICacheMisses = uint64(float64(s.ICacheMisses) * w)
	s.L2Hits = uint64(float64(s.L2Hits) * w)
	s.L2Misses = uint64(float64(s.L2Misses) * w)
	s.StoreForward = uint64(float64(s.StoreForward) * w)
	for c := range s.Comp {
		s.Comp[c].Scale(w)
	}
	for i := range s.ExecOps {
		s.ExecOps[i] = uint64(float64(s.ExecOps[i]) * w)
	}
	for i := range s.IntIssueSlotCycles {
		s.IntIssueSlotCycles[i] = uint64(float64(s.IntIssueSlotCycles[i]) * w)
	}
}

// ComponentPower is a plain per-component power vector in milliwatts, used
// by estimators (like the pre-RTL baseline) that do not produce the full
// leakage/internal/switching split.
type ComponentPower struct {
	MW [NumComponents]float64
}

// TotalMW sums all components.
func (c *ComponentPower) TotalMW() float64 {
	var t float64
	for _, v := range c.MW {
		t += v
	}
	return t
}
