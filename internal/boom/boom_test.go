package boom

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// mustNew builds a core, failing the test on an invalid config.
func mustNew(t testing.TB, cfg Config) *Core {
	t.Helper()
	core, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return core
}

// mustRun drives the core, failing the test on a model error (deadlock).
func mustRun(t testing.TB, core *Core, next func(*sim.Retired) bool, maxRetire uint64) uint64 {
	t.Helper()
	n, err := core.Run(next, maxRetire)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// traceFrom returns a trace-feeding closure for a loaded CPU.
func traceFrom(t *testing.T, cpu *sim.CPU) func(*sim.Retired) bool {
	t.Helper()
	return func(r *sim.Retired) bool {
		if cpu.Halted {
			return false
		}
		if err := cpu.Step(r); err != nil {
			t.Fatalf("functional step: %v", err)
		}
		return true
	}
}

// runWorkload drives a tiny-scale workload through the timing model.
func runWorkload(t *testing.T, name string, cfg Config) *Stats {
	t.Helper()
	w, err := workloads.Build(name, workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := w.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	core := mustNew(t, cfg)
	mustRun(t, core, traceFrom(t, cpu), math.MaxUint64)
	return core.Stats()
}

// runAsm drives a custom assembly program through the timing model.
func runAsm(t *testing.T, src string, cfg Config) *Stats {
	t.Helper()
	p, err := asm.Assemble(src + "\n\tli a7, 93\n\tecall\n")
	if err != nil {
		t.Fatal(err)
	}
	cpu := sim.New()
	cpu.Load(p)
	core := mustNew(t, cfg)
	mustRun(t, core, traceFrom(t, cpu), math.MaxUint64)
	return core.Stats()
}

func TestConfigsValidate(t *testing.T) {
	for _, cfg := range Configs() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if MegaBOOM().IntIssueSlots != 40 {
		t.Error("MegaBOOM must have 40 integer issue slots (Fig. 8)")
	}
	if MediumBOOM().BTBEntries*2 != LargeBOOM().BTBEntries {
		t.Error("MediumBOOM BTB must be half of LargeBOOM's")
	}
	if MegaBOOM().DCacheMSHRs != 2*LargeBOOM().DCacheMSHRs {
		t.Error("MegaBOOM must double LargeBOOM's MSHRs")
	}
	if _, err := ConfigByName("nope"); err == nil {
		t.Error("ConfigByName must reject unknown names")
	}
}

func TestRetiredCountMatchesFunctional(t *testing.T) {
	w, err := workloads.Build("bitcount", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	// Functional instruction count.
	cpu, _ := w.NewCPU()
	var want uint64
	for !cpu.Halted {
		if err := cpu.Step(nil); err != nil {
			t.Fatal(err)
		}
		want++
	}
	st := runWorkload(t, "bitcount", MediumBOOM())
	if st.Insts != want {
		t.Fatalf("timing retired %d, functional %d", st.Insts, want)
	}
}

// Independent adds should sustain close to the machine width; a serial
// dependency chain should sustain roughly 1 IPC.
func TestILPExtremes(t *testing.T) {
	parallel := `
	.text
	li  s0, 20000
loop:
	addi t1, t1, 1
	addi t2, t2, 1
	addi t3, t3, 1
	addi t4, t4, 1
	addi t5, t5, 1
	addi t6, t6, 1
	addi s0, s0, -1
	bnez s0, loop
`
	serial := `
	.text
	li  s0, 20000
loop:
	addi t1, t1, 1
	addi t1, t1, 1
	addi t1, t1, 1
	addi t1, t1, 1
	addi t1, t1, 1
	addi t1, t1, 1
	addi s0, s0, -1
	bnez s0, loop
`
	for _, cfg := range Configs() {
		ps := runAsm(t, parallel, cfg)
		ss := runAsm(t, serial, cfg)
		if ps.IPC() < float64(cfg.DecodeWidth)*0.75 {
			t.Errorf("%s: parallel IPC %.2f too low for width %d", cfg.Name, ps.IPC(), cfg.DecodeWidth)
		}
		if ss.IPC() > 1.5 {
			t.Errorf("%s: serial IPC %.2f should be near 1", cfg.Name, ss.IPC())
		}
		if ps.IPC() <= ss.IPC() {
			t.Errorf("%s: parallel (%.2f) must beat serial (%.2f)", cfg.Name, ps.IPC(), ss.IPC())
		}
	}
}

func TestIPCScalesWithWidth(t *testing.T) {
	ipcs := map[string]float64{}
	for _, cfg := range Configs() {
		ipcs[cfg.Name] = runWorkload(t, "sha", cfg).IPC()
	}
	if !(ipcs["MegaBOOM"] > ipcs["LargeBOOM"] && ipcs["LargeBOOM"] > ipcs["MediumBOOM"]) {
		t.Errorf("sha IPC ordering wrong: %+v", ipcs)
	}
	if ipcs["MediumBOOM"] > 2.0 {
		t.Errorf("MediumBOOM IPC %.2f exceeds its width", ipcs["MediumBOOM"])
	}
}

func TestShaFastestTarfindSlowest(t *testing.T) {
	cfg := MegaBOOM()
	sha := runWorkload(t, "sha", cfg).IPC()
	tar := runWorkload(t, "tarfind", cfg).IPC()
	dijkstra := runWorkload(t, "dijkstra", cfg).IPC()
	if sha <= tar || sha <= dijkstra {
		t.Errorf("sha IPC %.2f must top tarfind %.2f and dijkstra %.2f", sha, tar, dijkstra)
	}
	if tar > 1.2 {
		t.Errorf("tarfind IPC %.2f suspiciously high", tar)
	}
}

// Fig. 8 behaviour: Dijkstra keeps the integer issue queue busy deep into
// the 40 MegaBOOM slots; Sha concentrates on the first dozen.
func TestIssueQueueOccupancyShape(t *testing.T) {
	cfg := MegaBOOM()
	dij := runWorkload(t, "dijkstra", cfg)
	sha := runWorkload(t, "sha", cfg)
	dijOcc := float64(dij.Comp[CompIntIssue].Occupancy) / float64(dij.Cycles)
	shaOcc := float64(sha.Comp[CompIntIssue].Occupancy) / float64(sha.Cycles)
	if dijOcc <= shaOcc {
		t.Errorf("dijkstra int-IQ occupancy %.1f must exceed sha %.1f", dijOcc, shaOcc)
	}
	// High slots: dijkstra must use slot 30 far more than sha, and sha's
	// backlog must stay concentrated (slot 20+ nearly idle).
	slot := 30
	dijHigh := float64(dij.IntIssueSlotCycles[slot]) / float64(dij.Cycles)
	shaHigh := float64(sha.IntIssueSlotCycles[slot]) / float64(sha.Cycles)
	if dijHigh < 4*shaHigh {
		t.Errorf("slot %d utilization: dijkstra %.3f vs sha %.3f", slot, dijHigh, shaHigh)
	}
	if shaMid := float64(sha.IntIssueSlotCycles[20]) / float64(sha.Cycles); shaMid > 0.1 {
		t.Errorf("sha slot 20 utilization %.3f should be near idle", shaMid)
	}
}

func TestBranchPredictionQuality(t *testing.T) {
	// A long counted loop is nearly perfectly predictable.
	loop := `
	.text
	li  s0, 50000
loop:
	addi s0, s0, -1
	bnez s0, loop
`
	st := runAsm(t, loop, MediumBOOM())
	if st.MispredictRate() > 0.01 {
		t.Errorf("counted loop mispredict rate %.4f too high", st.MispredictRate())
	}
	// tarfind's data-dependent compares must mispredict much more.
	tar := runWorkload(t, "tarfind", MediumBOOM())
	if tar.MispredictRate() < 0.02 {
		t.Errorf("tarfind mispredict rate %.4f suspiciously low", tar.MispredictRate())
	}
}

func TestDCacheSensitivity(t *testing.T) {
	// Cyclic streaming over 24 KiB: thrashes MediumBOOM's 16 KiB L1D but
	// becomes resident in MegaBOOM's 32 KiB after the first pass.
	stream := `
	.text
	li  s0, 40             # passes
outer:
	li  t0, 0x2000000
	li  t1, 384            # 384 × 64 B lines = 24 KiB
inner:
	ld  t2, 0(t0)
	addi t0, t0, 64
	addi t1, t1, -1
	bnez t1, inner
	addi s0, s0, -1
	bnez s0, outer
`
	med := runAsm(t, stream, MediumBOOM())
	mega := runAsm(t, stream, MegaBOOM())
	medRate := float64(med.DCacheMisses) / float64(med.DCacheHits+med.DCacheMisses)
	megaRate := float64(mega.DCacheMisses) / float64(mega.DCacheHits+mega.DCacheMisses)
	if medRate < 0.5 {
		t.Errorf("24 KiB cyclic stream should thrash a 16 KiB LRU L1D; miss rate %.3f", medRate)
	}
	if megaRate > 0.2 {
		t.Errorf("24 KiB stream should be resident in a 32 KiB L1D; miss rate %.3f", megaRate)
	}
	if med.IPC() >= mega.IPC() {
		t.Errorf("thrashing Medium IPC %.2f should trail resident Mega IPC %.2f", med.IPC(), mega.IPC())
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	src := `
	.text
	li  s0, 10000
	li  t0, 0x300000
loop:
	sd  t1, 0(t0)
	ld  t2, 0(t0)      # must forward from the store
	addi s0, s0, -1
	bnez s0, loop
`
	st := runAsm(t, src, MediumBOOM())
	if st.StoreForward < 9000 {
		t.Errorf("only %d forwards for 10000 store-load pairs", st.StoreForward)
	}
}

func TestDeterminism(t *testing.T) {
	a := runWorkload(t, "stringsearch", LargeBOOM())
	b := runWorkload(t, "stringsearch", LargeBOOM())
	if a.Cycles != b.Cycles || a.Insts != b.Insts || a.Mispredicts != b.Mispredicts {
		t.Fatalf("nondeterministic timing: %d/%d vs %d/%d cycles/insts",
			a.Cycles, a.Insts, b.Cycles, b.Insts)
	}
	for c := Component(0); c < NumComponents; c++ {
		if a.Comp[c] != b.Comp[c] {
			t.Errorf("component %v activity differs across identical runs", c)
		}
	}
}

func TestWarmupResetStats(t *testing.T) {
	w, err := workloads.Build("sha", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := w.NewCPU()
	core := mustNew(t, MediumBOOM())
	next := traceFrom(t, cpu)
	mustRun(t, core, next, 20_000) // warm-up
	if core.Stats().Insts == 0 {
		t.Fatal("warm-up retired nothing")
	}
	core.ResetStats()
	if core.Stats().Insts != 0 || core.Stats().Cycles != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
	mustRun(t, core, next, 20_000)
	if core.Stats().Insts == 0 {
		t.Fatal("post-warm-up run retired nothing")
	}
}

func TestFpWorkloadUsesFpStructures(t *testing.T) {
	fft := runWorkload(t, "fft", LargeBOOM())
	bc := runWorkload(t, "bitcount", LargeBOOM())
	if fft.Comp[CompFpIssue].Occupancy == 0 || fft.Comp[CompFpRF].Reads == 0 {
		t.Error("fft must exercise FP issue queue and FP register file")
	}
	if bc.Comp[CompFpRF].Reads > fft.Comp[CompFpRF].Reads/100 {
		t.Errorf("bitcount FP RF reads (%d) should be negligible vs fft (%d)",
			bc.Comp[CompFpRF].Reads, fft.Comp[CompFpRF].Reads)
	}
	// Key Takeaway #3: FP rename snapshot activity exists even in integer
	// code (allocation-list copies on branches).
	if bc.Comp[CompFpRename].Shifts == 0 {
		t.Error("integer workload must still exercise FP rename snapshots")
	}
}

func TestGShareAblation(t *testing.T) {
	cfg := MediumBOOM()
	cfg.Predictor = PredictorGShare
	st := runWorkload(t, "dijkstra", cfg)
	tage := runWorkload(t, "dijkstra", MediumBOOM())
	// GShare does one table read per lookup vs TAGE's tables+1: activity
	// must be far lower (this is what drives the 2.5× power ablation).
	if st.Comp[CompBranchPredictor].Reads >= tage.Comp[CompBranchPredictor].Reads {
		t.Errorf("gshare BP reads %d should be below TAGE %d",
			st.Comp[CompBranchPredictor].Reads, tage.Comp[CompBranchPredictor].Reads)
	}
	if st.Insts != tage.Insts {
		t.Error("predictor choice must not change the committed path")
	}
}

func TestCacheModelLRU(t *testing.T) {
	c := newCacheModel(1, 2, 64) // 1 KiB, 2-way, 64 B lines → 8 sets
	a := uint64(0x0000)
	b := uint64(0x2000) // same set, different tag
	d := uint64(0x4000) // same set again
	if c.access(a) {
		t.Fatal("cold miss expected")
	}
	if !c.access(a) {
		t.Fatal("hit expected")
	}
	c.access(b)      // set now holds a,b
	if c.access(d) { // evicts LRU = a
		t.Fatal("conflict miss expected")
	}
	if c.access(a) {
		t.Fatal("a must have been evicted (LRU)")
	}
	if !c.access(d) || !c.access(a) {
		t.Fatal("most-recent lines must hit")
	}
	if !c.probe(a) {
		t.Fatal("probe must see resident line")
	}
	if c.probe(0x8000) {
		t.Fatal("probe must not allocate")
	}
}

func TestStatsAddAndScale(t *testing.T) {
	cfg := MediumBOOM()
	a := NewStats(&cfg)
	a.Cycles, a.Insts = 100, 200
	a.Comp[CompRob].Reads = 50
	a.IntIssueSlotCycles[3] = 40
	b := NewStats(&cfg)
	b.Cycles, b.Insts = 10, 20
	b.Comp[CompRob].Reads = 5
	a.Add(b)
	if a.Cycles != 110 || a.Insts != 220 || a.Comp[CompRob].Reads != 55 {
		t.Fatalf("Add wrong: %+v", a)
	}
	a.ScaleWeighted(0.5)
	if a.Cycles != 55 || a.Comp[CompRob].Reads != 27 {
		t.Fatalf("Scale wrong: cycles=%d rob=%d", a.Cycles, a.Comp[CompRob].Reads)
	}
	if a.IntIssueSlotCycles[3] != 20 {
		t.Fatalf("slot scale wrong: %d", a.IntIssueSlotCycles[3])
	}
}
