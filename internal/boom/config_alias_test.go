package boom

import (
	"reflect"
	"testing"
)

// TestConfigByNameNoAliasing: a caller mutating the Config it got back
// (the -predictor ablation does exactly this) must not poison later
// lookups of the same name — each resolution is an independent copy.
func TestConfigByNameNoAliasing(t *testing.T) {
	a, err := ConfigByName("medium")
	if err != nil {
		t.Fatal(err)
	}
	pristine := a
	a.Predictor = PredictorGShare
	a.RobEntries = 1
	a.Name = "poisoned"

	b, err := ConfigByName("medium")
	if err != nil {
		t.Fatal(err)
	}
	if b != pristine {
		t.Fatalf("second lookup reflects the caller's mutation:\n got %+v\nwant %+v", b, pristine)
	}
	if full, err := ConfigByName("MediumBOOM"); err != nil || full != pristine {
		t.Fatalf("full-name lookup drifted: %+v, %v", full, err)
	}
}

// TestConfigsNoAliasing: mutating the slice Configs returns — elements or
// order — must not leak into later calls.
func TestConfigsNoAliasing(t *testing.T) {
	first := Configs()
	first[0].IntIssueSlots = 0
	first[2].Name = "scrambled"
	first[0], first[1] = first[1], first[0]

	second := Configs()
	want := []string{"MediumBOOM", "LargeBOOM", "MegaBOOM"}
	for i, c := range second {
		if c.Name != want[i] {
			t.Fatalf("config %d is %q, want %q (mutation leaked)", i, c.Name, want[i])
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("config %d no longer valid: %v", i, err)
		}
	}
}

// TestConfigRemainsScalarOnly: the defensive-copy guarantee relies on
// Config assignment being a deep copy. If a reference-typed field
// (slice, map, pointer) is ever added, the copies in ConfigByName and
// Configs silently become shallow — this test turns that into a loud
// failure pointing at the field.
func TestConfigRemainsScalarOnly(t *testing.T) {
	ct := reflect.TypeOf(Config{})
	for i := 0; i < ct.NumField(); i++ {
		f := ct.Field(i)
		switch f.Type.Kind() {
		case reflect.Slice, reflect.Map, reflect.Ptr, reflect.Chan, reflect.Func, reflect.Interface:
			t.Errorf("Config.%s is a %s: value assignment no longer deep-copies; "+
				"ConfigByName/Configs must clone this field explicitly", f.Name, f.Type.Kind())
		}
	}
}
