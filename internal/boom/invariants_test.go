package boom

import (
	"math"
	"testing"

	"repro/internal/workloads"
)

// TestInvariantsHoldAcrossSuite runs every workload on every configuration
// with per-cycle structural checking enabled.
func TestInvariantsHoldAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("invariant sweep is slow")
	}
	for _, cfg := range Configs() {
		for _, name := range workloads.Names() {
			w, err := workloads.Build(name, workloads.ScaleTiny)
			if err != nil {
				t.Fatal(err)
			}
			cpu, err := w.NewCPU()
			if err != nil {
				t.Fatal(err)
			}
			core := mustNew(t, cfg)
			core.CheckInvariants(true)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s on %s: %v", name, cfg.Name, r)
					}
				}()
				mustRun(t, core, traceFrom(t, cpu), math.MaxUint64)
			}()
			if core.Stats().Insts == 0 {
				t.Fatalf("%s on %s retired nothing", name, cfg.Name)
			}
		}
	}
}

// TestInvariantsWithGShare covers the ablation path too.
func TestInvariantsWithGShare(t *testing.T) {
	cfg := MediumBOOM()
	cfg.Predictor = PredictorGShare
	w, err := workloads.Build("tarfind", workloads.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := w.NewCPU()
	core := mustNew(t, cfg)
	core.CheckInvariants(true)
	mustRun(t, core, traceFrom(t, cpu), math.MaxUint64)
}
