package boom

import (
	"strings"
	"testing"
)

// TestValidateRejections drives every structural invariant: each case
// breaks exactly one field (or field relation) of a known-good config and
// names the check that must fire. The error text carries the check name,
// so a failed parametric expansion (internal/dse) tells the user which
// knob produced the impossible corner.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		field string
		mut   func(c *Config)
		want  string // the "invalid <what>" fragment
	}{
		{"FetchWidth", func(c *Config) { c.FetchWidth = 0 }, "widths"},
		{"DecodeWidth", func(c *Config) { c.DecodeWidth = 0 }, "widths"},
		{"RetireWidth", func(c *Config) { c.RetireWidth = 0 }, "widths"},
		{"DecodeWidth > FetchWidth", func(c *Config) { c.DecodeWidth = c.FetchWidth + 1 }, "decode vs fetch width"},
		{"RetireWidth < DecodeWidth", func(c *Config) { c.RetireWidth = c.DecodeWidth - 1 }, "retire vs decode width"},
		{"FetchBufferEntries zero", func(c *Config) { c.FetchBufferEntries = 0 }, "fetch buffer"},
		{"FetchBufferEntries < FetchWidth", func(c *Config) { c.FetchBufferEntries = c.FetchWidth - 1 }, "fetch buffer"},
		{"BTBEntries", func(c *Config) { c.BTBEntries = 0 }, "predictor tables"},
		{"RASEntries", func(c *Config) { c.RASEntries = 0 }, "predictor tables"},
		{"TageTables", func(c *Config) { c.TageTables = 0 }, "predictor tables"},
		{"TageEntries", func(c *Config) { c.TageEntries = 0 }, "predictor tables"},
		{"GShareEntries", func(c *Config) { c.GShareEntries = 0 }, "predictor tables"},
		{"RobEntries", func(c *Config) { c.RobEntries = 2*c.DecodeWidth - 1 }, "ROB size"},
		{"IntPhysRegs", func(c *Config) { c.IntPhysRegs = 32 }, "physical registers"},
		{"FpPhysRegs", func(c *Config) { c.FpPhysRegs = 32 }, "physical registers"},
		{"IntIssueSlots", func(c *Config) { c.IntIssueSlots = 0 }, "issue slots"},
		{"MemIssueSlots", func(c *Config) { c.MemIssueSlots = 0 }, "issue slots"},
		{"FpIssueSlots", func(c *Config) { c.FpIssueSlots = 0 }, "issue slots"},
		{"IntIssueWidth zero", func(c *Config) { c.IntIssueWidth = 0 }, "issue widths"},
		{"MemIssueWidth zero", func(c *Config) { c.MemIssueWidth = 0 }, "issue widths"},
		{"FpIssueWidth zero", func(c *Config) { c.FpIssueWidth = 0 }, "issue widths"},
		{"IntIssueWidth > slots", func(c *Config) {
			c.IntIssueWidth = c.IntIssueSlots + 1
			c.IntRFReadPorts = 2 * c.IntIssueWidth
			c.IntRFWritePorts = c.IntIssueWidth + 1
		}, "issue width vs slots"},
		{"MemIssueWidth > slots", func(c *Config) { c.MemIssueWidth = c.MemIssueSlots + 1 }, "issue width vs slots"},
		{"FpIssueWidth > slots", func(c *Config) { c.FpIssueWidth = c.FpIssueSlots + 1 }, "issue width vs slots"},
		{"IntRFReadPorts", func(c *Config) { c.IntRFReadPorts = 2*c.IntIssueWidth - 1 }, "int RF read ports"},
		{"IntRFWritePorts", func(c *Config) { c.IntRFWritePorts = c.IntIssueWidth }, "int RF write ports"},
		{"LdqEntries", func(c *Config) { c.LdqEntries = 0 }, "LSU queues"},
		{"StqEntries", func(c *Config) { c.StqEntries = 0 }, "LSU queues"},
		{"DCacheKiB", func(c *Config) { c.DCacheKiB = 0 }, "D-cache geometry"},
		{"DCacheWays zero", func(c *Config) { c.DCacheWays = 0 }, "D-cache geometry"},
		{"LineBytes", func(c *Config) { c.LineBytes = 0 }, "D-cache geometry"},
		{"DCacheWays non-power-of-two", func(c *Config) { c.DCacheWays = 3 }, "D-cache sets"},
		{"DCache sets non-power-of-two", func(c *Config) { c.DCacheKiB = 24 }, "D-cache sets"},
		{"ICacheWays non-power-of-two", func(c *Config) { c.ICacheWays = 6 }, "I-cache sets"},
		{"ICache sets non-power-of-two", func(c *Config) { c.ICacheKiB = 48 }, "I-cache sets"},
		{"DCacheMSHRs", func(c *Config) { c.DCacheMSHRs = 0 }, "MSHRs"},
		{"L2KiB", func(c *Config) { c.L2KiB = 0 }, "L2 geometry"},
		{"L2Ways non-power-of-two", func(c *Config) { c.L2Ways = 12 }, "L2 geometry"},
		{"L2 sets non-power-of-two", func(c *Config) { c.L2KiB = 768 }, "L2 geometry"},
		{"L2Latency", func(c *Config) { c.L2Latency = 0 }, "memory latencies"},
		{"MemLatency", func(c *Config) { c.MemLatency = 0 }, "memory latencies"},
		{"ClockMHz", func(c *Config) { c.ClockMHz = 0 }, "clock"},
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			cfg := MediumBOOM()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a config with bad %s", tc.field)
			}
			if !strings.Contains(err.Error(), "invalid "+tc.want) {
				t.Fatalf("error %q does not name the %q check", err, tc.want)
			}
		})
	}
}

func TestPowerOfTwo(t *testing.T) {
	for n, want := range map[int]bool{-4: false, 0: false, 1: true, 2: true, 3: false, 64: true, 96: false, 4096: true} {
		if got := powerOfTwo(n); got != want {
			t.Errorf("powerOfTwo(%d) = %v, want %v", n, got, want)
		}
	}
}
