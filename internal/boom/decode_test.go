package boom

import (
	"testing"

	"repro/internal/rv64"
	"repro/internal/sim"
)

// pullOne feeds exactly one retired record through pullTrace and returns
// the cracked µop, recycling it so the next pull reuses the arena.
func pullOne(t *testing.T, c *Core, r sim.Retired) uop {
	t.Helper()
	c.eof = false
	c.next = func(out *sim.Retired) bool {
		*out = r
		return true
	}
	u := c.pullTrace()
	if u == nil {
		t.Fatal("pullTrace returned nil")
	}
	got := *u
	c.peek = nil
	c.freeUops = append(c.freeUops, u)
	return got
}

// TestDecodeCacheInvalidation: the per-PC decode cache must never serve a
// stale cracked form. Across checkpoint boundaries the same PC can carry a
// different instruction (different checkpoint text, overlay, or an index
// collision), so a cached entry whose full instruction encoding no longer
// matches must be re-cracked.
func TestDecodeCacheInvalidation(t *testing.T) {
	c := mustNew(t, MediumBOOM())
	const pc = 0x8000_0000

	add := sim.Retired{PC: pc, NextPC: pc + 4,
		Inst: rv64.Inst{Op: rv64.ADD, Rd: 3, Rs1: 1, Rs2: 2}}
	u1 := pullOne(t, c, add)
	if u1.class != rv64.ClassALU || u1.qSel != qInt || !u1.dstInt || u1.nIntSrc != 2 {
		t.Fatalf("add cracked wrong: %+v", u1.uopStatic)
	}

	// Same PC, new instruction: a load must not inherit the ALU cracking.
	ld := sim.Retired{PC: pc, NextPC: pc + 4, MemAddr: 0x9000,
		Inst: rv64.Inst{Op: rv64.LD, Rd: 3, Rs1: 1, Imm: 16}}
	u2 := pullOne(t, c, ld)
	if u2.class != rv64.ClassLoad || u2.qSel != qMem || !u2.isLoad || u2.memSize != 8 {
		t.Fatalf("reused stale decode entry: %+v", u2.uopStatic)
	}
	if u2.nIntSrc != 1 || u2.nFpSrc != 0 {
		t.Fatalf("load source counts wrong: %+v", u2.uopStatic)
	}

	// And back again: revalidation must work in both directions.
	u3 := pullOne(t, c, add)
	if u3.class != rv64.ClassALU || u3.isLoad {
		t.Fatalf("reused stale decode entry: %+v", u3.uopStatic)
	}

	// Index collision: a PC that maps to the same direct-mapped entry must
	// evict cleanly, not alias.
	aliasPC := uint64(pc + decEntries*4)
	fadd := sim.Retired{PC: aliasPC, NextPC: aliasPC + 4,
		Inst: rv64.Inst{Op: rv64.FADDD, Rd: 3, Rs1: 1, Rs2: 2}}
	u4 := pullOne(t, c, fadd)
	if u4.class != rv64.ClassFPALU || u4.qSel != qFp || !u4.dstFp || u4.nFpSrc != 2 {
		t.Fatalf("collision served stale entry: %+v", u4.uopStatic)
	}
	u5 := pullOne(t, c, add)
	if u5.class != rv64.ClassALU || u5.dstFp {
		t.Fatalf("collision eviction failed: %+v", u5.uopStatic)
	}
}

// TestCrackMatchesPredicates cross-checks the cached crack against the
// rv64.Op predicate tables for every opcode, so a new instruction class
// can't silently diverge from the historical per-fetch derivation.
func TestCrackMatchesPredicates(t *testing.T) {
	for op := rv64.Op(1); ; op++ {
		if _, known := rv64.OpByName(op.Name()); !known {
			break // past the last defined opcode
		}
		in := rv64.Inst{Op: op, Rd: 5, Rs1: 6, Rs2: 7, Rs3: 8, Imm: 32}
		var st uopStatic
		crack(in, &st)
		if st.class != op.Class() {
			t.Errorf("%v: class %v != %v", op, st.class, op.Class())
		}
		wantInt := 0
		if op.HasRs1() && !op.FPRs1() {
			wantInt++
		}
		if op.HasRs2() && !op.FPRs2() {
			wantInt++
		}
		wantFp := 0
		if op.HasRs1() && op.FPRs1() {
			wantFp++
		}
		if op.HasRs2() && op.FPRs2() {
			wantFp++
		}
		if op.HasRs3() {
			wantFp++
		}
		if int(st.nIntSrc) != wantInt || int(st.nFpSrc) != wantFp {
			t.Errorf("%v: src counts int=%d fp=%d, want %d/%d",
				op, st.nIntSrc, st.nFpSrc, wantInt, wantFp)
		}
		wantDstInt, wantDstFp := false, false
		if op.HasRd() {
			if op.FPRd() {
				wantDstFp = true
			} else {
				wantDstInt = true // rd=5, never x0 here
			}
		}
		if st.dstInt != wantDstInt || st.dstFp != wantDstFp {
			t.Errorf("%v: dst int=%v fp=%v, want %v/%v",
				op, st.dstInt, st.dstFp, wantDstInt, wantDstFp)
		}
		// x0 integer sources must drop both the dependency slot and the
		// register-file read.
		zero := rv64.Inst{Op: op, Rd: 0, Rs1: 0, Rs2: 0, Rs3: 0}
		crack(zero, &st)
		if op.HasRs1() && !op.FPRs1() && st.srcKind[0] != srcNone {
			t.Errorf("%v: x0 rs1 still tracked", op)
		}
		if op.HasRd() && !op.FPRd() && st.dstInt {
			t.Errorf("%v: x0 rd still a writer", op)
		}
	}
}
