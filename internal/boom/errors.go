package boom

import (
	"errors"
	"fmt"
)

// ErrDeadlock is the sentinel matched by errors.Is when the detailed model
// detects a stuck pipeline. The concrete error is a *DeadlockError carrying
// the pipeline state at detection time.
var ErrDeadlock = errors.New("boom: pipeline deadlock")

// DeadlockError reports a pipeline that stopped retiring instructions — a
// model bug, not a workload property. It is returned by Run (never
// panicked) so a supervising sweep can fail the one (workload, config)
// task, keep its siblings, and log enough state to debug the model.
type DeadlockError struct {
	Cycle    uint64
	Retired  uint64
	ROB      int
	FetchBuf int
	IntQ     int
	MemQ     int
	FpQ      int
	STQ      int
	MSHRs    int
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("boom: pipeline deadlock at cycle %d (retired %d, rob %d, fb %d, intQ %d, memQ %d, fpQ %d, stq %d, mshrs %d)",
		e.Cycle, e.Retired, e.ROB, e.FetchBuf, e.IntQ, e.MemQ, e.FpQ, e.STQ, e.MSHRs)
}

// Is matches the ErrDeadlock sentinel.
func (e *DeadlockError) Is(target error) bool { return target == ErrDeadlock }
