package boom

import (
	"fmt"
	"io"

	"repro/internal/binio"
)

// Binary codec for Stats, used by the artifact cache to persist a detailed
// measurement. The encoding is canonical (same Stats → same bytes) so
// cached measurements can be byte-compared against recomputations.

// statsMagic identifies the serialized Stats format ("BMSTATS1").
const statsMagic = 0x424D5354_41545331

const maxSlotCycles = 1 << 16 // sanity bound on per-slot array length

// EncodeStats writes s in the binary format read by DecodeStats.
func EncodeStats(w io.Writer, s *Stats) error {
	bw := binio.NewWriter(w)
	bw.U64(statsMagic)
	bw.U64(s.Cycles)
	bw.U64(s.Insts)
	bw.U64(s.Branches)
	bw.U64(s.Mispredicts)
	bw.U64(s.BTBMisses)
	bw.U64(s.Loads)
	bw.U64(s.Stores)
	bw.U64(s.DCacheHits)
	bw.U64(s.DCacheMisses)
	bw.U64(s.ICacheHits)
	bw.U64(s.ICacheMisses)
	bw.U64(s.L2Hits)
	bw.U64(s.L2Misses)
	bw.U64(s.StoreForward)
	for c := range s.Comp {
		a := &s.Comp[c]
		bw.U64(a.Reads)
		bw.U64(a.Writes)
		bw.U64(a.CAMSearches)
		bw.U64(a.Shifts)
		bw.U64(a.Occupancy)
	}
	for _, v := range s.ExecOps {
		bw.U64(v)
	}
	bw.Int(len(s.IntIssueSlotCycles))
	for _, v := range s.IntIssueSlotCycles {
		bw.U64(v)
	}
	return bw.Err()
}

// DecodeStats reads a Stats in the format produced by EncodeStats.
func DecodeStats(r io.Reader) (*Stats, error) {
	br := binio.NewReader(r)
	if m := br.U64(); br.Err() == nil && m != statsMagic {
		return nil, fmt.Errorf("boom: bad stats magic %#x", m)
	}
	s := &Stats{}
	s.Cycles = br.U64()
	s.Insts = br.U64()
	s.Branches = br.U64()
	s.Mispredicts = br.U64()
	s.BTBMisses = br.U64()
	s.Loads = br.U64()
	s.Stores = br.U64()
	s.DCacheHits = br.U64()
	s.DCacheMisses = br.U64()
	s.ICacheHits = br.U64()
	s.ICacheMisses = br.U64()
	s.L2Hits = br.U64()
	s.L2Misses = br.U64()
	s.StoreForward = br.U64()
	for c := range s.Comp {
		a := &s.Comp[c]
		a.Reads = br.U64()
		a.Writes = br.U64()
		a.CAMSearches = br.U64()
		a.Shifts = br.U64()
		a.Occupancy = br.U64()
	}
	for i := range s.ExecOps {
		s.ExecOps[i] = br.U64()
	}
	s.IntIssueSlotCycles = make([]uint64, br.Len(maxSlotCycles))
	for i := range s.IntIssueSlotCycles {
		s.IntIssueSlotCycles[i] = br.U64()
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("boom: decoding stats: %w", err)
	}
	return s, nil
}
