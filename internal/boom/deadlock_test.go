package boom

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestRunDeadlockTypedError: a stuck pipeline must surface from Run as a
// *DeadlockError matching the ErrDeadlock sentinel — returned, never
// panicked — carrying the pipeline state at detection time.
func TestRunDeadlockTypedError(t *testing.T) {
	c := mustNew(t, MediumBOOM())
	// Plant a uop that can never issue: it depends on itself, so the dep
	// is never ready, the ROB head never commits, and the progress
	// watchdog must fire.
	u := &uop{seq: 1, state: stWaiting}
	u.dep[0] = depRef{u: u, seq: 1}
	c.rob.pushBack(u)
	c.intQ = append(c.intQ, u)

	n, err := c.Run(func(*sim.Retired) bool { return false }, 1)
	if err == nil {
		t.Fatal("stuck pipeline must return an error")
	}
	if n != 0 {
		t.Errorf("retired %d instructions from a stuck pipeline", n)
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("error %v does not match the ErrDeadlock sentinel", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not a *DeadlockError", err)
	}
	if de.ROB != 1 || de.IntQ != 1 {
		t.Errorf("state snapshot rob=%d intQ=%d, want 1/1", de.ROB, de.IntQ)
	}
	if de.Cycle == 0 {
		t.Error("detection cycle not recorded")
	}
	for _, want := range []string{"deadlock", "rob 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestNewInvalidConfigError: New must reject a broken configuration with
// an error naming it — not panic, not build a core that misbehaves later.
func TestNewInvalidConfigError(t *testing.T) {
	cfg := MediumBOOM()
	cfg.RobEntries = 0
	c, err := New(cfg)
	if err == nil {
		t.Fatal("New must reject RobEntries=0")
	}
	if c != nil {
		t.Error("New must not return a core alongside an error")
	}
	if !strings.Contains(err.Error(), cfg.Name) {
		t.Errorf("error %q does not name the config", err)
	}
}
