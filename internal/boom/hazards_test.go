package boom

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/sim"
)

// The unpipelined divider is a structural hazard: back-to-back independent
// divides serialize at the divide latency.
func TestDividerStructuralHazard(t *testing.T) {
	divs := `
	.text
	li  s0, 2000
	li  t0, 1000
	li  t1, 7
loop:
	divu t2, t0, t1
	divu t3, t0, t1
	divu t4, t0, t1
	addi s0, s0, -1
	bnez s0, loop
`
	st := runAsm(t, divs, MegaBOOM())
	// 3 divides per iteration × latDiv cycles each, even on a 4-wide core.
	cyclesPerIter := float64(st.Cycles) / 2000
	if cyclesPerIter < 2.5*latDiv {
		t.Errorf("%.1f cycles/iter for 3 serialized divides (div latency %d)", cyclesPerIter, latDiv)
	}
}

// The FP divider is likewise unpipelined.
func TestFPDividerStructuralHazard(t *testing.T) {
	src := `
	.text
	li   t0, 3
	fcvt.d.l fa0, t0
	li   t0, 7
	fcvt.d.l fa1, t0
	li   s0, 2000
loop:
	fdiv.d fa2, fa1, fa0
	fdiv.d fa3, fa1, fa0
	addi s0, s0, -1
	bnez s0, loop
`
	st := runAsm(t, src, MegaBOOM())
	cyclesPerIter := float64(st.Cycles) / 2000
	if cyclesPerIter < 1.8*latFPDiv {
		t.Errorf("%.1f cycles/iter for 2 serialized FP divides", cyclesPerIter)
	}
}

// Pipelined multiplies must NOT serialize: independent muls sustain the
// issue width even though each takes latMul cycles.
func TestMultiplierIsPipelined(t *testing.T) {
	src := `
	.text
	li  s0, 5000
	li  t0, 3
loop:
	mul t1, t0, t0
	mul t2, t0, t0
	mul t3, t0, t0
	mul t4, t0, t0
	addi s0, s0, -1
	bnez s0, loop
`
	st := runAsm(t, src, MegaBOOM())
	if ipc := st.IPC(); ipc < 2.5 {
		t.Errorf("independent muls IPC %.2f — multiplier wrongly serialized?", ipc)
	}
}

// A deep call chain overflows the RAS and must still resolve correctly
// (with mispredicts), not wedge the pipeline.
func TestRASOverflow(t *testing.T) {
	src := `
	.text
	li   s1, 300
outer:
	li   a0, 24          # deeper than any RAS (8/16 entries)
	call rec
	addi s1, s1, -1
	bnez s1, outer
	j    done
rec:
	addi sp, sp, -8
	sd   ra, 0(sp)
	addi a0, a0, -1
	beqz a0, unwind
	call rec
unwind:
	ld   ra, 0(sp)
	addi sp, sp, 8
	ret
done:
`
	st := runAsm(t, src, MediumBOOM())
	if st.Insts == 0 {
		t.Fatal("nothing retired")
	}
	if st.Mispredicts == 0 {
		t.Error("RAS overflow should cause return mispredicts")
	}
}

// Loads that miss with all MSHRs busy must replay, not be dropped: a burst
// of independent misses on a 2-MSHR Medium core still completes and takes
// longer than on 8-MSHR Mega.
func TestMSHRPressure(t *testing.T) {
	src := `
	.text
	li  s0, 300
outer:
	li  t0, 0x2000000
	li  a1, 0x2010000
	li  a2, 0x2020000
	li  a3, 0x2030000
	li  t1, 64
inner:
	ld  t2, 0(t0)
	ld  t3, 0(a1)
	ld  t4, 0(a2)
	ld  t5, 0(a3)
	addi t0, t0, 64
	addi a1, a1, 64
	addi a2, a2, 64
	addi a3, a3, 64
	addi t1, t1, -1
	bnez t1, inner
	addi s0, s0, -1
	bnez s0, outer
`
	med := runAsm(t, src, MediumBOOM())
	mega := runAsm(t, src, MegaBOOM())
	if med.Insts != mega.Insts {
		t.Fatalf("retire counts differ: %d vs %d", med.Insts, mega.Insts)
	}
	if med.Cycles <= mega.Cycles {
		t.Errorf("2-MSHR Medium (%d cycles) should trail 8-MSHR Mega (%d cycles)",
			med.Cycles, mega.Cycles)
	}
}

// BTB misses on taken branches cost a small decode bubble, visible as a
// counter.
func TestBTBMissCounting(t *testing.T) {
	// A chain of forward jumps to fresh addresses defeats the BTB once each.
	src := `
	.text
	li  s0, 3
outer:
	j l1
l1:
	j l2
l2:
	j l3
l3:
	j l4
l4:
	addi s0, s0, -1
	bnez s0, outer
`
	st := runAsm(t, src, MediumBOOM())
	if st.BTBMisses < 4 {
		t.Errorf("expected ≥4 BTB misses on first pass, got %d", st.BTBMisses)
	}
	// After training, later passes should hit: misses ≪ total jumps.
	if st.BTBMisses > 8 {
		t.Errorf("BTB not learning: %d misses for 12 jumps", st.BTBMisses)
	}
}

// The load queue bounds in-flight loads: a loop of loads never exceeds LDQ
// capacity (covered by invariants) and still commits everything.
func TestLoadQueueBound(t *testing.T) {
	src := `
	.text
	li  s0, 5000
	li  t0, 0x2000000
loop:
	ld  t1, 0(t0)
	ld  t2, 8(t0)
	ld  t3, 16(t0)
	ld  t4, 24(t0)
	addi s0, s0, -1
	bnez s0, loop
`
	cfg := MediumBOOM()
	cfg.LdqEntries = 4
	p := mustProgram(t, src)
	cpu := newCPUFor(t, p)
	core := mustNew(t, cfg)
	core.CheckInvariants(true)
	mustRun(t, core, traceFrom(t, cpu), ^uint64(0))
	if core.Stats().Insts < 25000 {
		t.Fatalf("retired %d", core.Stats().Insts)
	}
}

func mustProgram(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src + "\n\tli a7, 93\n\tecall\n")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newCPUFor(t *testing.T, p *asm.Program) *sim.CPU {
	t.Helper()
	c := sim.New()
	c.Load(p)
	return c
}
