package boom

import "fmt"

// CheckInvariants enables per-cycle structural checking: every queue must
// respect its configured capacity, program order must be preserved in the
// ROB and store queue, and in-flight register counts must stay within the
// physical register files. It costs ~2× slowdown and is meant for tests.
func (c *Core) CheckInvariants(on bool) { c.checkInv = on }

func (c *Core) assertInvariants() {
	fail := func(format string, args ...interface{}) {
		panic("boom invariant: " + fmt.Sprintf(format, args...))
	}
	if c.fetchBuf.len() > c.cfg.FetchBufferEntries {
		fail("fetch buffer %d > %d", c.fetchBuf.len(), c.cfg.FetchBufferEntries)
	}
	if c.rob.len() > c.cfg.RobEntries {
		fail("ROB %d > %d", c.rob.len(), c.cfg.RobEntries)
	}
	if len(c.intQ) > c.cfg.IntIssueSlots {
		fail("int IQ %d > %d", len(c.intQ), c.cfg.IntIssueSlots)
	}
	if len(c.memQ) > c.cfg.MemIssueSlots {
		fail("mem IQ %d > %d", len(c.memQ), c.cfg.MemIssueSlots)
	}
	if len(c.fpQ) > c.cfg.FpIssueSlots {
		fail("fp IQ %d > %d", len(c.fpQ), c.cfg.FpIssueSlots)
	}
	if c.stq.len() > c.cfg.StqEntries {
		fail("STQ %d > %d", c.stq.len(), c.cfg.StqEntries)
	}
	if c.ldqUsed < 0 || c.ldqUsed > c.cfg.LdqEntries {
		fail("LDQ %d of %d", c.ldqUsed, c.cfg.LdqEntries)
	}
	if c.intInFlight < 0 || c.intInFlight > c.cfg.IntPhysRegs-32 {
		fail("int in-flight writers %d of %d", c.intInFlight, c.cfg.IntPhysRegs-32)
	}
	if c.fpInFlight < 0 || c.fpInFlight > c.cfg.FpPhysRegs-32 {
		fail("fp in-flight writers %d of %d", c.fpInFlight, c.cfg.FpPhysRegs-32)
	}
	if c.mshrsBusy < 0 || c.mshrsBusy > c.cfg.DCacheMSHRs {
		fail("MSHRs busy %d of %d", c.mshrsBusy, c.cfg.DCacheMSHRs)
	}
	if c.wrongInt < 0 || len(c.intQ)+c.wrongInt > c.cfg.IntIssueSlots {
		fail("wrong-path int overflow: %d+%d > %d", len(c.intQ), c.wrongInt, c.cfg.IntIssueSlots)
	}
	// Program order: ROB and STQ sequence numbers strictly increase.
	for i := 1; i < c.rob.len(); i++ {
		if c.rob.at(i).seq <= c.rob.at(i-1).seq {
			fail("ROB order violated at %d", i)
		}
	}
	for i := 1; i < c.stq.len(); i++ {
		if c.stq.at(i).seq <= c.stq.at(i-1).seq {
			fail("STQ order violated at %d", i)
		}
	}
	// Issue queues hold only un-issued uops; completed uops must be gone.
	for _, q := range [][]*uop{c.intQ, c.memQ, c.fpQ} {
		for _, u := range q {
			if u.state != stWaiting {
				fail("issued uop still queued: seq %d state %d", u.seq, u.state)
			}
		}
	}
}
