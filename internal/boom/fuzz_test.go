package boom

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// genProgram emits a random but always-terminating program: straight-line
// blocks of random register ops, loads/stores into a scratch region, short
// forward branches, calls to a tiny leaf, and a counted outer loop.
func genProgram(rng *rand.Rand, blocks int) string {
	var sb strings.Builder
	sb.WriteString("\t.text\n\tli s0, 40\n\tli s1, 0x2000000\nouter:\n")
	reg := func() string { return fmt.Sprintf("t%d", rng.Intn(7)) }
	areg := func() string { return fmt.Sprintf("a%d", rng.Intn(6)) }
	for b := 0; b < blocks; b++ {
		n := 3 + rng.Intn(10)
		for i := 0; i < n; i++ {
			switch rng.Intn(12) {
			case 0:
				fmt.Fprintf(&sb, "\tadd %s, %s, %s\n", reg(), reg(), areg())
			case 1:
				fmt.Fprintf(&sb, "\txori %s, %s, %d\n", reg(), reg(), rng.Intn(2048))
			case 2:
				fmt.Fprintf(&sb, "\tmul %s, %s, %s\n", reg(), areg(), reg())
			case 3:
				fmt.Fprintf(&sb, "\tdivu %s, %s, %s\n", reg(), reg(), areg())
			case 4:
				fmt.Fprintf(&sb, "\tld %s, %d(s1)\n", reg(), 8*rng.Intn(64))
			case 5:
				fmt.Fprintf(&sb, "\tsd %s, %d(s1)\n", reg(), 8*rng.Intn(64))
			case 6:
				fmt.Fprintf(&sb, "\tslli %s, %s, %d\n", reg(), reg(), rng.Intn(32))
			case 7:
				fmt.Fprintf(&sb, "\tsltu %s, %s, %s\n", areg(), reg(), reg())
			case 8:
				fmt.Fprintf(&sb, "\tlbu %s, %d(s1)\n", reg(), rng.Intn(256))
			case 9:
				fmt.Fprintf(&sb, "\taddw %s, %s, %s\n", reg(), reg(), reg())
			case 10:
				fmt.Fprintf(&sb, "\tcall leaf%d\n", rng.Intn(2))
			default:
				// Data-dependent short forward branch.
				fmt.Fprintf(&sb, "\tbne %s, %s, skip_%d_%d\n\taddi %s, %s, 1\nskip_%d_%d:\n",
					reg(), areg(), b, i, reg(), reg(), b, i)
			}
		}
	}
	sb.WriteString("\taddi s0, s0, -1\n\tbeq s0, zero, done\n\tj outer\ndone:\n\tj exit\n")
	for l := 0; l < 2; l++ {
		fmt.Fprintf(&sb, "leaf%d:\n\taddi a6, a6, %d\n\tret\n", l, l+1)
	}
	sb.WriteString("exit:\n")
	return sb.String()
}

// TestRandomProgramsThroughPipeline fuzzes the timing model: random
// programs must run to completion on every configuration with structural
// invariants intact, retiring exactly the functional instruction count.
func TestRandomProgramsThroughPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 30; trial++ {
		src := genProgram(rng, 2+rng.Intn(5))
		p := mustProgram(t, src)
		// Functional reference count.
		ref := newCPUFor(t, p)
		var want uint64
		for !ref.Halted {
			if err := ref.Step(nil); err != nil {
				t.Fatalf("trial %d: functional: %v", trial, err)
			}
			want++
		}
		for _, cfg := range Configs() {
			cpu := newCPUFor(t, p)
			core := mustNew(t, cfg)
			core.CheckInvariants(true)
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("trial %d on %s: %v\nprogram:\n%s", trial, cfg.Name, r, src)
					}
				}()
				mustRun(t, core, traceFrom(t, cpu), ^uint64(0))
			}()
			if core.Stats().Insts != want {
				t.Fatalf("trial %d on %s: retired %d, functional %d",
					trial, cfg.Name, core.Stats().Insts, want)
			}
		}
	}
}
