package boom

import (
	"fmt"
	"io"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/rv64"
	"repro/internal/sim"
)

// Pipeline latencies (cycles), mirroring SonicBOOM's functional units at
// 500 MHz. Loads see latLoadHit from issue to usable data on an L1 hit; L2
// and DRAM latencies are additive.
const (
	latALU     = 1
	latMul     = 3
	latDiv     = 16 // unpipelined iterative divider
	latFPALU   = 4
	latFPMul   = 4
	latFPDiv   = 15 // unpipelined
	latStore   = 1
	latLoadHit = 4
	latForward = 2 // store-to-load forward

	redirectPenalty = 9 // execute-resolved mispredict to first refetched instruction (BOOM ~12-16 total incl. resolve)
	btbBubble       = 2 // decode-resolved target (taken branch without BTB entry)

	ringSize = 512 // event ring; must exceed the longest latency
)

type uopState uint8

const (
	stWaiting uopState = iota
	stIssued
	stDone
)

// depRef is a reference to a producing uop. seq disambiguates recycled uop
// objects: if the pointer's seq moved on, the producer has committed and the
// dependency is satisfied. ready memoizes a satisfied dependency by nilling
// the pointer — readiness is monotonic (seq values never repeat and stDone
// holds until the uop commits and is recycled), so subsequent checks reduce
// to a nil test.
type depRef struct {
	u   *uop
	seq uint64
}

func (d *depRef) ready() bool {
	u := d.u
	if u == nil {
		return true
	}
	if u.seq != d.seq || u.state == stDone {
		d.u = nil
		return true
	}
	return false
}

type uop struct {
	seq     uint64
	pc      uint64
	nextPC  uint64
	memAddr uint64
	taken   bool

	uopStatic // cracked form, copied from the per-PC decode cache

	dep [3]depRef

	state     uopState
	doneAt    uint64
	mispred   bool
	addrKnown bool // stores: STA has issued

	// pipeline-trace timestamps (filled only when tracing is on)
	fetchedAt, dispatchedAt, issuedAt uint64
}

// Core is one timing-model instance. Create with New, drive with Run.
type Core struct {
	cfg     Config
	stats   *Stats
	metrics *metrics.Registry     // optional; nil disables instrumentation
	inj     *faultinject.Injector // optional; nil disables the boom.tick site
	injSite []string              // "boom.tick" + scope segments

	bp     *bpred
	icache *cacheModel
	dcache *cacheModel
	l2     *cacheModel

	cycle   uint64
	seq     uint64
	retired uint64

	next func(*sim.Retired) bool
	trc  sim.Retired // reusable trace record (keeps pullTrace allocation-free)
	peek *uop        // one-uop fetch lookahead
	eof  bool

	dec []decEntry // per-PC decode/crack cache

	fetchBuf uopRing
	rob      uopRing // FIFO, oldest first
	intQ     []*uop
	memQ     []*uop
	fpQ      []*uop
	stq      uopRing // stores in program order, pruned at commit
	stdWait  []*uop  // stores whose address issued but data is pending (STD)

	// Wrong-path pressure: while a mispredicted branch is unresolved the
	// real front end keeps dispatching wrong-path uops into the issue
	// queues. The trace has no wrong path, so the model accounts the
	// occupancy/activity (not timing) of those phantom entries here.
	wrongInt, wrongMem, wrongFp int

	lastInt [32]depRef
	lastFp  [32]depRef

	intInFlight, fpInFlight int
	ldqUsed                 int

	events     [ringSize][]*uop
	mshrredeem [ringSize]int
	mshrsBusy  int

	fetchReadyAt  uint64
	redirect      *uop
	redirectDisp  bool // the mispredicted branch has dispatched (wrong path may fill queues)
	divBusyUntil  uint64
	fdivBusyUntil uint64

	// dispatched-uop class mix, used to shape wrong-path pressure
	dispInt, dispMem, dispFp uint64

	checkInv bool

	traceW    io.Writer
	traceLeft uint64

	// Per-cycle activity accumulators, flushed into stats at interval
	// boundaries (Stats/ResetStats/end of Run) instead of per cycle.
	accCycles uint64
	accOcc    [NumComponents]uint64
	accHist   []uint64 // accHist[k] = cycles with int-queue occupancy k (clamped)

	freeUops []*uop
	arena    []uop
}

// New builds a core for cfg. Invalid configurations are returned as errors
// — the detailed model never aborts the process over its inputs.
func New(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("boom: invalid config %q: %w", cfg.Name, err)
	}
	c := &Core{cfg: cfg}
	c.stats = NewStats(&cfg)
	c.bp = newBPred(&c.cfg, c.stats)
	c.icache = newCacheModel(cfg.ICacheKiB, cfg.ICacheWays, cfg.LineBytes)
	c.dcache = newCacheModel(cfg.DCacheKiB, cfg.DCacheWays, cfg.LineBytes)
	c.l2 = newCacheModel(cfg.L2KiB, cfg.L2Ways, cfg.LineBytes)

	c.dec = make([]decEntry, decEntries)
	c.fetchBuf = newUopRing(cfg.FetchBufferEntries)
	c.rob = newUopRing(cfg.RobEntries)
	c.stq = newUopRing(cfg.StqEntries)
	c.intQ = make([]*uop, 0, cfg.IntIssueSlots)
	c.memQ = make([]*uop, 0, cfg.MemIssueSlots)
	c.fpQ = make([]*uop, 0, cfg.FpIssueSlots)
	c.stdWait = make([]*uop, 0, cfg.StqEntries)
	c.accHist = make([]uint64, cfg.IntIssueSlots+1)

	// µop arena: the in-flight population is bounded by ROB + fetch buffer
	// + the one-entry peek slot, so every µop the model will ever hold live
	// is preallocated here and recycled through freeUops.
	c.arena = make([]uop, cfg.RobEntries+cfg.FetchBufferEntries+2)
	c.freeUops = make([]*uop, 0, len(c.arena))
	for i := range c.arena {
		c.freeUops = append(c.freeUops, &c.arena[i])
	}
	return c, nil
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Stats returns the accumulated statistics (flushing any batched per-cycle
// accumulators first, so the counters are always current at the call).
func (c *Core) Stats() *Stats {
	c.flushAcc()
	return c.stats
}

// ResetStats zeroes the counters while keeping all microarchitectural state
// (predictors, caches, queues) — this is the warm-up boundary of the
// SimPoint methodology. Batched accumulators from the warm-up are discarded
// with the rest of the counters.
func (c *Core) ResetStats() {
	c.stats = NewStats(&c.cfg)
	c.bp.stats = c.stats
	c.accCycles = 0
	c.accOcc = [NumComponents]uint64{}
	for i := range c.accHist {
		c.accHist[i] = 0
	}
}

// flushAcc folds the batched per-cycle accumulators into stats. The
// int-issue occupancy histogram flushes as a suffix sum: slot i was
// occupied on every cycle whose occupancy exceeded i, so
// IntIssueSlotCycles[i] gains the count of cycles with occupancy > i —
// bit-identical to the per-cycle slot loop it replaces.
func (c *Core) flushAcc() {
	s := c.stats
	s.Cycles += c.accCycles
	c.accCycles = 0
	for i, v := range c.accOcc {
		if v != 0 {
			s.Comp[i].Occupancy += v
			c.accOcc[i] = 0
		}
	}
	var suffix uint64
	for k := len(c.accHist) - 1; k >= 1; k-- {
		suffix += c.accHist[k]
		c.accHist[k] = 0
		if suffix != 0 {
			s.IntIssueSlotCycles[k-1] += suffix
		}
	}
}

// SetMetrics attaches an optional metrics registry: every Run records
// retired instructions, cycles, wall time, and detailed-model throughput
// (KIPS). A nil registry (the default) disables instrumentation.
func (c *Core) SetMetrics(reg *metrics.Registry) { c.metrics = reg }

// injCheckMask throttles the fault-injection site inside Run to one check
// every 8192 cycles — off the per-cycle hot path, frequent enough to land
// inside any measured interval.
const injCheckMask = 1<<13 - 1

// SetFaultInjector attaches an optional fault injector; scope segments
// (typically workload and config name) are appended to the "boom.tick"
// site so chaos specs can target one measurement deterministically. A nil
// injector (the default) disables the site.
func (c *Core) SetFaultInjector(inj *faultinject.Injector, scope ...string) {
	c.inj = inj
	c.injSite = append([]string{"boom.tick"}, scope...)
}

// Run feeds committed instructions from next through the pipeline until
// maxRetire further instructions have committed (or the trace ends). It
// returns the number retired by this call.
//
// A stuck pipeline — no commit for >100k cycles — is a model bug, not a
// workload property. It is returned as a *DeadlockError (errors.Is
// ErrDeadlock) with the pipeline state at detection time, so a supervised
// sweep can isolate the faulty (workload, config) task instead of losing
// the whole campaign.
func (c *Core) Run(next func(*sim.Retired) bool, maxRetire uint64) (uint64, error) {
	if c.metrics != nil {
		t0, cyc0, ret0 := time.Now(), c.cycle, c.retired
		defer func() {
			c.recordRun(time.Since(t0), c.cycle-cyc0, c.retired-ret0)
		}()
	}
	defer c.flushAcc()
	c.next = next
	c.eof = false
	start := c.retired
	target := start + maxRetire
	lastRetired, lastProgress := c.retired, c.cycle
	for c.retired < target {
		if c.eof && c.peek == nil && c.rob.len() == 0 && c.fetchBuf.len() == 0 {
			break
		}
		if c.inj != nil && c.cycle&injCheckMask == 0 {
			if err := c.inj.Hit(c.injSite...); err != nil {
				return c.retired - start, err
			}
		}
		c.step()
		if c.retired != lastRetired {
			lastRetired, lastProgress = c.retired, c.cycle
		} else if c.cycle-lastProgress > 100_000 {
			return c.retired - start, &DeadlockError{
				Cycle: c.cycle, Retired: c.retired,
				ROB: c.rob.len(), FetchBuf: c.fetchBuf.len(),
				IntQ: len(c.intQ), MemQ: len(c.memQ), FpQ: len(c.fpQ),
				STQ: c.stq.len(), MSHRs: c.mshrsBusy,
			}
		}
	}
	return c.retired - start, nil
}

// recordRun publishes one Run call's throughput into the registry.
func (c *Core) recordRun(wall time.Duration, cycles, retired uint64) {
	c.metrics.Counter("boom.retired").Add(int64(retired))
	c.metrics.Counter("boom.cycles").Add(int64(cycles))
	c.metrics.Counter("boom.wall_ns").Add(wall.Nanoseconds())
	if s := wall.Seconds(); s > 0 && retired > 0 {
		c.metrics.Histogram("boom.kips").Observe(int64(float64(retired) / s / 1000))
	}
}

func (c *Core) allocUop() *uop {
	if n := len(c.freeUops); n > 0 {
		u := c.freeUops[n-1]
		c.freeUops = c.freeUops[:n-1]
		*u = uop{}
		return u
	}
	return new(uop)
}

// pullTrace refills the peek slot from the trace. The static part of the
// µop comes from the per-PC decode cache; only the dynamic fields are
// filled per instance. Dependencies are resolved against the rename state
// at dispatch.
func (c *Core) pullTrace() *uop {
	if c.peek != nil {
		return c.peek
	}
	if c.eof {
		return nil
	}
	r := &c.trc
	if !c.next(r) {
		c.eof = true
		return nil
	}
	u := c.allocUop()
	c.seq++
	u.seq = c.seq
	u.pc = r.PC
	u.nextPC = r.NextPC
	u.memAddr = r.MemAddr
	u.taken = r.Taken
	u.uopStatic = *c.lookupDecode(r.PC, r.Inst)
	c.peek = u
	return u
}

func (c *Core) step() {
	c.processCompletions()
	c.commit()
	c.issueAll()
	c.dispatch()
	c.fetch()
	c.accountOccupancy()
	if c.checkInv {
		c.assertInvariants()
	}
	c.cycle++
}

// processCompletions handles every uop whose result becomes available this
// cycle: register-file writeback and issue-queue wakeup broadcast.
func (c *Core) processCompletions() {
	slot := c.cycle % ringSize
	if n := c.mshrredeem[slot]; n > 0 {
		c.mshrsBusy -= n
		c.mshrredeem[slot] = 0
	}
	done := c.events[slot]
	if len(done) == 0 {
		return
	}
	c.events[slot] = done[:0]
	for _, u := range done {
		u.state = stDone
		if u.dstInt {
			c.stats.Comp[CompIntRF].Writes++
		}
		if u.dstFp {
			c.stats.Comp[CompFpRF].Writes++
		}
		if u.dstInt || u.dstFp {
			// Wakeup: every valid issue-queue entry compares its source
			// tags against the broadcast tag (CAM activity scales with
			// occupancy — the effect behind Key Takeaway #4).
			c.stats.Comp[CompIntIssue].CAMSearches += uint64(len(c.intQ))
			c.stats.Comp[CompMemIssue].CAMSearches += uint64(len(c.memQ))
			c.stats.Comp[CompFpIssue].CAMSearches += uint64(len(c.fpQ))
		}
		if u.mispred && c.redirect == u {
			// Branch resolved in execute: schedule the front-end redirect
			// and flush the wrong-path entries from the issue queues.
			c.redirect = nil
			c.fetchReadyAt = c.cycle + redirectPenalty
			c.wrongInt, c.wrongMem, c.wrongFp = 0, 0, 0
		}
	}
}

// commit retires completed instructions in order.
func (c *Core) commit() {
	n := 0
	for n < c.cfg.RetireWidth && c.rob.len() > 0 {
		u := c.rob.front()
		if u.state != stDone {
			break
		}
		c.rob.popFront()
		c.stats.Comp[CompRob].Reads++
		if u.isStore {
			// Store data leaves the store queue and is written to the L1D.
			c.stats.Comp[CompDCache].Writes++
			c.stats.Comp[CompLSU].Reads++
			if !c.dcache.probe(u.memAddr) {
				// Write miss: allocate through L2 (no pipeline stall; the
				// store buffer hides it, but the energy is real).
				c.dcache.access(u.memAddr)
				c.l2.access(u.memAddr)
			}
			// Prune from the store queue (it is always the oldest).
			if c.stq.len() > 0 && c.stq.front() == u {
				c.stq.popFront()
			}
		}
		if u.isLoad {
			c.ldqUsed--
			c.stats.Comp[CompLSU].Reads++
		}
		if u.dstInt {
			c.intInFlight--
		}
		if u.dstFp {
			c.fpInFlight--
		}
		c.retired++
		c.stats.Insts++
		c.traceRetire(u)
		c.freeUops = append(c.freeUops, u)
		n++
	}
}

func (c *Core) schedule(u *uop, doneAt uint64) {
	if u.state == stWaiting {
		c.traceIssue(u)
	}
	u.state = stIssued
	u.doneAt = doneAt
	c.events[doneAt%ringSize] = append(c.events[doneAt%ringSize], u)
}

func (c *Core) ready(u *uop) bool {
	return u.dep[0].ready() && u.dep[1].ready() && u.dep[2].ready()
}

// issueAll runs the three distributed scheduler queues. The integer and
// memory queues share the integer register file read ports; the FP queue
// (plus FP store data) uses the FP ports.
func (c *Core) issueAll() {
	intReads := c.cfg.IntRFReadPorts
	fpReads := c.cfg.FpRFReadPorts
	c.issueInt(&intReads)
	c.issueMem(&intReads, &fpReads)
	c.issueFp(&fpReads)
}

func (c *Core) issueInt(intReads *int) {
	issued := 0
	for i := 0; i < len(c.intQ) && issued < c.cfg.IntIssueWidth; {
		u := c.intQ[i]
		if !c.ready(u) {
			i++
			continue
		}
		reads := u.nIntSrcs()
		if reads > *intReads {
			i++
			continue
		}
		var lat uint64
		switch u.class {
		case rv64.ClassMul:
			lat = latMul
		case rv64.ClassDiv:
			if c.cycle < c.divBusyUntil {
				i++
				continue
			}
			lat = latDiv
			c.divBusyUntil = c.cycle + latDiv
		default:
			lat = latALU
		}
		*intReads -= reads
		c.stats.Comp[CompIntRF].Reads += uint64(reads)
		c.removeFromQueue(&c.intQ, i, CompIntIssue)
		c.schedule(u, c.cycle+lat)
		c.countExec(u)
		issued++
	}
}

func (c *Core) issueMem(intReads, fpReads *int) {
	// Store-data (STD) completion: stores whose address generation already
	// issued finish as soon as their data operand arrives.
	for i := 0; i < len(c.stdWait); {
		u := c.stdWait[i]
		if !u.dep[1].ready() {
			i++
			continue
		}
		if u.fpData {
			if *fpReads < 1 {
				i++
				continue
			}
			*fpReads--
			c.stats.Comp[CompFpRF].Reads++
		} else {
			if *intReads < 1 {
				i++
				continue
			}
			*intReads--
			c.stats.Comp[CompIntRF].Reads++
		}
		c.stdWait[i] = c.stdWait[len(c.stdWait)-1]
		c.stdWait = c.stdWait[:len(c.stdWait)-1]
		c.schedule(u, c.cycle+latStore)
	}

	issued := 0
	for i := 0; i < len(c.memQ) && issued < c.cfg.MemIssueWidth; {
		u := c.memQ[i]
		if *intReads < 1 { // AGU always reads the base register
			break
		}
		if u.isStore {
			// STA issues as soon as the address operand is ready, BOOM's
			// STA/STD split: younger loads then disambiguate against it.
			if !u.dep[0].ready() {
				i++
				continue
			}
			*intReads--
			c.stats.Comp[CompIntRF].Reads++
			u.addrKnown = true
			// Store issue searches the load queue for ordering violations.
			c.stats.Comp[CompLSU].CAMSearches += uint64(c.ldqUsed)
			c.removeFromQueue(&c.memQ, i, CompMemIssue)
			c.countExec(u)
			if u.dep[1].ready() {
				// Data already available: STD fires with the STA.
				if u.fpData {
					c.stats.Comp[CompFpRF].Reads++
				} else {
					c.stats.Comp[CompIntRF].Reads++
				}
				c.schedule(u, c.cycle+latStore)
			} else {
				c.stdWait = append(c.stdWait, u)
			}
			issued++
			continue
		}

		if !c.ready(u) {
			i++
			continue
		}
		// Load: older stores must have known addresses, then forward or
		// access the L1D.
		blocked := false
		var forwarder *uop
		for j, nstq := 0, c.stq.len(); j < nstq; j++ {
			s := c.stq.at(j)
			if s.seq >= u.seq {
				break
			}
			if !s.addrKnown {
				blocked = true
				break
			}
			if rangesOverlap(s.memAddr, uint64(s.memSize), u.memAddr, uint64(u.memSize)) {
				forwarder = s // youngest older matching store wins
			}
		}
		if blocked {
			i++
			continue
		}
		if forwarder != nil && forwarder.state != stDone {
			// Matching older store whose data hasn't arrived: wait.
			i++
			continue
		}
		// Load issue searches the store queue (CAM) for forwarding.
		c.stats.Comp[CompLSU].CAMSearches += uint64(c.stq.len())
		if forwarder != nil {
			*intReads--
			c.stats.Comp[CompIntRF].Reads++
			c.stats.StoreForward++
			c.removeFromQueue(&c.memQ, i, CompMemIssue)
			c.schedule(u, c.cycle+latForward)
			c.countExec(u)
			issued++
			continue
		}
		// L1D access; misses need an MSHR.
		hit := c.dcache.probe(u.memAddr)
		if !hit && c.mshrsBusy >= c.cfg.DCacheMSHRs {
			i++ // replay next cycle
			continue
		}
		*intReads--
		c.stats.Comp[CompIntRF].Reads++
		c.stats.Comp[CompDCache].Reads++
		var lat uint64
		if hit {
			c.dcache.access(u.memAddr) // update LRU
			c.stats.DCacheHits++
			lat = latLoadHit
		} else {
			c.dcache.access(u.memAddr) // allocate
			c.stats.DCacheMisses++
			c.mshrsBusy++
			extra := uint64(c.cfg.L2Latency)
			if c.l2.access(u.memAddr) {
				c.stats.L2Hits++
			} else {
				c.stats.L2Misses++
				extra += uint64(c.cfg.MemLatency)
			}
			lat = latLoadHit + extra
			c.mshrredeem[(c.cycle+lat)%ringSize]++
			c.stats.Comp[CompDCache].Writes++ // line fill
		}
		c.removeFromQueue(&c.memQ, i, CompMemIssue)
		c.schedule(u, c.cycle+lat)
		c.countExec(u)
		issued++
	}
}

func (c *Core) issueFp(fpReads *int) {
	issued := 0
	for i := 0; i < len(c.fpQ) && issued < c.cfg.FpIssueWidth; {
		u := c.fpQ[i]
		if !c.ready(u) {
			i++
			continue
		}
		reads := u.nFpSrcs()
		intReads := u.nIntSrcs() // fcvt/fmv from the int file
		if reads > *fpReads {
			i++
			continue
		}
		var lat uint64
		switch u.class {
		case rv64.ClassFPMul:
			lat = latFPMul
		case rv64.ClassFPDiv:
			if c.cycle < c.fdivBusyUntil {
				i++
				continue
			}
			lat = latFPDiv
			c.fdivBusyUntil = c.cycle + latFPDiv
		default:
			lat = latFPALU
		}
		*fpReads -= reads
		c.stats.Comp[CompFpRF].Reads += uint64(reads)
		c.stats.Comp[CompIntRF].Reads += uint64(intReads)
		c.removeFromQueue(&c.fpQ, i, CompFpIssue)
		c.schedule(u, c.cycle+lat)
		c.countExec(u)
		issued++
	}
}

// removeFromQueue removes index i from a collapsing queue, charging the
// entry shifts that compaction performs in hardware (Key Takeaway #5).
func (c *Core) removeFromQueue(q *[]*uop, i int, comp Component) {
	s := *q
	c.stats.Comp[comp].Reads++ // entry read-out on grant
	c.stats.Comp[comp].Shifts += uint64(len(s) - i - 1)
	copy(s[i:], s[i+1:])
	*q = s[:len(s)-1]
}

func (c *Core) countExec(u *uop) {
	c.stats.ExecOps[u.class]++
}

// dispatch renames and dispatches up to DecodeWidth instructions from the
// fetch buffer into the ROB and the issue queues.
func (c *Core) dispatch() {
	for n := 0; n < c.cfg.DecodeWidth && c.fetchBuf.len() > 0; n++ {
		u := c.fetchBuf.front()
		if c.rob.len() >= c.cfg.RobEntries {
			return
		}
		// Queue selection, remaining capacity (wrong-path entries occupy
		// slots until the flush), and the activity component are all keyed
		// by the µop's precomputed queue selector.
		var q *[]*uop
		var cap_ int
		var comp Component
		switch u.qSel {
		case qMem:
			q, cap_, comp = &c.memQ, c.cfg.MemIssueSlots-c.wrongMem, CompMemIssue
		case qFp:
			q, cap_, comp = &c.fpQ, c.cfg.FpIssueSlots-c.wrongFp, CompFpIssue
		default:
			q, cap_, comp = &c.intQ, c.cfg.IntIssueSlots-c.wrongInt, CompIntIssue
		}
		if len(*q) >= cap_ {
			return
		}
		if u.dstInt && c.intInFlight >= c.cfg.IntPhysRegs-32 {
			return
		}
		if u.dstFp && c.fpInFlight >= c.cfg.FpPhysRegs-32 {
			return
		}
		if u.isLoad && c.ldqUsed >= c.cfg.LdqEntries {
			return
		}
		if u.isStore && c.stq.len() >= c.cfg.StqEntries {
			return
		}

		c.fetchBuf.popFront()
		c.stats.Comp[CompFetchBuffer].Reads++
		c.traceDispatch(u)
		if u == c.redirect {
			c.redirectDisp = true
		}

		// Rename: map-table reads for sources, a write for the destination,
		// and — on any branch that can mispredict — a snapshot copy of both
		// free lists (BOOM's allocation lists; Key Takeaway #3).
		c.renameSources(u)
		renameComp := CompIntRename
		if u.fpRename {
			renameComp = CompFpRename
		}
		c.stats.Comp[renameComp].Reads += uint64(u.nSrcs())
		if u.dstInt || u.dstFp {
			c.stats.Comp[renameComp].Writes++
		}
		if u.class == rv64.ClassBranch || u.class == rv64.ClassJALR || u.class == rv64.ClassJAL {
			c.stats.Comp[CompIntRename].Shifts += uint64(c.cfg.IntPhysRegs)
			c.stats.Comp[CompFpRename].Shifts += uint64(c.cfg.FpPhysRegs)
		}

		if u.dstInt {
			c.intInFlight++
			c.lastInt[u.rd] = depRef{u, u.seq}
		}
		if u.dstFp {
			c.fpInFlight++
			c.lastFp[u.rd] = depRef{u, u.seq}
		}
		if u.isLoad {
			c.ldqUsed++
			c.stats.Loads++
			c.stats.Comp[CompLSU].Writes++
		}
		if u.isStore {
			c.stq.pushBack(u)
			c.stats.Stores++
			c.stats.Comp[CompLSU].Writes++
		}

		c.rob.pushBack(u)
		c.stats.Comp[CompRob].Writes++
		*q = append(*q, u)
		switch comp {
		case CompMemIssue:
			c.dispMem++
		case CompFpIssue:
			c.dispFp++
		default:
			c.dispInt++
		}
		c.stats.Comp[comp].Writes++
		c.stats.Comp[CompOther].Reads++ // decode logic
	}
}

// renameSources fills u.dep from the rename map, walking the source-slot
// table precomputed at crack time.
func (c *Core) renameSources(u *uop) {
	for d := 0; d < 3; d++ {
		switch u.srcKind[d] {
		case srcInt:
			u.dep[d] = c.lastInt[u.srcReg[d]]
		case srcFp:
			u.dep[d] = c.lastFp[u.srcReg[d]]
		}
	}
}

// fetch models the front end for one cycle.
func (c *Core) fetch() {
	if c.redirect != nil {
		// Waiting for a mispredicted branch to resolve: the front end keeps
		// running down the wrong path — predictor and I-cache stay busy and
		// wrong-path uops keep dispatching into the issue queues until the
		// flush. The phantom entries mirror the workload's class mix.
		c.bp.lookupCycle()
		c.stats.Comp[CompICache].Reads++
		if !c.redirectDisp {
			// The branch is still in the fetch buffer: nothing younger can
			// dispatch yet, so the queues see no wrong-path pressure.
			return
		}
		total := c.dispInt + c.dispMem + c.dispFp
		if total == 0 {
			total = 1
		}
		budget := uint64(c.cfg.DecodeWidth)
		addInt := int((budget*c.dispInt + total - 1) / total)
		addMem := int(budget * c.dispMem / total)
		addFp := int(budget * c.dispFp / total)
		if room := c.cfg.IntIssueSlots - len(c.intQ) - c.wrongInt; addInt > room {
			addInt = room
		}
		if room := c.cfg.MemIssueSlots - len(c.memQ) - c.wrongMem; addMem > room {
			addMem = room
		}
		if room := c.cfg.FpIssueSlots - len(c.fpQ) - c.wrongFp; addFp > room {
			addFp = room
		}
		if addInt > 0 {
			c.wrongInt += addInt
			c.stats.Comp[CompIntIssue].Writes += uint64(addInt)
		}
		if addMem > 0 {
			c.wrongMem += addMem
			c.stats.Comp[CompMemIssue].Writes += uint64(addMem)
		}
		if addFp > 0 {
			c.wrongFp += addFp
			c.stats.Comp[CompFpIssue].Writes += uint64(addFp)
		}
		return
	}
	if c.cycle < c.fetchReadyAt {
		return
	}
	if c.fetchBuf.len() >= c.cfg.FetchBufferEntries {
		return
	}
	first := c.pullTrace()
	if first == nil {
		return
	}

	// One I-cache read and one predictor lookup per fetch cycle.
	c.stats.Comp[CompICache].Reads++
	c.bp.lookupCycle()
	if c.icache.access(first.pc) {
		c.stats.ICacheHits++
	} else {
		c.stats.ICacheMisses++
		c.stats.Comp[CompICache].Writes++ // fill
		extra := uint64(c.cfg.L2Latency)
		if c.l2.access(first.pc) {
			c.stats.L2Hits++
		} else {
			c.stats.L2Misses++
			extra += uint64(c.cfg.MemLatency)
		}
		c.fetchReadyAt = c.cycle + extra
		return // retry when the line arrives
	}

	line := first.pc >> 6
	for n := 0; n < c.cfg.FetchWidth && c.fetchBuf.len() < c.cfg.FetchBufferEntries; n++ {
		u := c.pullTrace()
		if u == nil {
			return
		}
		if u.pc>>6 != line {
			return // next fetch group starts at the new line
		}
		c.peek = nil
		c.traceFetch(u)
		c.fetchBuf.pushBack(u)
		c.stats.Comp[CompFetchBuffer].Writes++

		stop := c.predict(u)
		if stop {
			return
		}
	}
}

// predict runs the front-end prediction machinery for one fetched uop and
// reports whether the fetch group must end (taken control flow or pending
// redirect).
func (c *Core) predict(u *uop) bool {
	switch u.class {
	case rv64.ClassBranch:
		c.stats.Branches++
		predTaken := c.bp.predictCond(u.pc)
		c.bp.updateCond(u.pc, u.taken)
		if predTaken != u.taken {
			u.mispred = true
			c.redirect, c.redirectDisp = u, false
			c.stats.Mispredicts++
			if u.taken {
				c.bp.btbUpdate(u.pc, u.nextPC)
			}
			return true
		}
		if !u.taken {
			return false
		}
		// Correctly predicted taken: the target must come from the BTB.
		if tgt, hit := c.bp.btbLookup(u.pc); !hit || tgt != u.nextPC {
			c.stats.BTBMisses++
			c.bp.btbUpdate(u.pc, u.nextPC)
			c.fetchReadyAt = c.cycle + btbBubble
		}
		return true

	case rv64.ClassJAL:
		if u.call {
			c.bp.rasPush(u.pc + 4)
		}
		if tgt, hit := c.bp.btbLookup(u.pc); !hit || tgt != u.nextPC {
			c.stats.BTBMisses++
			c.bp.btbUpdate(u.pc, u.nextPC)
			c.fetchReadyAt = c.cycle + btbBubble
		}
		return true

	case rv64.ClassJALR:
		c.stats.Branches++
		var predicted uint64
		var havePred bool
		if u.ret {
			predicted, havePred = c.bp.rasPop()
		} else {
			predicted, havePred = c.bp.btbLookup(u.pc)
		}
		if u.call {
			c.bp.rasPush(u.pc + 4)
		}
		if !havePred || predicted != u.nextPC {
			u.mispred = true
			c.redirect, c.redirectDisp = u, false
			c.stats.Mispredicts++
			if !u.ret {
				c.bp.btbUpdate(u.pc, u.nextPC)
			}
		}
		return true
	}
	return false
}

// accountOccupancy records per-cycle occupancy of every tracked structure
// into the flat accumulators; flushAcc folds them into stats at interval
// boundaries. The int-queue slot profile is recorded as an occupancy
// histogram rather than a per-slot loop.
func (c *Core) accountOccupancy() {
	c.accCycles++
	c.accOcc[CompFetchBuffer] += uint64(c.fetchBuf.len())
	c.accOcc[CompRob] += uint64(c.rob.len())
	intOcc := len(c.intQ) + c.wrongInt
	c.accOcc[CompIntIssue] += uint64(intOcc)
	c.accOcc[CompMemIssue] += uint64(len(c.memQ) + c.wrongMem)
	c.accOcc[CompFpIssue] += uint64(len(c.fpQ) + c.wrongFp)
	c.accOcc[CompLSU] += uint64(c.ldqUsed + c.stq.len())
	c.accOcc[CompDCache] += uint64(c.mshrsBusy)
	if intOcc >= len(c.accHist) {
		intOcc = len(c.accHist) - 1
	}
	c.accHist[intOcc]++
}

// nIntSrcs counts integer register file reads the uop performs (precomputed
// at crack time).
func (u *uop) nIntSrcs() int { return int(u.nIntSrc) }

// nFpSrcs counts FP register file reads (precomputed at crack time).
func (u *uop) nFpSrcs() int { return int(u.nFpSrc) }

func rangesOverlap(a uint64, an uint64, b uint64, bn uint64) bool {
	return a < b+bn && b < a+an
}
