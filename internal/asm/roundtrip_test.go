package asm

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rv64"
)

// TestDisassembleAssembleRoundTrip is the toolchain closure property: for
// every operation, a random instruction must survive encode → decode →
// disassemble → assemble with an identical machine word.
func TestDisassembleAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for op := rv64.Op(1); op < 200; op++ {
		name := op.Name()
		if strings.HasPrefix(name, "op(") {
			break // past the last defined op
		}
		for trial := 0; trial < 40; trial++ {
			in := rv64.Inst{
				Op:  op,
				Rd:  uint8(rng.Intn(32)),
				Rs1: uint8(rng.Intn(32)),
				Rs2: uint8(rng.Intn(32)),
				Rs3: uint8(rng.Intn(32)),
				Imm: roundTripImm(rng, op),
			}
			raw, err := rv64.Encode(in)
			if err != nil {
				t.Fatalf("%v: encode: %v", op, err)
			}
			dec, err := rv64.Decode(raw)
			if err != nil {
				t.Fatalf("%v: decode: %v", op, err)
			}
			line := rv64.Disassemble(dec)
			p, err := Assemble("\t.text\n\t" + line + "\n")
			if err != nil {
				t.Fatalf("%v: assemble %q: %v", op, line, err)
			}
			if len(p.Text) != 1 {
				t.Fatalf("%v: %q assembled to %d words", op, line, len(p.Text))
			}
			if p.Text[0] != raw {
				redec, _ := rv64.Decode(p.Text[0])
				t.Fatalf("%v: round trip %q: %#08x → %#08x (%+v vs %+v)",
					op, line, raw, p.Text[0], dec, redec)
			}
		}
	}
}

func roundTripImm(rng *rand.Rand, op rv64.Op) int64 {
	switch op.Class() {
	case rv64.ClassBranch:
		return (int64(rng.Intn(2048)) - 1024) * 2
	case rv64.ClassJAL:
		return (int64(rng.Intn(1<<19)) - 1<<18) * 2
	case rv64.ClassJALR, rv64.ClassLoad, rv64.ClassStore:
		return int64(rng.Intn(4096)) - 2048
	}
	switch op {
	case rv64.LUI, rv64.AUIPC:
		return int64(rng.Intn(1<<20)) - 1<<19
	case rv64.SLLI, rv64.SRLI, rv64.SRAI:
		return int64(rng.Intn(64))
	case rv64.SLLIW, rv64.SRLIW, rv64.SRAIW:
		return int64(rng.Intn(32))
	case rv64.ADDI, rv64.SLTI, rv64.SLTIU, rv64.XORI, rv64.ORI, rv64.ANDI, rv64.ADDIW:
		return int64(rng.Intn(4096)) - 2048
	}
	return 0
}

// TestAssembleNeverPanics feeds adversarial garbage: errors are fine,
// panics are not.
func TestAssembleNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	chars := []byte("abcxyz0189,()%.:#\"\\ \t-+*")
	for i := 0; i < 3000; i++ {
		n := rng.Intn(60)
		b := make([]byte, n)
		for j := range b {
			b[j] = chars[rng.Intn(len(chars))]
		}
		src := ".text\n" + string(b) + "\n.data\n" + string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Assemble(src)
		}()
	}
}

// TestNumericBranchTargets covers the disassembler's offset form.
func TestNumericBranchTargets(t *testing.T) {
	p := mustAssemble(t, `
		.text
		beq a0, a1, 8
		nop
		nop
		j -8
	`)
	ins := decodeAll(t, p)
	if ins[0].Imm != 8 {
		t.Errorf("beq offset %d", ins[0].Imm)
	}
	if ins[3].Imm != -8 {
		t.Errorf("j offset %d", ins[3].Imm)
	}
}
