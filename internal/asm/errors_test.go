package asm

import (
	"strings"
	"testing"
)

// TestErrorMessagesCarryLineNumbers: diagnostics must point at the source.
func TestErrorMessagesCarryLineNumbers(t *testing.T) {
	src := ".text\n\tnop\n\tbogus a0, a1\n"
	_, err := Assemble(src)
	if err == nil {
		t.Fatal("expected error")
	}
	asmErr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if asmErr.Line != 3 {
		t.Errorf("error line %d, want 3", asmErr.Line)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("message %q lacks the line", err.Error())
	}
}

func TestDirectiveErrors(t *testing.T) {
	cases := map[string]string{
		"equ without value":   ".equ FOO\n",
		"bad align expr":      ".align oops\n",
		"bad space expr":      ".data\n.space x\n",
		"bad ascii quoting":   ".data\n.ascii hello\n",
		"word in text":        ".text\n.word 1\n",
		"space in text":       ".text\n.space 8\n",
		"ascii in text":       ".text\n.ascii \"x\"\n",
		"instruction in data": ".data\nadd a0, a0, a0\n",
		"bad byte operand":    ".data\n.byte 1, what, 3\n",
		"undefined dword sym": ".data\n.dword missing_symbol\n.text\nnop\n",
		"empty label":         ".text\n : nop\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestOperandErrors(t *testing.T) {
	cases := []string{
		"\tld a0, a1, a2",         // loads take memory operands
		"\tsd 8(a0)",              // missing data register
		"\tbeq a0, 7, target",     // branch needs registers
		"\tjal a0, a1, a2",        // too many operands
		"\tjalr",                  // too few
		"\tlui a0",                // missing immediate
		"\taddi a0, a1, 99999",    // I-immediate overflow
		"\tslli a0, a1, 64",       // shamt overflow
		"\tli",                    // li needs 2 operands
		"\tfmadd.d fa0, fa1, fa2", // fused needs 4
		"\tfmv.d a0, fa1",         // int reg in FP slot
		"\tmv a0",                 // pseudo arity
		"\tbgt a0, a1",            // pseudo arity
	}
	for _, line := range cases {
		if _, err := Assemble(".text\n" + line + "\n"); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}

// TestBranchRangeError: a branch that cannot reach its target must fail at
// encode time with a range diagnostic, not produce garbage.
func TestBranchRangeError(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(".text\n\tbeq a0, a1, far\n")
	for i := 0; i < 1100; i++ { // > ±4 KiB of nops
		sb.WriteString("\tnop\n")
	}
	sb.WriteString("far:\n\tnop\n")
	if _, err := Assemble(sb.String()); err == nil {
		t.Fatal("expected branch-range error")
	} else if !strings.Contains(err.Error(), "range") {
		t.Errorf("unexpected diagnostic: %v", err)
	}
}

// TestEquForwardUseFails: .equ constants are single-pass (must be defined
// before use in instructions whose size depends on the value).
func TestEquChains(t *testing.T) {
	p := mustAssemble(t, `
		.equ A, 4
		.equ B, A*8
		.equ C, B+A-2
		.text
		li a0, C
	`)
	ins := decodeAll(t, p)
	if ins[0].Imm != 34 {
		t.Errorf("equ chain: li value %d, want 34", ins[0].Imm)
	}
}

// TestProgramGeometry: text/data placement and symbol table basics.
func TestProgramGeometry(t *testing.T) {
	p := mustAssemble(t, `
		.data
	a:
		.dword 1
		.text
	start:
		nop
	end:
		nop
	`)
	if p.TextAddr != DefaultTextBase || p.DataAddr != DefaultDataBase {
		t.Fatalf("bases %#x/%#x", p.TextAddr, p.DataAddr)
	}
	if p.Entry != p.TextAddr {
		t.Errorf("entry %#x", p.Entry)
	}
	if p.Symbols["start"] != p.TextAddr || p.Symbols["end"] != p.TextAddr+4 {
		t.Errorf("symbols wrong: %#x %#x", p.Symbols["start"], p.Symbols["end"])
	}
	if got := len(p.TextBytes()); got != 8 {
		t.Errorf("text bytes %d", got)
	}
}
