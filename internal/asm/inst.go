package asm

import (
	"fmt"
	"strings"

	"repro/internal/rv64"
)

// instruction parses one instruction (or pseudo-instruction) line and emits
// the resulting machine instructions as a single item.
func (a *assembler) instruction(s string) error {
	if a.sec != secText {
		return a.errf("instruction outside .text")
	}
	mn, rest, _ := strings.Cut(s, " ")
	if i := strings.IndexByte(mn, '\t'); i >= 0 {
		rest = mn[i+1:] + " " + rest
		mn = mn[:i]
	}
	mn = strings.ToLower(strings.TrimSpace(mn))
	args := splitOperands(rest)

	if insts, handled, err := a.pseudo(mn, args); err != nil {
		return err
	} else if handled {
		a.emit(&item{insts: insts})
		return nil
	}

	op, ok := rv64.OpByName(mn)
	if !ok {
		return a.errf("unknown mnemonic %q", mn)
	}
	in, err := a.parseOp(op, args)
	if err != nil {
		return err
	}
	a.emit(&item{insts: []inst{in}})
	return nil
}

func (a *assembler) parseOp(op rv64.Op, args []string) (inst, error) {
	none := inst{}
	need := func(n int) error {
		if len(args) != n {
			return a.errf("%s expects %d operands, got %d", op.Name(), n, len(args))
		}
		return nil
	}
	reg := func(s string, fp bool) (uint8, error) {
		if fp {
			if r, ok := rv64.FPReg(s); ok {
				return r, nil
			}
			return 0, a.errf("bad FP register %q", s)
		}
		if r, ok := rv64.IntReg(s); ok {
			return r, nil
		}
		return 0, a.errf("bad register %q", s)
	}

	switch op.Class() {
	case rv64.ClassLoad:
		if err := need(2); err != nil {
			return none, err
		}
		rd, err := reg(args[0], op.FPRd())
		if err != nil {
			return none, err
		}
		off, base, rel, sym, err := a.memOperand(args[1])
		if err != nil {
			return none, err
		}
		return inst{in: rv64.Inst{Op: op, Rd: rd, Rs1: base, Imm: off}, reloc: rel, sym: sym}, nil
	case rv64.ClassStore:
		if err := need(2); err != nil {
			return none, err
		}
		rs2, err := reg(args[0], op.FPRs2())
		if err != nil {
			return none, err
		}
		off, base, rel, sym, err := a.memOperand(args[1])
		if err != nil {
			return none, err
		}
		return inst{in: rv64.Inst{Op: op, Rs2: rs2, Rs1: base, Imm: off}, reloc: rel, sym: sym}, nil
	case rv64.ClassBranch:
		if err := need(3); err != nil {
			return none, err
		}
		rs1, err := reg(args[0], false)
		if err != nil {
			return none, err
		}
		rs2, err := reg(args[1], false)
		if err != nil {
			return none, err
		}
		return inst{in: rv64.Inst{Op: op, Rs1: rs1, Rs2: rs2}, reloc: relBranch, sym: args[2]}, nil
	case rv64.ClassJAL:
		switch len(args) {
		case 1:
			return inst{in: rv64.Inst{Op: op, Rd: rv64.RegRA}, reloc: relBranch, sym: args[0]}, nil
		case 2:
			rd, err := reg(args[0], false)
			if err != nil {
				return none, err
			}
			return inst{in: rv64.Inst{Op: op, Rd: rd}, reloc: relBranch, sym: args[1]}, nil
		}
		return none, a.errf("jal expects 1 or 2 operands")
	case rv64.ClassJALR:
		switch len(args) {
		case 1:
			rs1, err := reg(args[0], false)
			if err != nil {
				return none, err
			}
			return inst{in: rv64.Inst{Op: op, Rd: 0, Rs1: rs1}}, nil
		case 2:
			rd, err := reg(args[0], false)
			if err != nil {
				return none, err
			}
			off, base, rel, sym, err := a.memOperand(args[1])
			if err != nil {
				// allow "jalr rd, rs1"
				rs1, err2 := reg(args[1], false)
				if err2 != nil {
					return none, err
				}
				return inst{in: rv64.Inst{Op: op, Rd: rd, Rs1: rs1}}, nil
			}
			return inst{in: rv64.Inst{Op: op, Rd: rd, Rs1: base, Imm: off}, reloc: rel, sym: sym}, nil
		}
		return none, a.errf("jalr expects 1 or 2 operands")
	case rv64.ClassSystem:
		if err := need(0); err != nil {
			return none, err
		}
		return inst{in: rv64.Inst{Op: op}}, nil
	}

	switch op {
	case rv64.LUI, rv64.AUIPC:
		if err := need(2); err != nil {
			return none, err
		}
		rd, err := reg(args[0], false)
		if err != nil {
			return none, err
		}
		if sym, ok := cutCall(args[1], "%hi"); ok {
			return inst{in: rv64.Inst{Op: op, Rd: rd}, reloc: relHi, sym: sym}, nil
		}
		v, err := a.intExpr(args[1])
		if err != nil {
			return none, err
		}
		return inst{in: rv64.Inst{Op: op, Rd: rd, Imm: v}}, nil
	}

	// I-format ALU ops and shifts.
	if !op.HasRs2() && op.HasRs1() && op.HasRd() {
		if op.FPRs1() || op.FPRd() {
			// unary FP ops: op rd, rs1
			if err := need(2); err != nil {
				return none, err
			}
			rd, err := reg(args[0], op.FPRd())
			if err != nil {
				return none, err
			}
			rs1, err := reg(args[1], op.FPRs1())
			if err != nil {
				return none, err
			}
			return inst{in: rv64.Inst{Op: op, Rd: rd, Rs1: rs1}}, nil
		}
		if err := need(3); err != nil {
			return none, err
		}
		rd, err := reg(args[0], false)
		if err != nil {
			return none, err
		}
		rs1, err := reg(args[1], false)
		if err != nil {
			return none, err
		}
		if sym, ok := cutCall(args[2], "%lo"); ok {
			return inst{in: rv64.Inst{Op: op, Rd: rd, Rs1: rs1}, reloc: relLo, sym: sym}, nil
		}
		v, err := a.intExpr(args[2])
		if err != nil {
			return none, err
		}
		return inst{in: rv64.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: v}}, nil
	}

	// R-format (2 or 3 sources).
	if op.HasRs3() {
		if err := need(4); err != nil {
			return none, err
		}
		rd, err := reg(args[0], op.FPRd())
		if err != nil {
			return none, err
		}
		rs1, err := reg(args[1], op.FPRs1())
		if err != nil {
			return none, err
		}
		rs2, err := reg(args[2], op.FPRs2())
		if err != nil {
			return none, err
		}
		rs3, err := reg(args[3], op.FPRs3())
		if err != nil {
			return none, err
		}
		return inst{in: rv64.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: rs3}}, nil
	}
	if err := need(3); err != nil {
		return none, err
	}
	rd, err := reg(args[0], op.FPRd())
	if err != nil {
		return none, err
	}
	rs1, err := reg(args[1], op.FPRs1())
	if err != nil {
		return none, err
	}
	rs2, err := reg(args[2], op.FPRs2())
	if err != nil {
		return none, err
	}
	return inst{in: rv64.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}}, nil
}

// memOperand parses "off(reg)", "(reg)", "%lo(sym)(reg)".
func (a *assembler) memOperand(s string) (off int64, base uint8, rel reloc, sym string, err error) {
	open := strings.LastIndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, relNone, "", a.errf("bad memory operand %q", s)
	}
	regName := s[open+1 : len(s)-1]
	r, ok := rv64.IntReg(regName)
	if !ok {
		return 0, 0, relNone, "", a.errf("bad base register %q", regName)
	}
	offS := strings.TrimSpace(s[:open])
	if offS == "" {
		return 0, r, relNone, "", nil
	}
	if symName, ok := cutCall(offS, "%lo"); ok {
		return 0, r, relLo, symName, nil
	}
	v, err := a.intExpr(offS)
	if err != nil {
		return 0, 0, relNone, "", err
	}
	return v, r, relNone, "", nil
}

// cutCall matches "prefix(inner)" and returns inner.
func cutCall(s, prefix string) (string, bool) {
	if strings.HasPrefix(s, prefix+"(") && strings.HasSuffix(s, ")") {
		return strings.TrimSpace(s[len(prefix)+1 : len(s)-1]), true
	}
	return "", false
}

// pseudo expands pseudo-instructions. It reports handled=false for real
// mnemonics.
func (a *assembler) pseudo(mn string, args []string) ([]inst, bool, error) {
	intReg := func(s string) (uint8, error) {
		r, ok := rv64.IntReg(s)
		if !ok {
			return 0, a.errf("bad register %q", s)
		}
		return r, nil
	}
	fpReg := func(s string) (uint8, error) {
		r, ok := rv64.FPReg(s)
		if !ok {
			return 0, a.errf("bad FP register %q", s)
		}
		return r, nil
	}
	need := func(n int) error {
		if len(args) != n {
			return a.errf("%s expects %d operands, got %d", mn, n, len(args))
		}
		return nil
	}
	one := func(in rv64.Inst) ([]inst, bool, error) { return []inst{{in: in}}, true, nil }

	switch mn {
	case "nop":
		return one(rv64.Inst{Op: rv64.ADDI})
	case "li":
		if err := need(2); err != nil {
			return nil, true, err
		}
		rd, err := intReg(args[0])
		if err != nil {
			return nil, true, err
		}
		v, err := a.intExpr(args[1])
		if err != nil {
			return nil, true, err
		}
		return materializeLI(rd, v), true, nil
	case "la":
		if err := need(2); err != nil {
			return nil, true, err
		}
		rd, err := intReg(args[0])
		if err != nil {
			return nil, true, err
		}
		return []inst{
			{in: rv64.Inst{Op: rv64.LUI, Rd: rd}, reloc: relHi, sym: args[1]},
			{in: rv64.Inst{Op: rv64.ADDI, Rd: rd, Rs1: rd}, reloc: relLo, sym: args[1]},
		}, true, nil
	case "mv":
		if err := need(2); err != nil {
			return nil, true, err
		}
		rd, err := intReg(args[0])
		if err != nil {
			return nil, true, err
		}
		rs, err := intReg(args[1])
		if err != nil {
			return nil, true, err
		}
		return one(rv64.Inst{Op: rv64.ADDI, Rd: rd, Rs1: rs})
	case "not":
		rd, rs, err := a.twoInt(args)
		if err != nil {
			return nil, true, err
		}
		return one(rv64.Inst{Op: rv64.XORI, Rd: rd, Rs1: rs, Imm: -1})
	case "neg":
		rd, rs, err := a.twoInt(args)
		if err != nil {
			return nil, true, err
		}
		return one(rv64.Inst{Op: rv64.SUB, Rd: rd, Rs2: rs})
	case "negw":
		rd, rs, err := a.twoInt(args)
		if err != nil {
			return nil, true, err
		}
		return one(rv64.Inst{Op: rv64.SUBW, Rd: rd, Rs2: rs})
	case "sext.w":
		rd, rs, err := a.twoInt(args)
		if err != nil {
			return nil, true, err
		}
		return one(rv64.Inst{Op: rv64.ADDIW, Rd: rd, Rs1: rs})
	case "seqz":
		rd, rs, err := a.twoInt(args)
		if err != nil {
			return nil, true, err
		}
		return one(rv64.Inst{Op: rv64.SLTIU, Rd: rd, Rs1: rs, Imm: 1})
	case "snez":
		rd, rs, err := a.twoInt(args)
		if err != nil {
			return nil, true, err
		}
		return one(rv64.Inst{Op: rv64.SLTU, Rd: rd, Rs2: rs})
	case "sltz":
		rd, rs, err := a.twoInt(args)
		if err != nil {
			return nil, true, err
		}
		return one(rv64.Inst{Op: rv64.SLT, Rd: rd, Rs1: rs})
	case "sgtz":
		rd, rs, err := a.twoInt(args)
		if err != nil {
			return nil, true, err
		}
		return one(rv64.Inst{Op: rv64.SLT, Rd: rd, Rs2: rs})
	case "beqz", "bnez", "bltz", "bgez", "blez", "bgtz":
		if err := need(2); err != nil {
			return nil, true, err
		}
		rs, err := intReg(args[0])
		if err != nil {
			return nil, true, err
		}
		var in rv64.Inst
		switch mn {
		case "beqz":
			in = rv64.Inst{Op: rv64.BEQ, Rs1: rs}
		case "bnez":
			in = rv64.Inst{Op: rv64.BNE, Rs1: rs}
		case "bltz":
			in = rv64.Inst{Op: rv64.BLT, Rs1: rs}
		case "bgez":
			in = rv64.Inst{Op: rv64.BGE, Rs1: rs}
		case "blez":
			in = rv64.Inst{Op: rv64.BGE, Rs2: rs} // 0 >= rs
		case "bgtz":
			in = rv64.Inst{Op: rv64.BLT, Rs2: rs} // 0 < rs
		}
		return []inst{{in: in, reloc: relBranch, sym: args[1]}}, true, nil
	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return nil, true, err
		}
		rs1, err := intReg(args[0])
		if err != nil {
			return nil, true, err
		}
		rs2, err := intReg(args[1])
		if err != nil {
			return nil, true, err
		}
		op := map[string]rv64.Op{"bgt": rv64.BLT, "ble": rv64.BGE, "bgtu": rv64.BLTU, "bleu": rv64.BGEU}[mn]
		return []inst{{in: rv64.Inst{Op: op, Rs1: rs2, Rs2: rs1}, reloc: relBranch, sym: args[2]}}, true, nil
	case "j", "tail":
		if err := need(1); err != nil {
			return nil, true, err
		}
		return []inst{{in: rv64.Inst{Op: rv64.JAL, Rd: 0}, reloc: relBranch, sym: args[0]}}, true, nil
	case "call":
		if err := need(1); err != nil {
			return nil, true, err
		}
		return []inst{{in: rv64.Inst{Op: rv64.JAL, Rd: rv64.RegRA}, reloc: relBranch, sym: args[0]}}, true, nil
	case "jr":
		if err := need(1); err != nil {
			return nil, true, err
		}
		rs, err := intReg(args[0])
		if err != nil {
			return nil, true, err
		}
		return one(rv64.Inst{Op: rv64.JALR, Rd: 0, Rs1: rs})
	case "ret":
		if err := need(0); err != nil {
			return nil, true, err
		}
		return one(rv64.Inst{Op: rv64.JALR, Rd: 0, Rs1: rv64.RegRA})
	case "fmv.d", "fneg.d", "fabs.d":
		if err := need(2); err != nil {
			return nil, true, err
		}
		rd, err := fpReg(args[0])
		if err != nil {
			return nil, true, err
		}
		rs, err := fpReg(args[1])
		if err != nil {
			return nil, true, err
		}
		op := map[string]rv64.Op{"fmv.d": rv64.FSGNJD, "fneg.d": rv64.FSGNJND, "fabs.d": rv64.FSGNJXD}[mn]
		return one(rv64.Inst{Op: op, Rd: rd, Rs1: rs, Rs2: rs})
	}
	return nil, false, nil
}

func (a *assembler) twoInt(args []string) (uint8, uint8, error) {
	if len(args) != 2 {
		return 0, 0, a.errf("expected 2 operands, got %d", len(args))
	}
	rd, ok := rv64.IntReg(args[0])
	if !ok {
		return 0, 0, a.errf("bad register %q", args[0])
	}
	rs, ok := rv64.IntReg(args[1])
	if !ok {
		return 0, 0, a.errf("bad register %q", args[1])
	}
	return rd, rs, nil
}

// materializeLI emits the shortest lui/addiw/slli/addi sequence that loads
// the 64-bit constant v into rd, mirroring the standard toolchain expansion.
func materializeLI(rd uint8, v int64) []inst {
	if v >= -2048 && v <= 2047 {
		return []inst{{in: rv64.Inst{Op: rv64.ADDI, Rd: rd, Imm: v}}}
	}
	if v >= -(1<<31) && v < 1<<31 {
		hi := (v + 0x800) >> 12
		lo := v - hi<<12
		hi = int64(int32(hi<<12)) >> 12 // canonical signed 20-bit
		out := []inst{{in: rv64.Inst{Op: rv64.LUI, Rd: rd, Imm: hi}}}
		if lo != 0 {
			out = append(out, inst{in: rv64.Inst{Op: rv64.ADDIW, Rd: rd, Rs1: rd, Imm: lo}})
		}
		return out
	}
	lo := v << 52 >> 52 // sign-extended low 12 bits
	rest := (v - lo) >> 12
	out := materializeLI(rd, rest)
	out = append(out, inst{in: rv64.Inst{Op: rv64.SLLI, Rd: rd, Rs1: rd, Imm: 12}})
	if lo != 0 {
		out = append(out, inst{in: rv64.Inst{Op: rv64.ADDI, Rd: rd, Rs1: rd, Imm: lo}})
	}
	return out
}

// pass2 resolves symbols and encodes everything.
func (a *assembler) pass2(textBase, dataBase uint64) (*Program, error) {
	p := &Program{
		TextAddr: textBase,
		DataAddr: dataBase,
		Entry:    textBase,
		Symbols:  a.labels,
		Text:     make([]uint32, (a.textAddr-textBase)/4),
		Data:     make([]byte, a.dataAddr-dataBase),
	}
	resolve := func(it *item, sym string) (uint64, error) {
		if v, ok := a.labels[sym]; ok {
			return v, nil
		}
		if v, ok := a.equ[sym]; ok {
			return uint64(v), nil
		}
		return 0, &Error{Line: it.line, Msg: fmt.Sprintf("undefined symbol %q", sym)}
	}
	// Branch/jump targets may also be numeric PC-relative offsets (the
	// disassembler emits this form): "beq a0, a1, -12".
	resolveBranch := func(it *item, sym string, pc uint64) (int64, error) {
		if v, err := a.intExpr(sym); err == nil && !isIdent(sym) {
			return v, nil
		}
		target, err := resolve(it, sym)
		if err != nil {
			return 0, err
		}
		return int64(target) - int64(pc), nil
	}
	for _, it := range a.items {
		if it.sec == secData || len(it.insts) == 0 {
			copy(p.Data[it.addr-dataBase:], it.data)
			for _, ref := range it.dataRef {
				v, err := resolve(it, ref.symbol)
				if err != nil {
					return nil, err
				}
				putLE(p.Data[int(it.addr-dataBase)+ref.offset:][:ref.size], v)
			}
			continue
		}
		pc := it.addr
		for _, ins := range it.insts {
			in := ins.in
			switch ins.reloc {
			case relBranch:
				off, err := resolveBranch(it, ins.sym, pc)
				if err != nil {
					return nil, err
				}
				in.Imm = off
			case relHi:
				target, err := resolve(it, ins.sym)
				if err != nil {
					return nil, err
				}
				hi := (int64(target) + 0x800) >> 12
				in.Imm = int64(int32(hi<<12)) >> 12
			case relLo:
				target, err := resolve(it, ins.sym)
				if err != nil {
					return nil, err
				}
				hi := (int64(target) + 0x800) >> 12
				in.Imm = int64(target) - hi<<12
			}
			raw, err := rv64.Encode(in)
			if err != nil {
				return nil, &Error{Line: it.line, Msg: err.Error()}
			}
			p.Text[(pc-textBase)/4] = raw
			pc += 4
		}
	}
	return p, nil
}
