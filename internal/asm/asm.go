// Package asm implements a two-pass assembler for the RV64IMD subset in
// internal/rv64. It stands in for the RISC-V GCC toolchain the paper uses to
// build its MiBench/Embench binaries: the workload kernels in
// internal/workloads are written in this dialect and assembled at run time.
//
// Supported syntax:
//
//	label:                      # labels, also on the same line as code
//	.text / .data               # section switches
//	.align N                    # align to 2^N bytes
//	.byte/.half/.word/.dword    # integer data (comma separated, labels ok in .dword/.word)
//	.space N                    # N zero bytes
//	.ascii "s" / .asciz "s"     # string data
//	.equ NAME, value            # assembler constant
//	.global NAME                # accepted and ignored
//	add rd, rs1, rs2            # every rv64.Op by mnemonic
//	ld rd, off(rs1)             # loads/stores with displacement operands
//	beq rs1, rs2, label         # branch targets are labels
//	lui rd, %hi(sym) / %lo(sym) # absolute relocation helpers
//
// plus the standard pseudo-instructions (li, la, mv, not, neg, j, jr, call,
// ret, beqz/bnez/bltz/bgez/blez/bgtz, bgt/ble/bgtu/bleu, seqz/snez, nop,
// fmv.d, fneg.d, fabs.d). Numeric literals may be decimal, 0x-hex, 0b-binary
// or character ('a').
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rv64"
)

// Default section base addresses. They are deliberately below 2 GiB so that
// absolute addresses materialize with a simple lui+addi pair.
const (
	DefaultTextBase = 0x0001_0000
	DefaultDataBase = 0x0100_0000
)

// Program is the result of assembling a source file.
type Program struct {
	TextAddr uint64
	Text     []uint32 // encoded instructions, 4 bytes each
	DataAddr uint64
	Data     []byte
	Symbols  map[string]uint64
	Entry    uint64
}

// TextBytes returns the instruction stream as little-endian bytes.
func (p *Program) TextBytes() []byte {
	out := make([]byte, 4*len(p.Text))
	for i, w := range p.Text {
		out[4*i] = byte(w)
		out[4*i+1] = byte(w >> 8)
		out[4*i+2] = byte(w >> 16)
		out[4*i+3] = byte(w >> 24)
	}
	return out
}

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

// item is one assembled unit placed during pass 1.
type item struct {
	line    int
	sec     section
	addr    uint64
	insts   []inst // for text items
	data    []byte // for data items
	dataRef []dataReloc
}

type dataReloc struct {
	offset int // into data
	size   int
	symbol string
}

// inst is a single machine instruction, possibly awaiting label resolution.
type inst struct {
	in    rv64.Inst
	reloc reloc
	sym   string
}

type reloc int

const (
	relNone   reloc = iota
	relBranch       // PC-relative, B/J immediate
	relHi           // %hi(sym): (addr+0x800)>>12 into U imm
	relLo           // %lo(sym): low 12 bits into I/S imm
)

type assembler struct {
	src      string
	equ      map[string]int64
	labels   map[string]uint64
	items    []*item
	sec      section
	textAddr uint64
	dataAddr uint64
	line     int
}

// Assemble assembles src with the default section bases.
func Assemble(src string) (*Program, error) {
	return AssembleAt(src, DefaultTextBase, DefaultDataBase)
}

// AssembleAt assembles src, placing .text at textBase and .data at dataBase.
// The entry point is the start of .text.
func AssembleAt(src string, textBase, dataBase uint64) (*Program, error) {
	a := &assembler{
		src:      src,
		equ:      make(map[string]int64),
		labels:   make(map[string]uint64),
		textAddr: textBase,
		dataAddr: dataBase,
	}
	if err := a.pass1(); err != nil {
		return nil, err
	}
	return a.pass2(textBase, dataBase)
}

func (a *assembler) errf(format string, args ...interface{}) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' {
			inStr = !inStr
		}
		if inStr {
			continue
		}
		if c == '#' || c == ';' {
			return s[:i]
		}
		if c == '/' && i+1 < len(s) && s[i+1] == '/' {
			return s[:i]
		}
	}
	return s
}

func (a *assembler) pass1() error {
	lines := strings.Split(a.src, "\n")
	for n, raw := range lines {
		a.line = n + 1
		s := strings.TrimSpace(stripComment(raw))
		for {
			// Peel leading labels ("loop:" possibly followed by code).
			i := strings.IndexByte(s, ':')
			if i < 0 || strings.ContainsAny(s[:i], " \t\",(") {
				break
			}
			name := strings.TrimSpace(s[:i])
			if name == "" {
				return a.errf("empty label")
			}
			if _, dup := a.labels[name]; dup {
				return a.errf("duplicate label %q", name)
			}
			a.labels[name] = a.curAddr()
			s = strings.TrimSpace(s[i+1:])
		}
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, ".") {
			if err := a.directive(s); err != nil {
				return err
			}
			continue
		}
		if err := a.instruction(s); err != nil {
			return err
		}
	}
	return nil
}

func (a *assembler) curAddr() uint64 {
	if a.sec == secText {
		return a.textAddr
	}
	return a.dataAddr
}

func (a *assembler) advance(n uint64) {
	if a.sec == secText {
		a.textAddr += n
	} else {
		a.dataAddr += n
	}
}

func (a *assembler) emit(it *item) {
	it.sec = a.sec
	it.addr = a.curAddr()
	it.line = a.line
	a.items = append(a.items, it)
	if len(it.insts) > 0 {
		a.advance(uint64(4 * len(it.insts)))
	} else {
		a.advance(uint64(len(it.data)))
	}
}

func (a *assembler) directive(s string) error {
	name, rest, _ := strings.Cut(s, " ")
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		rest = name[i:] + " " + rest
		name = name[:i]
	}
	rest = strings.TrimSpace(rest)
	switch name {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".global", ".globl", ".option", ".type", ".size", ".section", ".p2align":
		// accepted for GNU-as compatibility, no effect
	case ".align":
		n, err := a.intExpr(rest)
		if err != nil {
			return err
		}
		size := uint64(1) << uint(n)
		pad := (size - a.curAddr()%size) % size
		if pad > 0 {
			if a.sec == secText {
				// pad with nops
				it := &item{}
				for i := uint64(0); i < pad/4; i++ {
					it.insts = append(it.insts, inst{in: rv64.Inst{Op: rv64.ADDI}})
				}
				a.emit(it)
			} else {
				a.emit(&item{data: make([]byte, pad)})
			}
		}
	case ".byte", ".half", ".word", ".dword":
		if a.sec != secData {
			return a.errf("%s outside .data (instruction-stream literals are unsupported)", name)
		}
		size := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".dword": 8}[name]
		it := &item{}
		for _, f := range splitOperands(rest) {
			if v, err := a.intExpr(f); err == nil {
				b := make([]byte, size)
				putLE(b, uint64(v))
				it.data = append(it.data, b...)
				continue
			}
			if size >= 4 && isIdent(f) {
				it.dataRef = append(it.dataRef, dataReloc{offset: len(it.data), size: size, symbol: f})
				it.data = append(it.data, make([]byte, size)...)
				continue
			}
			return a.errf("bad %s operand %q", name, f)
		}
		a.emit(it)
	case ".space", ".zero":
		if a.sec != secData {
			return a.errf("%s outside .data", name)
		}
		n, err := a.intExpr(rest)
		if err != nil {
			return err
		}
		a.emit(&item{data: make([]byte, n)})
	case ".ascii", ".asciz":
		if a.sec != secData {
			return a.errf("%s outside .data", name)
		}
		str, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("bad string %s", rest)
		}
		b := []byte(str)
		if name == ".asciz" {
			b = append(b, 0)
		}
		a.emit(&item{data: b})
	case ".equ", ".set":
		nameV, valS, ok := strings.Cut(rest, ",")
		if !ok {
			return a.errf(".equ needs NAME, value")
		}
		v, err := a.intExpr(strings.TrimSpace(valS))
		if err != nil {
			return err
		}
		a.equ[strings.TrimSpace(nameV)] = v
	default:
		return a.errf("unknown directive %s", name)
	}
	return nil
}

func putLE(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits on commas at paren depth zero.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// intExpr evaluates an integer literal, .equ constant, or simple a+b / a-b /
// a*b expression thereof.
func (a *assembler) intExpr(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf("empty expression")
	}
	// binary + - * at top level (left-assoc, * binds tighter not supported:
	// evaluate strictly left to right which is enough for the sources here)
	for i := len(s) - 1; i > 0; i-- {
		c := s[i]
		if c == '+' || c == '-' {
			prev := s[i-1]
			if prev == '+' || prev == '-' || prev == '*' || prev == 'x' || prev == 'X' || prev == 'b' || prev == 'e' || prev == 'E' {
				continue // sign or literal prefix
			}
			l, err := a.intExpr(s[:i])
			if err != nil {
				return 0, err
			}
			r, err := a.intExpr(s[i+1:])
			if err != nil {
				return 0, err
			}
			if c == '+' {
				return l + r, nil
			}
			return l - r, nil
		}
	}
	if i := strings.LastIndexByte(s, '*'); i > 0 {
		l, err := a.intExpr(s[:i])
		if err != nil {
			return 0, err
		}
		r, err := a.intExpr(s[i+1:])
		if err != nil {
			return 0, err
		}
		return l * r, nil
	}
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := strconv.Unquote(s)
		if err != nil || len(body) != 1 {
			return 0, a.errf("bad char literal %s", s)
		}
		return int64(body[0]), nil
	}
	if v, ok := a.equ[s]; ok {
		return v, nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case strings.HasPrefix(s, "0b"):
		v, err = strconv.ParseUint(s[2:], 2, 64)
	default:
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, a.errf("bad integer %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}
