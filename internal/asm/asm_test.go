package asm

import (
	"testing"

	"repro/internal/rv64"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func decodeAll(t *testing.T, p *Program) []rv64.Inst {
	t.Helper()
	out := make([]rv64.Inst, len(p.Text))
	for i, raw := range p.Text {
		in, err := rv64.Decode(raw)
		if err != nil {
			t.Fatalf("inst %d (%#08x): %v", i, raw, err)
		}
		out[i] = in
	}
	return out
}

func TestBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		.text
		add  a0, a1, a2
		addi t0, t1, -42
		ld   a3, 16(sp)
		sd   a3, -8(sp)
		fld  fa0, 0(a0)
		fsd  fa0, 8(a0)
		fmadd.d fa1, fa2, fa3, fa4
		feq.d a0, fa1, fa2
		ecall
	`)
	ins := decodeAll(t, p)
	want := []rv64.Inst{
		{Op: rv64.ADD, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: rv64.ADDI, Rd: 5, Rs1: 6, Imm: -42},
		{Op: rv64.LD, Rd: 13, Rs1: 2, Imm: 16},
		{Op: rv64.SD, Rs1: 2, Rs2: 13, Imm: -8},
		{Op: rv64.FLD, Rd: 10, Rs1: 10},
		{Op: rv64.FSD, Rs1: 10, Rs2: 10, Imm: 8},
		{Op: rv64.FMADDD, Rd: 11, Rs1: 12, Rs2: 13, Rs3: 14},
		{Op: rv64.FEQD, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: rv64.ECALL},
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(ins), len(want))
	}
	for i := range want {
		g, w := ins[i], want[i]
		if g.Op != w.Op || g.Rd != w.Rd || g.Rs1 != w.Rs1 || g.Rs2 != w.Rs2 || g.Rs3 != w.Rs3 || g.Imm != w.Imm {
			t.Errorf("inst %d: have %+v want %+v", i, g, w)
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
		.text
	start:
		addi a0, zero, 10
	loop:
		addi a0, a0, -1
		bnez a0, loop
		beq  a0, zero, done
		nop
	done:
		j start
	`)
	ins := decodeAll(t, p)
	// bnez at index 2 targets loop at index 1: offset -4
	if ins[2].Op != rv64.BNE || ins[2].Imm != -4 {
		t.Errorf("bnez: %+v", ins[2])
	}
	// beq at index 3 targets done at index 5: offset +8
	if ins[3].Op != rv64.BEQ || ins[3].Imm != 8 {
		t.Errorf("beq: %+v", ins[3])
	}
	// j at index 5 targets start at index 0: offset -20
	if ins[5].Op != rv64.JAL || ins[5].Rd != 0 || ins[5].Imm != -20 {
		t.Errorf("j: %+v", ins[5])
	}
}

func TestLiMaterialization(t *testing.T) {
	cases := []int64{0, 1, -1, 2047, -2048, 2048, 4096, 0x12345, -0x12345,
		0x7FFFFFFF, -0x80000000, 0x100000000, 0x123456789ABCDEF0, -0x123456789ABCDEF0}
	for _, v := range cases {
		insts := materializeLI(10, v)
		// Emulate the sequence to verify the materialized value.
		var reg int64
		for _, ins := range insts {
			in := ins.in
			switch in.Op {
			case rv64.ADDI:
				if in.Rs1 == 0 {
					reg = in.Imm
				} else {
					reg += in.Imm
				}
			case rv64.LUI:
				reg = in.Imm << 12
			case rv64.ADDIW:
				reg = int64(int32(reg + in.Imm))
			case rv64.SLLI:
				reg <<= uint(in.Imm)
			default:
				t.Fatalf("li %#x: unexpected op %v", v, in.Op)
			}
			if _, err := rv64.Encode(in); err != nil {
				t.Fatalf("li %#x: %v", v, err)
			}
		}
		if reg != v {
			t.Errorf("li %#x materialized %#x", v, reg)
		}
		if len(insts) > 8 {
			t.Errorf("li %#x used %d instructions", v, len(insts))
		}
	}
}

func TestDataDirectivesAndLa(t *testing.T) {
	p := mustAssemble(t, `
		.equ N, 16
		.data
	table:
		.word 1, 2, 3, 4
	msg:
		.asciz "hi"
		.align 3
	big:
		.dword 0x1122334455667788, table
		.space N
		.byte 'a', 0xFF
		.text
		la a0, table
		lw a1, 0(a0)
	`)
	tbl := p.Symbols["table"]
	if tbl != p.DataAddr {
		t.Fatalf("table at %#x, want data base %#x", tbl, p.DataAddr)
	}
	// .word values
	for i, want := range []uint32{1, 2, 3, 4} {
		off := int(tbl-p.DataAddr) + 4*i
		got := uint32(p.Data[off]) | uint32(p.Data[off+1])<<8 | uint32(p.Data[off+2])<<16 | uint32(p.Data[off+3])<<24
		if got != want {
			t.Errorf("word %d = %d, want %d", i, got, want)
		}
	}
	if string(p.Data[16:19]) != "hi\x00" {
		t.Errorf("asciz wrong: %q", p.Data[16:19])
	}
	big := p.Symbols["big"]
	if big%8 != 0 {
		t.Errorf("big not 8-aligned: %#x", big)
	}
	off := big - p.DataAddr
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(p.Data[off+uint64(i)]) << (8 * i)
	}
	if v != 0x1122334455667788 {
		t.Errorf("dword = %#x", v)
	}
	var ref uint64
	for i := 0; i < 8; i++ {
		ref |= uint64(p.Data[off+8+uint64(i)]) << (8 * i)
	}
	if ref != tbl {
		t.Errorf("symbol dword = %#x, want %#x", ref, tbl)
	}
	// la expansion: lui+addi producing the table address
	ins := decodeAll(t, p)
	if ins[0].Op != rv64.LUI || ins[1].Op != rv64.ADDI {
		t.Fatalf("la expansion: %v %v", ins[0].Op, ins[1].Op)
	}
	addr := ins[0].Imm<<12 + ins[1].Imm
	if uint64(addr) != tbl {
		t.Errorf("la computed %#x, want %#x", addr, tbl)
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
		.text
		mv   a0, a1
		not  a2, a3
		neg  a4, a5
		seqz a6, a7
		snez t0, t1
		jr   ra
		ret
		fmv.d  fa0, fa1
		fneg.d fa2, fa3
		fabs.d fa4, fa5
		sext.w s0, s1
	`)
	ins := decodeAll(t, p)
	checks := []struct {
		i  int
		op rv64.Op
	}{
		{0, rv64.ADDI}, {1, rv64.XORI}, {2, rv64.SUB}, {3, rv64.SLTIU},
		{4, rv64.SLTU}, {5, rv64.JALR}, {6, rv64.JALR},
		{7, rv64.FSGNJD}, {8, rv64.FSGNJND}, {9, rv64.FSGNJXD}, {10, rv64.ADDIW},
	}
	for _, c := range checks {
		if ins[c.i].Op != c.op {
			t.Errorf("inst %d: %v want %v", c.i, ins[c.i].Op, c.op)
		}
	}
	if ins[7].Rs1 != ins[7].Rs2 {
		t.Error("fmv.d must duplicate source register")
	}
}

func TestHiLoRelocations(t *testing.T) {
	p := mustAssemble(t, `
		.data
		.space 0x900
	x:
		.dword 7
		.text
		lui  a0, %hi(x)
		ld   a1, %lo(x)(a0)
		addi a2, a0, %lo(x)
	`)
	ins := decodeAll(t, p)
	x := p.Symbols["x"]
	hi := ins[0].Imm << 12
	if uint64(hi+ins[1].Imm) != x || uint64(hi+ins[2].Imm) != x {
		t.Errorf("hi/lo reloc: hi=%#x lo(ld)=%d lo(addi)=%d x=%#x", hi, ins[1].Imm, ins[2].Imm, x)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"addx a0, a1, a2",                // unknown mnemonic
		"add a0, a1",                     // wrong operand count
		"\t.text\n\tbeq a0, a1, nowhere", // undefined label
		"lw a0, a1",                      // malformed memory operand
		".bogus 3",                       // unknown directive
		"l: nop\nl: nop",                 // duplicate label
		"add fa0, a1, a2",                // FP register in int slot
		".data\n.word oops-",             // bad expression
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestCommentsAndFormatting(t *testing.T) {
	p := mustAssemble(t, `
	# full-line comment
		.text
		nop          # trailing comment
		nop          // C++ style
		nop          ; semicolon style
	`)
	if len(p.Text) != 3 {
		t.Fatalf("got %d instructions, want 3", len(p.Text))
	}
}
