// Package binio provides sticky-error binary readers and writers for the
// deterministic little-endian codecs behind the artifact cache. Encoders
// must be canonical — the same value always produces the same bytes — so
// cached payloads can be byte-compared against fresh recomputations
// (-cache-verify) and content-addressed safely.
package binio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Writer writes little-endian primitives to an io.Writer. The first error
// sticks: subsequent writes are no-ops and Err returns it.
type Writer struct {
	w   io.Writer
	err error
	b   [8]byte
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// U64 writes a uint64.
func (w *Writer) U64(v uint64) {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(w.b[:], v)
	_, w.err = w.w.Write(w.b[:])
}

// I64 writes an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// F64 writes a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	var b uint64
	if v {
		b = 1
	}
	w.U64(b)
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Reader reads little-endian primitives from an io.Reader. The first error
// sticks: subsequent reads return zero values and Err returns it.
type Reader struct {
	r   io.Reader
	err error
	b   [8]byte
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Fail forces the reader into an error state (decode-side validation).
func (r *Reader) Fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if _, r.err = io.ReadFull(r.r, r.b[:]); r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.b[:])
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 into an int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a one-byte bool; values other than 0/1 are decode errors.
func (r *Reader) Bool() bool {
	switch r.U64() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail("binio: invalid bool")
		return false
	}
}

// Len reads a length and validates 0 <= n <= max, failing the reader
// otherwise. Decoders use it so corrupt payloads error out instead of
// provoking giant allocations.
func (r *Reader) Len(max int) int {
	n := r.I64()
	if r.err == nil && (n < 0 || n > int64(max)) {
		r.Fail("binio: length %d out of range [0,%d]", n, max)
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice of at most max bytes.
func (r *Reader) Bytes(max int) []byte {
	n := r.Len(max)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	if _, r.err = io.ReadFull(r.r, out); r.err != nil {
		return nil
	}
	return out
}
