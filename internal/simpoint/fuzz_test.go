package simpoint

import (
	"bytes"
	"strings"
	"testing"
)

// writePair renders points through both text writers.
func writePair(t *testing.T, pts []Point) (sp, wt []byte) {
	t.Helper()
	res := &Result{Selected: pts}
	var spBuf, wtBuf bytes.Buffer
	if err := WriteSimPoints(&spBuf, res); err != nil {
		t.Fatalf("WriteSimPoints: %v", err)
	}
	if err := WriteWeights(&wtBuf, res); err != nil {
		t.Fatalf("WriteWeights: %v", err)
	}
	return spBuf.Bytes(), wtBuf.Bytes()
}

// FuzzParseSimPoints checks that ReadSimPoints never panics and that any
// accepted input survives parse → write → parse: intervals and clusters
// are preserved exactly, and the written form is a fixpoint (weights are
// rendered at fixed precision, so byte-stability — not float equality —
// is the lossless property the format guarantees).
func FuzzParseSimPoints(f *testing.F) {
	f.Add([]byte("3 0\n17 1\n"), []byte("0.600000 0\n0.400000 1\n"))
	f.Add([]byte("0 0\n"), []byte("1.000000 0\n"))
	f.Add([]byte("# c\n\n5 2\n"), []byte("0.125000 2\n"))
	f.Add([]byte("3.5 0\n"), []byte("1.0 0\n"))
	f.Add([]byte("NaN 0\n"), []byte("1 0\n"))
	f.Add([]byte("1 0\n"), []byte("-0.5 0\n"))
	f.Add([]byte("1 0\n2 1\n"), []byte("1 0\n"))
	f.Fuzz(func(t *testing.T, spData, wtData []byte) {
		pts, err := ReadSimPoints(bytes.NewReader(spData), bytes.NewReader(wtData))
		if err != nil {
			return // malformed input must error, not panic
		}
		sp1, wt1 := writePair(t, pts)
		again, err := ReadSimPoints(bytes.NewReader(sp1), bytes.NewReader(wt1))
		if err != nil {
			t.Fatalf("reparse of written output: %v\nsimpoints:\n%s\nweights:\n%s", err, sp1, wt1)
		}
		if len(again) != len(pts) {
			t.Fatalf("round-trip changed point count: %d → %d", len(pts), len(again))
		}
		for i := range pts {
			if again[i].Interval != pts[i].Interval || again[i].Cluster != pts[i].Cluster {
				t.Fatalf("point %d changed: %+v → %+v", i, pts[i], again[i])
			}
		}
		sp2, wt2 := writePair(t, again)
		if !bytes.Equal(sp1, sp2) || !bytes.Equal(wt1, wt2) {
			t.Fatalf("write is not a fixpoint:\nsp: %q vs %q\nwt: %q vs %q", sp1, sp2, wt1, wt2)
		}
	})
}

// TestReadSimPointsHardening pins the malformed inputs down as regression
// cases: each must return an error, never panic or silently truncate.
func TestReadSimPointsHardening(t *testing.T) {
	cases := []struct {
		name, sp, wt, wantErr string
	}{
		{"field arity", "1 0 9\n", "1 0\n", "want 2 fields"},
		{"non-numeric interval", "x 0\n", "1 0\n", "invalid syntax"},
		{"NaN interval", "NaN 0\n", "1 0\n", "bad value"},
		{"Inf interval", "Inf 0\n", "1 0\n", "bad value"},
		{"negative interval", "-3 0\n", "1 0\n", "bad value"},
		{"fractional interval", "3.5 0\n", "1 0\n", "not an exact integer"},
		{"interval beyond 2^53", "9007199254740994e3 0\n", "1 0\n", "not an exact integer"},
		{"negative cluster", "1 -2\n", "1 -2\n", "bad cluster"},
		{"non-numeric cluster", "1 z\n", "1 z\n", "bad cluster"},
		{"NaN weight", "1 0\n", "NaN 0\n", "bad value"},
		{"negative weight", "1 0\n", "-0.5 0\n", "bad value"},
		{"count mismatch", "1 0\n2 1\n", "1 0\n", "points but"},
		{"cluster mismatch", "1 0\n", "1.0 1\n", "cluster mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSimPoints(strings.NewReader(tc.sp), strings.NewReader(tc.wt))
			if err == nil {
				t.Fatalf("accepted malformed input sp=%q wt=%q", tc.sp, tc.wt)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
}
