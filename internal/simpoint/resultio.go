package simpoint

import (
	"fmt"
	"io"

	"repro/internal/binio"
)

// Binary codec for Result, used by the artifact cache to persist a
// selection without losing the fields the SimPoint 3.0 text formats drop
// (assignments, coverage, k-means statistics). The encoding is canonical:
// re-encoding a decoded Result reproduces the original bytes, which is
// what lets -cache-verify byte-compare cached selections against fresh
// recomputations.

// resultMagic identifies the serialized Result format ("SPRESLT1").
const resultMagic = 0x53505245_534C5431

const maxResultLen = 1 << 28 // sanity bound on decoded slice lengths

// EncodeResult writes res in the binary format read by DecodeResult.
func EncodeResult(w io.Writer, res *Result) error {
	bw := binio.NewWriter(w)
	bw.U64(resultMagic)
	bw.Int(res.K)
	bw.F64(res.Coverage)
	bw.Int(res.Stats.KTried)
	bw.Int(res.Stats.Runs)
	bw.Int(res.Stats.Iterations)
	bw.Bool(res.Stats.Converged)
	bw.Int(len(res.Assignments))
	for _, a := range res.Assignments {
		bw.Int(a)
	}
	encodePoints := func(pts []Point) {
		bw.Int(len(pts))
		for _, p := range pts {
			bw.Int(p.Interval)
			bw.Int(p.Cluster)
			bw.F64(p.Weight)
		}
	}
	encodePoints(res.Points)
	encodePoints(res.Selected)
	return bw.Err()
}

// DecodeResult reads a Result in the format produced by EncodeResult.
func DecodeResult(r io.Reader) (*Result, error) {
	br := binio.NewReader(r)
	if m := br.U64(); br.Err() == nil && m != resultMagic {
		return nil, fmt.Errorf("simpoint: bad result magic %#x", m)
	}
	res := &Result{}
	res.K = br.Int()
	res.Coverage = br.F64()
	res.Stats.KTried = br.Int()
	res.Stats.Runs = br.Int()
	res.Stats.Iterations = br.Int()
	res.Stats.Converged = br.Bool()
	res.Assignments = make([]int, br.Len(maxResultLen))
	for i := range res.Assignments {
		res.Assignments[i] = br.Int()
	}
	decodePoints := func() []Point {
		pts := make([]Point, br.Len(maxResultLen))
		for i := range pts {
			pts[i].Interval = br.Int()
			pts[i].Cluster = br.Int()
			pts[i].Weight = br.F64()
		}
		return pts
	}
	res.Points = decodePoints()
	res.Selected = decodePoints()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("simpoint: decoding result: %w", err)
	}
	return res, nil
}
