package simpoint

import (
	"reflect"
	"testing"

	"repro/internal/bbv"
	"repro/internal/mav"
)

// TestCombinedSeparatesMemoryPhases is the motivating case for MAV
// features: two phases executing identical code (identical BBVs) over
// different working sets. BBV-only clustering cannot tell them apart;
// BBV ⊕ MAV must.
func TestCombinedSeparatesMemoryPhases(t *testing.T) {
	const perPhase = 12
	var vecs []bbv.Vector
	var mavs []mav.Vector
	for p := 0; p < 2; p++ {
		for i := 0; i < perPhase; i++ {
			// Same blocks, same weights, in both phases.
			vecs = append(vecs, bbv.Vector{0: 700, 1: 200, 2: 100})
			var m mav.Vector
			m[mav.FeatLoads] = 300
			if p == 0 {
				// Cache-resident phase: every access reuses a hot line.
				m[mav.FeatSameLine] = 280
				m[mav.FeatReuseHits] = 280
				m[mav.FeatUniqueLines] = 4
			} else {
				// Streaming phase: sequential walk over a large array.
				m[mav.FeatNearStride] = 280
				m[mav.FeatUniqueLines] = 290
			}
			mavs = append(mavs, m)
		}
	}

	bbvOnly, err := Choose(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if bbvOnly.K != 1 {
		t.Fatalf("BBV-only clustering found k=%d for BBV-identical intervals, want 1", bbvOnly.K)
	}

	combined, err := ChooseCombined(vecs, mavs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if combined.K != 2 {
		t.Fatalf("combined clustering found k=%d, want 2 (memory phases separated)", combined.K)
	}
	// Every interval of one memory phase lands in one cluster.
	for i := 1; i < perPhase; i++ {
		if combined.Assignments[i] != combined.Assignments[0] {
			t.Fatalf("interval %d split from its memory phase", i)
		}
		if combined.Assignments[perPhase+i] != combined.Assignments[perPhase] {
			t.Fatalf("interval %d split from its memory phase", perPhase+i)
		}
	}
	if combined.Assignments[0] == combined.Assignments[perPhase] {
		t.Fatal("distinct memory phases merged")
	}
}

// TestCombinedMatchesChooseOnZeroMAVs pins that appending all-zero MAVs
// leaves the geometry unchanged up to the constant zero coordinates: the
// clustering decisions equal the BBV-only path's.
func TestCombinedMatchesChooseOnZeroMAVs(t *testing.T) {
	vecs := synthPhases(3, 10)
	mavs := make([]mav.Vector, len(vecs))
	a, err := Choose(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChooseCombined(vecs, mavs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || !reflect.DeepEqual(a.Assignments, b.Assignments) || !reflect.DeepEqual(a.Selected, b.Selected) {
		t.Fatalf("zero MAVs changed clustering: k %d vs %d", a.K, b.K)
	}
}

func TestCombinedValidatesLengths(t *testing.T) {
	vecs := steadyPhases(1, 4)
	if _, err := ChooseCombined(vecs, make([]mav.Vector, 3), DefaultConfig()); err == nil {
		t.Fatal("mismatched MAV count accepted")
	}
	if _, err := ChooseCombined(nil, nil, DefaultConfig()); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ChooseCombined(vecs, make([]mav.Vector, 4), Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestCombinedDeterminism(t *testing.T) {
	// Integer counts only: real profiles hold exact-integer weights, whose
	// sums are order-insensitive. Fractional synthetic counts would make
	// Vector.Total (map-order summation) wobble in the last ulp.
	var vecs []bbv.Vector
	for i := 0; i < 16; i++ {
		vecs = append(vecs, bbv.Vector{
			(i % 2) * 10: float64(700 + (i*7)%13),
			(i%2)*10 + 1: float64(200 + (i*11)%7),
			(i%2)*10 + 2: float64(100 + (i*3)%5),
		})
	}
	mavs := make([]mav.Vector, len(vecs))
	for i := range mavs {
		mavs[i][mav.FeatLoads] = float64(100 + i%2*50)
		mavs[i][mav.FeatUniqueLines] = float64(10 + (i%2)*200)
	}
	a, err := ChooseCombined(vecs, mavs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChooseCombined(vecs, mavs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ChooseCombined is not deterministic")
	}
}
