package simpoint

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SimPoint 3.0 emits two result files: "<run>.simpoints" with one
// "<interval> <clusterLabel>" line per chosen point, and "<run>.weights"
// with the matching "<weight> <clusterLabel>" lines. These writers/readers
// interoperate with the reference tool's outputs.

// WriteSimPoints writes the selected points in .simpoints format.
func WriteSimPoints(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	for _, p := range res.Selected {
		if _, err := fmt.Fprintf(bw, "%d %d\n", p.Interval, p.Cluster); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteWeights writes the matching .weights file.
func WriteWeights(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	for _, p := range res.Selected {
		if _, err := fmt.Fprintf(bw, "%.6f %d\n", p.Weight, p.Cluster); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSimPoints parses .simpoints + .weights streams back into points.
func ReadSimPoints(simpoints, weights io.Reader) ([]Point, error) {
	type line struct {
		a float64
		b int
	}
	parse := func(r io.Reader, what string) ([]line, error) {
		var out []line
		sc := bufio.NewScanner(r)
		n := 0
		for sc.Scan() {
			n++
			txt := strings.TrimSpace(sc.Text())
			if txt == "" || strings.HasPrefix(txt, "#") {
				continue
			}
			fields := strings.Fields(txt)
			if len(fields) != 2 {
				return nil, fmt.Errorf("simpoint: %s line %d: want 2 fields, got %d", what, n, len(fields))
			}
			a, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("simpoint: %s line %d: %v", what, n, err)
			}
			b, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("simpoint: %s line %d: %v", what, n, err)
			}
			out = append(out, line{a, b})
		}
		return out, sc.Err()
	}
	sp, err := parse(simpoints, "simpoints")
	if err != nil {
		return nil, err
	}
	wt, err := parse(weights, "weights")
	if err != nil {
		return nil, err
	}
	if len(sp) != len(wt) {
		return nil, fmt.Errorf("simpoint: %d points but %d weights", len(sp), len(wt))
	}
	out := make([]Point, len(sp))
	for i := range sp {
		if sp[i].b != wt[i].b {
			return nil, fmt.Errorf("simpoint: line %d: cluster mismatch %d vs %d", i+1, sp[i].b, wt[i].b)
		}
		out[i] = Point{Interval: int(sp[i].a), Cluster: sp[i].b, Weight: wt[i].a}
	}
	return out, nil
}
