package simpoint

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// SimPoint 3.0 emits two result files: "<run>.simpoints" with one
// "<interval> <clusterLabel>" line per chosen point, and "<run>.weights"
// with the matching "<weight> <clusterLabel>" lines. These writers/readers
// interoperate with the reference tool's outputs.

// WriteSimPoints writes the selected points in .simpoints format.
func WriteSimPoints(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	for _, p := range res.Selected {
		if _, err := fmt.Fprintf(bw, "%d %d\n", p.Interval, p.Cluster); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteWeights writes the matching .weights file.
func WriteWeights(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	for _, p := range res.Selected {
		if _, err := fmt.Fprintf(bw, "%.6f %d\n", p.Weight, p.Cluster); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxExactInterval bounds interval indices: the .simpoints column is
// parsed as float64 (the reference tool writes it that way), which is
// exact only up to 2^53; converting anything larger (or non-integral, or
// NaN/Inf) to int would silently corrupt the value.
const maxExactInterval = float64(int64(1) << 53)

// ReadSimPoints parses .simpoints + .weights streams back into points.
// Malformed input — non-integral or out-of-range intervals, negative
// clusters, non-finite or negative weights, mismatched files — returns an
// error; it never panics or silently truncates.
func ReadSimPoints(simpoints, weights io.Reader) ([]Point, error) {
	type line struct {
		a float64
		b int
	}
	parse := func(r io.Reader, what string) ([]line, error) {
		var out []line
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		n := 0
		for sc.Scan() {
			n++
			txt := strings.TrimSpace(sc.Text())
			if txt == "" || strings.HasPrefix(txt, "#") {
				continue
			}
			fields := strings.Fields(txt)
			if len(fields) != 2 {
				return nil, fmt.Errorf("simpoint: %s line %d: want 2 fields, got %d", what, n, len(fields))
			}
			a, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("simpoint: %s line %d: %v", what, n, err)
			}
			if math.IsNaN(a) || math.IsInf(a, 0) || a < 0 {
				return nil, fmt.Errorf("simpoint: %s line %d: bad value %q", what, n, fields[0])
			}
			b, err := strconv.Atoi(fields[1])
			if err != nil || b < 0 {
				return nil, fmt.Errorf("simpoint: %s line %d: bad cluster %q", what, n, fields[1])
			}
			out = append(out, line{a, b})
		}
		return out, sc.Err()
	}
	sp, err := parse(simpoints, "simpoints")
	if err != nil {
		return nil, err
	}
	wt, err := parse(weights, "weights")
	if err != nil {
		return nil, err
	}
	if len(sp) != len(wt) {
		return nil, fmt.Errorf("simpoint: %d points but %d weights", len(sp), len(wt))
	}
	out := make([]Point, len(sp))
	for i := range sp {
		if sp[i].b != wt[i].b {
			return nil, fmt.Errorf("simpoint: line %d: cluster mismatch %d vs %d", i+1, sp[i].b, wt[i].b)
		}
		iv := sp[i].a
		if iv != math.Trunc(iv) || iv > maxExactInterval {
			return nil, fmt.Errorf("simpoint: line %d: interval %v is not an exact integer", i+1, iv)
		}
		out[i] = Point{Interval: int(iv), Cluster: sp[i].b, Weight: wt[i].a}
	}
	return out, nil
}
