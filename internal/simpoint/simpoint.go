// Package simpoint re-implements the SimPoint 3.0 methodology (Hamerly,
// Perelman, Lau, Calder): basic-block vectors are L1-normalized, randomly
// projected down to a few dimensions, clustered with k-means across a range
// of k, the best k is selected with the Bayesian Information Criterion, and
// each cluster is represented by the interval closest to its centroid. The
// representatives, ranked by cluster weight, are the simulation points.
package simpoint

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bbv"
	"repro/internal/mav"
)

// Config controls the clustering. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	Dims           int     // random-projection dimensionality (paper flow: 15)
	MaxK           int     // largest cluster count to try
	Restarts       int     // k-means restarts per k
	MaxIters       int     // k-means iteration cap
	Seed           int64   // deterministic seed for projection + init
	BICThreshold   float64 // pick the smallest k reaching this fraction of the best BIC range
	CoverageTarget float64 // rank points until cumulative weight reaches this
}

// DefaultConfig mirrors the settings the paper's flow uses: 15-dimensional
// projection, up to 30 clusters, ≥90 % coverage from the top-ranked points.
func DefaultConfig() Config {
	return Config{
		Dims:           15,
		MaxK:           30,
		Restarts:       5,
		MaxIters:       100,
		Seed:           42,
		BICThreshold:   0.9,
		CoverageTarget: 0.9,
	}
}

// Point is one chosen simulation point.
type Point struct {
	Interval int     // index of the representative interval
	Cluster  int     // cluster it represents
	Weight   float64 // fraction of all intervals in that cluster
}

// ClusterStats summarizes the k-means work behind a selection — the
// convergence accounting the flow's observability layer reports.
type ClusterStats struct {
	KTried     int  // number of k values attempted
	Runs       int  // total k-means runs (k values × restarts)
	Iterations int  // total Lloyd iterations across every run
	Converged  bool // the chosen k's best run converged before MaxIters
}

// Result is the outcome of SimPoint selection.
type Result struct {
	K           int          // chosen number of clusters
	Assignments []int        // interval → cluster
	Points      []Point      // all representatives, ranked by weight (descending)
	Selected    []Point      // top-ranked points reaching the coverage target
	Coverage    float64      // cumulative weight of Selected
	Stats       ClusterStats // k-means iteration/convergence accounting
}

// Choose runs the full SimPoint pipeline on the per-interval BBVs.
func Choose(vectors []bbv.Vector, cfg Config) (*Result, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("simpoint: no intervals")
	}
	if cfg.Dims <= 0 || cfg.MaxK <= 0 {
		return nil, fmt.Errorf("simpoint: invalid config (Dims=%d MaxK=%d)", cfg.Dims, cfg.MaxK)
	}
	return chooseFrom(project(vectors, cfg.Dims, cfg.Seed), cfg), nil
}

// ChooseCombined runs the SimPoint pipeline on concatenated BBV ⊕ MAV
// features: each interval's point is its projected, L1-normalized BBV
// with the interval's L1-normalized memory-access vector appended. Both
// halves are unit-L1, so code-structure and memory-behavior differences
// carry comparable weight and k-means separates intervals that execute
// the same blocks over different working sets. The BBV-only path
// (Choose) is untouched — byte-identical results for legacy specs.
func ChooseCombined(vectors []bbv.Vector, mavs []mav.Vector, cfg Config) (*Result, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("simpoint: no intervals")
	}
	if len(mavs) != len(vectors) {
		return nil, fmt.Errorf("simpoint: %d MAVs for %d BBV intervals", len(mavs), len(vectors))
	}
	if cfg.Dims <= 0 || cfg.MaxK <= 0 {
		return nil, fmt.Errorf("simpoint: invalid config (Dims=%d MaxK=%d)", cfg.Dims, cfg.MaxK)
	}
	pts := project(vectors, cfg.Dims, cfg.Seed)
	for i, m := range mavs {
		total := m.Total()
		if total == 0 {
			total = 1
		}
		p := pts[i]
		for _, c := range m {
			p = append(p, c/total)
		}
		pts[i] = p
	}
	return chooseFrom(pts, cfg), nil
}

// chooseFrom clusters prepared feature points: k-means across a range of
// k, BIC selection, representatives ranked by weight to the coverage
// target. It is the shared back half of Choose and ChooseCombined.
func chooseFrom(pts [][]float64, cfg Config) *Result {
	n := len(pts)

	// k = n would make the BIC variance estimate degenerate; cap below it.
	maxK := cfg.MaxK
	if maxK > n-1 {
		maxK = n - 1
	}
	if maxK < 1 {
		maxK = 1
	}
	type attempt struct {
		k         int
		assign    []int
		centers   [][]float64
		bic       float64
		converged bool
	}
	stats := ClusterStats{KTried: maxK}
	attempts := make([]attempt, 0, maxK)
	rng := newRNG(cfg.Seed)
	for k := 1; k <= maxK; k++ {
		assign, centers, rss, iters, conv := kmeansBest(pts, k, cfg.Restarts, cfg.MaxIters, rng)
		stats.Runs += cfg.Restarts
		stats.Iterations += iters
		attempts = append(attempts, attempt{k, assign, centers, bic(pts, assign, k, rss), conv})
	}
	minBIC, maxBIC := math.Inf(1), math.Inf(-1)
	for _, a := range attempts {
		if !math.IsInf(a.bic, 0) && !math.IsNaN(a.bic) {
			minBIC = math.Min(minBIC, a.bic)
			maxBIC = math.Max(maxBIC, a.bic)
		}
	}
	best := attempts[0]
	if !math.IsInf(minBIC, 0) {
		cut := minBIC + cfg.BICThreshold*(maxBIC-minBIC)
		for _, a := range attempts {
			if a.bic >= cut {
				best = a
				break
			}
		}
	}

	stats.Converged = best.converged
	res := &Result{K: best.k, Assignments: best.assign, Stats: stats}
	// Representative per cluster: interval closest to the centroid.
	counts := make([]int, best.k)
	repIdx := make([]int, best.k)
	repDist := make([]float64, best.k)
	for i := range repDist {
		repDist[i] = math.Inf(1)
	}
	for i, c := range best.assign {
		counts[c]++
		d := sqDist(pts[i], best.centers[c])
		if d < repDist[c] {
			repDist[c], repIdx[c] = d, i
		}
	}
	for c := 0; c < best.k; c++ {
		if counts[c] == 0 {
			continue
		}
		res.Points = append(res.Points, Point{
			Interval: repIdx[c],
			Cluster:  c,
			Weight:   float64(counts[c]) / float64(n),
		})
	}
	sort.Slice(res.Points, func(i, j int) bool {
		if res.Points[i].Weight != res.Points[j].Weight {
			return res.Points[i].Weight > res.Points[j].Weight
		}
		return res.Points[i].Interval < res.Points[j].Interval
	})
	for _, p := range res.Points {
		res.Selected = append(res.Selected, p)
		res.Coverage += p.Weight
		if res.Coverage >= cfg.CoverageTarget {
			break
		}
	}
	return res
}

// project L1-normalizes each BBV and projects it into dims dimensions using
// a deterministic pseudo-random ±1 matrix generated on the fly from the
// (seed, blockID, dim) triple, so the full matrix is never materialized.
func project(vectors []bbv.Vector, dims int, seed int64) [][]float64 {
	out := make([][]float64, len(vectors))
	blocks := make([]int, 0, 64)
	for i, v := range vectors {
		total := v.Total()
		if total == 0 {
			total = 1
		}
		// Iterate blocks in sorted order: float accumulation order must be
		// deterministic for reproducible clustering.
		blocks = blocks[:0]
		for block := range v {
			blocks = append(blocks, block)
		}
		sort.Ints(blocks)
		p := make([]float64, dims)
		for _, block := range blocks {
			nw := v[block] / total
			for d := 0; d < dims; d++ {
				p[d] += nw * projEntry(seed, block, d)
			}
		}
		out[i] = p
	}
	return out
}

// projEntry returns the deterministic projection coefficient in [-1, 1).
func projEntry(seed int64, block, dim int) float64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(block)*0xBF58476D1CE4E5B9 ^ uint64(dim)*0x94D049BB133111EB
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(int64(h)) / math.MaxInt64 // uniform in [-1, 1]
}

// --- k-means ---

// rng is a small deterministic PRNG (xorshift*), local so results do not
// depend on math/rand version behavior.
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	if seed == 0 {
		seed = 1
	}
	return &rng{s: uint64(seed)}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// kmeansBest runs k-means `restarts` times and keeps the lowest-RSS run.
// It also reports the total Lloyd iterations across every restart and
// whether the kept run converged before the iteration cap.
func kmeansBest(pts [][]float64, k, restarts, maxIters int, rng *rng) (assign []int, centers [][]float64, rss float64, totalIters int, converged bool) {
	rss = math.Inf(1)
	for r := 0; r < restarts; r++ {
		a, c, s, it, conv := kmeans(pts, k, maxIters, rng)
		totalIters += it
		if s < rss {
			assign, centers, rss, converged = a, c, s, conv
		}
	}
	return assign, centers, rss, totalIters, converged
}

// kmeans is Lloyd's algorithm with k-means++ seeding.
func kmeans(pts [][]float64, k, maxIters int, rng *rng) ([]int, [][]float64, float64, int, bool) {
	n, dims := len(pts), len(pts[0])
	centers := initPP(pts, k, rng)
	assign := make([]int, n)
	iters := 0
	converged := false
	for iter := 0; iter < maxIters; iter++ {
		iters++
		changed := false
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := sqDist(p, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			converged = true
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		for c := range centers {
			for d := range centers[c] {
				centers[c][d] = 0
			}
		}
		for i, p := range pts {
			c := assign[i]
			counts[c]++
			for d := 0; d < dims; d++ {
				centers[c][d] += p[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centers[c], pts[rng.intn(n)])
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centers[c] {
				centers[c][d] *= inv
			}
		}
	}
	var rss float64
	for i, p := range pts {
		rss += sqDist(p, centers[assign[i]])
	}
	return assign, centers, rss, iters, converged
}

// initPP is k-means++ initialization.
func initPP(pts [][]float64, k int, rng *rng) [][]float64 {
	n := len(pts)
	centers := make([][]float64, 0, k)
	first := append([]float64(nil), pts[rng.intn(n)]...)
	centers = append(centers, first)
	d2 := make([]float64, n)
	for len(centers) < k {
		var sum float64
		for i, p := range pts {
			d := sqDist(p, centers[0])
			for _, c := range centers[1:] {
				if dd := sqDist(p, c); dd < d {
					d = dd
				}
			}
			d2[i] = d
			sum += d
		}
		var idx int
		if sum == 0 {
			idx = rng.intn(n)
		} else {
			target := rng.float64() * sum
			for i, d := range d2 {
				target -= d
				if target <= 0 {
					idx = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), pts[idx]...))
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// bic computes the Bayesian Information Criterion of a k-means clustering
// under the spherical Gaussian model used by SimPoint/X-means. Higher is
// better.
func bic(pts [][]float64, assign []int, k int, rss float64) float64 {
	n := len(pts)
	d := len(pts[0])
	if n <= k {
		return math.Inf(-1)
	}
	variance := rss / (float64(n-k) * float64(d))
	if variance < 1e-12 {
		variance = 1e-12
	}
	counts := make([]int, k)
	for _, c := range assign {
		counts[c]++
	}
	var loglik float64
	for _, ni := range counts {
		if ni == 0 {
			continue
		}
		fn := float64(ni)
		loglik += fn*math.Log(fn/float64(n)) -
			fn*float64(d)/2*math.Log(2*math.Pi*variance) -
			(fn-1)*float64(d)/2
	}
	params := float64(k-1) + float64(k*d) + 1 // mixing weights + centroids + variance
	return loglik - params/2*math.Log(float64(n))
}
