package simpoint

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimPointsFilesRoundTrip(t *testing.T) {
	res := &Result{
		Selected: []Point{
			{Interval: 12, Cluster: 0, Weight: 0.5},
			{Interval: 90, Cluster: 3, Weight: 0.3125},
			{Interval: 7, Cluster: 1, Weight: 0.1875},
		},
	}
	var sp, wt bytes.Buffer
	if err := WriteSimPoints(&sp, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteWeights(&wt, res); err != nil {
		t.Fatal(err)
	}
	pts, err := ReadSimPoints(&sp, &wt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		want := res.Selected[i]
		if p.Interval != want.Interval || p.Cluster != want.Cluster {
			t.Errorf("point %d: %+v want %+v", i, p, want)
		}
		if d := p.Weight - want.Weight; d > 1e-6 || d < -1e-6 {
			t.Errorf("point %d weight %v want %v", i, p.Weight, want.Weight)
		}
	}
}

func TestReadSimPointsValidates(t *testing.T) {
	cases := []struct{ sp, wt string }{
		{"1 0\n2 1\n", "0.5 0\n"}, // length mismatch
		{"1 0\n", "0.5 1\n"},      // cluster mismatch
		{"1\n", "0.5 0\n"},        // bad field count
		{"x 0\n", "0.5 0\n"},      // bad interval
	}
	for _, c := range cases {
		if _, err := ReadSimPoints(strings.NewReader(c.sp), strings.NewReader(c.wt)); err == nil {
			t.Errorf("expected error for %q/%q", c.sp, c.wt)
		}
	}
}

func TestEndToEndFileInterop(t *testing.T) {
	vecs := steadyPhases(3, 10)
	res, err := Choose(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sp, wt bytes.Buffer
	if err := WriteSimPoints(&sp, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteWeights(&wt, res); err != nil {
		t.Fatal(err)
	}
	pts, err := ReadSimPoints(&sp, &wt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(res.Selected) {
		t.Fatalf("interop lost points: %d vs %d", len(pts), len(res.Selected))
	}
}
