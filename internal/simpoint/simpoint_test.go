package simpoint

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bbv"
)

// synthPhases builds BBVs for a program with `phases` distinct phases, each
// `perPhase` intervals long. Phase p executes blocks [p*10, p*10+3); each
// interval gets small continuous jitter so no two intervals are identical
// (identical intervals legitimately cluster into extra zero-variance
// sub-phases).
func synthPhases(phases, perPhase int) []bbv.Vector {
	var out []bbv.Vector
	idx := 0
	for p := 0; p < phases; p++ {
		for i := 0; i < perPhase; i++ {
			v := bbv.Vector{}
			base := p * 10
			// Independent deterministic noise per (interval, block), like
			// the natural per-interval wobble of a real program phase.
			v[base] = 700 + 10*projEntry(99, idx, base)
			v[base+1] = 200 + 10*projEntry(99, idx, base+1)
			v[base+2] = 100 + 10*projEntry(99, idx, base+2)
			out = append(out, v)
			idx++
		}
	}
	return out
}

// steadyPhases builds BBVs for a program whose phases are perfectly steady
// loops: every interval inside a phase is identical, which is what real
// loop-dominated workloads produce at steady state.
func steadyPhases(phases, perPhase int) []bbv.Vector {
	var out []bbv.Vector
	for p := 0; p < phases; p++ {
		for i := 0; i < perPhase; i++ {
			out = append(out, bbv.Vector{p * 10: 700, p*10 + 1: 200, p*10 + 2: 100})
		}
	}
	return out
}

func TestRecoversSteadyPhaseCountExactly(t *testing.T) {
	for _, phases := range []int{1, 2, 3, 5} {
		vecs := steadyPhases(phases, 12)
		res, err := Choose(vecs, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if res.K != phases {
			t.Fatalf("chose k=%d for %d steady phases", res.K, phases)
		}
	}
}

func TestNoisyPhasesStayPure(t *testing.T) {
	vecs := synthPhases(3, 20)
	res, err := Choose(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 3 {
		t.Fatalf("chose k=%d for 3 phases", res.K)
	}
	// A cluster may sub-split a phase, but must never span two phases:
	// each cluster's members must come from a single phase.
	clusterPhase := map[int]int{}
	for i, c := range res.Assignments {
		phase := i / 20
		if prev, ok := clusterPhase[c]; ok && prev != phase {
			t.Fatalf("cluster %d spans phases %d and %d", c, prev, phase)
		}
		clusterPhase[c] = phase
	}
}

func TestWeightsAndCoverage(t *testing.T) {
	vecs := synthPhases(4, 25)
	res, err := Choose(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range res.Points {
		if p.Weight <= 0 || p.Weight > 1 {
			t.Fatalf("weight out of range: %v", p.Weight)
		}
		sum += p.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	if res.Coverage < 0.9 {
		t.Fatalf("coverage %v below target", res.Coverage)
	}
	if len(res.Selected) > len(res.Points) {
		t.Fatal("selected more points than exist")
	}
	// Ranking: weights non-increasing.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Weight > res.Points[i-1].Weight {
			t.Fatal("points not ranked by weight")
		}
	}
}

func TestRepresentativeIsFromItsCluster(t *testing.T) {
	vecs := synthPhases(3, 15)
	res, err := Choose(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if res.Assignments[p.Interval] != p.Cluster {
			t.Fatalf("representative %d not in cluster %d", p.Interval, p.Cluster)
		}
	}
}

func TestDeterminism(t *testing.T) {
	vecs := synthPhases(3, 20)
	a, err := Choose(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Choose(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatal("same seed produced different results")
	}
}

func TestSingleSteadyPhaseGivesOnePoint(t *testing.T) {
	vecs := steadyPhases(1, 30)
	res, err := Choose(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Fatalf("k=%d for a single steady phase", res.K)
	}
	if len(res.Selected) != 1 || math.Abs(res.Selected[0].Weight-1) > 1e-9 {
		t.Fatalf("selected: %+v", res.Selected)
	}
}

func TestFewerIntervalsThanMaxK(t *testing.T) {
	vecs := synthPhases(2, 2) // 4 intervals, MaxK=30
	res, err := Choose(vecs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 4 {
		t.Fatalf("k=%d exceeds interval count", res.K)
	}
}

func TestEmptyInput(t *testing.T) {
	if _, err := Choose(nil, DefaultConfig()); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestProjectionDeterministicAndBounded(t *testing.T) {
	for block := 0; block < 100; block++ {
		for d := 0; d < 15; d++ {
			v := projEntry(42, block, d)
			if v < -1 || v > 1 {
				t.Fatalf("projEntry out of range: %v", v)
			}
			if v != projEntry(42, block, d) {
				t.Fatal("projEntry not deterministic")
			}
		}
	}
	// Different seeds must give a different matrix.
	same := true
	for d := 0; d < 15 && same; d++ {
		if projEntry(1, 0, d) != projEntry(2, 0, d) {
			same = false
		}
	}
	if same {
		t.Fatal("projection ignores the seed")
	}
}

func TestKMeansPerfectSeparationRSSZero(t *testing.T) {
	// Two exactly repeated points — RSS must be ~0 with k=2.
	pts := [][]float64{{0, 0}, {0, 0}, {10, 10}, {10, 10}}
	rng := newRNG(7)
	_, _, rss, _, _ := kmeansBest(pts, 2, 5, 50, rng)
	if rss > 1e-18 {
		t.Fatalf("rss = %v", rss)
	}
}
