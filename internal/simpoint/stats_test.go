package simpoint

import (
	"testing"

	"repro/internal/bbv"
)

// TestClusterStats: Choose must account for every k-means run and report
// convergence of the chosen clustering.
func TestClusterStats(t *testing.T) {
	// Three clearly separated phases, several intervals each.
	var vectors []bbv.Vector
	for phase := 0; phase < 3; phase++ {
		for i := 0; i < 8; i++ {
			v := bbv.Vector{phase*100 + 1: 50, phase*100 + 2: 50}
			vectors = append(vectors, v)
		}
	}
	cfg := DefaultConfig()
	cfg.MaxK = 5
	res, err := Choose(vectors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.KTried != 5 {
		t.Errorf("KTried %d, want 5", st.KTried)
	}
	if want := cfg.Restarts * st.KTried; st.Runs != want {
		t.Errorf("Runs %d, want %d", st.Runs, want)
	}
	// Every run iterates at least once, so iterations ≥ runs.
	if st.Iterations < st.Runs {
		t.Errorf("Iterations %d < Runs %d", st.Iterations, st.Runs)
	}
	if !st.Converged {
		t.Error("trivially separable data must converge before MaxIters")
	}
}
